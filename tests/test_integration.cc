// End-to-end integration tests: full stack (channel + MAC + backplane +
// ViFi + applications) on the VanLAN testbed.

#include <gtest/gtest.h>

#include "apps/cbr.h"
#include "apps/tcp.h"
#include "apps/transfer_driver.h"
#include "apps/voip.h"
#include "scenario/campaign.h"
#include "scenario/live.h"
#include "scenario/testbed.h"

namespace vifi {
namespace {

using namespace vifi::scenario;

core::SystemConfig vifi_config() {
  core::SystemConfig cfg;
  cfg.vifi.max_retx = 3;
  return cfg;
}

core::SystemConfig brr_config() {
  core::SystemConfig cfg;
  cfg.vifi.diversity = false;
  cfg.vifi.salvage = false;
  cfg.vifi.max_retx = 3;
  return cfg;
}

TEST(Integration, VehicleAcquiresAnchorAfterWarmup) {
  const Testbed bed = make_vanlan();
  LiveTrip trip(bed, vifi_config(), /*trip_seed=*/100);
  trip.run_until(LiveTrip::warmup());
  EXPECT_TRUE(trip.system().vehicle().anchor().valid());
}

TEST(Integration, AnchorRegistersWithGateway) {
  const Testbed bed = make_vanlan();
  LiveTrip trip(bed, vifi_config(), 101);
  trip.run_until(LiveTrip::warmup());
  const sim::NodeId anchor = trip.system().vehicle().anchor();
  ASSERT_TRUE(anchor.valid());
  EXPECT_EQ(trip.system().host().registered_anchor(bed.vehicle()), anchor);
}

TEST(Integration, UpstreamPacketsReachHost) {
  const Testbed bed = make_vanlan();
  LiveTrip trip(bed, vifi_config(), 102);
  trip.run_until(LiveTrip::warmup());
  int delivered = 0;
  trip.system().host().set_delivery_handler(
      [&](const net::PacketRef&) { ++delivered; });
  for (int i = 0; i < 50; ++i) {
    trip.system().send_up(200, 1, static_cast<std::uint64_t>(i));
    trip.run_until(trip.simulator().now() + Time::millis(100.0));
  }
  trip.run_until(trip.simulator().now() + Time::seconds(2.0));
  EXPECT_GT(delivered, 35);  // most packets make it despite the channel
}

TEST(Integration, DownstreamPacketsReachVehicle) {
  const Testbed bed = make_vanlan();
  LiveTrip trip(bed, vifi_config(), 103);
  trip.run_until(LiveTrip::warmup());
  int delivered = 0;
  trip.system().vehicle().set_delivery_handler(
      [&](const net::PacketRef&) { ++delivered; });
  for (int i = 0; i < 50; ++i) {
    trip.system().send_down(200, 1, static_cast<std::uint64_t>(i));
    trip.run_until(trip.simulator().now() + Time::millis(100.0));
  }
  trip.run_until(trip.simulator().now() + Time::seconds(2.0));
  EXPECT_GT(delivered, 35);
}

TEST(Integration, NoDuplicateDeliveriesToApps) {
  const Testbed bed = make_vanlan();
  LiveTrip trip(bed, vifi_config(), 104);
  trip.run_until(LiveTrip::warmup());
  std::map<std::uint64_t, int> seen;
  trip.system().vehicle().set_delivery_handler(
      [&](const net::PacketRef& p) { ++seen[p->id]; });
  for (int i = 0; i < 100; ++i) {
    trip.system().send_down(100, 1, static_cast<std::uint64_t>(i));
    trip.run_until(trip.simulator().now() + Time::millis(50.0));
  }
  trip.run_until(trip.simulator().now() + Time::seconds(2.0));
  for (const auto& [id, count] : seen) EXPECT_EQ(count, 1) << "packet " << id;
}

TEST(Integration, CbrWorkloadDeliversBothDirections) {
  const Testbed bed = make_vanlan();
  core::SystemConfig cfg = vifi_config();
  cfg.vifi.max_retx = 0;  // link-layer experiment setting (§5.2)
  LiveTrip trip(bed, cfg, 105);
  trip.run_until(LiveTrip::warmup());
  apps::CbrWorkload cbr(trip.simulator(), trip.transport());
  const Time end = trip.simulator().now() + Time::seconds(30.0);
  cbr.start(end);
  trip.run_until(end + Time::seconds(1.0));
  EXPECT_GT(cbr.sent(), 500);
  EXPECT_GT(cbr.delivered(), cbr.sent() / 3);
}

TEST(Integration, VifiDeliversMoreThanBrrOnLinkWorkload) {
  // The headline link-layer claim, in miniature: diversity relaying
  // recovers packets hard handoff loses.
  const Testbed bed = make_vanlan();
  auto run = [&](core::SystemConfig cfg) {
    cfg.vifi.max_retx = 0;
    LiveTrip trip(bed, cfg, 106);  // same seed: same channel realisation
    trip.run_until(LiveTrip::warmup());
    apps::CbrWorkload cbr(trip.simulator(), trip.transport());
    const Time end = trip.simulator().now() + Time::seconds(60.0);
    cbr.start(end);
    trip.run_until(end + Time::seconds(1.0));
    return cbr.delivered();
  };
  const auto vifi = run(vifi_config());
  const auto brr = run(brr_config());
  EXPECT_GT(vifi, brr);
}

TEST(Integration, TcpTransferCompletesOverVifi) {
  const Testbed bed = make_vanlan();
  LiveTrip trip(bed, vifi_config(), 107);
  trip.run_until(LiveTrip::warmup());
  apps::TcpTransfer xfer(trip.simulator(), trip.transport(), 500,
                         net::Direction::Downstream, 10 * 1024);
  xfer.start();
  trip.run_until(trip.simulator().now() + Time::seconds(30.0));
  EXPECT_TRUE(xfer.complete());
  EXPECT_EQ(xfer.bytes_acked(), 10 * 1024);
}

TEST(Integration, TransferDriverRunsBackToBack) {
  const Testbed bed = make_vanlan();
  LiveTrip trip(bed, vifi_config(), 108);
  trip.run_until(LiveTrip::warmup());
  apps::TransferDriver driver(trip.simulator(), trip.transport(),
                              net::Direction::Downstream);
  const Time end = trip.simulator().now() + Time::seconds(60.0);
  driver.start(end);
  trip.run_until(end + Time::seconds(1.0));
  const auto result = driver.result();
  EXPECT_GT(result.completed, 5);
  EXPECT_GT(result.median_transfer_time_s(), 0.0);
}

TEST(Integration, VoipCallProducesScoredWindows) {
  const Testbed bed = make_vanlan();
  LiveTrip trip(bed, vifi_config(), 109);
  trip.run_until(LiveTrip::warmup());
  apps::VoipCall call(trip.simulator(), trip.transport());
  const Time end = trip.simulator().now() + Time::seconds(30.0);
  call.start(end);
  trip.run_until(end + Time::seconds(1.0));
  const auto result = call.result();
  EXPECT_GT(result.packets_sent, 2000);
  EXPECT_FALSE(result.window_mos.empty());
  EXPECT_GT(result.mean_mos, 1.0);
}

TEST(Integration, TraceDrivenTripRunsProtocol) {
  // DieselNet methodology: beacon-log trace -> loss schedule -> live run.
  const Testbed bed = make_dieselnet(1);
  CampaignConfig cc;
  cc.days = 1;
  cc.trips_per_day = 1;
  cc.trip_duration = Time::seconds(120.0);
  cc.log_probes = false;
  const auto campaign = generate_campaign(bed, cc);
  ASSERT_EQ(campaign.trips.size(), 1u);

  LiveTrip trip(bed, campaign.trips[0], vifi_config(), 110);
  trip.run_until(LiveTrip::warmup());
  apps::CbrWorkload cbr(trip.simulator(), trip.transport());
  const Time end = Time::seconds(100.0);
  cbr.start(end);
  trip.run_until(end + Time::seconds(1.0));
  EXPECT_GT(cbr.delivered(), 0);
}

TEST(Integration, SalvageMovesPacketsBetweenAnchors) {
  // Over a long multi-anchor drive with steady downstream traffic, at
  // least some packets should be recovered via salvaging.
  const Testbed bed = make_vanlan();
  LiveTrip trip(bed, vifi_config(), 111);
  trip.run_until(LiveTrip::warmup());
  for (int i = 0; i < 1200; ++i) {
    trip.system().send_down(500, 2, static_cast<std::uint64_t>(i));
    trip.run_until(trip.simulator().now() + Time::millis(100.0));
  }
  EXPECT_GT(trip.system().vehicle().anchor_switches(), 1u);
  EXPECT_GE(trip.system().stats().salvaged(), 0);
}

}  // namespace
}  // namespace vifi
