// Tests for TripScope Streams: the spool on-disk format (round-trip,
// footer index, crisp errors on foreign/truncated files), StreamSink /
// TraceRecorder streaming semantics (ring-vs-stream export byte-identity
// when the run fits the ring, full fidelity past the ring horizon,
// trip-order absorb reproducing a direct recording's spool bytes), the
// derived span layer, ring-truncation surfacing (export warnings + the
// obs.trace.dropped_events metric), the MetricsRegistry::total histogram
// contract, and the streamed-sweep thread-count byte-identity gate.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/sink.h"
#include "obs/span.h"
#include "obs/spool.h"
#include "runtime/executor.h"
#include "runtime/runner.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace vifi::obs {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  std::stringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

fs::path temp_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TraceEvent make_event(EventKind kind, double t_s, int node, int peer = -1,
                      std::uint64_t seq = 0) {
  TraceEvent e;
  e.at = Time::seconds(t_s);
  e.seq = seq;
  e.kind = kind;
  e.node = sim::NodeId{node};
  e.peer = sim::NodeId{peer};
  return e;
}

// --- spool format -----------------------------------------------------------

TEST(Spool, EncodeDecodeIsTheIdentityOnEveryField) {
  TraceEvent e;
  e.at = Time::micros(-7);  // negative times must survive too
  e.seq = 0xDEADBEEFCAFEull;
  e.id = 42;
  e.node = sim::NodeId{3};
  e.peer = sim::NodeId{-1};
  e.kind = EventKind::CoordTransition;
  e.c = -12345;
  e.a = 0.1 + 0.2;  // a value with no short decimal rendering
  e.b = -1e-300;
  char buf[kSpoolRecordBytes];
  encode_event(e, buf);
  const TraceEvent d = decode_event(buf);
  EXPECT_EQ(d.at, e.at);
  EXPECT_EQ(d.seq, e.seq);
  EXPECT_EQ(d.id, e.id);
  EXPECT_EQ(d.node, e.node);
  EXPECT_EQ(d.peer, e.peer);
  EXPECT_EQ(d.kind, e.kind);
  EXPECT_EQ(d.c, e.c);
  // Bit-exact, not approximately equal: spools must reproduce exports.
  EXPECT_EQ(std::memcmp(&d.a, &e.a, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&d.b, &e.b, sizeof(double)), 0);
}

TEST(Spool, WriterReaderRoundTripAcrossBlocksNodesAndLogs) {
  const fs::path dir = temp_dir("vifi_spool_roundtrip");
  const std::string path = (dir / "t.spool").string();
  {
    SpoolWriter writer(path, /*block_events=*/4);  // force several chunks
    std::uint64_t seq = 1;
    for (int i = 0; i < 11; ++i)
      writer.push(make_event(EventKind::BeaconTx, 0.1 * i, 1, -1, seq++));
    for (int i = 0; i < 5; ++i)
      writer.push(make_event(EventKind::BeaconRx, 0.2 * i, 2, 1, seq++));
    writer.set_node_label(sim::NodeId{1}, "bs");
    writer.finalize({{1000, seq, 2, "ring full"}});
    EXPECT_TRUE(writer.finalized());
  }
  const SpoolReader reader(path);
  EXPECT_EQ(reader.recorded(), 16u);
  EXPECT_EQ(reader.block_events(), 4u);
  EXPECT_EQ(reader.kind_count(EventKind::BeaconTx), 11u);
  EXPECT_EQ(reader.kind_count(EventKind::BeaconRx), 5u);
  EXPECT_EQ(reader.kind_count(EventKind::Log), 1u);
  EXPECT_EQ(reader.max_at_us(), Time::seconds(1.0).to_micros());

  ASSERT_EQ(reader.nodes().size(), 2u);
  const SpoolNodeIndex* n1 = reader.find_node(sim::NodeId{1});
  ASSERT_NE(n1, nullptr);
  EXPECT_EQ(n1->events, 11u);
  EXPECT_EQ(n1->label, "bs");
  EXPECT_EQ(n1->chunks.size(), 3u);  // 4 + 4 + residual 3
  EXPECT_EQ(reader.find_node(sim::NodeId{9}), nullptr);

  // scan_node seeks via the footer index and yields only that node.
  std::vector<TraceEvent> node2;
  reader.scan_node(sim::NodeId{2},
                   [&](const TraceEvent& e) { node2.push_back(e); });
  ASSERT_EQ(node2.size(), 5u);
  for (const TraceEvent& e : node2) EXPECT_EQ(e.node, sim::NodeId{2});

  // events() restores global seq order across the interleaved chunks.
  const std::vector<TraceEvent> all = reader.events();
  ASSERT_EQ(all.size(), 16u);
  for (std::size_t i = 1; i < all.size(); ++i)
    EXPECT_LT(all[i - 1].seq, all[i].seq);

  ASSERT_EQ(reader.logs().size(), 1u);
  EXPECT_EQ(reader.logs()[0].message, "ring full");
  fs::remove_all(dir);
}

TEST(Spool, ReaderRejectsForeignAndTruncatedFiles) {
  const fs::path dir = temp_dir("vifi_spool_reject");
  const std::string missing = (dir / "missing.spool").string();
  EXPECT_THROW(SpoolReader{missing}, std::runtime_error);

  const std::string foreign = (dir / "foreign.spool").string();
  std::ofstream(foreign) << "this is not a spool, not even close to one";
  EXPECT_THROW(SpoolReader{foreign}, std::runtime_error);

  const std::string good = (dir / "good.spool").string();
  {
    SpoolWriter writer(good);
    writer.push(make_event(EventKind::BeaconTx, 1.0, 1, -1, 1));
    writer.finalize({});
  }
  // Chopping the trailer off makes the reader refuse with a crisp error.
  const std::string bytes = slurp(good);
  const std::string truncated = (dir / "trunc.spool").string();
  std::ofstream(truncated, std::ios::binary)
      << bytes.substr(0, bytes.size() - 8);
  EXPECT_THROW(SpoolReader{truncated}, std::runtime_error);
  fs::remove_all(dir);
}

TEST(Spool, PushAfterFinalizeIsAContractViolation) {
  const fs::path dir = temp_dir("vifi_spool_after_finalize");
  SpoolWriter writer((dir / "t.spool").string());
  writer.push(make_event(EventKind::BeaconTx, 1.0, 1, -1, 1));
  writer.finalize({});
  EXPECT_THROW(writer.push(make_event(EventKind::BeaconTx, 2.0, 1, -1, 2)),
               ContractViolation);
  fs::remove_all(dir);
}

// --- streaming recorder -----------------------------------------------------

/// Replays one pseudo-random protocol-ish schedule into \p rec. Drawn via
/// named Rng forks only, so every recorder sees the identical sequence.
void record_schedule(TraceRecorder& rec, std::uint64_t seed, int events) {
  Rng rng = Rng(seed).fork("obs-stream-prop");
  rec.set_node_label(sim::NodeId{0}, "bs");
  rec.set_node_label(sim::NodeId{1}, "vehicle");
  for (int i = 0; i < events; ++i) {
    const auto kind = static_cast<EventKind>(
        rng.uniform_int(0, kEventKindCount - 2));  // Log is not record()ed
    const int node = static_cast<int>(rng.uniform_int(0, 3));
    const int peer = static_cast<int>(rng.uniform_int(-1, 3));
    rec.record(kind, Time::seconds(0.01 * i), sim::NodeId{node},
               sim::NodeId{peer}, static_cast<std::uint64_t>(i),
               rng.uniform01(), rng.uniform(-5.0, 5.0),
               static_cast<std::int32_t>(rng.uniform_int(0, 100)));
  }
  rec.log(LogLevel::Warn, "schedule done");
}

TEST(StreamSink, ExportsMatchRingByteForByteWhenTheRunFitsTheRing) {
  const fs::path dir = temp_dir("vifi_stream_vs_ring");
  // Property over several seeds: spool -> load -> export reproduces the
  // in-memory recorder's exports exactly whenever nothing wrapped.
  for (const std::uint64_t seed : {1ull, 7ull, 20080817ull}) {
    TraceRecorder ring_rec;  // default capacity holds every event
    TraceRecorder stream_rec(std::make_unique<StreamSink>(
        (dir / ("s" + std::to_string(seed) + ".spool")).string()));
    record_schedule(ring_rec, seed, 700);
    record_schedule(stream_rec, seed, 700);
    EXPECT_EQ(ring_rec.dropped(), 0u);
    EXPECT_EQ(stream_rec.dropped(), 0u);
    EXPECT_EQ(chrome_trace_json(ring_rec), chrome_trace_json(stream_rec))
        << "seed " << seed;
    EXPECT_EQ(events_jsonl(ring_rec), events_jsonl(stream_rec))
        << "seed " << seed;
  }
  fs::remove_all(dir);
}

TEST(StreamSink, KeepsFullFidelityWhereTheRingWraps) {
  const fs::path dir = temp_dir("vifi_stream_wrap");
  TraceRecorder ring_rec(/*per_node_capacity=*/16);
  TraceRecorder stream_rec(
      std::make_unique<StreamSink>((dir / "wrap.spool").string(),
                                   /*block_events=*/8));
  const std::uint64_t seed = 99;
  const int events = 600;  // far past the 16-slot ring horizon
  record_schedule(ring_rec, seed, events);
  record_schedule(stream_rec, seed, events);

  EXPECT_GT(ring_rec.dropped(), 0u);
  EXPECT_LT(ring_rec.merged().size(), static_cast<std::size_t>(events));
  EXPECT_EQ(stream_rec.dropped(), 0u);
  EXPECT_EQ(stream_rec.merged().size(), static_cast<std::size_t>(events));

  // The stream's spool reconciles exactly against the recorder counters.
  stream_rec.finalize();
  const SpoolReader reader(stream_rec.spool_path());
  EXPECT_EQ(reader.recorded(), stream_rec.recorded());
  for (int k = 0; k < kEventKindCount; ++k) {
    const auto kind = static_cast<EventKind>(k);
    if (kind == EventKind::Log) continue;  // footer logs, not chunk records
    EXPECT_EQ(reader.kind_count(kind), stream_rec.count(kind))
        << to_string(kind);
  }

  // Truncation is loud: both export formats carry the warning; the
  // stream's exports don't.
  const std::string ring_chrome = chrome_trace_json(ring_rec);
  const std::string ring_jsonl = events_jsonl(ring_rec);
  EXPECT_NE(ring_chrome.find("ring dropped"), std::string::npos);
  EXPECT_NE(ring_jsonl.find("\"warning\""), std::string::npos);
  EXPECT_EQ(ring_jsonl.find("\"warning\""), ring_jsonl.find('{') + 1);
  EXPECT_EQ(chrome_trace_json(stream_rec).find("ring dropped"),
            std::string::npos);
  EXPECT_EQ(events_jsonl(stream_rec).find("\"warning\""), std::string::npos);
  fs::remove_all(dir);
}

TEST(StreamSink, AbsorbReproducesADirectRecordingsSpoolBytes) {
  const fs::path dir = temp_dir("vifi_stream_absorb");
  // Direct: two trips recorded sequentially under set_time_base, exactly
  // as run_cbr does.
  TraceRecorder direct(
      std::make_unique<StreamSink>((dir / "direct.spool").string()));
  record_schedule(direct, 5, 300);
  direct.set_time_base(Time::seconds(40.0));
  record_schedule(direct, 6, 300);
  direct.finalize();

  // Stitched: per-trip part spools absorbed in trip order, exactly as
  // run_point_sharded does.
  TraceRecorder session(
      std::make_unique<StreamSink>((dir / "session.spool").string()));
  {
    TraceRecorder trip0(
        std::make_unique<StreamSink>((dir / "t0.part").string()));
    TraceRecorder trip1(
        std::make_unique<StreamSink>((dir / "t1.part").string()));
    record_schedule(trip0, 5, 300);
    record_schedule(trip1, 6, 300);
    session.absorb(trip0, Time::zero());
    session.absorb(trip1, Time::seconds(40.0));
  }
  session.finalize();

  EXPECT_EQ(session.recorded(), direct.recorded());
  const std::string a = slurp(dir / "direct.spool");
  const std::string b = slurp(dir / "session.spool");
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_THROW(session.absorb(direct, Time::zero()), ContractViolation);
  fs::remove_all(dir);
}

TEST(StreamSink, AbsorbRequiresMatchingSinkKinds) {
  const fs::path dir = temp_dir("vifi_stream_kind_mismatch");
  TraceRecorder ring_rec;
  TraceRecorder stream_rec(
      std::make_unique<StreamSink>((dir / "s.spool").string()));
  EXPECT_THROW(ring_rec.absorb(stream_rec, Time::zero()), ContractViolation);
  EXPECT_THROW(stream_rec.absorb(ring_rec, Time::zero()), ContractViolation);
  fs::remove_all(dir);
}

// --- spans ------------------------------------------------------------------

TEST(Spans, AnchorTenuresOpenCloseAndRunToTheHorizon) {
  std::vector<TraceEvent> events;
  // Vehicle 1: anchor 10 at t=1, switch to 11 at t=5, lost at t=8.
  events.push_back(make_event(EventKind::AnchorChange, 1.0, 1, 10, 1));
  events.push_back(make_event(EventKind::AnchorChange, 5.0, 1, 11, 2));
  events.push_back(make_event(EventKind::AnchorChange, 8.0, 1, -1, 3));
  // Vehicle 2: still designated at the horizon.
  events.push_back(make_event(EventKind::AnchorChange, 2.0, 2, 10, 4));
  const auto spans = build_spans(events, Time::seconds(10.0));
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].node, sim::NodeId{1});
  EXPECT_EQ(spans[0].peer, sim::NodeId{10});
  EXPECT_EQ(spans[0].begin, Time::seconds(1.0));
  EXPECT_EQ(spans[0].end, Time::seconds(5.0));
  EXPECT_EQ(spans[1].node, sim::NodeId{2});
  EXPECT_EQ(spans[1].end, Time::seconds(10.0));  // horizon-closed
  EXPECT_EQ(spans[2].peer, sim::NodeId{11});
  EXPECT_EQ(spans[2].end, Time::seconds(8.0));  // closed by anchor-lost
  EXPECT_EQ(span_label(spans[0]), "anchor_tenure");
}

TEST(Spans, CoordPhasesCoverInteriorStretchesAndSkipTheLeadingOne) {
  const auto pack = [](int from, int to) {
    return static_cast<std::int32_t>((from << 4) | to);
  };
  std::vector<TraceEvent> events;
  TraceEvent a = make_event(EventKind::CoordTransition, 1.0, 1, 10, 1);
  a.c = pack(0, 1);  // Idle -> Discovered
  TraceEvent b = make_event(EventKind::CoordTransition, 4.0, 1, 10, 2);
  b.c = pack(1, 2);  // Discovered -> Associated
  TraceEvent c = make_event(EventKind::CoordTransition, 9.0, 1, 10, 3);
  c.c = pack(2, 0);  // Associated -> Idle (timeout)
  events = {a, b, c};
  const auto spans = build_spans(events, Time::seconds(20.0));
  // Discovered [1,4), Associated [4,9); the trailing Idle is not a span
  // and the stretch before the first transition has no observable start.
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].detail, "Discovered");
  EXPECT_EQ(spans[0].begin, Time::seconds(1.0));
  EXPECT_EQ(spans[0].end, Time::seconds(4.0));
  EXPECT_EQ(spans[1].detail, "Associated");
  EXPECT_EQ(spans[1].end, Time::seconds(9.0));
  EXPECT_EQ(span_label(spans[1]), "phase:Associated");

  // An open non-Idle phase runs to the horizon.
  events = {a, b};
  const auto open = build_spans(events, Time::seconds(20.0));
  ASSERT_EQ(open.size(), 2u);
  EXPECT_EQ(open[1].detail, "Associated");
  EXPECT_EQ(open[1].end, Time::seconds(20.0));
}

TEST(Spans, ContactsSplitOnGapsAndCloseAtTheLastBeacon) {
  std::vector<TraceEvent> events;
  // Run 1: beacons at 1.0, 1.5, 2.0. Gap > 3 s. Run 2: single beacon at 9.
  for (const double t : {1.0, 1.5, 2.0, 9.0})
    events.push_back(make_event(EventKind::BeaconRx, t, 1, 10,
                                static_cast<std::uint64_t>(t * 10)));
  // A different pair is its own contact.
  events.push_back(make_event(EventKind::BeaconRx, 1.2, 1, 11, 99));
  const auto spans = build_spans(events, Time::seconds(30.0));
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].begin, Time::seconds(1.0));
  EXPECT_EQ(spans[0].end, Time::seconds(2.0));  // last beacon, not horizon
  EXPECT_EQ(spans[0].peer, sim::NodeId{10});
  EXPECT_EQ(spans[1].peer, sim::NodeId{11});
  EXPECT_EQ(spans[1].duration(), Time::zero());  // single beacon
  EXPECT_EQ(spans[2].begin, Time::seconds(9.0));
  EXPECT_EQ(spans[2].duration(), Time::zero());
}

TEST(Spans, ChromeExportCarriesSpanSlices) {
  TraceRecorder rec;
  rec.record(EventKind::AnchorChange, Time::seconds(1.0), sim::NodeId{1},
             sim::NodeId{10});
  rec.record(EventKind::AnchorChange, Time::seconds(5.0), sim::NodeId{1},
             sim::NodeId{11});
  const std::string chrome = chrome_trace_json(rec);
  EXPECT_NE(chrome.find("\"cat\":\"span\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"anchor_tenure\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\",\"pid\":0,\"tid\":1,\"ts\":1000000,"
                        "\"dur\":4000000"),
            std::string::npos);
}

// --- ring truncation surfacing ----------------------------------------------

TEST(DroppedEvents, SurfaceAsAMetricThroughTheExecutor) {
  // An ambient ring recorder small enough to wrap during a real point:
  // the executor must then mint obs.trace.dropped_events.
  runtime::ExperimentSpec spec;
  spec.grid.testbeds = {"VanLAN"};
  spec.grid.policies = {"ViFi"};
  spec.grid.seeds = {1};
  spec.days = 1;
  spec.trips_per_day = 1;
  spec.trip_duration = Time::seconds(10.0);
  spec.workload = "cbr";
  spec.metric_columns = {"mac.transmissions"};
  const runtime::ExperimentPoint point = spec.enumerate().front();
  TraceRecorder recorder(/*per_node_capacity=*/32);
  MetricsRegistry metrics;
  {
    TraceScope trace_scope(recorder);
    MetricsScope metrics_scope(metrics);
    runtime::run_point(point);
  }
  ASSERT_GT(recorder.dropped(), 0u);
  const auto flat = metrics.flatten();
  ASSERT_TRUE(flat.count("obs.trace.dropped_events"));
  EXPECT_EQ(flat.at("obs.trace.dropped_events"),
            static_cast<double>(recorder.dropped()));
}

// --- MetricsRegistry::total histogram contract ------------------------------

TEST(MetricsTotal, SumsHistogramStatisticsAcrossLabelVariants) {
  MetricsRegistry reg;
  reg.histogram("lat.ms", {1.0, 10.0}, {{"node", "n1"}}).observe(0.5);
  reg.histogram("lat.ms", {1.0, 10.0}, {{"node", "n1"}}).observe(5.0);
  reg.histogram("lat.ms", {1.0, 10.0}, {{"node", "n2"}}).observe(20.0);
  EXPECT_EQ(reg.total("lat.ms.count"), 3.0);
  EXPECT_DOUBLE_EQ(reg.total("lat.ms.sum"), 25.5);
  // A name matching nothing reads as zero, like an untouched counter.
  EXPECT_EQ(reg.total("lat.ms.nothing"), 0.0);
}

TEST(MetricsTotal, BareHistogramNameThrowsTheCountVsSumAmbiguity) {
  MetricsRegistry reg;
  reg.histogram("lat.ms", {1.0}, {{"node", "n1"}}).observe(0.5);
  EXPECT_THROW(reg.total("lat.ms"), ContractViolation);
  try {
    reg.total("lat.ms");
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("lat.ms.count"), std::string::npos);
    EXPECT_NE(what.find("lat.ms.sum"), std::string::npos);
  }
}

TEST(MetricsTotal, MixedScalarAndHistogramFamiliesThrow) {
  MetricsRegistry reg;
  reg.counter("x", {{"node", "n1"}}).add(2.0);
  reg.histogram("x", {1.0}, {{"node", "n1"}}).observe(0.5);
  EXPECT_THROW(reg.total("x"), ContractViolation);

  // A counter shadowing a histogram's flattened statistic name is just as
  // ambiguous.
  MetricsRegistry reg2;
  reg2.counter("y.count").add(1.0);
  reg2.histogram("y", {1.0}).observe(0.5);
  EXPECT_THROW(reg2.total("y.count"), ContractViolation);
}

// --- streamed sweep thread-count gate ---------------------------------------

runtime::ExperimentSpec streamed_cbr_spec(const std::string& trace_dir) {
  runtime::ExperimentSpec spec;
  spec.grid.testbeds = {"VanLAN"};
  spec.grid.policies = {"ViFi"};
  spec.grid.seeds = {1};
  spec.days = 1;
  spec.trips_per_day = 2;  // two trips: the stitch actually stitches
  spec.trip_duration = Time::seconds(15.0);
  spec.workload = "cbr";
  spec.trace_dir = trace_dir;
  spec.trace_stream = true;
  spec.metric_columns = {"mac.transmissions", "core.app_delivered"};
  return spec;
}

TEST(StreamedSweep, SpoolAndExportBytesAreThreadCountInvariant) {
  const fs::path root = temp_dir("vifi_streamed_sweep");
  const fs::path dir_one = root / "one";
  const fs::path dir_eight = root / "eight";

  const runtime::ResultSink one =
      runtime::Runner({.threads = 1}).run(streamed_cbr_spec(dir_one.string()));
  const runtime::ResultSink eight =
      runtime::Runner({.threads = 8})
          .run(streamed_cbr_spec(dir_eight.string()));
  EXPECT_FALSE(one.any_errors());
  EXPECT_EQ(one.to_json(), eight.to_json());

  for (const char* ext : {".spool", ".trace.json", ".jsonl", ".metrics.json"}) {
    const std::string name = std::string("point_0000") + ext;
    const std::string a = slurp(dir_one / name);
    const std::string b = slurp(dir_eight / name);
    ASSERT_FALSE(a.empty()) << name;
    EXPECT_EQ(a, b) << name;
  }

  // The spooled timeline reconciles exactly against the recorder counters
  // (the footer) and no part spools are left behind.
  const SpoolReader reader((dir_one / "point_0000.spool").string());
  std::uint64_t scanned = 0;
  reader.scan([&scanned](const TraceEvent&) { ++scanned; });
  EXPECT_EQ(scanned, reader.recorded());
  EXPECT_GT(scanned, 0u);
  for (const fs::path& dir : {dir_one, dir_eight})
    for (const auto& entry : fs::directory_iterator(dir))
      EXPECT_EQ(entry.path().string().find(".part"), std::string::npos)
          << entry.path();

  // Streamed Chrome exports carry the derived span layer.
  const std::string chrome = slurp(dir_one / "point_0000.trace.json");
  EXPECT_NE(chrome.find("\"cat\":\"span\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"anchor_tenure\""), std::string::npos);
  fs::remove_all(root);
}

}  // namespace
}  // namespace vifi::obs
