// Property tests for the vifi-trace v1 serialisation: randomized traces
// round-trip byte-identically (save -> load -> save), and arbitrary
// truncation of a valid file is reported as a crisp parse error, never a
// crash or a different exception type.

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "trace/trace_io.h"
#include "util/rng.h"

namespace vifi::trace {
namespace {

using sim::NodeId;

MeasurementTrace random_trace(Rng& rng) {
  MeasurementTrace t;
  const char* beds[] = {"VanLAN", "DieselNet-Ch1", "Bed_3"};
  t.testbed = beds[rng.uniform_int(0, 2)];
  t.day = static_cast<int>(rng.uniform_int(0, 30));
  t.trip = static_cast<int>(rng.uniform_int(0, 10));
  t.duration = Time::micros(rng.uniform_int(1, 60'000'000));
  t.beacons_per_second = static_cast<int>(rng.uniform_int(1, 20));
  if (rng.bernoulli(0.7)) t.vehicle = NodeId(rng.uniform_int(0, 40));
  const int n_bs = static_cast<int>(rng.uniform_int(0, 6));
  for (int i = 0; i < n_bs; ++i)
    t.bs_ids.push_back(NodeId(rng.uniform_int(0, 40)));

  const int n_slots = static_cast<int>(rng.uniform_int(0, 12));
  for (int i = 0; i < n_slots; ++i) {
    ProbeSlot s;
    s.t = Time::micros(rng.uniform_int(0, 60'000'000));
    s.vehicle_pos = {rng.uniform(-500.0, 500.0), rng.uniform(-500.0, 500.0)};
    const int down = static_cast<int>(rng.uniform_int(0, 4));
    for (int d = 0; d < down; ++d)
      s.down_heard.push_back(NodeId(rng.uniform_int(0, 40)));
    const int up = static_cast<int>(rng.uniform_int(0, 4));
    for (int u = 0; u < up; ++u)
      s.up_heard_by.push_back(NodeId(rng.uniform_int(0, 40)));
    t.slots.push_back(std::move(s));
  }

  const int n_beacons = static_cast<int>(rng.uniform_int(0, 40));
  for (int i = 0; i < n_beacons; ++i)
    t.vehicle_beacons.push_back({Time::micros(rng.uniform_int(0, 60'000'000)),
                                 NodeId(rng.uniform_int(0, 40)),
                                 rng.uniform(-95.0, -35.0)});
  const int n_bsb = static_cast<int>(rng.uniform_int(0, 15));
  for (int i = 0; i < n_bsb; ++i)
    t.bs_beacons.push_back({Time::micros(rng.uniform_int(0, 60'000'000)),
                            NodeId(rng.uniform_int(0, 40)),
                            NodeId(rng.uniform_int(0, 40))});
  return t;
}

TEST(TraceIoProps, RandomTracesRoundTripByteIdentically) {
  Rng rng(20260730);
  for (int iter = 0; iter < 300; ++iter) {
    const MeasurementTrace t = random_trace(rng);
    std::ostringstream first;
    save_trace(t, first);
    std::istringstream in(first.str());
    MeasurementTrace loaded;
    try {
      loaded = load_trace(in);
    } catch (const std::exception& e) {
      FAIL() << "iteration " << iter << ": valid save failed to load: "
             << e.what() << "\n" << first.str();
    }
    std::ostringstream second;
    save_trace(loaded, second);
    ASSERT_EQ(first.str(), second.str()) << "iteration " << iter;
    // Spot-check semantic fields on top of the byte identity.
    ASSERT_EQ(loaded.vehicle, t.vehicle);
    ASSERT_EQ(loaded.bs_ids, t.bs_ids);
    ASSERT_EQ(loaded.slots.size(), t.slots.size());
    ASSERT_EQ(loaded.vehicle_beacons.size(), t.vehicle_beacons.size());
  }
}

TEST(TraceIoProps, TruncationNeverCrashesAndErrorsAreTagged) {
  Rng rng(816);
  for (int iter = 0; iter < 100; ++iter) {
    const MeasurementTrace t = random_trace(rng);
    std::ostringstream os;
    save_trace(t, os);
    const std::string full = os.str();
    const auto cut = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(full.size())));
    std::istringstream in(full.substr(0, cut));
    try {
      // A cut at a line boundary past the header yields a shorter but
      // valid trace; any other cut must throw the tagged parse error.
      (void)load_trace(in);
    } catch (const std::runtime_error& e) {
      ASSERT_NE(std::string(e.what()).find("trace parse error"),
                std::string::npos)
          << "iteration " << iter << ": untagged error: " << e.what();
    }
  }
}

}  // namespace
}  // namespace vifi::trace
