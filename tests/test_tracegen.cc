// TraceForge (src/tracegen/): contact extraction, model fitting, per-seed
// deterministic synthesis, model IO, the TraceCatalog, and the runtime's
// trace_sets replay axis.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>

#include "runtime/runner.h"
#include "scenario/campaign.h"
#include "scenario/live.h"
#include "tracegen/catalog.h"
#include "tracegen/fit.h"
#include "tracegen/model_io.h"
#include "tracegen/synth.h"
#include "trace/trace_io.h"

namespace vifi::tracegen {
namespace {

using sim::NodeId;

/// A trace with two clean contacts at BS0 (seconds 0-2 and 10-12, the
/// second one lossier) and nothing at BS1.
trace::MeasurementTrace two_contact_trace() {
  trace::MeasurementTrace t;
  t.testbed = "TestBed";
  t.vehicle = NodeId(2);
  t.duration = Time::seconds(20.0);
  t.beacons_per_second = 10;
  t.bs_ids = {NodeId(0), NodeId(1)};
  auto add = [&t](int sec, int beacons) {
    for (int b = 0; b < beacons; ++b)
      t.vehicle_beacons.push_back(
          {Time::micros(sec * 1'000'000 + b * 100'000 + 37'000), NodeId(0),
           -65.0});
  };
  for (int s = 0; s <= 2; ++s) add(s, 10);   // lossless contact
  for (int s = 10; s <= 12; ++s) add(s, 5);  // 50% loss contact
  return t;
}

TEST(ExtractContacts, FindsContactsAndLossLevels) {
  const auto contacts = extract_contacts(two_contact_trace(), {});
  ASSERT_EQ(contacts.size(), 2u);
  EXPECT_EQ(contacts[0].bs, NodeId(0));
  EXPECT_EQ(contacts[0].start_sec, 0);
  EXPECT_EQ(contacts[0].duration_s, 3);
  EXPECT_DOUBLE_EQ(contacts[0].mean_loss, 0.0);
  EXPECT_EQ(contacts[1].start_sec, 10);
  EXPECT_EQ(contacts[1].duration_s, 3);
  EXPECT_DOUBLE_EQ(contacts[1].mean_loss, 0.5);
}

TEST(ExtractContacts, GapToleranceBridgesShortFades) {
  trace::MeasurementTrace t = two_contact_trace();
  FitOptions wide;
  wide.gap_tolerance_s = 10;  // bridges the 7-second silence
  const auto merged = extract_contacts(t, wide);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].duration_s, 13);

  FitOptions none;
  none.gap_tolerance_s = 0;
  EXPECT_EQ(extract_contacts(t, none).size(), 2u);
}

TEST(FitModel, PoolsContactsAcrossTraces) {
  const trace::MeasurementTrace t = two_contact_trace();
  const TraceModel model = fit_model({&t, &t}, {});
  EXPECT_EQ(model.testbed, "TestBed");
  EXPECT_EQ(model.source_trips, 2);
  ASSERT_EQ(model.links.size(), 2u);
  const LinkModel* bs0 = model.link(NodeId(0));
  ASSERT_NE(bs0, nullptr);
  // 4 contacts over 2 x 20 s of observation.
  EXPECT_DOUBLE_EQ(bs0->contact_rate_hz, 4.0 / 40.0);
  EXPECT_EQ(bs0->duration_s.size(), 4u);
  // BS1 was never heard: present with rate 0.
  const LinkModel* bs1 = model.link(NodeId(1));
  ASSERT_NE(bs1, nullptr);
  EXPECT_DOUBLE_EQ(bs1->contact_rate_hz, 0.0);
}

TEST(FitModel, RejectsEmptyAndForeignInputs) {
  EXPECT_THROW(fit_model(std::vector<const trace::MeasurementTrace*>{}, {}),
               std::runtime_error);
  trace::MeasurementTrace a = two_contact_trace();
  trace::MeasurementTrace b = two_contact_trace();
  b.testbed = "OtherBed";
  try {
    fit_model({&a, &b}, {});
    FAIL() << "foreign testbed mix must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("different testbeds"),
              std::string::npos);
  }
}

TEST(Burstiness, ClusteredLossesBeatMemoryless) {
  // Contact over seconds 0..9; beacons lost in one solid block (seconds
  // 4-5 silent would split nothing: keep >=1 beacon per second, drop
  // within-second slots in a run).
  trace::MeasurementTrace t;
  t.testbed = "TestBed";
  t.duration = Time::seconds(10.0);
  t.beacons_per_second = 10;
  t.bs_ids = {NodeId(0)};
  for (int s = 0; s < 10; ++s) {
    // Seconds 4 and 5: only the first beacon of the second survives (a
    // burst of 9+9 consecutive slot losses); otherwise lossless.
    const int n = (s == 4 || s == 5) ? 1 : 10;
    for (int b = 0; b < n; ++b)
      t.vehicle_beacons.push_back(
          {Time::micros(s * 1'000'000 + b * 100'000 + 37'000), NodeId(0),
           -60.0});
  }
  const BurstinessStats stats = measure_burstiness({&t}, {});
  EXPECT_GT(stats.slots, 0);
  EXPECT_NEAR(stats.unconditional_loss, 18.0 / 100.0, 1e-9);
  EXPECT_GT(stats.ratio(), 2.0);  // losses cluster
}

TEST(KsDistance, BasicProperties) {
  EXPECT_DOUBLE_EQ(ks_distance({1, 2, 3}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(ks_distance({1, 1, 1}, {9, 9, 9}), 1.0);
  EXPECT_DOUBLE_EQ(ks_distance({}, {}), 0.0);
  const double d = ks_distance({1, 2, 3, 4}, {1, 2, 3, 9});
  EXPECT_GT(d, 0.0);
  EXPECT_LE(d, 0.25 + 1e-12);
}

TEST(Synthesize, DeterministicPerSeedAndSeedSensitive) {
  const trace::MeasurementTrace t = two_contact_trace();
  const TraceModel model = fit_model({&t}, {});
  SynthesisSpec spec;
  spec.vehicles = 3;
  spec.trips_per_day = 2;
  spec.seed = 9;
  const trace::Campaign a = synthesize_fleet(model, spec);
  const trace::Campaign b = synthesize_fleet(model, spec);
  ASSERT_EQ(a.trips.size(), 6u);
  for (std::size_t i = 0; i < a.trips.size(); ++i) {
    std::ostringstream sa, sb;
    trace::save_trace(a.trips[i], sa);
    trace::save_trace(b.trips[i], sb);
    EXPECT_EQ(sa.str(), sb.str()) << "trip " << i;
  }
  spec.seed = 10;
  const trace::Campaign c = synthesize_fleet(model, spec);
  std::ostringstream sa, sc;
  trace::save_trace(a.trips[0], sa);
  trace::save_trace(c.trips[0], sc);
  EXPECT_NE(sa.str(), sc.str());
}

TEST(Synthesize, VehicleIdsFollowTestbedConvention) {
  const trace::MeasurementTrace t = two_contact_trace();  // BSes 0 and 1
  const TraceModel model = fit_model({&t}, {});
  SynthesisSpec spec;
  spec.vehicles = 2;
  const trace::Campaign c = synthesize_fleet(model, spec);
  ASSERT_EQ(c.trips.size(), 2u);
  EXPECT_EQ(c.trips[0].vehicle, NodeId(2));
  EXPECT_EQ(c.trips[1].vehicle, NodeId(3));
  EXPECT_EQ(c.trips[0].bs_ids, t.bs_ids);
  EXPECT_EQ(c.trips[0].testbed, "TestBed");
}

TEST(Synthesize, StatisticallyMatchesTheSource) {
  // Record a real campaign, fit, synthesize an equally-sized set, and
  // compare the §5-relevant statistics. Tolerances are loose — this is a
  // sanity floor; bench/validation_synth gates the tight numbers.
  const scenario::Testbed bed = scenario::make_dieselnet(1);
  scenario::CampaignConfig cc;
  cc.days = 1;
  cc.trips_per_day = 3;
  cc.trip_duration = Time::seconds(90.0);
  cc.seed = 777;
  cc.log_probes = false;
  const trace::Campaign source = scenario::generate_campaign(bed, cc);

  const TraceModel model = fit_model(source, {});
  SynthesisSpec spec;
  spec.vehicles = 1;
  spec.trips_per_day = 3;
  spec.trip_duration = Time::seconds(90.0);
  spec.seed = 4321;
  const trace::Campaign synth = synthesize_fleet(model, spec);

  std::vector<const trace::MeasurementTrace*> src, syn;
  for (const auto& t : source.trips) src.push_back(&t);
  for (const auto& t : synth.trips) syn.push_back(&t);

  const auto d_src = pooled_contact_durations(src, {});
  const auto d_syn = pooled_contact_durations(syn, {});
  ASSERT_FALSE(d_src.empty());
  ASSERT_FALSE(d_syn.empty());
  EXPECT_LT(ks_distance(d_src, d_syn), 0.5);

  const double loss_src = pooled_contact_loss(src, {});
  const double loss_syn = pooled_contact_loss(syn, {});
  EXPECT_NEAR(loss_syn, loss_src, 0.25);
}

class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("vifi_catalog_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(dir_);
    drop_catalog_cache();
  }
  void TearDown() override {
    std::filesystem::remove_all(dir_);
    drop_catalog_cache();
  }

  trace::Campaign fleet_campaign(int vehicles = 2, int trips = 2) {
    const trace::MeasurementTrace base = two_contact_trace();
    const TraceModel model = fit_model({&base}, {});
    SynthesisSpec spec;
    spec.vehicles = vehicles;
    spec.trips_per_day = trips;
    spec.seed = 5;
    return synthesize_fleet(model, spec);
  }

  std::filesystem::path dir_;
};

TEST_F(CatalogTest, WriteLoadRoundTrip) {
  const trace::Campaign campaign = fleet_campaign(2, 3);
  write_catalog(dir_.string(), "unit", campaign);
  const TraceCatalog cat = TraceCatalog::load(dir_.string());
  EXPECT_EQ(cat.name(), "unit");
  EXPECT_EQ(cat.testbed(), "TestBed");
  EXPECT_EQ(cat.fleet_size(), 2);
  EXPECT_EQ(cat.days(), 1);
  ASSERT_EQ(cat.trip_groups(), 3u);
  ASSERT_EQ(cat.traces().size(), 6u);
  const auto fleet = cat.fleet_trip(1);
  ASSERT_EQ(fleet.size(), 2u);
  EXPECT_EQ(fleet[0]->vehicle, NodeId(2));
  EXPECT_EQ(fleet[1]->vehicle, NodeId(3));
  EXPECT_EQ(fleet[0]->trip, 1);
}

TEST_F(CatalogTest, SharedLoaderReturnsOneInstance) {
  write_catalog(dir_.string(), "unit", fleet_campaign());
  const auto a = load_catalog_shared(dir_.string());
  const auto b = load_catalog_shared(dir_.string());
  EXPECT_EQ(a.get(), b.get());
  drop_catalog_cache();
  const auto c = load_catalog_shared(dir_.string());
  EXPECT_NE(a.get(), c.get());
}

TEST_F(CatalogTest, MissingManifestIsACrispError) {
  std::filesystem::create_directories(dir_);
  try {
    TraceCatalog::load(dir_.string());
    FAIL() << "must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("manifest"), std::string::npos);
  }
}

TEST_F(CatalogTest, ForeignManifestVersionIsRejected) {
  std::filesystem::create_directories(dir_);
  std::ofstream(dir_ / "manifest.txt") << "# vifi-catalog v9\n";
  try {
    TraceCatalog::load(dir_.string());
    FAIL() << "must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported manifest version"),
              std::string::npos);
  }
}

TEST_F(CatalogTest, ManifestTraceMismatchIsRejected) {
  const trace::Campaign campaign = fleet_campaign(2, 1);
  write_catalog(dir_.string(), "unit", campaign);
  // Swap one trace file for a different vehicle's log: header contradicts
  // the manifest line.
  trace::MeasurementTrace rogue = campaign.trips[1];  // vehicle 3
  trace::save_trace_file(rogue, (dir_ / "day0_trip0_veh2.vifitrace").string());
  try {
    TraceCatalog::load(dir_.string());
    FAIL() << "must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("logged by"), std::string::npos);
  }
}

TEST_F(CatalogTest, RefusesLegacyTracesWithoutVehicles) {
  trace::Campaign campaign = fleet_campaign(1, 1);
  campaign.trips[0].vehicle = NodeId();
  try {
    write_catalog(dir_.string(), "unit", campaign);
    FAIL() << "must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("logging vehicle"),
              std::string::npos);
  }
}

TEST_F(CatalogTest, RefusesRaggedFleets) {
  trace::Campaign campaign = fleet_campaign(2, 2);
  campaign.trips.pop_back();  // second trip loses vehicle 3
  EXPECT_THROW(write_catalog(dir_.string(), "unit", campaign),
               std::runtime_error);
}

TEST_F(CatalogTest, RefusesRaggedDurationsWithinATrip) {
  // One trip group's loss schedule has one horizon; a vehicle logging a
  // different duration would be truncated or measured into dead air.
  trace::Campaign campaign = fleet_campaign(2, 1);
  campaign.trips[1].duration = campaign.trips[0].duration + Time::seconds(5);
  write_catalog(dir_.string(), "unit", campaign);
  try {
    TraceCatalog::load(dir_.string());
    FAIL() << "must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("ragged"), std::string::npos);
  }
}

TEST_F(CatalogTest, ManifestLineOrderDoesNotChangeTheCatalog) {
  // Two manifests naming the same files in different line orders are the
  // same catalog: traces() comes back in canonical (day, trip, vehicle)
  // order either way, so replays stay byte-identical.
  write_catalog(dir_.string(), "unit", fleet_campaign(2, 2));
  const auto manifest_path = dir_ / "manifest.txt";
  std::ifstream in(manifest_path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  in.close();
  ASSERT_GE(lines.size(), 4u);
  std::reverse(lines.begin() + 2, lines.end());  // keep magic + header
  std::ofstream out(manifest_path);
  for (const std::string& line : lines) out << line << "\n";
  out.close();
  const TraceCatalog cat = TraceCatalog::load(dir_.string());
  for (std::size_t i = 1; i < cat.traces().size(); ++i) {
    const auto& prev = cat.traces()[i - 1];
    const auto& cur = cat.traces()[i];
    EXPECT_LT(std::tuple(prev.day, prev.trip, prev.vehicle),
              std::tuple(cur.day, cur.trip, cur.vehicle));
  }
}

/// Serialises a trace through the catalog's own writer: two traces with
/// identical bytes here are identical for any replay.
std::string trace_bytes(const trace::MeasurementTrace& t,
                        const std::filesystem::path& scratch) {
  trace::save_trace_file(t, scratch.string());
  std::ifstream in(scratch, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST_F(CatalogTest, StreamMatchesEagerLoadByteForByte) {
  write_catalog(dir_.string(), "unit", fleet_campaign(2, 3));
  const TraceCatalog eager = TraceCatalog::load(dir_.string());
  const CatalogStream stream = CatalogStream::open(dir_.string());
  EXPECT_EQ(stream.name(), eager.name());
  EXPECT_EQ(stream.testbed(), eager.testbed());
  EXPECT_EQ(stream.fleet_size(), eager.fleet_size());
  EXPECT_EQ(stream.vehicle_ids(), eager.vehicle_ids());
  EXPECT_EQ(stream.days(), eager.days());
  ASSERT_EQ(stream.trip_groups(), eager.trip_groups());
  const auto scratch = dir_ / "cmp.vifitrace";
  for (std::size_t g = 0; g < stream.trip_groups(); ++g) {
    const std::vector<trace::MeasurementTrace> lazy = stream.load_group(g);
    const auto fleet = eager.fleet_trip(g);
    ASSERT_EQ(lazy.size(), fleet.size());
    EXPECT_EQ(stream.group_key(g),
              std::make_pair(fleet.front()->day, fleet.front()->trip));
    for (std::size_t v = 0; v < lazy.size(); ++v)
      EXPECT_EQ(trace_bytes(lazy[v], scratch), trace_bytes(*fleet[v], scratch))
          << "group " << g << " vehicle slot " << v;
  }
}

TEST_F(CatalogTest, StreamDefersRaggedDurationsToLoadGroup) {
  // Ragged durations live in the trace files, not the manifest, so the
  // stream opens fine and only the defective group fails — with the eager
  // loader's message.
  trace::Campaign campaign = fleet_campaign(2, 2);
  campaign.trips[1].duration = campaign.trips[0].duration + Time::seconds(5);
  write_catalog(dir_.string(), "unit", campaign);
  const CatalogStream stream = CatalogStream::open(dir_.string());
  ASSERT_EQ(stream.trip_groups(), 2u);
  EXPECT_NO_THROW(stream.load_group(1));  // the clean group still loads
  try {
    stream.load_group(0);
    FAIL() << "must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("ragged"), std::string::npos);
  }
}

TEST_F(CatalogTest, StreamDefersMissingTraceFileToLoadGroup) {
  write_catalog(dir_.string(), "unit", fleet_campaign(2, 2));
  std::filesystem::remove(dir_ / "day0_trip1_veh2.vifitrace");
  // Eager load refuses the whole catalog up front; the stream opens from
  // the manifest alone and fails only the group that needs the file.
  EXPECT_THROW(TraceCatalog::load(dir_.string()), std::runtime_error);
  const CatalogStream stream = CatalogStream::open(dir_.string());
  EXPECT_NO_THROW(stream.load_group(0));
  EXPECT_THROW(stream.load_group(1), std::runtime_error);
}

TEST_F(CatalogTest, StreamDefersHeaderContradictionsToLoadGroup) {
  const trace::Campaign campaign = fleet_campaign(2, 1);
  write_catalog(dir_.string(), "unit", campaign);
  trace::MeasurementTrace rogue = campaign.trips[1];  // vehicle 3
  trace::save_trace_file(rogue, (dir_ / "day0_trip0_veh2.vifitrace").string());
  const CatalogStream stream = CatalogStream::open(dir_.string());
  try {
    stream.load_group(0);
    FAIL() << "must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("logged by"), std::string::npos);
  }
}

TEST_F(CatalogTest, StreamRejectsManifestDefectsAtOpen) {
  // Truncated manifest (magic only, no header): rejected without reading
  // any trace file, same as the eager loader.
  std::filesystem::create_directories(dir_);
  std::ofstream(dir_ / "manifest.txt") << "# vifi-catalog v1\n";
  try {
    CatalogStream::open(dir_.string());
    FAIL() << "must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("no catalog header"),
              std::string::npos);
  }

  // Mismatched trip vehicle sets are manifest-derivable: rejected at open.
  write_catalog(dir_.string(), "unit", fleet_campaign(2, 2));
  const auto manifest_path = dir_ / "manifest.txt";
  std::ifstream in(manifest_path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  in.close();
  ASSERT_GE(lines.size(), 4u);
  lines.pop_back();  // the last trip loses a vehicle
  std::ofstream out(manifest_path);
  for (const std::string& line : lines) out << line << "\n";
  out.close();
  try {
    CatalogStream::open(dir_.string());
    FAIL() << "must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("different vehicle set"),
              std::string::npos);
  }
}

TEST_F(CatalogTest, StreamGroupIndexOutOfRangeIsACrispError) {
  write_catalog(dir_.string(), "unit", fleet_campaign(2, 1));
  const CatalogStream stream = CatalogStream::open(dir_.string());
  ASSERT_EQ(stream.trip_groups(), 1u);
  EXPECT_THROW(stream.load_group(1), std::runtime_error);
  EXPECT_THROW(stream.group_key(1), std::runtime_error);
}

TEST(ModelIo, RoundTripsByteIdentically) {
  const trace::MeasurementTrace t = two_contact_trace();
  const TraceModel model = fit_model({&t}, {});
  std::ostringstream first;
  save_model(model, first);
  std::istringstream in(first.str());
  const TraceModel reloaded = load_model(in);
  std::ostringstream second;
  save_model(reloaded, second);
  EXPECT_EQ(first.str(), second.str());
  EXPECT_EQ(reloaded.testbed, model.testbed);
  EXPECT_EQ(reloaded.links.size(), model.links.size());
  EXPECT_EQ(reloaded.link(NodeId(0))->mean_on, model.link(NodeId(0))->mean_on);
}

TEST(ModelIo, RejectsForeignVersionAndTruncation) {
  std::istringstream foreign("# vifi-tracemodel v2\n");
  try {
    load_model(foreign);
    FAIL() << "must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported version"),
              std::string::npos);
  }

  const trace::MeasurementTrace t = two_contact_trace();
  std::ostringstream full;
  save_model(fit_model({&t}, {}), full);
  const std::string text = full.str();
  // Drop the last line: the link count stops matching the header.
  const auto cut = text.rfind("losses");
  std::istringstream truncated(text.substr(0, cut));
  try {
    load_model(truncated);
    FAIL() << "must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }
}

TEST(ModelIo, RejectsMismatchedParallelSampleLists) {
  // durations and losses are parallel per-contact arrays; a length
  // mismatch would index out of bounds at synthesis time.
  std::istringstream in(
      "# vifi-tracemodel v1\n"
      "model Bed duration_us 1000000 bps 10 gap_s 2 trips 1 links 1\n"
      "link 0 rate 0.1 on_us 1000000 off_us 0 rssi_mean -70 rssi_sd 4\n"
      "durations 0 3 5 5 5\n"
      "losses 0 1 0.5\n");
  try {
    load_model(in);
    FAIL() << "must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("parallel lists must match"),
              std::string::npos);
  }
}

class ReplayAxisTest : public CatalogTest {};

TEST_F(ReplayAxisTest, GridEnumeratesTraceSetsLikeAnyAxis) {
  runtime::ExperimentSpec spec;
  spec.grid.testbeds = {"DieselNet-Ch1"};
  spec.grid.fleet_sizes = {2};
  spec.grid.trace_sets = {"a", "b"};
  spec.grid.policies = {"ViFi"};
  spec.grid.seeds = {1, 2};
  EXPECT_EQ(spec.grid.size(), 4u);
  const auto points = spec.enumerate();
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].trace_set, "a");
  EXPECT_EQ(points[2].trace_set, "b");
  // Different trace sets decorrelate their seeds; the axis is real.
  EXPECT_NE(points[0].point_seed, points[2].point_seed);

  // No trace_sets axis: enumeration is bit-identical to the historical
  // derivation (trace_set empty, seeds untouched).
  runtime::ExperimentSpec plain = spec;
  plain.grid.trace_sets = {};
  const auto base = plain.enumerate();
  ASSERT_EQ(base.size(), 2u);
  EXPECT_TRUE(base[0].trace_set.empty());
}

TEST_F(ReplayAxisTest, SeedsIgnoreHowTheCatalogPathIsSpelled) {
  // The same catalog reached via ./cat, /abs/cat or cat/ must replay
  // identically — only the directory's name feeds the seed derivation.
  auto seed_for = [](const std::string& trace_set) {
    runtime::ExperimentSpec spec;
    spec.grid.trace_sets = {trace_set};
    return spec.enumerate().front().campaign_seed;
  };
  EXPECT_EQ(seed_for("cat"), seed_for("./cat"));
  EXPECT_EQ(seed_for("cat"), seed_for("/tmp/somewhere/cat"));
  EXPECT_EQ(seed_for("cat"), seed_for("cat/"));
  EXPECT_NE(seed_for("cat"), seed_for("other"));
}

TEST_F(ReplayAxisTest, ExecutorReplaysCatalogDeterministically) {
  // Record a 2-bus campaign on the real testbed, write it as a catalog,
  // and sweep the replay axis at 1 and 3 threads: byte-identical output.
  const scenario::Testbed bed = scenario::make_dieselnet(1, 2);
  scenario::CampaignConfig cc;
  cc.days = 1;
  cc.trips_per_day = 2;
  cc.trip_duration = Time::seconds(30.0);
  cc.seed = 99;
  cc.log_probes = false;
  write_catalog(dir_.string(), "replaytest",
                scenario::generate_campaign(bed, cc));

  runtime::ExperimentSpec spec;
  spec.name = "replay_axis";
  spec.grid.testbeds = {"DieselNet-Ch1"};
  spec.grid.fleet_sizes = {2};
  spec.grid.trace_sets = {dir_.string()};
  spec.grid.policies = {"ViFi"};
  spec.grid.seeds = {1};
  spec.workload = "cbr";

  const runtime::ResultSink one = runtime::Runner({.threads = 1}).run(spec);
  const runtime::ResultSink three = runtime::Runner({.threads = 3}).run(spec);
  ASSERT_FALSE(one.any_errors()) << one.ordered().front().error;
  EXPECT_EQ(one.to_json(), three.to_json());
  EXPECT_EQ(one.to_csv(), three.to_csv());
  // The replay column is present and the point actually moved packets.
  EXPECT_NE(one.to_csv().find("trace_set"), std::string::npos);
  EXPECT_GT(one.ordered().front().metrics.at("packets_delivered"), 0.0);
}

TEST_F(ReplayAxisTest, MismatchedCatalogIsAPointError) {
  const scenario::Testbed bed = scenario::make_dieselnet(1, 2);
  scenario::CampaignConfig cc;
  cc.days = 1;
  cc.trips_per_day = 1;
  cc.trip_duration = Time::seconds(10.0);
  cc.seed = 3;
  cc.log_probes = false;
  write_catalog(dir_.string(), "mismatch",
                scenario::generate_campaign(bed, cc));

  runtime::ExperimentSpec spec;
  spec.grid.testbeds = {"VanLAN"};  // catalog is DieselNet-Ch1
  spec.grid.fleet_sizes = {2};
  spec.grid.trace_sets = {dir_.string()};
  spec.grid.policies = {"ViFi"};
  spec.grid.seeds = {1};
  spec.workload = "cbr";
  const runtime::ResultSink sink = runtime::Runner({.threads = 1}).run(spec);
  ASSERT_TRUE(sink.any_errors());
  const runtime::PointResult failed = sink.ordered().front();
  EXPECT_NE(failed.error.find("was recorded on testbed"), std::string::npos);
  // The error row keeps its identity columns — a bare index is useless
  // for telling which grid point failed.
  EXPECT_EQ(failed.testbed, "VanLAN");
  EXPECT_EQ(failed.fleet, 2);
  EXPECT_EQ(failed.trace_set, dir_.string());
  EXPECT_EQ(failed.policy, "ViFi");
}

TEST_F(ReplayAxisTest, BeaconOnlyCatalogRejectsTheReplayWorkload) {
  // §3.1 policy replay consumes probe slots; a beacon-only catalog must
  // fail loudly instead of reporting all-zero metrics.
  const scenario::Testbed bed = scenario::make_dieselnet(1, 2);
  scenario::CampaignConfig cc;
  cc.days = 1;
  cc.trips_per_day = 1;
  cc.trip_duration = Time::seconds(10.0);
  cc.seed = 21;
  cc.log_probes = false;
  write_catalog(dir_.string(), "beacononly",
                scenario::generate_campaign(bed, cc));

  runtime::ExperimentSpec spec;
  spec.grid.testbeds = {"DieselNet-Ch1"};
  spec.grid.fleet_sizes = {2};
  spec.grid.trace_sets = {dir_.string()};
  spec.grid.policies = {"BestBS"};
  spec.grid.seeds = {1};
  spec.workload = "replay";
  const runtime::ResultSink sink = runtime::Runner({.threads = 1}).run(spec);
  ASSERT_TRUE(sink.any_errors());
  EXPECT_NE(sink.ordered().front().error.find("no probe slots"),
            std::string::npos);
}

TEST_F(ReplayAxisTest, LiveTripBuildsStraightFromACatalog) {
  const scenario::Testbed bed = scenario::make_dieselnet(1, 2);
  scenario::CampaignConfig cc;
  cc.days = 1;
  cc.trips_per_day = 1;
  cc.trip_duration = Time::seconds(15.0);
  cc.seed = 12;
  cc.log_probes = false;
  write_catalog(dir_.string(), "livetrip",
                scenario::generate_campaign(bed, cc));
  const auto catalog = load_catalog_shared(dir_.string());
  scenario::LiveTrip trip(bed, *catalog, 0, core::SystemConfig{}, 44);
  trip.run_until(Time::seconds(5.0));
  EXPECT_EQ(trip.transports().size(), 2u);
  EXPECT_THROW(scenario::LiveTrip(bed, *catalog, 7, core::SystemConfig{}, 1),
               std::runtime_error);
}

}  // namespace
}  // namespace vifi::tracegen
