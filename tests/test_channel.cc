// Unit tests for the channel models: two-state processes, distance curve,
// the composite vehicular channel, and the trace-driven loss schedule.
// Includes the calibration properties behind Figs. 5 and 6.

#include <gtest/gtest.h>

#include <cmath>

#include "channel/distance_loss.h"
#include "channel/markov.h"
#include "channel/trace_driven.h"
#include "channel/vehicular.h"
#include "mobility/vec2.h"
#include "util/contracts.h"

namespace vifi::channel {
namespace {

using mobility::Vec2;
using sim::NodeId;

// -------------------------------------------------------- TwoStateProcess --

TEST(TwoStateProcess, StationaryFraction) {
  Rng r(1);
  TwoStateProcess p(Time::seconds(1.0), Time::seconds(3.0), true, r);
  EXPECT_NEAR(p.stationary_on_fraction(), 0.25, 1e-12);
}

TEST(TwoStateProcess, LongRunOnFractionMatchesStationary) {
  Rng r(2);
  TwoStateProcess p =
      TwoStateProcess::stationary(Time::seconds(2.0), Time::seconds(6.0), r);
  int on = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (p.on_at(Time::millis(10.0 * i))) ++on;
  }
  EXPECT_NEAR(static_cast<double>(on) / n, 0.25, 0.02);
}

TEST(TwoStateProcess, StateIsPersistentAtShortLags) {
  // Consecutive 10 ms samples should almost always agree when sojourn
  // times are seconds long — that's what makes losses bursty.
  Rng r(3);
  TwoStateProcess p =
      TwoStateProcess::stationary(Time::seconds(2.0), Time::seconds(2.0), r);
  int flips = 0;
  bool prev = p.on_at(Time::zero());
  for (int i = 1; i < 10000; ++i) {
    const bool cur = p.on_at(Time::millis(10.0 * i));
    if (cur != prev) ++flips;
    prev = cur;
  }
  EXPECT_LT(flips, 200);
}

TEST(TwoStateProcess, NonMonotoneQueryThrows) {
  Rng r(4);
  TwoStateProcess p(Time::seconds(1.0), Time::seconds(1.0), true, r);
  p.on_at(Time::seconds(5.0));
  EXPECT_THROW(p.on_at(Time::seconds(4.0)), ContractViolation);
}

TEST(TwoStateProcess, DeterministicForSameSeed) {
  TwoStateProcess a =
      TwoStateProcess::stationary(Time::seconds(1), Time::seconds(1), Rng(7));
  TwoStateProcess b =
      TwoStateProcess::stationary(Time::seconds(1), Time::seconds(1), Rng(7));
  for (int i = 0; i < 1000; ++i)
    EXPECT_EQ(a.on_at(Time::millis(5.0 * i)), b.on_at(Time::millis(5.0 * i)));
}

// ------------------------------------------------------ DistanceLossCurve --

TEST(DistanceLossCurve, NearFieldIsNearPMax) {
  // The wide logistic shoulder means even d = 0 sits slightly below p_max
  // (outdoor WiFi is never loss-free, Fig. 6b's P(A) = 0.75 at a *chosen*
  // nearby BS).
  DistanceLossCurve c;
  EXPECT_GT(c.reception_prob(0.0), 0.88);
  EXPECT_LE(c.reception_prob(0.0), c.params().p_max);
}

TEST(DistanceLossCurve, HalvesAtMidpoint) {
  DistanceLossCurve c;
  EXPECT_NEAR(c.reception_prob(c.params().midpoint_m),
              c.params().p_max / 2.0, 1e-9);
}

TEST(DistanceLossCurve, MonotoneDecreasing) {
  DistanceLossCurve c;
  double prev = 1.1;
  for (double d = 0.0; d < 400.0; d += 10.0) {
    const double p = c.reception_prob(d);
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(DistanceLossCurve, CutoffIsNegligible) {
  DistanceLossCurve c;
  EXPECT_LE(c.reception_prob(c.cutoff_m()), 1.1e-3);
}

TEST(DistanceLossCurve, NegativeDistanceThrows) {
  DistanceLossCurve c;
  EXPECT_THROW(c.reception_prob(-1.0), vifi::ContractViolation);
}

TEST(DistanceLossCurve, RangeForInvertsTheCurve) {
  DistanceLossCurve c;
  for (const double p : {0.9, 0.5, 0.1, 0.05, 0.01, 1e-3}) {
    const double d = c.range_for(p);
    EXPECT_NEAR(c.reception_prob(d), p, 1e-9) << "p = " << p;
    // One meter past the range is strictly below p — the sub-audibility
    // proof spatial culling rests on.
    EXPECT_LT(c.reception_prob(d + 1.0), p) << "p = " << p;
  }
}

TEST(DistanceLossCurve, RangeForIsMonotoneInThreshold) {
  DistanceLossCurve c;
  EXPECT_GT(c.range_for(0.01), c.range_for(0.05));
  EXPECT_GT(c.range_for(0.05), c.range_for(0.5));
}

TEST(DistanceLossCurve, RangeForUnreachableThresholdIsZero) {
  DistanceLossCurve c;
  // Even distance zero sits below p_max, so a p_max threshold (or higher)
  // is unreachable: the whole plane is sub-threshold.
  EXPECT_EQ(c.range_for(c.params().p_max), 0.0);
  EXPECT_EQ(c.range_for(0.999), 0.0);
}

TEST(SynthesizeRssi, DecreasesWithDistance) {
  Rng r(5);
  double near = 0.0, far = 0.0;
  for (int i = 0; i < 200; ++i) {
    near += synthesize_rssi_dbm(10.0, r);
    far += synthesize_rssi_dbm(200.0, r);
  }
  EXPECT_GT(near / 200, far / 200 + 10.0);
}

// -------------------------------------------------------- VehicularChannel --

VehicularChannel::PositionFn static_positions(double separation) {
  return [separation](NodeId id, Time) {
    return id.value() == 0 ? Vec2{0.0, 0.0} : Vec2{separation, 0.0};
  };
}

TEST(VehicularChannel, CloseLinkDeliversMost) {
  VehicularChannelParams params;
  VehicularChannel ch(params, static_positions(20.0), Rng(11));
  int got = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (ch.sample_delivery(NodeId(0), NodeId(1), Time::millis(10.0 * i)))
      ++got;
  const double rate = static_cast<double>(got) / n;
  // Even next to a BS the vehicular channel is lossy — the paper measures
  // P(A) = 0.75 for a chosen nearby BS (Fig. 6b); burst fading and gray
  // periods shave a lot off p_max.
  EXPECT_GT(rate, 0.55);
  EXPECT_LT(rate, 0.95);
}

TEST(VehicularChannel, FarLinkDeliversNothing) {
  VehicularChannelParams params;
  VehicularChannel ch(params, static_positions(1000.0), Rng(13));
  for (int i = 0; i < 1000; ++i)
    EXPECT_FALSE(
        ch.sample_delivery(NodeId(0), NodeId(1), Time::millis(10.0 * i)));
}

TEST(VehicularChannel, LossesAreBursty) {
  // P(loss_{i+1} | loss_i) must clearly exceed the unconditional loss —
  // the core Fig. 6(a) structure.
  VehicularChannelParams params;
  VehicularChannel ch(params, static_positions(60.0), Rng(17));
  std::vector<bool> rx;
  const int n = 200000;
  rx.reserve(n);
  for (int i = 0; i < n; ++i)
    rx.push_back(
        ch.sample_delivery(NodeId(0), NodeId(1), Time::millis(10.0 * i)));
  int losses = 0, pairs = 0, both = 0;
  for (int i = 0; i + 1 < n; ++i) {
    if (!rx[static_cast<std::size_t>(i)]) {
      ++losses;
      ++pairs;
      if (!rx[static_cast<std::size_t>(i) + 1]) ++both;
    }
  }
  const double uncond = static_cast<double>(losses) / n;
  const double cond = static_cast<double>(both) / pairs;
  // Conditional loss clearly exceeds unconditional: the Fig. 6(a) core.
  EXPECT_GT(cond, 1.35 * uncond);
  EXPECT_GT(cond, 0.55);
}

TEST(VehicularChannel, LossesRoughlyIndependentAcrossBSes) {
  // Two BSes at the same distance from a receiver: conditional reception
  // from B after a loss from A should be close to unconditional (§3.4.2).
  VehicularChannelParams params;
  auto positions = [](NodeId id, Time) {
    if (id.value() == 0) return Vec2{0.0, 0.0};     // A
    if (id.value() == 1) return Vec2{100.0, 0.0};   // B
    return Vec2{50.0, 40.0};                        // receiver
  };
  VehicularChannel ch(params, positions, Rng(19));
  ch.mark_mobile(NodeId(2));
  int n = 150000;
  int b_got = 0, a_lost = 0, b_got_after_a_lost = 0;
  bool prev_a_lost = false;
  for (int i = 0; i < n; ++i) {
    const Time t = Time::millis(20.0 * i);
    const bool a = ch.sample_delivery(NodeId(0), NodeId(2), t);
    const bool b =
        ch.sample_delivery(NodeId(1), NodeId(2), t + Time::millis(10.0));
    if (b) ++b_got;
    if (prev_a_lost) {
      ++a_lost;
      if (b) ++b_got_after_a_lost;
    }
    prev_a_lost = !a;
  }
  const double p_b = static_cast<double>(b_got) / n;
  const double p_b_cond = static_cast<double>(b_got_after_a_lost) / a_lost;
  // Slightly lower than unconditional (common-mode fade) but nowhere near
  // the collapse seen on the same path.
  EXPECT_GT(p_b_cond, 0.6 * p_b);
  EXPECT_LE(p_b_cond, p_b + 0.05);
}

TEST(VehicularChannel, ReceptionProbMatchesEmpiricalRate) {
  VehicularChannelParams params;
  VehicularChannel ch(params, static_positions(120.0), Rng(23));
  // Average the instantaneous probability and compare with realized rate.
  double psum = 0.0;
  int got = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const Time t = Time::millis(10.0 * i);
    psum += ch.reception_prob(NodeId(0), NodeId(1), t);
    if (ch.sample_delivery(NodeId(0), NodeId(1), t)) ++got;
  }
  EXPECT_NEAR(psum / n, static_cast<double>(got) / n, 0.02);
}

TEST(VehicularChannel, GeometricProbIgnoresFades) {
  VehicularChannelParams params;
  VehicularChannel ch(params, static_positions(params.distance.midpoint_m),
                      Rng(29));
  EXPECT_NEAR(ch.geometric_reception_prob(NodeId(0), NodeId(1), Time::zero()),
              params.distance.p_max / 2.0, 1e-9);
}

TEST(VehicularChannel, DeterministicForSameSeed) {
  VehicularChannelParams params;
  VehicularChannel a(params, static_positions(80.0), Rng(31));
  VehicularChannel b(params, static_positions(80.0), Rng(31));
  for (int i = 0; i < 5000; ++i) {
    const Time t = Time::millis(10.0 * i);
    EXPECT_EQ(a.sample_delivery(NodeId(0), NodeId(1), t),
              b.sample_delivery(NodeId(0), NodeId(1), t));
  }
}

// --------------------------------------------------------- TraceLossModel --

TEST(TraceLossModel, UnknownPairsAreUnreachable) {
  TraceLossModel m(Rng(37));
  EXPECT_DOUBLE_EQ(m.loss_rate(NodeId(0), NodeId(1), Time::zero()), 1.0);
  EXPECT_FALSE(m.sample_delivery(NodeId(0), NodeId(1), Time::zero()));
}

TEST(TraceLossModel, PerSecondScheduleLookup) {
  TraceLossModel m(Rng(41));
  m.set_loss_rate(NodeId(0), NodeId(1), 0, 0.25);
  m.set_loss_rate(NodeId(0), NodeId(1), 1, 0.75);
  EXPECT_DOUBLE_EQ(m.loss_rate(NodeId(0), NodeId(1), Time::millis(500.0)),
                   0.25);
  EXPECT_DOUBLE_EQ(m.loss_rate(NodeId(0), NodeId(1), Time::millis(1500.0)),
                   0.75);
  // Symmetric by construction (§5.1).
  EXPECT_DOUBLE_EQ(m.loss_rate(NodeId(1), NodeId(0), Time::millis(500.0)),
                   0.25);
}

TEST(TraceLossModel, ConstantRateFillsGaps) {
  TraceLossModel m(Rng(43));
  m.set_constant_loss_rate(NodeId(2), NodeId(3), 0.5);
  m.set_loss_rate(NodeId(2), NodeId(3), 2, 0.1);
  EXPECT_DOUBLE_EQ(m.loss_rate(NodeId(2), NodeId(3), Time::seconds(0.5)), 0.5);
  EXPECT_DOUBLE_EQ(m.loss_rate(NodeId(2), NodeId(3), Time::seconds(2.5)), 0.1);
  EXPECT_DOUBLE_EQ(m.loss_rate(NodeId(2), NodeId(3), Time::seconds(9.0)), 0.5);
}

TEST(TraceLossModel, SampleRateMatchesSchedule) {
  TraceLossModel m(Rng(47));
  m.set_constant_loss_rate(NodeId(0), NodeId(1), 0.3);
  int got = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (m.sample_delivery(NodeId(0), NodeId(1), Time::millis(i))) ++got;
  EXPECT_NEAR(static_cast<double>(got) / n, 0.7, 0.02);
}

TEST(TraceLossModel, HorizonTracksLongestSchedule) {
  TraceLossModel m(Rng(53));
  EXPECT_EQ(m.horizon_seconds(), 0);
  m.set_loss_rate(NodeId(0), NodeId(1), 41, 0.5);
  EXPECT_EQ(m.horizon_seconds(), 42);
}

TEST(TraceLossModel, RejectsOutOfRangeInputs) {
  TraceLossModel m(Rng(59));
  EXPECT_THROW(m.set_loss_rate(NodeId(0), NodeId(1), -1, 0.5),
               vifi::ContractViolation);
  EXPECT_THROW(m.set_loss_rate(NodeId(0), NodeId(1), 0, 1.5),
               vifi::ContractViolation);
}

}  // namespace
}  // namespace vifi::channel
