// Unit tests for trace records, serialisation round-trips, and the §5.1
// beacon-log -> loss-schedule conversion.

#include <gtest/gtest.h>

#include <sstream>

#include "trace/loss_schedule.h"
#include "trace/observations.h"
#include "trace/trace_io.h"

namespace vifi::trace {
namespace {

using sim::NodeId;

MeasurementTrace tiny_trace() {
  MeasurementTrace t;
  t.testbed = "TestBed";
  t.day = 1;
  t.trip = 2;
  t.duration = Time::seconds(3.0);
  t.beacons_per_second = 10;
  t.bs_ids = {NodeId(0), NodeId(1)};
  ProbeSlot s;
  s.t = Time::millis(100.0);
  s.vehicle_pos = {12.5, 7.25};
  s.down_heard = {NodeId(0)};
  s.up_heard_by = {NodeId(0), NodeId(1)};
  t.slots.push_back(s);
  t.vehicle_beacons.push_back({Time::millis(137.0), NodeId(0), -61.5});
  t.vehicle_beacons.push_back({Time::millis(1137.0), NodeId(1), -70.25});
  t.bs_beacons.push_back({Time::millis(200.0), NodeId(0), NodeId(1)});
  return t;
}

TEST(ProbeSlot, MembershipQueries) {
  const MeasurementTrace t = tiny_trace();
  EXPECT_TRUE(t.slots[0].down_from(NodeId(0)));
  EXPECT_FALSE(t.slots[0].down_from(NodeId(1)));
  EXPECT_TRUE(t.slots[0].up_to(NodeId(1)));
}

TEST(BeaconCounts, PerSecondBuckets) {
  MeasurementTrace t = tiny_trace();
  t.vehicle_beacons.push_back({Time::millis(980.0), NodeId(0), -60.0});
  const auto counts = beacon_counts_per_second(t);
  ASSERT_EQ(counts.at(NodeId(0)).size(), 3u);
  EXPECT_EQ(counts.at(NodeId(0))[0], 2);
  EXPECT_EQ(counts.at(NodeId(0))[1], 0);
  EXPECT_EQ(counts.at(NodeId(1))[1], 1);
}

TEST(BeaconRssi, PerSecondAverages) {
  MeasurementTrace t = tiny_trace();
  t.vehicle_beacons.push_back({Time::millis(150.0), NodeId(0), -63.5});
  const auto rssi = beacon_rssi_per_second(t);
  const auto& bs0 = rssi.at(NodeId(0));
  ASSERT_EQ(bs0.size(), 1u);
  EXPECT_EQ(bs0[0].first, 0);
  EXPECT_DOUBLE_EQ(bs0[0].second, (-61.5 + -63.5) / 2.0);
}

TEST(Campaign, DayAndTripOrganisation) {
  Campaign c;
  for (int day = 0; day < 2; ++day)
    for (int trip = 0; trip < 3; ++trip) {
      MeasurementTrace t;
      t.day = day;
      t.trip = trip;
      c.trips.push_back(t);
    }
  EXPECT_EQ(c.days(), 2);
  EXPECT_EQ(c.trips_on_day(0).size(), 3u);
  EXPECT_EQ(c.trips_on_day(5).size(), 0u);
}

TEST(TraceIo, RoundTripsAllFields) {
  const MeasurementTrace t = tiny_trace();
  std::stringstream ss;
  save_trace(t, ss);
  const MeasurementTrace u = load_trace(ss);

  EXPECT_EQ(u.testbed, t.testbed);
  EXPECT_EQ(u.day, t.day);
  EXPECT_EQ(u.trip, t.trip);
  EXPECT_EQ(u.duration, t.duration);
  EXPECT_EQ(u.beacons_per_second, t.beacons_per_second);
  EXPECT_EQ(u.bs_ids, t.bs_ids);
  ASSERT_EQ(u.slots.size(), 1u);
  EXPECT_EQ(u.slots[0].t, t.slots[0].t);
  EXPECT_EQ(u.slots[0].vehicle_pos, t.slots[0].vehicle_pos);
  EXPECT_EQ(u.slots[0].down_heard, t.slots[0].down_heard);
  EXPECT_EQ(u.slots[0].up_heard_by, t.slots[0].up_heard_by);
  ASSERT_EQ(u.vehicle_beacons.size(), 2u);
  EXPECT_EQ(u.vehicle_beacons[0].bs, NodeId(0));
  EXPECT_DOUBLE_EQ(u.vehicle_beacons[0].rssi_dbm, -61.5);
  ASSERT_EQ(u.bs_beacons.size(), 1u);
  EXPECT_EQ(u.bs_beacons[0].tx, NodeId(0));
  EXPECT_EQ(u.bs_beacons[0].rx, NodeId(1));
}

TEST(TraceIo, LoggingVehicleRoundTripsAndLegacyTracesStayValid) {
  MeasurementTrace t = tiny_trace();
  // Legacy traces carry no vehicle line and load with an invalid id.
  {
    std::stringstream ss;
    save_trace(t, ss);
    EXPECT_EQ(ss.str().find("vehicle "), std::string::npos);
    EXPECT_FALSE(load_trace(ss).vehicle.valid());
  }
  // Fleet traces name their logger and it survives the round trip.
  t.vehicle = NodeId(11);
  std::stringstream ss;
  save_trace(t, ss);
  EXPECT_EQ(load_trace(ss).vehicle, NodeId(11));
}

TEST(TraceIo, EmptySlotListsRoundTrip) {
  MeasurementTrace t = tiny_trace();
  t.slots[0].down_heard.clear();
  std::stringstream ss;
  save_trace(t, ss);
  const MeasurementTrace u = load_trace(ss);
  EXPECT_TRUE(u.slots[0].down_heard.empty());
  EXPECT_EQ(u.slots[0].up_heard_by.size(), 2u);
}

TEST(TraceIo, RejectsBadMagic) {
  std::stringstream ss("not a trace\n");
  try {
    load_trace(ss);
    FAIL() << "must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("not a vifi-trace file"),
              std::string::npos);
  }
}

TEST(TraceIo, ForeignVersionGetsItsOwnMessage) {
  std::stringstream ss("# vifi-trace v7\n");
  try {
    load_trace(ss);
    FAIL() << "must throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unsupported trace version"), std::string::npos);
    EXPECT_NE(what.find("vifi-trace v7"), std::string::npos);
  }
}

TEST(TraceIo, TruncatedLinesReportTheLineNumber) {
  std::stringstream ss;
  ss << "# vifi-trace v1\n"
     << "trace X day 0 trip 0 duration_us 1000000 bps 10\n"
     << "beacon 1000 0\n";  // rssi missing
  try {
    load_trace(ss);
    FAIL() << "must throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("at line 3"), std::string::npos);
    EXPECT_NE(what.find("truncated beacon line"), std::string::npos);
  }
}

TEST(TraceIo, SlotLineWithoutUpMarkerIsTruncation) {
  std::stringstream ss;
  ss << "# vifi-trace v1\n"
     << "trace X day 0 trip 0 duration_us 1000000 bps 10\n"
     << "slot 0 1.5 2.5 down 0 1\n";  // cut before " up"
  try {
    load_trace(ss);
    FAIL() << "must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("missing 'up' marker"),
              std::string::npos);
  }
}

TEST(TraceIo, RejectsNonPositiveBeaconRate) {
  std::stringstream ss;
  ss << "# vifi-trace v1\n"
     << "trace X day 0 trip 0 duration_us 1000000 bps 0\n";
  EXPECT_THROW(load_trace(ss), std::runtime_error);
}

TEST(TraceIo, RejectsUnknownTag) {
  std::stringstream ss;
  ss << "# vifi-trace v1\n"
     << "trace X day 0 trip 0 duration_us 1000000 bps 10\n"
     << "bogus 1 2 3\n";
  EXPECT_THROW(load_trace(ss), std::runtime_error);
}

TEST(TraceIo, RejectsMissingHeader) {
  std::stringstream ss;
  ss << "# vifi-trace v1\n"
     << "bs 0\n";
  EXPECT_THROW(load_trace(ss), std::runtime_error);
}

TEST(LossSchedule, VehicleLinkFollowsBeaconRatio) {
  MeasurementTrace t;
  t.duration = Time::seconds(2.0);
  t.beacons_per_second = 10;
  t.bs_ids = {NodeId(0)};
  const NodeId veh(5);
  // 7 of 10 beacons in second 0; none in second 1.
  for (int i = 0; i < 7; ++i)
    t.vehicle_beacons.push_back({Time::millis(i * 10.0), NodeId(0), -60.0});

  LossScheduleOptions opts;
  opts.vehicle = veh;
  const auto model = build_loss_schedule(t, opts, Rng(1));
  EXPECT_NEAR(model->loss_rate(veh, NodeId(0), Time::millis(500.0)), 0.3,
              1e-9);
  EXPECT_NEAR(model->loss_rate(NodeId(0), veh, Time::millis(500.0)), 0.3,
              1e-9);  // symmetric
  EXPECT_NEAR(model->loss_rate(veh, NodeId(0), Time::millis(1500.0)), 1.0,
              1e-9);
}

TEST(LossSchedule, CovisibilityRule) {
  MeasurementTrace t;
  t.duration = Time::seconds(3.0);
  t.beacons_per_second = 10;
  t.bs_ids = {NodeId(0), NodeId(1), NodeId(2)};
  // BS0 and BS1 heard within the same second; BS2 only much later.
  t.vehicle_beacons.push_back({Time::millis(100.0), NodeId(0), -60.0});
  t.vehicle_beacons.push_back({Time::millis(200.0), NodeId(1), -60.0});
  t.vehicle_beacons.push_back({Time::millis(2500.0), NodeId(2), -60.0});

  EXPECT_TRUE(ever_covisible(t, NodeId(0), NodeId(1)));
  EXPECT_FALSE(ever_covisible(t, NodeId(0), NodeId(2)));

  LossScheduleOptions opts;
  opts.vehicle = NodeId(7);
  const auto model = build_loss_schedule(t, opts, Rng(2));
  // Co-visible pair: Uniform(0,1) constant loss -> strictly < 1.
  EXPECT_LT(model->loss_rate(NodeId(0), NodeId(1), Time::zero()), 1.0);
  // Never co-visible: unreachable.
  EXPECT_DOUBLE_EQ(model->loss_rate(NodeId(0), NodeId(2), Time::zero()), 1.0);
}

TEST(LossSchedule, BsBeaconLogsGiveInterBsSchedule) {
  MeasurementTrace t;
  t.duration = Time::seconds(1.0);
  t.beacons_per_second = 10;
  t.bs_ids = {NodeId(0), NodeId(1)};
  // 10 of 10 in each direction in second 0 => loss 0.
  for (int i = 0; i < 10; ++i) {
    t.bs_beacons.push_back({Time::millis(i * 10.0), NodeId(0), NodeId(1)});
    t.bs_beacons.push_back({Time::millis(i * 10.0), NodeId(1), NodeId(0)});
  }
  LossScheduleOptions opts;
  opts.vehicle = NodeId(9);
  opts.use_bs_beacon_logs = true;
  const auto model = build_loss_schedule(t, opts, Rng(3));
  EXPECT_NEAR(model->loss_rate(NodeId(0), NodeId(1), Time::millis(500.0)),
              0.0, 1e-9);
}

TEST(FleetLossSchedule, RejectsDuplicateAndForeignTraces) {
  MeasurementTrace a;
  a.testbed = "Bed";
  a.duration = Time::seconds(2.0);
  a.beacons_per_second = 10;
  a.bs_ids = {NodeId(0)};
  a.vehicle = NodeId(1);
  a.vehicle_beacons.push_back({Time::millis(100.0), NodeId(0), -60.0});
  MeasurementTrace b = a;
  b.vehicle = NodeId(2);

  // A valid two-vehicle fleet builds.
  EXPECT_NE(build_fleet_loss_schedule({&a, &b}, false, Rng(1)), nullptr);

  // Duplicate logger.
  try {
    build_fleet_loss_schedule({&a, &a}, false, Rng(1));
    FAIL() << "must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate trace for vehicle n1"),
              std::string::npos);
  }

  // Legacy trace without a logging vehicle.
  MeasurementTrace legacy = a;
  legacy.vehicle = NodeId();
  try {
    build_fleet_loss_schedule({&legacy, &b}, false, Rng(1));
    FAIL() << "must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("names no logging vehicle"),
              std::string::npos);
  }

  // Foreign testbed.
  MeasurementTrace foreign = b;
  foreign.testbed = "OtherBed";
  try {
    build_fleet_loss_schedule({&a, &foreign}, false, Rng(1));
    FAIL() << "must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("foreign trace"), std::string::npos);
  }

  // Same testbed name but a different BS layout is just as foreign.
  MeasurementTrace rewired = b;
  rewired.bs_ids = {NodeId(0), NodeId(5)};
  try {
    build_fleet_loss_schedule({&a, &rewired}, false, Rng(1));
    FAIL() << "must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("different BS set"),
              std::string::npos);
  }
}

TEST(LossSchedule, DeterministicInterBsDraws) {
  MeasurementTrace t;
  t.duration = Time::seconds(1.0);
  t.beacons_per_second = 10;
  t.bs_ids = {NodeId(0), NodeId(1)};
  t.vehicle_beacons.push_back({Time::millis(100.0), NodeId(0), -60.0});
  t.vehicle_beacons.push_back({Time::millis(200.0), NodeId(1), -60.0});
  LossScheduleOptions opts;
  opts.vehicle = NodeId(7);
  const auto a = build_loss_schedule(t, opts, Rng(42));
  const auto b = build_loss_schedule(t, opts, Rng(42));
  EXPECT_DOUBLE_EQ(a->loss_rate(NodeId(0), NodeId(1), Time::zero()),
                   b->loss_rate(NodeId(0), NodeId(1), Time::zero()));
}

}  // namespace
}  // namespace vifi::trace
