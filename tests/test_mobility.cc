// Unit tests for geometry, waypoint paths, mobility models, and layouts.

#include <gtest/gtest.h>

#include <cmath>

#include "mobility/layouts.h"
#include "mobility/mobility.h"
#include "mobility/path.h"
#include "mobility/vec2.h"
#include "util/contracts.h"

namespace vifi::mobility {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0}, b{3.0, 4.0};
  EXPECT_EQ((a + b), (Vec2{4.0, 6.0}));
  EXPECT_EQ((b - a), (Vec2{2.0, 2.0}));
  EXPECT_EQ((a * 2.0), (Vec2{2.0, 4.0}));
  EXPECT_DOUBLE_EQ((Vec2{3.0, 4.0}).norm(), 5.0);
  EXPECT_DOUBLE_EQ(distance(a, b), std::sqrt(8.0));
}

TEST(Vec2, Lerp) {
  const Vec2 a{0.0, 0.0}, b{10.0, 20.0};
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.5), (Vec2{5.0, 10.0}));
}

TEST(GridCell, QuantizesPositions) {
  EXPECT_EQ(grid_cell({12.0, 37.0}, 25.0), (GridCell{0, 1}));
  EXPECT_EQ(grid_cell({-1.0, 0.0}, 25.0), (GridCell{-1, 0}));
  EXPECT_EQ(grid_cell({25.0, 50.0}, 25.0), (GridCell{1, 2}));
}

TEST(WaypointPath, OpenPathLengthAndPositions) {
  WaypointPath p({{0.0, 0.0}, {10.0, 0.0}, {10.0, 10.0}}, false);
  EXPECT_DOUBLE_EQ(p.total_length(), 20.0);
  EXPECT_EQ(p.position_at_distance(0.0), (Vec2{0.0, 0.0}));
  EXPECT_EQ(p.position_at_distance(5.0), (Vec2{5.0, 0.0}));
  EXPECT_EQ(p.position_at_distance(15.0), (Vec2{10.0, 5.0}));
  // Clamps at the ends.
  EXPECT_EQ(p.position_at_distance(25.0), (Vec2{10.0, 10.0}));
  EXPECT_EQ(p.position_at_distance(-5.0), (Vec2{0.0, 0.0}));
}

TEST(WaypointPath, ClosedPathWraps) {
  WaypointPath p({{0.0, 0.0}, {10.0, 0.0}, {10.0, 10.0}, {0.0, 10.0}}, true);
  EXPECT_DOUBLE_EQ(p.total_length(), 40.0);
  EXPECT_EQ(p.position_at_distance(40.0), (Vec2{0.0, 0.0}));
  EXPECT_EQ(p.position_at_distance(45.0), (Vec2{5.0, 0.0}));
  EXPECT_EQ(p.position_at_distance(-5.0), (Vec2{0.0, 5.0}));
}

TEST(WaypointPath, TooFewWaypointsThrows) {
  EXPECT_THROW(WaypointPath({{0.0, 0.0}}, false), vifi::ContractViolation);
}

TEST(FixedPosition, NeverMoves) {
  FixedPosition f({3.0, 4.0});
  EXPECT_EQ(f.position_at(Time::zero()), (Vec2{3.0, 4.0}));
  EXPECT_EQ(f.position_at(Time::hours(5.0)), (Vec2{3.0, 4.0}));
}

TEST(PathMobility, ConstantSpeedTraversal) {
  WaypointPath p({{0.0, 0.0}, {100.0, 0.0}}, false);
  PathMobility m(p, 10.0);
  EXPECT_EQ(m.position_at(Time::zero()), (Vec2{0.0, 0.0}));
  EXPECT_EQ(m.position_at(Time::seconds(5.0)), (Vec2{50.0, 0.0}));
}

TEST(PathMobility, LoopsOnClosedPath) {
  WaypointPath p({{0.0, 0.0}, {100.0, 0.0}, {100.0, 100.0}, {0.0, 100.0}},
                 true);
  PathMobility m(p, 10.0);
  EXPECT_EQ(m.lap_time(), Time::seconds(40.0));
  EXPECT_EQ(m.position_at(Time::seconds(40.0)), m.position_at(Time::zero()));
  EXPECT_EQ(m.position_at(Time::seconds(45.0)),
            m.position_at(Time::seconds(5.0)));
}

TEST(PathMobility, StartOffsetShiftsPhase) {
  WaypointPath p({{0.0, 0.0}, {100.0, 0.0}}, false);
  PathMobility m(p, 10.0, 30.0);
  EXPECT_EQ(m.position_at(Time::zero()), (Vec2{30.0, 0.0}));
}

TEST(PathMobility, NonPositiveSpeedThrows) {
  WaypointPath p({{0.0, 0.0}, {1.0, 0.0}}, false);
  EXPECT_THROW(PathMobility(p, 0.0), vifi::ContractViolation);
}

TEST(BusMobility, DwellsAtStops) {
  WaypointPath p({{0.0, 0.0}, {100.0, 0.0}, {100.0, 10.0}, {0.0, 10.0}},
                 true);
  BusMobility bus(p, 10.0, {{50.0, Time::seconds(5.0)}});
  // Reaches the stop at t = 5 s, stays until t = 10 s.
  EXPECT_EQ(bus.position_at(Time::seconds(5.0)), (Vec2{50.0, 0.0}));
  EXPECT_EQ(bus.position_at(Time::seconds(7.0)), (Vec2{50.0, 0.0}));
  EXPECT_EQ(bus.position_at(Time::seconds(10.0)), (Vec2{50.0, 0.0}));
  EXPECT_EQ(bus.position_at(Time::seconds(11.0)), (Vec2{60.0, 0.0}));
}

TEST(BusMobility, LapTimeIncludesDwells) {
  WaypointPath p({{0.0, 0.0}, {100.0, 0.0}, {100.0, 10.0}, {0.0, 10.0}},
                 true);
  BusMobility bus(p, 10.0,
                  {{50.0, Time::seconds(5.0)}, {150.0, Time::seconds(3.0)}});
  EXPECT_EQ(bus.lap_time(), Time::seconds(22.0 + 8.0));
  // Periodicity across laps.
  EXPECT_EQ(bus.position_at(Time::seconds(31.0)),
            bus.position_at(Time::seconds(1.0)));
}

TEST(PathMobility, StartOffsetBeyondOneLapWrapsOnClosedPath) {
  WaypointPath p({{0.0, 0.0}, {100.0, 0.0}, {100.0, 100.0}, {0.0, 100.0}},
                 true);
  // 430 m into a 400 m lap == 30 m into the lap.
  PathMobility m(p, 10.0, 430.0);
  EXPECT_EQ(m.position_at(Time::zero()), (Vec2{30.0, 0.0}));
  PathMobility reference(p, 10.0, 30.0);
  EXPECT_EQ(m.position_at(Time::seconds(12.0)),
            reference.position_at(Time::seconds(12.0)));
}

TEST(BusMobility, StopAtDistanceZeroDwellsBeforeDeparting) {
  WaypointPath p({{0.0, 0.0}, {100.0, 0.0}, {100.0, 10.0}, {0.0, 10.0}},
                 true);
  BusMobility bus(p, 10.0, {{0.0, Time::seconds(4.0)}});
  // The bus opens every lap dwelling at the origin.
  EXPECT_EQ(bus.position_at(Time::zero()), (Vec2{0.0, 0.0}));
  EXPECT_EQ(bus.position_at(Time::seconds(3.0)), (Vec2{0.0, 0.0}));
  EXPECT_EQ(bus.position_at(Time::seconds(4.0)), (Vec2{0.0, 0.0}));
  EXPECT_EQ(bus.position_at(Time::seconds(5.0)), (Vec2{10.0, 0.0}));
  // Lap time: 220/10 cruise + 4 dwell = 26 s; the pattern repeats.
  EXPECT_EQ(bus.lap_time(), Time::seconds(26.0));
  EXPECT_EQ(bus.position_at(Time::seconds(29.0)),
            bus.position_at(Time::seconds(3.0)));
}

TEST(BusMobility, StopExactlyAtLapEndDwellsBeforeWrapping) {
  WaypointPath p({{0.0, 0.0}, {100.0, 0.0}, {100.0, 10.0}, {0.0, 10.0}},
                 true);
  const double length = p.total_length();  // 220 m
  BusMobility bus(p, 10.0, {{length, Time::seconds(5.0)}});
  EXPECT_EQ(bus.lap_time(), Time::seconds(27.0));
  // Cruise the whole lap (22 s), then dwell at the wrap point (= origin).
  EXPECT_EQ(bus.position_at(Time::seconds(22.0)), (Vec2{0.0, 0.0}));
  EXPECT_EQ(bus.position_at(Time::seconds(25.0)), (Vec2{0.0, 0.0}));
  EXPECT_EQ(bus.position_at(Time::seconds(27.0)), (Vec2{0.0, 0.0}));
  // Next lap under way again.
  EXPECT_EQ(bus.position_at(Time::seconds(28.0)), (Vec2{10.0, 0.0}));
}

TEST(BusMobility, ExactLapBoundariesMapToTheLapStart) {
  WaypointPath p({{0.0, 0.0}, {100.0, 0.0}, {100.0, 10.0}, {0.0, 10.0}},
                 true);
  BusMobility bus(p, 10.0, {{50.0, Time::seconds(5.0)}});
  const Time lap = bus.lap_time();  // 27 s
  for (int k = 1; k <= 4; ++k)
    EXPECT_EQ(bus.position_at(lap * static_cast<double>(k)),
              bus.position_at(Time::zero()))
        << "lap " << k;
  // Just before a boundary the bus is still closing the loop.
  EXPECT_EQ(bus.position_at(lap * 2.0 - Time::millis(100)),
            (Vec2{0.0, 1.0}));
}

TEST(BusMobility, StartPhaseShiftsTheWholeCycle) {
  WaypointPath p({{0.0, 0.0}, {100.0, 0.0}, {100.0, 10.0}, {0.0, 10.0}},
                 true);
  BusMobility base(p, 10.0, {{50.0, Time::seconds(5.0)}});
  BusMobility shifted(p, 10.0, {{50.0, Time::seconds(5.0)}},
                      Time::seconds(7.0));
  // At t the shifted bus sits where the base bus is at t + 7 s — mid-dwell
  // here (base reaches the stop at 5 s and departs at 10 s).
  EXPECT_EQ(shifted.position_at(Time::zero()),
            base.position_at(Time::seconds(7.0)));
  EXPECT_EQ(shifted.position_at(Time::seconds(1.0)), (Vec2{50.0, 0.0}));
  EXPECT_EQ(shifted.position_at(Time::seconds(20.0)),
            base.position_at(Time::seconds(27.0)));
}

TEST(Layouts, VanLanShape) {
  const Layout l = vanlan_layout();
  EXPECT_EQ(l.bs_count(), 11u);
  EXPECT_TRUE(l.stops.empty());
  for (const Vec2& p : l.bs_positions) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, l.area_width_m);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, l.area_height_m);
  }
  // ~40 km/h speed limit.
  EXPECT_NEAR(l.cruise_mps, 11.1, 0.5);
}

TEST(Layouts, DieselNetChannelSizes) {
  EXPECT_EQ(dieselnet_layout(1).bs_count(), 10u);
  EXPECT_EQ(dieselnet_layout(6).bs_count(), 14u);
  EXPECT_FALSE(dieselnet_layout(1).stops.empty());
  EXPECT_THROW(dieselnet_layout(3), vifi::ContractViolation);
}

TEST(Layouts, RouteCycleTimeMatchesTheMobilityModelsLap) {
  // route_cycle_time is the single source for lap-derived quantities; it
  // must agree with what BusMobility actually computes.
  const Layout bus_layout = dieselnet_layout(1);
  WaypointPath path(bus_layout.route_waypoints, /*closed=*/true);
  BusMobility bus(path, bus_layout.cruise_mps, bus_layout.stops);
  EXPECT_EQ(route_cycle_time(bus_layout), bus.lap_time());
  const Layout van = vanlan_layout();
  PathMobility shuttle(WaypointPath(van.route_waypoints, /*closed=*/true),
                       van.cruise_mps);
  EXPECT_EQ(route_cycle_time(van), shuttle.lap_time());
}

TEST(Layouts, VehicleMobilityFactory) {
  const Layout van = vanlan_layout();
  auto shuttle = make_vehicle_mobility(van);
  ASSERT_NE(shuttle, nullptr);
  // Shuttle moves.
  EXPECT_NE(shuttle->position_at(Time::zero()),
            shuttle->position_at(Time::seconds(10.0)));

  const Layout bus_layout = dieselnet_layout(1);
  auto bus = make_vehicle_mobility(bus_layout);
  ASSERT_NE(bus, nullptr);
  EXPECT_NE(bus->position_at(Time::zero()),
            bus->position_at(Time::seconds(30.0)));
}

}  // namespace
}  // namespace vifi::mobility
