// Unit tests for the applications: MoS scoring, VoIP sessions, mini-TCP
// over a controllable transport, the transfer driver, and CBR accounting.

#include <gtest/gtest.h>

#include <deque>

#include "apps/cellular.h"
#include "apps/mos.h"
#include "apps/tcp.h"
#include "apps/transfer_driver.h"
#include "apps/voip.h"
#include "sim/simulator.h"
#include "util/contracts.h"

namespace vifi::apps {
namespace {

// ------------------------------------------------------------------- MoS --

TEST(Mos, PerfectConditionsScoreHigh) {
  // ~150 ms mouth-to-ear, no loss: "fair"-to-"good" territory for G.729.
  const double mos = mos_g729(150.0, 0.0);
  EXPECT_GT(mos, 3.8);
  EXPECT_LE(mos, 4.5);
}

TEST(Mos, TotalLossIsBelowInterruptionThreshold) {
  // With the G.729 reduction, 100% loss lands just below MoS 2 — which is
  // exactly the paper's interruption threshold (§5.3.2).
  const double mos = mos_g729(150.0, 1.0);
  EXPECT_LT(mos, 2.0);
  EXPECT_GT(mos, 1.0);
}

TEST(Mos, MonotoneInLoss) {
  double prev = 5.0;
  for (double e : {0.0, 0.05, 0.1, 0.2, 0.4, 0.8}) {
    const double m = mos_g729(177.0, e);
    EXPECT_LT(m, prev);
    prev = m;
  }
}

TEST(Mos, DelayPenaltyKicksInPast177ms) {
  const double before = r_factor_g729(170.0, 0.0);
  const double after = r_factor_g729(250.0, 0.0);
  // Beyond the knee the slope includes the extra 0.11/ms term.
  EXPECT_GT(before - r_factor_g729(177.0, 0.0), 0.0);
  EXPECT_GT((r_factor_g729(177.0, 0.0) - after) / (250.0 - 177.0), 0.1);
}

TEST(Mos, MappingEdges) {
  EXPECT_DOUBLE_EQ(mos_from_r(-5.0), 1.0);
  EXPECT_DOUBLE_EQ(mos_from_r(101.0), 4.5);
  EXPECT_NEAR(mos_from_r(50.0), 1.0 + 0.035 * 50 + 7e-6 * 50 * -10 * 50,
              1e-9);
}

TEST(Mos, BudgetDeadlineIs52ms) {
  VoipDelayBudget budget;
  EXPECT_DOUBLE_EQ(budget.wireless_deadline_ms(), 52.0);
}

TEST(Mos, ContractsRejectBadInputs) {
  EXPECT_THROW(r_factor_g729(-1.0, 0.0), vifi::ContractViolation);
  EXPECT_THROW(r_factor_g729(100.0, 1.5), vifi::ContractViolation);
}

TEST(MosSessions, SplitsOnBadWindows) {
  const std::vector<double> mos{3.5, 3.5, 1.5, 3.0, 3.0, 3.0};
  const auto lengths = mos_session_lengths(mos, 2.0, 3.0);
  EXPECT_EQ(lengths, (std::vector<double>{6.0, 9.0}));
}

// -------------------------------------------------- a perfect loopback ----

/// In-memory transport with configurable one-way delay and loss schedule,
/// for exercising TCP/VoIP logic deterministically.
class LoopbackTransport final : public Transport {
 public:
  explicit LoopbackTransport(sim::Simulator& sim, Time delay = Time::millis(5))
      : sim_(sim), delay_(delay) {}

  void set_drop_next(int n) { drop_next_ = n; }
  void set_delay(Time d) { delay_ = d; }

  void send(Direction dir, int bytes, int flow, std::uint64_t app_seq,
            net::AppPayload data) override {
    ++sent_;
    if (drop_next_ > 0) {
      --drop_next_;
      return;
    }
    auto p = factory_.make(dir, sim::NodeId(0), sim::NodeId(1), bytes,
                           sim_.now(), flow, app_seq, std::move(data));
    sim_.schedule(delay_, [this, p] {
      const auto it = handlers_.find(p->flow);
      if (it != handlers_.end()) it->second(p);
    });
  }

  void subscribe(int flow, Handler handler) override {
    handlers_[flow] = std::move(handler);
  }
  void unsubscribe(int flow) override { handlers_.erase(flow); }
  Time now() const override { return sim_.now(); }
  int sent() const { return sent_; }

 private:
  sim::Simulator& sim_;
  Time delay_;
  int drop_next_ = 0;
  int sent_ = 0;
  net::PacketFactory factory_;
  std::map<int, Handler> handlers_;
};

// ------------------------------------------------------------------- TCP --

TEST(Tcp, CompletesOnCleanLink) {
  sim::Simulator sim;
  LoopbackTransport link(sim);
  TcpTransfer xfer(sim, link, 1, Direction::Downstream, 10 * 1024);
  bool completed = false;
  xfer.set_completion_handler([&] { completed = true; });
  xfer.start();
  sim.run_until(Time::seconds(5.0));
  EXPECT_TRUE(completed);
  EXPECT_TRUE(xfer.complete());
  EXPECT_EQ(xfer.bytes_acked(), 10 * 1024);
  EXPECT_EQ(xfer.retransmissions(), 0);
}

TEST(Tcp, TransferTimeScalesWithRtt) {
  auto run = [](Time delay) {
    sim::Simulator sim;
    LoopbackTransport link(sim, delay);
    TcpTransfer xfer(sim, link, 1, Direction::Downstream, 10 * 1024);
    xfer.start();
    sim.run_until(Time::seconds(30.0));
    return (xfer.completion_time() - xfer.start_time()).to_seconds();
  };
  EXPECT_LT(run(Time::millis(5)), run(Time::millis(80)));
}

TEST(Tcp, RecoversFromSynLoss) {
  sim::Simulator sim;
  LoopbackTransport link(sim);
  link.set_drop_next(1);  // kill the SYN
  TcpTransfer xfer(sim, link, 1, Direction::Downstream, 4 * 1024);
  xfer.start();
  sim.run_until(Time::seconds(10.0));
  EXPECT_TRUE(xfer.complete());
  EXPECT_GE(xfer.retransmissions(), 1);
}

TEST(Tcp, RecoversFromDataLossViaRetransmit) {
  sim::Simulator sim;
  LoopbackTransport link(sim);
  TcpTransfer xfer(sim, link, 1, Direction::Downstream, 20 * 1024);
  xfer.start();
  // Let the handshake finish, then drop a burst of data segments.
  sim.run_until(Time::millis(30.0));
  link.set_drop_next(2);
  xfer.start_time();
  sim.run_until(Time::seconds(30.0));
  EXPECT_TRUE(xfer.complete());
  EXPECT_EQ(xfer.bytes_acked(), 20 * 1024);
  EXPECT_GE(xfer.retransmissions(), 1);
}

TEST(Tcp, UpstreamDirectionWorks) {
  sim::Simulator sim;
  LoopbackTransport link(sim);
  TcpTransfer xfer(sim, link, 1, Direction::Upstream, 10 * 1024);
  xfer.start();
  sim.run_until(Time::seconds(5.0));
  EXPECT_TRUE(xfer.complete());
}

TEST(Tcp, AbortStopsActivity) {
  sim::Simulator sim;
  LoopbackTransport link(sim);
  TcpTransfer xfer(sim, link, 1, Direction::Downstream, 10 * 1024);
  xfer.start();
  sim.run_until(Time::millis(10.0));
  xfer.abort();
  const int sent_at_abort = link.sent();
  sim.run_until(Time::seconds(10.0));
  EXPECT_FALSE(xfer.complete());
  // A handful of in-flight receiver acks may still fire, but no new data.
  EXPECT_LE(link.sent(), sent_at_abort + 2);
}

TEST(Tcp, LastProgressAdvancesWithAcks) {
  sim::Simulator sim;
  LoopbackTransport link(sim);
  TcpTransfer xfer(sim, link, 1, Direction::Downstream, 10 * 1024);
  xfer.start();
  sim.run_until(Time::millis(50.0));
  const Time p1 = xfer.last_progress();
  EXPECT_GT(p1, Time::zero());
}

TEST(Tcp, InvalidSizesThrow) {
  sim::Simulator sim;
  LoopbackTransport link(sim);
  EXPECT_THROW(TcpTransfer(sim, link, 1, Direction::Downstream, 0),
               vifi::ContractViolation);
}

// -------------------------------------------------------- TransferDriver --

TEST(TransferDriver, RunsBackToBackTransfers) {
  sim::Simulator sim;
  LoopbackTransport link(sim);
  TransferDriver driver(sim, link, Direction::Downstream);
  driver.start(Time::seconds(20.0));
  sim.run_until(Time::seconds(21.0));
  const auto result = driver.result();
  EXPECT_GT(result.completed, 10);
  EXPECT_EQ(result.aborted, 0);
  // One uninterrupted session containing every transfer.
  ASSERT_EQ(result.transfers_per_session.size(), 1u);
  EXPECT_EQ(result.transfers_per_session[0], result.completed);
  EXPECT_GT(result.transfers_per_second(), 0.5);
}

TEST(TransferDriver, AbortsStalledTransfersAndSplitsSessions) {
  sim::Simulator sim;
  LoopbackTransport link(sim);
  TransferDriver driver(sim, link, Direction::Downstream);
  driver.start(Time::seconds(60.0));
  // After 5 s, blackhole everything for a while: the current transfer
  // stalls and gets terminated at the 10 s no-progress limit.
  sim.schedule(Time::seconds(5.0), [&] { link.set_drop_next(1000000); });
  sim.schedule(Time::seconds(30.0), [&] { link.set_drop_next(0); });
  sim.run_until(Time::seconds(61.0));
  const auto result = driver.result();
  EXPECT_GE(result.aborted, 1);
  EXPECT_GE(result.transfers_per_session.size(), 2u);
}

TEST(TransferDriverResult, Medians) {
  TransferDriverResult r;
  r.transfer_times_s = {1.0, 2.0, 10.0};
  r.transfers_per_session = {4, 6};
  r.completed = 10;
  r.duration_s = 20.0;
  EXPECT_DOUBLE_EQ(r.median_transfer_time_s(), 2.0);
  EXPECT_DOUBLE_EQ(r.mean_transfers_per_session(), 5.0);
  EXPECT_DOUBLE_EQ(r.transfers_per_second(), 0.5);
}

// ------------------------------------------------------------------ VoIP --

TEST(Voip, CleanLinkYieldsLongSessions) {
  sim::Simulator sim;
  LoopbackTransport link(sim, Time::millis(10));
  VoipCall call(sim, link);
  call.start(Time::seconds(30.0));
  sim.run_until(Time::seconds(31.0));
  const VoipResult r = call.result();
  EXPECT_GT(r.packets_sent, 2900);
  EXPECT_LT(r.effective_loss(), 0.01);
  EXPECT_GT(r.mean_mos, 3.5);
  ASSERT_FALSE(r.session_lengths_s.empty());
  EXPECT_NEAR(r.median_session_s, 30.0, 3.1);
}

TEST(Voip, LatePacketsCountAsLost) {
  sim::Simulator sim;
  LoopbackTransport link(sim, Time::millis(80));  // beyond the 52 ms budget
  VoipCall call(sim, link);
  call.start(Time::seconds(12.0));
  sim.run_until(Time::seconds(13.0));
  const VoipResult r = call.result();
  EXPECT_GT(r.effective_loss(), 0.99);
  EXPECT_LT(r.mean_mos, 2.0);  // every window is an interruption
  EXPECT_TRUE(r.session_lengths_s.empty());
}

TEST(Voip, OutageCreatesInterruption) {
  sim::Simulator sim;
  LoopbackTransport link(sim, Time::millis(10));
  VoipCall call(sim, link);
  call.start(Time::seconds(30.0));
  // 6-second blackout in the middle: two sessions.
  sim.schedule(Time::seconds(12.0), [&] { link.set_drop_next(1000000); });
  sim.schedule(Time::seconds(18.0), [&] { link.set_drop_next(0); });
  sim.run_until(Time::seconds(31.0));
  const VoipResult r = call.result();
  EXPECT_GE(r.session_lengths_s.size(), 2u);
}

// -------------------------------------------------------------- Cellular --

TEST(Cellular, TenKbFetchMatchesEvdoScale) {
  sim::Simulator sim;
  CellularTransport cell(sim, {}, Rng(1));
  TcpTransfer down(sim, cell, 1, Direction::Downstream, 10 * 1024);
  down.start();
  sim.run_until(Time::seconds(20.0));
  ASSERT_TRUE(down.complete());
  const double t_down =
      (down.completion_time() - down.start_time()).to_seconds();
  // Paper: downlink median 0.75 s — same order of magnitude here.
  EXPECT_GT(t_down, 0.3);
  EXPECT_LT(t_down, 1.5);
}

TEST(Cellular, UplinkSlowerThanDownlink) {
  sim::Simulator sim;
  CellularTransport cell(sim, {}, Rng(2));
  TcpTransfer down(sim, cell, 1, Direction::Downstream, 10 * 1024);
  TcpTransfer up(sim, cell, 2, Direction::Upstream, 10 * 1024);
  down.start();
  up.start();
  sim.run_until(Time::seconds(30.0));
  ASSERT_TRUE(down.complete());
  ASSERT_TRUE(up.complete());
  EXPECT_GT((up.completion_time() - up.start_time()).to_seconds(),
            (down.completion_time() - down.start_time()).to_seconds());
}

}  // namespace
}  // namespace vifi::apps
