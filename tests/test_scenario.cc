// Tests for testbed assembly, measurement-campaign generation, BS-subset
// filtering, burst probing, and live-trip plumbing.

#include <gtest/gtest.h>

#include <set>

#include "scenario/burst_probe.h"
#include "scenario/campaign.h"
#include "scenario/live.h"
#include "scenario/testbed.h"
#include "util/contracts.h"

namespace vifi::scenario {
namespace {

TEST(Testbed, VanLanIdentityConventions) {
  const Testbed bed = make_vanlan();
  EXPECT_EQ(bed.bs_ids().size(), 11u);
  EXPECT_EQ(bed.vehicle().value(), 11);
  EXPECT_EQ(bed.wired_host().value(), 12);
  for (std::size_t i = 0; i < bed.bs_ids().size(); ++i)
    EXPECT_EQ(bed.bs_ids()[i].value(), static_cast<int>(i));
}

TEST(Testbed, BsPositionsAreFixedAndVehicleMoves) {
  const Testbed bed = make_vanlan();
  const auto bs = bed.bs_ids()[0];
  EXPECT_EQ(bed.position(bs, Time::zero()),
            bed.position(bs, Time::minutes(5.0)));
  EXPECT_NE(bed.position(bed.vehicle(), Time::zero()),
            bed.position(bed.vehicle(), Time::seconds(30.0)));
}

TEST(Testbed, TripDurationMatchesRouteAndSpeed) {
  const Testbed van = make_vanlan();
  // ~2.3 km loop at 11.1 m/s: a few minutes.
  EXPECT_GT(van.trip_duration(), Time::seconds(120.0));
  EXPECT_LT(van.trip_duration(), Time::seconds(400.0));
  // Bus route includes dwell time.
  const Testbed bus = make_dieselnet(1);
  EXPECT_GT(bus.trip_duration(), Time::seconds(400.0));
}

TEST(Testbed, ChannelFactoryIsDeterministic) {
  const Testbed bed = make_vanlan();
  auto a = bed.make_channel(Rng(5));
  auto b = bed.make_channel(Rng(5));
  const auto veh = bed.vehicle();
  for (int i = 0; i < 2000; ++i) {
    const Time t = Time::millis(10.0 * i);
    EXPECT_EQ(a->sample_delivery(bed.bs_ids()[0], veh, t),
              b->sample_delivery(bed.bs_ids()[0], veh, t));
  }
}

TEST(Campaign, ShapeMatchesConfig) {
  const Testbed bed = make_vanlan();
  CampaignConfig cfg;
  cfg.days = 2;
  cfg.trips_per_day = 3;
  cfg.trip_duration = Time::seconds(30.0);
  const auto campaign = generate_campaign(bed, cfg);
  EXPECT_EQ(campaign.trips.size(), 6u);
  EXPECT_EQ(campaign.days(), 2);
  for (const auto& trip : campaign.trips) {
    EXPECT_EQ(trip.duration, Time::seconds(30.0));
    EXPECT_EQ(trip.bs_ids.size(), 11u);
    EXPECT_EQ(trip.slots.size(), 300u);  // 10 per second
    EXPECT_FALSE(trip.vehicle_beacons.empty());
    EXPECT_TRUE(trip.bs_beacons.empty());  // not requested
  }
}

TEST(Campaign, BeaconOnlyModeSkipsProbes) {
  const Testbed bed = make_dieselnet(1);
  CampaignConfig cfg;
  cfg.days = 1;
  cfg.trips_per_day = 1;
  cfg.trip_duration = Time::seconds(20.0);
  cfg.log_probes = false;
  const auto campaign = generate_campaign(bed, cfg);
  EXPECT_TRUE(campaign.trips[0].slots.empty());
  EXPECT_FALSE(campaign.trips[0].vehicle_beacons.empty());
}

TEST(Campaign, BsBeaconLoggingWorks) {
  const Testbed bed = make_vanlan();
  CampaignConfig cfg;
  cfg.days = 1;
  cfg.trips_per_day = 1;
  cfg.trip_duration = Time::seconds(20.0);
  cfg.log_bs_beacons = true;
  const auto campaign = generate_campaign(bed, cfg);
  // Co-located building BSes certainly hear each other.
  EXPECT_FALSE(campaign.trips[0].bs_beacons.empty());
}

TEST(Campaign, DeterministicForSeed) {
  const Testbed bed = make_vanlan();
  CampaignConfig cfg;
  cfg.days = 1;
  cfg.trips_per_day = 1;
  cfg.trip_duration = Time::seconds(15.0);
  cfg.seed = 31337;
  const auto a = generate_campaign(bed, cfg);
  const auto b = generate_campaign(bed, cfg);
  ASSERT_EQ(a.trips[0].slots.size(), b.trips[0].slots.size());
  for (std::size_t i = 0; i < a.trips[0].slots.size(); ++i) {
    EXPECT_EQ(a.trips[0].slots[i].down_heard, b.trips[0].slots[i].down_heard);
    EXPECT_EQ(a.trips[0].slots[i].up_heard_by,
              b.trips[0].slots[i].up_heard_by);
  }
  EXPECT_EQ(a.trips[0].vehicle_beacons.size(),
            b.trips[0].vehicle_beacons.size());
}

TEST(Campaign, TripsAreIndependentRealisations) {
  const Testbed bed = make_vanlan();
  CampaignConfig cfg;
  cfg.days = 1;
  cfg.trips_per_day = 2;
  cfg.trip_duration = Time::seconds(20.0);
  const auto campaign = generate_campaign(bed, cfg);
  int diff = 0;
  for (std::size_t i = 0; i < campaign.trips[0].slots.size(); ++i)
    if (campaign.trips[0].slots[i].down_heard !=
        campaign.trips[1].slots[i].down_heard)
      ++diff;
  EXPECT_GT(diff, 0);
}

TEST(FilterSubset, DropsExcludedBsEverywhere) {
  const Testbed bed = make_vanlan();
  CampaignConfig cfg;
  cfg.days = 1;
  cfg.trips_per_day = 1;
  cfg.trip_duration = Time::seconds(30.0);
  const auto campaign = generate_campaign(bed, cfg);
  const std::vector<sim::NodeId> keep{bed.bs_ids()[0], bed.bs_ids()[5]};
  const auto filtered = filter_to_bs_subset(campaign.trips[0], keep);
  EXPECT_EQ(filtered.bs_ids, keep);
  const std::set<sim::NodeId> allowed(keep.begin(), keep.end());
  for (const auto& slot : filtered.slots) {
    for (auto id : slot.down_heard) EXPECT_TRUE(allowed.contains(id));
    for (auto id : slot.up_heard_by) EXPECT_TRUE(allowed.contains(id));
  }
  for (const auto& b : filtered.vehicle_beacons)
    EXPECT_TRUE(allowed.contains(b.bs));
}

TEST(FilterSubset, FullSubsetIsIdentity) {
  const Testbed bed = make_vanlan();
  CampaignConfig cfg;
  cfg.days = 1;
  cfg.trips_per_day = 1;
  cfg.trip_duration = Time::seconds(10.0);
  const auto campaign = generate_campaign(bed, cfg);
  const auto filtered =
      filter_to_bs_subset(campaign.trips[0], campaign.trips[0].bs_ids);
  EXPECT_EQ(filtered.vehicle_beacons.size(),
            campaign.trips[0].vehicle_beacons.size());
  EXPECT_EQ(filtered.slots.size(), campaign.trips[0].slots.size());
}

TEST(BurstProbe, ProducesExpectedCounts) {
  const Testbed bed = make_vanlan();
  const auto run = burst_probe_single(bed, bed.bs_ids()[0],
                                      Time::seconds(10.0), Time::millis(10),
                                      Rng(1));
  EXPECT_EQ(run.received.size(), 1000u);
  EXPECT_EQ(run.in_range.size(), 1000u);
}

TEST(BurstProbe, InRangeMaskTracksGeometry) {
  const Testbed bed = make_vanlan();
  // Probe for a whole trip: the vehicle passes in and out of range of any
  // single BS, so the mask must contain both values.
  const auto run =
      burst_probe_single(bed, bed.bs_ids()[0], bed.trip_duration(),
                         Time::millis(10), Rng(2));
  const auto in = std::count(run.in_range.begin(), run.in_range.end(), true);
  EXPECT_GT(in, 0);
  EXPECT_LT(static_cast<std::size_t>(in), run.in_range.size());
}

TEST(BurstProbe, PairRunsAreAligned) {
  const Testbed bed = make_vanlan();
  const auto run =
      burst_probe_pair(bed, bed.bs_ids()[0], bed.bs_ids()[1],
                       Time::seconds(20.0), Time::millis(20), Rng(3));
  EXPECT_EQ(run.a_received.size(), run.b_received.size());
  EXPECT_EQ(run.a_received.size(), run.both_in_range.size());
  EXPECT_EQ(run.a_received.size(), 1000u);
}

TEST(LiveTrip, WarmupEstablishesProtocolState) {
  const Testbed bed = make_vanlan();
  LiveTrip trip(bed, core::SystemConfig{}, 42);
  trip.run_until(LiveTrip::warmup());
  EXPECT_TRUE(trip.system().vehicle().anchor().valid());
  EXPECT_GE(trip.simulator().now(), LiveTrip::warmup());
}

TEST(LiveTrip, SameSeedSameAnchorSequence) {
  const Testbed bed = make_vanlan();
  LiveTrip a(bed, core::SystemConfig{}, 43);
  LiveTrip b(bed, core::SystemConfig{}, 43);
  a.run_until(Time::seconds(20.0));
  b.run_until(Time::seconds(20.0));
  EXPECT_EQ(a.system().vehicle().anchor(), b.system().vehicle().anchor());
  EXPECT_EQ(a.system().vehicle().anchor_switches(),
            b.system().vehicle().anchor_switches());
}

TEST(LiveTrip, TraceDrivenConstructorUsesSchedule) {
  const Testbed bed = make_dieselnet(1);
  CampaignConfig cfg;
  cfg.days = 1;
  cfg.trips_per_day = 1;
  cfg.trip_duration = Time::seconds(30.0);
  cfg.log_probes = false;
  const auto campaign = generate_campaign(bed, cfg);
  LiveTrip trip(bed, campaign.trips[0], core::SystemConfig{}, 44);
  trip.run_until(Time::seconds(10.0));
  // The loss model must be the schedule, not the stochastic channel:
  // beyond the trace horizon everything is unreachable.
  EXPECT_EQ(trip.loss_model().reception_prob(bed.bs_ids()[0], bed.vehicle(),
                                             Time::seconds(10'000.0)),
            0.0);
}

}  // namespace
}  // namespace vifi::scenario
