// Tests for testbed assembly, measurement-campaign generation, BS-subset
// filtering, burst probing, and live-trip plumbing.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "fakes.h"
#include "scenario/burst_probe.h"
#include "scenario/campaign.h"
#include "scenario/channel_plan.h"
#include "scenario/live.h"
#include "scenario/testbed.h"
#include "util/contracts.h"

namespace vifi::scenario {
namespace {

TEST(Testbed, VanLanIdentityConventions) {
  const Testbed bed = make_vanlan();
  EXPECT_EQ(bed.bs_ids().size(), 11u);
  EXPECT_EQ(bed.vehicle().value(), 11);
  EXPECT_EQ(bed.wired_host().value(), 12);
  for (std::size_t i = 0; i < bed.bs_ids().size(); ++i)
    EXPECT_EQ(bed.bs_ids()[i].value(), static_cast<int>(i));
}

TEST(Testbed, FleetIdentityConventions) {
  // BSes 0..n-1, vehicles n..n+V-1, wired host n+V.
  const Testbed bed = make_vanlan(3);
  EXPECT_EQ(bed.fleet_size(), 3);
  ASSERT_EQ(bed.vehicle_ids().size(), 3u);
  EXPECT_EQ(bed.vehicle_ids()[0].value(), 11);
  EXPECT_EQ(bed.vehicle_ids()[1].value(), 12);
  EXPECT_EQ(bed.vehicle_ids()[2].value(), 13);
  EXPECT_EQ(bed.vehicle(), bed.vehicle_ids()[0]);
  EXPECT_EQ(bed.wired_host().value(), 14);
  for (const auto v : bed.vehicle_ids()) EXPECT_TRUE(bed.is_vehicle(v));
  EXPECT_FALSE(bed.is_vehicle(bed.bs_ids()[0]));
  EXPECT_FALSE(bed.is_vehicle(bed.wired_host()));
}

TEST(Testbed, FleetVehiclesRideOutOfPhase) {
  const Testbed bed = make_vanlan(2);
  // Default spread: the second van starts half a lap ahead, so the two
  // never share a position at the same instant (same loop, same speed).
  const auto a = bed.vehicle_ids()[0];
  const auto b = bed.vehicle_ids()[1];
  EXPECT_NE(bed.position(a, Time::zero()), bed.position(b, Time::zero()));
  // Phase, not geometry: b at t=0 sits where a is half a lap later.
  const Time half_lap = bed.trip_duration() * 0.5;
  const auto pa = bed.position(a, half_lap);
  const auto pb = bed.position(b, Time::zero());
  EXPECT_NEAR(pa.x, pb.x, 1e-6);
  EXPECT_NEAR(pa.y, pb.y, 1e-6);
}

TEST(Testbed, ExplicitFleetPhasesAreHonoured) {
  FleetSpec fleet;
  fleet.vehicles = 2;
  fleet.phases = {0.0, 0.0};
  const Testbed bed = make_dieselnet_fleet(1, std::move(fleet));
  EXPECT_EQ(bed.fleet_size(), 2);
  // Identical phases: the two buses shadow each other exactly.
  EXPECT_EQ(bed.position(bed.vehicle_ids()[0], Time::seconds(100.0)),
            bed.position(bed.vehicle_ids()[1], Time::seconds(100.0)));
}

TEST(Testbed, DieselnetFleetBusesStaggerOnSharedStops) {
  const Testbed bed = make_dieselnet(1, 2);
  const auto a = bed.vehicle_ids()[0];
  const auto b = bed.vehicle_ids()[1];
  // Same stop schedule, half a cycle apart: positions differ at t = 0.
  EXPECT_NE(bed.position(a, Time::zero()), bed.position(b, Time::zero()));
  // Phase alignment across the full cycle (cruise + dwells).
  const Time half = bed.trip_duration() * 0.5;
  const auto pa = bed.position(a, half);
  const auto pb = bed.position(b, Time::zero());
  EXPECT_NEAR(pa.x, pb.x, 1e-6);
  EXPECT_NEAR(pa.y, pb.y, 1e-6);
}

TEST(Testbed, PositionRejectsIdsOutsideTheTestbed) {
  const Testbed bed = make_vanlan();
  // 0..10 BSes, 11 vehicle, 12 wired host; 13 does not exist.
  EXPECT_NO_THROW(bed.position(NodeId(12), Time::zero()));
  EXPECT_THROW(bed.position(NodeId(13), Time::zero()), ContractViolation);
  EXPECT_THROW(bed.position(NodeId(999), Time::zero()), ContractViolation);
  EXPECT_THROW(bed.position(NodeId{}, Time::zero()), ContractViolation);
  try {
    bed.position(NodeId(42), Time::zero());
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    // The message must state the real contract, not leak the BS-array
    // bounds check it used to fall through to.
    EXPECT_NE(std::string(e.what()).find("not part of"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("wired host"), std::string::npos);
  }
}

TEST(Testbed, BsPositionsAreFixedAndVehicleMoves) {
  const Testbed bed = make_vanlan();
  const auto bs = bed.bs_ids()[0];
  EXPECT_EQ(bed.position(bs, Time::zero()),
            bed.position(bs, Time::minutes(5.0)));
  EXPECT_NE(bed.position(bed.vehicle(), Time::zero()),
            bed.position(bed.vehicle(), Time::seconds(30.0)));
}

TEST(Testbed, TripDurationMatchesRouteAndSpeed) {
  const Testbed van = make_vanlan();
  // ~2.3 km loop at 11.1 m/s: a few minutes.
  EXPECT_GT(van.trip_duration(), Time::seconds(120.0));
  EXPECT_LT(van.trip_duration(), Time::seconds(400.0));
  // Bus route includes dwell time.
  const Testbed bus = make_dieselnet(1);
  EXPECT_GT(bus.trip_duration(), Time::seconds(400.0));
}

TEST(Testbed, ChannelFactoryIsDeterministic) {
  const Testbed bed = make_vanlan();
  auto a = bed.make_channel(Rng(5));
  auto b = bed.make_channel(Rng(5));
  const auto veh = bed.vehicle();
  for (int i = 0; i < 2000; ++i) {
    const Time t = Time::millis(10.0 * i);
    EXPECT_EQ(a->sample_delivery(bed.bs_ids()[0], veh, t),
              b->sample_delivery(bed.bs_ids()[0], veh, t));
  }
}

TEST(Campaign, ShapeMatchesConfig) {
  const Testbed bed = make_vanlan();
  CampaignConfig cfg;
  cfg.days = 2;
  cfg.trips_per_day = 3;
  cfg.trip_duration = Time::seconds(30.0);
  const auto campaign = generate_campaign(bed, cfg);
  EXPECT_EQ(campaign.trips.size(), 6u);
  EXPECT_EQ(campaign.days(), 2);
  for (const auto& trip : campaign.trips) {
    EXPECT_EQ(trip.duration, Time::seconds(30.0));
    EXPECT_EQ(trip.bs_ids.size(), 11u);
    EXPECT_EQ(trip.slots.size(), 300u);  // 10 per second
    EXPECT_FALSE(trip.vehicle_beacons.empty());
    EXPECT_TRUE(trip.bs_beacons.empty());  // not requested
  }
}

TEST(Campaign, BeaconOnlyModeSkipsProbes) {
  const Testbed bed = make_dieselnet(1);
  CampaignConfig cfg;
  cfg.days = 1;
  cfg.trips_per_day = 1;
  cfg.trip_duration = Time::seconds(20.0);
  cfg.log_probes = false;
  const auto campaign = generate_campaign(bed, cfg);
  EXPECT_TRUE(campaign.trips[0].slots.empty());
  EXPECT_FALSE(campaign.trips[0].vehicle_beacons.empty());
}

TEST(Campaign, BsBeaconLoggingWorks) {
  const Testbed bed = make_vanlan();
  CampaignConfig cfg;
  cfg.days = 1;
  cfg.trips_per_day = 1;
  cfg.trip_duration = Time::seconds(20.0);
  cfg.log_bs_beacons = true;
  const auto campaign = generate_campaign(bed, cfg);
  // Co-located building BSes certainly hear each other.
  EXPECT_FALSE(campaign.trips[0].bs_beacons.empty());
}

TEST(Campaign, DeterministicForSeed) {
  const Testbed bed = make_vanlan();
  CampaignConfig cfg;
  cfg.days = 1;
  cfg.trips_per_day = 1;
  cfg.trip_duration = Time::seconds(15.0);
  cfg.seed = 31337;
  const auto a = generate_campaign(bed, cfg);
  const auto b = generate_campaign(bed, cfg);
  ASSERT_EQ(a.trips[0].slots.size(), b.trips[0].slots.size());
  for (std::size_t i = 0; i < a.trips[0].slots.size(); ++i) {
    EXPECT_EQ(a.trips[0].slots[i].down_heard, b.trips[0].slots[i].down_heard);
    EXPECT_EQ(a.trips[0].slots[i].up_heard_by,
              b.trips[0].slots[i].up_heard_by);
  }
  EXPECT_EQ(a.trips[0].vehicle_beacons.size(),
            b.trips[0].vehicle_beacons.size());
}

TEST(Campaign, TripsAreIndependentRealisations) {
  const Testbed bed = make_vanlan();
  CampaignConfig cfg;
  cfg.days = 1;
  cfg.trips_per_day = 2;
  cfg.trip_duration = Time::seconds(20.0);
  const auto campaign = generate_campaign(bed, cfg);
  int diff = 0;
  for (std::size_t i = 0; i < campaign.trips[0].slots.size(); ++i)
    if (campaign.trips[0].slots[i].down_heard !=
        campaign.trips[1].slots[i].down_heard)
      ++diff;
  EXPECT_GT(diff, 0);
}

TEST(Campaign, FleetProducesOneTracePerVehiclePerTrip) {
  const Testbed bed = make_vanlan(2);
  CampaignConfig cfg;
  cfg.days = 1;
  cfg.trips_per_day = 2;
  cfg.trip_duration = Time::seconds(20.0);
  const auto campaign = generate_campaign(bed, cfg);
  ASSERT_EQ(campaign.trips.size(), 4u);  // 2 trips x 2 vehicles
  // Ordered by (day, trip, vehicle).
  EXPECT_EQ(campaign.trips[0].trip, 0);
  EXPECT_EQ(campaign.trips[0].vehicle, bed.vehicle_ids()[0]);
  EXPECT_EQ(campaign.trips[1].trip, 0);
  EXPECT_EQ(campaign.trips[1].vehicle, bed.vehicle_ids()[1]);
  EXPECT_EQ(campaign.trips[2].trip, 1);
  for (const auto& trip : campaign.trips) {
    EXPECT_EQ(trip.slots.size(), 200u);
    EXPECT_FALSE(trip.vehicle_beacons.empty());
  }
  // The two vehicles ride different parts of the campus, so their logs of
  // the same trip must differ.
  int diff = 0;
  for (std::size_t i = 0; i < campaign.trips[0].slots.size(); ++i)
    if (campaign.trips[0].slots[i].down_heard !=
        campaign.trips[1].slots[i].down_heard)
      ++diff;
  EXPECT_GT(diff, 0);
}

TEST(Campaign, TracesNameTheirLoggingVehicle) {
  CampaignConfig cfg;
  cfg.days = 1;
  cfg.trips_per_day = 1;
  cfg.trip_duration = Time::seconds(10.0);
  const auto solo = generate_campaign(make_vanlan(), cfg);
  EXPECT_EQ(solo.trips[0].vehicle, make_vanlan().vehicle());
  const Testbed duo = make_dieselnet(1, 2);
  const auto fleet = generate_campaign(duo, cfg);
  ASSERT_EQ(fleet.trips.size(), 2u);
  EXPECT_EQ(fleet.trips[0].vehicle, duo.vehicle_ids()[0]);
  EXPECT_EQ(fleet.trips[1].vehicle, duo.vehicle_ids()[1]);
}

TEST(FilterSubset, DropsExcludedBsEverywhere) {
  const Testbed bed = make_vanlan();
  CampaignConfig cfg;
  cfg.days = 1;
  cfg.trips_per_day = 1;
  cfg.trip_duration = Time::seconds(30.0);
  const auto campaign = generate_campaign(bed, cfg);
  const std::vector<sim::NodeId> keep{bed.bs_ids()[0], bed.bs_ids()[5]};
  const auto filtered = filter_to_bs_subset(campaign.trips[0], keep);
  EXPECT_EQ(filtered.bs_ids, keep);
  const std::set<sim::NodeId> allowed(keep.begin(), keep.end());
  for (const auto& slot : filtered.slots) {
    for (auto id : slot.down_heard) EXPECT_TRUE(allowed.contains(id));
    for (auto id : slot.up_heard_by) EXPECT_TRUE(allowed.contains(id));
  }
  for (const auto& b : filtered.vehicle_beacons)
    EXPECT_TRUE(allowed.contains(b.bs));
}

TEST(FilterSubset, FullSubsetIsIdentity) {
  const Testbed bed = make_vanlan();
  CampaignConfig cfg;
  cfg.days = 1;
  cfg.trips_per_day = 1;
  cfg.trip_duration = Time::seconds(10.0);
  const auto campaign = generate_campaign(bed, cfg);
  const auto filtered =
      filter_to_bs_subset(campaign.trips[0], campaign.trips[0].bs_ids);
  EXPECT_EQ(filtered.vehicle_beacons.size(),
            campaign.trips[0].vehicle_beacons.size());
  EXPECT_EQ(filtered.slots.size(), campaign.trips[0].slots.size());
}

TEST(BurstProbe, ProducesExpectedCounts) {
  const Testbed bed = make_vanlan();
  const auto run = burst_probe_single(bed, bed.bs_ids()[0],
                                      Time::seconds(10.0), Time::millis(10),
                                      Rng(1));
  EXPECT_EQ(run.received.size(), 1000u);
  EXPECT_EQ(run.in_range.size(), 1000u);
}

TEST(BurstProbe, InRangeMaskTracksGeometry) {
  const Testbed bed = make_vanlan();
  // Probe for a whole trip: the vehicle passes in and out of range of any
  // single BS, so the mask must contain both values.
  const auto run =
      burst_probe_single(bed, bed.bs_ids()[0], bed.trip_duration(),
                         Time::millis(10), Rng(2));
  const auto in = std::count(run.in_range.begin(), run.in_range.end(), true);
  EXPECT_GT(in, 0);
  EXPECT_LT(static_cast<std::size_t>(in), run.in_range.size());
}

TEST(BurstProbe, PairRunsAreAligned) {
  const Testbed bed = make_vanlan();
  const auto run =
      burst_probe_pair(bed, bed.bs_ids()[0], bed.bs_ids()[1],
                       Time::seconds(20.0), Time::millis(20), Rng(3));
  EXPECT_EQ(run.a_received.size(), run.b_received.size());
  EXPECT_EQ(run.a_received.size(), run.both_in_range.size());
  EXPECT_EQ(run.a_received.size(), 1000u);
}

TEST(LiveTrip, WarmupEstablishesProtocolState) {
  const Testbed bed = make_vanlan();
  LiveTrip trip(bed, core::SystemConfig{}, 42);
  trip.run_until(LiveTrip::warmup());
  EXPECT_TRUE(trip.system().vehicle().anchor().valid());
  EXPECT_GE(trip.simulator().now(), LiveTrip::warmup());
}

TEST(LiveTrip, SameSeedSameAnchorSequence) {
  const Testbed bed = make_vanlan();
  LiveTrip a(bed, core::SystemConfig{}, 43);
  LiveTrip b(bed, core::SystemConfig{}, 43);
  a.run_until(Time::seconds(20.0));
  b.run_until(Time::seconds(20.0));
  EXPECT_EQ(a.system().vehicle().anchor(), b.system().vehicle().anchor());
  EXPECT_EQ(a.system().vehicle().anchor_switches(),
            b.system().vehicle().anchor_switches());
}

TEST(LiveTrip, FleetBuildsOneTransportPerVehicle) {
  const Testbed bed = make_vanlan(2);
  LiveTrip trip(bed, core::SystemConfig{}, 45);
  ASSERT_EQ(trip.transports().size(), 2u);
  EXPECT_EQ(trip.transport().vehicle(), bed.vehicle_ids()[0]);
  EXPECT_EQ(trip.transport(bed.vehicle_ids()[1]).vehicle(),
            bed.vehicle_ids()[1]);
  EXPECT_THROW(trip.transport(sim::NodeId(99)), ContractViolation);
  EXPECT_EQ(trip.system().vehicle_ids().size(), 2u);
}

TEST(LiveTrip, FleetVehiclesAnchorAndExchangeIndependently) {
  const Testbed bed = make_vanlan(2);
  LiveTrip trip(bed, core::SystemConfig{}, 46);
  int up_a = 0, up_b = 0, down_a = 0, down_b = 0;
  trip.transport(bed.vehicle_ids()[0])
      .subscribe(7, [&](const net::PacketRef& p) {
        (p->dir == net::Direction::Upstream ? up_a : down_a) += 1;
      });
  trip.transport(bed.vehicle_ids()[1])
      .subscribe(7, [&](const net::PacketRef& p) {
        (p->dir == net::Direction::Upstream ? up_b : down_b) += 1;
      });
  trip.run_until(LiveTrip::warmup());
  EXPECT_TRUE(trip.system().vehicle(bed.vehicle_ids()[0]).anchor().valid());
  EXPECT_TRUE(trip.system().vehicle(bed.vehicle_ids()[1]).anchor().valid());
  for (int i = 0; i < 50; ++i) {
    for (const auto v : bed.vehicle_ids()) {
      trip.transport(v).send(net::Direction::Upstream, 200, 7,
                             static_cast<std::uint64_t>(i));
      trip.transport(v).send(net::Direction::Downstream, 200, 7,
                             static_cast<std::uint64_t>(i));
    }
    trip.run_until(trip.simulator().now() + Time::millis(100.0));
  }
  trip.run_until(trip.simulator().now() + Time::seconds(1.0));
  // Both vehicles' flows moved traffic, demultiplexed per vehicle.
  EXPECT_GT(up_a, 0);
  EXPECT_GT(up_b, 0);
  EXPECT_GT(down_a, 0);
  EXPECT_GT(down_b, 0);
}

TEST(LiveTrip, FleetTripIsDeterministicPerSeed) {
  const Testbed bed = make_vanlan(2);
  LiveTrip a(bed, core::SystemConfig{}, 47);
  LiveTrip b(bed, core::SystemConfig{}, 47);
  a.run_until(Time::seconds(15.0));
  b.run_until(Time::seconds(15.0));
  for (const auto v : bed.vehicle_ids()) {
    EXPECT_EQ(a.system().vehicle(v).anchor(), b.system().vehicle(v).anchor());
    EXPECT_EQ(a.system().vehicle(v).anchor_switches(),
              b.system().vehicle(v).anchor_switches());
  }
}

TEST(LiveTrip, TraceDrivenFleetConstructorConnectsEveryVehicle) {
  const Testbed bed = make_dieselnet(1, 2);
  CampaignConfig cfg;
  cfg.days = 1;
  cfg.trips_per_day = 1;
  cfg.trip_duration = Time::seconds(30.0);
  cfg.log_probes = false;
  const auto campaign = generate_campaign(bed, cfg);
  ASSERT_EQ(campaign.trips.size(), 2u);
  LiveTrip trip(bed, {&campaign.trips[0], &campaign.trips[1]},
                core::SystemConfig{}, 48);
  trip.run_until(Time::seconds(10.0));
  // Each vehicle's schedule registers its own id: some BS must be
  // reachable from each within the trace horizon.
  for (const auto v : bed.vehicle_ids()) {
    double best = 0.0;
    for (const auto bs : bed.bs_ids())
      for (int s = 0; s < 30; ++s)
        best = std::max(best, trip.loss_model().reception_prob(
                                  bs, v, Time::seconds(s + 0.5)));
    EXPECT_GT(best, 0.0) << "vehicle " << v.value();
  }
}

TEST(LiveTrip, TraceDrivenFleetConstructorRejectsForeignOrDuplicateTraces) {
  const Testbed bed = make_dieselnet(1, 2);
  CampaignConfig cfg;
  cfg.days = 1;
  cfg.trips_per_day = 1;
  cfg.trip_duration = Time::seconds(20.0);
  cfg.log_probes = false;
  const auto campaign = generate_campaign(bed, cfg);
  ASSERT_EQ(campaign.trips.size(), 2u);
  // Duplicate logger.
  EXPECT_THROW(LiveTrip(bed, {&campaign.trips[0], &campaign.trips[0]},
                        core::SystemConfig{}, 49),
               ContractViolation);
  // Trace logged by an id outside this testbed's vehicle range.
  trace::MeasurementTrace foreign = campaign.trips[0];
  foreign.vehicle = sim::NodeId(99);
  EXPECT_THROW(LiveTrip(bed, {&foreign, &campaign.trips[1]},
                        core::SystemConfig{}, 50),
               ContractViolation);
}

TEST(ChannelizedLoss, EachFleetVehicleIsGatedByItsOwnServingChannel) {
  // Regression: the single-vehicle wrapper treated a second vehicle as a
  // channel-0 BS, so its cross-channel deafness followed the *plan* rather
  // than its serving channel. Two vehicles on different anchors/channels
  // must each get correct gating.
  testing::ScriptedLoss base;
  const sim::NodeId bs0(0), bs1(1), veh_a(2), veh_b(3);
  for (const auto tx : {bs0, bs1, veh_a, veh_b})
    for (const auto rx : {bs0, bs1, veh_a, veh_b})
      if (tx != rx) base.set_directed(tx, rx, 1.0);

  ChannelPlan plan;
  plan.assign(bs0, 0);
  plan.assign(bs1, 1);
  // Vehicle A serves on channel 0 (anchored at bs0), B on channel 1.
  std::map<sim::NodeId, int> serving{{veh_a, 0}, {veh_b, 1}};
  ChannelizedLoss loss(
      base, plan, std::vector<sim::NodeId>{veh_a, veh_b},
      /*aux_radios=*/false,
      [&serving](sim::NodeId v) { return serving.at(v); });

  const Time t = Time::zero();
  // A is heard only by its same-channel BS; likewise B.
  EXPECT_GT(loss.reception_prob(veh_a, bs0, t), 0.0);
  EXPECT_EQ(loss.reception_prob(veh_a, bs1, t), 0.0);
  EXPECT_EQ(loss.reception_prob(veh_b, bs0, t), 0.0);
  EXPECT_GT(loss.reception_prob(veh_b, bs1, t), 0.0);
  // Downlink beacon visibility stays open from any BS to any vehicle.
  EXPECT_GT(loss.reception_prob(bs1, veh_a, t), 0.0);
  EXPECT_GT(loss.reception_prob(bs0, veh_b, t), 0.0);
  // Vehicles on different serving channels cannot overhear each other.
  EXPECT_EQ(loss.reception_prob(veh_a, veh_b, t), 0.0);
  serving[veh_b] = 0;  // B hands off to a channel-0 anchor
  EXPECT_GT(loss.reception_prob(veh_b, bs0, t), 0.0);
  EXPECT_EQ(loss.reception_prob(veh_b, bs1, t), 0.0);
  EXPECT_GT(loss.reception_prob(veh_a, veh_b, t), 0.0);
}

TEST(ChannelizedLoss, AuxRadiosRestoreCrossChannelOverhearing) {
  testing::ScriptedLoss base;
  const sim::NodeId bs0(0), bs1(1), veh_a(2), veh_b(3);
  for (const auto tx : {bs0, bs1, veh_a, veh_b})
    for (const auto rx : {bs0, bs1, veh_a, veh_b})
      if (tx != rx) base.set_directed(tx, rx, 1.0);
  ChannelPlan plan;
  plan.assign(bs0, 0);
  plan.assign(bs1, 1);
  ChannelizedLoss loss(
      base, plan, std::vector<sim::NodeId>{veh_a, veh_b},
      /*aux_radios=*/true, [](sim::NodeId v) { return v.value() == 2 ? 0 : 1; });
  const Time t = Time::zero();
  for (const auto bs : {bs0, bs1})
    for (const auto v : {veh_a, veh_b}) {
      EXPECT_GT(loss.reception_prob(v, bs, t), 0.0);
      EXPECT_GT(loss.reception_prob(bs, v, t), 0.0);
    }
  EXPECT_GT(loss.reception_prob(bs0, bs1, t), 0.0);
  EXPECT_GT(loss.reception_prob(veh_a, veh_b, t), 0.0);
}

TEST(LiveTrip, TraceDrivenConstructorUsesSchedule) {
  const Testbed bed = make_dieselnet(1);
  CampaignConfig cfg;
  cfg.days = 1;
  cfg.trips_per_day = 1;
  cfg.trip_duration = Time::seconds(30.0);
  cfg.log_probes = false;
  const auto campaign = generate_campaign(bed, cfg);
  LiveTrip trip(bed, campaign.trips[0], core::SystemConfig{}, 44);
  trip.run_until(Time::seconds(10.0));
  // The loss model must be the schedule, not the stochastic channel:
  // beyond the trace horizon everything is unreachable.
  EXPECT_EQ(trip.loss_model().reception_prob(bed.bs_ids()[0], bed.vehicle(),
                                             Time::seconds(10'000.0)),
            0.0);
}

}  // namespace
}  // namespace vifi::scenario
