// Tests for TripScope: TraceRecorder ring semantics, scope nesting, the
// MetricsRegistry (key canonicalisation, histogram bucketing, flatten /
// total), JSON escaping in the exporters, and — the observability
// determinism contract — byte-identical per-point trace exports for any
// runner thread count.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "runtime/runner.h"
#include "util/contracts.h"
#include "util/logging.h"

namespace vifi::obs {
namespace {

TraceEvent event_at(double t_s, std::uint64_t id) {
  TraceEvent e;
  e.at = Time::seconds(t_s);
  e.id = id;
  e.kind = EventKind::BeaconTx;
  e.node = sim::NodeId{1};
  return e;
}

TEST(EventRing, FillsToCapacityWithoutDropping) {
  EventRing ring(4);
  for (std::uint64_t i = 0; i < 4; ++i) ring.push(event_at(0.1, i));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 0u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].id, i);
}

TEST(EventRing, WrapsByOverwritingTheOldest) {
  EventRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) ring.push(event_at(0.1, i));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.dropped(), 6u);
  // snapshot() unwraps: the newest window, oldest-to-newest.
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].id, 6 + i);
}

TEST(EventRing, ZeroCapacityIsAContractViolation) {
  EXPECT_THROW(EventRing ring(0), ContractViolation);
}

TEST(TraceRecorder, CountsStayExactAcrossRingWrap) {
  TraceRecorder rec(8);
  const sim::NodeId node{3};
  for (int i = 0; i < 20; ++i)
    rec.record(EventKind::FrameTx, Time::seconds(0.01 * i), node);
  rec.record(EventKind::AnchorChange, Time::seconds(1.0), node);
  EXPECT_EQ(rec.recorded(), 21u);
  EXPECT_EQ(rec.dropped(), 13u);  // 21 records into an 8-slot ring
  EXPECT_EQ(rec.ring(node).size(), 8u);
  // Per-kind counters survive the overwrites — reconciliation relies on it.
  EXPECT_EQ(rec.count(EventKind::FrameTx), 20u);
  EXPECT_EQ(rec.count(EventKind::AnchorChange), 1u);
  EXPECT_EQ(rec.count(EventKind::SalvageRequest), 0u);
}

TEST(TraceRecorder, TimeBaseStitchesTripsOntoOneTimeline) {
  TraceRecorder rec;
  const sim::NodeId node{1};
  rec.record(EventKind::BeaconTx, Time::seconds(2.0), node);
  rec.set_time_base(Time::seconds(100.0));
  rec.record(EventKind::BeaconTx, Time::seconds(2.0), node);
  const auto events = rec.ring(node).snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at, Time::seconds(2.0));
  EXPECT_EQ(events[1].at, Time::seconds(102.0));
}

TEST(TraceRecorder, MergedIsSeqOrderedAcrossNodes) {
  TraceRecorder rec;
  rec.record(EventKind::BeaconTx, Time::seconds(1.0), sim::NodeId{2});
  rec.record(EventKind::BeaconRx, Time::seconds(1.0), sim::NodeId{7});
  rec.record(EventKind::BeaconRx, Time::seconds(1.1), sim::NodeId{2});
  const auto merged = rec.merged();
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_LT(merged[0].seq, merged[1].seq);
  EXPECT_LT(merged[1].seq, merged[2].seq);
  EXPECT_EQ(merged[1].node, sim::NodeId{7});
}

TEST(TraceRecorder, UnseenNodeHasEmptyRingAndLabelsListNodes) {
  TraceRecorder rec;
  EXPECT_EQ(rec.ring(sim::NodeId{42}).size(), 0u);
  rec.set_node_label(sim::NodeId{5}, "bs");
  rec.record(EventKind::BeaconTx, Time::seconds(0.0), sim::NodeId{9});
  const auto nodes = rec.nodes();
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[0], sim::NodeId{5});
  EXPECT_EQ(nodes[1], sim::NodeId{9});
  EXPECT_EQ(rec.node_label(sim::NodeId{5}), "bs");
  EXPECT_EQ(rec.node_label(sim::NodeId{9}), "");
}

TEST(TraceScope, NestsAndRestoresThePreviousRecorder) {
  EXPECT_EQ(current_recorder(), nullptr);
  TraceRecorder outer;
  {
    TraceScope a(outer);
    EXPECT_EQ(current_recorder(), &outer);
    TraceRecorder inner;
    {
      TraceScope b(inner);
      EXPECT_EQ(current_recorder(), &inner);
    }
    EXPECT_EQ(current_recorder(), &outer);
  }
  EXPECT_EQ(current_recorder(), nullptr);
}

TEST(MetricsScope, NestsAndRestoresThePreviousRegistry) {
  EXPECT_EQ(current_metrics(), nullptr);
  MetricsRegistry outer;
  {
    MetricsScope a(outer);
    EXPECT_EQ(current_metrics(), &outer);
    MetricsRegistry inner;
    {
      MetricsScope b(inner);
      EXPECT_EQ(current_metrics(), &inner);
    }
    EXPECT_EQ(current_metrics(), &outer);
  }
  EXPECT_EQ(current_metrics(), nullptr);
}

TEST(WarnRouting, WarnAndErrorLandOnTheInstalledRecorder) {
  TraceRecorder rec;
  {
    TraceScope scope(rec);
    VIFI_WARN("salvage queue overflow on " << sim::NodeId{3});
    VIFI_ERROR("bad frame");
    VIFI_DEBUG("below threshold, not routed");  // default level is Warn
  }
  VIFI_WARN("outside the scope, not routed");
  ASSERT_EQ(rec.log_records().size(), 2u);
  EXPECT_EQ(rec.log_records()[0].level, LogLevel::Warn);
  EXPECT_NE(rec.log_records()[0].message.find("salvage queue overflow"),
            std::string::npos);
  EXPECT_EQ(rec.log_records()[1].level, LogLevel::Error);
  EXPECT_EQ(rec.count(EventKind::Log), 2u);
}

TEST(Histogram, BucketsAreInclusiveUpperBoundsPlusOverflow) {
  Histogram h({1.0, 2.0, 5.0});
  for (const double sample : {0.5, 1.0, 1.5, 2.0, 4.9, 5.0, 7.0, 100.0})
    h.observe(sample);
  EXPECT_EQ(h.count(), 8u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.9 + 5.0 + 7.0 + 100.0);
  ASSERT_EQ(h.buckets().size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(h.buckets()[0], 2u);      // 0.5, 1.0   (bucket counts <= bound)
  EXPECT_EQ(h.buckets()[1], 2u);      // 1.5, 2.0
  EXPECT_EQ(h.buckets()[2], 2u);      // 4.9, 5.0
  EXPECT_EQ(h.buckets()[3], 2u);      // 7.0, 100.0 (overflow)
}

TEST(MetricsRegistry, KeyCanonicalisesLabelOrder) {
  EXPECT_EQ(MetricsRegistry::key("mac.frames_tx", {}), "mac.frames_tx");
  EXPECT_EQ(MetricsRegistry::key("mac.frames_tx",
                                 {{"role", "vehicle"}, {"node", "n3"}}),
            "mac.frames_tx{node=n3,role=vehicle}");
  // Same labels in either order resolve to the same instrument.
  MetricsRegistry reg;
  Counter& a = reg.counter("m", {{"x", "1"}, {"y", "2"}});
  Counter& b = reg.counter("m", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(&a, &b);
}

TEST(MetricsRegistry, TotalSumsAcrossLabelVariantsOfOneName) {
  MetricsRegistry reg;
  reg.counter("mac.frames_tx", {{"node", "n1"}}).add(3.0);
  reg.counter("mac.frames_tx", {{"node", "n2"}}).add(4.0);
  reg.counter("mac.collisions").add(9.0);
  reg.gauge("core.false_positive_rate").set(0.25);
  EXPECT_DOUBLE_EQ(reg.total("mac.frames_tx"), 7.0);
  EXPECT_DOUBLE_EQ(reg.total("mac.collisions"), 9.0);
  EXPECT_DOUBLE_EQ(reg.total("core.false_positive_rate"), 0.25);
  EXPECT_DOUBLE_EQ(reg.total("no.such.metric"), 0.0);
}

TEST(MetricsRegistry, FlattenExposesHistogramsAsCountAndSum) {
  MetricsRegistry reg;
  reg.counter("a.count_things").inc();
  Histogram& h = reg.histogram("a.latency_s", {0.1, 1.0}, {{"node", "n1"}});
  h.observe(0.05);
  h.observe(2.0);
  const auto flat = reg.flatten();
  EXPECT_DOUBLE_EQ(flat.at("a.count_things"), 1.0);
  EXPECT_DOUBLE_EQ(flat.at("a.latency_s{node=n1}.count"), 2.0);
  EXPECT_DOUBLE_EQ(flat.at("a.latency_s{node=n1}.sum"), 2.05);
}

TEST(MetricsRegistry, HistogramReRegistrationMustAgreeOnBounds) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", {1.0, 2.0});
  EXPECT_EQ(&reg.histogram("h", {1.0, 2.0}), &h);
  EXPECT_THROW(reg.histogram("h", {1.0, 3.0}), ContractViolation);
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControlCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape("cr\rhere"), "cr\\rhere");
  EXPECT_EQ(json_escape(std::string("nul\x01mid")), "nul\\u0001mid");
}

TEST(ChromeTrace, NamesTracksAndEmitsDurationAndInstantEvents) {
  TraceRecorder rec;
  rec.set_node_label(sim::NodeId{1}, "bs");
  rec.set_node_label(sim::NodeId{2}, "vehicle");
  // FrameTx renders as a duration slice (ph X) with dur from arg a.
  rec.record(EventKind::FrameTx, Time::seconds(1.0), sim::NodeId{2},
             sim::NodeId{1}, 7, 0.002, 1.0, 0);
  rec.record(EventKind::AnchorChange, Time::seconds(2.0), sim::NodeId{2},
             sim::NodeId{1});
  {
    TraceScope scope(rec);
    VIFI_WARN("routed \"quoted\" warning");
  }
  const std::string json = chrome_trace_json(rec);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("n1 bs"), std::string::npos);
  EXPECT_NE(json.find("n2 vehicle"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2000"), std::string::npos);  // 0.002 s in us
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("anchor_change"), std::string::npos);
  // The routed warning is escaped, not emitted raw.
  EXPECT_NE(json.find("routed \\\"quoted\\\" warning"), std::string::npos);
  EXPECT_EQ(json.find("routed \"quoted\" warning"), std::string::npos);
}

TEST(Jsonl, OneObjectPerEventPlusLogLines) {
  TraceRecorder rec;
  rec.record(EventKind::BeaconTx, Time::seconds(0.5), sim::NodeId{1});
  rec.record(EventKind::BeaconRx, Time::seconds(0.6), sim::NodeId{2},
             sim::NodeId{1});
  rec.log(LogLevel::Warn, "something odd");
  const std::string jsonl = events_jsonl(rec);
  std::istringstream is(jsonl);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    ++lines;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(lines, 3u);
  EXPECT_NE(jsonl.find("\"kind\":\"beacon_tx\""), std::string::npos);
  EXPECT_NE(jsonl.find("something odd"), std::string::npos);
}

// --- the sweep-level contract: per-point trace exports are byte-identical
// --- for any runner thread count ----------------------------------------

std::string slurp(const std::filesystem::path& p) {
  std::ifstream is(p, std::ios::binary);
  std::stringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

runtime::ExperimentSpec traced_cbr_spec(const std::string& trace_dir) {
  runtime::ExperimentSpec spec;
  spec.grid.testbeds = {"VanLAN"};
  spec.grid.policies = {"ViFi", "BRR"};
  spec.grid.seeds = {1};
  spec.days = 1;
  spec.trips_per_day = 1;
  spec.trip_duration = Time::seconds(20.0);
  spec.workload = "cbr";
  spec.trace_dir = trace_dir;
  spec.metric_columns = {"mac.transmissions", "core.app_delivered"};
  return spec;
}

TEST(TraceExport, SweepTraceFilesAreThreadCountInvariant) {
  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() / "vifi_test_obs_traces";
  const fs::path dir_one = root / "one";
  const fs::path dir_four = root / "four";
  fs::remove_all(root);

  const runtime::ResultSink one =
      runtime::Runner({.threads = 1}).run(traced_cbr_spec(dir_one.string()));
  const runtime::ResultSink four =
      runtime::Runner({.threads = 4}).run(traced_cbr_spec(dir_four.string()));
  EXPECT_FALSE(one.any_errors());
  EXPECT_EQ(one.to_json(), four.to_json());

  for (const char* tag : {"point_0000", "point_0001"}) {
    for (const char* ext : {".trace.json", ".jsonl", ".metrics.json"}) {
      const std::string name = std::string(tag) + ext;
      const std::string a = slurp(dir_one / name);
      const std::string b = slurp(dir_four / name);
      ASSERT_FALSE(a.empty()) << name;
      EXPECT_EQ(a, b) << name;
    }
    // The Chrome trace is real JSON with the expected envelope.
    const std::string trace = slurp(dir_one / (std::string(tag) +
                                               ".trace.json"));
    EXPECT_EQ(trace.rfind("{\"traceEvents\":[", 0), 0u) << tag;
    ASSERT_GE(trace.size(), 4u);
    EXPECT_EQ(trace.substr(trace.size() - 4), "\n]}\n") << tag;
  }
  fs::remove_all(root);
}

TEST(TraceExport, MetricColumnsSurfaceInPointResults) {
  runtime::ExperimentSpec spec = traced_cbr_spec("");
  spec.grid.policies = {"ViFi"};
  const runtime::ResultSink sink = runtime::Runner({.threads = 1}).run(spec);
  const auto results = sink.ordered();
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].error.empty()) << results[0].error;
  ASSERT_TRUE(results[0].metrics.count("obs.mac.transmissions"));
  ASSERT_TRUE(results[0].metrics.count("obs.core.app_delivered"));
  EXPECT_GT(results[0].metrics.at("obs.mac.transmissions"), 0.0);
  EXPECT_GT(results[0].metrics.at("obs.core.app_delivered"), 0.0);
}

TEST(TraceExport, TracingChangesNoResultBytes) {
  runtime::ExperimentSpec plain = traced_cbr_spec("");
  plain.trace_dir.clear();
  plain.metric_columns.clear();

  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "vifi_test_obs_plain";
  fs::remove_all(dir);
  runtime::ExperimentSpec traced = traced_cbr_spec(dir.string());
  traced.metric_columns.clear();  // columns intentionally add metrics

  const runtime::Runner runner({.threads = 2});
  EXPECT_EQ(runner.run(plain).to_json(), runner.run(traced).to_json());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace vifi::obs
