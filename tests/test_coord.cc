// CoordTier state-machine suite: every legal transition of the per-client
// connection/handoff machine asserted, every illegal (phase, event) pair
// rejected with a ContractViolation naming both, timeout/loss fallback
// edges, prediction-miss recovery, and the ConnectivityManager's
// behaviour on top (association, prediction, pre-staging, suppression,
// online learning, timeout scans).

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "coord/manager.h"
#include "coord/predictor.h"
#include "coord/state.h"
#include "core/config.h"
#include "scenario/campaign.h"
#include "scenario/live.h"
#include "runtime/experiment.h"
#include "scenario/testbed.h"
#include "sim/simulator.h"
#include "util/contracts.h"

namespace vifi::coord {
namespace {

using P = ClientPhase;
using E = CoordEvent;
using sim::NodeId;

// ------------------------------------------------ the pure transition table

/// The complete legal-edge set, the single source of truth this suite
/// cross-checks `next_phase` against (both directions: every listed edge
/// must hold, every unlisted pair must be rejected).
const std::map<std::pair<P, E>, P>& legal_edges() {
  static const std::map<std::pair<P, E>, P> edges{
      {{P::Idle, E::BeaconSeen}, P::Discovered},
      {{P::Discovered, E::BeaconSeen}, P::Discovered},
      {{P::Discovered, E::AnchorConfirmed}, P::Associated},
      {{P::Discovered, E::Timeout}, P::Idle},
      {{P::Associated, E::BeaconSeen}, P::Associated},
      {{P::Associated, E::AnchorConfirmed}, P::Associated},
      {{P::Associated, E::PredictionMade}, P::PredictedHandoff},
      {{P::Associated, E::AnchorLost}, P::Discovered},
      {{P::Associated, E::Timeout}, P::Idle},
      {{P::PredictedHandoff, E::BeaconSeen}, P::PredictedHandoff},
      {{P::PredictedHandoff, E::HandoffObserved}, P::HandedOff},
      {{P::PredictedHandoff, E::PredictionMiss}, P::Associated},
      {{P::PredictedHandoff, E::AnchorLost}, P::Discovered},
      {{P::PredictedHandoff, E::Timeout}, P::Idle},
      {{P::HandedOff, E::BeaconSeen}, P::HandedOff},
      {{P::HandedOff, E::AnchorConfirmed}, P::Associated},
      {{P::HandedOff, E::AnchorLost}, P::Discovered},
      {{P::HandedOff, E::Timeout}, P::Idle},
  };
  return edges;
}

/// Drives a fresh machine into \p phase through known-legal edges.
ClientStateMachine machine_in(P phase) {
  ClientStateMachine m;
  switch (phase) {
    case P::Idle:
      break;
    case P::Discovered:
      m.fire(E::BeaconSeen);
      break;
    case P::Associated:
      m.fire(E::BeaconSeen);
      m.fire(E::AnchorConfirmed);
      break;
    case P::PredictedHandoff:
      m.fire(E::BeaconSeen);
      m.fire(E::AnchorConfirmed);
      m.fire(E::PredictionMade);
      break;
    case P::HandedOff:
      m.fire(E::BeaconSeen);
      m.fire(E::AnchorConfirmed);
      m.fire(E::PredictionMade);
      m.fire(E::HandoffObserved);
      break;
  }
  EXPECT_EQ(m.phase(), phase);
  return m;
}

TEST(CoordState, EveryLegalTransitionLandsWhereTheTableSays) {
  for (const auto& [pair, to] : legal_edges()) {
    const auto [from, event] = pair;
    const auto next = next_phase(from, event);
    ASSERT_TRUE(next.has_value())
        << to_string(from) << " + " << to_string(event);
    EXPECT_EQ(*next, to) << to_string(from) << " + " << to_string(event);

    ClientStateMachine m = machine_in(from);
    const std::uint64_t before = m.transitions();
    EXPECT_EQ(m.fire(event), to);
    EXPECT_EQ(m.phase(), to);
    EXPECT_EQ(m.transitions(), before + 1);
  }
}

TEST(CoordState, EveryIllegalPairIsRejectedWithACrispError) {
  int illegal = 0;
  for (int p = 0; p < kClientPhaseCount; ++p) {
    for (int e = 0; e < kCoordEventCount; ++e) {
      const P phase = static_cast<P>(p);
      const E event = static_cast<E>(e);
      if (legal_edges().contains({phase, event})) continue;
      ++illegal;
      EXPECT_FALSE(next_phase(phase, event).has_value())
          << to_string(phase) << " + " << to_string(event);

      ClientStateMachine m = machine_in(phase);
      const std::uint64_t before = m.transitions();
      try {
        m.fire(event);
        FAIL() << to_string(phase) << " + " << to_string(event)
               << " should have thrown";
      } catch (const ContractViolation& ex) {
        // The error must name both the event and the phase it hit.
        const std::string what = ex.what();
        EXPECT_NE(what.find(to_string(event)), std::string::npos) << what;
        EXPECT_NE(what.find(to_string(phase)), std::string::npos) << what;
      }
      // A rejected event leaves the machine untouched.
      EXPECT_EQ(m.phase(), phase);
      EXPECT_EQ(m.transitions(), before);
    }
  }
  // 5 phases x 7 events = 35 pairs; 18 legal edges leaves 17 illegal.
  EXPECT_EQ(illegal,
            kClientPhaseCount * kCoordEventCount -
                static_cast<int>(legal_edges().size()));
}

TEST(CoordState, TimeoutFallsBackToIdleFromEveryNonIdlePhase) {
  for (const P phase :
       {P::Discovered, P::Associated, P::PredictedHandoff, P::HandedOff}) {
    ClientStateMachine m = machine_in(phase);
    EXPECT_EQ(m.fire(E::Timeout), P::Idle) << to_string(phase);
  }
  // Nothing can time out before it was ever seen.
  EXPECT_THROW(machine_in(P::Idle).fire(E::Timeout), ContractViolation);
}

TEST(CoordState, AnchorLossFallsBackToDiscoveredFromAssociatedPhases) {
  for (const P phase : {P::Associated, P::PredictedHandoff, P::HandedOff}) {
    ClientStateMachine m = machine_in(phase);
    EXPECT_EQ(m.fire(E::AnchorLost), P::Discovered) << to_string(phase);
  }
  EXPECT_THROW(machine_in(P::Idle).fire(E::AnchorLost), ContractViolation);
  EXPECT_THROW(machine_in(P::Discovered).fire(E::AnchorLost),
               ContractViolation);
}

TEST(CoordState, PredictionMissRecoversToAssociatedAndCanRePredict) {
  ClientStateMachine m = machine_in(P::PredictedHandoff);
  EXPECT_EQ(m.fire(E::PredictionMiss), P::Associated);
  // Recovery is complete: the machine can commit to a fresh prediction
  // and carry it through to a hit.
  EXPECT_EQ(m.fire(E::PredictionMade), P::PredictedHandoff);
  EXPECT_EQ(m.fire(E::HandoffObserved), P::HandedOff);
  EXPECT_EQ(m.fire(E::AnchorConfirmed), P::Associated);
}

// ------------------------------------------------------------ the predictor

TEST(CoordPredictor, HighestCountWinsAndTiesGoToTheLowestBsId) {
  NextBsPredictor pred;
  pred.add(NodeId(10), NodeId(12), 3);
  pred.add(NodeId(10), NodeId(11), 3);
  pred.add(NodeId(10), NodeId(13), 2);
  const auto p = pred.predict(NodeId(10), 0.0, 1);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->bs, NodeId(11));  // 3-way count tie at 3: lowest id wins.
  EXPECT_EQ(p->support, 8);
  EXPECT_DOUBLE_EQ(p->confidence, 3.0 / 8.0);
}

TEST(CoordPredictor, SupportAndConfidenceFloorsHold) {
  NextBsPredictor pred;
  pred.add(NodeId(10), NodeId(11), 2);
  EXPECT_FALSE(pred.predict(NodeId(10), 0.0, 3).has_value());  // support 2 < 3
  pred.add(NodeId(10), NodeId(12), 2);
  // Support 4 clears the floor, but the best share is 0.5 < 0.6.
  EXPECT_FALSE(pred.predict(NodeId(10), 0.6, 3).has_value());
  EXPECT_TRUE(pred.predict(NodeId(10), 0.5, 3).has_value());
  EXPECT_FALSE(pred.predict(NodeId(99), 0.0, 1).has_value());  // never seen
}

TEST(CoordPredictor, FitHistoryFromGeneratedCampaignSeedsThePredictor) {
  const scenario::Testbed bed = runtime::make_testbed("VanLAN", 1);
  scenario::CampaignConfig cfg;
  cfg.days = 1;
  cfg.trips_per_day = 4;
  cfg.seed = 7;
  cfg.log_probes = false;
  const trace::Campaign campaign = scenario::generate_campaign(bed, cfg);
  std::vector<const trace::MeasurementTrace*> trips;
  for (const auto& t : campaign.trips) trips.push_back(&t);
  const auto history = fit_history(trips);
  ASSERT_FALSE(history.empty());
  for (const auto& [from, to, count] : history) {
    EXPECT_NE(from, to);
    EXPECT_GT(count, 0);
  }
  NextBsPredictor pred;
  pred.seed(history);
  // The fixed route repeats every trip, so at least one BS has a
  // confidently-predictable successor.
  bool any = false;
  for (const auto& triple : history)
    if (pred.predict(NodeId(triple[0]), 0.6, 3).has_value()) any = true;
  EXPECT_TRUE(any);
}

// ------------------------------------------------- the ConnectivityManager

class CoordManagerTest : public ::testing::Test {
 protected:
  /// History: A -> B with overwhelming support, so an Associated client
  /// anchored at A immediately predicts B.
  core::CoordParams confident_params() {
    core::CoordParams params;
    params.enabled = true;
    params.history = {{10, 11, 5}};
    return params;
  }

  sim::Simulator sim_;
  const NodeId veh_{1};
  const NodeId bs_a_{10}, bs_b_{11}, bs_c_{12};
};

TEST_F(CoordManagerTest, FirstAnchoredBeaconAssociatesAndPredicts) {
  ConnectivityManager mgr(sim_, confident_params());
  std::vector<std::array<NodeId, 3>> prestaged;
  mgr.set_prestage_handler([&](NodeId v, NodeId pred, NodeId anchor) {
    prestaged.push_back({v, pred, anchor});
  });
  mgr.on_beacon(bs_a_, veh_, bs_a_);
  // Idle -> Discovered -> Associated -> PredictedHandoff in one beacon:
  // the history already says A's successor is B.
  EXPECT_EQ(mgr.phase(veh_), P::PredictedHandoff);
  EXPECT_EQ(mgr.anchor(veh_), bs_a_);
  EXPECT_EQ(mgr.predicted(veh_), bs_b_);
  EXPECT_DOUBLE_EQ(mgr.confidence(veh_), 1.0);
  EXPECT_EQ(mgr.predictions(), 1u);
  EXPECT_EQ(mgr.prestages(), 1u);
  ASSERT_EQ(prestaged.size(), 1u);
  EXPECT_EQ(prestaged[0][0], veh_);
  EXPECT_EQ(prestaged[0][1], bs_b_);
  EXPECT_EQ(prestaged[0][2], bs_a_);
}

TEST_F(CoordManagerTest, PredictionHitMovesThroughHandedOffToAssociated) {
  ConnectivityManager mgr(sim_, confident_params());
  mgr.on_beacon(bs_a_, veh_, bs_a_);
  sim_.run_until(Time::seconds(1.0));
  mgr.on_beacon(bs_b_, veh_, bs_b_);  // The predicted handoff happens.
  EXPECT_EQ(mgr.phase(veh_), P::HandedOff);
  EXPECT_EQ(mgr.anchor(veh_), bs_b_);
  EXPECT_EQ(mgr.prediction_hits(), 1u);
  EXPECT_EQ(mgr.prediction_misses(), 0u);
  sim_.run_until(Time::seconds(2.0));
  mgr.on_beacon(bs_b_, veh_, bs_b_);  // Steady beacon settles the client.
  EXPECT_EQ(mgr.phase(veh_), P::Associated);
}

TEST_F(CoordManagerTest, PredictionMissRecoversAndLearnsTheSuccession) {
  ConnectivityManager mgr(sim_, confident_params());
  mgr.on_beacon(bs_a_, veh_, bs_a_);
  ASSERT_EQ(mgr.phase(veh_), P::PredictedHandoff);
  sim_.run_until(Time::seconds(1.0));
  mgr.on_beacon(bs_c_, veh_, bs_c_);  // Handoff to C, not the predicted B.
  EXPECT_EQ(mgr.phase(veh_), P::Associated);
  EXPECT_EQ(mgr.anchor(veh_), bs_c_);
  EXPECT_FALSE(mgr.predicted(veh_).valid());
  EXPECT_EQ(mgr.prediction_misses(), 1u);
  // The miss still taught the predictor the A -> C succession.
  EXPECT_EQ(mgr.predictor().support(bs_a_), 6);
}

TEST_F(CoordManagerTest, AnchorLossDropsBackToDiscovered) {
  ConnectivityManager mgr(sim_, confident_params());
  mgr.on_beacon(bs_a_, veh_, bs_a_);
  sim_.run_until(Time::seconds(1.0));
  mgr.on_beacon(bs_a_, veh_, NodeId{});  // Beacon with no designation.
  EXPECT_EQ(mgr.phase(veh_), P::Discovered);
  EXPECT_FALSE(mgr.anchor(veh_).valid());
  EXPECT_FALSE(mgr.predicted(veh_).valid());
}

TEST_F(CoordManagerTest, SilentClientTimesOutBackToIdleViaTheTimer) {
  ConnectivityManager mgr(sim_, confident_params());
  mgr.start();
  mgr.on_beacon(bs_a_, veh_, bs_a_);
  // Default beacon_timeout is 3 s; the 1 s scan past that fires Timeout.
  sim_.run_until(Time::seconds(5.0));
  EXPECT_EQ(mgr.phase(veh_), P::Idle);
  EXPECT_FALSE(mgr.anchor(veh_).valid());
  // And the client can come back.
  mgr.on_beacon(bs_a_, veh_, bs_a_);
  EXPECT_EQ(mgr.phase(veh_), P::PredictedHandoff);
}

TEST_F(CoordManagerTest, SameInstantBeaconRepeatsAreAbsorbedOnce) {
  ConnectivityManager mgr(sim_, confident_params());
  mgr.on_beacon(bs_a_, veh_, bs_a_);
  const std::uint64_t after_first = mgr.transitions();
  mgr.on_beacon(bs_b_, veh_, bs_a_);  // Same beacon decoded by another BS.
  mgr.on_beacon(bs_c_, veh_, bs_a_);
  EXPECT_EQ(mgr.transitions(), after_first);
}

TEST_F(CoordManagerTest, SuppressionOnlyInsideConfidentPredictionWindows) {
  ConnectivityManager mgr(sim_, confident_params());
  // No state at all: never suppress.
  EXPECT_FALSE(mgr.suppress_relay(bs_c_, veh_));
  mgr.on_beacon(bs_a_, veh_, bs_a_);
  ASSERT_EQ(mgr.phase(veh_), P::PredictedHandoff);
  // Anchor and predicted successor always relay; third parties don't.
  EXPECT_FALSE(mgr.suppress_relay(bs_a_, veh_));
  EXPECT_FALSE(mgr.suppress_relay(bs_b_, veh_));
  EXPECT_TRUE(mgr.suppress_relay(bs_c_, veh_));
  EXPECT_EQ(mgr.suppressed_relays(), 1u);
  // Outside the window (prediction resolved) nothing is suppressed.
  sim_.run_until(Time::seconds(1.0));
  mgr.on_beacon(bs_b_, veh_, bs_b_);
  ASSERT_EQ(mgr.phase(veh_), P::HandedOff);
  EXPECT_FALSE(mgr.suppress_relay(bs_c_, veh_));
  EXPECT_EQ(mgr.suppressed_relays(), 1u);
}

TEST_F(CoordManagerTest, SuppressionRespectsTheConfigSwitch) {
  core::CoordParams params = confident_params();
  params.suppress_relays = false;
  ConnectivityManager mgr(sim_, params);
  mgr.on_beacon(bs_a_, veh_, bs_a_);
  ASSERT_EQ(mgr.phase(veh_), P::PredictedHandoff);
  EXPECT_FALSE(mgr.suppress_relay(bs_c_, veh_));
  EXPECT_EQ(mgr.suppressed_relays(), 0u);
}

TEST_F(CoordManagerTest, NoPredictionWithoutHistorySupport) {
  core::CoordParams params;
  params.enabled = true;  // No offline history at all.
  ConnectivityManager mgr(sim_, params);
  mgr.on_beacon(bs_a_, veh_, bs_a_);
  // Associated, but min_history (3) successions have not been seen.
  EXPECT_EQ(mgr.phase(veh_), P::Associated);
  EXPECT_FALSE(mgr.predicted(veh_).valid());
  EXPECT_EQ(mgr.predictions(), 0u);
}

// -------------------------------------------------------- live-stack wiring

TEST(CoordLive, AttachedManagerObservesARealTrip) {
  const scenario::Testbed bed = runtime::make_testbed("VanLAN", 1);
  core::SystemConfig sys;
  sys.vifi.max_retx = 0;
  sys.coord.enabled = true;
  scenario::LiveTrip trip(bed, sys, /*seed=*/42);
  ASSERT_NE(trip.coord(), nullptr);
  trip.run_until(Time::seconds(60.0));
  const ConnectivityManager& mgr = *trip.coord();
  // The shuttle beacons through the deployment: the manager must have
  // seen it and walked its machine through real transitions.
  EXPECT_GT(mgr.transitions(), 0u);
  EXPECT_NE(mgr.phase(bed.vehicle_ids().front()), P::Idle);
}

TEST(CoordLive, DisabledCoordLeavesTheStackUntouched) {
  const scenario::Testbed bed = runtime::make_testbed("VanLAN", 1);
  core::SystemConfig sys;
  sys.vifi.max_retx = 0;
  scenario::LiveTrip trip(bed, sys, /*seed=*/42);
  EXPECT_EQ(trip.coord(), nullptr);
}

}  // namespace
}  // namespace vifi::coord
