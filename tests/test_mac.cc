// Unit tests for the MAC layer: frames, medium physics (loss sampling,
// airtime, collisions, carrier sense), radio queueing, and beaconing.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "channel/loss_model.h"
#include "mac/beaconing.h"
#include "mac/frame.h"
#include "mac/medium.h"
#include "mac/radio.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "util/contracts.h"

namespace vifi::mac {
namespace {

using sim::NodeId;

/// A fully controllable loss model for MAC tests.
class FakeLoss final : public channel::LossModel {
 public:
  void set(NodeId a, NodeId b, double p) {
    probs_[{a, b}] = p;
    probs_[{b, a}] = p;
  }
  bool sample_delivery(NodeId tx, NodeId rx, Time) override {
    // Deterministic: delivery iff probability >= 0.5.
    return prob(tx, rx) >= 0.5;
  }
  double reception_prob(NodeId tx, NodeId rx, Time) const override {
    return prob(tx, rx);
  }

 private:
  double prob(NodeId a, NodeId b) const {
    const auto it = probs_.find({a, b});
    return it == probs_.end() ? 0.0 : it->second;
  }
  std::map<sim::LinkKey, double> probs_;
};

/// Collects received frames.
class Collector final : public FrameSink {
 public:
  void on_frame(const Frame& f) override { frames.push_back(f); }
  std::vector<Frame> frames;
};

Frame data_frame(net::PacketFactory& factory, sim::Simulator& sim, int bytes) {
  Frame f;
  f.type = FrameType::Data;
  f.packet = factory.make(net::Direction::Upstream, NodeId(0), NodeId(1),
                          bytes, sim.now());
  f.data.packet_id = f.packet->id;
  f.data.origin = NodeId(0);
  f.data.hop_dst = NodeId(1);
  return f;
}

TEST(Frame, OnAirSizes) {
  Frame beacon;
  beacon.type = FrameType::Beacon;
  beacon.beacon.auxiliaries = {NodeId(1), NodeId(2)};
  beacon.beacon.prob_reports = {{NodeId(1), NodeId(2), 0.5}};
  EXPECT_EQ(beacon.bytes_on_air(), 16 + 8 + 6);

  Frame ack;
  ack.type = FrameType::Ack;
  EXPECT_EQ(ack.bytes_on_air(), 14);
}

TEST(Frame, DataSizeIncludesHeaderAndPayload) {
  sim::Simulator sim;
  net::PacketFactory factory;
  Frame f = data_frame(factory, sim, 500);
  EXPECT_EQ(f.bytes_on_air(), 24 + 500);
}

TEST(Frame, DataWithoutPacketThrows) {
  Frame f;
  f.type = FrameType::Data;
  EXPECT_THROW(f.bytes_on_air(), vifi::ContractViolation);
}

TEST(Medium, AirtimeAt1Mbps) {
  sim::Simulator sim;
  FakeLoss loss;
  Medium medium(sim, loss, {});
  // (500 + 24 overhead) bytes at 1 Mbps = 4.192 ms.
  EXPECT_EQ(medium.airtime(500), Time::micros(4192));
}

TEST(Medium, DeliversToGoodLinkOnly) {
  sim::Simulator sim;
  FakeLoss loss;
  Medium medium(sim, loss, {});
  Collector a, b, c;
  medium.attach(NodeId(0), &a);
  medium.attach(NodeId(1), &b);
  medium.attach(NodeId(2), &c);
  loss.set(NodeId(0), NodeId(1), 0.9);
  loss.set(NodeId(0), NodeId(2), 0.1);

  net::PacketFactory factory;
  Frame f = data_frame(factory, sim, 100);
  f.tx = NodeId(0);
  medium.transmit(f);
  sim.run();
  EXPECT_EQ(b.frames.size(), 1u);
  EXPECT_TRUE(c.frames.empty());
  EXPECT_TRUE(a.frames.empty());  // no self-reception
  EXPECT_EQ(medium.deliveries(), 1u);
}

TEST(Medium, DeliveryHappensAtEndOfFrame) {
  sim::Simulator sim;
  FakeLoss loss;
  Medium medium(sim, loss, {});
  Collector a, b;
  medium.attach(NodeId(0), &a);
  medium.attach(NodeId(1), &b);
  loss.set(NodeId(0), NodeId(1), 1.0);
  net::PacketFactory factory;
  Frame f = data_frame(factory, sim, 100);
  f.tx = NodeId(0);
  const Time hold = medium.transmit(f);
  EXPECT_EQ(hold, medium.airtime(f.bytes_on_air()));
  sim.run_until(hold - Time::micros(1));
  EXPECT_TRUE(b.frames.empty());
  sim.run_until(hold);
  EXPECT_EQ(b.frames.size(), 1u);
}

// Pins the attach() contract: a transmission samples its receiver set once
// at start-of-frame, so a node attached mid-flight joins *subsequent*
// transmissions only — no decode attempt, no delivery, and an idle channel
// for frames already in the air.
TEST(Medium, AttachDuringFlightJoinsSubsequentTransmissionsOnly) {
  sim::Simulator sim;
  FakeLoss loss;
  Medium medium(sim, loss, {});
  Collector a, b, c;
  medium.attach(NodeId(0), &a);
  medium.attach(NodeId(1), &b);
  loss.set(NodeId(0), NodeId(1), 1.0);
  loss.set(NodeId(0), NodeId(2), 1.0);  // perfect link, but attached late

  net::PacketFactory factory;
  Frame f = data_frame(factory, sim, 100);
  f.tx = NodeId(0);
  const Time hold = medium.transmit(f);
  sim.run_until(Time::micros(100));  // mid-flight
  medium.attach(NodeId(2), &c);
  // The in-flight frame is audible at the old receiver but invisible to
  // the newcomer, including for carrier sense.
  EXPECT_TRUE(medium.busy_for(NodeId(1), sim.now()));
  EXPECT_FALSE(medium.busy_for(NodeId(2), sim.now()));
  EXPECT_EQ(medium.busy_until(NodeId(2), sim.now()), sim.now());
  sim.run();
  EXPECT_EQ(b.frames.size(), 1u);
  EXPECT_TRUE(c.frames.empty());
  ASSERT_GE(sim.now(), hold);

  // The next transmission includes the newcomer.
  Frame g = data_frame(factory, sim, 100);
  g.tx = NodeId(0);
  medium.transmit(g);
  sim.run();
  EXPECT_EQ(b.frames.size(), 2u);
  EXPECT_EQ(c.frames.size(), 1u);

  // Conservation stays exact: the newcomer's ledger row starts at zero and
  // only counts the post-attach transmission (tx1 sampled n1; tx2 sampled
  // n1 and n2).
  const MediumStats s = medium.snapshot();
  EXPECT_EQ(s.decode_attempts, 3u);
  EXPECT_EQ(s.decode_attempts, s.deliveries + s.collisions + s.channel_losses);
  EXPECT_EQ(s.nodes.at(NodeId(2)).decode_attempts, 1u);
  EXPECT_EQ(s.nodes.at(NodeId(2)).frames_received, 1u);
}

TEST(Medium, OverlappingTransmissionsCollideAtCommonReceiver) {
  sim::Simulator sim;
  FakeLoss loss;
  Medium medium(sim, loss, {});
  Collector a, b, r;
  medium.attach(NodeId(0), &a);
  medium.attach(NodeId(1), &b);
  medium.attach(NodeId(2), &r);
  loss.set(NodeId(0), NodeId(2), 1.0);
  loss.set(NodeId(1), NodeId(2), 1.0);
  // The two transmitters cannot hear each other (hidden terminals).
  loss.set(NodeId(0), NodeId(1), 0.0);

  net::PacketFactory factory;
  Frame f0 = data_frame(factory, sim, 200);
  f0.tx = NodeId(0);
  Frame f1 = data_frame(factory, sim, 200);
  f1.tx = NodeId(1);
  medium.transmit(f0);
  medium.transmit(f1);  // same instant: overlap at receiver 2
  sim.run();
  EXPECT_TRUE(r.frames.empty());
  EXPECT_EQ(medium.collisions(), 2u);
}

TEST(Medium, NonOverlappingTransmissionsBothDeliver) {
  sim::Simulator sim;
  FakeLoss loss;
  Medium medium(sim, loss, {});
  Collector a, b, r;
  medium.attach(NodeId(0), &a);
  medium.attach(NodeId(1), &b);
  medium.attach(NodeId(2), &r);
  loss.set(NodeId(0), NodeId(2), 1.0);
  loss.set(NodeId(1), NodeId(2), 1.0);
  loss.set(NodeId(0), NodeId(1), 0.0);

  net::PacketFactory factory;
  Frame f0 = data_frame(factory, sim, 200);
  f0.tx = NodeId(0);
  const Time hold = medium.transmit(f0);
  sim.run_until(hold + Time::micros(10));
  Frame f1 = data_frame(factory, sim, 200);
  f1.tx = NodeId(1);
  medium.transmit(f1);
  sim.run();
  EXPECT_EQ(r.frames.size(), 2u);
}

TEST(Medium, CollisionsCanBeDisabled) {
  sim::Simulator sim;
  FakeLoss loss;
  MediumParams params;
  params.model_collisions = false;
  Medium medium(sim, loss, params);
  Collector a, b, r;
  medium.attach(NodeId(0), &a);
  medium.attach(NodeId(1), &b);
  medium.attach(NodeId(2), &r);
  loss.set(NodeId(0), NodeId(2), 1.0);
  loss.set(NodeId(1), NodeId(2), 1.0);
  net::PacketFactory factory;
  Frame f0 = data_frame(factory, sim, 200);
  f0.tx = NodeId(0);
  Frame f1 = data_frame(factory, sim, 200);
  f1.tx = NodeId(1);
  medium.transmit(f0);
  medium.transmit(f1);
  sim.run();
  EXPECT_EQ(r.frames.size(), 2u);
}

TEST(Medium, BusyForAudibleListeners) {
  sim::Simulator sim;
  FakeLoss loss;
  Medium medium(sim, loss, {});
  Collector a, b, c;
  medium.attach(NodeId(0), &a);
  medium.attach(NodeId(1), &b);
  medium.attach(NodeId(2), &c);
  loss.set(NodeId(0), NodeId(1), 0.9);
  loss.set(NodeId(0), NodeId(2), 0.0);

  net::PacketFactory factory;
  Frame f = data_frame(factory, sim, 500);
  f.tx = NodeId(0);
  medium.transmit(f);
  EXPECT_TRUE(medium.busy_for(NodeId(1), sim.now()));
  EXPECT_FALSE(medium.busy_for(NodeId(2), sim.now()));
  // The transmitter itself is busy.
  EXPECT_TRUE(medium.busy_for(NodeId(0), sim.now()));
  sim.run();
  EXPECT_FALSE(medium.busy_for(NodeId(1), sim.now()));
}

TEST(Medium, LongFinishedTransmissionNeverReportsBusy) {
  sim::Simulator sim;
  FakeLoss loss;
  Medium medium(sim, loss, {});
  Collector a, b;
  medium.attach(NodeId(0), &a);
  medium.attach(NodeId(1), &b);
  loss.set(NodeId(0), NodeId(1), 1.0);
  net::PacketFactory factory;
  Frame f = data_frame(factory, sim, 500);
  f.tx = NodeId(0);
  medium.transmit(f);
  sim.run();
  ASSERT_GE(medium.active_records(), 1u);
  // No transmit() happens again, so nothing else ever prunes: the busy
  // query itself must not depend on stale records. Advance the clock well
  // past the lazy-prune keep window and probe.
  sim.run_until(sim.now() + Time::seconds(30.0));
  const Time later = sim.now();
  EXPECT_FALSE(medium.busy_for(NodeId(1), later));
  EXPECT_EQ(medium.busy_until(NodeId(1), later), later);
  EXPECT_FALSE(medium.busy_for(NodeId(0), later));
  // And the query itself evicted the long-finished record.
  EXPECT_EQ(medium.active_records(), 0u);
}

TEST(Medium, FutureBusyQueryDoesNotEvictInFlightRecords) {
  sim::Simulator sim;
  FakeLoss loss;
  Medium medium(sim, loss, {});
  Collector a, b;
  medium.attach(NodeId(0), &a);
  medium.attach(NodeId(1), &b);
  loss.set(NodeId(0), NodeId(1), 1.0);
  net::PacketFactory factory;
  Frame f = data_frame(factory, sim, 500);
  f.tx = NodeId(0);
  medium.transmit(f);
  // Asking about an instant far past the frame's end while it is still in
  // flight must not prune the record out from under its finish() event.
  EXPECT_FALSE(medium.busy_for(NodeId(1), sim.now() + Time::seconds(30.0)));
  EXPECT_EQ(medium.active_records(), 1u);
  sim.run();  // finish() still finds its record and delivers
  EXPECT_EQ(b.frames.size(), 1u);
}

TEST(Medium, LedgerTracksPerNodeAirtimeAndOutcomes) {
  sim::Simulator sim;
  FakeLoss loss;
  Medium medium(sim, loss, {});
  Collector a, b, c;
  medium.attach(NodeId(0), &a);
  medium.attach(NodeId(1), &b);
  medium.attach(NodeId(2), &c);
  loss.set(NodeId(0), NodeId(1), 0.9);  // decodes
  loss.set(NodeId(0), NodeId(2), 0.1);  // channel loss

  net::PacketFactory factory;
  Frame f = data_frame(factory, sim, 500);
  f.tx = NodeId(0);
  const Time held = medium.transmit(f);
  sim.run();

  const MediumStats s = medium.snapshot();
  EXPECT_EQ(s.busy_airtime, held);
  EXPECT_EQ(s.node(NodeId(0)).frames_tx, 1u);
  EXPECT_EQ(s.node(NodeId(0)).tx_airtime, held);
  EXPECT_EQ(s.node(NodeId(0)).frames_delivered, 1u);
  EXPECT_EQ(s.node(NodeId(0)).decode_attempts, 0u);  // nobody else sent
  EXPECT_EQ(s.node(NodeId(1)).frames_received, 1u);
  EXPECT_EQ(s.node(NodeId(1)).rx_airtime, held);
  EXPECT_EQ(s.node(NodeId(1)).decode_attempts, 1u);
  EXPECT_EQ(s.node(NodeId(2)).channel_losses, 1u);
  EXPECT_EQ(s.node(NodeId(2)).frames_received, 0u);
  EXPECT_EQ(s.decode_attempts, 2u);
  EXPECT_EQ(s.channel_losses, 1u);
  EXPECT_EQ(s.deliveries, 1u);
  // Never-attached nodes read as a zero row.
  EXPECT_EQ(s.node(NodeId(9)).frames_tx, 0u);
}

TEST(Medium, LedgerChargesCollidedAirtimeToTheReceiver) {
  sim::Simulator sim;
  FakeLoss loss;
  Medium medium(sim, loss, {});
  Collector a, b, r;
  medium.attach(NodeId(0), &a);
  medium.attach(NodeId(1), &b);
  medium.attach(NodeId(2), &r);
  loss.set(NodeId(0), NodeId(2), 1.0);
  loss.set(NodeId(1), NodeId(2), 1.0);
  loss.set(NodeId(0), NodeId(1), 0.0);  // hidden terminals

  net::PacketFactory factory;
  Frame f0 = data_frame(factory, sim, 200);
  f0.tx = NodeId(0);
  Frame f1 = data_frame(factory, sim, 200);
  f1.tx = NodeId(1);
  const Time held = medium.transmit(f0);
  medium.transmit(f1);
  sim.run();

  const MediumStats s = medium.snapshot();
  EXPECT_EQ(s.node(NodeId(2)).collisions_seen, 2u);
  EXPECT_EQ(s.node(NodeId(2)).collided_airtime, held * 2.0);
  EXPECT_EQ(s.node(NodeId(2)).frames_received, 0u);
  EXPECT_EQ(s.node(NodeId(0)).frames_collided, 1u);
  EXPECT_EQ(s.node(NodeId(1)).frames_collided, 1u);
  EXPECT_EQ(s.collisions, 2u);
}

TEST(Medium, RolesSplitInfrastructureFromClientAirtime) {
  sim::Simulator sim;
  FakeLoss loss;
  Medium medium(sim, loss, {});
  Collector bs, veh;
  medium.attach(NodeId(0), &bs);
  medium.attach(NodeId(1), &veh);
  medium.set_role(NodeId(0), NodeRole::Infrastructure);
  medium.set_role(NodeId(1), NodeRole::Vehicle);
  loss.set(NodeId(0), NodeId(1), 1.0);

  net::PacketFactory factory;
  Frame down = data_frame(factory, sim, 400);
  down.tx = NodeId(0);
  const Time down_held = medium.transmit(down);
  sim.run();
  Frame up = data_frame(factory, sim, 100);
  up.tx = NodeId(1);
  const Time up_held = medium.transmit(up);
  sim.run();

  const MediumStats s = medium.snapshot();
  EXPECT_EQ(s.tx_airtime(NodeRole::Infrastructure), down_held);
  EXPECT_EQ(s.tx_airtime(NodeRole::Vehicle), up_held);
  EXPECT_EQ(s.tx_airtime(NodeRole::Unknown), Time::zero());
  EXPECT_EQ(s.nodes_with_role(NodeRole::Vehicle),
            std::vector<NodeId>{NodeId(1)});
}

TEST(Medium, JainIndexOverSubsets) {
  // Hand-built allocations through the public helper.
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({0.0, 0.0}), 1.0);  // equal starvation
  EXPECT_DOUBLE_EQ(jain_index({3.0, 3.0, 3.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({1.0, 0.0, 0.0, 0.0}), 0.25);  // one-hot: 1/n

  sim::Simulator sim;
  FakeLoss loss;
  Medium medium(sim, loss, {});
  Collector a, b, c;
  medium.attach(NodeId(0), &a);
  medium.attach(NodeId(1), &b);
  medium.attach(NodeId(2), &c);
  loss.set(NodeId(0), NodeId(1), 1.0);
  net::PacketFactory factory;
  for (int i = 0; i < 2; ++i) {
    Frame f = data_frame(factory, sim, 300);
    f.tx = NodeId(0);
    medium.transmit(f);
    sim.run();
  }
  const MediumStats s = medium.snapshot();
  // Only node 0 transmitted: Jain over {0,1,2} is 1/3; over {0} it is 1.
  EXPECT_DOUBLE_EQ(
      s.jain_tx_airtime({NodeId(0), NodeId(1), NodeId(2)}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.jain_tx_airtime({NodeId(0)}), 1.0);
  // Only node 1 received: same shape on the rx side.
  EXPECT_DOUBLE_EQ(
      s.jain_frames_received({NodeId(1), NodeId(2)}), 0.5);
}

TEST(Radio, DeferralWaitIsChargedToTheLedger) {
  sim::Simulator sim;
  FakeLoss loss;
  Medium medium(sim, loss, {});
  Collector sink;
  medium.attach(NodeId(2), &sink);
  Radio r0(sim, medium, NodeId(0), Rng(21));
  Radio r1(sim, medium, NodeId(1), Rng(22));
  loss.set(NodeId(0), NodeId(1), 1.0);
  loss.set(NodeId(0), NodeId(2), 1.0);
  loss.set(NodeId(1), NodeId(2), 1.0);

  net::PacketFactory factory;
  Frame f0 = data_frame(factory, sim, 400);
  Frame f1 = data_frame(factory, sim, 400);
  r0.send(std::move(f0));
  r1.send(std::move(f1));  // channel busy: must defer, and the wait is
                           // charged to node 1's ledger row
  sim.run();
  const MediumStats s = medium.snapshot();
  EXPECT_GT(s.node(NodeId(1)).deferral_wait, Time::zero());
  EXPECT_EQ(s.node(NodeId(0)).deferral_wait, Time::zero());
}

TEST(Medium, TransmissionCounters) {
  sim::Simulator sim;
  FakeLoss loss;
  Medium medium(sim, loss, {});
  Collector a, b;
  medium.attach(NodeId(0), &a);
  medium.attach(NodeId(1), &b);
  net::PacketFactory factory;
  for (int i = 0; i < 3; ++i) {
    Frame f = data_frame(factory, sim, 50);
    f.tx = NodeId(0);
    medium.transmit(f);
    sim.run();
  }
  EXPECT_EQ(medium.transmissions(), 3u);
  EXPECT_EQ(medium.transmissions_from(NodeId(0)), 3u);
  EXPECT_EQ(medium.transmissions_from(NodeId(1)), 0u);
}

TEST(Radio, SendsQueuedFramesInOrder) {
  sim::Simulator sim;
  FakeLoss loss;
  Medium medium(sim, loss, {});
  Collector rx_sink;
  medium.attach(NodeId(1), &rx_sink);
  Radio radio(sim, medium, NodeId(0), Rng(1));
  loss.set(NodeId(0), NodeId(1), 1.0);

  net::PacketFactory factory;
  for (int i = 0; i < 3; ++i) {
    Frame f = data_frame(factory, sim, 100);
    radio.send(std::move(f));
  }
  sim.run();
  ASSERT_EQ(rx_sink.frames.size(), 3u);
  EXPECT_EQ(rx_sink.frames[0].data.packet_id, 1u);
  EXPECT_EQ(rx_sink.frames[2].data.packet_id, 3u);
  EXPECT_EQ(radio.frames_sent(), 3u);
}

TEST(Radio, DefersWhileChannelBusy) {
  sim::Simulator sim;
  FakeLoss loss;
  Medium medium(sim, loss, {});
  Collector sink;
  medium.attach(NodeId(2), &sink);
  Radio r0(sim, medium, NodeId(0), Rng(2));
  Radio r1(sim, medium, NodeId(1), Rng(3));
  // Everyone hears everyone: carrier sense should serialise them.
  loss.set(NodeId(0), NodeId(1), 1.0);
  loss.set(NodeId(0), NodeId(2), 1.0);
  loss.set(NodeId(1), NodeId(2), 1.0);

  net::PacketFactory factory;
  Frame f0 = data_frame(factory, sim, 400);
  Frame f1 = data_frame(factory, sim, 400);
  r0.send(std::move(f0));
  r1.send(std::move(f1));  // should defer, not collide
  sim.run();
  EXPECT_EQ(sink.frames.size(), 2u);
  EXPECT_EQ(medium.collisions(), 0u);
}

TEST(Radio, IdleCallbackFiresWhenQueueDrains) {
  sim::Simulator sim;
  FakeLoss loss;
  Medium medium(sim, loss, {});
  Collector sink;
  medium.attach(NodeId(1), &sink);
  Radio radio(sim, medium, NodeId(0), Rng(4));
  int idles = 0;
  radio.set_idle_callback([&] { ++idles; });
  net::PacketFactory factory;
  radio.send(data_frame(factory, sim, 100));
  EXPECT_FALSE(radio.idle());
  sim.run();
  EXPECT_TRUE(radio.idle());
  EXPECT_EQ(idles, 1);
}

TEST(Radio, ReceiverCallbackGetsFrames) {
  sim::Simulator sim;
  FakeLoss loss;
  Medium medium(sim, loss, {});
  Radio tx(sim, medium, NodeId(0), Rng(5));
  Radio rx(sim, medium, NodeId(1), Rng(6));
  loss.set(NodeId(0), NodeId(1), 1.0);
  int received = 0;
  rx.set_receiver([&](const Frame&) { ++received; });
  net::PacketFactory factory;
  tx.send(data_frame(factory, sim, 100));
  sim.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(rx.frames_received(), 1u);
}

TEST(Beaconing, EmitsAtConfiguredRate) {
  sim::Simulator sim;
  FakeLoss loss;
  Medium medium(sim, loss, {});
  Radio tx(sim, medium, NodeId(0), Rng(7));
  Radio rx(sim, medium, NodeId(1), Rng(8));
  loss.set(NodeId(0), NodeId(1), 1.0);
  int beacons = 0;
  rx.set_receiver([&](const Frame& f) {
    if (f.type == FrameType::Beacon) ++beacons;
  });
  Beaconing beaconing(sim, tx, Rng(9), Time::millis(100.0),
                      Time::millis(5.0));
  beaconing.start();
  sim.run_until(Time::seconds(10.0));
  beaconing.stop();
  // ~10/s with jitter.
  EXPECT_GE(beacons, 90);
  EXPECT_LE(beacons, 110);
}

TEST(Beaconing, PayloadProviderIsCalled) {
  sim::Simulator sim;
  FakeLoss loss;
  Medium medium(sim, loss, {});
  Radio tx(sim, medium, NodeId(0), Rng(10));
  Radio rx(sim, medium, NodeId(1), Rng(11));
  loss.set(NodeId(0), NodeId(1), 1.0);
  NodeId seen_anchor{};
  rx.set_receiver([&](const Frame& f) { seen_anchor = f.beacon.anchor; });
  Beaconing beaconing(sim, tx, Rng(12));
  beaconing.set_payload_provider([] {
    BeaconPayload p;
    p.anchor = NodeId(7);
    return p;
  });
  beaconing.start();
  sim.run_until(Time::seconds(0.5));
  EXPECT_EQ(seen_anchor, NodeId(7));
}

TEST(Beaconing, StopCeasesEmission) {
  sim::Simulator sim;
  FakeLoss loss;
  Medium medium(sim, loss, {});
  Radio tx(sim, medium, NodeId(0), Rng(13));
  Radio rx(sim, medium, NodeId(1), Rng(14));
  loss.set(NodeId(0), NodeId(1), 1.0);
  Beaconing beaconing(sim, tx, Rng(15));
  beaconing.start();
  sim.run_until(Time::seconds(1.0));
  beaconing.stop();
  const auto count = beaconing.beacons_sent();
  sim.run_until(Time::seconds(3.0));
  EXPECT_EQ(beaconing.beacons_sent(), count);
}

}  // namespace
}  // namespace vifi::mac
