// Deeper application-layer coverage: VoIP scoring mechanics, transfer
// driver session accounting, CBR slot attribution, and transport routing.

#include <gtest/gtest.h>

#include <map>

#include "apps/cbr.h"
#include "apps/transfer_driver.h"
#include "apps/voip.h"
#include "sim/simulator.h"
#include "util/contracts.h"

namespace vifi::apps {
namespace {

/// Loopback with per-direction delay control.
class DirectionalLoopback final : public Transport {
 public:
  explicit DirectionalLoopback(sim::Simulator& sim) : sim_(sim) {}

  void set_delay(Direction dir, Time d) { delay_[dir == Direction::Upstream] = d; }
  void set_drop(Direction dir, bool drop) {
    drop_[dir == Direction::Upstream] = drop;
  }

  void send(Direction dir, int bytes, int flow, std::uint64_t app_seq,
            net::AppPayload data) override {
    ++sent_[dir == Direction::Upstream];
    if (drop_[dir == Direction::Upstream]) return;
    auto p = factory_.make(dir, sim::NodeId(0), sim::NodeId(1), bytes,
                           sim_.now(), flow, app_seq, std::move(data));
    sim_.schedule(delay_[dir == Direction::Upstream], [this, p] {
      const auto it = handlers_.find(p->flow);
      if (it != handlers_.end()) it->second(p);
    });
  }
  void subscribe(int flow, Handler handler) override {
    handlers_[flow] = std::move(handler);
  }
  void unsubscribe(int flow) override { handlers_.erase(flow); }
  Time now() const override { return sim_.now(); }
  int sent(Direction dir) const { return sent_[dir == Direction::Upstream]; }

 private:
  sim::Simulator& sim_;
  Time delay_[2] = {Time::millis(5), Time::millis(5)};
  bool drop_[2] = {false, false};
  int sent_[2] = {0, 0};
  net::PacketFactory factory_;
  std::map<int, Handler> handlers_;
};

TEST(VoipDetail, SendsBothDirectionsEveryInterval) {
  sim::Simulator sim;
  DirectionalLoopback link(sim);
  VoipCall call(sim, link);
  call.start(Time::seconds(2.0));
  sim.run_until(Time::seconds(2.5));
  // ~100 intervals, one packet each way.
  EXPECT_NEAR(link.sent(Direction::Upstream), 100, 2);
  EXPECT_NEAR(link.sent(Direction::Downstream), 100, 2);
}

TEST(VoipDetail, OneDeadDirectionHalvesOnTimeRate) {
  sim::Simulator sim;
  DirectionalLoopback link(sim);
  link.set_drop(Direction::Upstream, true);
  VoipCall call(sim, link);
  call.start(Time::seconds(12.0));
  sim.run_until(Time::seconds(13.0));
  const VoipResult r = call.result();
  EXPECT_NEAR(r.effective_loss(), 0.5, 0.02);
  // Half the packets gone: every window sits right at the knee; MoS must
  // be far below the clean-call value but above total loss.
  EXPECT_LT(r.mean_mos, 2.6);
  EXPECT_GT(r.mean_mos, 1.5);
}

TEST(VoipDetail, DeadlineBoundaryIsExact) {
  sim::Simulator sim;
  DirectionalLoopback link(sim);
  // 52 ms is the budget: exactly at the deadline counts as on time.
  link.set_delay(Direction::Upstream, Time::millis(52));
  link.set_delay(Direction::Downstream, Time::millis(53));
  VoipCall call(sim, link);
  call.start(Time::seconds(6.0));
  sim.run_until(Time::seconds(7.0));
  const VoipResult r = call.result();
  EXPECT_NEAR(r.effective_loss(), 0.5, 0.02);  // only downstream late
}

TEST(VoipDetail, WindowsWithoutTrafficAreInterruptions) {
  sim::Simulator sim;
  DirectionalLoopback link(sim);
  VoipCall call(sim, link);
  // Call scheduled for 12 s but packets stop at 6 s (tick stops itself at
  // `until`; we emulate early hangup by dropping).
  call.start(Time::seconds(6.0));
  sim.run_until(Time::seconds(13.0));
  const VoipResult r = call.result();
  // Sessions only cover the first 6 seconds.
  double total = 0.0;
  for (double s : r.session_lengths_s) total += s;
  EXPECT_LE(total, 6.0 + 1e-9);
}

TEST(MosSessions, EmptyAndAllBadInputs) {
  EXPECT_TRUE(mos_session_lengths({}, 2.0, 3.0).empty());
  EXPECT_TRUE(mos_session_lengths({1.0, 1.5, 1.9}, 2.0, 3.0).empty());
  const auto all_good = mos_session_lengths({3.0, 3.0}, 2.0, 3.0);
  EXPECT_EQ(all_good, (std::vector<double>{6.0}));
}

TEST(TransferDriverDetail, SessionsSplitOnlyOnAborts) {
  sim::Simulator sim;
  DirectionalLoopback link(sim);
  TransferDriver driver(sim, link, Direction::Downstream);
  driver.start(Time::seconds(30.0));
  // Interrupt the service twice.
  sim.schedule(Time::seconds(8.0),
               [&] { link.set_drop(Direction::Downstream, true); });
  sim.schedule(Time::seconds(19.5),
               [&] { link.set_drop(Direction::Downstream, false); });
  sim.run_until(Time::seconds(31.0));
  const auto r = driver.result();
  EXPECT_GE(r.aborted, 1);
  // Sessions: before the outage and after it.
  EXPECT_GE(r.transfers_per_session.size(), 2u);
  int total = 0;
  for (int n : r.transfers_per_session) total += n;
  EXPECT_EQ(total, r.completed);
}

TEST(TransferDriverDetail, ZeroCompletionsMeansNoSessions) {
  sim::Simulator sim;
  DirectionalLoopback link(sim);
  link.set_drop(Direction::Downstream, true);
  link.set_drop(Direction::Upstream, true);
  TransferDriver driver(sim, link, Direction::Downstream);
  driver.start(Time::seconds(25.0));
  sim.run_until(Time::seconds(26.0));
  const auto r = driver.result();
  EXPECT_EQ(r.completed, 0);
  EXPECT_TRUE(r.transfers_per_session.empty());
  EXPECT_GE(r.aborted, 1);
  EXPECT_DOUBLE_EQ(r.transfers_per_second(), 0.0);
}

TEST(CbrDetail, SlotAccountingIsPerDirection) {
  sim::Simulator sim;
  DirectionalLoopback link(sim);
  link.set_drop(Direction::Upstream, true);  // only downstream arrives
  CbrWorkload cbr(sim, link);
  cbr.start(Time::seconds(5.0));
  sim.run_until(Time::seconds(6.0));
  const auto stream = cbr.slot_stream();
  for (int d : stream.delivered) EXPECT_LE(d, 1);
  EXPECT_NEAR(static_cast<double>(cbr.delivered()),
              static_cast<double>(cbr.sent()) / 2.0, 3.0);
}

TEST(CbrDetail, LateDeliveriesDoNotCount) {
  sim::Simulator sim;
  DirectionalLoopback link(sim);
  link.set_delay(Direction::Upstream, Time::millis(200));  // > deadline
  link.set_delay(Direction::Downstream, Time::millis(10));
  CbrWorkload cbr(sim, link);
  cbr.start(Time::seconds(5.0));
  sim.run_until(Time::seconds(6.0));
  const auto stream = cbr.slot_stream();
  for (int d : stream.delivered) EXPECT_LE(d, 1);  // upstream always late
}

TEST(CbrDetail, StreamDurationMatchesRun) {
  sim::Simulator sim;
  DirectionalLoopback link(sim);
  CbrWorkload cbr(sim, link);
  cbr.start(Time::seconds(10.0));
  sim.run_until(Time::seconds(11.0));
  const auto stream = cbr.slot_stream();
  EXPECT_NEAR(stream.duration().to_seconds(), 10.0, 0.2);
}

}  // namespace
}  // namespace vifi::apps
