// Unit tests for the util library: time, rng, stats, cdf, ewma, tables.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/cdf.h"
#include "util/contracts.h"
#include "util/ewma.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/time.h"

namespace vifi {
namespace {

// ----------------------------------------------------------------- Time --

TEST(Time, ConstructionAndConversion) {
  EXPECT_EQ(Time::seconds(1.5).to_micros(), 1'500'000);
  EXPECT_EQ(Time::millis(2.0).to_micros(), 2'000);
  EXPECT_EQ(Time::micros(7).to_micros(), 7);
  EXPECT_DOUBLE_EQ(Time::seconds(2.0).to_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(Time::millis(1.0).to_millis(), 1.0);
  EXPECT_EQ(Time::minutes(1.0), Time::seconds(60.0));
  EXPECT_EQ(Time::hours(1.0), Time::seconds(3600.0));
}

TEST(Time, Arithmetic) {
  const Time a = Time::seconds(2.0);
  const Time b = Time::seconds(0.5);
  EXPECT_EQ(a + b, Time::seconds(2.5));
  EXPECT_EQ(a - b, Time::seconds(1.5));
  EXPECT_EQ(a * 2.0, Time::seconds(4.0));
  EXPECT_EQ(2.0 * a, Time::seconds(4.0));
  EXPECT_EQ(a / 2.0, Time::seconds(1.0));
  EXPECT_DOUBLE_EQ(a / b, 4.0);
}

TEST(Time, CompoundAssignment) {
  Time t = Time::seconds(1.0);
  t += Time::seconds(2.0);
  EXPECT_EQ(t, Time::seconds(3.0));
  t -= Time::seconds(0.5);
  EXPECT_EQ(t, Time::seconds(2.5));
}

TEST(Time, Comparison) {
  EXPECT_LT(Time::millis(1.0), Time::millis(2.0));
  EXPECT_GE(Time::zero(), Time::zero());
  EXPECT_TRUE(Time::zero().is_zero());
  EXPECT_TRUE((Time::zero() - Time::millis(1.0)).is_negative());
}

TEST(Time, RoundsToNearestMicrosecond) {
  EXPECT_EQ(Time::seconds(1e-7).to_micros(), 0);
  EXPECT_EQ(Time::seconds(6e-7).to_micros(), 1);
  EXPECT_EQ(Time::seconds(-6e-7).to_micros(), -1);
}

TEST(Time, Streaming) {
  std::ostringstream os;
  os << Time::seconds(1.25);
  EXPECT_EQ(os.str(), "1.250000s");
}

// ------------------------------------------------------------------ Rng --

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng root(7);
  Rng c1 = root.fork("alpha");
  Rng c2 = Rng(7).fork("alpha");
  for (int i = 0; i < 16; ++i) EXPECT_EQ(c1.next_u64(), c2.next_u64());
  Rng d1 = Rng(7).fork("alpha");
  Rng d2 = Rng(7).fork("beta");
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (d1.next_u64() == d2.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, Uniform01Bounds) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01Mean) {
  Rng r(5);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(r.uniform01());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIntRangeAndCoverage) {
  Rng r(11);
  std::vector<int> hits(6, 0);
  for (int i = 0; i < 6000; ++i) {
    const auto v = r.uniform_int(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    ++hits[static_cast<std::size_t>(v)];
  }
  for (int h : hits) EXPECT_GT(h, 800);
}

TEST(Rng, UniformIntSingleton) {
  Rng r(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(4, 4), 4);
}

TEST(Rng, BernoulliExtremes) {
  Rng r(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-0.5));
    EXPECT_TRUE(r.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliRate) {
  Rng r(13);
  int n = 0;
  for (int i = 0; i < 20000; ++i)
    if (r.bernoulli(0.3)) ++n;
  EXPECT_NEAR(n / 20000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng r(17);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(r.exponential(2.0));
  EXPECT_NEAR(s.mean(), 2.0, 0.05);
}

TEST(Rng, NormalMoments) {
  Rng r(19);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(r.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, SampleWithoutReplacement) {
  Rng r(23);
  const auto s = r.sample(10, 4);
  EXPECT_EQ(s.size(), 4u);
  for (int v : s) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 10);
  }
  auto sorted = s;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(Rng, SampleFullAndEmpty) {
  Rng r(29);
  EXPECT_EQ(r.sample(5, 5).size(), 5u);
  EXPECT_TRUE(r.sample(5, 0).empty());
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  auto w = v;
  r.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, ContractViolations) {
  Rng r(1);
  EXPECT_THROW(r.uniform(2.0, 1.0), ContractViolation);
  EXPECT_THROW(r.uniform_int(3, 2), ContractViolation);
  EXPECT_THROW(r.exponential(0.0), ContractViolation);
  EXPECT_THROW(r.normal(0.0, -1.0), ContractViolation);
  EXPECT_THROW(r.sample(3, 4), ContractViolation);
}

// ---------------------------------------------------------------- Stats --

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, EmptyThrows) {
  RunningStats s;
  EXPECT_THROW(s.mean(), ContractViolation);
  EXPECT_THROW(s.min(), ContractViolation);
}

TEST(Percentile, Interpolation) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(median(v), 2.5);
}

TEST(Percentile, UnsortedInput) {
  EXPECT_DOUBLE_EQ(median({5.0, 1.0, 3.0}), 3.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({42.0}, 99.0), 42.0);
}

TEST(Percentile, Contracts) {
  EXPECT_THROW(percentile({}, 50.0), ContractViolation);
  EXPECT_THROW(percentile({1.0}, 101.0), ContractViolation);
}

TEST(MeanCi95, CoversKnownValue) {
  std::vector<double> v;
  Rng r(37);
  for (int i = 0; i < 1000; ++i) v.push_back(r.normal(10.0, 1.0));
  const Interval ci = mean_ci95(v);
  EXPECT_LT(ci.lo, 10.0);
  EXPECT_GT(ci.hi, 10.0);
  EXPECT_LT(ci.half_width(), 0.15);
}

TEST(BootstrapMedianCi, ContainsMedian) {
  std::vector<double> v;
  Rng r(41);
  for (int i = 0; i < 500; ++i) v.push_back(r.exponential(3.0));
  Rng boot(43);
  const Interval ci = bootstrap_median_ci95(v, boot, 500);
  const double m = median(v);
  EXPECT_LE(ci.lo, m);
  EXPECT_GE(ci.hi, m);
}

// ------------------------------------------------------------------ Cdf --

TEST(Cdf, BasicFractions) {
  Cdf c;
  c.add(1.0);
  c.add(2.0);
  c.add(3.0);
  c.add(4.0);
  EXPECT_DOUBLE_EQ(c.fraction_at_or_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(c.fraction_at_or_below(2.0), 0.5);
  EXPECT_DOUBLE_EQ(c.fraction_at_or_below(10.0), 1.0);
}

TEST(Cdf, WeightedSamples) {
  Cdf c;
  c.add(1.0, 1.0);
  c.add(10.0, 3.0);
  EXPECT_DOUBLE_EQ(c.fraction_at_or_below(1.0), 0.25);
  EXPECT_DOUBLE_EQ(c.quantile(0.5), 10.0);
}

TEST(Cdf, QuantileEdges) {
  Cdf c;
  for (int i = 1; i <= 10; ++i) c.add(i);
  EXPECT_DOUBLE_EQ(c.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(c.quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(c.quantile(0.5), 5.0);
}

TEST(Cdf, ZeroWeightIgnored) {
  Cdf c;
  c.add(5.0, 0.0);
  EXPECT_TRUE(c.empty());
}

TEST(Cdf, EvaluateGrid) {
  Cdf c;
  c.add(1.0);
  c.add(2.0);
  const auto ys = c.evaluate({0.0, 1.0, 2.0});
  ASSERT_EQ(ys.size(), 3u);
  EXPECT_DOUBLE_EQ(ys[0], 0.0);
  EXPECT_DOUBLE_EQ(ys[1], 0.5);
  EXPECT_DOUBLE_EQ(ys[2], 1.0);
}

TEST(Cdf, MonotoneNondecreasing) {
  Cdf c;
  Rng r(47);
  for (int i = 0; i < 200; ++i) c.add(r.uniform(0, 100), r.uniform(0.1, 2.0));
  double prev = -1.0;
  for (double x = 0.0; x <= 100.0; x += 5.0) {
    const double y = c.fraction_at_or_below(x);
    EXPECT_GE(y, prev);
    prev = y;
  }
}

TEST(Cdf, SortedValuesDeduplicated) {
  Cdf c;
  c.add(2.0);
  c.add(1.0);
  c.add(2.0);
  const auto v = c.sorted_values();
  EXPECT_EQ(v, (std::vector<double>{1.0, 2.0}));
}

// ----------------------------------------------------------------- Ewma --

TEST(Ewma, FirstSampleSetsValue) {
  Ewma e(0.5);
  EXPECT_FALSE(e.initialized());
  e.update(10.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, HalfAlphaAveraging) {
  Ewma e(0.5);
  e.update(10.0);
  e.update(0.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
  e.update(0.0);
  EXPECT_DOUBLE_EQ(e.value(), 2.5);
}

TEST(Ewma, ValueOrFallback) {
  Ewma e;
  EXPECT_DOUBLE_EQ(e.value_or(-1.0), -1.0);
  e.update(2.0);
  EXPECT_DOUBLE_EQ(e.value_or(-1.0), 2.0);
}

TEST(Ewma, ResetClears) {
  Ewma e;
  e.update(1.0);
  e.reset();
  EXPECT_FALSE(e.initialized());
}

TEST(Ewma, InvalidAlphaThrows) {
  EXPECT_THROW(Ewma(0.0), ContractViolation);
  EXPECT_THROW(Ewma(1.5), ContractViolation);
}

TEST(Ewma, UninitializedValueThrows) {
  Ewma e;
  EXPECT_THROW(e.value(), ContractViolation);
}

// ---------------------------------------------------------------- Table --

TEST(TextTable, AlignsColumns) {
  TextTable t("demo");
  t.set_header({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("| x      | 1  "), std::string::npos);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(1.2345, 2), "1.23");
  EXPECT_EQ(TextTable::pct(0.256, 0), "26%");
  EXPECT_EQ(TextTable::num_ci(2.0, 0.5, 1), "2.0 ±0.5");
}

TEST(SeriesChart, PrintsAlignedSeries) {
  SeriesChart chart("fig", "x");
  chart.set_x({1.0, 2.0});
  chart.add_series("a", {0.1, 0.2});
  chart.add_series("b", {0.3, 0.4});
  const std::string s = chart.to_string();
  EXPECT_NE(s.find("fig"), std::string::npos);
  EXPECT_NE(s.find('a'), std::string::npos);
  EXPECT_NE(s.find("0.40"), std::string::npos);
}

TEST(SeriesChart, MismatchedLengthThrows) {
  SeriesChart chart("fig", "x");
  chart.set_x({1.0, 2.0});
  chart.add_series("a", {0.1});
  std::ostringstream os;
  EXPECT_THROW(chart.print(os), ContractViolation);
}

// ------------------------------------------------------------ Contracts --

TEST(Contracts, MacroMessagesNameTheExpression) {
  try {
    VIFI_EXPECTS(1 == 2);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace vifi
