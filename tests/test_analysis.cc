// Unit tests for session extraction, burstiness statistics, and diversity
// CDFs.

#include <gtest/gtest.h>

#include "analysis/burst.h"
#include "analysis/diversity.h"
#include "analysis/sessions.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace vifi::analysis {
namespace {

SlotStream stream_from(std::vector<int> delivered) {
  SlotStream s;
  s.delivered = std::move(delivered);
  return s;
}

TEST(IntervalRatios, OneSecondBuckets) {
  // 10 slots per 1 s interval, 2 packets per slot.
  std::vector<int> d(20, 2);
  for (std::size_t i = 10; i < 20; ++i) d[i] = 1;
  const auto ratios = interval_ratios(stream_from(d), Time::seconds(1.0));
  ASSERT_EQ(ratios.size(), 2u);
  EXPECT_DOUBLE_EQ(ratios[0], 1.0);
  EXPECT_DOUBLE_EQ(ratios[1], 0.5);
}

TEST(IntervalRatios, PartialTrailingIntervalDropped) {
  const auto ratios =
      interval_ratios(stream_from(std::vector<int>(15, 2)),
                      Time::seconds(1.0));
  EXPECT_EQ(ratios.size(), 1u);
}

TEST(IntervalRatios, WiderInterval) {
  std::vector<int> d(40, 1);  // 50% everywhere
  const auto ratios = interval_ratios(stream_from(d), Time::seconds(2.0));
  ASSERT_EQ(ratios.size(), 2u);
  EXPECT_DOUBLE_EQ(ratios[0], 0.5);
}

TEST(IntervalRatios, IntervalSmallerThanSlotThrows) {
  EXPECT_THROW(
      interval_ratios(stream_from({1, 1}), Time::millis(10.0)),
      vifi::ContractViolation);
}

TEST(SessionLengths, SplitsOnInadequateIntervals) {
  // Seconds: good good bad good -> sessions of 2 s and 1 s.
  std::vector<int> d;
  auto push_second = [&d](int per_slot) {
    for (int i = 0; i < 10; ++i) d.push_back(per_slot);
  };
  push_second(2);
  push_second(2);
  push_second(0);
  push_second(2);
  const auto lengths =
      session_lengths_s(stream_from(d), SessionDef{});
  EXPECT_EQ(lengths, (std::vector<double>{2.0, 1.0}));
}

TEST(SessionLengths, ThresholdIsInclusive) {
  std::vector<int> d(10, 1);  // exactly 50%
  SessionDef def;
  def.min_ratio = 0.5;
  const auto lengths = session_lengths_s(stream_from(d), def);
  EXPECT_EQ(lengths, (std::vector<double>{1.0}));
}

TEST(SessionLengths, AllBadGivesNoSessions) {
  const auto lengths =
      session_lengths_s(stream_from(std::vector<int>(30, 0)), SessionDef{});
  EXPECT_TRUE(lengths.empty());
}

TEST(SessionLengths, StricterThresholdNeverLengthensSessions) {
  // Property: raising min_ratio cannot increase total session time.
  Rng rng(5);
  std::vector<int> d;
  d.reserve(600);
  for (int i = 0; i < 600; ++i)
    d.push_back(static_cast<int>(rng.uniform_int(0, 2)));
  double prev_total = 1e18;
  for (double thr : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    SessionDef def;
    def.min_ratio = thr;
    double total = 0.0;
    for (double s : session_lengths_s(stream_from(d), def)) total += s;
    EXPECT_LE(total, prev_total + 1e-9);
    prev_total = total;
  }
}

TEST(SessionTimeCdf, WeightsByLength) {
  const Cdf cdf = session_time_cdf({1.0, 3.0});
  // 1 of 4 connected seconds lives in the 1 s session.
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(3.0), 1.0);
}

TEST(MedianSessionLength, TimeWeighted) {
  // Sessions 1 s and 3 s: the median connected second is in the 3 s one.
  EXPECT_DOUBLE_EQ(median_session_length({1.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median_session_length({}), 0.0);
}

TEST(Timeline, MarksAdequateGapAndCoverageHole) {
  std::vector<int> d;
  auto push_second = [&d](int per_slot) {
    for (int i = 0; i < 10; ++i) d.push_back(per_slot);
  };
  push_second(2);  // '#'
  push_second(1);  // '#'  (50% >= threshold)
  push_second(0);  // ' '  (zero reception: out of coverage)
  d.insert(d.end(), {1, 0, 0, 0, 0, 0, 0, 0, 0, 0});  // '.'  (5% < 50%)
  push_second(2);  // '#'
  const Timeline tl = connectivity_timeline(stream_from(d), SessionDef{});
  EXPECT_EQ(tl.strip, "## .#");
  EXPECT_EQ(tl.interruptions, 1);
  EXPECT_DOUBLE_EQ(tl.adequate_s, 3.0);
}

TEST(Timeline, CountsDistinctInterruptions) {
  std::vector<int> d;
  auto push = [&d](int v, int n = 10) {
    for (int i = 0; i < n; ++i) d.push_back(v);
  };
  push(2);
  push(1, 5);
  push(0, 5);  // second 1: ratio 0.25 -> '.'
  push(2);
  push(1, 5);
  push(0, 5);  // '.'
  push(2);
  const Timeline tl = connectivity_timeline(stream_from(d), SessionDef{});
  EXPECT_EQ(tl.interruptions, 2);
}

// ------------------------------------------------------------- Burstiness --

TEST(Burst, UnconditionalLossRespectsMask) {
  ProbeSeries s;
  s.received = {true, false, true, false};
  s.in_range = {true, true, false, false};
  EXPECT_DOUBLE_EQ(unconditional_loss(s), 0.5);
}

TEST(Burst, ConditionalCurveDetectsBursts) {
  // Alternating long runs: loss at i strongly predicts loss at i+1.
  ProbeSeries s;
  for (int block = 0; block < 200; ++block) {
    const bool ok = block % 2 == 0;
    for (int i = 0; i < 50; ++i) s.received.push_back(ok);
  }
  s.in_range.assign(s.received.size(), true);
  const auto curve = conditional_loss_curve(s, {1, 49});
  EXPECT_GT(curve[0], 0.95);
  EXPECT_LT(curve[1], curve[0]);
  EXPECT_GT(curve[0], unconditional_loss(s));
}

TEST(Burst, IndependentSeriesHasFlatCurve) {
  ProbeSeries s;
  Rng r(7);
  for (int i = 0; i < 100000; ++i) s.received.push_back(r.bernoulli(0.7));
  s.in_range.assign(s.received.size(), true);
  const auto curve = conditional_loss_curve(s, {1, 10, 100});
  for (double c : curve) EXPECT_NEAR(c, 0.3, 0.02);
}

TEST(Burst, NoSupportFallsBackToUnconditional) {
  ProbeSeries s;
  s.received = {true, true, true};
  s.in_range = {true, true, true};
  const auto curve = conditional_loss_curve(s, {1});
  EXPECT_DOUBLE_EQ(curve[0], 0.0);
}

TEST(Burst, PairConditionalsOnIndependentStreams) {
  PairSeries s;
  Rng r(11);
  for (int i = 0; i < 100000; ++i) {
    s.a_received.push_back(r.bernoulli(0.75));
    s.b_received.push_back(r.bernoulli(0.67));
    s.both_in_range.push_back(true);
  }
  const auto pc = pair_conditionals(s);
  EXPECT_NEAR(pc.p_a, 0.75, 0.01);
  EXPECT_NEAR(pc.p_b, 0.67, 0.01);
  // Independence: conditioning on the other BS's loss changes nothing.
  EXPECT_NEAR(pc.p_b_next_after_a_loss, 0.67, 0.02);
  EXPECT_NEAR(pc.p_a_next_after_b_loss, 0.75, 0.02);
}

TEST(Burst, PairConditionalsCaptureSameLinkBursts) {
  // A is strongly bursty: long good and bad runs.
  PairSeries s;
  for (int block = 0; block < 400; ++block) {
    const bool ok = block % 2 == 0;
    for (int i = 0; i < 25; ++i) {
      s.a_received.push_back(ok);
      s.b_received.push_back(true);
      s.both_in_range.push_back(true);
    }
  }
  const auto pc = pair_conditionals(s);
  EXPECT_LT(pc.p_a_next_after_a_loss, 0.1);  // bursts persist
  EXPECT_GT(pc.p_b_next_after_a_loss, 0.95); // other path unaffected
}

TEST(Burst, MismatchedSizesThrow) {
  ProbeSeries s;
  s.received = {true};
  s.in_range = {};
  EXPECT_THROW(unconditional_loss(s), vifi::ContractViolation);
}

// -------------------------------------------------------------- Diversity --

trace::MeasurementTrace visibility_trace() {
  trace::MeasurementTrace t;
  t.duration = Time::seconds(2.0);
  t.beacons_per_second = 10;
  t.bs_ids = {sim::NodeId(0), sim::NodeId(1)};
  // Second 0: BS0 9 beacons, BS1 2 beacons. Second 1: nothing.
  for (int i = 0; i < 9; ++i)
    t.vehicle_beacons.push_back({Time::millis(i * 10.0), sim::NodeId(0), -60});
  for (int i = 0; i < 2; ++i)
    t.vehicle_beacons.push_back({Time::millis(i * 10.0), sim::NodeId(1), -70});
  return t;
}

TEST(Diversity, AtLeastOneBeaconDefinition) {
  const Cdf cdf = visible_bs_cdf(visibility_trace(), 0.0);
  // Two seconds total: one with 2 visible BSes, one with 0.
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(0.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(1.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(2.0), 1.0);
}

TEST(Diversity, FiftyPercentDefinitionIsStricter) {
  const Cdf cdf = visible_bs_cdf(visibility_trace(), 0.5);
  // Only BS0 clears 5 of 10 beacons in second 0.
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(0.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(1.0), 1.0);
}

TEST(Diversity, CampaignPoolsTrips) {
  trace::Campaign c;
  c.trips.push_back(visibility_trace());
  c.trips.push_back(visibility_trace());
  const Cdf cdf = visible_bs_cdf(c, 0.0);
  EXPECT_EQ(cdf.sample_count(), 4u);
}

}  // namespace
}  // namespace vifi::analysis
