#pragma once

/// \file fakes.h
/// Shared test doubles: a fully scriptable loss model and small helpers for
/// protocol-level tests.

#include <map>

#include "channel/loss_model.h"
#include "sim/ids.h"

namespace vifi::testing {

/// Deterministic, scriptable channel: delivery iff probability >= 0.5,
/// optionally dropping every n-th frame on a directed link (gives
/// deterministic fractional beacon ratios). The probability doubles as the
/// "reception_prob" estimate carrier sense and relay computations see.
/// Links default to 0 (disconnected).
class ScriptedLoss final : public channel::LossModel {
 public:
  void set(sim::NodeId a, sim::NodeId b, double p) {
    probs_[{a, b}] = p;
    probs_[{b, a}] = p;
  }
  void set_directed(sim::NodeId tx, sim::NodeId rx, double p) {
    probs_[{tx, rx}] = p;
  }
  /// Every n-th delivery on tx->rx fails (0 disables).
  void set_period_drop(sim::NodeId tx, sim::NodeId rx, int n) {
    drop_every_[{tx, rx}] = n;
  }

  bool sample_delivery(sim::NodeId tx, sim::NodeId rx, Time) override {
    if (prob(tx, rx) < 0.5) return false;
    const auto it = drop_every_.find({tx, rx});
    if (it == drop_every_.end() || it->second <= 0) return true;
    return ++counters_[{tx, rx}] % it->second != 0;
  }
  double reception_prob(sim::NodeId tx, sim::NodeId rx, Time) const override {
    return prob(tx, rx);
  }

 private:
  double prob(sim::NodeId a, sim::NodeId b) const {
    const auto it = probs_.find({a, b});
    return it == probs_.end() ? 0.0 : it->second;
  }
  std::map<sim::LinkKey, double> probs_;
  std::map<sim::LinkKey, int> drop_every_;
  std::map<sim::LinkKey, int> counters_;
};

}  // namespace vifi::testing
