// Multi-vehicle (fleet) tests: two ViFi clients sharing the same BSes,
// medium, and backplane must be anchored and served independently.

#include <gtest/gtest.h>

#include "core/system.h"
#include "fakes.h"
#include "sim/simulator.h"

namespace vifi {
namespace {

using core::SystemConfig;
using core::VifiSystem;
using sim::NodeId;
using testing::ScriptedLoss;

/// Two BSes, two vehicles, a gateway. Vehicle A lives near BS0, vehicle B
/// near BS1.
class FleetTest : public ::testing::Test {
 protected:
  static constexpr int kBs0 = 0, kBs1 = 1, kVehA = 2, kVehB = 3, kGw = 4;

  void build(SystemConfig config = {}) {
    config.seed = 5;
    system_ = std::make_unique<VifiSystem>(
        sim_, loss_, std::vector<NodeId>{NodeId(kBs0), NodeId(kBs1)},
        std::vector<NodeId>{NodeId(kVehA), NodeId(kVehB)}, NodeId(kGw),
        config);
    system_->vehicle(NodeId(kVehA)).set_delivery_handler(
        [this](const net::PacketRef& p) { got_a_.push_back(p->id); });
    system_->vehicle(NodeId(kVehB)).set_delivery_handler(
        [this](const net::PacketRef& p) { got_b_.push_back(p->id); });
    system_->host().set_delivery_handler(
        [this](const net::PacketRef& p) { got_host_.push_back(p->src); });
    system_->start();
  }

  void connect_disjoint() {
    loss_.set(NodeId(kBs0), NodeId(kVehA), 0.95);
    loss_.set(NodeId(kBs1), NodeId(kVehB), 0.95);
    loss_.set(NodeId(kBs0), NodeId(kBs1), 0.0);
    // Vehicles out of each other's range.
    loss_.set(NodeId(kVehA), NodeId(kVehB), 0.0);
  }

  void run_for(Time d) { sim_.run_until(sim_.now() + d); }

  sim::Simulator sim_;
  ScriptedLoss loss_;
  std::unique_ptr<VifiSystem> system_;
  std::vector<std::uint64_t> got_a_, got_b_;
  std::vector<NodeId> got_host_;
};

TEST_F(FleetTest, VehiclesAnchorIndependently) {
  connect_disjoint();
  build();
  run_for(Time::seconds(3.0));
  EXPECT_EQ(system_->vehicle(NodeId(kVehA)).anchor(), NodeId(kBs0));
  EXPECT_EQ(system_->vehicle(NodeId(kVehB)).anchor(), NodeId(kBs1));
}

TEST_F(FleetTest, GatewayRoutesDownstreamPerVehicle) {
  connect_disjoint();
  build();
  run_for(Time::seconds(3.0));
  EXPECT_EQ(system_->host().registered_anchor(NodeId(kVehA)), NodeId(kBs0));
  EXPECT_EQ(system_->host().registered_anchor(NodeId(kVehB)), NodeId(kBs1));
  const auto pa = system_->send_down(100, 0, 0, {}, NodeId(kVehA));
  const auto pb = system_->send_down(100, 0, 0, {}, NodeId(kVehB));
  run_for(Time::seconds(1.0));
  ASSERT_EQ(got_a_.size(), 1u);
  ASSERT_EQ(got_b_.size(), 1u);
  EXPECT_EQ(got_a_[0], pa->id);
  EXPECT_EQ(got_b_[0], pb->id);
}

TEST_F(FleetTest, UpstreamCarriesSourceIdentity) {
  connect_disjoint();
  build();
  run_for(Time::seconds(3.0));
  system_->send_up(100, 0, 0, {}, NodeId(kVehA));
  system_->send_up(100, 0, 0, {}, NodeId(kVehB));
  run_for(Time::seconds(1.0));
  ASSERT_EQ(got_host_.size(), 2u);
  EXPECT_NE(std::find(got_host_.begin(), got_host_.end(), NodeId(kVehA)),
            got_host_.end());
  EXPECT_NE(std::find(got_host_.begin(), got_host_.end(), NodeId(kVehB)),
            got_host_.end());
}

TEST_F(FleetTest, OneBsCanAnchorTwoVehicles) {
  // Both vehicles camp on BS0.
  loss_.set(NodeId(kBs0), NodeId(kVehA), 0.95);
  loss_.set(NodeId(kBs0), NodeId(kVehB), 0.95);
  loss_.set(NodeId(kVehA), NodeId(kVehB), 0.0);
  build();
  run_for(Time::seconds(3.0));
  EXPECT_EQ(system_->vehicle(NodeId(kVehA)).anchor(), NodeId(kBs0));
  EXPECT_EQ(system_->vehicle(NodeId(kVehB)).anchor(), NodeId(kBs0));
  for (int i = 0; i < 10; ++i) {
    system_->send_down(100, 0, static_cast<std::uint64_t>(i), {},
                       NodeId(kVehA));
    system_->send_down(100, 0, static_cast<std::uint64_t>(i), {},
                       NodeId(kVehB));
    run_for(Time::millis(100.0));
  }
  run_for(Time::seconds(1.0));
  EXPECT_EQ(got_a_.size(), 10u);
  EXPECT_EQ(got_b_.size(), 10u);
}

TEST_F(FleetTest, SalvageIsScopedToTheRightVehicle) {
  // Both vehicles anchored at BS0; vehicle A moves to BS1, vehicle B
  // stays. Only A's stranded packets may be salvaged.
  loss_.set(NodeId(kBs0), NodeId(kVehA), 0.95);
  loss_.set(NodeId(kBs0), NodeId(kVehB), 0.95);
  build();
  run_for(Time::seconds(3.0));
  ASSERT_EQ(system_->vehicle(NodeId(kVehA)).anchor(), NodeId(kBs0));

  loss_.set_directed(NodeId(kBs0), NodeId(kVehA), 0.0);
  loss_.set(NodeId(kBs1), NodeId(kVehA), 0.95);
  for (int i = 0; i < 100; ++i) {
    system_->send_down(100, 0, static_cast<std::uint64_t>(i), {},
                       NodeId(kVehA));
    system_->send_down(100, 0, static_cast<std::uint64_t>(i), {},
                       NodeId(kVehB));
    run_for(Time::millis(50.0));
  }
  EXPECT_EQ(system_->vehicle(NodeId(kVehA)).anchor(), NodeId(kBs1));
  EXPECT_EQ(system_->vehicle(NodeId(kVehB)).anchor(), NodeId(kBs0));
  // B's stream was never disrupted.
  EXPECT_EQ(got_b_.size(), 100u);
  // A recovered at least some packets after re-anchoring.
  EXPECT_GT(got_a_.size(), 20u);
}

TEST_F(FleetTest, OneSidedPlacementDoesNotStarveTheFarVehicle) {
  // Relay-starvation regression (PR 4 follow-up): a one-sided BS layout —
  // both BSes clustered on vehicle A's side, so A enjoys full relay
  // diversity while B clings to BS0 through a lossy long-range link. With
  // opportunistic relaying on (diversity + salvage), A's auxiliary
  // retransmissions share B's only channel; B must degrade, not starve.
  loss_.set(NodeId(kBs0), NodeId(kVehA), 0.95);
  loss_.set(NodeId(kBs1), NodeId(kVehA), 0.9);
  loss_.set(NodeId(kBs0), NodeId(kBs1), 0.95);
  loss_.set(NodeId(kVehA), NodeId(kVehB), 0.6);
  // B's single lossy path: in range, dropping every 3rd frame each way.
  loss_.set(NodeId(kBs0), NodeId(kVehB), 0.55);
  loss_.set_period_drop(NodeId(kBs0), NodeId(kVehB), 3);
  loss_.set_period_drop(NodeId(kVehB), NodeId(kBs0), 3);
  build();  // defaults: diversity + salvage on — full ViFi relaying
  run_for(Time::seconds(3.0));
  // A may anchor at either of its two strong BSes; B has only BS0.
  ASSERT_TRUE(system_->vehicle(NodeId(kVehA)).anchor().valid());
  ASSERT_EQ(system_->vehicle(NodeId(kVehB)).anchor(), NodeId(kBs0));

  const int rounds = 200;
  for (int i = 0; i < rounds; ++i) {
    system_->send_down(500, 0, static_cast<std::uint64_t>(i), {},
                       NodeId(kVehA));
    system_->send_down(500, 0, static_cast<std::uint64_t>(i), {},
                       NodeId(kVehB));
    run_for(Time::millis(20.0));
  }
  run_for(Time::seconds(1.0));

  // The quantities the executor's fairness columns report, computed from
  // the same sources (delivery counts + the medium's airtime ledger).
  const double rate_a = static_cast<double>(got_a_.size()) / rounds;
  const double rate_b = static_cast<double>(got_b_.size()) / rounds;
  const double per_vehicle_delivery_min = std::min(rate_a, rate_b);
  // The layout is genuinely asymmetric...
  EXPECT_GT(rate_a, rate_b);
  // ...but relaying must not starve the far vehicle to zero.
  EXPECT_GT(per_vehicle_delivery_min, 0.1);
  EXPECT_GT(got_b_.size(), 0u);

  const mac::MediumStats ms = system_->medium().snapshot();
  const mac::NodeAirtime& row_b = ms.node(NodeId(kVehB));
  EXPECT_GT(row_b.frames_received, 0u);
  // Deferral column: B waits its turn on the shared channel (relaying
  // really does contend) without being locked out of the whole run.
  const double trip_s = (Time::millis(20.0) * rounds).to_seconds() + 4.0;
  EXPECT_LT(row_b.deferral_wait.to_seconds(), trip_s / 2.0);
  // Jain over intact receptions stays a valid, non-collapsed index.
  const double jain =
      ms.jain_frames_received({NodeId(kVehA), NodeId(kVehB)});
  EXPECT_GT(jain, 0.5);
  EXPECT_LE(jain, 1.0 + 1e-12);
}

TEST_F(FleetTest, UnknownVehicleIdThrows) {
  connect_disjoint();
  build();
  EXPECT_THROW(system_->vehicle(NodeId(99)), ContractViolation);
}

/// Contention-knee regression: V staggered clients camped on one BS. As V
/// grows, the shared channel must serve more aggregate traffic (goodput is
/// monotone non-decreasing) while each client keeps less of it (per-vehicle
/// delivery is non-increasing), and the medium's fairness index over the
/// fleet stays a valid Jain value in (0, 1]. This pins the shape the
/// bench/fleet_contention knee study measures.
class ContentionTest : public ::testing::Test {
 protected:
  struct Outcome {
    double aggregate = 0.0;    ///< Total packets delivered across the fleet.
    double per_vehicle = 0.0;  ///< aggregate / V.
    double jain = 0.0;         ///< Jain over per-vehicle intact receptions.
  };

  /// One BS (id 0) anchoring V vehicles (ids 1..V); every node hears every
  /// other, so CSMA serialises the fleet and contention shows up as queueing,
  /// not hidden-terminal collapse. Vehicles start their downstream streams
  /// staggered within the sending period, like buses phased on a schedule.
  Outcome run_fleet(int vehicles) {
    sim::Simulator sim;
    testing::ScriptedLoss loss;
    std::vector<NodeId> vehicle_ids;
    vehicle_ids.reserve(static_cast<std::size_t>(vehicles));
    for (int v = 1; v <= vehicles; ++v) vehicle_ids.push_back(NodeId(v));
    const NodeId bs(0), gw(99);
    for (const NodeId a : vehicle_ids) {
      loss.set(bs, a, 0.95);
      for (const NodeId b : vehicle_ids)
        if (a != b) loss.set(a, b, 0.9);
    }
    core::SystemConfig config;
    config.seed = 7;
    core::VifiSystem system(sim, loss, {bs}, vehicle_ids, gw, config);
    std::vector<int> got(static_cast<std::size_t>(vehicles), 0);
    // Goodput is what arrives within the measurement window: once the
    // channel saturates, packets queueing past the deadline don't count,
    // which is exactly how contention starves clients in practice.
    Time deadline = Time::max();
    for (int v = 0; v < vehicles; ++v)
      system.vehicle(vehicle_ids[static_cast<std::size_t>(v)])
          .set_delivery_handler([&got, &deadline, &sim, v](
                                    const net::PacketRef&) {
            if (sim.now() <= deadline) ++got[v];
          });
    system.start();
    sim.run_until(Time::seconds(3.0));

    // Offered load: a 500-byte packet per vehicle every 12 ms (~350 kbps
    // on air each, incl. ACKs and beacons): one vehicle uses about a third of
    // the channel, two fit, four oversubscribe it by half — enough for the knee to bite without
    // collapsing the senders.
    const int rounds = 150;
    for (int i = 0; i < rounds; ++i) {
      for (int v = 0; v < vehicles; ++v) {
        const Time at = sim.now() + Time::millis(12.0 * v / vehicles);
        sim.schedule_at(at, [&system, &vehicle_ids, v, i] {
          system.send_down(500, 0, static_cast<std::uint64_t>(i), {},
                           vehicle_ids[static_cast<std::size_t>(v)]);
        });
      }
      sim.run_until(sim.now() + Time::millis(12.0));
    }
    deadline = sim.now() + Time::millis(250.0);
    sim.run_until(sim.now() + Time::seconds(3.0));

    Outcome out;
    for (const int g : got) out.aggregate += g;
    out.per_vehicle = out.aggregate / vehicles;
    out.jain = system.medium().snapshot().jain_frames_received(vehicle_ids);
    return out;
  }
};

TEST_F(ContentionTest, AggregateGrowsWhilePerVehicleDeliveryShrinks) {
  const Outcome v1 = run_fleet(1);
  const Outcome v2 = run_fleet(2);
  const Outcome v4 = run_fleet(4);

  // Aggregate goodput is monotone non-decreasing in V...
  EXPECT_GE(v2.aggregate, v1.aggregate);
  EXPECT_GE(v4.aggregate, v2.aggregate);
  // ...while per-vehicle delivery is non-increasing: added clients cost
  // contention, and by V=4 the knee has clearly bitten.
  EXPECT_LE(v2.per_vehicle, v1.per_vehicle);
  EXPECT_LE(v4.per_vehicle, v2.per_vehicle);
  EXPECT_LT(v4.per_vehicle, 0.9 * v1.per_vehicle);

  // Jain's index over the fleet is a valid fairness value throughout.
  for (const Outcome& o : {v1, v2, v4}) {
    EXPECT_GT(o.jain, 0.0);
    EXPECT_LE(o.jain, 1.0 + 1e-12);
  }
  // One vehicle is perfectly fair by definition.
  EXPECT_DOUBLE_EQ(v1.jain, 1.0);
}

}  // namespace
}  // namespace vifi
