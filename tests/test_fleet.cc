// Multi-vehicle (fleet) tests: two ViFi clients sharing the same BSes,
// medium, and backplane must be anchored and served independently.

#include <gtest/gtest.h>

#include "core/system.h"
#include "fakes.h"
#include "sim/simulator.h"

namespace vifi {
namespace {

using core::SystemConfig;
using core::VifiSystem;
using sim::NodeId;
using testing::ScriptedLoss;

/// Two BSes, two vehicles, a gateway. Vehicle A lives near BS0, vehicle B
/// near BS1.
class FleetTest : public ::testing::Test {
 protected:
  static constexpr int kBs0 = 0, kBs1 = 1, kVehA = 2, kVehB = 3, kGw = 4;

  void build(SystemConfig config = {}) {
    config.seed = 5;
    system_ = std::make_unique<VifiSystem>(
        sim_, loss_, std::vector<NodeId>{NodeId(kBs0), NodeId(kBs1)},
        std::vector<NodeId>{NodeId(kVehA), NodeId(kVehB)}, NodeId(kGw),
        config);
    system_->vehicle(NodeId(kVehA)).set_delivery_handler(
        [this](const net::PacketRef& p) { got_a_.push_back(p->id); });
    system_->vehicle(NodeId(kVehB)).set_delivery_handler(
        [this](const net::PacketRef& p) { got_b_.push_back(p->id); });
    system_->host().set_delivery_handler(
        [this](const net::PacketRef& p) { got_host_.push_back(p->src); });
    system_->start();
  }

  void connect_disjoint() {
    loss_.set(NodeId(kBs0), NodeId(kVehA), 0.95);
    loss_.set(NodeId(kBs1), NodeId(kVehB), 0.95);
    loss_.set(NodeId(kBs0), NodeId(kBs1), 0.0);
    // Vehicles out of each other's range.
    loss_.set(NodeId(kVehA), NodeId(kVehB), 0.0);
  }

  void run_for(Time d) { sim_.run_until(sim_.now() + d); }

  sim::Simulator sim_;
  ScriptedLoss loss_;
  std::unique_ptr<VifiSystem> system_;
  std::vector<std::uint64_t> got_a_, got_b_;
  std::vector<NodeId> got_host_;
};

TEST_F(FleetTest, VehiclesAnchorIndependently) {
  connect_disjoint();
  build();
  run_for(Time::seconds(3.0));
  EXPECT_EQ(system_->vehicle(NodeId(kVehA)).anchor(), NodeId(kBs0));
  EXPECT_EQ(system_->vehicle(NodeId(kVehB)).anchor(), NodeId(kBs1));
}

TEST_F(FleetTest, GatewayRoutesDownstreamPerVehicle) {
  connect_disjoint();
  build();
  run_for(Time::seconds(3.0));
  EXPECT_EQ(system_->host().registered_anchor(NodeId(kVehA)), NodeId(kBs0));
  EXPECT_EQ(system_->host().registered_anchor(NodeId(kVehB)), NodeId(kBs1));
  const auto pa = system_->send_down(100, 0, 0, {}, NodeId(kVehA));
  const auto pb = system_->send_down(100, 0, 0, {}, NodeId(kVehB));
  run_for(Time::seconds(1.0));
  ASSERT_EQ(got_a_.size(), 1u);
  ASSERT_EQ(got_b_.size(), 1u);
  EXPECT_EQ(got_a_[0], pa->id);
  EXPECT_EQ(got_b_[0], pb->id);
}

TEST_F(FleetTest, UpstreamCarriesSourceIdentity) {
  connect_disjoint();
  build();
  run_for(Time::seconds(3.0));
  system_->send_up(100, 0, 0, {}, NodeId(kVehA));
  system_->send_up(100, 0, 0, {}, NodeId(kVehB));
  run_for(Time::seconds(1.0));
  ASSERT_EQ(got_host_.size(), 2u);
  EXPECT_NE(std::find(got_host_.begin(), got_host_.end(), NodeId(kVehA)),
            got_host_.end());
  EXPECT_NE(std::find(got_host_.begin(), got_host_.end(), NodeId(kVehB)),
            got_host_.end());
}

TEST_F(FleetTest, OneBsCanAnchorTwoVehicles) {
  // Both vehicles camp on BS0.
  loss_.set(NodeId(kBs0), NodeId(kVehA), 0.95);
  loss_.set(NodeId(kBs0), NodeId(kVehB), 0.95);
  loss_.set(NodeId(kVehA), NodeId(kVehB), 0.0);
  build();
  run_for(Time::seconds(3.0));
  EXPECT_EQ(system_->vehicle(NodeId(kVehA)).anchor(), NodeId(kBs0));
  EXPECT_EQ(system_->vehicle(NodeId(kVehB)).anchor(), NodeId(kBs0));
  for (int i = 0; i < 10; ++i) {
    system_->send_down(100, 0, static_cast<std::uint64_t>(i), {},
                       NodeId(kVehA));
    system_->send_down(100, 0, static_cast<std::uint64_t>(i), {},
                       NodeId(kVehB));
    run_for(Time::millis(100.0));
  }
  run_for(Time::seconds(1.0));
  EXPECT_EQ(got_a_.size(), 10u);
  EXPECT_EQ(got_b_.size(), 10u);
}

TEST_F(FleetTest, SalvageIsScopedToTheRightVehicle) {
  // Both vehicles anchored at BS0; vehicle A moves to BS1, vehicle B
  // stays. Only A's stranded packets may be salvaged.
  loss_.set(NodeId(kBs0), NodeId(kVehA), 0.95);
  loss_.set(NodeId(kBs0), NodeId(kVehB), 0.95);
  build();
  run_for(Time::seconds(3.0));
  ASSERT_EQ(system_->vehicle(NodeId(kVehA)).anchor(), NodeId(kBs0));

  loss_.set_directed(NodeId(kBs0), NodeId(kVehA), 0.0);
  loss_.set(NodeId(kBs1), NodeId(kVehA), 0.95);
  for (int i = 0; i < 100; ++i) {
    system_->send_down(100, 0, static_cast<std::uint64_t>(i), {},
                       NodeId(kVehA));
    system_->send_down(100, 0, static_cast<std::uint64_t>(i), {},
                       NodeId(kVehB));
    run_for(Time::millis(50.0));
  }
  EXPECT_EQ(system_->vehicle(NodeId(kVehA)).anchor(), NodeId(kBs1));
  EXPECT_EQ(system_->vehicle(NodeId(kVehB)).anchor(), NodeId(kBs0));
  // B's stream was never disrupted.
  EXPECT_EQ(got_b_.size(), 100u);
  // A recovered at least some packets after re-anchoring.
  EXPECT_GT(got_a_.size(), 20u);
}

TEST_F(FleetTest, UnknownVehicleIdThrows) {
  connect_disjoint();
  build();
  EXPECT_THROW(system_->vehicle(NodeId(99)), ContractViolation);
}

}  // namespace
}  // namespace vifi
