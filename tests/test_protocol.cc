// Protocol-level tests of the ViFi stack over a fully scripted channel:
// sender retransmission behaviour, piggybacked acknowledgments, anchor
// selection and switching, salvaging, auxiliary relaying (both directions),
// the auxiliary-set cap, and in-order delivery.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "apps/transport.h"
#include "core/system.h"
#include "fakes.h"
#include "sim/simulator.h"

namespace vifi {
namespace {

using core::SystemConfig;
using core::VifiSystem;
using sim::NodeId;
using testing::ScriptedLoss;

/// Two BSes (0, 1), one vehicle (2), one gateway (3) — all link qualities
/// scripted per test.
class ProtocolTest : public ::testing::Test {
 protected:
  static constexpr int kBs0 = 0, kBs1 = 1, kVehicle = 2, kGateway = 3;

  void build(SystemConfig config) {
    config.seed = 77;
    system_ = std::make_unique<VifiSystem>(
        sim_, loss_, std::vector<NodeId>{NodeId(kBs0), NodeId(kBs1)},
        NodeId(kVehicle), NodeId(kGateway), config);
    system_->vehicle().set_delivery_handler(
        [this](const net::PacketRef& p) { vehicle_got_.push_back(p->id); });
    system_->host().set_delivery_handler(
        [this](const net::PacketRef& p) { host_got_.push_back(p->id); });
    system_->start();
  }

  void run_for(Time d) { sim_.run_until(sim_.now() + d); }

  /// Perfect vehicle<->BS0 link; BS1 idles far away.
  void connect_bs0_only() {
    loss_.set(NodeId(kBs0), NodeId(kVehicle), 0.95);
    loss_.set(NodeId(kBs1), NodeId(kVehicle), 0.0);
    loss_.set(NodeId(kBs0), NodeId(kBs1), 0.0);
  }

  /// Vehicle anchored at BS0 with BS1 a healthy auxiliary. BS1 drops every
  /// third frame so its beacon ratio (~0.67) deterministically loses the
  /// anchor election to BS0 (1.0).
  void connect_both() {
    loss_.set(NodeId(kBs0), NodeId(kVehicle), 0.95);
    loss_.set(NodeId(kBs1), NodeId(kVehicle), 0.7);
    loss_.set_period_drop(NodeId(kBs1), NodeId(kVehicle), 3);
    loss_.set(NodeId(kBs0), NodeId(kBs1), 0.9);
  }

  sim::Simulator sim_;
  ScriptedLoss loss_;
  std::unique_ptr<VifiSystem> system_;
  std::vector<std::uint64_t> vehicle_got_;
  std::vector<std::uint64_t> host_got_;
};

TEST_F(ProtocolTest, AnchorFollowsBestBs) {
  connect_bs0_only();
  build(SystemConfig{});
  run_for(Time::seconds(3.0));
  EXPECT_EQ(system_->vehicle().anchor(), NodeId(kBs0));
  EXPECT_TRUE(system_->vehicle().auxiliaries().empty());
}

TEST_F(ProtocolTest, AuxiliariesAreHeardNonAnchors) {
  connect_both();
  build(SystemConfig{});
  run_for(Time::seconds(3.0));
  EXPECT_EQ(system_->vehicle().anchor(), NodeId(kBs0));
  EXPECT_EQ(system_->vehicle().auxiliaries(),
            (std::vector<NodeId>{NodeId(kBs1)}));
}

TEST_F(ProtocolTest, AnchorSwitchesWithHysteresis) {
  connect_bs0_only();
  build(SystemConfig{});
  run_for(Time::seconds(3.0));
  ASSERT_EQ(system_->vehicle().anchor(), NodeId(kBs0));
  // BS1 becomes clearly better; BS0 fades.
  loss_.set(NodeId(kBs0), NodeId(kVehicle), 0.2);
  loss_.set(NodeId(kBs1), NodeId(kVehicle), 0.95);
  run_for(Time::seconds(5.0));
  EXPECT_EQ(system_->vehicle().anchor(), NodeId(kBs1));
  EXPECT_EQ(system_->vehicle().prev_anchor(), NodeId(kBs0));
  EXPECT_GE(system_->vehicle().anchor_switches(), 2u);
}

TEST_F(ProtocolTest, UpstreamFlowsThroughAnchorToGateway) {
  connect_bs0_only();
  build(SystemConfig{});
  run_for(Time::seconds(3.0));
  const auto p = system_->send_up(100);
  run_for(Time::seconds(1.0));
  ASSERT_EQ(host_got_.size(), 1u);
  EXPECT_EQ(host_got_[0], p->id);
}

TEST_F(ProtocolTest, DownstreamFlowsThroughRegisteredAnchor) {
  connect_bs0_only();
  build(SystemConfig{});
  run_for(Time::seconds(3.0));
  ASSERT_EQ(system_->host().registered_anchor(NodeId(kVehicle)),
            NodeId(kBs0));
  const auto p = system_->send_down(100);
  run_for(Time::seconds(1.0));
  ASSERT_EQ(vehicle_got_.size(), 1u);
  EXPECT_EQ(vehicle_got_[0], p->id);
}

TEST_F(ProtocolTest, DownstreamBeforeAnchorRegistrationIsCounted) {
  connect_bs0_only();
  build(SystemConfig{});
  system_->send_down(100);  // nobody registered yet
  EXPECT_EQ(system_->host().undeliverable(), 1u);
}

TEST_F(ProtocolTest, SourceRetransmitsUntilAcked) {
  // Vehicle -> BS0 data direction is dead at first; the downstream
  // direction (beacons, acks) works. Note the vehicle's own beacons are
  // also lost, so BS0 only learns it is the anchor after the heal.
  connect_bs0_only();
  loss_.set_directed(NodeId(kVehicle), NodeId(kBs0), 0.0);
  SystemConfig cfg;
  cfg.vifi.max_retx = 8;  // survive until the link heals
  build(cfg);
  run_for(Time::seconds(3.0));
  system_->send_up(100);
  run_for(Time::millis(150.0));
  EXPECT_TRUE(host_got_.empty());
  loss_.set_directed(NodeId(kVehicle), NodeId(kBs0), 0.95);
  run_for(Time::seconds(2.0));
  EXPECT_EQ(host_got_.size(), 1u);
  const auto s = system_->stats().coordination(net::Direction::Upstream);
  EXPECT_GT(s.attempts, 1);
}

TEST_F(ProtocolTest, RetxLimitDropsPacket) {
  connect_bs0_only();
  loss_.set_directed(NodeId(kVehicle), NodeId(kBs0), 0.0);
  SystemConfig cfg;
  cfg.vifi.max_retx = 2;
  build(cfg);
  run_for(Time::seconds(3.0));
  system_->send_up(100);
  run_for(Time::seconds(5.0));
  EXPECT_TRUE(host_got_.empty());
  EXPECT_EQ(system_->vehicle().sender().pending(), 0u);
  EXPECT_EQ(system_->vehicle().sender().dropped_count(), 1u);
  EXPECT_EQ(system_->stats().coordination(net::Direction::Upstream).attempts,
            3);  // 1 + max_retx
}

TEST_F(ProtocolTest, UpstreamRelayRescuesLostPacket) {
  // Vehicle cannot reach BS0 (anchor) directly but BS1 hears everything
  // and relays over the backplane.
  connect_both();
  loss_.set_directed(NodeId(kVehicle), NodeId(kBs0), 0.0);
  loss_.set_directed(NodeId(kVehicle), NodeId(kBs1), 0.95);
  // BS1 must not hear BS0's (non-existent) ack.
  SystemConfig cfg;
  cfg.vifi.max_retx = 0;  // no source retransmissions: only the relay helps
  build(cfg);
  run_for(Time::seconds(3.0));
  ASSERT_EQ(system_->vehicle().anchor(), NodeId(kBs0));
  const auto p = system_->send_up(100);
  run_for(Time::seconds(1.0));
  ASSERT_EQ(host_got_.size(), 1u);
  EXPECT_EQ(host_got_[0], p->id);
  const auto s = system_->stats().coordination(net::Direction::Upstream);
  EXPECT_DOUBLE_EQ(s.frac_relays_reached_dst, 1.0);
  EXPECT_GE(system_->basestation(NodeId(kBs1)).relays_sent(), 1u);
}

TEST_F(ProtocolTest, DownstreamRelayRescuesLostPacket) {
  // Establish BS0 as anchor with BS1 auxiliary, then kill the anchor's
  // downstream data path. A packet sent before the vehicle re-anchors can
  // only arrive through BS1's on-air relay.
  connect_both();
  SystemConfig cfg;
  cfg.vifi.max_retx = 0;
  build(cfg);
  run_for(Time::seconds(3.0));
  ASSERT_EQ(system_->vehicle().anchor(), NodeId(kBs0));
  loss_.set_directed(NodeId(kBs0), NodeId(kVehicle), 0.0);
  const auto p = system_->send_down(100);
  run_for(Time::millis(300.0));  // well inside the re-anchor window
  ASSERT_EQ(vehicle_got_.size(), 1u);
  EXPECT_EQ(vehicle_got_[0], p->id);
  EXPECT_GE(system_->basestation(NodeId(kBs1)).relays_sent(), 1u);
}

TEST_F(ProtocolTest, DiversityOffMeansNoRelays) {
  // Same setup as DownstreamRelayRescuesLostPacket, but with auxiliary
  // functionality switched off (the BRR baseline): the packet is simply
  // lost.
  connect_both();
  SystemConfig cfg;
  cfg.vifi.diversity = false;
  cfg.vifi.salvage = false;
  cfg.vifi.max_retx = 0;
  build(cfg);
  run_for(Time::seconds(3.0));
  ASSERT_EQ(system_->vehicle().anchor(), NodeId(kBs0));
  loss_.set_directed(NodeId(kBs0), NodeId(kVehicle), 0.0);
  system_->send_down(100);
  run_for(Time::millis(300.0));
  EXPECT_TRUE(vehicle_got_.empty());
  EXPECT_EQ(system_->basestation(NodeId(kBs1)).relays_sent(), 0u);
}

TEST_F(ProtocolTest, AckSuppressionPreventsRelayOfDeliveredPackets) {
  // Healthy direct path: BS1 hears data and the vehicle's acks, so it must
  // not relay.
  connect_both();
  SystemConfig cfg;
  cfg.vifi.max_retx = 0;
  build(cfg);
  run_for(Time::seconds(3.0));
  for (int i = 0; i < 20; ++i) {
    system_->send_down(100);
    run_for(Time::millis(50.0));
  }
  run_for(Time::seconds(1.0));
  EXPECT_EQ(vehicle_got_.size(), 20u);
  EXPECT_EQ(system_->basestation(NodeId(kBs1)).relays_sent(), 0u);
}

TEST_F(ProtocolTest, SalvagePullsStrandedPackets) {
  connect_bs0_only();
  build(SystemConfig{});
  run_for(Time::seconds(3.0));
  ASSERT_EQ(system_->vehicle().anchor(), NodeId(kBs0));

  // Cut the BS0->vehicle data path *after* anchoring and keep traffic
  // flowing (salvage hands over packets from the last second only, §4.5 —
  // an idle stream has nothing worth saving). BS1 comes into range; the
  // vehicle re-anchors; BS1 pulls the stranded fresh packets from BS0.
  loss_.set_directed(NodeId(kBs0), NodeId(kVehicle), 0.0);
  loss_.set(NodeId(kBs1), NodeId(kVehicle), 0.95);
  for (int i = 0; i < 120; ++i) {
    system_->send_down(100);
    run_for(Time::millis(50.0));
  }
  EXPECT_EQ(system_->vehicle().anchor(), NodeId(kBs1));
  EXPECT_GT(system_->stats().salvaged(), 0);
  EXPECT_FALSE(vehicle_got_.empty());
}

TEST_F(ProtocolTest, SalvageDisabledLeavesPacketsStranded) {
  connect_bs0_only();
  SystemConfig cfg;
  cfg.vifi.salvage = false;
  build(cfg);
  run_for(Time::seconds(3.0));
  loss_.set_directed(NodeId(kBs0), NodeId(kVehicle), 0.0);
  loss_.set(NodeId(kBs1), NodeId(kVehicle), 0.95);
  for (int i = 0; i < 120; ++i) {
    system_->send_down(100);
    run_for(Time::millis(50.0));
  }
  EXPECT_EQ(system_->stats().salvaged(), 0);
}

TEST_F(ProtocolTest, PiggybackClearsPendingWithoutExplicitAck) {
  // Vehicle hears BS0's data (carrying piggybacked ids) but no ack frames:
  // kill acks by making them collide? Simplest: upstream acks lost because
  // BS0->vehicle works but explicit ACK frames also use that path — so
  // instead verify via counters that piggybacked ids are accepted.
  connect_bs0_only();
  build(SystemConfig{});
  run_for(Time::seconds(3.0));
  // Bidirectional traffic so data frames carry reverse acknowledgments.
  for (int i = 0; i < 10; ++i) {
    system_->send_up(100);
    system_->send_down(100);
    run_for(Time::millis(100.0));
  }
  run_for(Time::seconds(1.0));
  EXPECT_EQ(host_got_.size(), 10u);
  EXPECT_EQ(vehicle_got_.size(), 10u);
  // Everything acked: no pending retransmission state anywhere.
  EXPECT_EQ(system_->vehicle().sender().pending(), 0u);
}

TEST_F(ProtocolTest, MaxAuxiliariesCapsDesignation) {
  connect_both();
  SystemConfig cfg;
  cfg.vifi.max_auxiliaries = 0;
  build(cfg);
  run_for(Time::seconds(3.0));
  EXPECT_EQ(system_->vehicle().anchor(), NodeId(kBs0));
  EXPECT_TRUE(system_->vehicle().auxiliaries().empty());
}

TEST_F(ProtocolTest, InorderDeliveryConfigStillDeliversEverything) {
  connect_both();
  SystemConfig cfg;
  cfg.vifi.inorder_delivery = true;
  build(cfg);
  run_for(Time::seconds(3.0));
  for (int i = 0; i < 30; ++i) {
    system_->send_down(100);
    system_->send_up(100);
    run_for(Time::millis(50.0));
  }
  run_for(Time::seconds(2.0));
  EXPECT_EQ(vehicle_got_.size(), 30u);
  EXPECT_EQ(host_got_.size(), 30u);
  // In-order: ids strictly increasing per direction.
  for (std::size_t i = 1; i < vehicle_got_.size(); ++i)
    EXPECT_LT(vehicle_got_[i - 1], vehicle_got_[i]);
}

TEST_F(ProtocolTest, RetxIntervalAdaptsToAckDelays) {
  connect_bs0_only();
  SystemConfig cfg;
  cfg.vifi.max_retx = 3;
  build(cfg);
  run_for(Time::seconds(3.0));
  const Time before = system_->vehicle().sender().retx_interval();
  for (int i = 0; i < 60; ++i) {
    system_->send_up(100);
    run_for(Time::millis(50.0));
  }
  run_for(Time::seconds(1.0));
  const Time after = system_->vehicle().sender().retx_interval();
  // With a fast clean channel the 99th percentile of ack delays is small:
  // the timer should shrink from its initial 60 ms toward the floor.
  EXPECT_EQ(before, Time::millis(60));
  EXPECT_LT(after, before);
  EXPECT_GE(after, cfg.vifi.retx_floor);
}

}  // namespace
}  // namespace vifi
