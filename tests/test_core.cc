// Unit tests for ViFi core components: pab estimation/gossip, the relay
// probability computation (Eq. 1-3 and the ¬G variants), the sender's
// adaptive retransmission, stats accounting, and the id set.

#include <gtest/gtest.h>

#include <cmath>

#include "core/id_set.h"
#include "core/pab.h"
#include "core/relay_policy.h"
#include "core/stats.h"
#include "util/contracts.h"

namespace vifi::core {
namespace {

using sim::NodeId;

// ------------------------------------------------------------------ Pab --

TEST(PabTable, IncomingEstimateFromBeaconCounts) {
  PabTable pab(NodeId(9), 10, 0.5);
  // 8 of 10 beacons in the first second.
  for (int i = 0; i < 8; ++i)
    pab.note_beacon(NodeId(1), Time::millis(i * 10.0));
  pab.tick_second(Time::seconds(1.0));
  EXPECT_DOUBLE_EQ(pab.incoming(NodeId(1), Time::seconds(1.0)), 0.8);
}

TEST(PabTable, ExponentialAveraging) {
  PabTable pab(NodeId(9), 10, 0.5);
  for (int i = 0; i < 10; ++i)
    pab.note_beacon(NodeId(1), Time::millis(i * 10.0));
  pab.tick_second(Time::seconds(1.0));
  // Second 2: silence while still fresh -> 0 sample folds in.
  pab.tick_second(Time::seconds(2.0));
  EXPECT_DOUBLE_EQ(pab.incoming(NodeId(1), Time::seconds(2.0)), 0.5);
}

TEST(PabTable, StaleEstimatesFallBack) {
  PabTable pab(NodeId(9), 10, 0.5);
  pab.note_beacon(NodeId(1), Time::zero());
  pab.tick_second(Time::seconds(1.0));
  EXPECT_GT(pab.incoming(NodeId(1), Time::seconds(1.0), -1.0), 0.0);
  // Ten silent seconds later the estimate is stale.
  for (int s = 2; s <= 12; ++s) pab.tick_second(Time::seconds(s));
  EXPECT_DOUBLE_EQ(pab.incoming(NodeId(1), Time::seconds(30.0), -1.0), -1.0);
}

TEST(PabTable, GossipRoundTrip) {
  PabTable pab(NodeId(9), 10, 0.5);
  pab.fold_reports({{NodeId(2), NodeId(3), 0.6}}, Time::zero());
  EXPECT_DOUBLE_EQ(pab.get(NodeId(2), NodeId(3), Time::zero()), 0.6);
  // Unknown pair -> fallback.
  EXPECT_DOUBLE_EQ(pab.get(NodeId(4), NodeId(5), Time::zero(), 0.25), 0.25);
}

TEST(PabTable, GossipAboutSelfIsIgnored) {
  // We know our own incoming estimates better than remote gossip.
  PabTable pab(NodeId(9), 10, 0.5);
  pab.fold_reports({{NodeId(2), NodeId(9), 0.99}}, Time::zero());
  EXPECT_DOUBLE_EQ(pab.get(NodeId(2), NodeId(9), Time::zero(), -1.0), -1.0);
}

TEST(PabTable, ExportContainsIncomingAndReverse) {
  PabTable pab(NodeId(9), 10, 0.5);
  for (int i = 0; i < 10; ++i)
    pab.note_beacon(NodeId(1), Time::millis(i * 10.0));
  pab.tick_second(Time::seconds(1.0));
  // Gossip learned from BS1's beacon: our outgoing probability to it.
  pab.fold_reports({{NodeId(9), NodeId(1), 0.7}}, Time::seconds(1.0));
  const auto reports = pab.export_reports(Time::seconds(1.0));
  bool has_incoming = false, has_reverse = false;
  for (const auto& r : reports) {
    if (r.from == NodeId(1) && r.to == NodeId(9)) has_incoming = true;
    if (r.from == NodeId(9) && r.to == NodeId(1)) has_reverse = true;
  }
  EXPECT_TRUE(has_incoming);
  EXPECT_TRUE(has_reverse);
}

TEST(PabTable, RecentNeighbors) {
  PabTable pab(NodeId(9));
  pab.note_beacon(NodeId(1), Time::seconds(1.0));
  pab.note_beacon(NodeId(2), Time::seconds(5.0));
  const auto recent =
      pab.recent_neighbors(Time::seconds(6.0), Time::seconds(3.0));
  EXPECT_EQ(recent, (std::vector<NodeId>{NodeId(2)}));
}

// --------------------------------------------------------- Relay policy --

/// Builds a pab table holding the full probability matrix the computation
/// needs, from the perspective of auxiliary `self`. Estimates about links
/// *into self* cannot come from gossip (fold_reports rightly ignores
/// them); they are established the way the protocol does it — by counting
/// received beacons (p must be a multiple of 0.1).
PabTable full_table(NodeId self, NodeId src, NodeId dst,
                    const std::vector<std::pair<NodeId, double>>& ps_bi,
                    double ps_d,
                    const std::vector<std::pair<NodeId, double>>& pd_bi,
                    const std::vector<std::pair<NodeId, double>>& pbi_d) {
  PabTable pab(self, 10, 0.5);
  std::vector<mac::ProbReport> reports;
  auto own_or_gossip = [&](NodeId from, NodeId bi, double p) {
    if (bi == self) {
      const int beacons = static_cast<int>(p * 10.0 + 0.5);
      for (int k = 0; k < beacons; ++k)
        pab.note_beacon(from, Time::millis(k * 10.0));
    } else {
      reports.push_back({from, bi, p});
    }
  };
  for (const auto& [bi, p] : ps_bi) own_or_gossip(src, bi, p);
  reports.push_back({src, dst, ps_d});
  for (const auto& [bi, p] : pd_bi) own_or_gossip(dst, bi, p);
  for (const auto& [bi, p] : pbi_d) reports.push_back({bi, dst, p});
  pab.tick_second(Time::seconds(1.0));
  pab.fold_reports(reports, Time::seconds(1.0));
  return pab;
}

RelayContext symmetric_context(const PabTable& pab, NodeId self, int n_aux) {
  RelayContext ctx;
  ctx.self = self;
  ctx.src = NodeId(100);
  ctx.dst = NodeId(101);
  for (int i = 0; i < n_aux; ++i) ctx.auxiliaries.push_back(NodeId(i));
  ctx.pab = &pab;
  ctx.now = Time::seconds(1.0);
  return ctx;
}

TEST(RelayPolicy, ContentionProbabilityMatchesEq3) {
  const NodeId src(100), dst(101), self(0);
  const PabTable pab = full_table(self, src, dst, {{self, 0.8}}, 0.6,
                                  {{self, 0.5}}, {{self, 0.9}});
  RelayContext ctx = symmetric_context(pab, self, 1);
  // c = p(s->B) * (1 - p(s->d) p(d->B)) = 0.8 * (1 - 0.3) = 0.56.
  EXPECT_NEAR(contention_probability(ctx, self), 0.56, 1e-9);
}

TEST(RelayPolicy, ExpectedRelaysEqualsOneSymmetricCase) {
  // K identical auxiliaries: sum_i c_i * r_i should be 1, so each relays
  // with probability 1 / (K * c).
  const NodeId src(100), dst(101);
  const int k = 4;
  std::vector<std::pair<NodeId, double>> ps, pd, pb;
  for (int i = 0; i < k; ++i) {
    ps.push_back({NodeId(i), 0.8});
    pd.push_back({NodeId(i), 0.5});
    pb.push_back({NodeId(i), 0.6});
  }
  const PabTable pab = full_table(NodeId(0), src, dst, ps, 0.5, pd, pb);
  RelayContext ctx = symmetric_context(pab, NodeId(0), k);
  const double c = 0.8 * (1.0 - 0.5 * 0.5);
  const double expected_r = 1.0 / (k * c);
  EXPECT_NEAR(relay_probability(ctx, RelayVariant::ViFi), expected_r, 1e-9);

  // Property: the expected number of relays across the set equals 1.
  double total = 0.0;
  for (int i = 0; i < k; ++i) {
    ctx.self = NodeId(i);
    total += c * relay_probability(ctx, RelayVariant::ViFi);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(RelayPolicy, PrefersBetterConnectedAuxiliaries) {
  // Eq. 2: r_i / r_j = p(Bi->d) / p(Bj->d). Three auxiliaries so no
  // probability clamps at 1 and the ratio is exact.
  const NodeId src(100), dst(101);
  std::vector<std::pair<NodeId, double>> ps, pd;
  for (int i = 0; i < 3; ++i) {
    ps.push_back({NodeId(i), 0.8});
    pd.push_back({NodeId(i), 0.4});
  }
  std::vector<std::pair<NodeId, double>> pb = {
      {NodeId(0), 0.5}, {NodeId(1), 0.25}, {NodeId(2), 0.5}};
  const PabTable pab = full_table(NodeId(0), src, dst, ps, 0.5, pd, pb);
  RelayContext ctx = symmetric_context(pab, NodeId(0), 3);
  const double r0 = relay_probability(ctx, RelayVariant::ViFi);
  ctx.self = NodeId(1);
  const double r1 = relay_probability(ctx, RelayVariant::ViFi);
  EXPECT_LT(r0, 1.0);  // not clamped
  EXPECT_NEAR(r0 / r1, 0.5 / 0.25, 1e-9);
}

TEST(RelayPolicy, ClampsToOne) {
  // A single weakly-connected auxiliary must still clamp at 1.
  const NodeId src(100), dst(101), self(0);
  const PabTable pab = full_table(self, src, dst, {{self, 0.2}}, 0.1,
                                  {{self, 0.1}}, {{self, 0.2}});
  RelayContext ctx = symmetric_context(pab, self, 1);
  EXPECT_DOUBLE_EQ(relay_probability(ctx, RelayVariant::ViFi), 1.0);
}

TEST(RelayPolicy, NoG1IgnoresOthers) {
  const NodeId src(100), dst(101);
  std::vector<std::pair<NodeId, double>> ps, pd, pb;
  for (int i = 0; i < 5; ++i) {
    ps.push_back({NodeId(i), 0.9});
    pd.push_back({NodeId(i), 0.5});
    pb.push_back({NodeId(i), 0.7});
  }
  const PabTable pab = full_table(NodeId(0), src, dst, ps, 0.5, pd, pb);
  RelayContext ctx = symmetric_context(pab, NodeId(0), 5);
  // ¬G1 relays with its delivery ratio regardless of the other four.
  EXPECT_NEAR(relay_probability(ctx, RelayVariant::NoG1), 0.7, 1e-9);
  // ViFi shares the expectation across all five.
  EXPECT_LT(relay_probability(ctx, RelayVariant::ViFi), 0.7);
}

TEST(RelayPolicy, NoG2IgnoresConnectivity) {
  const NodeId src(100), dst(101);
  std::vector<std::pair<NodeId, double>> ps = {{NodeId(0), 0.8},
                                               {NodeId(1), 0.8}};
  std::vector<std::pair<NodeId, double>> pd = {{NodeId(0), 0.0},
                                               {NodeId(1), 0.0}};
  std::vector<std::pair<NodeId, double>> pb = {{NodeId(0), 0.9},
                                               {NodeId(1), 0.1}};
  const PabTable pab = full_table(NodeId(0), src, dst, ps, 0.0, pd, pb);
  RelayContext ctx = symmetric_context(pab, NodeId(0), 2);
  const double r0 = relay_probability(ctx, RelayVariant::NoG2);
  ctx.self = NodeId(1);
  const double r1 = relay_probability(ctx, RelayVariant::NoG2);
  EXPECT_NEAR(r0, r1, 1e-9);  // same probability despite pb mismatch
}

TEST(RelayPolicy, NoG3Waterfills) {
  // Expected deliveries = 1: the best auxiliary relays with 1 first.
  const NodeId src(100), dst(101);
  std::vector<std::pair<NodeId, double>> ps = {{NodeId(0), 1.0},
                                               {NodeId(1), 1.0}};
  std::vector<std::pair<NodeId, double>> pd = {{NodeId(0), 0.0},
                                               {NodeId(1), 0.0}};
  std::vector<std::pair<NodeId, double>> pb = {{NodeId(0), 0.9},
                                               {NodeId(1), 0.8}};
  const PabTable pab = full_table(NodeId(0), src, dst, ps, 0.0, pd, pb);
  RelayContext ctx = symmetric_context(pab, NodeId(0), 2);
  // Best BS: cap = 0.9 * 1.0 = 0.9 < 1 -> relays with probability 1.
  EXPECT_NEAR(relay_probability(ctx, RelayVariant::NoG3), 1.0, 1e-9);
  // Second BS fills the remaining 0.1: r = 0.1 / 0.8.
  ctx.self = NodeId(1);
  EXPECT_NEAR(relay_probability(ctx, RelayVariant::NoG3), 0.1 / 0.8, 1e-9);
}

TEST(RelayPolicy, NoG3RelaysMoreThanViFiInExpectation) {
  // The paper's point: expected *deliveries* = 1 forces more relays when
  // links are weak.
  const NodeId src(100), dst(101);
  const int k = 4;
  std::vector<std::pair<NodeId, double>> ps, pd, pb;
  for (int i = 0; i < k; ++i) {
    ps.push_back({NodeId(i), 0.9});
    pd.push_back({NodeId(i), 0.2});
    pb.push_back({NodeId(i), 0.3});
  }
  const PabTable pab = full_table(NodeId(0), src, dst, ps, 0.4, pd, pb);
  double vifi_expected = 0.0, nog3_expected = 0.0;
  for (int i = 0; i < k; ++i) {
    RelayContext ctx = symmetric_context(pab, NodeId(i), k);
    const double c = contention_probability(ctx, NodeId(i));
    vifi_expected += c * relay_probability(ctx, RelayVariant::ViFi);
    nog3_expected += c * relay_probability(ctx, RelayVariant::NoG3);
  }
  EXPECT_NEAR(vifi_expected, 1.0, 1e-6);
  EXPECT_GT(nog3_expected, 1.5);
}

TEST(RelayPolicy, SymmetryFallbackUsesReverseDirection) {
  PabTable pab(NodeId(0));
  pab.fold_reports({{NodeId(3), NodeId(2), 0.45}}, Time::zero());
  EXPECT_DOUBLE_EQ(
      pab_or_symmetric(pab, NodeId(2), NodeId(3), Time::zero(), 0.0), 0.45);
}

TEST(RelayPolicy, UndesignatedAuxiliaryFallsBackConservatively) {
  const NodeId src(100), dst(101), self(7);
  const PabTable pab = full_table(self, src, dst, {}, 0.5, {},
                                  {{self, 0.6}});
  RelayContext ctx;
  ctx.self = self;
  ctx.src = src;
  ctx.dst = dst;
  ctx.auxiliaries = {NodeId(0)};  // self not designated
  ctx.pab = &pab;
  ctx.now = Time::zero();
  EXPECT_NEAR(relay_probability(ctx, RelayVariant::ViFi), 0.6, 1e-9);
}

// ------------------------------------------------------------- VifiStats --

TEST(VifiStats, Table1StyleAccounting) {
  VifiStats stats;
  using D = Direction;
  // Attempt 1: reaches destination, one aux heard, relayed anyway (FP).
  stats.on_source_tx(1, 1, D::Upstream, Time::zero(), 5);
  stats.on_dst_rx_direct(1, 1);
  stats.on_aux_overhear(1, 1, NodeId(2));
  stats.on_aux_contend(1, 1, NodeId(2));
  stats.on_aux_relay(1, 1, NodeId(2));
  stats.on_relay_reached_dst(1, 1, NodeId(2));
  // Attempt 2: fails, two aux heard, one relays successfully.
  stats.on_source_tx(2, 1, D::Upstream, Time::zero(), 5);
  stats.on_aux_overhear(2, 1, NodeId(2));
  stats.on_aux_overhear(2, 1, NodeId(3));
  stats.on_aux_contend(2, 1, NodeId(3));
  stats.on_aux_relay(2, 1, NodeId(3));
  stats.on_relay_reached_dst(2, 1, NodeId(3));
  // Attempt 3: fails, covered but nobody relays (FN).
  stats.on_source_tx(3, 1, D::Upstream, Time::zero(), 5);
  stats.on_aux_overhear(3, 1, NodeId(2));

  const CoordinationSummary s = stats.coordination(D::Upstream);
  EXPECT_EQ(s.attempts, 3);
  EXPECT_DOUBLE_EQ(s.median_designated_aux, 5.0);
  EXPECT_NEAR(s.avg_aux_heard, 4.0 / 3.0, 1e-9);
  EXPECT_NEAR(s.frac_src_tx_reached_dst, 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(s.frac_src_tx_failed, 2.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.false_positive_rate, 1.0);   // 1 FP relay / 1 success
  EXPECT_DOUBLE_EQ(s.avg_relays_when_fp, 1.0);
  EXPECT_DOUBLE_EQ(s.frac_failed_with_aux_cover, 1.0);
  EXPECT_DOUBLE_EQ(s.false_negative_rate, 0.5);   // 1 of 2 failures
  EXPECT_DOUBLE_EQ(s.frac_relays_reached_dst, 1.0);
}

TEST(VifiStats, DirectionsAreSeparate) {
  VifiStats stats;
  stats.on_source_tx(1, 1, Direction::Upstream, Time::zero(), 1);
  stats.on_source_tx(2, 1, Direction::Downstream, Time::zero(), 1);
  EXPECT_EQ(stats.coordination(Direction::Upstream).attempts, 1);
  EXPECT_EQ(stats.coordination(Direction::Downstream).attempts, 1);
}

TEST(VifiStats, EfficiencyCountsDeliveredPerTx) {
  VifiStats stats;
  stats.on_wireless_data_tx(Direction::Upstream);
  stats.on_wireless_data_tx(Direction::Upstream);
  stats.on_app_delivered(Direction::Upstream);
  const EfficiencySummary e = stats.efficiency();
  EXPECT_DOUBLE_EQ(e.up, 0.5);
}

TEST(VifiStats, PerfectRelayUpstreamUsesAuxCoverage) {
  VifiStats stats;
  // Two attempts: one heard only by an aux, one heard by nobody.
  stats.on_source_tx(1, 1, Direction::Upstream, Time::zero(), 3);
  stats.on_aux_overhear(1, 1, NodeId(0));
  stats.on_source_tx(2, 1, Direction::Upstream, Time::zero(), 3);
  const EfficiencySummary e = stats.efficiency();
  EXPECT_DOUBLE_EQ(e.perfect_up, 0.5);
}

TEST(VifiStats, PerfectRelayDownstreamRules) {
  VifiStats stats;
  // Attempt 1: dst heard directly (no relay cost).
  stats.on_source_tx(1, 1, Direction::Downstream, Time::zero(), 3);
  stats.on_dst_rx_direct(1, 1);
  // Attempt 2: missed, ViFi relayed and the relay reached dst.
  stats.on_source_tx(2, 1, Direction::Downstream, Time::zero(), 3);
  stats.on_aux_overhear(2, 1, NodeId(0));
  stats.on_aux_relay(2, 1, NodeId(0));
  stats.on_relay_reached_dst(2, 1, NodeId(0));
  // Attempt 3: missed, aux heard it, ViFi did not relay (rule ii: Perfect
  // would have relayed successfully).
  stats.on_source_tx(3, 1, Direction::Downstream, Time::zero(), 3);
  stats.on_aux_overhear(3, 1, NodeId(0));
  const EfficiencySummary e = stats.efficiency();
  // Delivered: 3 of 3; transmissions: 3 source + 2 relays.
  EXPECT_NEAR(e.perfect_down, 3.0 / 5.0, 1e-9);
}

// Records the same synthetic attempt population into `stats`, visiting the
// packet ids in the order given by `ids`. Each id deterministically decides
// its own features (direction, direct reception, aux coverage, relays), so
// any permutation of `ids` describes the same logical history.
void record_attempts(VifiStats& stats, const std::vector<std::uint64_t>& ids) {
  for (const std::uint64_t id : ids) {
    const Direction dir =
        id % 3 == 0 ? Direction::Downstream : Direction::Upstream;
    stats.on_source_tx(id, 1, dir, Time::millis(static_cast<double>(id)),
                       static_cast<int>(id % 7));
    if (id % 2 == 0) stats.on_dst_rx_direct(id, 1);
    if (id % 4 != 0) {
      stats.on_aux_overhear(id, 1, NodeId(2));
      stats.on_aux_contend(id, 1, NodeId(2));
    }
    if (id % 5 == 0) {
      stats.on_aux_overhear(id, 1, NodeId(3));
      stats.on_aux_relay(id, 1, NodeId(3));
      if (id % 10 == 0) stats.on_relay_reached_dst(id, 1, NodeId(3));
    }
    if (id % 2 == 0) stats.on_app_delivered(dir);
    stats.on_wireless_data_tx(dir);
  }
}

// Pins the order-independence of the coordination/efficiency summaries:
// VifiStats aggregates over an unordered_map of attempts, and detlint's
// unordered-iter annotations in src/core/stats.cc cite this test as the
// proof that iteration order cannot leak into results. Every aggregate must
// be byte-identical (EXPECT_EQ on doubles, not NEAR) across insertion orders.
TEST(VifiStats, CoordinationOrderInvariance) {
  std::vector<std::uint64_t> forward;
  for (std::uint64_t id = 1; id <= 200; ++id) forward.push_back(id);
  std::vector<std::uint64_t> reverse(forward.rbegin(), forward.rend());
  // A third order: odds first, then evens — exercises bucket chains that
  // neither monotone order produces.
  std::vector<std::uint64_t> shuffled;
  for (const std::uint64_t id : forward) if (id % 2 == 1) shuffled.push_back(id);
  for (const std::uint64_t id : forward) if (id % 2 == 0) shuffled.push_back(id);

  VifiStats a, b, c;
  record_attempts(a, forward);
  record_attempts(b, reverse);
  record_attempts(c, shuffled);

  for (const Direction dir : {Direction::Upstream, Direction::Downstream}) {
    const CoordinationSummary sa = a.coordination(dir);
    for (const VifiStats* other : {&b, &c}) {
      const CoordinationSummary so = other->coordination(dir);
      EXPECT_EQ(sa.attempts, so.attempts);
      EXPECT_EQ(sa.median_designated_aux, so.median_designated_aux);
      EXPECT_EQ(sa.avg_aux_heard, so.avg_aux_heard);
      EXPECT_EQ(sa.avg_aux_heard_no_ack, so.avg_aux_heard_no_ack);
      EXPECT_EQ(sa.frac_src_tx_reached_dst, so.frac_src_tx_reached_dst);
      EXPECT_EQ(sa.false_positive_rate, so.false_positive_rate);
      EXPECT_EQ(sa.avg_relays_when_fp, so.avg_relays_when_fp);
      EXPECT_EQ(sa.frac_src_tx_failed, so.frac_src_tx_failed);
      EXPECT_EQ(sa.frac_failed_with_aux_cover, so.frac_failed_with_aux_cover);
      EXPECT_EQ(sa.false_negative_rate, so.false_negative_rate);
      EXPECT_EQ(sa.frac_relays_reached_dst, so.frac_relays_reached_dst);
    }
    EXPECT_EQ(a.source_attempts(dir), b.source_attempts(dir));
    EXPECT_EQ(a.source_attempts(dir), c.source_attempts(dir));
  }
  const EfficiencySummary ea = a.efficiency();
  for (const VifiStats* other : {&b, &c}) {
    const EfficiencySummary eo = other->efficiency();
    EXPECT_EQ(ea.up, eo.up);
    EXPECT_EQ(ea.down, eo.down);
    EXPECT_EQ(ea.perfect_up, eo.perfect_up);
    EXPECT_EQ(ea.perfect_down, eo.perfect_down);
  }
}

// ------------------------------------------------------------ RecentIdSet --

TEST(RecentIdSet, InsertAndContains) {
  RecentIdSet set(4);
  EXPECT_TRUE(set.insert(1));
  EXPECT_FALSE(set.insert(1));
  EXPECT_TRUE(set.contains(1));
  EXPECT_FALSE(set.contains(2));
}

TEST(RecentIdSet, EvictsOldestBeyondCapacity) {
  RecentIdSet set(3);
  for (std::uint64_t id = 1; id <= 5; ++id) set.insert(id);
  EXPECT_FALSE(set.contains(1));
  EXPECT_FALSE(set.contains(2));
  EXPECT_TRUE(set.contains(3));
  EXPECT_TRUE(set.contains(5));
  EXPECT_EQ(set.size(), 3u);
}

}  // namespace
}  // namespace vifi::core
