// Parameterized property suites (TEST_P sweeps) over the library's core
// invariants: session accounting, relay-probability guarantees, channel
// processes, CDFs, TCP delivery exactness, and time arithmetic.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "analysis/sessions.h"
#include "apps/tcp.h"
#include "apps/transport.h"
#include "channel/markov.h"
#include "channel/trace_driven.h"
#include "core/pab.h"
#include "core/relay_policy.h"
#include "util/cdf.h"
#include "util/rng.h"
#include "util/stats.h"

namespace vifi {
namespace {

// ----------------------------------------------------- session invariants --

struct SessionCase {
  double interval_s;
  double min_ratio;
};

class SessionProperties : public ::testing::TestWithParam<SessionCase> {};

analysis::SlotStream random_stream(std::uint64_t seed, int slots = 1200) {
  analysis::SlotStream s;
  Rng rng(seed);
  // Bursty synthetic stream: alternating good/bad phases.
  bool good = true;
  int left = 0;
  for (int i = 0; i < slots; ++i) {
    if (left == 0) {
      good = !good;
      left = static_cast<int>(rng.uniform_int(5, 80));
    }
    --left;
    const double p = good ? 0.9 : 0.15;
    s.delivered.push_back((rng.bernoulli(p) ? 1 : 0) +
                          (rng.bernoulli(p) ? 1 : 0));
  }
  return s;
}

TEST_P(SessionProperties, TotalSessionTimeNeverExceedsStreamDuration) {
  const auto [interval_s, min_ratio] = GetParam();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto stream = random_stream(seed);
    analysis::SessionDef def{Time::seconds(interval_s), min_ratio};
    const auto lengths = analysis::session_lengths_s(stream, def);
    const double total =
        std::accumulate(lengths.begin(), lengths.end(), 0.0);
    EXPECT_LE(total, stream.duration().to_seconds() + 1e-9);
    for (double len : lengths) {
      EXPECT_GT(len, 0.0);
      // Lengths are whole multiples of the interval.
      const double k = len / interval_s;
      EXPECT_NEAR(k, std::round(k), 1e-9);
    }
  }
}

TEST_P(SessionProperties, SessionsMatchTimelineAccounting) {
  const auto [interval_s, min_ratio] = GetParam();
  const auto stream = random_stream(42);
  analysis::SessionDef def{Time::seconds(interval_s), min_ratio};
  const auto lengths = analysis::session_lengths_s(stream, def);
  const auto tl = analysis::connectivity_timeline(stream, def);
  const double total = std::accumulate(lengths.begin(), lengths.end(), 0.0);
  EXPECT_NEAR(total, tl.adequate_s, 1e-9);
  // '#' characters match total adequate intervals.
  const auto hashes = std::count(tl.strip.begin(), tl.strip.end(), '#');
  EXPECT_NEAR(static_cast<double>(hashes) * interval_s, total, 1e-9);
}

TEST_P(SessionProperties, MedianIsAnActualSessionLength) {
  const auto [interval_s, min_ratio] = GetParam();
  const auto stream = random_stream(7);
  analysis::SessionDef def{Time::seconds(interval_s), min_ratio};
  const auto lengths = analysis::session_lengths_s(stream, def);
  if (lengths.empty()) return;
  const double med = analysis::median_session_length(lengths);
  EXPECT_NE(std::find(lengths.begin(), lengths.end(), med), lengths.end());
}

INSTANTIATE_TEST_SUITE_P(
    DefinitionSweep, SessionProperties,
    ::testing::Values(SessionCase{0.5, 0.5}, SessionCase{1.0, 0.1},
                      SessionCase{1.0, 0.5}, SessionCase{1.0, 0.9},
                      SessionCase{2.0, 0.3}, SessionCase{4.0, 0.5},
                      SessionCase{8.0, 0.7}, SessionCase{16.0, 0.5}));

// ------------------------------------------------ relay-policy invariants --

struct RelayCase {
  int n_aux;
  double ps;    // p(src -> aux)
  double psd;   // p(src -> dst)
  double pd;    // p(dst -> aux)
  double pbd;   // p(aux -> dst)
};

class RelayProperties : public ::testing::TestWithParam<RelayCase> {
 protected:
  core::PabTable build_table(const RelayCase& c) {
    core::PabTable pab(sim::NodeId(0), 10, 0.5);
    std::vector<mac::ProbReport> reports;
    const sim::NodeId src(100), dst(101);
    const int own_beacons = static_cast<int>(c.ps * 10.0 + 0.5);
    for (int k = 0; k < own_beacons; ++k)
      pab.note_beacon(src, Time::millis(k * 10.0));
    const int dst_beacons = static_cast<int>(c.pd * 10.0 + 0.5);
    for (int k = 0; k < dst_beacons; ++k)
      pab.note_beacon(dst, Time::millis(k * 10.0 + 1.0));
    pab.tick_second(Time::seconds(1.0));
    for (int i = 1; i < c.n_aux; ++i) {
      reports.push_back({src, sim::NodeId(i), c.ps});
      reports.push_back({dst, sim::NodeId(i), c.pd});
      reports.push_back({sim::NodeId(i), dst, c.pbd});
    }
    reports.push_back({sim::NodeId(0), dst, c.pbd});
    reports.push_back({src, dst, c.psd});
    pab.fold_reports(reports, Time::seconds(1.0));
    return pab;
  }

  core::RelayContext context(const core::PabTable& pab, int n_aux,
                             sim::NodeId self) {
    core::RelayContext ctx;
    ctx.self = self;
    ctx.src = sim::NodeId(100);
    ctx.dst = sim::NodeId(101);
    for (int i = 0; i < n_aux; ++i) ctx.auxiliaries.push_back(sim::NodeId(i));
    ctx.pab = &pab;
    ctx.now = Time::seconds(1.0);
    return ctx;
  }
};

TEST_P(RelayProperties, AllVariantsYieldValidProbabilities) {
  const RelayCase c = GetParam();
  const core::PabTable pab = build_table(c);
  for (const auto variant :
       {core::RelayVariant::ViFi, core::RelayVariant::NoG1,
        core::RelayVariant::NoG2, core::RelayVariant::NoG3}) {
    const core::RelayContext ctx = context(pab, c.n_aux, sim::NodeId(0));
    const double r = core::relay_probability(ctx, variant);
    EXPECT_GE(r, 0.0) << core::to_string(variant);
    EXPECT_LE(r, 1.0) << core::to_string(variant);
  }
}

TEST_P(RelayProperties, ViFiExpectedRelaysIsOneUnlessClamped) {
  const RelayCase c = GetParam();
  const core::PabTable pab = build_table(c);
  double expectation = 0.0;
  bool clamped = false;
  for (int i = 0; i < c.n_aux; ++i) {
    core::RelayContext ctx = context(pab, c.n_aux, sim::NodeId(i));
    const double ci = core::contention_probability(ctx, sim::NodeId(i));
    const double ri = core::relay_probability(ctx, core::RelayVariant::ViFi);
    if (ri >= 1.0) clamped = true;
    expectation += ci * ri;
  }
  if (!clamped) {
    // Gossip-vs-own-estimate asymmetry at B0 makes the sum approximate.
    EXPECT_NEAR(expectation, 1.0, 0.15);
  } else {
    EXPECT_LE(expectation, 1.0 + 1e-9);
  }
}

TEST_P(RelayProperties, ContentionDecreasesWithAckAudibility) {
  const RelayCase c = GetParam();
  const core::PabTable pab = build_table(c);
  core::RelayContext ctx = context(pab, c.n_aux, sim::NodeId(0));
  const double base = core::contention_probability(ctx, sim::NodeId(0));
  // c_i = ps * (1 - psd * pd): must always lie in [ps*(1-psd), ps].
  const double ps = std::max(c.ps, 0.05);
  EXPECT_LE(base, ps + 1e-9);
  EXPECT_GE(base, ps * (1.0 - c.psd) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    ParameterSweep, RelayProperties,
    ::testing::Values(RelayCase{1, 0.8, 0.5, 0.5, 0.6},
                      RelayCase{2, 0.8, 0.5, 0.5, 0.6},
                      RelayCase{3, 0.6, 0.3, 0.2, 0.4},
                      RelayCase{5, 0.9, 0.7, 0.6, 0.8},
                      RelayCase{8, 0.5, 0.2, 0.3, 0.3},
                      RelayCase{12, 0.7, 0.5, 0.4, 0.5},
                      RelayCase{4, 0.3, 0.1, 0.1, 0.2},
                      RelayCase{6, 1.0, 0.9, 0.9, 0.9}));

// -------------------------------------------------- two-state CTMC sweep --

struct MarkovCase {
  double mean_on_s;
  double mean_off_s;
};

class MarkovProperties : public ::testing::TestWithParam<MarkovCase> {};

TEST_P(MarkovProperties, LongRunFractionMatchesStationary) {
  const auto [on_s, off_s] = GetParam();
  channel::TwoStateProcess p = channel::TwoStateProcess::stationary(
      Time::seconds(on_s), Time::seconds(off_s), Rng(99));
  int on = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (p.on_at(Time::millis(20.0 * i))) ++on;
  const double expected = on_s / (on_s + off_s);
  EXPECT_NEAR(static_cast<double>(on) / n, expected, 0.05);
}

INSTANTIATE_TEST_SUITE_P(SojournSweep, MarkovProperties,
                         ::testing::Values(MarkovCase{1.0, 1.0},
                                           MarkovCase{0.5, 4.0},
                                           MarkovCase{4.0, 0.5},
                                           MarkovCase{2.0, 8.0},
                                           MarkovCase{10.0, 50.0}));

// ------------------------------------------------------------- CDF sweep --

class CdfProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CdfProperties, QuantileAndFractionAreConsistent) {
  Rng rng(GetParam());
  Cdf cdf;
  for (int i = 0; i < 300; ++i)
    cdf.add(rng.uniform(0.0, 100.0), rng.uniform(0.5, 2.0));
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double v = cdf.quantile(q);
    // At the q-quantile, at least q of the weight lies at or below v.
    EXPECT_GE(cdf.fraction_at_or_below(v), q - 1e-9);
  }
  EXPECT_NEAR(cdf.fraction_at_or_below(1000.0), 1.0, 1e-12);
}

TEST_P(CdfProperties, MonotoneInX) {
  Rng rng(GetParam() + 1000);
  Cdf cdf;
  for (int i = 0; i < 200; ++i) cdf.add(rng.normal(50.0, 20.0));
  double prev = -1.0;
  for (double x = -20.0; x <= 120.0; x += 2.5) {
    const double y = cdf.fraction_at_or_below(x);
    EXPECT_GE(y, prev - 1e-12);
    prev = y;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdfProperties,
                         ::testing::Values(1, 2, 3, 4, 5));

// ----------------------------------------------------- TCP delivery sweep --

struct TcpCase {
  std::int64_t bytes;
  int drop_every;  ///< Drop every n-th transport send (0 = none).
};

/// Loopback transport that drops deterministically.
class DroppyTransport final : public apps::Transport {
 public:
  explicit DroppyTransport(sim::Simulator& sim, int drop_every)
      : sim_(sim), drop_every_(drop_every) {}

  void send(net::Direction dir, int bytes, int flow, std::uint64_t app_seq,
            net::AppPayload data) override {
    ++count_;
    if (drop_every_ > 0 && count_ % drop_every_ == 0) return;
    auto p = factory_.make(dir, sim::NodeId(0), sim::NodeId(1), bytes,
                           sim_.now(), flow, app_seq, std::move(data));
    sim_.schedule(Time::millis(5), [this, p] {
      const auto it = handlers_.find(p->flow);
      if (it != handlers_.end()) it->second(p);
    });
  }
  void subscribe(int flow, Handler handler) override {
    handlers_[flow] = std::move(handler);
  }
  void unsubscribe(int flow) override { handlers_.erase(flow); }
  Time now() const override { return sim_.now(); }

 private:
  sim::Simulator& sim_;
  int drop_every_;
  int count_ = 0;
  net::PacketFactory factory_;
  std::map<int, Handler> handlers_;
};

class TcpProperties : public ::testing::TestWithParam<TcpCase> {};

TEST_P(TcpProperties, TransfersCompleteExactly) {
  const auto [bytes, drop_every] = GetParam();
  sim::Simulator sim;
  DroppyTransport link(sim, drop_every);
  apps::TcpTransfer xfer(sim, link, 1, net::Direction::Downstream, bytes);
  xfer.start();
  sim.run_until(Time::seconds(120.0));
  ASSERT_TRUE(xfer.complete())
      << "bytes=" << bytes << " drop_every=" << drop_every;
  EXPECT_EQ(xfer.bytes_acked(), bytes);
  if (drop_every == 0) {
    EXPECT_EQ(xfer.retransmissions(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizeAndLossSweep, TcpProperties,
    ::testing::Values(TcpCase{100, 0}, TcpCase{1200, 0}, TcpCase{1201, 0},
                      TcpCase{10 * 1024, 0}, TcpCase{100 * 1024, 0},
                      TcpCase{10 * 1024, 7}, TcpCase{10 * 1024, 4},
                      TcpCase{100 * 1024, 9}, TcpCase{3 * 1024, 3}));

// --------------------------------------------------------- TraceLossModel --

class ScheduleProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScheduleProperties, EmpiricalRateTracksSchedule) {
  Rng rng(GetParam());
  channel::TraceLossModel model(Rng(GetParam() + 1));
  std::vector<double> rates;
  for (int sec = 0; sec < 5; ++sec) {
    const double loss = rng.uniform(0.0, 1.0);
    rates.push_back(loss);
    model.set_loss_rate(sim::NodeId(0), sim::NodeId(1), sec, loss);
  }
  for (int sec = 0; sec < 5; ++sec) {
    int got = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
      const Time t = Time::seconds(sec) + Time::micros(200 * i);
      if (model.sample_delivery(sim::NodeId(0), sim::NodeId(1), t)) ++got;
    }
    EXPECT_NEAR(static_cast<double>(got) / n, 1.0 - rates[static_cast<std::size_t>(sec)],
                0.04);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleProperties,
                         ::testing::Values(11, 22, 33));

// ------------------------------------------------------------ time sweep --

class TimeProperties : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(TimeProperties, ArithmeticRoundTrips) {
  const std::int64_t us = GetParam();
  const Time t = Time::micros(us);
  EXPECT_EQ(Time::seconds(t.to_seconds()).to_micros(), us);
  EXPECT_EQ((t + Time::zero()), t);
  EXPECT_EQ((t - t), Time::zero());
  EXPECT_EQ((t * 2.0) / 2.0, t);
}

INSTANTIATE_TEST_SUITE_P(Values, TimeProperties,
                         ::testing::Values(0, 1, -1, 999, 1'000'000,
                                           -5'000'000, 123'456'789));

}  // namespace
}  // namespace vifi
