// Tests for the slab-allocated packet pool behind PacketFactory /
// PacketRef: id uniqueness across slot reuse, reuse-after-free protection
// via generations, refcount lifetime, slab address stability, and payload
// hygiene. The behavioural guarantee that the pooled allocator changes
// nothing observable (byte-identical sweep output vs. the shared_ptr era,
// for any thread count) is enforced by the runtime determinism tests and
// the CI sweep smoke test.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "net/packet.h"

namespace vifi::net {
namespace {

using sim::NodeId;

PacketRef make(PacketFactory& f, int bytes = 100) {
  return f.make(Direction::Upstream, NodeId(1), NodeId(2), bytes,
                Time::zero());
}

TEST(PacketPool, IdsStayUniqueAcrossPooledReuse) {
  PacketFactory factory;
  std::set<std::uint64_t> ids;
  // Churn far more packets than live slots so slots are recycled heavily.
  for (int round = 0; round < 100; ++round) {
    std::vector<PacketRef> batch;
    for (int i = 0; i < 50; ++i) {
      batch.push_back(make(factory));
      EXPECT_TRUE(ids.insert(batch.back()->id).second)
          << "duplicate id from a recycled slot";
    }
  }
  EXPECT_EQ(ids.size(), 5000u);
  EXPECT_EQ(factory.packets_created(), 5000u);
  // Reuse actually happened: the high-water mark is one batch, not 5000.
  EXPECT_LE(factory.pool().capacity(), 50u);
  EXPECT_EQ(factory.pool().live(), 0u);
}

TEST(PacketPool, RefcountKeepsPacketAlive) {
  PacketFactory factory;
  PacketRef a = make(factory, 123);
  PacketRef b = a;        // copy bumps the refcount
  PacketRef c = std::move(a);
  EXPECT_EQ(a, nullptr);  // moved-from is empty
  EXPECT_EQ(factory.pool().live(), 1u);
  EXPECT_EQ(b->bytes, 123);
  EXPECT_EQ(b, c);  // identity: same pooled packet
  b = nullptr;
  EXPECT_EQ(factory.pool().live(), 1u);  // c still holds it
  EXPECT_EQ(c->bytes, 123);
  c = nullptr;
  EXPECT_EQ(factory.pool().live(), 0u);
}

TEST(PacketPool, ViewDetectsReuseAfterFree) {
  PacketFactory factory;
  PacketRef p = make(factory);
  const std::uint64_t first_id = p->id;
  PacketView view(p);
  ASSERT_TRUE(view.alive());
  EXPECT_EQ(view.try_get()->id, first_id);

  p = nullptr;  // slot freed; generation bumped
  EXPECT_FALSE(view.alive());
  EXPECT_EQ(view.try_get(), nullptr);

  // The freed slot is recycled for the next packet; the stale view must
  // not resurrect or observe the new occupant.
  PacketRef q = make(factory);
  EXPECT_LE(factory.pool().capacity(), 1u);  // same slot reused
  EXPECT_NE(q->id, first_id);
  EXPECT_FALSE(view.alive());
  EXPECT_EQ(view.try_get(), nullptr);
  PacketView fresh(q);
  EXPECT_TRUE(fresh.alive());
}

TEST(PacketPool, SlabAddressesAreStableUnderGrowth) {
  PacketFactory factory;
  std::vector<PacketRef> live;
  live.push_back(make(factory, 7));
  const Packet* first = live.front().get();
  // Grow well past several slab boundaries while the first packet is live.
  for (int i = 0; i < 5000; ++i) live.push_back(make(factory));
  EXPECT_GE(factory.pool().capacity(), 5001u);
  EXPECT_EQ(live.front().get(), first) << "slab growth moved a live packet";
  EXPECT_EQ(first->bytes, 7);
}

TEST(PacketPool, HandlesKeepSlabsAliveAfterFactoryDies) {
  auto factory = std::make_unique<PacketFactory>();
  PacketRef p = factory->make(Direction::Downstream, NodeId(3), NodeId(4),
                              77, Time::zero());
  factory.reset();  // pool object gone; slabs pinned by the handle
  EXPECT_EQ(p->bytes, 77);
  EXPECT_EQ(p->src, NodeId(3));
  p = nullptr;  // last handle releases the core
}

TEST(PacketPool, ViewOutlivesFactoryAndAllRefs) {
  // A view pins the pool's slab memory (not any packet): observing after
  // the factory and every owning ref are gone must answer "not alive"
  // rather than touch freed memory.
  PacketView view;
  {
    PacketFactory factory;
    PacketRef p = make(factory);
    view = PacketView(p);
    ASSERT_TRUE(view.alive());
  }  // ref released, then factory destroyed
  EXPECT_FALSE(view.alive());
  EXPECT_EQ(view.try_get(), nullptr);
  PacketView copy = view;  // copies of stale views are equally inert
  EXPECT_EQ(copy.try_get(), nullptr);
}

TEST(PacketPool, RecycledSlotCarriesNoStalePayload) {
  PacketFactory factory;
  TcpSegmentData seg;
  seg.kind = TcpSegmentData::Kind::Data;
  seg.seq = 4242;
  seg.len = 1200;
  PacketRef p = factory.make(Direction::Upstream, NodeId(1), NodeId(2), 1200,
                             Time::zero(), 0, 0, seg);
  ASSERT_NE(std::get_if<TcpSegmentData>(&p->app_data), nullptr);
  p = nullptr;

  // Reuses the same slot; a default make() must see an empty payload.
  PacketRef q = make(factory);
  EXPECT_LE(factory.pool().capacity(), 1u);
  EXPECT_TRUE(std::holds_alternative<std::monostate>(q->app_data));
}

TEST(PacketPool, NullHandleSemantics) {
  PacketRef null;
  EXPECT_FALSE(static_cast<bool>(null));
  EXPECT_EQ(null, nullptr);
  EXPECT_EQ(null.get(), nullptr);
  PacketFactory factory;
  PacketRef p = make(factory);
  EXPECT_NE(p, nullptr);
  EXPECT_NE(p, null);
  p = PacketRef{};
  EXPECT_EQ(p, nullptr);
  EXPECT_EQ(factory.pool().live(), 0u);
}

TEST(PacketPool, SelfAssignmentIsSafe) {
  PacketFactory factory;
  PacketRef p = make(factory, 55);
  PacketRef& alias = p;
  p = alias;  // copy self-assignment
  EXPECT_EQ(p->bytes, 55);
  EXPECT_EQ(factory.pool().live(), 1u);
  p = std::move(alias);  // move self-assignment
  EXPECT_EQ(p->bytes, 55);
  EXPECT_EQ(factory.pool().live(), 1u);
}

}  // namespace
}  // namespace vifi::net
