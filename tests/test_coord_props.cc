// CoordTier property harness (ctest label `props`): 1000 seeded random
// contact schedules driven straight through the ConnectivityManager,
// asserting the invariants the tier is built on —
//   (a) sweep output with the coord axis on is byte-identical across
//       thread counts,
//   (b) no client ever holds two live anchors (the transition stream per
//       client is one connected chain, and anchors only exist in
//       associated phases),
//   (c) relays are suppressed only inside live confident-prediction
//       windows, and
//   (d) the manager's counters reconcile exactly with TripScope's
//       per-kind event counts.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "coord/manager.h"
#include "coord/state.h"
#include "core/config.h"
#include "obs/event.h"
#include "obs/recorder.h"
#include "runtime/runner.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace vifi::coord {
namespace {

using P = ClientPhase;
using E = CoordEvent;
using sim::NodeId;

constexpr int kSchedules = 1000;

bool associated_phase(P p) {
  return p == P::Associated || p == P::PredictedHandoff || p == P::HandedOff;
}

/// Drives one random contact schedule through a manager and checks the
/// per-step invariants; the caller reconciles the aggregate counts.
void drive_schedule(std::uint64_t seed, sim::Simulator& sim,
                    ConnectivityManager& mgr) {
  Rng rng(seed);
  const std::vector<NodeId> bses{NodeId(10), NodeId(11), NodeId(12),
                                 NodeId(13)};
  const std::vector<NodeId> vehicles{NodeId(1), NodeId(2)};
  const int steps = static_cast<int>(rng.uniform_int(40, 120));
  for (int step = 0; step < steps; ++step) {
    // Monotonic clock, sometimes jumping far enough for a timeout.
    const double dt =
        rng.bernoulli(0.08) ? rng.uniform(4.0, 9.0) : rng.uniform(0.2, 1.5);
    sim.run_until(sim.now() + Time::seconds(dt));
    const NodeId veh =
        vehicles[static_cast<std::size_t>(rng.uniform_int(0, 1))];
    // A beacon names a random anchor, no anchor at all, or is missed.
    if (!rng.bernoulli(0.15)) {
      const NodeId anchor =
          rng.bernoulli(0.2)
              ? NodeId{}
              : bses[static_cast<std::size_t>(rng.uniform_int(0, 3))];
      const NodeId observer =
          bses[static_cast<std::size_t>(rng.uniform_int(0, 3))];
      mgr.on_beacon(observer, veh, anchor);
      if (rng.bernoulli(0.3)) mgr.on_beacon(observer, veh, anchor);  // dupes
    }
    if (rng.bernoulli(0.4)) mgr.tick(sim.now());

    // (c) suppression decisions: true only inside a live confident window,
    // and never for the anchor or the predicted successor.
    const NodeId aux = bses[static_cast<std::size_t>(rng.uniform_int(0, 3))];
    const P phase_before = mgr.phase(veh);
    const NodeId anchor_before = mgr.anchor(veh);
    const NodeId predicted_before = mgr.predicted(veh);
    const double confidence_before = mgr.confidence(veh);
    const bool suppressed = mgr.suppress_relay(aux, veh);
    if (suppressed) {
      EXPECT_EQ(phase_before, P::PredictedHandoff);
      EXPECT_GE(confidence_before, mgr.params().min_confidence);
      EXPECT_NE(aux, anchor_before);
      EXPECT_NE(aux, predicted_before);
    }

    for (const NodeId v : vehicles) {
      // (b) a live anchor exists exactly in the associated phases; a
      // prediction only inside its window, above the confidence floor.
      EXPECT_EQ(mgr.anchor(v).valid(), associated_phase(mgr.phase(v)));
      if (mgr.phase(v) == P::PredictedHandoff) {
        EXPECT_TRUE(mgr.predicted(v).valid());
        EXPECT_NE(mgr.predicted(v), mgr.anchor(v));
        EXPECT_GE(mgr.confidence(v), mgr.params().min_confidence);
      } else {
        EXPECT_FALSE(mgr.predicted(v).valid());
      }
    }
  }
}

TEST(CoordProps, RandomSchedulesKeepEveryInvariant) {
  for (std::uint64_t seed = 1; seed <= kSchedules; ++seed) {
    // Roomy rings: every transition is retained, so the reconciliation
    // below sees the complete stream.
    obs::TraceRecorder recorder(1 << 16);
    obs::TraceScope scope(recorder);
    sim::Simulator sim;
    core::CoordParams params;
    params.enabled = true;
    // A slice of seeds runs with offline history and a lower floor, so
    // prediction windows (and suppressions) are actually exercised.
    if (seed % 2 == 0) {
      params.history = {{10, 11, 4}, {11, 12, 4}, {12, 13, 3}, {13, 10, 3}};
      params.min_confidence = 0.4;
    }
    ConnectivityManager mgr(sim, params);
    ASSERT_NO_THROW(drive_schedule(seed, sim, mgr)) << "seed " << seed;

    // (d) counters reconcile exactly with TripScope's per-kind counts.
    ASSERT_EQ(mgr.transitions(),
              recorder.count(obs::EventKind::CoordTransition))
        << "seed " << seed;
    ASSERT_EQ(mgr.prestages(), recorder.count(obs::EventKind::CoordPrestage))
        << "seed " << seed;
    ASSERT_EQ(mgr.suppressed_relays(),
              recorder.count(obs::EventKind::CoordSuppress))
        << "seed " << seed;
    ASSERT_EQ(recorder.dropped(), 0u) << "seed " << seed;

    // (b) replay the recorded transition stream per client: it must form
    // one connected chain from Idle (every transition leaves the phase the
    // previous one entered), so a client can never hold two live anchors —
    // entering an anchored phase always passes through the machine.
    std::map<int, P> replayed;
    std::uint64_t transition_events = 0;
    for (const obs::TraceEvent& e : recorder.merged()) {
      if (e.kind != obs::EventKind::CoordTransition) continue;
      ++transition_events;
      const auto event = static_cast<E>(e.c >> 8);
      const auto from = static_cast<P>((e.c >> 4) & 0xF);
      const auto to = static_cast<P>(e.c & 0xF);
      P& phase = replayed.try_emplace(e.node.value(), P::Idle).first->second;
      ASSERT_EQ(phase, from) << "seed " << seed;
      const auto expected = next_phase(from, event);
      ASSERT_TRUE(expected.has_value()) << "seed " << seed;
      ASSERT_EQ(*expected, to) << "seed " << seed;
      phase = to;
    }
    ASSERT_EQ(transition_events, mgr.transitions()) << "seed " << seed;
    for (const auto& [vehicle, phase] : replayed)
      ASSERT_EQ(phase, mgr.phase(NodeId(vehicle))) << "seed " << seed;
  }
}

// (c) in aggregate: every recorded suppression carries the confidence of
// its window, which can never undercut the configured floor.
TEST(CoordProps, SuppressionEventsNeverUndercutTheConfidenceFloor) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    obs::TraceRecorder recorder(1 << 16);
    obs::TraceScope scope(recorder);
    sim::Simulator sim;
    core::CoordParams params;
    params.enabled = true;
    params.history = {{10, 11, 4}, {11, 12, 4}, {12, 13, 3}, {13, 10, 3}};
    params.min_confidence = 0.4;
    ConnectivityManager mgr(sim, params);
    drive_schedule(seed, sim, mgr);
    for (const obs::TraceEvent& e : recorder.merged())
      if (e.kind == obs::EventKind::CoordSuppress)
        ASSERT_GE(e.a, params.min_confidence) << "seed " << seed;
  }
}

// (a) the sweep with the coordination axis on is a pure function of the
// spec: JSON and CSV bytes identical on 1 and 8 worker threads.
TEST(CoordProps, CoordSweepIsByteIdenticalAcrossThreadCounts) {
  runtime::ExperimentSpec spec;
  spec.grid.testbeds = {"VanLAN"};
  spec.grid.fleet_sizes = {2};
  spec.grid.policies = {"ViFi"};
  spec.grid.coordinations = {"pab", "coord"};
  spec.grid.seeds = {1, 2};
  spec.workload = "cbr";
  spec.days = 1;
  spec.trips_per_day = 1;
  spec.trip_duration = Time::seconds(20.0);

  const runtime::ResultSink one = runtime::Runner({.threads = 1}).run(spec);
  const runtime::ResultSink eight =
      runtime::Runner({.threads = 8}).run(spec);
  ASSERT_FALSE(one.any_errors()) << one.to_json();
  EXPECT_EQ(one.to_json(), eight.to_json());
  EXPECT_EQ(one.to_csv(), eight.to_csv());
  // The axis actually ran: coord and pab twins share their identity
  // columns but are distinct points.
  EXPECT_EQ(one.ordered().size(), 4u);
  EXPECT_EQ(one.ordered()[0].coordination, "pab");
  EXPECT_EQ(one.ordered()[2].coordination, "coord");
}

}  // namespace
}  // namespace vifi::coord
