// Unit tests for the six §3.1 handoff policies and the trace replayer.

#include <gtest/gtest.h>

#include "handoff/policies.h"
#include "handoff/replay.h"
#include "trace/observations.h"

namespace vifi::handoff {
namespace {

using sim::NodeId;
using trace::BeaconObs;
using trace::MeasurementTrace;
using trace::ProbeSlot;

/// Builds a trace where BS0 is strong for the first half of the trip and
/// BS1 for the second half; beacons and probes agree.
MeasurementTrace two_phase_trace(int seconds = 10) {
  MeasurementTrace t;
  t.testbed = "synthetic";
  t.duration = Time::seconds(seconds);
  t.beacons_per_second = 10;
  t.bs_ids = {NodeId(0), NodeId(1)};
  for (int s = 0; s < seconds; ++s) {
    const NodeId good = s < seconds / 2 ? NodeId(0) : NodeId(1);
    for (int i = 0; i < 10; ++i) {
      ProbeSlot slot;
      slot.t = Time::millis(s * 1000.0 + i * 100.0);
      // One 25 m grid cell per second of driving.
      slot.vehicle_pos = {s * 30.0, 0.0};
      slot.down_heard = {good};
      slot.up_heard_by = {good};
      t.slots.push_back(slot);
      t.vehicle_beacons.push_back(
          {slot.t + Time::millis(3.0), good,
           good == NodeId(0) ? -55.0 : -60.0});
    }
  }
  return t;
}

TEST(BrrPolicy, TracksTheStrongBs) {
  MeasurementTrace t = two_phase_trace(10);
  BrrPolicy policy;
  policy.begin_trip(t);
  // Early in the trip: associated with BS0 (after a warm-up second).
  EXPECT_EQ(policy.associate(25), NodeId(0));
  // Late in the trip: must have switched to BS1.
  EXPECT_EQ(policy.associate(95), NodeId(1));
}

TEST(BrrPolicy, ReplayDeliversNearlyEverything) {
  // With one clearly best BS at all times, BRR should deliver almost all
  // packets except around the switch.
  MeasurementTrace t = two_phase_trace(10);
  BrrPolicy policy;
  const auto outcomes = replay_hard_handoff(t, policy);
  const auto delivered = packets_delivered(outcomes);
  // Loses only the warm-up second and the second around the switch.
  EXPECT_GE(delivered, 2 * 75);
  EXPECT_LE(delivered, 2 * 100);
}

TEST(RssiPolicy, PrefersStrongerSignal) {
  // 20 s trace: the first-half BS (stronger RSSI while alive) must be
  // dropped once its beacons go stale, despite its higher average.
  MeasurementTrace t = two_phase_trace(20);
  RssiPolicy policy;
  policy.begin_trip(t);
  EXPECT_EQ(policy.associate(60), NodeId(0));
  EXPECT_EQ(policy.associate(195), NodeId(1));
}

TEST(RssiPolicy, StaleBsesAreNotCandidates) {
  // BS0 beacons only in the first second, then silence; a fresh BS1
  // appears later. RSSI must not cling to the stale BS0 estimate.
  MeasurementTrace t;
  t.duration = Time::seconds(10.0);
  t.beacons_per_second = 10;
  t.bs_ids = {NodeId(0), NodeId(1)};
  for (int i = 0; i < 10; ++i) {
    t.vehicle_beacons.push_back({Time::millis(i * 10.0), NodeId(0), -40.0});
    ProbeSlot s;
    s.t = Time::millis(i * 100.0);
    t.slots.push_back(s);
  }
  for (int s = 1; s < 10; ++s)
    for (int i = 0; i < 10; ++i) {
      ProbeSlot slot;
      slot.t = Time::millis(s * 1000.0 + i * 100.0);
      t.slots.push_back(slot);
      if (s >= 7)
        t.vehicle_beacons.push_back(
            {slot.t + Time::millis(1.0), NodeId(1), -80.0});
    }
  RssiPolicy policy;
  policy.begin_trip(t);
  EXPECT_EQ(policy.associate(99), NodeId(1));  // weak but fresh beats stale
}

TEST(StickyPolicy, HoldsThroughShortSilence) {
  // BS0 goes silent for 2 s (shorter than the 3 s threshold): Sticky must
  // not switch.
  MeasurementTrace t;
  t.duration = Time::seconds(8.0);
  t.beacons_per_second = 10;
  t.bs_ids = {NodeId(0), NodeId(1)};
  for (int s = 0; s < 8; ++s)
    for (int i = 0; i < 10; ++i) {
      ProbeSlot slot;
      slot.t = Time::millis(s * 1000.0 + i * 100.0);
      t.slots.push_back(slot);
      const bool bs0_silent = s >= 3 && s < 5;
      if (!bs0_silent)
        t.vehicle_beacons.push_back({slot.t, NodeId(0), -50.0});
      t.vehicle_beacons.push_back({slot.t, NodeId(1), -65.0});
    }
  StickyPolicy policy;
  policy.begin_trip(t);
  EXPECT_EQ(policy.associate(20), NodeId(0));
  EXPECT_EQ(policy.associate(45), NodeId(0));  // silent but within 3 s
  EXPECT_EQ(policy.associate(70), NodeId(0));  // came back
}

TEST(StickyPolicy, SwitchesAfterLongSilence) {
  MeasurementTrace t;
  t.duration = Time::seconds(10.0);
  t.beacons_per_second = 10;
  t.bs_ids = {NodeId(0), NodeId(1)};
  for (int s = 0; s < 10; ++s)
    for (int i = 0; i < 10; ++i) {
      ProbeSlot slot;
      slot.t = Time::millis(s * 1000.0 + i * 100.0);
      t.slots.push_back(slot);
      if (s < 2) t.vehicle_beacons.push_back({slot.t, NodeId(0), -50.0});
      t.vehicle_beacons.push_back({slot.t, NodeId(1), -65.0});
    }
  StickyPolicy policy;
  policy.begin_trip(t);
  EXPECT_EQ(policy.associate(15), NodeId(0));
  EXPECT_EQ(policy.associate(90), NodeId(1));  // switched after 3 s silence
}

TEST(BestBsPolicy, PicksTheOracleBest) {
  MeasurementTrace t = two_phase_trace(10);
  BestBsPolicy policy;
  policy.begin_trip(t);
  // No warm-up needed: it reads the future.
  EXPECT_EQ(policy.associate(0), NodeId(0));
  EXPECT_EQ(policy.associate(99), NodeId(1));
}

TEST(BestBsPolicy, UpperBoundsPracticalPolicies) {
  const MeasurementTrace t = two_phase_trace(20);
  BestBsPolicy best;
  BrrPolicy brr;
  StickyPolicy sticky;
  const auto d_best = packets_delivered(replay_hard_handoff(t, best));
  const auto d_brr = packets_delivered(replay_hard_handoff(t, brr));
  const auto d_sticky = packets_delivered(replay_hard_handoff(t, sticky));
  EXPECT_GE(d_best, d_brr);
  EXPECT_GE(d_best, d_sticky);
}

TEST(HistoryPolicy, UsesPreviousDayAtSameLocation) {
  // Day 0 and day 1 have identical geometry; History on day 1 should pick
  // the per-location winner instantly (no warm-up lag).
  trace::Campaign campaign;
  campaign.trips.push_back(two_phase_trace(10));
  campaign.trips[0].day = 0;
  MeasurementTrace day1 = two_phase_trace(10);
  day1.day = 1;
  campaign.trips.push_back(day1);

  HistoryPolicy policy(campaign);
  policy.begin_trip(campaign.trips[1]);
  EXPECT_EQ(policy.associate(5), NodeId(0));  // immediately correct
  EXPECT_EQ(policy.associate(95), NodeId(1));
}

TEST(AllBses, UnionDeliversEverythingAnyBsGot) {
  MeasurementTrace t = two_phase_trace(6);
  // Damage BS-specific reception: remove BS0 from one slot's down list.
  t.slots[5].down_heard.clear();
  const auto outcomes = replay_allbses(t);
  EXPECT_FALSE(outcomes[5].down);
  EXPECT_TRUE(outcomes[6].down);
  const auto delivered = packets_delivered(outcomes);
  EXPECT_EQ(delivered, 2 * 60 - 1);
}

TEST(AllBses, DominatesEveryHardHandoffPolicy) {
  const MeasurementTrace t = two_phase_trace(20);
  const auto d_all = packets_delivered(replay_allbses(t));
  BestBsPolicy best;
  EXPECT_GE(d_all, packets_delivered(replay_hard_handoff(t, best)));
}

TEST(AllBses, RestrictedToKBses) {
  // With the per-second best-k restriction, k = 1 equals BestBS-like
  // behaviour and k = all equals the full union.
  const MeasurementTrace t = two_phase_trace(10);
  const auto d1 = packets_delivered(replay_allbses(t, 1));
  const auto d2 = packets_delivered(replay_allbses(t, 2));
  const auto dall = packets_delivered(replay_allbses(t));
  EXPECT_LE(d1, d2);
  EXPECT_EQ(d2, dall);  // only two BSes exist
}

TEST(Replay, UnassociatedSlotsDeliverNothing) {
  MeasurementTrace t = two_phase_trace(4);
  // A policy that never associates.
  class NullPolicy final : public HandoffPolicy {
   public:
    std::string name() const override { return "null"; }
    void begin_trip(const MeasurementTrace&) override {}
    NodeId associate(std::size_t) override { return NodeId{}; }
  } null_policy;
  EXPECT_EQ(packets_delivered(replay_hard_handoff(t, null_policy)), 0);
}

}  // namespace
}  // namespace vifi::handoff
