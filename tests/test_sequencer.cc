// Unit tests for the §4.7 in-order delivery buffer.

#include <gtest/gtest.h>

#include <vector>

#include "core/sequencer.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "util/contracts.h"

namespace vifi::core {
namespace {

class SequencerTest : public ::testing::Test {
 protected:
  SequencerTest()
      : seq_(sim_, Time::millis(50), [this](const net::PacketRef& p) {
          delivered_.push_back(p->app_seq);
        }) {}

  net::PacketRef packet(std::uint64_t id) {
    return factory_.make(net::Direction::Upstream, sim::NodeId(1),
                         sim::NodeId(2), 100, sim_.now(), 0, id);
  }

  net::PacketFactory factory_;
  sim::Simulator sim_;
  std::vector<std::uint64_t> delivered_;
  Sequencer seq_;
};

TEST_F(SequencerTest, InOrderStreamsPassThrough) {
  for (std::uint64_t s = 1; s <= 5; ++s) seq_.push(s, packet(100 + s));
  EXPECT_EQ(delivered_,
            (std::vector<std::uint64_t>{101, 102, 103, 104, 105}));
  EXPECT_EQ(seq_.buffered(), 0u);
}

TEST_F(SequencerTest, ReordersASwappedPair) {
  seq_.push(1, packet(11));
  seq_.push(3, packet(13));  // 2 missing: held
  EXPECT_EQ(delivered_, (std::vector<std::uint64_t>{11}));
  EXPECT_EQ(seq_.buffered(), 1u);
  seq_.push(2, packet(12));
  EXPECT_EQ(delivered_, (std::vector<std::uint64_t>{11, 12, 13}));
}

TEST_F(SequencerTest, GapTimesOutAndStreamContinues) {
  seq_.push(1, packet(11));
  seq_.push(3, packet(13));
  sim_.run_until(Time::millis(100));  // hold (50 ms) expires
  EXPECT_EQ(delivered_, (std::vector<std::uint64_t>{11, 13}));
  // The stream keeps flowing in order afterwards.
  seq_.push(4, packet(14));
  EXPECT_EQ(delivered_.back(), 14u);
}

TEST_F(SequencerTest, LatePredecessorDeliversImmediately) {
  seq_.push(2, packet(12));
  sim_.run_until(Time::millis(100));  // give up on seq 1
  EXPECT_EQ(delivered_, (std::vector<std::uint64_t>{12}));
  seq_.push(1, packet(11));  // finally shows up (e.g. very late relay)
  EXPECT_EQ(delivered_, (std::vector<std::uint64_t>{12, 11}));
  EXPECT_EQ(seq_.buffered(), 0u);
}

TEST_F(SequencerTest, MultipleGapsReleaseInOrderOnTimeout) {
  seq_.push(2, packet(12));
  seq_.push(5, packet(15));
  seq_.push(4, packet(14));
  EXPECT_TRUE(delivered_.empty());
  sim_.run_until(Time::millis(200));
  EXPECT_EQ(delivered_, (std::vector<std::uint64_t>{12, 14, 15}));
}

TEST_F(SequencerTest, PrefixReleaseAfterPartialTimeout) {
  seq_.push(1, packet(11));
  EXPECT_EQ(delivered_.size(), 1u);
  sim_.run_until(Time::millis(30));
  seq_.push(3, packet(13));  // waits for 2
  sim_.run_until(Time::millis(60));
  EXPECT_EQ(delivered_.size(), 1u);  // 13 still inside its hold window
  sim_.run_until(Time::millis(100));
  EXPECT_EQ(delivered_, (std::vector<std::uint64_t>{11, 13}));
}

TEST_F(SequencerTest, HoldBoundsDelay) {
  // A held packet is never delayed more than `hold`.
  seq_.push(2, packet(12));
  const Time pushed = sim_.now();
  sim_.run();
  EXPECT_EQ(delivered_, (std::vector<std::uint64_t>{12}));
  EXPECT_LE(sim_.now() - pushed, Time::millis(51));
}

TEST_F(SequencerTest, DrainCancelsTheHoldTimer) {
  // Regression: after the gap fills and the buffer drains, the hold timer
  // used to stay armed (stale pending_/armed_at_) and fire a dead event
  // into the empty buffer.
  seq_.push(1, packet(11));
  seq_.push(3, packet(13));          // gap: timer armed for seq 3's hold
  EXPECT_EQ(sim_.pending_events(), 1u);
  seq_.push(2, packet(12));          // gap fills; 2 and 3 release in order
  EXPECT_EQ(delivered_, (std::vector<std::uint64_t>{11, 12, 13}));
  EXPECT_EQ(seq_.buffered(), 0u);
  // Cancel on drain: nothing left scheduled, and running the clock past
  // the old deadline executes no dead event.
  EXPECT_EQ(sim_.pending_events(), 0u);
  const std::uint64_t executed_before = sim_.events_executed();
  sim_.run_until(Time::millis(200));
  EXPECT_EQ(sim_.events_executed(), executed_before);
}

TEST_F(SequencerTest, ReArmsCleanlyAfterADrain) {
  // A fresh gap after a drain must arm a fresh timer with the new deadline
  // (nothing stale from the previous cycle).
  seq_.push(1, packet(11));
  seq_.push(3, packet(13));
  seq_.push(2, packet(12));  // drain; timer cancelled
  sim_.run_until(Time::millis(20));
  seq_.push(5, packet(15));  // new gap (4 missing)
  EXPECT_EQ(sim_.pending_events(), 1u);
  sim_.run();
  EXPECT_EQ(delivered_, (std::vector<std::uint64_t>{11, 12, 13, 15}));
  EXPECT_EQ(seq_.buffered(), 0u);
  // The hold expiry released 15; afterwards the timer is disarmed again.
  EXPECT_EQ(sim_.pending_events(), 0u);
}

TEST_F(SequencerTest, RejectsNullPacket) {
  EXPECT_THROW(seq_.push(1, nullptr), vifi::ContractViolation);
}

TEST(SequencerConfig, RejectsBadConstruction) {
  sim::Simulator sim;
  EXPECT_THROW(Sequencer(sim, Time::zero(), [](const net::PacketRef&) {}),
               vifi::ContractViolation);
  EXPECT_THROW(Sequencer(sim, Time::millis(1), nullptr),
               vifi::ContractViolation);
}

}  // namespace
}  // namespace vifi::core
