// Tests for the parallel experiment runtime: grid enumeration, seed
// derivation, thread-safe result aggregation, and — the core contract —
// byte-identical serialised output regardless of worker count.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <set>
#include <stdexcept>

#include "runtime/executor.h"
#include "runtime/runner.h"
#include "scenario/campaign.h"
#include "tracegen/catalog.h"
#include "util/contracts.h"

namespace vifi::runtime {
namespace {

ExperimentSpec small_replay_spec() {
  ExperimentSpec spec;
  spec.grid.testbeds = {"VanLAN"};
  spec.grid.policies = {"AllBSes", "BRR"};
  spec.grid.seeds = {1, 2};
  spec.days = 1;
  spec.trips_per_day = 1;
  spec.base_seed = 99;
  return spec;
}

TEST(ParamGrid, EnumeratesRowMajorWithDenseIndices) {
  ExperimentSpec spec;
  spec.grid.testbeds = {"VanLAN", "DieselNet-Ch1"};
  spec.grid.policies = {"BRR", "BestBS", "AllBSes"};
  spec.grid.seeds = {1, 2};
  const auto points = spec.enumerate();
  ASSERT_EQ(points.size(), 12u);
  EXPECT_EQ(points.size(), spec.grid.size());
  for (std::size_t i = 0; i < points.size(); ++i)
    EXPECT_EQ(points[i].index, i);
  // Row-major: seeds vary fastest, testbeds slowest.
  EXPECT_EQ(points[0].testbed, "VanLAN");
  EXPECT_EQ(points[0].policy, "BRR");
  EXPECT_EQ(points[0].seed, 1u);
  EXPECT_EQ(points[1].seed, 2u);
  EXPECT_EQ(points[2].policy, "BestBS");
  EXPECT_EQ(points[6].testbed, "DieselNet-Ch1");
}

TEST(ParamGrid, CampaignSeedIgnoresPolicyButPointSeedDoesNot) {
  ExperimentSpec spec;
  spec.grid.testbeds = {"VanLAN"};
  spec.grid.policies = {"BRR", "BestBS"};
  spec.grid.seeds = {7};
  const auto points = spec.enumerate();
  ASSERT_EQ(points.size(), 2u);
  // Policies are compared on the same campaign realisation...
  EXPECT_EQ(points[0].campaign_seed, points[1].campaign_seed);
  // ...but point-local streams must not collide across policies.
  EXPECT_NE(points[0].point_seed, points[1].point_seed);
}

TEST(ParamGrid, SeedsDifferAcrossAxes) {
  ExperimentSpec spec;
  spec.grid.testbeds = {"VanLAN", "DieselNet-Ch1", "DieselNet-Ch6"};
  spec.grid.policies = {"BRR"};
  spec.grid.seeds = {1, 2, 3, 4};
  std::set<std::uint64_t> campaign_seeds;
  for (const auto& p : spec.enumerate()) campaign_seeds.insert(p.campaign_seed);
  EXPECT_EQ(campaign_seeds.size(), 12u);
}

TEST(ParamGrid, FleetAxisEnumeratesBetweenTestbedAndPolicy) {
  ExperimentSpec spec;
  spec.grid.testbeds = {"VanLAN"};
  spec.grid.fleet_sizes = {1, 4};
  spec.grid.policies = {"ViFi", "BRR"};
  spec.grid.seeds = {1};
  const auto points = spec.enumerate();
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].fleet_size, 1);
  EXPECT_EQ(points[0].policy, "ViFi");
  EXPECT_EQ(points[1].policy, "BRR");
  EXPECT_EQ(points[2].fleet_size, 4);
  // Fleet-1 points keep the historical (base seed, testbed, seed)
  // derivation; larger fleets realise different campaigns.
  ExperimentSpec single = spec;
  single.grid.fleet_sizes = {1};
  EXPECT_EQ(points[0].campaign_seed, single.enumerate()[0].campaign_seed);
  EXPECT_NE(points[0].campaign_seed, points[2].campaign_seed);
}

TEST(MakeTestbed, FleetSizePropagatesToTheTestbed) {
  const scenario::Testbed bed = make_testbed("VanLAN", 3);
  EXPECT_EQ(bed.fleet_size(), 3);
  EXPECT_EQ(bed.vehicle_ids().size(), 3u);
}

TEST(MixSeed, DeterministicAndSensitive) {
  EXPECT_EQ(mix_seed(1, "abc"), mix_seed(1, "abc"));
  EXPECT_NE(mix_seed(1, "abc"), mix_seed(2, "abc"));
  EXPECT_NE(mix_seed(1, "abc"), mix_seed(1, "abd"));
  EXPECT_EQ(mix_seed(1, std::uint64_t{5}), mix_seed(1, std::uint64_t{5}));
  EXPECT_NE(mix_seed(1, std::uint64_t{5}), mix_seed(1, std::uint64_t{6}));
}

TEST(MakeTestbed, KnowsBothTestbedFamilies) {
  EXPECT_TRUE(known_testbed("VanLAN"));
  EXPECT_TRUE(known_testbed("DieselNet-Ch1"));
  EXPECT_TRUE(known_testbed("DieselNet-Ch6"));
  EXPECT_FALSE(known_testbed("CabLAN"));
  EXPECT_THROW(make_testbed("CabLAN"), ContractViolation);
}

TEST(ResultSink, OrdersByIndexRegardlessOfInsertionOrder) {
  ResultSink sink;
  for (const std::size_t i : {2u, 0u, 1u}) {
    PointResult r;
    r.index = i;
    r.policy = "p";
    r.policy += std::to_string(i);  // += form: avoids GCC 12 -Wrestrict FP
    sink.add(std::move(r));
  }
  const auto ordered = sink.ordered();
  ASSERT_EQ(ordered.size(), 3u);
  EXPECT_EQ(ordered[0].index, 0u);
  EXPECT_EQ(ordered[1].index, 1u);
  EXPECT_EQ(ordered[2].index, 2u);
}

TEST(ResultSink, CsvUnionsMetricColumnsSorted) {
  ResultSink sink;
  PointResult a;
  a.index = 0;
  a.metrics["zeta"] = 1.0;
  PointResult b;
  b.index = 1;
  b.metrics["alpha"] = 2.5;
  sink.add(std::move(a));
  sink.add(std::move(b));
  const std::string csv = sink.to_csv();
  EXPECT_NE(csv.find("index,testbed,fleet,policy,seed,alpha,zeta,error"),
            std::string::npos);
}

TEST(Runner, ShardsAllIndicesExactlyOnce) {
  const Runner runner({.threads = 4});
  const ResultSink sink = runner.run_indexed(37, [](std::size_t i) {
    PointResult r;
    r.index = i;
    r.metrics["i"] = static_cast<double>(i);
    return r;
  });
  const auto results = sink.ordered();
  ASSERT_EQ(results.size(), 37u);
  for (std::size_t i = 0; i < results.size(); ++i)
    EXPECT_EQ(results[i].metrics.at("i"), static_cast<double>(i));
}

TEST(Runner, RecordsPointFailuresWithoutAbortingTheSweep) {
  const Runner runner({.threads = 2});
  const ResultSink sink = runner.run_indexed(4, [](std::size_t i) {
    if (i == 2) throw std::runtime_error("boom");
    PointResult r;
    r.index = i;
    return r;
  });
  EXPECT_TRUE(sink.any_errors());
  const auto results = sink.ordered();
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[2].error, "boom");
  EXPECT_TRUE(results[3].error.empty());
}

TEST(Runner, EmptySweepYieldsEmptySink) {
  const Runner runner({.threads = 4});
  const ResultSink sink =
      runner.run_indexed(0, [](std::size_t) { return PointResult{}; });
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_FALSE(sink.any_errors());
}

// The core determinism contract: the serialised output of a sweep is a pure
// function of the spec — identical bytes for 1 worker and N workers.
TEST(Runner, ReplaySweepIsThreadCountInvariant) {
  const ExperimentSpec spec = small_replay_spec();
  const ResultSink one = Runner({.threads = 1}).run(spec);
  const ResultSink four = Runner({.threads = 4}).run(spec);
  EXPECT_FALSE(one.any_errors());
  EXPECT_EQ(one.to_json(), four.to_json());
  EXPECT_EQ(one.to_csv(), four.to_csv());
}

TEST(Runner, SameSpecTwiceIsIdentical) {
  const ExperimentSpec spec = small_replay_spec();
  const Runner runner({.threads = 2});
  EXPECT_EQ(runner.run(spec).to_json(), runner.run(spec).to_json());
}

TEST(Runner, BaseSeedChangesResults) {
  ExperimentSpec a = small_replay_spec();
  ExperimentSpec b = small_replay_spec();
  b.base_seed = a.base_seed + 1;
  const Runner runner({.threads = 2});
  EXPECT_NE(runner.run(a).to_json(), runner.run(b).to_json());
}

TEST(Runner, LiveCbrSweepIsThreadCountInvariant) {
  ExperimentSpec spec;
  spec.grid.testbeds = {"VanLAN"};
  spec.grid.policies = {"ViFi", "BRR"};
  spec.grid.seeds = {1};
  spec.days = 1;
  spec.trips_per_day = 1;
  spec.trip_duration = Time::seconds(20.0);
  spec.workload = "cbr";
  const ResultSink one = Runner({.threads = 1}).run(spec);
  const ResultSink four = Runner({.threads = 4}).run(spec);
  EXPECT_FALSE(one.any_errors());
  EXPECT_EQ(one.to_json(), four.to_json());
}

TEST(Runner, FleetReplaySweepIsThreadCountInvariant) {
  ExperimentSpec spec = small_replay_spec();
  spec.grid.fleet_sizes = {1, 2};
  spec.trip_duration = Time::seconds(20.0);
  const ResultSink one = Runner({.threads = 1}).run(spec);
  const ResultSink four = Runner({.threads = 4}).run(spec);
  EXPECT_FALSE(one.any_errors());
  EXPECT_EQ(one.to_json(), four.to_json());
  EXPECT_EQ(one.to_csv(), four.to_csv());
}

TEST(Executor, FleetReplayPointAggregatesEveryVehiclesLog) {
  ExperimentSpec spec = small_replay_spec();
  spec.grid.policies = {"AllBSes"};
  spec.grid.seeds = {1};
  spec.trip_duration = Time::seconds(20.0);
  const PointResult solo = run_point(spec.enumerate()[0]);
  spec.grid.fleet_sizes = {3};
  const PointResult fleet = run_point(spec.enumerate()[0]);
  EXPECT_TRUE(fleet.error.empty());
  EXPECT_EQ(fleet.fleet, 3);
  // Three vehicles log three slot streams per trip.
  EXPECT_EQ(fleet.metrics.at("slots"), 3.0 * solo.metrics.at("slots"));
}

TEST(Executor, ReplayPointProducesTheStandardMetricSet) {
  const auto points = small_replay_spec().enumerate();
  const PointResult r = run_point(points[0]);
  EXPECT_TRUE(r.error.empty());
  for (const char* key :
       {"slots", "packets_sent", "packets_delivered", "delivery_rate",
        "packets_per_day", "session_count", "median_session_s"})
    EXPECT_TRUE(r.metrics.count(key)) << key;
  ASSERT_TRUE(r.series.count("session_len_s_q"));
  ASSERT_TRUE(r.series.count("throughput_kbps_q"));
  EXPECT_EQ(r.series.at("session_len_s_q").size(), cdf_quantiles().size());
  EXPECT_GT(r.metrics.at("delivery_rate"), 0.0);
  EXPECT_LE(r.metrics.at("delivery_rate"), 1.0);
}

// The tentpole contract of the streaming/sharded executor: for a catalog
// replay point it is a drop-in for run_point — same metrics, same series,
// byte for byte — while loading one trip group at a time across workers.
TEST(Executor, ShardedCatalogPointMatchesSequentialByteForByte) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "vifi_test_sharded_catalog";
  fs::remove_all(dir);
  const scenario::Testbed bed = make_testbed("DieselNet-Ch1", 2);
  scenario::CampaignConfig cfg;
  cfg.days = 1;
  cfg.trips_per_day = 3;
  cfg.trip_duration = Time::seconds(10.0);
  cfg.seed = 42;
  cfg.log_probes = false;
  tracegen::write_catalog(dir.string(), "unit",
                          scenario::generate_campaign(bed, cfg));

  ExperimentSpec spec;
  spec.grid.testbeds = {"DieselNet-Ch1"};
  spec.grid.fleet_sizes = {2};
  spec.grid.trace_sets = {dir.string()};
  spec.grid.policies = {"ViFi"};
  spec.grid.seeds = {1};
  spec.workload = "cbr";
  const ExperimentPoint point = spec.enumerate().front();

  tracegen::drop_catalog_cache();
  const PointResult sequential = run_point(point);
  const PointResult sharded = run_point_sharded(point, Runner({.threads = 4}));
  fs::remove_all(dir);
  tracegen::drop_catalog_cache();
  ASSERT_TRUE(sequential.error.empty()) << sequential.error;

  ResultSink a, b;
  a.add(sequential);
  b.add(sharded);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.to_csv(), b.to_csv());
}

// Regression for the sharded executor's instrumented gap: points carrying
// a TripScope session (trace dump and/or metric columns) used to fall back
// to the sequential path wholesale; now they shard too, stitching per-trip
// recorders/registries in trip order. The whole output — result bytes AND
// every exported trace file — must match the sequential executor exactly.
TEST(Executor, ShardedInstrumentedPointMatchesSequentialByteForByte) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "vifi_test_sharded_instr";
  const fs::path seq_dir = dir / "seq", shard_dir = dir / "shard";
  fs::remove_all(dir);
  const scenario::Testbed bed = make_testbed("DieselNet-Ch1", 2);
  scenario::CampaignConfig cfg;
  cfg.days = 1;
  cfg.trips_per_day = 3;
  cfg.trip_duration = Time::seconds(10.0);
  cfg.seed = 42;
  cfg.log_probes = false;
  tracegen::write_catalog((dir / "catalog").string(), "unit",
                          scenario::generate_campaign(bed, cfg));

  ExperimentSpec spec;
  spec.grid.testbeds = {"DieselNet-Ch1"};
  spec.grid.fleet_sizes = {2};
  spec.grid.trace_sets = {(dir / "catalog").string()};
  spec.grid.policies = {"ViFi"};
  spec.grid.seeds = {1};
  spec.workload = "cbr";
  spec.metric_columns = {"mac.transmissions", "core.salvaged"};
  spec.trace_dir = seq_dir.string();
  ExperimentPoint point = spec.enumerate().front();

  tracegen::drop_catalog_cache();
  const PointResult sequential = run_point(point);
  point.trace_dir = shard_dir.string();
  const PointResult sharded = run_point_sharded(point, Runner({.threads = 4}));
  tracegen::drop_catalog_cache();
  ASSERT_TRUE(sequential.error.empty()) << sequential.error;

  // The metric columns landed and agree exactly.
  for (const std::string& name : spec.metric_columns) {
    ASSERT_TRUE(sequential.metrics.count("obs." + name)) << name;
    EXPECT_EQ(sequential.metrics.at("obs." + name),
              sharded.metrics.at("obs." + name))
        << name;
  }
  ResultSink a, b;
  PointResult seq_copy = sequential;
  seq_copy.index = 0;
  a.add(std::move(seq_copy));
  b.add(sharded);
  EXPECT_EQ(a.to_json(), b.to_json());

  // Every exported trace artifact is byte-identical across the two paths.
  auto slurp = [](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    EXPECT_TRUE(in.good()) << p;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  };
  for (const char* name :
       {"point_0000.trace.json", "point_0000.jsonl",
        "point_0000.metrics.json"}) {
    const std::string seq_bytes = slurp(seq_dir / name);
    EXPECT_FALSE(seq_bytes.empty()) << name;
    EXPECT_EQ(seq_bytes, slurp(shard_dir / name)) << name;
  }
  fs::remove_all(dir);
}

// The coordination axis rides the sharded path too: a coord point's
// sharded run must reproduce the sequential bytes (the predictor history
// fit and every per-trip manager decision are functions of the point).
TEST(Executor, ShardedCoordPointMatchesSequentialByteForByte) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "vifi_test_sharded_coord";
  fs::remove_all(dir);
  const scenario::Testbed bed = make_testbed("VanLAN", 2);
  scenario::CampaignConfig cfg;
  cfg.days = 1;
  cfg.trips_per_day = 3;
  cfg.trip_duration = Time::seconds(10.0);
  cfg.seed = 7;
  cfg.log_probes = false;
  tracegen::write_catalog(dir.string(), "unit",
                          scenario::generate_campaign(bed, cfg));

  ExperimentSpec spec;
  spec.grid.testbeds = {"VanLAN"};
  spec.grid.fleet_sizes = {2};
  spec.grid.trace_sets = {dir.string()};
  spec.grid.policies = {"ViFi"};
  spec.grid.coordinations = {"coord"};
  spec.grid.seeds = {1};
  spec.workload = "cbr";
  const ExperimentPoint point = spec.enumerate().front();

  tracegen::drop_catalog_cache();
  const PointResult sequential = run_point(point);
  const PointResult sharded = run_point_sharded(point, Runner({.threads = 4}));
  fs::remove_all(dir);
  tracegen::drop_catalog_cache();
  ASSERT_TRUE(sequential.error.empty()) << sequential.error;
  EXPECT_EQ(sequential.coordination, "coord");

  ResultSink a, b;
  a.add(sequential);
  b.add(sharded);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.to_csv(), b.to_csv());
}

TEST(Executor, UnknownCoordinationFailsLoudly) {
  ExperimentSpec spec;
  spec.grid.testbeds = {"VanLAN"};
  spec.grid.policies = {"ViFi"};
  spec.grid.coordinations = {"teleport"};
  spec.grid.seeds = {1};
  spec.workload = "cbr";
  spec.days = 1;
  spec.trips_per_day = 1;
  spec.trip_duration = Time::seconds(5.0);
  EXPECT_THROW(run_point(spec.enumerate().front()), std::runtime_error);
}

TEST(Executor, ShardedFallsBackForUncoveredShapes) {
  // Stochastic replay points have no catalog to shard; the sharded entry
  // point must still produce the sequential executor's exact result.
  const ExperimentPoint point = small_replay_spec().enumerate().front();
  ResultSink a, b;
  a.add(run_point(point));
  b.add(run_point_sharded(point, Runner({.threads = 2})));
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.to_csv(), b.to_csv());
}

TEST(Executor, UnknownWorkloadOrPolicyIsAContractViolation) {
  ExperimentSpec spec = small_replay_spec();
  spec.workload = "warp-drive";
  EXPECT_THROW(run_point(spec.enumerate()[0]), ContractViolation);

  ExperimentSpec live = small_replay_spec();
  live.workload = "cbr";
  live.grid.policies = {"Sticky"};  // replay-only policy, invalid live
  EXPECT_THROW(run_point(live.enumerate()[0]), ContractViolation);
}

}  // namespace
}  // namespace vifi::runtime
