// Unit tests for packets and the wired backplane.

#include <gtest/gtest.h>

#include <vector>

#include "net/backplane.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "util/contracts.h"

namespace vifi::net {
namespace {

using sim::NodeId;

TEST(PacketFactory, AssignsUniqueSequentialIds) {
  PacketFactory f;
  const auto a = f.make(Direction::Upstream, NodeId(0), NodeId(1), 10,
                        Time::zero());
  const auto b = f.make(Direction::Downstream, NodeId(1), NodeId(0), 10,
                        Time::zero());
  EXPECT_EQ(a->id, 1u);
  EXPECT_EQ(b->id, 2u);
  EXPECT_EQ(f.packets_created(), 2u);
}

TEST(PacketFactory, PopulatesFields) {
  PacketFactory f;
  const auto p = f.make(Direction::Downstream, NodeId(3), NodeId(4), 123,
                        Time::seconds(1.0), 7, 99);
  EXPECT_EQ(p->dir, Direction::Downstream);
  EXPECT_EQ(p->src, NodeId(3));
  EXPECT_EQ(p->dst, NodeId(4));
  EXPECT_EQ(p->bytes, 123);
  EXPECT_EQ(p->created, Time::seconds(1.0));
  EXPECT_EQ(p->flow, 7);
  EXPECT_EQ(p->app_seq, 99u);
}

TEST(PacketFactory, RejectsInvalidInputs) {
  PacketFactory f;
  EXPECT_THROW(
      f.make(Direction::Upstream, NodeId{}, NodeId(1), 10, Time::zero()),
      vifi::ContractViolation);
  EXPECT_THROW(
      f.make(Direction::Upstream, NodeId(0), NodeId(1), -1, Time::zero()),
      vifi::ContractViolation);
}

class BackplaneTest : public ::testing::Test {
 protected:
  BackplaneTest() : plane_(sim_, Rng(1)) {
    plane_.attach(NodeId(1), [this](const WireMessage& m) {
      received_.push_back(m);
      at_.push_back(sim_.now());
    });
  }

  WireMessage msg(NodeId from, NodeId to, int bytes = 100) {
    WireMessage m;
    m.kind = WireMessage::Kind::Data;
    m.from = from;
    m.to = to;
    m.bytes = bytes;
    m.packet = factory_.make(Direction::Downstream, from, to, bytes,
                             sim_.now());
    return m;
  }

  sim::Simulator sim_;
  Backplane plane_;
  PacketFactory factory_;
  std::vector<WireMessage> received_;
  std::vector<Time> at_;
};

TEST_F(BackplaneTest, DeliversAfterSerializationAndLatency) {
  Backplane::LinkParams params;
  params.rate_bps = 1e6;
  params.latency = Time::millis(10.0);
  plane_.set_link(NodeId(0), NodeId(1), params);
  plane_.send(msg(NodeId(0), NodeId(1), 1000));  // 8 ms serialisation
  sim_.run();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(at_[0], Time::millis(18.0));
}

TEST_F(BackplaneTest, QueueingDelaysBackToBackMessages) {
  Backplane::LinkParams params;
  params.rate_bps = 1e6;
  params.latency = Time::millis(1.0);
  plane_.set_link(NodeId(0), NodeId(1), params);
  plane_.send(msg(NodeId(0), NodeId(1), 1000));
  plane_.send(msg(NodeId(0), NodeId(1), 1000));
  sim_.run();
  ASSERT_EQ(received_.size(), 2u);
  EXPECT_EQ(at_[0], Time::millis(9.0));
  EXPECT_EQ(at_[1], Time::millis(17.0));  // waited for the serialiser
}

TEST_F(BackplaneTest, IndependentLinksDoNotQueueOnEachOther) {
  Backplane::LinkParams params;
  params.rate_bps = 1e6;
  params.latency = Time::millis(1.0);
  plane_.set_link(NodeId(0), NodeId(1), params);
  plane_.set_link(NodeId(2), NodeId(1), params);
  plane_.send(msg(NodeId(0), NodeId(1), 1000));
  plane_.send(msg(NodeId(2), NodeId(1), 1000));
  sim_.run();
  ASSERT_EQ(received_.size(), 2u);
  EXPECT_EQ(at_[0], Time::millis(9.0));
  EXPECT_EQ(at_[1], Time::millis(9.0));
}

TEST_F(BackplaneTest, UnreachablePairsDropEverything) {
  plane_.set_unreachable(NodeId(0), NodeId(1));
  plane_.send(msg(NodeId(0), NodeId(1)));
  sim_.run();
  EXPECT_TRUE(received_.empty());
  EXPECT_EQ(plane_.messages_sent(), 1u);
  EXPECT_EQ(plane_.messages_delivered(), 0u);
}

TEST_F(BackplaneTest, LossyLinkDropsStatistically) {
  Backplane::LinkParams params;
  params.loss = 0.5;
  plane_.set_link(NodeId(0), NodeId(1), params);
  for (int i = 0; i < 2000; ++i) plane_.send(msg(NodeId(0), NodeId(1), 10));
  sim_.run();
  EXPECT_GT(received_.size(), 800u);
  EXPECT_LT(received_.size(), 1200u);
}

TEST_F(BackplaneTest, MessageToUnattachedNodeIsDropped) {
  plane_.send(msg(NodeId(0), NodeId(9)));
  sim_.run();
  EXPECT_TRUE(received_.empty());
}

TEST_F(BackplaneTest, DefaultLinkParamsApply) {
  Backplane::LinkParams defaults;
  defaults.latency = Time::millis(50.0);
  defaults.rate_bps = 1e9;  // serialisation negligible
  plane_.set_default_link(defaults);
  plane_.send(msg(NodeId(5), NodeId(1), 100));
  sim_.run();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_GE(at_[0], Time::millis(50.0));
  EXPECT_LT(at_[0], Time::millis(51.0));
}

TEST_F(BackplaneTest, ByteCounterAccumulates) {
  plane_.send(msg(NodeId(0), NodeId(1), 100));
  plane_.send(msg(NodeId(0), NodeId(1), 150));
  EXPECT_EQ(plane_.bytes_sent(), 250u);
}

TEST_F(BackplaneTest, InvalidMessagesThrow) {
  WireMessage m;
  m.from = NodeId(0);
  m.to = NodeId{};
  m.bytes = 10;
  EXPECT_THROW(plane_.send(m), vifi::ContractViolation);
  m.to = NodeId(1);
  m.bytes = 0;
  EXPECT_THROW(plane_.send(m), vifi::ContractViolation);
}

}  // namespace
}  // namespace vifi::net
