// Property tests for the medium's airtime ledger: randomized multi-node
// transmission schedules must conserve airtime and decode outcomes exactly.
// For every schedule, once the simulator drains:
//   - per-node tx airtime sums to the medium's total busy airtime, which in
//     turn equals the independently computed sum of frame airtimes;
//   - every receiver-side decode attempt ends as exactly one of delivery,
//     collision loss, or channel loss (per node and globally);
//   - the ledger's totals reconcile with the pre-existing global
//     transmissions()/collisions()/deliveries() counters.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "mobility/vec2.h"

#include "channel/loss_model.h"
#include "mac/airtime.h"
#include "mac/frame.h"
#include "mac/medium.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace vifi::mac {
namespace {

using sim::NodeId;

/// Loss model with random (but per-seed fixed) link probabilities and
/// stochastic per-frame delivery sampling.
class RandomLoss final : public channel::LossModel {
 public:
  RandomLoss(int nodes, Rng probs, Rng samples) : samples_(samples) {
    for (int a = 0; a < nodes; ++a)
      for (int b = 0; b < nodes; ++b)
        if (a != b) probs_[{NodeId(a), NodeId(b)}] = probs.uniform01();
  }

  bool sample_delivery(NodeId tx, NodeId rx, Time) override {
    return samples_.bernoulli(probs_.at({tx, rx}));
  }
  double reception_prob(NodeId tx, NodeId rx, Time) const override {
    return probs_.at({tx, rx});
  }

 private:
  std::map<sim::LinkKey, double> probs_;
  Rng samples_;
};

class NullSink final : public FrameSink {
 public:
  void on_frame(const Frame&) override {}
};

Frame data_frame(net::PacketFactory& factory, NodeId tx, int bytes) {
  Frame f;
  f.type = FrameType::Data;
  f.tx = tx;
  f.packet = factory.make(net::Direction::Upstream, tx, NodeId(0), bytes,
                          Time::zero());
  f.data.packet_id = f.packet->id;
  f.data.origin = tx;
  f.data.hop_dst = NodeId(0);
  return f;
}

// One random schedule per seed: 2-6 nodes, 1-12 transmissions at random
// offsets (gaps short enough that overlaps are common), random sizes and
// transmitters.
TEST(MediumProperties, RandomSchedulesConserveAirtimeAndDecodes) {
  for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
    Rng rng(seed);
    sim::Simulator sim;
    const int nodes = static_cast<int>(rng.uniform_int(2, 6));
    RandomLoss loss(nodes, rng.fork("probs"), rng.fork("samples"));
    Medium medium(sim, loss, {});
    std::vector<NullSink> sinks(static_cast<std::size_t>(nodes));
    for (int n = 0; n < nodes; ++n)
      medium.attach(NodeId(n), &sinks[static_cast<std::size_t>(n)]);

    net::PacketFactory factory;
    const int transmissions = static_cast<int>(rng.uniform_int(1, 12));
    Time expected_airtime;
    Time at;
    for (int i = 0; i < transmissions; ++i) {
      const NodeId tx(static_cast<int>(rng.uniform_int(0, nodes - 1)));
      const int bytes = static_cast<int>(rng.uniform_int(0, 800));
      Frame f = data_frame(factory, tx, bytes);
      expected_airtime += medium.airtime(f.bytes_on_air());
      // Random gap: anywhere from simultaneous to comfortably past the
      // previous frame, so schedules mix heavy overlap with clean air.
      at += Time::micros(rng.uniform_int(0, 8000));
      sim.schedule_at(at, [&medium, f = std::move(f)]() mutable {
        medium.transmit(std::move(f));
      });
    }
    sim.run();

    const MediumStats s = medium.snapshot();
    SCOPED_TRACE("seed " + std::to_string(seed));

    // --- airtime conservation (exact integer-microsecond equality) ------
    EXPECT_EQ(s.busy_airtime, expected_airtime);
    Time ledger_tx_airtime;
    for (const auto& [id, row] : s.nodes) ledger_tx_airtime += row.tx_airtime;
    EXPECT_EQ(ledger_tx_airtime, s.busy_airtime);

    // --- decode attempts partition into the three outcomes --------------
    EXPECT_EQ(s.decode_attempts,
              s.deliveries + s.collisions + s.channel_losses);
    EXPECT_EQ(s.decode_attempts,
              s.transmissions * static_cast<std::uint64_t>(nodes - 1));
    for (const auto& [id, row] : s.nodes) {
      EXPECT_EQ(row.decode_attempts, row.frames_received +
                                         row.collisions_seen +
                                         row.channel_losses)
          << "node " << id.to_string();
      EXPECT_TRUE(row.frames_tx > 0 ||
                  (row.frames_delivered == 0 && row.frames_collided == 0))
          << "node " << id.to_string()
          << " has tx outcomes without transmissions";
    }

    // --- ledger totals reconcile with the global counters ---------------
    std::uint64_t tx = 0, delivered_tx = 0, collided_tx = 0, received = 0,
                  collisions_seen = 0, losses = 0, attempts = 0;
    Time rx_airtime, collided_airtime;
    for (const auto& [id, row] : s.nodes) {
      tx += row.frames_tx;
      delivered_tx += row.frames_delivered;
      collided_tx += row.frames_collided;
      received += row.frames_received;
      collisions_seen += row.collisions_seen;
      losses += row.channel_losses;
      attempts += row.decode_attempts;
      rx_airtime += row.rx_airtime;
      collided_airtime += row.collided_airtime;
      EXPECT_EQ(medium.transmissions_from(id), row.frames_tx);
    }
    EXPECT_EQ(tx, medium.transmissions());
    EXPECT_EQ(delivered_tx, medium.deliveries());
    EXPECT_EQ(received, medium.deliveries());
    EXPECT_EQ(collided_tx, medium.collisions());
    EXPECT_EQ(collisions_seen, medium.collisions());
    EXPECT_EQ(losses, medium.channel_losses());
    EXPECT_EQ(attempts, medium.decode_attempts());
    EXPECT_EQ(s.transmissions, medium.transmissions());

    // Received/destroyed airtime can only come from decoded frames, and a
    // decode's airtime equals its transmission's.
    EXPECT_LE(rx_airtime + collided_airtime,
              s.busy_airtime * static_cast<double>(nodes - 1));

    // --- fairness index stays in (0, 1] over any subset -----------------
    std::vector<NodeId> everyone;
    everyone.reserve(s.nodes.size());
    for (const auto& [id, row] : s.nodes) everyone.push_back(id);
    const double jain_tx = s.jain_tx_airtime(everyone);
    const double jain_rx = s.jain_frames_received(everyone);
    EXPECT_GT(jain_tx, 0.0);
    EXPECT_LE(jain_tx, 1.0 + 1e-12);
    EXPECT_GT(jain_rx, 0.0);
    EXPECT_LE(jain_rx, 1.0 + 1e-12);
  }
}

/// Loss model whose reception probability is a pure function of node
/// distance (linear falloff, zero at 1 km) and which logs every
/// sample_delivery call — the oracle for checking that culled receivers
/// are exactly the provably sub-audibility ones.
class DistanceLoss final : public channel::LossModel {
 public:
  DistanceLoss(std::vector<mobility::Vec2> positions, Rng samples)
      : positions_(std::move(positions)), samples_(samples) {}

  double prob(NodeId a, NodeId b) const {
    const mobility::Vec2 pa = positions_[static_cast<std::size_t>(a.value())];
    const mobility::Vec2 pb = positions_[static_cast<std::size_t>(b.value())];
    const double d = std::hypot(pa.x - pb.x, pa.y - pb.y);
    return std::max(0.0, 1.0 - d / 1000.0);
  }

  bool sample_delivery(NodeId tx, NodeId rx, Time now) override {
    samples_log_.emplace_back(tx, rx, now);
    return samples_.bernoulli(prob(tx, rx));
  }
  double reception_prob(NodeId tx, NodeId rx, Time) const override {
    return prob(tx, rx);
  }

  const std::vector<std::tuple<NodeId, NodeId, Time>>& samples_log() const {
    return samples_log_;
  }

 private:
  std::vector<mobility::Vec2> positions_;
  Rng samples_;
  std::vector<std::tuple<NodeId, NodeId, Time>> samples_log_;
};

// The culled medium over random geometries: conservation invariants must
// hold exactly with a *subset* of receivers sampled, every skipped
// receiver must be provably below the audibility threshold at its
// transmit instant, and a re-run of the same schedule must reproduce the
// same counters and the same sample sequence (determinism — culling only
// removes draws, never reorders the survivors).
TEST(MediumProperties, CulledSchedulesConserveAndOnlySkipSubAudibility) {
  constexpr double kAudibility = 0.05;
  // reception_prob(d) = 1 - d/1000 >= 0.05  <=>  d <= 950.
  constexpr double kMaxAudible = 950.0;
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    const int nodes = static_cast<int>(rng.uniform_int(6, 14));
    // Positions spread well past audibility range, so schedules mix
    // audible neighborhoods with provably-deaf pairs.
    std::vector<mobility::Vec2> positions;
    positions.reserve(static_cast<std::size_t>(nodes));
    for (int n = 0; n < nodes; ++n)
      positions.push_back({rng.uniform01() * 3000.0,
                           rng.uniform01() * 3000.0});
    const int transmissions = static_cast<int>(rng.uniform_int(1, 12));
    std::vector<std::pair<NodeId, int>> schedule;  // (tx, bytes)
    std::vector<Time> at;
    Time t;
    for (int i = 0; i < transmissions; ++i) {
      schedule.emplace_back(
          NodeId(static_cast<int>(rng.uniform_int(0, nodes - 1))),
          static_cast<int>(rng.uniform_int(0, 800)));
      // Gaps of at least 1 us keep transmit instants distinct, so the
      // sample log groups unambiguously per transmission.
      t += Time::micros(rng.uniform_int(1, 8000));
      at.push_back(t);
    }

    const std::uint64_t sample_seed = rng.fork("samples").next_u64();
    auto run_once = [&](DistanceLoss& loss) {
      sim::Simulator sim;
      MediumParams params;
      SpatialCulling cull;
      cull.position = [&positions](NodeId id, Time) {
        return positions[static_cast<std::size_t>(id.value())];
      };
      cull.max_audible_m = kMaxAudible;
      cull.margin_m = 0.0;  // static geometry
      params.culling = std::move(cull);
      Medium medium(sim, loss, std::move(params));
      std::vector<NullSink> sinks(static_cast<std::size_t>(nodes));
      for (int n = 0; n < nodes; ++n)
        medium.attach(NodeId(n), &sinks[static_cast<std::size_t>(n)]);
      net::PacketFactory factory;
      Time expected_airtime;
      for (int i = 0; i < transmissions; ++i) {
        Frame f = data_frame(factory, schedule[static_cast<std::size_t>(i)].first,
                             schedule[static_cast<std::size_t>(i)].second);
        expected_airtime += medium.airtime(f.bytes_on_air());
        sim.schedule_at(at[static_cast<std::size_t>(i)],
                        [&medium, f = std::move(f)]() mutable {
                          medium.transmit(std::move(f));
                        });
      }
      sim.run();
      EXPECT_EQ(medium.snapshot().busy_airtime, expected_airtime);
      return medium.snapshot();
    };

    DistanceLoss loss(positions, Rng(sample_seed));
    const MediumStats s = run_once(loss);

    // --- conservation holds on the culled subset -------------------------
    Time ledger_tx_airtime;
    for (const auto& [id, row] : s.nodes) ledger_tx_airtime += row.tx_airtime;
    EXPECT_EQ(ledger_tx_airtime, s.busy_airtime);
    EXPECT_EQ(s.decode_attempts,
              s.deliveries + s.collisions + s.channel_losses);
    EXPECT_LE(s.decode_attempts,
              s.transmissions * static_cast<std::uint64_t>(nodes - 1));
    for (const auto& [id, row] : s.nodes)
      EXPECT_EQ(row.decode_attempts, row.frames_received +
                                         row.collisions_seen +
                                         row.channel_losses)
          << "node " << id.to_string();

    // --- every skipped receiver is provably sub-audibility ---------------
    // Group the sample log by transmission (distinct transmit instants):
    // any (tx, rx) pair absent from a transmission's samples must sit
    // below the audibility threshold at that instant.
    std::uint64_t logged = 0;
    for (int i = 0; i < transmissions; ++i) {
      const NodeId tx = schedule[static_cast<std::size_t>(i)].first;
      const Time when = at[static_cast<std::size_t>(i)];
      std::vector<bool> sampled(static_cast<std::size_t>(nodes), false);
      for (const auto& [stx, srx, st] : loss.samples_log()) {
        if (stx != tx || st != when) continue;
        sampled[static_cast<std::size_t>(srx.value())] = true;
        ++logged;
      }
      for (int rx = 0; rx < nodes; ++rx) {
        if (NodeId(rx) == tx || sampled[static_cast<std::size_t>(rx)])
          continue;
        EXPECT_LT(loss.reception_prob(tx, NodeId(rx), when), kAudibility)
            << "transmission " << i << " culled audible receiver n" << rx;
      }
    }
    EXPECT_EQ(logged, s.decode_attempts);

    // --- determinism: identical schedule, identical run ------------------
    DistanceLoss again(positions, Rng(sample_seed));
    const MediumStats s2 = run_once(again);
    EXPECT_EQ(s2.decode_attempts, s.decode_attempts);
    EXPECT_EQ(s2.deliveries, s.deliveries);
    EXPECT_EQ(s2.collisions, s.collisions);
    EXPECT_EQ(s2.channel_losses, s.channel_losses);
    EXPECT_TRUE(again.samples_log() == loss.samples_log());
  }
}

// Frequency partitioning: co-located nodes on different channels never pay
// decode cost for each other, and the partition alone accounts for every
// skipped receiver.
TEST(MediumProperties, CullingChannelPartitionSkipsCrossChannelPairs) {
  constexpr int kNodes = 8;
  // Everyone at the origin: distance can never cull, only the channel map.
  std::vector<mobility::Vec2> positions(kNodes, mobility::Vec2{0.0, 0.0});
  DistanceLoss loss(positions, Rng(77));
  sim::Simulator sim;
  MediumParams params;
  SpatialCulling cull;
  cull.position = [](NodeId, Time) { return mobility::Vec2{0.0, 0.0}; };
  cull.max_audible_m = 950.0;
  cull.margin_m = 0.0;
  cull.channel_of = [](NodeId id) { return id.value() % 2; };
  params.culling = std::move(cull);
  Medium medium(sim, loss, std::move(params));
  std::vector<NullSink> sinks(kNodes);
  for (int n = 0; n < kNodes; ++n)
    medium.attach(NodeId(n), &sinks[static_cast<std::size_t>(n)]);
  net::PacketFactory factory;
  Time at;
  for (int i = 0; i < kNodes; ++i) {
    Frame f = data_frame(factory, NodeId(i), 400);
    at += Time::millis(10);
    sim.schedule_at(at, [&medium, f = std::move(f)]() mutable {
      medium.transmit(std::move(f));
    });
  }
  sim.run();

  // Each transmission reaches exactly the 3 co-channel peers.
  const MediumStats s = medium.snapshot();
  EXPECT_EQ(s.decode_attempts,
            static_cast<std::uint64_t>(kNodes) * (kNodes / 2 - 1));
  EXPECT_EQ(s.decode_attempts,
            s.deliveries + s.collisions + s.channel_losses);
  for (const auto& [stx, srx, st] : loss.samples_log())
    EXPECT_EQ(stx.value() % 2, srx.value() % 2)
        << "cross-channel pair sampled: " << stx.to_string() << " -> "
        << srx.to_string();
}

}  // namespace
}  // namespace vifi::mac
