// Property tests for the medium's airtime ledger: randomized multi-node
// transmission schedules must conserve airtime and decode outcomes exactly.
// For every schedule, once the simulator drains:
//   - per-node tx airtime sums to the medium's total busy airtime, which in
//     turn equals the independently computed sum of frame airtimes;
//   - every receiver-side decode attempt ends as exactly one of delivery,
//     collision loss, or channel loss (per node and globally);
//   - the ledger's totals reconcile with the pre-existing global
//     transmissions()/collisions()/deliveries() counters.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "channel/loss_model.h"
#include "mac/airtime.h"
#include "mac/frame.h"
#include "mac/medium.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace vifi::mac {
namespace {

using sim::NodeId;

/// Loss model with random (but per-seed fixed) link probabilities and
/// stochastic per-frame delivery sampling.
class RandomLoss final : public channel::LossModel {
 public:
  RandomLoss(int nodes, Rng probs, Rng samples) : samples_(samples) {
    for (int a = 0; a < nodes; ++a)
      for (int b = 0; b < nodes; ++b)
        if (a != b) probs_[{NodeId(a), NodeId(b)}] = probs.uniform01();
  }

  bool sample_delivery(NodeId tx, NodeId rx, Time) override {
    return samples_.bernoulli(probs_.at({tx, rx}));
  }
  double reception_prob(NodeId tx, NodeId rx, Time) const override {
    return probs_.at({tx, rx});
  }

 private:
  std::map<sim::LinkKey, double> probs_;
  Rng samples_;
};

class NullSink final : public FrameSink {
 public:
  void on_frame(const Frame&) override {}
};

Frame data_frame(net::PacketFactory& factory, NodeId tx, int bytes) {
  Frame f;
  f.type = FrameType::Data;
  f.tx = tx;
  f.packet = factory.make(net::Direction::Upstream, tx, NodeId(0), bytes,
                          Time::zero());
  f.data.packet_id = f.packet->id;
  f.data.origin = tx;
  f.data.hop_dst = NodeId(0);
  return f;
}

// One random schedule per seed: 2-6 nodes, 1-12 transmissions at random
// offsets (gaps short enough that overlaps are common), random sizes and
// transmitters.
TEST(MediumProperties, RandomSchedulesConserveAirtimeAndDecodes) {
  for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
    Rng rng(seed);
    sim::Simulator sim;
    const int nodes = static_cast<int>(rng.uniform_int(2, 6));
    RandomLoss loss(nodes, rng.fork("probs"), rng.fork("samples"));
    Medium medium(sim, loss, {});
    std::vector<NullSink> sinks(static_cast<std::size_t>(nodes));
    for (int n = 0; n < nodes; ++n)
      medium.attach(NodeId(n), &sinks[static_cast<std::size_t>(n)]);

    net::PacketFactory factory;
    const int transmissions = static_cast<int>(rng.uniform_int(1, 12));
    Time expected_airtime;
    Time at;
    for (int i = 0; i < transmissions; ++i) {
      const NodeId tx(static_cast<int>(rng.uniform_int(0, nodes - 1)));
      const int bytes = static_cast<int>(rng.uniform_int(0, 800));
      Frame f = data_frame(factory, tx, bytes);
      expected_airtime += medium.airtime(f.bytes_on_air());
      // Random gap: anywhere from simultaneous to comfortably past the
      // previous frame, so schedules mix heavy overlap with clean air.
      at += Time::micros(rng.uniform_int(0, 8000));
      sim.schedule_at(at, [&medium, f = std::move(f)]() mutable {
        medium.transmit(std::move(f));
      });
    }
    sim.run();

    const MediumStats s = medium.snapshot();
    SCOPED_TRACE("seed " + std::to_string(seed));

    // --- airtime conservation (exact integer-microsecond equality) ------
    EXPECT_EQ(s.busy_airtime, expected_airtime);
    Time ledger_tx_airtime;
    for (const auto& [id, row] : s.nodes) ledger_tx_airtime += row.tx_airtime;
    EXPECT_EQ(ledger_tx_airtime, s.busy_airtime);

    // --- decode attempts partition into the three outcomes --------------
    EXPECT_EQ(s.decode_attempts,
              s.deliveries + s.collisions + s.channel_losses);
    EXPECT_EQ(s.decode_attempts,
              s.transmissions * static_cast<std::uint64_t>(nodes - 1));
    for (const auto& [id, row] : s.nodes) {
      EXPECT_EQ(row.decode_attempts, row.frames_received +
                                         row.collisions_seen +
                                         row.channel_losses)
          << "node " << id.to_string();
      EXPECT_TRUE(row.frames_tx > 0 ||
                  (row.frames_delivered == 0 && row.frames_collided == 0))
          << "node " << id.to_string()
          << " has tx outcomes without transmissions";
    }

    // --- ledger totals reconcile with the global counters ---------------
    std::uint64_t tx = 0, delivered_tx = 0, collided_tx = 0, received = 0,
                  collisions_seen = 0, losses = 0, attempts = 0;
    Time rx_airtime, collided_airtime;
    for (const auto& [id, row] : s.nodes) {
      tx += row.frames_tx;
      delivered_tx += row.frames_delivered;
      collided_tx += row.frames_collided;
      received += row.frames_received;
      collisions_seen += row.collisions_seen;
      losses += row.channel_losses;
      attempts += row.decode_attempts;
      rx_airtime += row.rx_airtime;
      collided_airtime += row.collided_airtime;
      EXPECT_EQ(medium.transmissions_from(id), row.frames_tx);
    }
    EXPECT_EQ(tx, medium.transmissions());
    EXPECT_EQ(delivered_tx, medium.deliveries());
    EXPECT_EQ(received, medium.deliveries());
    EXPECT_EQ(collided_tx, medium.collisions());
    EXPECT_EQ(collisions_seen, medium.collisions());
    EXPECT_EQ(losses, medium.channel_losses());
    EXPECT_EQ(attempts, medium.decode_attempts());
    EXPECT_EQ(s.transmissions, medium.transmissions());

    // Received/destroyed airtime can only come from decoded frames, and a
    // decode's airtime equals its transmission's.
    EXPECT_LE(rx_airtime + collided_airtime,
              s.busy_airtime * static_cast<double>(nodes - 1));

    // --- fairness index stays in (0, 1] over any subset -----------------
    std::vector<NodeId> everyone;
    for (const auto& [id, row] : s.nodes) everyone.push_back(id);
    const double jain_tx = s.jain_tx_airtime(everyone);
    const double jain_rx = s.jain_frames_received(everyone);
    EXPECT_GT(jain_tx, 0.0);
    EXPECT_LE(jain_tx, 1.0 + 1e-12);
    EXPECT_GT(jain_rx, 0.0);
    EXPECT_LE(jain_rx, 1.0 + 1e-12);
  }
}

}  // namespace
}  // namespace vifi::mac
