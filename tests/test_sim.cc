// Unit tests for the discrete-event engine.

#include <gtest/gtest.h>

#include <vector>

#include "sim/ids.h"
#include "sim/simulator.h"
#include "util/contracts.h"

namespace vifi::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), Time::zero());
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule(Time::millis(3.0), [&] { order.push_back(3); });
  s.schedule(Time::millis(1.0), [&] { order.push_back(1); });
  s.schedule(Time::millis(2.0), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, FifoAmongEqualTimestamps) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    s.schedule(Time::millis(1.0), [&order, i] { order.push_back(i); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator s;
  Time seen;
  s.schedule(Time::seconds(2.5), [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, Time::seconds(2.5));
  EXPECT_EQ(s.now(), Time::seconds(2.5));
}

TEST(Simulator, RunUntilStopsEarlyAndSetsClock) {
  Simulator s;
  bool fired = false;
  s.schedule(Time::seconds(10.0), [&] { fired = true; });
  s.run_until(Time::seconds(5.0));
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.now(), Time::seconds(5.0));
  s.run_until(Time::seconds(20.0));
  EXPECT_TRUE(fired);
}

TEST(Simulator, EventsScheduleMoreEvents) {
  Simulator s;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10) s.schedule(Time::millis(1.0), chain);
  };
  s.schedule(Time::millis(1.0), chain);
  s.run();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(s.now(), Time::millis(10.0));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool fired = false;
  const EventId id = s.schedule(Time::millis(1.0), [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelTwiceIsNoop) {
  Simulator s;
  const EventId id = s.schedule(Time::millis(1.0), [] {});
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
  s.run();
}

TEST(Simulator, CancelInvalidIdIsNoop) {
  Simulator s;
  EXPECT_FALSE(s.cancel(EventId{}));
}

TEST(Simulator, CancelAfterFireIsRejectedAndKeepsAccountingSane) {
  Simulator s;
  const EventId id = s.schedule(Time::millis(1.0), [] {});
  s.schedule(Time::millis(2.0), [] {});
  s.run_until(Time::millis(1.0));  // fires the first event only
  EXPECT_FALSE(s.cancel(id));      // stale id: already fired
  EXPECT_EQ(s.pending_events(), 1u);
  s.run();
  EXPECT_FALSE(s.cancel(id));
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, ManyCancellationsStayCheap) {
  // Regression guard for the old O(n) cancelled-list scan: schedule and
  // cancel a large batch, then dispatch; linear-scan bookkeeping would make
  // this quadratic.
  Simulator s;
  std::vector<EventId> ids;
  ids.reserve(20000);
  for (int i = 0; i < 20000; ++i)
    ids.push_back(s.schedule(Time::millis(1.0 + i), [] {}));
  for (std::size_t i = 0; i < ids.size(); i += 2)
    EXPECT_TRUE(s.cancel(ids[i]));
  EXPECT_EQ(s.pending_events(), ids.size() / 2);
  s.run();
  EXPECT_EQ(s.events_executed(), ids.size() / 2);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, PendingEventsAccountsForCancellations) {
  Simulator s;
  const EventId a = s.schedule(Time::millis(1.0), [] {});
  s.schedule(Time::millis(2.0), [] {});
  EXPECT_EQ(s.pending_events(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending_events(), 1u);
  s.run();
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, StopHaltsRun) {
  Simulator s;
  int count = 0;
  s.schedule(Time::millis(1.0), [&] {
    ++count;
    s.stop();
  });
  s.schedule(Time::millis(2.0), [&] { ++count; });
  s.run();
  EXPECT_EQ(count, 1);
  s.run();  // resumes with remaining events
  EXPECT_EQ(count, 2);
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator s;
  s.schedule(Time::millis(5.0), [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(Time::millis(1.0), [] {}),
               vifi::ContractViolation);
  EXPECT_THROW(s.schedule(Time::millis(-1.0), [] {}),
               vifi::ContractViolation);
}

TEST(Simulator, EventsExecutedCounter) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule(Time::millis(i + 1.0), [] {});
  s.run();
  EXPECT_EQ(s.events_executed(), 7u);
}

TEST(PeriodicTimer, FiresAtPeriod) {
  Simulator s;
  int fires = 0;
  PeriodicTimer t(s, Time::millis(10.0), [&] { ++fires; });
  t.start();
  s.run_until(Time::millis(35.0));
  EXPECT_EQ(fires, 3);
}

TEST(PeriodicTimer, StartAfterCustomDelay) {
  Simulator s;
  std::vector<Time> at;
  PeriodicTimer t(s, Time::millis(10.0), [&] { at.push_back(s.now()); });
  t.start_after(Time::millis(1.0));
  s.run_until(Time::millis(25.0));
  ASSERT_EQ(at.size(), 3u);
  EXPECT_EQ(at[0], Time::millis(1.0));
  EXPECT_EQ(at[1], Time::millis(11.0));
}

TEST(PeriodicTimer, StopPreventsFurtherFires) {
  Simulator s;
  int fires = 0;
  PeriodicTimer t(s, Time::millis(5.0), [&] { ++fires; });
  t.start();
  s.schedule(Time::millis(12.0), [&] { t.stop(); });
  s.run_until(Time::millis(50.0));
  EXPECT_EQ(fires, 2);
  EXPECT_FALSE(t.running());
}

TEST(PeriodicTimer, CallbackCanStopItself) {
  Simulator s;
  int fires = 0;
  PeriodicTimer t(s, Time::millis(5.0), [&] {
    if (++fires == 2) t.stop();
  });
  t.start();
  s.run_until(Time::seconds(1.0));
  EXPECT_EQ(fires, 2);
}

TEST(PeriodicTimer, ZeroPeriodThrows) {
  Simulator s;
  EXPECT_THROW(PeriodicTimer(s, Time::zero(), [] {}),
               vifi::ContractViolation);
}

TEST(NodeId, Basics) {
  EXPECT_FALSE(NodeId{}.valid());
  EXPECT_TRUE(NodeId(0).valid());
  EXPECT_LT(NodeId(1), NodeId(2));
  EXPECT_EQ(NodeId(3).to_string(), "n3");
  EXPECT_FALSE(kBroadcast.valid());
}

TEST(LinkKey, OrderingAndHash) {
  const LinkKey a{NodeId(1), NodeId(2)};
  const LinkKey b{NodeId(2), NodeId(1)};
  EXPECT_NE(a, b);
  EXPECT_EQ((std::hash<LinkKey>{}(a)), (std::hash<LinkKey>{}(a)));
}

}  // namespace
}  // namespace vifi::sim
