// Negative fixtures for the coord tier: RAII-guarded mutex use passes.
#include <mutex>

namespace fixture {

class ClientTable {
 public:
  void touch() {
    const std::lock_guard<std::mutex> lock(mu_);
    ++generation_;
  }

 private:
  std::mutex mu_;
  int generation_ = 0;
};

}  // namespace fixture
