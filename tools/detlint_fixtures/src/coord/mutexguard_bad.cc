// Positive fixtures for the coord tier: the ConnectivityManager's shared
// per-client state must be held RAII-only, same as runtime/ and obs/.
#include <mutex>

namespace fixture {

class ClientTable {
 public:
  void touch_unsafe() {
    mu_.lock();  // expect: mutex-guard
    ++generation_;
    mu_.unlock();  // expect: mutex-guard
  }

 private:
  std::mutex mu_;  // expect: mutex-guard
  int generation_ = 0;
};

}  // namespace fixture
