// Positive fixtures for the annotation contract itself: an empty reason is
// a finding AND does not suppress; an unknown rule name is a finding.
#include <unordered_map>

namespace fixture {

double bad(const std::unordered_map<int, double>& m) {
  double t = 0.0;
  // detlint: unordered-iter-ok()  // expect: annotation
  for (const auto& [k, v] : m) {  // expect: unordered-iter
    (void)k;
    t += v;
  }
  // detlint: no-such-rule-ok(reason text)  // expect: annotation
  return t;
}

}  // namespace fixture
