// Positive fixtures: unannotated range-for over unordered containers,
// both through members declared in the header and through locals.
#include "unordered_bad.h"

namespace fixture {

double Table::sum() const {
  double total = 0.0;
  for (const auto& [key, value] : cells_) {  // expect: unordered-iter
    (void)key;
    total += value;
  }
  for (int id : ids_) total += id;  // expect: unordered-iter
  std::unordered_map<int, int> local;
  for (const auto& kv : local) total += kv.second;  // expect: unordered-iter
  return total;
}

}  // namespace fixture
