// Positive fixtures: raw std engines bypass the util::rng fork discipline.
#include <random>  // expect: raw-rng

namespace fixture {

int draw() {
  std::mt19937 gen(12345);           // expect: raw-rng
  std::seed_seq seq{1, 2, 3};        // expect: raw-rng
  std::default_random_engine e(42);  // expect: raw-rng
  (void)seq;
  return static_cast<int>(gen() + e());
}

}  // namespace fixture
