// Negative fixtures: the two blessed spellings in a JSON emitter —
// printf-family "%.17g" and std::to_chars shortest-round-trip.
#include <charconv>
#include <cstdio>
#include <string>

namespace fixture {

std::string to_json(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  char tc[40];
  auto [end, ec] = std::to_chars(tc, tc + sizeof(tc), v);
  (void)end;
  (void)ec;
  return std::string("{\"value\": ") + buf + "}";
}

}  // namespace fixture
