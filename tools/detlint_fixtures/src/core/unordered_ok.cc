// Negative fixtures: the annotation escape hatch (with a reason) covers
// the following line, and ordered containers are always fine.
#include <unordered_map>
#include <vector>

namespace fixture {

double commutative() {
  std::unordered_map<int, double> weights;
  double total = 0.0;
  // detlint: unordered-iter-ok(sum is commutative; order cannot reach output)
  for (const auto& [id, w] : weights) {
    (void)id;
    total += w;
  }
  std::vector<double> ordered;
  for (double v : ordered) total += v;
  return total;
}

}  // namespace fixture
