// Positive fixtures: a JSON emitter rendering doubles with anything other
// than %.17g truncates and breaks byte-identity across thread counts.
#include <cstdio>
#include <string>

namespace fixture {

std::string to_json(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);  // expect: json-float
  std::snprintf(buf, sizeof(buf), "%g", v);    // expect: json-float
  return std::string("{\"value\": ") + buf + "}";
}

}  // namespace fixture
