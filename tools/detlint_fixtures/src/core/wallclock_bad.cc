// Positive fixtures: ambient time/entropy reads in src/ must be flagged.
// (Never compiled — this tree exists for `detlint.py --self-test` only.)
#include <chrono>
#include <cstdlib>

namespace fixture {

double now_wall() {
  auto t = std::chrono::system_clock::now();  // expect: wall-clock
  (void)t;
  auto m = std::chrono::steady_clock::now();  // expect: wall-clock
  (void)m;
  long seconds = time(nullptr);        // expect: wall-clock
  int r = rand();                      // expect: wall-clock
  const char* home = getenv("HOME");   // expect: wall-clock
  (void)home;
  std::random_device rd;  // expect: wall-clock  // expect: raw-rng
  (void)rd;
  return static_cast<double>(seconds + r);
}

}  // namespace fixture
