// Member declarations live here; the range-fors over them live in the .cc.
// detlint's unit scope (file + same-stem sibling) must connect the two.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

class Table {
 public:
  double sum() const;

 private:
  std::unordered_map<std::string, double> cells_;
  std::unordered_set<int> ids_;
};

}  // namespace fixture
