// Negative fixtures: named forks through util::rng are the blessed path.
namespace fixture {

struct Rng {
  Rng fork(const char*) const { return *this; }
  double uniform01() { return 0.5; }
};

double draw(const Rng& root) {
  Rng stream = root.fork("relay");
  return stream.uniform01();
}

}  // namespace fixture
