// Negative fixtures: human-readable table output; fixed-precision floats
// are fine outside serialisation, because this file never emits the
// machine-read format the byte-identity contract covers.
#include <cstdio>

namespace fixture {

void print_row(double v) { std::printf("| %8.2f |\n", v); }

}  // namespace fixture
