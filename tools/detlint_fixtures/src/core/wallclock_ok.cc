// Negative fixtures: simulated time and airtime computations are fine, and
// prose mentioning system_clock, steady_clock, time(nullptr) or rand() in a
// comment must not fire. Neither must identifiers merely ending in "time".
namespace fixture {

struct Time {
  double s = 0.0;
};

double airtime(int bytes) { return static_cast<double>(bytes) * 8.0 / 1e6; }

double use() { return airtime(100); }

const char* label = "call time() later";  // string literal: clean

}  // namespace fixture
