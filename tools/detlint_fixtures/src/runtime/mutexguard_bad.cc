// Positive fixtures: raw .lock()/.unlock() leaks the mutex on early
// returns/exceptions, and a mutex with no RAII guard anywhere in the unit
// means some caller is improvising.
#include <mutex>

namespace fixture {

class Queue {
 public:
  void push_unsafe() {
    mu_.lock();  // expect: mutex-guard
    ++n_;
    mu_.unlock();  // expect: mutex-guard
  }

 private:
  std::mutex mu_;  // expect: mutex-guard
  int n_ = 0;
};

}  // namespace fixture
