// Negative fixtures: RAII-guarded mutex use is the blessed pattern.
#include <mutex>

namespace fixture {

class Queue {
 public:
  void push() {
    const std::lock_guard<std::mutex> lock(mu_);
    ++n_;
  }

 private:
  std::mutex mu_;
  int n_ = 0;
};

}  // namespace fixture
