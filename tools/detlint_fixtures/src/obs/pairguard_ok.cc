#include "pairguard_ok.h"

namespace fixture {

void Registry::add(double v) {
  const std::lock_guard<std::mutex> lock(mu_);
  total_ += v;
}

}  // namespace fixture
