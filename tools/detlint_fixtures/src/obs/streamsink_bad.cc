// Positive fixtures for the TripScope stream layer (src/obs/): a spool
// exporter that renders doubles with anything but %.17g breaks the
// spool -> load -> export == in-memory-export byte contract, and the
// sink's shared flush state must be held RAII-only.
#include <cstdio>
#include <mutex>
#include <string>

namespace fixture {

std::string spool_record_json(double airtime_s) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%f", airtime_s);  // expect: json-float
  return std::string("{\"a\": ") + buf + "}";
}

class FlushState {
 public:
  void bump_unsafe() {
    mu_.lock();  // expect: mutex-guard
    ++flushed_chunks_;
    mu_.unlock();  // expect: mutex-guard
  }

 private:
  std::mutex mu_;  // expect: mutex-guard
  int flushed_chunks_ = 0;
};

}  // namespace fixture
