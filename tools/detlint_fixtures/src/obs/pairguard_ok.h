// Negative fixtures: the mutex member is declared here, the guard lives in
// the sibling .cc — detlint's unit pairing must see across the two files.
#pragma once

#include <mutex>

namespace fixture {

class Registry {
 public:
  void add(double v);

 private:
  std::mutex mu_;
  double total_ = 0.0;
};

}  // namespace fixture
