// Clean twin of streamsink_bad.cc: %.17g doubles in the JSON emitter and
// the flush state held via lock_guard only. Must produce zero findings.
#include <cstdio>
#include <mutex>
#include <string>

namespace fixture {

std::string spool_record_json_ok(double airtime_s) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", airtime_s);
  return std::string("{\"a\": ") + buf + "}";
}

class FlushStateOk {
 public:
  void bump() {
    const std::lock_guard<std::mutex> lock(mu_);
    ++flushed_chunks_;
  }

 private:
  std::mutex mu_;
  int flushed_chunks_ = 0;
};

}  // namespace fixture
