#!/usr/bin/env python3
"""detlint: project-specific determinism & concurrency lint for ViFi.

clang-tidy knows C++; it does not know this repo's determinism contract
(sweeps must be byte-identical across thread counts, RNG draw order is
part of the public behaviour). detlint enforces the rules that contract
implies but no generic tool can check:

  wall-clock       src/ must not read ambient time or entropy
                   (system_clock, steady_clock, time(), clock(),
                   random_device, std::rand, getenv, ...). Simulated
                   time comes from sim::Simulator; benches may time
                   themselves, the library may not.
  raw-rng          all randomness flows through util::rng named forks
                   (vifi::Rng). Raw std engines (mt19937, ...),
                   seed_seq, random_device and #include <random> are
                   flagged everywhere except util/rng itself.
  unordered-iter   range-for over a std::unordered_map/set is flagged
                   in src/ unless annotated order-safe: iteration
                   order is implementation-defined, so anything it
                   feeds into a serialized artifact breaks
                   byte-identity. Scope tracking is lightweight:
                   declarations are collected from the file plus its
                   same-stem header/source sibling.
  json-float       files in src/ or bench/ that emit JSON must render
                   doubles shortest-round-trip: std::to_chars or
                   printf "%.17g" only. Any other %-float conversion
                   in a JSON-emitting file is flagged.
  mutex-guard      shared state under src/runtime/, src/obs/ and
                   src/coord/ is
                   guarded RAII-only: raw .lock()/.unlock() calls are
                   flagged, and declaring a mutex in a unit that never
                   names a lock_guard/scoped_lock/unique_lock/
                   shared_lock is flagged.

Intentional exceptions are per-line annotations carrying a reason:

    for (const auto& [k, r] : attempts_) {  // detlint: unordered-iter-ok(commutative sum)

An annotation on its own line covers the next line. An annotation with
an empty reason, or naming an unknown rule, is itself a finding — there
are no blanket suppressions.

Usage:
    detlint.py [--root DIR]      lint the repo rooted at DIR (default:
                                 the parent of this script's directory)
    detlint.py --self-test       run the fixture suite under
                                 tools/detlint_fixtures/
    detlint.py --list-rules      print rule ids and scopes

Exit status:
    0  clean
    1  findings
    2  bad invocation / unreadable input
"""

import argparse
import os
import re
import sys

RULES = {
    "wall-clock": "ambient time/entropy in src/",
    "raw-rng": "raw std RNG engine instead of util::rng forks",
    "unordered-iter": "range-for over an unordered container in src/",
    "json-float": "non-%.17g float format in a JSON emitter",
    "mutex-guard": "non-RAII mutex use in runtime/, obs/ or coord/",
}

SOURCE_EXTS = (".h", ".cc", ".cpp", ".hpp")

ANNOTATION_RE = re.compile(r"//\s*detlint:\s*([A-Za-z-]+?)-ok\(([^)]*)\)")

WALL_CLOCK_PATTERNS = [
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"\bsteady_clock\b"), "std::chrono::steady_clock"),
    (re.compile(r"\bhigh_resolution_clock\b"),
     "std::chrono::high_resolution_clock"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"(?<![\w:])rand\s*\(\s*\)"), "rand()"),
    (re.compile(r"\btime\s*\("), "time()"),
    (re.compile(r"(?<![\w:])clock\s*\(\s*\)"), "clock()"),
    (re.compile(r"\bgettimeofday\b"), "gettimeofday()"),
    (re.compile(r"\bclock_gettime\b"), "clock_gettime()"),
    (re.compile(r"\blocaltime\b"), "localtime()"),
    (re.compile(r"\bgmtime\b"), "gmtime()"),
    (re.compile(r"\bgetenv\b"), "getenv()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
]

RAW_RNG_PATTERNS = [
    (re.compile(r"\bmt19937(?:_64)?\b"), "std::mt19937"),
    (re.compile(r"\bminstd_rand0?\b"), "std::minstd_rand"),
    (re.compile(r"\bdefault_random_engine\b"), "std::default_random_engine"),
    (re.compile(r"\branlux(?:24|48)(?:_base)?\b"), "std::ranlux"),
    (re.compile(r"\bknuth_b\b"), "std::knuth_b"),
    (re.compile(r"\bmersenne_twister_engine\b"), "std::mersenne_twister_engine"),
    (re.compile(r"\bsubtract_with_carry_engine\b"),
     "std::subtract_with_carry_engine"),
    (re.compile(r"\blinear_congruential_engine\b"),
     "std::linear_congruential_engine"),
    (re.compile(r"\bseed_seq\b"), "std::seed_seq"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"#\s*include\s*<random>"), "#include <random>"),
]

UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set)\s*<[^;(){}]*?>\s*[&*]?\s*(\w+)\s*[;={,)]")

# %-float conversion with no space flag: a space would also match prose
# like "10% from". %.17g is the one blessed spelling.
FLOAT_FMT_RE = re.compile(r"%[-+#0']*\d*(?:\.\d+)?[eEfFgG]")

RAW_LOCK_RE = re.compile(r"\.\s*(?:lock|unlock)\s*\(\s*\)")
MUTEX_DECL_RE = re.compile(r"\bstd\s*::\s*(?:recursive_|shared_|timed_)?mutex\b")
GUARD_RE = re.compile(r"\b(?:lock_guard|scoped_lock|unique_lock|shared_lock)\b")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def render(self, root):
        rel = os.path.relpath(self.path, root)
        return "%s:%d: [%s] %s" % (rel, self.line, self.rule, self.message)


def strip_code(lines, keep_strings=False):
    """Returns lines with comments blanked out (same line numbering), so
    token rules never fire on prose. String/char literals are blanked too
    unless keep_strings is set (the float-format rule must see them)."""
    out = []
    in_block = False
    for line in lines:
        buf = []
        i = 0
        n = len(line)
        while i < n:
            c = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if in_block:
                if c == "*" and nxt == "/":
                    in_block = False
                    i += 2
                else:
                    i += 1
                continue
            if c == "/" and nxt == "/":
                break  # line comment: rest of line is prose
            if c == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if c == '"' or c == "'":
                quote = c
                buf.append(quote)
                i += 1
                while i < n:
                    if line[i] == "\\":
                        if keep_strings:
                            buf.append(line[i:i + 2])
                        i += 2
                        continue
                    if line[i] == quote:
                        i += 1
                        break
                    if keep_strings:
                        buf.append(line[i])
                    i += 1
                buf.append(quote)
                continue
            buf.append(c)
            i += 1
        out.append("".join(buf))
    return out


def parse_annotations(lines, path, findings):
    """Maps line number -> set of rule ids suppressed there. An annotation
    covers its own line and the next one. Bad annotations are findings."""
    suppressed = {}
    for idx, line in enumerate(lines, start=1):
        for match in ANNOTATION_RE.finditer(line):
            rule, reason = match.group(1), match.group(2)
            if rule not in RULES:
                findings.append(Finding(
                    path, idx, "annotation",
                    "unknown detlint rule '%s' (known: %s)"
                    % (rule, ", ".join(sorted(RULES)))))
                continue
            if not reason.strip():
                findings.append(Finding(
                    path, idx, "annotation",
                    "annotation for '%s' must carry a reason: "
                    "// detlint: %s-ok(<why this is safe>)" % (rule, rule)))
                continue
            suppressed.setdefault(idx, set()).add(rule)
            suppressed.setdefault(idx + 1, set()).add(rule)
    return suppressed


def sibling_path(path):
    """stats.cc <-> stats.h in the same directory (lightweight unit scope)."""
    stem, ext = os.path.splitext(path)
    partners = {".cc": (".h", ".hpp"), ".cpp": (".h", ".hpp"),
                ".h": (".cc", ".cpp"), ".hpp": (".cc", ".cpp")}
    for other in partners.get(ext, ()):
        candidate = stem + other
        if os.path.isfile(candidate):
            return candidate
    return None


def read_lines(path):
    with open(path, encoding="utf-8", errors="replace") as f:
        return f.read().splitlines()


def unordered_names(code_lines):
    names = set()
    for line in code_lines:
        for match in UNORDERED_DECL_RE.finditer(line):
            names.add(match.group(1))
    return names


def range_for_exprs(code_lines):
    """Yields (line_number, range_expression) for every range-based for.
    The loop head may span up to three lines."""
    for idx in range(len(code_lines)):
        line = code_lines[idx]
        for match in re.finditer(r"\bfor\s*\(", line):
            head = line[match.end():]
            # Pull in continuation lines until the parens balance.
            depth = 1
            collected = []
            pos = 0
            lines_used = 0
            text = head
            while True:
                while pos < len(text):
                    ch = text[pos]
                    if ch == "(":
                        depth += 1
                    elif ch == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    collected.append(ch)
                    pos += 1
                if depth == 0 or lines_used >= 3 or idx + 1 + lines_used >= len(code_lines):
                    break
                lines_used += 1
                collected.append(" ")
                text = code_lines[idx + lines_used]
                pos = 0
            body = "".join(collected)
            if depth != 0 or ";" in body:
                continue  # classic for loop (or unparseable)
            # Find the range-for ':' — a single colon, not part of '::'.
            colon = -1
            j = 0
            while j < len(body):
                if body[j] == ":":
                    if j + 1 < len(body) and body[j + 1] == ":":
                        j += 2
                        continue
                    if j > 0 and body[j - 1] == ":":
                        j += 1
                        continue
                    colon = j
                    break
                j += 1
            if colon < 0:
                continue
            yield idx + 1, body[colon + 1:].strip()


def scan_file(path, root, findings):
    rel = os.path.relpath(path, root).replace(os.sep, "/")
    raw = read_lines(path)
    code = strip_code(raw)
    suppressed = parse_annotations(raw, path, findings)

    def emit(line_no, rule, message):
        if rule in suppressed.get(line_no, ()):
            return
        findings.append(Finding(path, line_no, rule, message))

    in_src = rel.startswith("src/")
    is_rng_impl = rel in ("src/util/rng.h", "src/util/rng.cc")

    # ---- wall-clock: src/ only ----
    if in_src:
        for idx, line in enumerate(code, start=1):
            for pattern, what in WALL_CLOCK_PATTERNS:
                if pattern.search(line):
                    emit(idx, "wall-clock",
                         "%s reads ambient time/entropy; simulated time "
                         "comes from sim::Simulator, randomness from "
                         "util::rng forks" % what)

    # ---- raw-rng: everywhere except the generator implementation ----
    if not is_rng_impl:
        for idx, line in enumerate(code, start=1):
            for pattern, what in RAW_RNG_PATTERNS:
                if pattern.search(line):
                    emit(idx, "raw-rng",
                         "%s bypasses util::rng; construct streams via "
                         "vifi::Rng named forks so draw order is part of "
                         "the seed contract" % what)

    # ---- unordered-iter: src/ only ----
    if in_src:
        names = unordered_names(code)
        sibling = sibling_path(path)
        if sibling is not None:
            names |= unordered_names(strip_code(read_lines(sibling)))
        for line_no, expr in range_for_exprs(code):
            direct = re.search(r"unordered_(?:map|set)\b", expr)
            named = any(re.search(r"\b%s\b" % re.escape(n), expr)
                        for n in names)
            if direct or named:
                emit(line_no, "unordered-iter",
                     "range-for over an unordered container: iteration "
                     "order is implementation-defined. Annotate "
                     "// detlint: unordered-iter-ok(<reason>) if the sink "
                     "is sorted or commutative")

    # ---- json-float: JSON emitters under src/ and bench/ ----
    if in_src or rel.startswith("bench/"):
        mentions_json = any("json" in line.lower() for line in raw)
        if mentions_json:
            code_with_strings = strip_code(raw, keep_strings=True)
            for idx, line in enumerate(code_with_strings, start=1):
                for match in FLOAT_FMT_RE.finditer(line):
                    if match.group(0) != "%.17g":
                        emit(idx, "json-float",
                             "float format '%s' in a JSON-emitting file; "
                             "use %%.17g (or std::to_chars) so doubles "
                             "round-trip byte-identically"
                             % match.group(0))

    # ---- mutex-guard: src/runtime/, src/obs/ and src/coord/ ----
    if (rel.startswith("src/runtime/") or rel.startswith("src/obs/")
            or rel.startswith("src/coord/")):
        for idx, line in enumerate(code, start=1):
            if RAW_LOCK_RE.search(line):
                emit(idx, "mutex-guard",
                     "raw .lock()/.unlock(); hold mutexes via "
                     "std::lock_guard/std::scoped_lock so every exit path "
                     "releases")
        unit = list(code)
        sibling = sibling_path(path)
        if sibling is not None:
            unit += strip_code(read_lines(sibling))
        if not any(GUARD_RE.search(line) for line in unit):
            for idx, line in enumerate(code, start=1):
                if MUTEX_DECL_RE.search(line):
                    emit(idx, "mutex-guard",
                         "mutex declared but no RAII guard "
                         "(lock_guard/scoped_lock/unique_lock) appears in "
                         "this file or its header/source sibling")


def scan_tree(root):
    findings = []
    scan_dirs = ("src", "bench", "examples", "tests")
    any_dir = False
    for sub in scan_dirs:
        top = os.path.join(root, sub)
        if not os.path.isdir(top):
            continue
        any_dir = True
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    scan_file(os.path.join(dirpath, name), root, findings)
    if not any_dir:
        raise OSError("no src/bench/examples/tests directory under %s" % root)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


# ---------------------------------------------------------------------------
# Self-test: lint the fixture tree and compare against its `// expect:`
# markers. Each marker names the rule that must fire on that line; lines
# without markers must stay clean.
# ---------------------------------------------------------------------------

EXPECT_RE = re.compile(r"//\s*expect:\s*([A-Za-z-]+)")


def collect_expectations(root):
    expected = set()
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for name in sorted(filenames):
            if not name.endswith(SOURCE_EXTS):
                continue
            path = os.path.join(dirpath, name)
            for idx, line in enumerate(read_lines(path), start=1):
                for match in EXPECT_RE.finditer(line):
                    expected.add((os.path.relpath(path, root), idx,
                                  match.group(1)))
    return expected


def self_test():
    fixture_root = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "detlint_fixtures")
    if not os.path.isdir(os.path.join(fixture_root, "src")):
        print("detlint --self-test: fixture tree missing at %s" % fixture_root)
        return 2
    expected = collect_expectations(fixture_root)
    findings = scan_tree(fixture_root)
    actual = set((os.path.relpath(f.path, fixture_root), f.line, f.rule)
                 for f in findings)

    failures = []
    for miss in sorted(expected - actual):
        failures.append("MISSED  %s:%d expected [%s] but nothing fired"
                        % miss)
    for spurious in sorted(actual - expected):
        failures.append("SPURIOUS %s:%d fired [%s] on a line with no "
                        "expectation" % spurious)

    # Every rule class must be demonstrably caught at least once.
    for rule in list(RULES) + ["annotation"]:
        if not any(e[2] == rule for e in expected):
            failures.append("NO-FIXTURE rule '%s' has no positive fixture"
                            % rule)

    # Exit-code contract: findings -> 1 from the CLI path.
    if not findings:
        failures.append("EXIT fixtures produced no findings at all")

    checks = len(expected)
    if failures:
        for f in failures:
            print(f)
        print("detlint --self-test: FAIL (%d problems, %d expectations)"
              % (len(failures), checks))
        return 1
    print("detlint --self-test: PASS (%d expected findings matched exactly "
          "across %d rule classes; clean lines stayed clean)"
          % (checks, len(RULES) + 1))
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        prog="detlint.py",
        description="determinism & concurrency lint for the ViFi repo")
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of tools/)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture suite")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES):
            print("%-15s %s" % (rule, RULES[rule]))
        return 0
    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    root = os.path.abspath(root)
    try:
        findings = scan_tree(root)
    except OSError as err:
        print("detlint: %s" % err, file=sys.stderr)
        return 2
    for finding in findings:
        print(finding.render(root))
    if findings:
        print("detlint: %d finding(s). Fix them or annotate the line with "
              "// detlint: <rule>-ok(<reason>)." % len(findings))
        return 1
    print("detlint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
