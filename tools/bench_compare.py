#!/usr/bin/env python3
"""Compare a google-benchmark JSON result against a committed baseline.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--threshold 0.15]
    bench_compare.py --merge OUT.json IN1.json IN2.json [...]
    bench_compare.py --self-test

Exit status:
    0  no benchmark regressed beyond the threshold
    1  at least one regression beyond the threshold (or a benchmark
       disappeared from CURRENT)
    2  bad invocation / unreadable input

Comparison is by benchmark name. Two entry kinds are understood:

  * time entries — ordinary google-benchmark results, compared on
    `cpu_time` (normalised to ns); smaller is better.
  * value entries — unitless quality metrics (e.g. the fairness curve
    bench/fleet_contention emits) carrying a `value` field instead of
    `cpu_time`, plus optional `bigger_is_better` (default true). The gate
    fails when the value moves beyond the threshold in the *bad*
    direction; a good-direction move is reported as IMPROVED.

Benchmarks present only in CURRENT are listed as "new" and never fail the
gate — committing a refreshed baseline is how they start being tracked.

`--merge` concatenates the `benchmarks` arrays of several result files
(context taken from the first) so quality metrics can ride in the same
BENCH.json artifact as the perf suite.

Output is a table; the `delta` column is (current - baseline) / baseline.
Lines are tagged:

    ok          within threshold
    FASTER /    moved beyond the threshold in the good direction
    IMPROVED    (consider refreshing the baseline to lock the win in)
    REGRESSION  moved beyond the threshold in the bad direction -> exit 1
    new         no baseline entry yet
    MISSING     in the baseline but not in CURRENT -> exit 1
"""

import argparse
import json
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_context(path):
    with open(path) as f:
        doc = json.load(f)
    return doc.get("context", {})


def context_warning(baseline_ctx, current_ctx):
    """Absolute times only transfer between comparable hosts; flag when the
    two results clearly came from different machines."""
    diffs = []
    for key in ("num_cpus", "mhz_per_cpu", "host_name"):
        b, c = baseline_ctx.get(key), current_ctx.get(key)
        if b is not None and c is not None and b != c:
            diffs.append(f"{key}: {b} vs {c}")
    return diffs


def load_benchmarks(path):
    """Returns {name: cpu_time_ns | {"value": v, "bigger": bool}}.

    Plain floats are time entries (ns, smaller is better); dict entries are
    unitless quality metrics with an explicit good direction.
    """
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            # Keep only the mean aggregate when repetitions were used.
            if b.get("aggregate_name") != "mean":
                continue
        name = b.get("name")
        if not name:
            raise ValueError(f"{path}: benchmark entry without a name")
        if "value" in b:
            value = float(b["value"])
            # Zero is a legitimate measurement (e.g. total starvation) and
            # must reach the comparison as a regression; only a *baseline*
            # zero cannot anchor a ratio, which compare() rejects.
            if value < 0.0:
                raise ValueError(
                    f"{path}: {name} has negative value {b['value']}; "
                    "re-record the file")
            out[name.removesuffix("_mean")] = {
                "value": value,
                "bigger": bool(b.get("bigger_is_better", True)),
            }
            continue
        scale = _UNIT_NS.get(b.get("time_unit", "ns"))
        if scale is None:
            raise ValueError(f"{path}: unknown time_unit in {name}")
        if "cpu_time" not in b:
            raise ValueError(
                f"{path}: {name} has no cpu_time or value field; the file "
                "is not a google-benchmark JSON result")
        cpu_time = float(b["cpu_time"]) * scale
        if cpu_time <= 0.0:
            raise ValueError(
                f"{path}: {name} has non-positive cpu_time {b['cpu_time']}; "
                "a zero entry cannot anchor a regression ratio — re-record "
                "the file")
        out[name.removesuffix("_mean")] = cpu_time
    if not out:
        raise ValueError(f"{path}: no benchmarks found")
    return out


def fmt_ns(ns):
    for unit, div in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= div:
            return f"{ns / div:9.2f} {unit}"
    return f"{ns:9.2f} ns"


def _entry_fields(entry):
    """(numeric value, bigger_is_better, rendering) for either entry kind."""
    if isinstance(entry, dict):
        return entry["value"], entry["bigger"], f"{entry['value']:12.4f}"
    return entry, False, fmt_ns(entry)


def compare(baseline, current, threshold):
    """Returns (lines, regressions, missing) for the comparison table."""
    lines = []
    regressions = []
    missing = []
    width = max(map(len, list(baseline) + list(current)))
    for name in sorted(set(baseline) | set(current)):
        base = baseline.get(name)
        cur = current.get(name)
        if base is None:
            _, _, cur_s = _entry_fields(cur)
            lines.append(f"{name:<{width}}  {'':>12}  {cur_s:>12}  "
                         f"{'':>8}  new")
            continue
        if cur is None:
            _, _, base_s = _entry_fields(base)
            lines.append(f"{name:<{width}}  {base_s:>12}  {'':>12}  "
                         f"{'':>8}  MISSING")
            missing.append(name)
            continue
        if isinstance(base, dict) != isinstance(cur, dict):
            # Nanoseconds vs a unitless value is not a comparison: a
            # benchmark changing kind must be renamed, not shadowed.
            raise ValueError(
                f"{name}: entry kind mismatch (time vs value) between "
                "baseline and current")
        base_v, bigger, base_s = _entry_fields(base)
        if base_v <= 0.0:
            raise ValueError(
                f"{name}: non-positive baseline value cannot anchor a "
                "regression ratio — re-record the baseline")
        cur_v, _, cur_s = _entry_fields(cur)
        delta = (cur_v - base_v) / base_v
        # The bad direction is up for times, down for bigger-is-better
        # quality metrics.
        bad = -delta if bigger else delta
        if bad > threshold:
            tag = "REGRESSION"
            regressions.append((name, bad))
        elif bad < -threshold:
            tag = "IMPROVED" if bigger else "FASTER"
        else:
            tag = "ok"
        lines.append(f"{name:<{width}}  {base_s:>12}  {cur_s:>12}  "
                     f"{delta:+7.1%}  {tag}")
    return lines, regressions, missing


def _comparison_keys(doc, path):
    """The names \p doc contributes at comparison time: non-mean aggregates
    dropped, the `_mean` suffix stripped — mirroring load_benchmarks().
    Repeated names *within* one file (repetition iterations + aggregates)
    are normal google-benchmark output and collapse to one key."""
    keys = set()
    for b in doc.get("benchmarks", []):
        if (b.get("run_type") == "aggregate"
                and b.get("aggregate_name") != "mean"):
            continue
        name = b.get("name")
        if not name:
            raise ValueError(f"{path}: benchmark entry without a name")
        keys.add(name.removesuffix("_mean"))
    return keys


def merge(out_path, in_paths):
    """Concatenates the benchmarks arrays of \p in_paths into \p out_path,
    keeping the first input's context. Inputs contributing the same
    comparison key are an error — a metric silently shadowing a perf
    result must not pass the gate."""
    context = {}
    benchmarks = []
    seen = set()
    for i, path in enumerate(in_paths):
        with open(path) as f:
            doc = json.load(f)
        if i == 0:
            context = doc.get("context", {})
        keys = _comparison_keys(doc, path)
        overlap = seen & keys
        if overlap:
            raise ValueError(
                f"{path}: duplicate benchmark name(s) across inputs: "
                + ", ".join(sorted(overlap)))
        seen |= keys
        benchmarks.extend(doc.get("benchmarks", []))
    if not benchmarks:
        raise ValueError("merge produced no benchmarks")
    doc = {"context": context, "benchmarks": benchmarks}
    with open(out_path, "w") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")
    return len(benchmarks)


def _write_result(directory, filename, benchmarks):
    import os
    path = os.path.join(directory, filename)
    with open(path, "w") as f:
        json.dump({"context": {}, "benchmarks": benchmarks}, f)
    return path


def self_test():
    import tempfile

    base = {"BM_a": 100.0, "BM_b": 100.0, "BM_gone": 50.0}
    # Injected slowdown on BM_a must trip the gate; BM_gone missing must too.
    _, regressions, missing = compare(
        base, {"BM_a": 120.0, "BM_b": 101.0, "BM_new": 5.0}, 0.15)
    assert [n for n, _ in regressions] == ["BM_a"], regressions
    assert missing == ["BM_gone"], missing
    # Within threshold: clean pass.
    _, regressions, missing = compare(
        {"BM_a": 100.0}, {"BM_a": 114.0}, 0.15)
    assert not regressions and not missing
    # Improvement is never a failure.
    _, regressions, missing = compare(
        {"BM_a": 100.0}, {"BM_a": 40.0}, 0.15)
    assert not regressions and not missing

    # Value entries (bigger is better): a drop beyond the threshold is the
    # regression direction, a rise is an improvement, small moves are ok.
    val = lambda v: {"value": v, "bigger": True}  # noqa: E731
    _, regressions, missing = compare(
        {"jain": val(1.0)}, {"jain": val(0.80)}, 0.15)
    assert [n for n, _ in regressions] == ["jain"], regressions
    _, regressions, _ = compare(
        {"pkts": val(100.0)}, {"pkts": val(130.0)}, 0.15)
    assert not regressions, "bigger-is-better rise must not fail"
    _, regressions, _ = compare(
        {"jain": val(0.90)}, {"jain": val(0.85)}, 0.15)
    assert not regressions, "within-threshold drop must pass"
    # Value entries with bigger_is_better=False (fidelity distances like
    # validation_synth's): the bad direction is UP, a drop is IMPROVED.
    sval = lambda v: {"value": v, "bigger": False}  # noqa: E731
    _, regressions, _ = compare(
        {"ks": sval(0.10)}, {"ks": sval(0.20)}, 0.15)
    assert [n for n, _ in regressions] == ["ks"], \
        "smaller-is-better rise must fail"
    _, regressions, _ = compare(
        {"ks": sval(0.10)}, {"ks": sval(0.05)}, 0.15)
    assert not regressions, "smaller-is-better drop must not fail"
    _, regressions, _ = compare(
        {"ks": sval(0.10)}, {"ks": sval(0.11)}, 0.15)
    assert not regressions, "within-threshold rise must pass"
    # Mixed time + value dicts compare independently.
    _, regressions, missing = compare(
        {"BM_a": 100.0, "jain": val(1.0)},
        {"BM_a": 100.0, "jain": val(1.0)}, 0.15)
    assert not regressions and not missing
    # A name changing kind between files is malformed input, not a delta.
    try:
        compare({"BM_a": 100.0}, {"BM_a": val(1.0)}, 0.15)
        raise AssertionError("kind mismatch must raise")
    except ValueError:
        pass
    # A current value collapsing to zero is a REGRESSION, not a malformed
    # file; a zero *baseline* cannot anchor the ratio and must raise.
    _, regressions, _ = compare(
        {"pkts": val(100.0)}, {"pkts": {"value": 0.0, "bigger": True}}, 0.15)
    assert [n for n, _ in regressions] == ["pkts"], regressions
    try:
        compare({"pkts": {"value": 0.0, "bigger": True}},
                {"pkts": val(100.0)}, 0.15)
        raise AssertionError("zero baseline value must raise")
    except ValueError:
        pass

    # Malformed inputs must exit 2 with a diagnostic, not crash: a zero
    # baseline entry (previously ZeroDivisionError in the delta) and an
    # entry without cpu_time (previously an unhandled KeyError).
    with tempfile.TemporaryDirectory() as tmp:
        ok = _write_result(tmp, "ok.json", [
            {"name": "BM_a", "cpu_time": 100.0, "time_unit": "ns"}])
        zero = _write_result(tmp, "zero.json", [
            {"name": "BM_a", "cpu_time": 0.0, "time_unit": "ns"}])
        no_cpu = _write_result(tmp, "no_cpu.json", [
            {"name": "BM_a", "real_time": 100.0, "time_unit": "ns"}])
        assert main([zero, ok]) == 2, "zero baseline entry must exit 2"
        assert main([ok, zero]) == 2, "zero current entry must exit 2"
        assert main([no_cpu, ok]) == 2, "missing cpu_time must exit 2"
        assert main([ok, ok]) == 0, "well-formed fixture must pass"

        # Value entries round-trip through files, and --merge concatenates
        # results so quality metrics gate alongside the perf suite.
        import os
        fair = _write_result(tmp, "fair.json", [
            {"name": "FC/jain", "run_type": "iteration", "value": 0.9,
             "bigger_is_better": True}])
        merged = os.path.join(tmp, "merged.json")
        assert main(["--merge", merged, ok, fair]) == 0
        assert main([merged, merged]) == 0, "merged file must self-compare"
        loaded = load_benchmarks(merged)
        assert set(loaded) == {"BM_a", "FC/jain"}, loaded
        assert main(["--merge", merged, ok, ok]) == 2, \
            "duplicate names must fail the merge"
        # The guard works on *comparison* keys: an aggregate 'X_mean' and a
        # value entry 'X' collapse to the same key and must not merge.
        mean = _write_result(tmp, "mean.json", [
            {"name": "BM_a_mean", "run_type": "aggregate",
             "aggregate_name": "mean", "cpu_time": 100.0,
             "time_unit": "ns"}])
        assert main(["--merge", merged, mean, ok]) == 2, \
            "'_mean' aggregate shadowing a plain entry must fail the merge"
        bad_fair = _write_result(tmp, "bad_fair.json", [
            {"name": "FC/jain", "run_type": "iteration", "value": 0.5,
             "bigger_is_better": True}])
        assert main([fair, bad_fair]) == 1, \
            "fairness collapse must trip the gate"
        assert main([bad_fair, fair]) == 0, \
            "fairness improvement must pass"
        # Smaller-is-better entries round-trip through files too: a
        # fidelity distance growing past the threshold fails, shrinking
        # passes.
        ks_ok = _write_result(tmp, "ks_ok.json", [
            {"name": "VS/ks", "run_type": "iteration", "value": 0.10,
             "bigger_is_better": False}])
        ks_bad = _write_result(tmp, "ks_bad.json", [
            {"name": "VS/ks", "run_type": "iteration", "value": 0.20,
             "bigger_is_better": False}])
        assert main([ks_ok, ks_bad]) == 1, \
            "fidelity-distance growth must trip the gate"
        assert main([ks_bad, ks_ok]) == 0, \
            "fidelity-distance shrink must pass"
    print("bench_compare self-test: OK")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        help="BASELINE CURRENT, or with --merge: "
                             "OUT IN1 IN2 [...]")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max tolerated regression fraction "
                             "(default 0.15)")
    parser.add_argument("--merge", action="store_true",
                        help="concatenate result files instead of comparing")
    parser.add_argument("--self-test", action="store_true",
                        help="run internal fixtures and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if args.merge:
        if len(args.paths) < 3:
            parser.error("--merge needs OUT and at least two inputs")
        try:
            n = merge(args.paths[0], args.paths[1:])
        except (OSError, ValueError, KeyError) as e:
            print(f"bench_compare: {e}", file=sys.stderr)
            return 2
        print(f"merged {len(args.paths) - 1} files "
              f"({n} benchmarks) into {args.paths[0]}")
        return 0
    if len(args.paths) != 2:
        parser.error("BASELINE and CURRENT are required "
                     "(or --merge / --self-test)")

    try:
        baseline = load_benchmarks(args.paths[0])
        current = load_benchmarks(args.paths[1])
    except (OSError, ValueError, KeyError) as e:
        print(f"bench_compare: {e}", file=sys.stderr)
        return 2

    baseline_path, current_path = args.paths
    try:
        lines, regressions, missing = compare(baseline, current,
                                              args.threshold)
    except ValueError as e:
        print(f"bench_compare: {e}", file=sys.stderr)
        return 2
    print(f"benchmark comparison: {current_path} vs baseline "
          f"{baseline_path} (threshold {args.threshold:.0%})")
    ctx_diffs = context_warning(load_context(baseline_path),
                                load_context(current_path))
    if ctx_diffs:
        print("WARNING: baseline and current were recorded on different "
              "hosts (" + "; ".join(ctx_diffs) + "). Absolute-time deltas "
              "may reflect hardware, not code — refresh the baseline from "
              "this runner class's artifact if the flagged deltas look "
              "uniform across benchmarks.")
    for line in lines:
        print(line)
    if missing:
        print(f"\n{len(missing)} benchmark(s) missing from {current_path}; "
              "the suite must not silently lose coverage.")
    if regressions:
        worst = max(delta for _, delta in regressions)
        print(f"\nFAIL: {len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%} (worst {worst:+.1%}).")
        return 1
    if missing:
        return 1
    print("\nOK: no regressions beyond threshold.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
