#!/usr/bin/env python3
"""Compare a google-benchmark JSON result against a committed baseline.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--threshold 0.15]
    bench_compare.py --self-test

Exit status:
    0  no benchmark regressed beyond the threshold
    1  at least one regression beyond the threshold (or a benchmark
       disappeared from CURRENT)
    2  bad invocation / unreadable input

Comparison is by benchmark name on `cpu_time` (normalised to ns).
Benchmarks present only in CURRENT are listed as "new" and never fail the
gate — committing a refreshed baseline is how they start being tracked.

Output is a table; the `delta` column is (current - baseline) / baseline,
negative = faster. Lines are tagged:

    ok          within threshold
    FASTER      improved by more than the threshold (consider refreshing
                the baseline so the win is locked in)
    REGRESSION  slower by more than the threshold -> exit 1
    new         no baseline entry yet
    MISSING     in the baseline but not in CURRENT -> exit 1
"""

import argparse
import json
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_context(path):
    with open(path) as f:
        doc = json.load(f)
    return doc.get("context", {})


def context_warning(baseline_ctx, current_ctx):
    """Absolute times only transfer between comparable hosts; flag when the
    two results clearly came from different machines."""
    diffs = []
    for key in ("num_cpus", "mhz_per_cpu", "host_name"):
        b, c = baseline_ctx.get(key), current_ctx.get(key)
        if b is not None and c is not None and b != c:
            diffs.append(f"{key}: {b} vs {c}")
    return diffs


def load_benchmarks(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            # Keep only the mean aggregate when repetitions were used.
            if b.get("aggregate_name") != "mean":
                continue
        name = b.get("name")
        if not name:
            raise ValueError(f"{path}: benchmark entry without a name")
        scale = _UNIT_NS.get(b.get("time_unit", "ns"))
        if scale is None:
            raise ValueError(f"{path}: unknown time_unit in {name}")
        if "cpu_time" not in b:
            raise ValueError(
                f"{path}: {name} has no cpu_time field; the file is not a "
                "google-benchmark JSON result")
        cpu_time = float(b["cpu_time"]) * scale
        if cpu_time <= 0.0:
            raise ValueError(
                f"{path}: {name} has non-positive cpu_time {b['cpu_time']}; "
                "a zero entry cannot anchor a regression ratio — re-record "
                "the file")
        out[name.removesuffix("_mean")] = cpu_time
    if not out:
        raise ValueError(f"{path}: no benchmarks found")
    return out


def fmt_ns(ns):
    for unit, div in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= div:
            return f"{ns / div:9.2f} {unit}"
    return f"{ns:9.2f} ns"


def compare(baseline, current, threshold):
    """Returns (lines, regressions, missing) for the comparison table."""
    lines = []
    regressions = []
    missing = []
    width = max(map(len, list(baseline) + list(current)))
    for name in sorted(set(baseline) | set(current)):
        base = baseline.get(name)
        cur = current.get(name)
        if base is None:
            lines.append(f"{name:<{width}}  {'':>12}  {fmt_ns(cur):>12}  "
                         f"{'':>8}  new")
            continue
        if cur is None:
            lines.append(f"{name:<{width}}  {fmt_ns(base):>12}  {'':>12}  "
                         f"{'':>8}  MISSING")
            missing.append(name)
            continue
        delta = (cur - base) / base
        if delta > threshold:
            tag = "REGRESSION"
            regressions.append((name, delta))
        elif delta < -threshold:
            tag = "FASTER"
        else:
            tag = "ok"
        lines.append(f"{name:<{width}}  {fmt_ns(base):>12}  {fmt_ns(cur):>12}  "
                     f"{delta:+7.1%}  {tag}")
    return lines, regressions, missing


def _write_result(directory, filename, benchmarks):
    import os
    path = os.path.join(directory, filename)
    with open(path, "w") as f:
        json.dump({"context": {}, "benchmarks": benchmarks}, f)
    return path


def self_test():
    import tempfile

    base = {"BM_a": 100.0, "BM_b": 100.0, "BM_gone": 50.0}
    # Injected slowdown on BM_a must trip the gate; BM_gone missing must too.
    _, regressions, missing = compare(
        base, {"BM_a": 120.0, "BM_b": 101.0, "BM_new": 5.0}, 0.15)
    assert [n for n, _ in regressions] == ["BM_a"], regressions
    assert missing == ["BM_gone"], missing
    # Within threshold: clean pass.
    _, regressions, missing = compare(
        {"BM_a": 100.0}, {"BM_a": 114.0}, 0.15)
    assert not regressions and not missing
    # Improvement is never a failure.
    _, regressions, missing = compare(
        {"BM_a": 100.0}, {"BM_a": 40.0}, 0.15)
    assert not regressions and not missing

    # Malformed inputs must exit 2 with a diagnostic, not crash: a zero
    # baseline entry (previously ZeroDivisionError in the delta) and an
    # entry without cpu_time (previously an unhandled KeyError).
    with tempfile.TemporaryDirectory() as tmp:
        ok = _write_result(tmp, "ok.json", [
            {"name": "BM_a", "cpu_time": 100.0, "time_unit": "ns"}])
        zero = _write_result(tmp, "zero.json", [
            {"name": "BM_a", "cpu_time": 0.0, "time_unit": "ns"}])
        no_cpu = _write_result(tmp, "no_cpu.json", [
            {"name": "BM_a", "real_time": 100.0, "time_unit": "ns"}])
        assert main([zero, ok]) == 2, "zero baseline entry must exit 2"
        assert main([ok, zero]) == 2, "zero current entry must exit 2"
        assert main([no_cpu, ok]) == 2, "missing cpu_time must exit 2"
        assert main([ok, ok]) == 0, "well-formed fixture must pass"
    print("bench_compare self-test: OK")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("current", nargs="?")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max tolerated slowdown fraction (default 0.15)")
    parser.add_argument("--self-test", action="store_true",
                        help="run internal fixtures and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        parser.error("BASELINE and CURRENT are required (or --self-test)")

    try:
        baseline = load_benchmarks(args.baseline)
        current = load_benchmarks(args.current)
    except (OSError, ValueError, KeyError) as e:
        print(f"bench_compare: {e}", file=sys.stderr)
        return 2

    lines, regressions, missing = compare(baseline, current, args.threshold)
    print(f"benchmark comparison: {args.current} vs baseline "
          f"{args.baseline} (threshold {args.threshold:.0%})")
    ctx_diffs = context_warning(load_context(args.baseline),
                                load_context(args.current))
    if ctx_diffs:
        print("WARNING: baseline and current were recorded on different "
              "hosts (" + "; ".join(ctx_diffs) + "). Absolute-time deltas "
              "may reflect hardware, not code — refresh the baseline from "
              "this runner class's artifact if the flagged deltas look "
              "uniform across benchmarks.")
    for line in lines:
        print(line)
    if missing:
        print(f"\n{len(missing)} benchmark(s) missing from {args.current}; "
              "the suite must not silently lose coverage.")
    if regressions:
        worst = max(delta for _, delta in regressions)
        print(f"\nFAIL: {len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%} (worst {worst:+.1%}).")
        return 1
    if missing:
        return 1
    print("\nOK: no regressions beyond threshold.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
