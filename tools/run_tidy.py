#!/usr/bin/env python3
"""Run clang-tidy (the repo's .clang-tidy, warnings-as-errors) over every
translation unit in a CMake compile_commands.json.

DetGuard prong 1 driver: used by the `lint` build target and the CI `lint`
job. Translation units outside the repo's src/bench/examples/tests trees
(and anything CMake generated into the build directory) are skipped, so
third-party code is never diagnosed.

Usage:
    run_tidy.py [--build BUILD_DIR] [--jobs N] [--clang-tidy BIN] [--require]

clang-tidy is located via --clang-tidy, the CLANG_TIDY environment
variable, or a PATH search over versioned names. Without --require a
missing binary is a skip (exit 0) so developer machines without the tool
still build; CI passes --require to make the prong mandatory there.

Exit status:
    0  clean (or clang-tidy unavailable without --require)
    1  at least one diagnostic
    2  bad invocation / missing compile_commands.json
"""

import argparse
import concurrent.futures
import json
import os
import shutil
import subprocess
import sys

CANDIDATE_NAMES = ["clang-tidy"] + [
    "clang-tidy-%d" % v for v in range(21, 13, -1)]

LINT_DIRS = ("src", "bench", "examples", "tests")


def find_clang_tidy(explicit):
    if explicit:
        return explicit if shutil.which(explicit) else None
    env = os.environ.get("CLANG_TIDY")
    if env:
        return env if shutil.which(env) else None
    for name in CANDIDATE_NAMES:
        if shutil.which(name):
            return name
    return None


def lintable_sources(build_dir, repo_root):
    db_path = os.path.join(build_dir, "compile_commands.json")
    try:
        with open(db_path, encoding="utf-8") as f:
            entries = json.load(f)
    except OSError as err:
        raise SystemExit(
            "run_tidy: cannot read %s (%s). Configure with "
            "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON first." % (db_path, err))
    roots = tuple(os.path.join(repo_root, d) + os.sep for d in LINT_DIRS)
    files = set()
    for entry in entries:
        path = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"]))
        if path.startswith(roots):
            files.add(path)
    return sorted(files)


def run_one(binary, build_dir, path):
    proc = subprocess.run(
        [binary, "--quiet", "-p", build_dir, path],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    return path, proc.returncode, proc.stdout, proc.stderr


def main(argv):
    parser = argparse.ArgumentParser(
        prog="run_tidy.py",
        description="clang-tidy over the repo's compile database")
    parser.add_argument("--build", default="build",
                        help="build directory holding compile_commands.json")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    parser.add_argument("--clang-tidy", default=None,
                        help="clang-tidy binary (default: $CLANG_TIDY or "
                             "PATH search)")
    parser.add_argument("--require", action="store_true",
                        help="fail instead of skipping when clang-tidy is "
                             "not installed (CI mode)")
    args = parser.parse_args(argv)

    repo_root = os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    binary = find_clang_tidy(args.clang_tidy)
    if binary is None:
        if args.require:
            print("run_tidy: clang-tidy not found and --require set",
                  file=sys.stderr)
            return 2
        print("run_tidy: clang-tidy not installed; skipping (the CI lint "
              "job runs it with --require)")
        return 0

    try:
        files = lintable_sources(args.build, repo_root)
    except SystemExit as err:
        print(err, file=sys.stderr)
        return 2
    if not files:
        print("run_tidy: no lintable translation units in %s" % args.build,
              file=sys.stderr)
        return 2

    print("run_tidy: %s over %d translation units (%d jobs)"
          % (binary, len(files), args.jobs))
    failures = 0
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for path, code, out, err in pool.map(
                lambda p: run_one(binary, args.build, p), files):
            rel = os.path.relpath(path, repo_root)
            if code != 0:
                failures += 1
                print("FAIL %s" % rel)
                if out.strip():
                    print(out.rstrip())
                if err.strip():
                    print(err.rstrip(), file=sys.stderr)
            elif out.strip():
                # Diagnostics can surface even with exit 0 (e.g. from
                # headers filtered into another TU's run); show them.
                print(out.rstrip())
    if failures:
        print("run_tidy: %d translation unit(s) failed" % failures)
        return 1
    print("run_tidy: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
