// The DieselNet trace workflow (§2.2, §5.1): record a beacon log while the
// bus drives, save it in the public trace format, load it back, convert it
// into the per-second loss schedule, and run a trace-driven ViFi
// experiment on top — the exact methodology the paper uses for every
// DieselNet result.

#include <cstdio>
#include <iostream>

#include "apps/cbr.h"
#include "scenario/campaign.h"
#include "scenario/live.h"
#include "scenario/testbed.h"
#include "trace/trace_io.h"
#include "util/table.h"

int main() {
  using namespace vifi;

  // 1. Record: one bus trip on channel 1, beacons only (we cannot modify
  //    the town's BSes, §2.2).
  const scenario::Testbed bed = scenario::make_dieselnet(1);
  scenario::CampaignConfig config;
  config.days = 1;
  config.trips_per_day = 1;
  config.log_probes = false;
  config.seed = 4242;
  const trace::Campaign campaign = generate_campaign(bed, config);
  const trace::MeasurementTrace& recorded = campaign.trips.front();
  std::cout << "Recorded " << recorded.vehicle_beacons.size()
            << " beacons from " << recorded.bs_ids.size() << " BSes over "
            << recorded.duration.to_string() << "\n";

  // 2. Save + reload in the text format (what traces.cs.umass.edu ships).
  const std::string path = "/tmp/dieselnet_ch1_trip0.vifitrace";
  trace::save_trace_file(recorded, path);
  const trace::MeasurementTrace loaded = trace::load_trace_file(path);
  std::cout << "Round-tripped the trace through " << path << " ("
            << loaded.vehicle_beacons.size() << " beacons survive)\n\n";

  // 3. Convert: per-second beacon loss ratio becomes the symmetric packet
  //    loss rate; never-co-visible BS pairs are unreachable, the rest get
  //    Uniform(0,1) inter-BS loss (§5.1).
  trace::LossScheduleOptions options;
  options.vehicle = bed.vehicle();
  const auto schedule =
      trace::build_loss_schedule(loaded, options, Rng(5));
  std::cout << "Loss schedule covers " << schedule->horizon_seconds()
            << " seconds\n";

  // 4. Replay: run the live ViFi stack against the schedule with a CBR
  //    probe workload.
  scenario::LiveTrip trip(bed, loaded, core::SystemConfig{}, /*seed=*/6);
  trip.run_until(scenario::LiveTrip::warmup());
  apps::CbrWorkload cbr(trip.simulator(), trip.transport());
  const Time end = loaded.duration;
  cbr.start(end);
  trip.run_until(end + Time::seconds(1.0));

  TextTable table("Trace-driven ViFi replay");
  table.set_header({"metric", "value"});
  table.add_row({"probe packets sent", std::to_string(cbr.sent())});
  table.add_row({"delivered", std::to_string(cbr.delivered())});
  table.add_row(
      {"delivery rate",
       TextTable::pct(static_cast<double>(cbr.delivered()) /
                      static_cast<double>(std::max<std::int64_t>(1, cbr.sent())))});
  table.add_row({"anchor switches",
                 std::to_string(trip.system().vehicle().anchor_switches())});
  table.print(std::cout);

  std::remove(path.c_str());
  return 0;
}
