// The fleet trace workflow (§2.2, §5.1 + TraceForge): record a multi-bus
// beacon campaign while the fleet drives, fit a generative model from the
// logs, synthesize an 8-bus fleet of statistically-matched traces, publish
// them as a TraceCatalog, and replay the catalog through the live ViFi
// stack — the paper's DieselNet methodology scaled from "one hand-written
// trip" to "as many fleets as you can imagine".

#include <cstdio>
#include <filesystem>
#include <iostream>

#include "apps/cbr.h"
#include "scenario/campaign.h"
#include "scenario/live.h"
#include "scenario/testbed.h"
#include "tracegen/catalog.h"
#include "tracegen/fit.h"
#include "tracegen/synth.h"
#include "util/table.h"

int main() {
  using namespace vifi;

  // 1. Record: a 2-bus campaign on channel 1, beacons only (we cannot
  //    modify the town's BSes, §2.2). Every vehicle logs its own trace.
  const scenario::Testbed recording_bed = scenario::make_dieselnet(1, 2);
  scenario::CampaignConfig config;
  config.days = 1;
  config.trips_per_day = 2;
  config.log_probes = false;
  config.seed = 4242;
  const trace::Campaign recorded = generate_campaign(recording_bed, config);
  std::size_t beacons = 0;
  for (const auto& t : recorded.trips) beacons += t.vehicle_beacons.size();
  std::cout << "Recorded " << recorded.trips.size() << " traces ("
            << recording_bed.fleet_size() << " buses x " << config.trips_per_day
            << " trips, " << beacons << " beacons)\n";

  // 2. Fit: contact structure, loss levels and Gilbert–Elliott burstiness,
  //    pooled across every bus and trip.
  const tracegen::TraceModel model = tracegen::fit_model(recorded);
  std::cout << "Fitted " << model.links.size() << " BS link models from "
            << model.source_trips << " traces\n";

  // 3. Synthesize: an 8-bus fleet the recording never had, statistically
  //    matched and deterministic per seed.
  tracegen::SynthesisSpec spec;
  spec.vehicles = 8;
  spec.trips_per_day = 1;
  spec.seed = 77;
  const trace::Campaign synthetic = tracegen::synthesize_fleet(model, spec);

  // 4. Publish: a manifest-backed TraceCatalog, the unit replay scenarios
  //    ship in (what traces.cs.umass.edu would carry today).
  const std::string dir =
      (std::filesystem::temp_directory_path() / "vifi_trace_workflow")
          .string();
  std::filesystem::remove_all(dir);
  tracegen::write_catalog(dir, "synthetic8", synthetic);
  const auto catalog = tracegen::load_catalog_shared(dir);
  std::cout << "Catalog '" << catalog->name() << "': " << catalog->testbed()
            << ", fleet " << catalog->fleet_size() << ", "
            << catalog->trip_groups() << " trip group(s) in " << dir << "\n\n";

  // 5. Replay: the whole 8-bus fleet rides one trip group; every bus gets
  //    its own transport and CBR probe stream over the fleet loss schedule
  //    built straight from the catalog.
  const scenario::Testbed bed =
      scenario::make_dieselnet(1, catalog->fleet_size());
  scenario::LiveTrip trip(bed, *catalog, /*trip_group=*/0,
                          core::SystemConfig{}, /*trip_seed=*/6);
  trip.run_until(scenario::LiveTrip::warmup());
  std::vector<std::unique_ptr<apps::CbrWorkload>> cbrs;
  for (const auto& transport : trip.transports())
    cbrs.push_back(
        std::make_unique<apps::CbrWorkload>(trip.simulator(), *transport));
  // End at the trace's absolute horizon: the loss schedule reads 100%
  // lossy beyond its recorded seconds.
  const Time end = std::max(trip.simulator().now(),
                            catalog->fleet_trip(0).front()->duration);
  for (auto& cbr : cbrs) cbr->start(end);
  trip.run_until(end + Time::seconds(1.0));

  TextTable table("Synthetic 8-bus fleet replay (live ViFi)");
  table.set_header({"bus", "sent", "delivered", "delivery rate"});
  std::int64_t all_sent = 0, all_delivered = 0;
  for (std::size_t v = 0; v < cbrs.size(); ++v) {
    all_sent += cbrs[v]->sent();
    all_delivered += cbrs[v]->delivered();
    table.add_row(
        {bed.vehicle_ids()[v].to_string(), std::to_string(cbrs[v]->sent()),
         std::to_string(cbrs[v]->delivered()),
         TextTable::pct(static_cast<double>(cbrs[v]->delivered()) /
                        std::max<std::int64_t>(1, cbrs[v]->sent()))});
  }
  table.add_row({"fleet", std::to_string(all_sent),
                 std::to_string(all_delivered),
                 TextTable::pct(static_cast<double>(all_delivered) /
                                std::max<std::int64_t>(1, all_sent))});
  table.print(std::cout);

  const mac::MediumStats ms = trip.medium_stats();
  std::cout << "\nJain(delivery) over the fleet: "
            << TextTable::num(ms.jain_frames_received(bed.vehicle_ids()), 3)
            << "\n";

  std::filesystem::remove_all(dir);
  return 0;
}
