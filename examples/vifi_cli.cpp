// vifi_cli — run a configurable experiment from the command line.
//
//   vifi_cli [--testbed vanlan|dieselnet1|dieselnet6]
//            [--protocol vifi|brr|diversity]
//            [--app cbr|voip|tcp]
//            [--duration SECONDS] [--seed N]
//            [--max-aux K] [--inorder] [--variant vifi|g1|g2|g3]
//
// Prints link/application metrics for the chosen combination; every knob
// maps 1:1 onto the public API, so this doubles as executable
// documentation of the configuration space.

#include <cstring>
#include <iostream>
#include <string>

#include "apps/cbr.h"
#include "apps/transfer_driver.h"
#include "apps/voip.h"
#include "scenario/live.h"
#include "scenario/testbed.h"
#include "util/table.h"

using namespace vifi;

namespace {

struct Options {
  std::string testbed = "vanlan";
  std::string protocol = "vifi";
  std::string app = "cbr";
  double duration_s = 0.0;  // 0 = one trip
  std::uint64_t seed = 1;
  int max_aux = -1;
  bool inorder = false;
  std::string variant = "vifi";
};

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--testbed vanlan|dieselnet1|dieselnet6]"
         " [--protocol vifi|brr|diversity] [--app cbr|voip|tcp]"
         " [--duration SECONDS] [--seed N] [--max-aux K] [--inorder]"
         " [--variant vifi|g1|g2|g3]\n";
  return 2;
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](std::string& out) {
      if (i + 1 >= argc) return false;
      out = argv[++i];
      return true;
    };
    std::string value;
    if (arg == "--testbed" && next(value)) {
      opt.testbed = value;
    } else if (arg == "--protocol" && next(value)) {
      opt.protocol = value;
    } else if (arg == "--app" && next(value)) {
      opt.app = value;
    } else if (arg == "--duration" && next(value)) {
      opt.duration_s = std::stod(value);
    } else if (arg == "--seed" && next(value)) {
      opt.seed = std::stoull(value);
    } else if (arg == "--max-aux" && next(value)) {
      opt.max_aux = std::stoi(value);
    } else if (arg == "--inorder") {
      opt.inorder = true;
    } else if (arg == "--variant" && next(value)) {
      opt.variant = value;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) return usage(argv[0]);

  // Testbed.
  scenario::Testbed bed = [&] {
    if (opt.testbed == "vanlan") return scenario::make_vanlan();
    if (opt.testbed == "dieselnet1") return scenario::make_dieselnet(1);
    if (opt.testbed == "dieselnet6") return scenario::make_dieselnet(6);
    std::cerr << "unknown testbed: " << opt.testbed << "\n";
    std::exit(usage(argv[0]));
  }();

  // Protocol configuration.
  core::SystemConfig config;
  if (opt.protocol == "brr") {
    config.vifi.diversity = false;
    config.vifi.salvage = false;
  } else if (opt.protocol == "diversity") {
    config.vifi.salvage = false;
  } else if (opt.protocol != "vifi") {
    std::cerr << "unknown protocol: " << opt.protocol << "\n";
    return usage(argv[0]);
  }
  config.vifi.max_auxiliaries = opt.max_aux;
  config.vifi.inorder_delivery = opt.inorder;
  if (opt.variant == "g1") config.vifi.variant = core::RelayVariant::NoG1;
  else if (opt.variant == "g2") config.vifi.variant = core::RelayVariant::NoG2;
  else if (opt.variant == "g3") config.vifi.variant = core::RelayVariant::NoG3;
  else if (opt.variant != "vifi") {
    std::cerr << "unknown variant: " << opt.variant << "\n";
    return usage(argv[0]);
  }
  if (opt.app == "cbr") config.vifi.max_retx = 0;  // link-layer experiment

  const Time duration = opt.duration_s > 0.0 ? Time::seconds(opt.duration_s)
                                             : bed.trip_duration();

  std::cout << "testbed=" << bed.layout().name << " protocol=" << opt.protocol
            << " app=" << opt.app << " duration=" << duration.to_string()
            << " seed=" << opt.seed << "\n\n";

  scenario::LiveTrip trip(bed, config, opt.seed);
  trip.run_until(scenario::LiveTrip::warmup());
  const Time end = trip.simulator().now() + duration;

  TextTable table("results");
  table.set_header({"metric", "value"});

  if (opt.app == "cbr") {
    apps::CbrWorkload cbr(trip.simulator(), trip.transport());
    cbr.start(end);
    trip.run_until(end + Time::seconds(1.0));
    const auto lengths = analysis::session_lengths_s(cbr.slot_stream(),
                                                     analysis::SessionDef{});
    table.add_row({"probes sent", std::to_string(cbr.sent())});
    table.add_row({"delivered", std::to_string(cbr.delivered())});
    table.add_row(
        {"delivery rate",
         TextTable::pct(static_cast<double>(cbr.delivered()) /
                        static_cast<double>(std::max<std::int64_t>(
                            1, cbr.sent())))});
    table.add_row({"median session (s)",
                   TextTable::num(analysis::median_session_length(lengths), 1)});
  } else if (opt.app == "voip") {
    apps::VoipCall call(trip.simulator(), trip.transport());
    call.start(end);
    trip.run_until(end + Time::seconds(1.0));
    const auto r = call.result();
    table.add_row({"packets sent", std::to_string(r.packets_sent)});
    table.add_row({"lost or late", TextTable::pct(r.effective_loss(), 1)});
    table.add_row({"mean MoS", TextTable::num(r.mean_mos, 2)});
    table.add_row({"median disruption-free session (s)",
                   TextTable::num(r.median_session_s, 1)});
  } else if (opt.app == "tcp") {
    apps::TransferDriver down(trip.simulator(), trip.transport(),
                              net::Direction::Downstream);
    down.start(end);
    trip.run_until(end + Time::seconds(2.0));
    const auto r = down.result();
    table.add_row({"transfers completed", std::to_string(r.completed)});
    table.add_row({"aborted (10 s stall)", std::to_string(r.aborted)});
    table.add_row({"median transfer (s)",
                   TextTable::num(r.median_transfer_time_s(), 2)});
    table.add_row({"transfers/session",
                   TextTable::num(r.mean_transfers_per_session(), 1)});
    table.add_row({"transfers/second",
                   TextTable::num(r.transfers_per_second(), 3)});
  } else {
    std::cerr << "unknown app: " << opt.app << "\n";
    return usage(argv[0]);
  }

  table.add_row({"anchor switches",
                 std::to_string(trip.system().vehicle().anchor_switches())});
  table.add_row({"packets salvaged",
                 std::to_string(trip.system().stats().salvaged())});
  table.print(std::cout);
  return 0;
}
