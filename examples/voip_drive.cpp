// VoIP from a moving shuttle: place a G.729 call over ViFi and over the
// BRR hard-handoff baseline for the same trip, and compare call quality —
// per-window MoS timeline, interruptions, and disruption-free session
// lengths (the paper's §5.3.2 methodology).

#include <iostream>

#include "apps/voip.h"
#include "scenario/live.h"
#include "scenario/testbed.h"
#include "util/table.h"

using namespace vifi;

namespace {

apps::VoipResult drive_and_talk(const scenario::Testbed& bed,
                                core::SystemConfig config,
                                std::uint64_t seed) {
  scenario::LiveTrip trip(bed, config, seed);
  trip.run_until(scenario::LiveTrip::warmup());
  apps::VoipCall call(trip.simulator(), trip.transport());
  const Time end = trip.simulator().now() + bed.trip_duration();
  call.start(end);
  trip.run_until(end + Time::seconds(1.0));
  return call.result();
}

std::string mos_strip(const std::vector<double>& window_mos) {
  // One character per 3 s window: '*' great, '+' fair, '-' annoying,
  // '!' interruption (MoS < 2).
  std::string s;
  for (double m : window_mos) {
    if (m >= 4.0)
      s += '*';
    else if (m >= 3.0)
      s += '+';
    else if (m >= 2.0)
      s += '-';
    else
      s += '!';
  }
  return s;
}

}  // namespace

int main() {
  const scenario::Testbed bed = scenario::make_vanlan();
  const std::uint64_t seed = 7;

  core::SystemConfig brr;
  brr.vifi.diversity = false;
  brr.vifi.salvage = false;

  const apps::VoipResult with_vifi =
      drive_and_talk(bed, core::SystemConfig{}, seed);
  const apps::VoipResult with_brr = drive_and_talk(bed, brr, seed);

  std::cout << "Call quality timeline, one char per 3 s window "
               "('*'>=4, '+'>=3, '-'>=2, '!'=interruption):\n\n";
  std::cout << "ViFi " << mos_strip(with_vifi.window_mos) << "\n";
  std::cout << "BRR  " << mos_strip(with_brr.window_mos) << "\n\n";

  TextTable table("One shuttle trip, same channel realisation");
  table.set_header({"metric", "ViFi", "BRR"});
  auto interruptions = [](const apps::VoipResult& r) {
    int n = 0;
    for (double m : r.window_mos)
      if (m < 2.0) ++n;
    return n;
  };
  table.add_row({"mean MoS", TextTable::num(with_vifi.mean_mos, 2),
                 TextTable::num(with_brr.mean_mos, 2)});
  table.add_row({"median disruption-free session (s)",
                 TextTable::num(with_vifi.median_session_s, 0),
                 TextTable::num(with_brr.median_session_s, 0)});
  table.add_row({"interrupted windows",
                 std::to_string(interruptions(with_vifi)),
                 std::to_string(interruptions(with_brr))});
  table.add_row({"packets lost or late",
                 TextTable::pct(with_vifi.effective_loss(), 1),
                 TextTable::pct(with_brr.effective_loss(), 1)});
  table.print(std::cout);
  return 0;
}
