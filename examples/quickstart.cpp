// Quickstart: bring up a full ViFi deployment on the VanLAN testbed, drive
// the shuttle for a minute while exchanging packets with a wired host, and
// print what happened.
//
// This is the smallest end-to-end use of the public API:
//   Testbed -> LiveTrip (channel + MAC + backplane + ViFi stack)
//           -> send packets / receive deliveries -> stats.

#include <iostream>

#include "scenario/live.h"
#include "scenario/testbed.h"
#include "util/table.h"

int main() {
  using namespace vifi;

  // 1. The testbed: 11 BSes on the campus, one shuttle, one wired host.
  const scenario::Testbed bed = scenario::make_vanlan();
  std::cout << "Testbed '" << bed.layout().name << "': "
            << bed.bs_ids().size() << " basestations, trip takes "
            << bed.trip_duration().to_string() << "\n";

  // 2. A live trip running the full ViFi stack over a stochastic vehicular
  //    channel. core::SystemConfig{} is ViFi with diversity + salvaging;
  //    see core/config.h for the BRR / Only-Diversity baselines.
  scenario::LiveTrip trip(bed, core::SystemConfig{}, /*trip_seed=*/1);

  // 3. Let beacons flow so the vehicle picks an anchor and the pab gossip
  //    warms up, then look around.
  trip.run_until(scenario::LiveTrip::warmup());
  std::cout << "After warmup the vehicle anchors at BS "
            << trip.system().vehicle().anchor().to_string()
            << " with auxiliaries {";
  for (sim::NodeId aux : trip.system().vehicle().auxiliaries())
    std::cout << " " << aux.to_string();
  std::cout << " }\n\n";

  // 4. Exchange traffic for a minute of driving: one 200-byte packet in
  //    each direction every 100 ms.
  int up_delivered = 0, down_delivered = 0;
  trip.system().host().set_delivery_handler(
      [&](const net::PacketRef&) { ++up_delivered; });
  trip.system().vehicle().set_delivery_handler(
      [&](const net::PacketRef&) { ++down_delivered; });

  const int rounds = 600;
  for (int i = 0; i < rounds; ++i) {
    trip.system().send_up(200, /*flow=*/1, static_cast<std::uint64_t>(i));
    trip.system().send_down(200, /*flow=*/1, static_cast<std::uint64_t>(i));
    trip.run_until(trip.simulator().now() + Time::millis(100.0));
  }
  trip.run_until(trip.simulator().now() + Time::seconds(2.0));

  // 5. Report.
  TextTable table("One minute of driving");
  table.set_header({"metric", "value"});
  table.add_row({"upstream delivered",
                 std::to_string(up_delivered) + " / " + std::to_string(rounds)});
  table.add_row({"downstream delivered",
                 std::to_string(down_delivered) + " / " + std::to_string(rounds)});
  table.add_row({"anchor switches",
                 std::to_string(trip.system().vehicle().anchor_switches())});
  table.add_row({"packets salvaged",
                 std::to_string(trip.system().stats().salvaged())});
  const auto up = trip.system().stats().coordination(net::Direction::Upstream);
  table.add_row({"upstream tx reaching anchor directly",
                 TextTable::pct(up.frac_src_tx_reached_dst)});
  table.add_row({"relays that rescued an upstream tx",
                 TextTable::pct(up.frac_relays_reached_dst)});
  table.print(std::cout);
  return 0;
}
