// TraceForge CLI: the fit / synthesize / replay pipeline over
// manifest-backed TraceCatalogs, as separate composable steps.
//
//   traceforge record --testbed DieselNet-Ch1 --vehicles 8 --trips 2
//       --seed 7 --out catalog_src
//   traceforge fit catalog_src --out model.vifimodel
//   traceforge synth --model model.vifimodel --vehicles 16 --trips 2
//       --seed 9 --out catalog_16
//   traceforge replay --catalog catalog_16 --threads 4 --json replay.json
//
// `record` logs a real campaign (beacons only, the DieselNet methodology)
// as a catalog; `fit` distils a catalog into a `vifi-tracemodel v1`;
// `synth` manufactures a statistically-matched fleet catalog from a model
// (deterministic per --seed); `replay` runs the live ViFi stack over every
// trip group of a catalog on the parallel runtime — byte-identical output
// for any --threads value.

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "runtime/runner.h"
#include "scenario/campaign.h"
#include "tracegen/catalog.h"
#include "tracegen/fit.h"
#include "tracegen/model_io.h"
#include "tracegen/synth.h"
#include "util/table.h"

using namespace vifi;

namespace {

int usage() {
  std::cerr
      << "Usage: traceforge COMMAND [options]\n"
      << "  record --testbed NAME --out DIR [--vehicles V] [--days D]\n"
      << "         [--trips T] [--trip-seconds S] [--seed N] [--name NAME]\n"
      << "      log a real fleet campaign as a TraceCatalog\n"
      << "  fit CATALOG_DIR --out MODEL [--gap-seconds G]\n"
      << "      fit a generative model from a catalog's traces\n"
      << "  synth --model MODEL --out DIR [--vehicles V] [--days D]\n"
      << "        [--trips T] [--trip-seconds S] [--seed N] [--name NAME]\n"
      << "      synthesize a statistically-matched fleet catalog\n"
      << "  replay --catalog DIR [--threads N] [--policy P] [--seeds a,b]\n"
      << "         [--json PATH] [--csv PATH]\n"
      << "      replay every trip group through the live stack (ViFi/BRR/\n"
      << "      Diversity; default ViFi)\n";
  return 2;
}

/// Minimal flag map: every option takes one value.
std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int first,
                                               std::string* positional) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(usage());
      }
      flags[arg] = argv[++i];
    } else if (positional != nullptr && positional->empty()) {
      *positional = arg;
    } else {
      std::cerr << "unexpected argument: " << arg << "\n";
      std::exit(usage());
    }
  }
  return flags;
}

std::string get(const std::map<std::string, std::string>& flags,
                const std::string& key, const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

std::string require(const std::map<std::string, std::string>& flags,
                    const std::string& key) {
  const auto it = flags.find(key);
  if (it == flags.end()) {
    std::cerr << "missing required option " << key << "\n";
    std::exit(usage());
  }
  return it->second;
}

int cmd_record(int argc, char** argv) {
  const auto flags = parse_flags(argc, argv, 2, nullptr);
  const std::string testbed = require(flags, "--testbed");
  if (!runtime::known_testbed(testbed)) {
    std::cerr << "unknown testbed: " << testbed << "\n";
    return 2;
  }
  const std::string out = require(flags, "--out");
  const int vehicles = std::atoi(get(flags, "--vehicles", "1").c_str());
  scenario::CampaignConfig cfg;
  cfg.days = std::atoi(get(flags, "--days", "1").c_str());
  cfg.trips_per_day = std::atoi(get(flags, "--trips", "1").c_str());
  cfg.trip_duration =
      Time::seconds(std::atof(get(flags, "--trip-seconds", "0").c_str()));
  cfg.seed = std::stoull(get(flags, "--seed", "1"));
  cfg.log_probes = false;  // beacon-only: what replay schedules consume
  const scenario::Testbed bed = runtime::make_testbed(testbed, vehicles);
  const trace::Campaign campaign = scenario::generate_campaign(bed, cfg);
  tracegen::write_catalog(out, get(flags, "--name", "recorded"), campaign);
  std::cout << "recorded " << campaign.trips.size() << " traces ("
            << vehicles << " vehicles x " << cfg.days * cfg.trips_per_day
            << " trips) into " << out << "\n";
  return 0;
}

int cmd_fit(int argc, char** argv) {
  std::string catalog_dir;
  const auto flags = parse_flags(argc, argv, 2, &catalog_dir);
  if (catalog_dir.empty()) {
    std::cerr << "fit needs a CATALOG_DIR\n";
    return usage();
  }
  const std::string out = require(flags, "--out");
  tracegen::FitOptions opts;
  opts.gap_tolerance_s = std::atoi(get(flags, "--gap-seconds", "2").c_str());
  const auto catalog = tracegen::load_catalog_shared(catalog_dir);
  std::vector<const trace::MeasurementTrace*> trips;
  for (const auto& t : catalog->traces()) trips.push_back(&t);
  const tracegen::TraceModel model = tracegen::fit_model(trips, opts);
  tracegen::save_model_file(model, out);
  std::cout << "fitted " << model.links.size() << " BS links from "
            << model.source_trips << " traces (" << catalog->testbed()
            << ") into " << out << "\n";
  return 0;
}

int cmd_synth(int argc, char** argv) {
  const auto flags = parse_flags(argc, argv, 2, nullptr);
  const tracegen::TraceModel model =
      tracegen::load_model_file(require(flags, "--model"));
  const std::string out = require(flags, "--out");
  tracegen::SynthesisSpec spec;
  spec.vehicles = std::atoi(get(flags, "--vehicles", "1").c_str());
  spec.days = std::atoi(get(flags, "--days", "1").c_str());
  spec.trips_per_day = std::atoi(get(flags, "--trips", "1").c_str());
  spec.trip_duration =
      Time::seconds(std::atof(get(flags, "--trip-seconds", "0").c_str()));
  spec.seed = std::stoull(get(flags, "--seed", "1"));
  const trace::Campaign campaign = tracegen::synthesize_fleet(model, spec);
  tracegen::write_catalog(out, get(flags, "--name", "synthetic"), campaign);
  std::cout << "synthesized " << campaign.trips.size() << " traces ("
            << spec.vehicles << " vehicles, seed " << spec.seed << ") into "
            << out << "\n";
  return 0;
}

int cmd_replay(int argc, char** argv) {
  const auto flags = parse_flags(argc, argv, 2, nullptr);
  const std::string dir = require(flags, "--catalog");
  const auto catalog = tracegen::load_catalog_shared(dir);

  runtime::ExperimentSpec spec;
  spec.name = "traceforge_replay";
  spec.grid.testbeds = {catalog->testbed()};
  spec.grid.fleet_sizes = {catalog->fleet_size()};
  spec.grid.trace_sets = {dir};
  spec.grid.policies = {get(flags, "--policy", "ViFi")};
  spec.grid.seeds.clear();
  for (const std::string& s : {get(flags, "--seeds", "1")}) {
    std::istringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
      if (!item.empty()) spec.grid.seeds.push_back(std::stoull(item));
  }
  spec.workload = "cbr";

  const int threads = std::atoi(get(flags, "--threads", "0").c_str());
  const runtime::Runner runner({.threads = threads});
  std::cerr << "replaying catalog '" << catalog->name() << "' ("
            << catalog->testbed() << ", fleet " << catalog->fleet_size()
            << ", " << catalog->trip_groups() << " trip groups) on "
            << runner.threads() << " thread(s)\n";
  const runtime::ResultSink sink = runner.run(spec);

  TextTable table("Catalog replay");
  table.set_header({"policy", "seed", "delivery", "pkts/day",
                    "jain(delivery)", "min veh delivery"});
  for (const auto& r : sink.ordered()) {
    if (!r.error.empty()) {
      std::cerr << "error: " << r.error << "\n";
      continue;
    }
    auto metric_or_dash = [&r](const std::string& key, int digits) {
      const auto it = r.metrics.find(key);
      return it == r.metrics.end() ? std::string("-")
                                   : TextTable::num(it->second, digits);
    };
    table.add_row({r.policy, std::to_string(r.seed),
                   TextTable::pct(r.metrics.at("delivery_rate"), 1),
                   TextTable::num(r.metrics.at("packets_per_day"), 0),
                   metric_or_dash("fairness_jain_delivery", 3),
                   metric_or_dash("per_vehicle_delivery_min", 3)});
  }
  table.print(std::cout);

  const std::string json = get(flags, "--json", "");
  const std::string csv = get(flags, "--csv", "");
  if (!json.empty()) sink.write_json(json);
  if (!csv.empty()) sink.write_csv(csv);
  return sink.any_errors() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "record") return cmd_record(argc, argv);
    if (cmd == "fit") return cmd_fit(argc, argv);
    if (cmd == "synth") return cmd_synth(argc, argv);
    if (cmd == "replay") return cmd_replay(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "traceforge " << cmd << ": " << e.what() << "\n";
    return 1;
  }
  std::cerr << "unknown command: " << cmd << "\n";
  return usage();
}
