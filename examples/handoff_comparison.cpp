// Handoff-policy shoot-out (the §3 measurement study in miniature): run a
// VanLAN measurement campaign, replay it under all six handoff policies,
// and compare aggregate delivery with interactive-session quality — the
// contrast that motivates ViFi.

#include <iostream>

#include "analysis/sessions.h"
#include "handoff/policies.h"
#include "handoff/replay.h"
#include "scenario/campaign.h"
#include "scenario/testbed.h"
#include "util/table.h"

using namespace vifi;

int main() {
  const scenario::Testbed bed = scenario::make_vanlan();

  scenario::CampaignConfig config;
  config.days = 2;
  config.trips_per_day = 3;
  config.seed = 99;
  const trace::Campaign campaign = generate_campaign(bed, config);
  std::cout << "Campaign: " << campaign.trips.size() << " trips over "
            << campaign.days() << " days on " << bed.layout().name << "\n\n";

  TextTable table("Six handoff policies on the same trace");
  table.set_header({"policy", "packets delivered", "median session (s)",
                    "interruptions"});

  const analysis::SessionDef def{};  // >= 50% reception per 1 s interval
  for (const std::string name :
       {"AllBSes", "BestBS", "History", "RSSI", "BRR", "Sticky"}) {
    std::int64_t delivered = 0;
    std::vector<double> sessions;
    int interruptions = 0;
    for (const auto& trip : campaign.trips) {
      std::vector<handoff::SlotOutcome> outcomes;
      if (name == "AllBSes") {
        outcomes = handoff::replay_allbses(trip);
      } else {
        std::unique_ptr<handoff::HandoffPolicy> policy;
        if (name == "BestBS")
          policy = std::make_unique<handoff::BestBsPolicy>();
        else if (name == "History")
          policy = std::make_unique<handoff::HistoryPolicy>(campaign);
        else if (name == "RSSI")
          policy = std::make_unique<handoff::RssiPolicy>();
        else if (name == "BRR")
          policy = std::make_unique<handoff::BrrPolicy>();
        else
          policy = std::make_unique<handoff::StickyPolicy>();
        outcomes = handoff::replay_hard_handoff(trip, *policy);
      }
      delivered += handoff::packets_delivered(outcomes);

      analysis::SlotStream stream;
      stream.slot = Time::millis(100);
      stream.per_slot_max = 2;
      for (const auto& o : outcomes) stream.delivered.push_back(o.delivered());
      const auto lengths = analysis::session_lengths_s(stream, def);
      sessions.insert(sessions.end(), lengths.begin(), lengths.end());
      interruptions +=
          analysis::connectivity_timeline(stream, def).interruptions;
    }
    table.add_row({name, std::to_string(delivered),
                   TextTable::num(analysis::median_session_length(sessions), 1),
                   std::to_string(interruptions)});
  }
  table.print(std::cout);

  std::cout << "\nNote how similar the delivery totals are (within ~25% "
               "apart from Sticky) while the session metrics differ "
               "hugely — the paper's core observation (§3.2-§3.3).\n";
  return 0;
}
