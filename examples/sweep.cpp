// Parameter-sweep CLI over the runtime campaign executor: declare a
// (testbed x policy x seed) grid, shard it across a worker pool, and emit
// structured JSON/CSV results. The output is a pure function of the spec —
// byte-identical for any --threads value — so sweeps can be diffed, cached
// and resumed across machines.
//
// Example (the BS-density x policy grid from the README):
//   sweep --threads 4 --testbeds VanLAN,DieselNet-Ch1
//         --policies AllBSes,BestBS,BRR --seeds 1,2 --json sweep.json

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/executor.h"
#include "runtime/runner.h"
#include "util/table.h"

using namespace vifi;

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::vector<std::uint64_t> split_csv_u64(const std::string& s) {
  const std::vector<std::string> items = split_csv(s);
  std::vector<std::uint64_t> out;
  out.reserve(items.size());
  for (const auto& item : items) out.push_back(std::stoull(item));
  return out;
}

int usage(const char* argv0) {
  std::cerr
      << "Usage: " << argv0 << " [options]\n"
      << "  --threads N         worker threads (default 4; 0 = hardware)\n"
      << "  --testbeds a,b      default VanLAN,DieselNet-Ch1\n"
      << "  --fleets a,b        vehicles per testbed, default 1\n"
      << "  --trace-sets d1,d2  TraceCatalog directories to replay as an\n"
         "                      extra axis (must match testbed + fleet);\n"
         "                      default none (stochastic campaigns)\n"
      << "  --policies a,b,c    replay: AllBSes/BestBS/History/RSSI/BRR/"
         "Sticky\n"
      << "                      cbr (live): ViFi/BRR/Diversity\n"
      << "                      default AllBSes,BestBS,BRR\n"
      << "  --coordination a,b  cbr (live) points: pab (vehicle-driven\n"
         "                      baseline) and/or coord (BS-side predictive\n"
         "                      ConnectivityManager); default none — the\n"
         "                      historical stack with no extra axis\n"
      << "  --seeds a,b         replicate seeds, default 1,2\n"
      << "  --days N            campaign days, default 1\n"
      << "  --trips N           trips per day, default 2\n"
      << "  --trip-seconds S    trip length; 0 = one full route lap\n"
      << "  --workload W        replay (default) or cbr\n"
      << "  --base-seed N       default 20080817\n"
      << "  --trace DIR         TripScope: dump per-point timelines into\n"
         "                      DIR (point_NNNN.trace.json Chrome/Perfetto\n"
         "                      format, .jsonl event stream, .metrics.json)\n"
      << "  --trace-stream      TripScope: spool each point's full event\n"
         "                      stream to DIR/point_NNNN.spool instead of\n"
         "                      the in-memory rings (full fidelity past the\n"
         "                      16k-per-node ring horizon; query with\n"
         "                      `tripscope query`); requires --trace\n"
      << "  --metrics a,b       TripScope: emit registered metrics as result\n"
         "                      columns (exact key or name summed over\n"
         "                      labels), e.g. mac.transmissions\n"
      << "  --cull              live (cbr) points: run the medium with\n"
         "                      spatial interference culling — the\n"
         "                      city-scale operating mode for large fleets\n"
      << "  --shard-trips       catalog cbr points: stream trip groups and\n"
         "                      shard them across the worker pool instead\n"
         "                      of parallelising across points; output is\n"
         "                      byte-identical either way\n"
      << "  --json PATH         write JSON here instead of stdout\n"
      << "  --csv PATH          also write CSV here\n"
      << "  --summary           print a per-point summary table to stderr\n"
      << "  --fairness          add per-vehicle fairness columns (Jain's\n"
      << "                      index, airtime split) to the summary table;\n"
      << "                      fleet-1 points show '-'\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  runtime::ExperimentSpec spec;
  spec.grid.testbeds = {"VanLAN", "DieselNet-Ch1"};
  spec.grid.policies = {"AllBSes", "BestBS", "BRR"};
  spec.grid.seeds = {1, 2};
  spec.days = 1;
  spec.trips_per_day = 2;

  int threads = 4;
  std::string json_path, csv_path;
  bool summary = false;
  bool fairness = false;
  bool shard_trips = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (arg == "--threads") threads = std::atoi(value().c_str());
    else if (arg == "--testbeds") spec.grid.testbeds = split_csv(value());
    else if (arg == "--fleets") {
      spec.grid.fleet_sizes.clear();
      for (const auto& item : split_csv(value()))
        spec.grid.fleet_sizes.push_back(std::atoi(item.c_str()));
    }
    else if (arg == "--trace-sets") spec.grid.trace_sets = split_csv(value());
    else if (arg == "--policies") spec.grid.policies = split_csv(value());
    else if (arg == "--coordination")
      spec.grid.coordinations = split_csv(value());
    else if (arg == "--seeds") spec.grid.seeds = split_csv_u64(value());
    else if (arg == "--days") spec.days = std::atoi(value().c_str());
    else if (arg == "--trips") spec.trips_per_day = std::atoi(value().c_str());
    else if (arg == "--trip-seconds")
      spec.trip_duration = Time::seconds(std::atof(value().c_str()));
    else if (arg == "--workload") spec.workload = value();
    else if (arg == "--base-seed") spec.base_seed = std::stoull(value());
    else if (arg == "--trace") spec.trace_dir = value();
    else if (arg == "--trace-stream") spec.trace_stream = true;
    else if (arg == "--metrics") spec.metric_columns = split_csv(value());
    else if (arg == "--cull") spec.cull_medium = true;
    else if (arg == "--shard-trips") shard_trips = true;
    else if (arg == "--json") json_path = value();
    else if (arg == "--csv") csv_path = value();
    else if (arg == "--summary") summary = true;
    else if (arg == "--fairness") fairness = true;
    else return usage(argv[0]);
  }

  for (const auto& bed : spec.grid.testbeds) {
    if (!runtime::known_testbed(bed)) {
      std::cerr << "unknown testbed: " << bed << "\n";
      return usage(argv[0]);
    }
  }
  for (const int fleet : spec.grid.fleet_sizes) {
    if (fleet < 1) {
      std::cerr << "fleet sizes must be >= 1\n";
      return usage(argv[0]);
    }
  }
  if (spec.trace_stream && spec.trace_dir.empty()) {
    std::cerr << "--trace-stream requires --trace DIR\n";
    return usage(argv[0]);
  }

  const runtime::Runner runner({.threads = threads});
  std::cerr << "sweep: " << spec.grid.size() << " points ("
            << spec.grid.testbeds.size() << " testbeds x "
            << spec.grid.fleet_sizes.size() << " fleet sizes x "
            << spec.grid.policies.size() << " policies x "
            << spec.grid.seeds.size() << " seeds) on " << runner.threads()
            << " thread(s)\n";

  runtime::ResultSink sink;
  if (shard_trips) {
    // Points run one after another; the pool parallelises *within* each
    // point by sharding its streamed trip groups. Same bytes as run(spec).
    for (const auto& p : spec.enumerate()) {
      try {
        sink.add(runtime::run_point_sharded(p, runner));
      } catch (const std::exception& e) {
        runtime::PointResult r;
        r.index = p.index;
        r.testbed = p.testbed;
        r.fleet = p.fleet_size;
        r.trace_set = p.trace_set;
        r.policy = p.policy;
        r.coordination = p.coordination;
        r.seed = p.seed;
        r.error = e.what();
        sink.add(std::move(r));
      }
    }
  } else {
    sink = runner.run(spec);
  }

  if (summary) {
    // Fairness columns come from the fleet points' metrics; fleet-1 points
    // have none (their output is byte-identical to pre-fairness sweeps).
    auto metric_or_dash = [](const runtime::PointResult& r,
                             const std::string& key, int digits) {
      const auto it = r.metrics.find(key);
      return it == r.metrics.end() ? std::string("-")
                                   : TextTable::num(it->second, digits);
    };
    TextTable table("Sweep summary");
    std::vector<std::string> header{"testbed", "fleet",  "policy",
                                    "seed",    "delivery", "median sess",
                                    "pkts/day"};
    if (fairness) {
      header.insert(header.end(), {"jain(delivery)", "jain(airtime)",
                                   "infra air (s)", "vehicle air (s)"});
    }
    table.set_header(header);
    for (const auto& r : sink.ordered()) {
      if (!r.error.empty()) {
        std::vector<std::string> row{r.testbed, std::to_string(r.fleet),
                                     r.policy, std::to_string(r.seed),
                                     "error: " + r.error, "", ""};
        row.resize(header.size());
        table.add_row(row);
        continue;
      }
      std::vector<std::string> row{
          r.testbed, std::to_string(r.fleet), r.policy,
          std::to_string(r.seed),
          TextTable::pct(r.metrics.at("delivery_rate"), 1),
          TextTable::num(r.metrics.at("median_session_s"), 1) + " s",
          TextTable::num(r.metrics.at("packets_per_day"), 0)};
      if (fairness) {
        row.push_back(metric_or_dash(r, "fairness_jain_delivery", 3));
        row.push_back(metric_or_dash(r, "fairness_jain_airtime", 3));
        row.push_back(metric_or_dash(r, "airtime_infra_s", 1));
        row.push_back(metric_or_dash(r, "airtime_vehicle_s", 1));
      }
      table.add_row(row);
    }
    table.print(std::cerr);
  }

  try {
    if (!json_path.empty()) {
      sink.write_json(json_path);
      std::cerr << "wrote " << json_path << "\n";
    } else {
      std::cout << sink.to_json();
    }
    if (!csv_path.empty()) {
      sink.write_csv(csv_path);
      std::cerr << "wrote " << csv_path << "\n";
    }
  } catch (const std::exception&) {
    std::cerr << "error: cannot write output file\n";
    return 1;
  }
  return sink.any_errors() ? 1 : 0;
}
