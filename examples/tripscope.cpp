// TripScope CLI: replay one experiment point under full observability and
// show what the protocol actually did — a per-node timeline summary of
// typed protocol events (beacons, anchor switches, relay decisions,
// salvage hand-offs, the frame lifecycle), the unified metrics registry,
// and a reconciliation of timeline events against the point's delivery
// counters. Optionally exports the timeline as Chrome trace-event JSON
// (loadable in Perfetto / chrome://tracing), a JSONL event stream, and a
// metrics JSON document.
//
// The `query` subcommand reads a spooled trace (sweep --trace-stream)
// without loading it whole: the spool's footer index seeks straight to a
// node's chunks, filters stream chunk-by-chunk, per-kind counts reconcile
// exactly against the recorder counters stored in the footer, and span
// summaries report anchor-tenure percentiles and the handoff gap
// distribution.
//
// Examples:
//   tripscope --testbed VanLAN --workload cbr --policy ViFi
//   tripscope --testbed DieselNet-Ch1 --fleet 4 --workload cbr --out /tmp/ts
//   tripscope --catalog ./catalog_dir --workload cbr --policy ViFi
//   tripscope query /tmp/traces/point_0000.spool --counts --spans
//   tripscope query point_0000.spool --node 3 --kind anchor_change --jsonl

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/span.h"
#include "obs/spool.h"
#include "runtime/executor.h"
#include "runtime/experiment.h"
#include "util/cdf.h"
#include "util/table.h"

using namespace vifi;

namespace {

int usage(const char* argv0) {
  std::cerr
      << "Usage: " << argv0 << " [options]\n"
      << "  --testbed NAME     VanLAN (default), DieselNet-Ch1, "
         "DieselNet-Ch6\n"
      << "  --fleet N          vehicles riding the testbed (default 1)\n"
      << "  --policy P         replay: AllBSes/BestBS/History/RSSI/BRR/"
         "Sticky\n"
      << "                     cbr (live): ViFi/BRR/Diversity (default "
         "ViFi)\n"
      << "  --workload W       cbr (default) or replay\n"
      << "  --seed N           replicate seed (default 1)\n"
      << "  --days N           campaign days (default 1)\n"
      << "  --trips N          trips per day (default 1)\n"
      << "  --trip-seconds S   trip length; 0 = one full route lap\n"
      << "  --catalog DIR      TraceCatalog directory to replay instead of\n"
         "                     generating the campaign\n"
      << "  --events N         print the first N merged timeline events\n"
         "                     (default 0)\n"
      << "  --out DIR          export trip.trace.json (Chrome/Perfetto),\n"
         "                     trip.jsonl and trip.metrics.json into DIR\n"
      << "Subcommands:\n"
      << "  query SPOOL ...    inspect a spooled trace (sweep\n"
         "                     --trace-stream); see `" << argv0
      << " query`\n";
  return 2;
}

std::string node_name(const obs::TraceRecorder& rec, sim::NodeId node) {
  if (!node.valid()) return "-";
  std::string name = node.to_string();
  const std::string& label = rec.node_label(node);
  if (!label.empty()) name += "(" + label + ")";
  return name;
}

// --- the query subcommand --------------------------------------------------

int query_usage(const char* argv0) {
  std::cerr
      << "Usage: " << argv0 << " query SPOOL [options]\n"
      << "  Reads a TripScope spool (sweep --trace-stream) via its footer\n"
         "  index — chunks stream from disk, never the whole file.\n"
      << "  --node N           only node N's events (footer-index seek)\n"
      << "  --kind NAME        only events of this kind (e.g. beacon_rx,\n"
         "                     anchor_change, coord_transition)\n"
      << "  --from S / --to S  only events in the [S, S] second window\n"
      << "  --limit N          print the first N matching events (timeline\n"
         "                     order) as a table\n"
      << "  --jsonl            print matching events as JSONL instead\n"
      << "  --counts           per-kind counts: full chunk scan reconciled\n"
         "                     exactly against the footer's recorder\n"
         "                     counters (exit 1 on any mismatch)\n"
      << "  --spans            span summaries: anchor-tenure percentiles,\n"
         "                     handoff gap distribution, coord-phase\n"
         "                     occupancy, contact runs\n"
      << "  With none of --limit/--jsonl/--counts/--spans, prints the\n"
      << "  overview plus --counts and --spans.\n";
  return 2;
}

std::optional<obs::EventKind> parse_kind(const std::string& name) {
  for (int k = 0; k < obs::kEventKindCount; ++k) {
    const auto kind = static_cast<obs::EventKind>(k);
    if (name == obs::to_string(kind)) return kind;
  }
  return std::nullopt;
}

std::string spool_node_name(const obs::SpoolReader& reader, sim::NodeId node) {
  if (!node.valid()) return "-";
  std::string name = node.to_string();
  const obs::SpoolNodeIndex* idx = reader.find_node(node);
  if (idx != nullptr && !idx->label.empty()) name += "(" + idx->label + ")";
  return name;
}

std::string quantile_row(const Cdf& cdf, double q) {
  return cdf.empty() ? "-" : TextTable::num(cdf.quantile(q), 3);
}

/// Per-kind counts from a full chunk scan, reconciled against the footer's
/// recorder counters. Returns false on any mismatch.
bool query_counts(const obs::SpoolReader& reader) {
  std::uint64_t scanned[obs::kEventKindCount] = {};
  std::uint64_t total = 0;
  reader.scan([&](const obs::TraceEvent& e) {
    ++scanned[static_cast<int>(e.kind)];
    ++total;
  });
  bool ok = true;
  TextTable table("Event counts (chunk scan vs recorder counters)");
  table.set_header({"event", "scanned", "recorded", "match"});
  for (int k = 0; k < obs::kEventKindCount; ++k) {
    const auto kind = static_cast<obs::EventKind>(k);
    // Log lines travel in the footer, not as chunk records.
    const std::uint64_t have = kind == obs::EventKind::Log
                                   ? static_cast<std::uint64_t>(
                                         reader.logs().size())
                                   : scanned[k];
    const std::uint64_t want = reader.kind_count(kind);
    if (have == 0 && want == 0) continue;
    if (have != want) ok = false;
    table.add_row({obs::to_string(kind), std::to_string(have),
                   std::to_string(want), have == want ? "ok" : "MISMATCH"});
  }
  table.print(std::cout);
  std::cout << total << " records scanned, " << reader.recorded()
            << " recorded in footer"
            << (total == reader.recorded() ? "" : "  [MISMATCH]") << "\n\n";
  if (total != reader.recorded()) ok = false;
  return ok;
}

void query_spans(const obs::SpoolReader& reader) {
  const std::vector<obs::TraceEvent> events = reader.events();
  const std::vector<obs::Span> spans =
      obs::build_spans(events, Time::micros(reader.max_at_us()));

  // Anchor tenures: how long each designation stretch lasted, and the
  // handoff gap (anchor-less stretch) between consecutive tenures of the
  // same vehicle.
  Cdf tenure_s, gap_s, contact_s;
  std::size_t tenures = 0, contacts = 0;
  std::map<sim::NodeId, Time> last_tenure_end;
  std::map<std::string, Time> phase_occupancy;
  for (const obs::Span& span : spans) {
    switch (span.kind) {
      case obs::SpanKind::AnchorTenure: {
        ++tenures;
        tenure_s.add(span.duration().to_seconds());
        const auto it = last_tenure_end.find(span.node);
        if (it != last_tenure_end.end())
          gap_s.add((span.begin - it->second).to_seconds());
        last_tenure_end[span.node] = span.end;
        break;
      }
      case obs::SpanKind::CoordPhase:
        phase_occupancy[span.detail] += span.duration();
        break;
      case obs::SpanKind::Contact:
        ++contacts;
        contact_s.add(span.duration().to_seconds());
        break;
    }
  }

  TextTable table("Span summaries (seconds)");
  table.set_header({"span", "count", "p10", "p25", "p50", "p75", "p90"});
  const auto add_cdf_row = [&table](const std::string& name, std::size_t n,
                                    const Cdf& cdf) {
    table.add_row({name, std::to_string(n), quantile_row(cdf, 0.10),
                   quantile_row(cdf, 0.25), quantile_row(cdf, 0.50),
                   quantile_row(cdf, 0.75), quantile_row(cdf, 0.90)});
  };
  add_cdf_row("anchor_tenure", tenures, tenure_s);
  add_cdf_row("handoff_gap", gap_s.sample_count(), gap_s);
  add_cdf_row("contact", contacts, contact_s);
  table.print(std::cout);
  std::cout << "\n";

  if (!phase_occupancy.empty()) {
    TextTable phases("Coord-phase occupancy");
    phases.set_header({"phase", "total_s"});
    for (const auto& [phase, total] : phase_occupancy)
      phases.add_row({phase, TextTable::num(total.to_seconds(), 3)});
    phases.print(std::cout);
    std::cout << "\n";
  }
}

int run_query(int argc, char** argv) {
  if (argc < 3) return query_usage(argv[0]);
  const std::string path = argv[2];
  std::optional<sim::NodeId> node_filter;
  std::optional<obs::EventKind> kind_filter;
  Time from = Time::micros(INT64_MIN);
  Time to = Time::max();
  std::size_t limit = 0;
  bool jsonl = false, counts = false, spans = false;

  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(query_usage(argv[0]));
      }
      return argv[++i];
    };
    if (arg == "--node") node_filter = sim::NodeId{std::atoi(value().c_str())};
    else if (arg == "--kind") {
      const std::string name = value();
      kind_filter = parse_kind(name);
      if (!kind_filter) {
        std::cerr << "unknown event kind: " << name << "\n";
        return query_usage(argv[0]);
      }
    }
    else if (arg == "--from") from = Time::seconds(std::atof(value().c_str()));
    else if (arg == "--to") to = Time::seconds(std::atof(value().c_str()));
    else if (arg == "--limit")
      limit = static_cast<std::size_t>(std::atoll(value().c_str()));
    else if (arg == "--jsonl") jsonl = true;
    else if (arg == "--counts") counts = true;
    else if (arg == "--spans") spans = true;
    else return query_usage(argv[0]);
  }
  const bool overview = !counts && !spans && limit == 0 && !jsonl;
  if (overview) counts = spans = true;

  try {
    const obs::SpoolReader reader(path);

    if (overview) {
      std::cout << "Spool: " << reader.path() << "\n  " << reader.recorded()
                << " events across " << reader.nodes().size()
                << " nodes, timeline end "
                << Time::micros(reader.max_at_us()).to_seconds() << "s, "
                << reader.logs().size() << " log lines, block "
                << reader.block_events() << " events\n\n";
    }

    if (limit > 0 || jsonl) {
      // Stream the chunks (one node's via the footer index when --node is
      // given), keep only matches, then restore timeline (seq) order.
      std::vector<obs::TraceEvent> matched;
      const auto consider = [&](const obs::TraceEvent& e) {
        if (kind_filter && e.kind != *kind_filter) return;
        if (e.at < from || e.at > to) return;
        matched.push_back(e);
      };
      if (node_filter)
        reader.scan_node(*node_filter, consider);
      else
        reader.scan(consider);
      std::sort(matched.begin(), matched.end(),
                [](const obs::TraceEvent& x, const obs::TraceEvent& y) {
                  return x.seq < y.seq;
                });
      if (limit > 0 && matched.size() > limit) matched.resize(limit);
      if (jsonl) {
        char a[64], b[64];
        for (const obs::TraceEvent& e : matched) {
          std::snprintf(a, sizeof(a), "%.17g", e.a);
          std::snprintf(b, sizeof(b), "%.17g", e.b);
          std::cout << "{\"seq\":" << e.seq << ",\"t_us\":" << e.at.to_micros()
                    << ",\"kind\":\"" << obs::to_string(e.kind)
                    << "\",\"node\":\""
                    << (e.node.valid() ? e.node.to_string() : std::string("-"))
                    << "\",\"peer\":\""
                    << (e.peer.valid() ? e.peer.to_string() : std::string("-"))
                    << "\",\"id\":" << e.id << ",\"a\":" << a << ",\"b\":" << b
                    << ",\"c\":" << e.c << "}\n";
        }
      } else {
        TextTable table("Matching events (" + std::to_string(matched.size()) +
                        ")");
        table.set_header({"t_s", "kind", "node", "peer", "id", "a", "b", "c"});
        for (const obs::TraceEvent& e : matched)
          table.add_row({TextTable::num(e.at.to_seconds(), 3),
                         obs::to_string(e.kind), spool_node_name(reader, e.node),
                         spool_node_name(reader, e.peer), std::to_string(e.id),
                         TextTable::num(e.a, 4), TextTable::num(e.b, 4),
                         std::to_string(e.c)});
        table.print(std::cout);
        std::cout << "\n";
      }
    }

    bool ok = true;
    if (counts) ok = query_counts(reader);
    if (spans) query_spans(reader);
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "query")
    return run_query(argc, argv);

  runtime::ExperimentPoint point;
  point.testbed = "VanLAN";
  point.policy = "ViFi";
  point.workload = "cbr";
  point.days = 1;
  point.trips_per_day = 1;
  std::string out_dir;
  std::size_t print_events = 0;
  std::uint64_t base_seed = 20080817;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (arg == "--testbed") point.testbed = value();
    else if (arg == "--fleet") point.fleet_size = std::atoi(value().c_str());
    else if (arg == "--policy") point.policy = value();
    else if (arg == "--workload") point.workload = value();
    else if (arg == "--seed") point.seed = std::stoull(value());
    else if (arg == "--days") point.days = std::atoi(value().c_str());
    else if (arg == "--trips") point.trips_per_day = std::atoi(value().c_str());
    else if (arg == "--trip-seconds")
      point.trip_duration = Time::seconds(std::atof(value().c_str()));
    else if (arg == "--catalog") point.trace_set = value();
    else if (arg == "--events")
      print_events = static_cast<std::size_t>(std::atoll(value().c_str()));
    else if (arg == "--out") out_dir = value();
    else return usage(argv[0]);
  }
  if (!runtime::known_testbed(point.testbed)) {
    std::cerr << "unknown testbed: " << point.testbed << "\n";
    return usage(argv[0]);
  }
  if (point.fleet_size < 1) {
    std::cerr << "--fleet must be >= 1\n";
    return usage(argv[0]);
  }
  // Derive the point's seeds the same way ExperimentSpec::enumerate does,
  // so a tripscope replay of a sweep point sees the same campaign.
  point.campaign_seed =
      runtime::mix_seed(runtime::mix_seed(base_seed, point.testbed),
                        point.seed);
  if (point.fleet_size > 1)
    point.campaign_seed = runtime::mix_seed(
        point.campaign_seed, "fleet" + std::to_string(point.fleet_size));
  if (!point.trace_set.empty()) {
    std::filesystem::path dir =
        std::filesystem::path(point.trace_set).lexically_normal();
    if (!dir.has_filename()) dir = dir.parent_path();
    const std::string id = dir.filename().string();
    point.campaign_seed = runtime::mix_seed(
        point.campaign_seed, "trace_set:" + (id.empty() ? point.trace_set : id));
  }
  point.point_seed = runtime::mix_seed(point.campaign_seed, point.policy);

  // Install the observability session ourselves: run_point records into it
  // and we own the printing/export afterwards.
  obs::TraceRecorder recorder;
  obs::MetricsRegistry metrics;
  runtime::PointResult result;
  {
    obs::TraceScope trace_scope(recorder);
    obs::MetricsScope metrics_scope(metrics);
    try {
      result = runtime::run_point(point);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }

  std::cout << "TripScope: " << point.testbed << " fleet="
            << point.fleet_size << " policy=" << point.policy
            << " workload=" << point.workload << " seed=" << point.seed
            << "\n\n";

  // --- timeline summary: events per node per category ---------------------
  {
    TextTable table("Timeline summary (events per node)");
    table.set_header({"node", "events", "beacon", "designation", "relay",
                      "salvage", "mac", "app", "handoff"});
    for (const sim::NodeId node : recorder.nodes()) {
      std::map<std::string, std::uint64_t> per_cat;
      const auto events = recorder.ring(node).snapshot();
      for (const obs::TraceEvent& e : events) {
        switch (e.kind) {
          case obs::EventKind::BeaconTx:
          case obs::EventKind::BeaconRx:
            ++per_cat["beacon"];
            break;
          case obs::EventKind::AnchorChange:
          case obs::EventKind::AuxSetChange:
            ++per_cat["designation"];
            break;
          case obs::EventKind::RelayEval:
          case obs::EventKind::RelayTx:
            ++per_cat["relay"];
            break;
          case obs::EventKind::SalvageRequest:
          case obs::EventKind::SalvageHandoff:
          case obs::EventKind::SalvageDeliver:
            ++per_cat["salvage"];
            break;
          case obs::EventKind::AppDeliver:
            ++per_cat["app"];
            break;
          case obs::EventKind::Handoff:
            ++per_cat["handoff"];
            break;
          default:
            ++per_cat["mac"];
        }
      }
      table.add_row({node_name(recorder, node), std::to_string(events.size()),
                     std::to_string(per_cat["beacon"]),
                     std::to_string(per_cat["designation"]),
                     std::to_string(per_cat["relay"]),
                     std::to_string(per_cat["salvage"]),
                     std::to_string(per_cat["mac"]),
                     std::to_string(per_cat["app"]),
                     std::to_string(per_cat["handoff"])});
    }
    table.print(std::cout);
    std::cout << recorder.recorded() << " events recorded";
    if (recorder.dropped() > 0)
      std::cout << " (" << recorder.dropped()
                << " oldest dropped by ring wrap; exact per-kind counts "
                   "below survive)";
    std::cout << "\n\n";
  }

  // --- per-kind exact counts ----------------------------------------------
  {
    TextTable table("Protocol event counts (exact)");
    table.set_header({"event", "count"});
    for (int k = 0; k < obs::kEventKindCount; ++k) {
      const auto kind = static_cast<obs::EventKind>(k);
      if (recorder.count(kind) == 0) continue;
      table.add_row({obs::to_string(kind),
                     std::to_string(recorder.count(kind))});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  if (print_events > 0) {
    std::cout << "First " << print_events << " timeline events:\n";
    std::size_t shown = 0;
    for (const obs::TraceEvent& e : recorder.merged()) {
      if (shown++ >= print_events) break;
      std::cout << "  t=" << e.at.to_micros() << "us " << obs::to_string(e.kind)
                << " node=" << node_name(recorder, e.node)
                << " peer=" << node_name(recorder, e.peer) << " id=" << e.id
                << " a=" << e.a << " b=" << e.b << " c=" << e.c << "\n";
    }
    std::cout << "\n";
  }

  // --- point metrics + registry -------------------------------------------
  {
    TextTable table("Point metrics");
    table.set_header({"metric", "value"});
    for (const auto& [name, v] : result.metrics)
      table.add_row({name, TextTable::num(v, 4)});
    table.print(std::cout);
    std::cout << "\n";
  }
  {
    TextTable table("Metrics registry (totals by name)");
    table.set_header({"name", "total"});
    std::map<std::string, double> totals;
    for (const auto& [key, v] : metrics.flatten()) {
      const std::string name = key.substr(0, key.find('{'));
      totals[name] += v;
    }
    for (const auto& [name, v] : totals)
      table.add_row({name, TextTable::num(v, 4)});
    table.print(std::cout);
    std::cout << "\n";
  }

  // --- reconciliation: timeline vs delivery counters ----------------------
  {
    const double app_delivered =
        static_cast<double>(recorder.count(obs::EventKind::AppDeliver));
    const auto it = result.metrics.find("packets_delivered");
    std::cout << "Reconciliation: " << app_delivered
              << " AppDeliver timeline events";
    if (it != result.metrics.end()) {
      // The timeline counts unique end-to-end deliveries; the workload
      // counters count deliveries within the slot deadline, so the
      // timeline reads >= the counter.
      std::cout << " vs packets_delivered=" << it->second
                << (app_delivered + 0.5 >= it->second ? "  [ok]"
                                                      : "  [MISMATCH]");
    }
    std::cout << "\n";
    std::cout << "  relay: " << recorder.count(obs::EventKind::RelayEval)
              << " evaluations, " << recorder.count(obs::EventKind::RelayTx)
              << " relays sent; salvage: "
              << recorder.count(obs::EventKind::SalvageRequest)
              << " requests, "
              << recorder.count(obs::EventKind::SalvageHandoff)
              << " packets handed off, "
              << recorder.count(obs::EventKind::SalvageDeliver)
              << " delivered to the new anchor\n\n";
  }

  if (!out_dir.empty()) {
    namespace fs = std::filesystem;
    fs::create_directories(out_dir);
    const fs::path base = fs::path(out_dir);
    {
      std::ofstream os((base / "trip.trace.json").string());
      obs::write_chrome_trace(recorder, os);
    }
    {
      std::ofstream os((base / "trip.jsonl").string());
      obs::write_jsonl(recorder, os);
    }
    {
      std::ofstream os((base / "trip.metrics.json").string());
      os << metrics.to_json();
    }
    std::cout << "wrote " << (base / "trip.trace.json").string()
              << " (load in Perfetto), trip.jsonl, trip.metrics.json\n";
  }
  return result.error.empty() ? 0 : 1;
}
