// TripScope CLI: replay one experiment point under full observability and
// show what the protocol actually did — a per-node timeline summary of
// typed protocol events (beacons, anchor switches, relay decisions,
// salvage hand-offs, the frame lifecycle), the unified metrics registry,
// and a reconciliation of timeline events against the point's delivery
// counters. Optionally exports the timeline as Chrome trace-event JSON
// (loadable in Perfetto / chrome://tracing), a JSONL event stream, and a
// metrics JSON document.
//
// Examples:
//   tripscope --testbed VanLAN --workload cbr --policy ViFi
//   tripscope --testbed DieselNet-Ch1 --fleet 4 --workload cbr --out /tmp/ts
//   tripscope --catalog ./catalog_dir --workload cbr --policy ViFi

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "runtime/executor.h"
#include "runtime/experiment.h"
#include "util/table.h"

using namespace vifi;

namespace {

int usage(const char* argv0) {
  std::cerr
      << "Usage: " << argv0 << " [options]\n"
      << "  --testbed NAME     VanLAN (default), DieselNet-Ch1, "
         "DieselNet-Ch6\n"
      << "  --fleet N          vehicles riding the testbed (default 1)\n"
      << "  --policy P         replay: AllBSes/BestBS/History/RSSI/BRR/"
         "Sticky\n"
      << "                     cbr (live): ViFi/BRR/Diversity (default "
         "ViFi)\n"
      << "  --workload W       cbr (default) or replay\n"
      << "  --seed N           replicate seed (default 1)\n"
      << "  --days N           campaign days (default 1)\n"
      << "  --trips N          trips per day (default 1)\n"
      << "  --trip-seconds S   trip length; 0 = one full route lap\n"
      << "  --catalog DIR      TraceCatalog directory to replay instead of\n"
         "                     generating the campaign\n"
      << "  --events N         print the first N merged timeline events\n"
         "                     (default 0)\n"
      << "  --out DIR          export trip.trace.json (Chrome/Perfetto),\n"
         "                     trip.jsonl and trip.metrics.json into DIR\n";
  return 2;
}

std::string node_name(const obs::TraceRecorder& rec, sim::NodeId node) {
  if (!node.valid()) return "-";
  std::string name = node.to_string();
  const std::string& label = rec.node_label(node);
  if (!label.empty()) name += "(" + label + ")";
  return name;
}

}  // namespace

int main(int argc, char** argv) {
  runtime::ExperimentPoint point;
  point.testbed = "VanLAN";
  point.policy = "ViFi";
  point.workload = "cbr";
  point.days = 1;
  point.trips_per_day = 1;
  std::string out_dir;
  std::size_t print_events = 0;
  std::uint64_t base_seed = 20080817;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (arg == "--testbed") point.testbed = value();
    else if (arg == "--fleet") point.fleet_size = std::atoi(value().c_str());
    else if (arg == "--policy") point.policy = value();
    else if (arg == "--workload") point.workload = value();
    else if (arg == "--seed") point.seed = std::stoull(value());
    else if (arg == "--days") point.days = std::atoi(value().c_str());
    else if (arg == "--trips") point.trips_per_day = std::atoi(value().c_str());
    else if (arg == "--trip-seconds")
      point.trip_duration = Time::seconds(std::atof(value().c_str()));
    else if (arg == "--catalog") point.trace_set = value();
    else if (arg == "--events")
      print_events = static_cast<std::size_t>(std::atoll(value().c_str()));
    else if (arg == "--out") out_dir = value();
    else return usage(argv[0]);
  }
  if (!runtime::known_testbed(point.testbed)) {
    std::cerr << "unknown testbed: " << point.testbed << "\n";
    return usage(argv[0]);
  }
  if (point.fleet_size < 1) {
    std::cerr << "--fleet must be >= 1\n";
    return usage(argv[0]);
  }
  // Derive the point's seeds the same way ExperimentSpec::enumerate does,
  // so a tripscope replay of a sweep point sees the same campaign.
  point.campaign_seed =
      runtime::mix_seed(runtime::mix_seed(base_seed, point.testbed),
                        point.seed);
  if (point.fleet_size > 1)
    point.campaign_seed = runtime::mix_seed(
        point.campaign_seed, "fleet" + std::to_string(point.fleet_size));
  if (!point.trace_set.empty()) {
    std::filesystem::path dir =
        std::filesystem::path(point.trace_set).lexically_normal();
    if (!dir.has_filename()) dir = dir.parent_path();
    const std::string id = dir.filename().string();
    point.campaign_seed = runtime::mix_seed(
        point.campaign_seed, "trace_set:" + (id.empty() ? point.trace_set : id));
  }
  point.point_seed = runtime::mix_seed(point.campaign_seed, point.policy);

  // Install the observability session ourselves: run_point records into it
  // and we own the printing/export afterwards.
  obs::TraceRecorder recorder;
  obs::MetricsRegistry metrics;
  runtime::PointResult result;
  {
    obs::TraceScope trace_scope(recorder);
    obs::MetricsScope metrics_scope(metrics);
    try {
      result = runtime::run_point(point);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }

  std::cout << "TripScope: " << point.testbed << " fleet="
            << point.fleet_size << " policy=" << point.policy
            << " workload=" << point.workload << " seed=" << point.seed
            << "\n\n";

  // --- timeline summary: events per node per category ---------------------
  {
    TextTable table("Timeline summary (events per node)");
    table.set_header({"node", "events", "beacon", "designation", "relay",
                      "salvage", "mac", "app", "handoff"});
    for (const sim::NodeId node : recorder.nodes()) {
      std::map<std::string, std::uint64_t> per_cat;
      const auto events = recorder.ring(node).snapshot();
      for (const obs::TraceEvent& e : events) {
        switch (e.kind) {
          case obs::EventKind::BeaconTx:
          case obs::EventKind::BeaconRx:
            ++per_cat["beacon"];
            break;
          case obs::EventKind::AnchorChange:
          case obs::EventKind::AuxSetChange:
            ++per_cat["designation"];
            break;
          case obs::EventKind::RelayEval:
          case obs::EventKind::RelayTx:
            ++per_cat["relay"];
            break;
          case obs::EventKind::SalvageRequest:
          case obs::EventKind::SalvageHandoff:
          case obs::EventKind::SalvageDeliver:
            ++per_cat["salvage"];
            break;
          case obs::EventKind::AppDeliver:
            ++per_cat["app"];
            break;
          case obs::EventKind::Handoff:
            ++per_cat["handoff"];
            break;
          default:
            ++per_cat["mac"];
        }
      }
      table.add_row({node_name(recorder, node), std::to_string(events.size()),
                     std::to_string(per_cat["beacon"]),
                     std::to_string(per_cat["designation"]),
                     std::to_string(per_cat["relay"]),
                     std::to_string(per_cat["salvage"]),
                     std::to_string(per_cat["mac"]),
                     std::to_string(per_cat["app"]),
                     std::to_string(per_cat["handoff"])});
    }
    table.print(std::cout);
    std::cout << recorder.recorded() << " events recorded";
    if (recorder.dropped() > 0)
      std::cout << " (" << recorder.dropped()
                << " oldest dropped by ring wrap; exact per-kind counts "
                   "below survive)";
    std::cout << "\n\n";
  }

  // --- per-kind exact counts ----------------------------------------------
  {
    TextTable table("Protocol event counts (exact)");
    table.set_header({"event", "count"});
    for (int k = 0; k < obs::kEventKindCount; ++k) {
      const auto kind = static_cast<obs::EventKind>(k);
      if (recorder.count(kind) == 0) continue;
      table.add_row({obs::to_string(kind),
                     std::to_string(recorder.count(kind))});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  if (print_events > 0) {
    std::cout << "First " << print_events << " timeline events:\n";
    std::size_t shown = 0;
    for (const obs::TraceEvent& e : recorder.merged()) {
      if (shown++ >= print_events) break;
      std::cout << "  t=" << e.at.to_micros() << "us " << obs::to_string(e.kind)
                << " node=" << node_name(recorder, e.node)
                << " peer=" << node_name(recorder, e.peer) << " id=" << e.id
                << " a=" << e.a << " b=" << e.b << " c=" << e.c << "\n";
    }
    std::cout << "\n";
  }

  // --- point metrics + registry -------------------------------------------
  {
    TextTable table("Point metrics");
    table.set_header({"metric", "value"});
    for (const auto& [name, v] : result.metrics)
      table.add_row({name, TextTable::num(v, 4)});
    table.print(std::cout);
    std::cout << "\n";
  }
  {
    TextTable table("Metrics registry (totals by name)");
    table.set_header({"name", "total"});
    std::map<std::string, double> totals;
    for (const auto& [key, v] : metrics.flatten()) {
      const std::string name = key.substr(0, key.find('{'));
      totals[name] += v;
    }
    for (const auto& [name, v] : totals)
      table.add_row({name, TextTable::num(v, 4)});
    table.print(std::cout);
    std::cout << "\n";
  }

  // --- reconciliation: timeline vs delivery counters ----------------------
  {
    const double app_delivered =
        static_cast<double>(recorder.count(obs::EventKind::AppDeliver));
    const auto it = result.metrics.find("packets_delivered");
    std::cout << "Reconciliation: " << app_delivered
              << " AppDeliver timeline events";
    if (it != result.metrics.end()) {
      // The timeline counts unique end-to-end deliveries; the workload
      // counters count deliveries within the slot deadline, so the
      // timeline reads >= the counter.
      std::cout << " vs packets_delivered=" << it->second
                << (app_delivered + 0.5 >= it->second ? "  [ok]"
                                                      : "  [MISMATCH]");
    }
    std::cout << "\n";
    std::cout << "  relay: " << recorder.count(obs::EventKind::RelayEval)
              << " evaluations, " << recorder.count(obs::EventKind::RelayTx)
              << " relays sent; salvage: "
              << recorder.count(obs::EventKind::SalvageRequest)
              << " requests, "
              << recorder.count(obs::EventKind::SalvageHandoff)
              << " packets handed off, "
              << recorder.count(obs::EventKind::SalvageDeliver)
              << " delivered to the new anchor\n\n";
  }

  if (!out_dir.empty()) {
    namespace fs = std::filesystem;
    fs::create_directories(out_dir);
    const fs::path base = fs::path(out_dir);
    {
      std::ofstream os((base / "trip.trace.json").string());
      obs::write_chrome_trace(recorder, os);
    }
    {
      std::ofstream os((base / "trip.jsonl").string());
      obs::write_jsonl(recorder, os);
    }
    {
      std::ofstream os((base / "trip.metrics.json").string());
      os << metrics.to_json();
    }
    std::cout << "wrote " << (base / "trip.trace.json").string()
              << " (load in Perfetto), trip.jsonl, trip.metrics.json\n";
  }
  return result.error.empty() ? 0 : 1;
}
