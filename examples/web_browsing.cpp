// Web browsing from the bus: back-to-back short TCP fetches (the §5.3.1
// workload) over ViFi while the vehicle drives a trip. Prints each
// transfer's completion time and the session structure the paper scores.

#include <iostream>

#include "apps/transfer_driver.h"
#include "scenario/live.h"
#include "scenario/testbed.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace vifi;

  const scenario::Testbed bed = scenario::make_vanlan();
  scenario::LiveTrip trip(bed, core::SystemConfig{}, /*trip_seed=*/3);
  trip.run_until(scenario::LiveTrip::warmup());

  // Fetch 10 KB pages continuously; a fetch stalled for 10 s is abandoned
  // and restarted, which also ends the current "session".
  apps::TransferDriver driver(trip.simulator(), trip.transport(),
                              net::Direction::Downstream);
  const Time end = trip.simulator().now() + bed.trip_duration();
  driver.start(end);
  trip.run_until(end + Time::seconds(2.0));

  const auto result = driver.result();

  std::cout << "Fetched " << result.completed << " pages ("
            << result.aborted << " abandoned) in "
            << TextTable::num(result.duration_s, 0) << "s of driving\n\n";

  // Histogram of transfer times.
  TextTable hist("Page fetch times");
  hist.set_header({"bucket", "count"});
  const std::vector<std::pair<std::string, std::pair<double, double>>>
      buckets{{"< 0.5 s", {0.0, 0.5}},
              {"0.5 - 1 s", {0.5, 1.0}},
              {"1 - 2 s", {1.0, 2.0}},
              {"2 - 5 s", {2.0, 5.0}},
              {"> 5 s", {5.0, 1e9}}};
  for (const auto& [label, range] : buckets) {
    int n = 0;
    for (double t : result.transfer_times_s)
      if (t >= range.first && t < range.second) ++n;
    hist.add_row({label, std::to_string(n)});
  }
  hist.print(std::cout);

  TextTable table("Summary");
  table.set_header({"metric", "value"});
  if (!result.transfer_times_s.empty()) {
    table.add_row({"median fetch (s)",
                   TextTable::num(result.median_transfer_time_s(), 2)});
    table.add_row({"p90 fetch (s)",
                   TextTable::num(percentile(result.transfer_times_s, 90), 2)});
  }
  table.add_row({"fetches per uninterrupted session",
                 TextTable::num(result.mean_transfers_per_session(), 1)});
  table.add_row({"fetches per second",
                 TextTable::num(result.transfers_per_second(), 2)});
  std::cout << "\n";
  table.print(std::cout);
  return 0;
}
