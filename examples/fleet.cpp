// Fleet operation: VanLAN ran *two* shuttles (§2.1). This example puts two
// ViFi vehicles on the same campus simultaneously — sharing the wireless
// medium, the BSes, and the backplane — and shows that the BSes anchor and
// serve them independently.
//
// Everything here rides the first-class fleet API: make_vanlan(2) builds a
// Testbed whose two shuttles loop the campus half a lap out of phase (ids,
// mobility and the channel position callback all come from the Testbed),
// and LiveTrip instantiates the whole fleet with one transport per vehicle.

#include <iostream>
#include <map>

#include "scenario/live.h"
#include "scenario/testbed.h"
#include "util/table.h"

int main() {
  using namespace vifi;

  const scenario::Testbed bed = scenario::make_vanlan(/*vehicles=*/2);
  const sim::NodeId vehicle_a = bed.vehicle_ids()[0];
  const sim::NodeId vehicle_b = bed.vehicle_ids()[1];

  core::SystemConfig config;
  scenario::LiveTrip trip(bed, config, /*trip_seed=*/3);
  core::VifiSystem& system = trip.system();

  std::map<int, int> delivered_down;  // vehicle id -> count
  int delivered_up = 0;
  for (const sim::NodeId v : bed.vehicle_ids()) {
    trip.transport(v).subscribe(1, [&, v](const net::PacketRef& p) {
      if (p->dir == net::Direction::Downstream)
        ++delivered_down[v.value()];
      else
        ++delivered_up;
    });
  }

  trip.run_until(scenario::LiveTrip::warmup());

  // Both vans exchange traffic with the wired host for two minutes.
  const int rounds = 1200;
  for (int i = 0; i < rounds; ++i) {
    for (const sim::NodeId v : bed.vehicle_ids()) {
      trip.transport(v).send(net::Direction::Upstream, 150, 1,
                             static_cast<std::uint64_t>(i));
      trip.transport(v).send(net::Direction::Downstream, 150, 1,
                             static_cast<std::uint64_t>(i));
    }
    trip.run_until(trip.simulator().now() + Time::millis(100.0));
  }
  trip.run_until(trip.simulator().now() + Time::seconds(2.0));

  TextTable table("Two vans, two minutes, one campus");
  table.set_header({"metric", "van A", "van B"});
  table.add_row({"anchor", system.vehicle(vehicle_a).anchor().to_string(),
                 system.vehicle(vehicle_b).anchor().to_string()});
  table.add_row(
      {"anchor switches",
       std::to_string(system.vehicle(vehicle_a).anchor_switches()),
       std::to_string(system.vehicle(vehicle_b).anchor_switches())});
  table.add_row({"downstream delivered (of " + std::to_string(rounds) + ")",
                 std::to_string(delivered_down[vehicle_a.value()]),
                 std::to_string(delivered_down[vehicle_b.value()])});
  table.print(std::cout);
  std::cout << "\nUpstream delivered at the host (both vans): "
            << delivered_up << " of " << 2 * rounds << "\n";
  std::cout << "Packets salvaged across anchor handoffs: "
            << system.stats().salvaged() << "\n";
  return 0;
}
