// Fleet operation: VanLAN ran *two* shuttles (§2.1). This example puts two
// ViFi vehicles on the same campus simultaneously — sharing the wireless
// medium, the BSes, and the backplane — and shows that the BSes anchor and
// serve them independently.

#include <iostream>

#include "channel/vehicular.h"
#include "core/system.h"
#include "mobility/layouts.h"
#include "scenario/testbed.h"
#include "util/table.h"

int main() {
  using namespace vifi;

  // Geometry: the standard VanLAN layout, with the second vehicle started
  // half a lap ahead of the first.
  const scenario::Testbed bed = scenario::make_vanlan();
  const mobility::Layout& layout = bed.layout();
  mobility::WaypointPath route(layout.route_waypoints, /*closed=*/true);
  mobility::PathMobility van_a(route, layout.cruise_mps, 0.0);
  mobility::PathMobility van_b(route, layout.cruise_mps,
                               route.total_length() / 2.0);

  const sim::NodeId vehicle_a(11), vehicle_b(12), gateway(13);
  auto position = [&](sim::NodeId id, Time t) {
    if (id == vehicle_a) return van_a.position_at(t);
    if (id == vehicle_b) return van_b.position_at(t);
    if (id == gateway) return mobility::Vec2{-1e9, -1e9};
    return layout.bs_positions[static_cast<std::size_t>(id.value())];
  };

  channel::VehicularChannelParams params;
  channel::VehicularChannel loss(params, position, Rng(2));
  loss.mark_mobile(vehicle_a);
  loss.mark_mobile(vehicle_b);

  sim::Simulator sim;
  core::SystemConfig config;
  config.seed = 3;
  core::VifiSystem system(sim, loss, bed.bs_ids(), {vehicle_a, vehicle_b},
                          gateway, config);

  std::map<int, int> delivered_down;  // vehicle id -> count
  system.vehicle(vehicle_a).set_delivery_handler(
      [&](const net::PacketRef&) { ++delivered_down[vehicle_a.value()]; });
  system.vehicle(vehicle_b).set_delivery_handler(
      [&](const net::PacketRef&) { ++delivered_down[vehicle_b.value()]; });
  int delivered_up = 0;
  system.host().set_delivery_handler(
      [&](const net::PacketRef&) { ++delivered_up; });

  system.start();
  sim.run_until(Time::seconds(3.0));

  // Both vans exchange traffic with the wired host for two minutes.
  const int rounds = 1200;
  for (int i = 0; i < rounds; ++i) {
    for (const sim::NodeId v : {vehicle_a, vehicle_b}) {
      system.send_up(150, 1, static_cast<std::uint64_t>(i), {}, v);
      system.send_down(150, 1, static_cast<std::uint64_t>(i), {}, v);
    }
    sim.run_until(sim.now() + Time::millis(100.0));
  }
  sim.run_until(sim.now() + Time::seconds(2.0));

  TextTable table("Two vans, two minutes, one campus");
  table.set_header({"metric", "van A", "van B"});
  table.add_row({"anchor", system.vehicle(vehicle_a).anchor().to_string(),
                 system.vehicle(vehicle_b).anchor().to_string()});
  table.add_row(
      {"anchor switches",
       std::to_string(system.vehicle(vehicle_a).anchor_switches()),
       std::to_string(system.vehicle(vehicle_b).anchor_switches())});
  table.add_row({"downstream delivered (of " + std::to_string(rounds) + ")",
                 std::to_string(delivered_down[vehicle_a.value()]),
                 std::to_string(delivered_down[vehicle_b.value()])});
  table.print(std::cout);
  std::cout << "\nUpstream delivered at the host (both vans): "
            << delivered_up << " of " << 2 * rounds << "\n";
  std::cout << "Packets salvaged across anchor handoffs: "
            << system.stats().salvaged() << "\n";
  return 0;
}
