#include "sim/simulator.h"

#include <algorithm>

namespace vifi::sim {

EventId Simulator::schedule(Time delay, EventClosure fn) {
  VIFI_EXPECTS(!delay.is_negative());
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(Time at, EventClosure fn) {
  VIFI_EXPECTS(at >= now_);
  VIFI_EXPECTS(static_cast<bool>(fn));
  const std::uint32_t idx = acquire_slot();
  EventSlot& s = slot(idx);
  s.fn = std::move(fn);
  s.seq = next_seq_++;
  heap_push(QueueEntry{at, s.seq, idx});
  ++live_;
  return EventId(idx + 1, s.seq);
}

void Simulator::heap_push(QueueEntry e) {
  heap_.push_back(e);  // placeholder; sift the hole up, then drop e in
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Simulator::heap_pop() {
  const QueueEntry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t i = 0;
  for (;;) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t end = std::min(first_child + 4, n);
    for (std::size_t c = first_child + 1; c < end; ++c)
      if (earlier(heap_[c], heap_[best])) best = c;
    if (!earlier(heap_[best], last)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
}

bool Simulator::cancel(EventId id) {
  if (!id.valid()) return false;
  const std::uint32_t idx = id.slot_plus1_ - 1;
  if (idx >= slot_count_) return false;
  EventSlot& s = slot(idx);
  // Only genuinely pending events can be cancelled; stale ids (already
  // fired or already cancelled, slot possibly reused) fail the sequence
  // match and are rejected in O(1). The queue entry is purged lazily when
  // it surfaces.
  if (s.seq == 0 || s.seq != id.seq_) return false;
  s.fn.reset();
  release_slot(idx);
  --live_;
  return true;
}

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t idx = free_head_;
    free_head_ = slot(idx).next_free;
    return idx;
  }
  if (slot_count_ == slabs_.size() * kSlabSize)
    slabs_.push_back(std::make_unique<EventSlot[]>(kSlabSize));
  return slot_count_++;
}

void Simulator::release_slot(std::uint32_t idx) {
  EventSlot& s = slot(idx);
  s.seq = 0;
  s.next_free = free_head_;
  free_head_ = idx;
}

bool Simulator::dispatch_next(Time limit) {
  while (!heap_.empty()) {
    const QueueEntry top = heap_[0];
    // Stale entries (cancelled, or their slot reused after firing) are
    // skipped regardless of the time limit.
    EventSlot& s = slot(top.slot);
    if (s.seq != top.seq) {
      heap_pop();
      continue;
    }
    if (top.at > limit) return false;
    heap_pop();
    EventClosure fn = std::move(s.fn);
    release_slot(top.slot);
    --live_;
    now_ = top.at;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void Simulator::run_until(Time end) {
  VIFI_EXPECTS(end >= now_);
  stopped_ = false;
  while (!stopped_ && dispatch_next(end)) {
  }
  if (!stopped_ && now_ < end) now_ = end;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && dispatch_next(Time::max())) {
  }
}

void PeriodicTimer::start() { start_after(period_); }

void PeriodicTimer::start_after(Time initial_delay) {
  stop();
  running_ = true;
  pending_ = sim_.schedule(initial_delay, [this] { fire(); });
}

void PeriodicTimer::stop() {
  if (running_) {
    sim_.cancel(pending_);
    pending_ = EventId{};
    running_ = false;
  }
}

void PeriodicTimer::fire() {
  // Re-arm before the callback so the callback can observe running() and
  // call stop()/start() itself.
  pending_ = sim_.schedule(period_, [this] { fire(); });
  fn_();
}

}  // namespace vifi::sim
