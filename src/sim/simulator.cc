#include "sim/simulator.h"

namespace vifi::sim {

EventId Simulator::schedule(Time delay, std::function<void()> fn) {
  VIFI_EXPECTS(!delay.is_negative());
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(Time at, std::function<void()> fn) {
  VIFI_EXPECTS(at >= now_);
  VIFI_EXPECTS(fn != nullptr);
  const EventId id(next_seq_);
  queue_.push(Event{at, next_seq_, std::move(fn)});
  pending_.insert(next_seq_);
  ++next_seq_;
  return id;
}

bool Simulator::cancel(EventId id) {
  if (!id.valid()) return false;
  // Only genuinely pending events can be cancelled; stale ids (already
  // fired or already cancelled) are rejected in O(1).
  if (pending_.erase(id.seq_) == 0) return false;
  // Lazy deletion: remember the sequence number; skip it on pop. Entries
  // are purged as their events surface in the queue.
  cancelled_.insert(id.seq_);
  return true;
}

bool Simulator::dispatch_next(Time limit) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.at > limit) return false;
    if (cancelled_.erase(top.seq) != 0) {
      queue_.pop();
      continue;
    }
    // Move the callback out before popping so the event may schedule more.
    Event ev = std::move(const_cast<Event&>(top));
    queue_.pop();
    pending_.erase(ev.seq);
    now_ = ev.at;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::run_until(Time end) {
  VIFI_EXPECTS(end >= now_);
  stopped_ = false;
  while (!stopped_ && dispatch_next(end)) {
  }
  if (!stopped_ && now_ < end) now_ = end;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && dispatch_next(Time::max())) {
  }
}

std::size_t Simulator::pending_events() const { return pending_.size(); }

void PeriodicTimer::start() { start_after(period_); }

void PeriodicTimer::start_after(Time initial_delay) {
  stop();
  running_ = true;
  pending_ = sim_.schedule(initial_delay, [this] { fire(); });
}

void PeriodicTimer::stop() {
  if (running_) {
    sim_.cancel(pending_);
    pending_ = EventId{};
    running_ = false;
  }
}

void PeriodicTimer::fire() {
  // Re-arm before the callback so the callback can observe running() and
  // call stop()/start() itself.
  pending_ = sim_.schedule(period_, [this] { fire(); });
  fn_();
}

}  // namespace vifi::sim
