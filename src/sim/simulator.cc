#include "sim/simulator.h"

#include <algorithm>

namespace vifi::sim {

EventId Simulator::schedule(Time delay, std::function<void()> fn) {
  VIFI_EXPECTS(!delay.is_negative());
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(Time at, std::function<void()> fn) {
  VIFI_EXPECTS(at >= now_);
  VIFI_EXPECTS(fn != nullptr);
  const EventId id(next_seq_);
  queue_.push(Event{at, next_seq_, std::move(fn)});
  ++next_seq_;
  return id;
}

bool Simulator::cancel(EventId id) {
  if (!id.valid()) return false;
  // Lazy deletion: remember the sequence number; skip it on pop. The list
  // stays small because entries are erased as their events surface.
  if (std::find(cancelled_.begin(), cancelled_.end(), id.seq_) !=
      cancelled_.end())
    return false;
  if (id.seq_ >= next_seq_) return false;
  cancelled_.push_back(id.seq_);
  ++cancelled_pending_;
  return true;
}

bool Simulator::dispatch_next(Time limit) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.at > limit) return false;
    const auto it =
        std::find(cancelled_.begin(), cancelled_.end(), top.seq);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      --cancelled_pending_;
      queue_.pop();
      continue;
    }
    // Move the callback out before popping so the event may schedule more.
    Event ev = std::move(const_cast<Event&>(top));
    queue_.pop();
    now_ = ev.at;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::run_until(Time end) {
  VIFI_EXPECTS(end >= now_);
  stopped_ = false;
  while (!stopped_ && dispatch_next(end)) {
  }
  if (!stopped_ && now_ < end) now_ = end;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && dispatch_next(Time::max())) {
  }
}

std::size_t Simulator::pending_events() const {
  return queue_.size() - cancelled_pending_;
}

void PeriodicTimer::start() { start_after(period_); }

void PeriodicTimer::start_after(Time initial_delay) {
  stop();
  running_ = true;
  pending_ = sim_.schedule(initial_delay, [this] { fire(); });
}

void PeriodicTimer::stop() {
  if (running_) {
    sim_.cancel(pending_);
    pending_ = EventId{};
    running_ = false;
  }
}

void PeriodicTimer::fire() {
  // Re-arm before the callback so the callback can observe running() and
  // call stop()/start() itself.
  pending_ = sim_.schedule(period_, [this] { fire(); });
  fn_();
}

}  // namespace vifi::sim
