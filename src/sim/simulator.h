#pragma once

/// \file simulator.h
/// The discrete-event engine every experiment runs on — the reproduction's
/// stand-in for the paper's QualNet simulator (§5.1). Single-threaded,
/// deterministic: events at equal timestamps fire in scheduling order.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/contracts.h"
#include "util/time.h"

namespace vifi::sim {

/// Identifies a scheduled event so it can be cancelled.
class EventId {
 public:
  constexpr EventId() = default;
  constexpr bool valid() const { return seq_ != 0; }
  friend constexpr bool operator==(EventId, EventId) = default;

 private:
  friend class Simulator;
  constexpr explicit EventId(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_ = 0;
};

/// A discrete-event simulator with a microsecond-resolution clock.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules \p fn to run at now() + delay (delay >= 0).
  EventId schedule(Time delay, std::function<void()> fn);

  /// Schedules \p fn at the absolute time \p at (at >= now()).
  EventId schedule_at(Time at, std::function<void()> fn);

  /// Cancels a pending event. Cancelling an already-fired or already-
  /// cancelled event is a no-op. Returns true if the event was pending.
  bool cancel(EventId id);

  /// Runs until the queue is empty or \p end is reached. The clock is left
  /// at min(end, time of last event) — or exactly \p end if given.
  void run_until(Time end);

  /// Runs until the event queue is empty.
  void run();

  /// Stops the run loop after the current event returns.
  void stop() { stopped_ = true; }

  /// Number of events executed so far (for tests and micro-benches).
  std::uint64_t events_executed() const { return executed_; }
  std::size_t pending_events() const;

 private:
  struct Event {
    Time at;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  bool dispatch_next(Time limit);

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::unordered_set<std::uint64_t> pending_;    // scheduled, not yet fired
  std::unordered_set<std::uint64_t> cancelled_;  // purged as events surface
  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

/// A repeating timer bound to a simulator. Start/stop safe; the callback
/// may stop or restart the timer from within itself.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, Time period, std::function<void()> fn)
      : sim_(sim), period_(period), fn_(std::move(fn)) {
    VIFI_EXPECTS(period > Time::zero());
  }
  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Arms the timer; first fire after \p initial_delay (default: period).
  void start();
  void start_after(Time initial_delay);
  void stop();
  bool running() const { return running_; }
  Time period() const { return period_; }
  void set_period(Time period) {
    VIFI_EXPECTS(period > Time::zero());
    period_ = period;
  }

 private:
  void fire();

  Simulator& sim_;
  Time period_;
  std::function<void()> fn_;
  EventId pending_{};
  bool running_ = false;
};

}  // namespace vifi::sim
