#pragma once

/// \file simulator.h
/// The discrete-event engine every experiment runs on — the reproduction's
/// stand-in for the paper's QualNet simulator (§5.1). Single-threaded,
/// deterministic: events at equal timestamps fire in scheduling order.
///
/// The schedule path is allocation-free for typical callbacks: closures are
/// stored in a small-buffer `EventClosure` (no `std::function` heap
/// allocation), callbacks live in a slab of reusable event slots, and the
/// priority queue sifts trivially-copyable {time, seq, slot} entries only.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/contracts.h"
#include "util/time.h"

namespace vifi::sim {

/// A move-only `void()` callable with inline storage. Callables up to
/// `kInlineBytes` (nearly every capture list in this codebase) are stored
/// in place; larger ones fall back to a single heap allocation.
class EventClosure {
 public:
  static constexpr std::size_t kInlineBytes = 32;

  EventClosure() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventClosure> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design,
  // mirrors std::function so lambdas schedule without a wrapper spelling.
  EventClosure(F&& f) {
    using Fn = std::decay_t<F>;
    // An empty nullable callable (std::function, function pointer) becomes
    // an empty closure, so schedule-time preconditions reject it at the
    // buggy call site instead of the run dying at fire time.
    if constexpr (std::is_constructible_v<bool, const Fn&>) {
      if (!static_cast<bool>(f)) return;
    }
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &InlineOps<Fn>::vtable;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      vt_ = &HeapOps<Fn>::vtable;
    }
  }

  EventClosure(EventClosure&& o) noexcept { move_from(o); }
  EventClosure& operator=(EventClosure&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  EventClosure(const EventClosure&) = delete;
  EventClosure& operator=(const EventClosure&) = delete;
  ~EventClosure() { reset(); }

  void operator()() { vt_->invoke(buf_); }
  explicit operator bool() const { return vt_ != nullptr; }

  void reset() {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    void (*relocate)(void* src, void* dst) noexcept;  // move-construct + destroy src
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  struct InlineOps {
    static void invoke(void* p) { (*static_cast<Fn*>(p))(); }
    static void relocate(void* src, void* dst) noexcept {
      ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
      static_cast<Fn*>(src)->~Fn();
    }
    static void destroy(void* p) noexcept { static_cast<Fn*>(p)->~Fn(); }
    static constexpr VTable vtable{&invoke, &relocate, &destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static void invoke(void* p) { (**static_cast<Fn**>(p))(); }
    static void relocate(void* src, void* dst) noexcept {
      ::new (dst) Fn*(*static_cast<Fn**>(src));
    }
    static void destroy(void* p) noexcept { delete *static_cast<Fn**>(p); }
    static constexpr VTable vtable{&invoke, &relocate, &destroy};
  };

  void move_from(EventClosure& o) noexcept {
    vt_ = o.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(o.buf_, buf_);
      o.vt_ = nullptr;
    }
  }

  const VTable* vt_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

/// Identifies a scheduled event so it can be cancelled. Holds the event's
/// slot and its unique sequence number; a stale id (event already fired or
/// cancelled, slot since reused) is detected by a sequence mismatch.
class EventId {
 public:
  constexpr EventId() = default;
  constexpr bool valid() const { return slot_plus1_ != 0; }
  friend constexpr bool operator==(EventId, EventId) = default;

 private:
  friend class Simulator;
  constexpr EventId(std::uint32_t slot_plus1, std::uint64_t seq)
      : slot_plus1_(slot_plus1), seq_(seq) {}
  std::uint32_t slot_plus1_ = 0;  ///< Slot index + 1; 0 = invalid.
  std::uint64_t seq_ = 0;
};

/// A discrete-event simulator with a microsecond-resolution clock.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules \p fn to run at now() + delay (delay >= 0).
  EventId schedule(Time delay, EventClosure fn);

  /// Schedules \p fn at the absolute time \p at (at >= now()).
  EventId schedule_at(Time at, EventClosure fn);

  /// Cancels a pending event. Cancelling an already-fired or already-
  /// cancelled event is a no-op. Returns true if the event was pending.
  bool cancel(EventId id);

  /// Runs until the queue is empty or \p end is reached. The clock is left
  /// at min(end, time of last event) — or exactly \p end if given.
  void run_until(Time end);

  /// Runs until the event queue is empty.
  void run();

  /// Stops the run loop after the current event returns.
  void stop() { stopped_ = true; }

  /// Number of events executed so far (for tests and micro-benches).
  std::uint64_t events_executed() const { return executed_; }
  std::size_t pending_events() const { return live_; }

 private:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  /// What the heap actually sifts: a trivially copyable record. The
  /// closure stays put in its slot until the event fires.
  struct QueueEntry {
    Time at;
    std::uint64_t seq;   // tie-break: FIFO among equal timestamps
    std::uint32_t slot;  // index into slots_
  };

  /// Strict total order over (at, seq) — seq is unique, so the pop
  /// sequence is identical for any correct heap arity.
  static bool earlier(const QueueEntry& a, const QueueEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  /// Slab entry holding a pending callback. seq == 0 marks a free slot;
  /// queue entries whose seq no longer matches their slot are stale
  /// (cancelled, or fired and the slot reused) and are skipped on pop.
  struct EventSlot {
    EventClosure fn;
    std::uint64_t seq = 0;
    std::uint32_t next_free = kNoSlot;
  };

  static constexpr std::uint32_t kSlabBits = 8;
  static constexpr std::uint32_t kSlabSize = 1u << kSlabBits;

  bool dispatch_next(Time limit);
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void heap_push(QueueEntry e);
  void heap_pop();

  EventSlot& slot(std::uint32_t i) {
    return slabs_[i >> kSlabBits][i & (kSlabSize - 1)];
  }

  /// An implicit 4-ary min-heap: shallower than a binary heap and sifts
  /// 24-byte PODs within cache lines, which is what makes the schedule
  /// path cheap at queue depths in the thousands.
  std::vector<QueueEntry> heap_;
  /// Fixed-size slabs: growth never relocates a pending closure.
  std::vector<std::unique_ptr<EventSlot[]>> slabs_;
  std::uint32_t slot_count_ = 0;
  std::uint32_t free_head_ = kNoSlot;
  std::size_t live_ = 0;
  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

/// A repeating timer bound to a simulator. Start/stop safe; the callback
/// may stop or restart the timer from within itself.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, Time period, std::function<void()> fn)
      : sim_(sim), period_(period), fn_(std::move(fn)) {
    VIFI_EXPECTS(period > Time::zero());
  }
  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Arms the timer; first fire after \p initial_delay (default: period).
  void start();
  void start_after(Time initial_delay);
  void stop();
  bool running() const { return running_; }
  Time period() const { return period_; }
  void set_period(Time period) {
    VIFI_EXPECTS(period > Time::zero());
    period_ = period;
  }

 private:
  void fire();

  Simulator& sim_;
  Time period_;
  std::function<void()> fn_;
  EventId pending_{};
  bool running_ = false;
};

}  // namespace vifi::sim
