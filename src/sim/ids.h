#pragma once

/// \file ids.h
/// Identities of simulated entities. A strong type rather than a bare int so
/// node ids cannot be confused with counts or indices (Core Guidelines I.4).

#include <compare>
#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>

namespace vifi::sim {

/// Identifies a node (vehicle, basestation, or wired host).
class NodeId {
 public:
  constexpr NodeId() = default;
  constexpr explicit NodeId(int value) : value_(value) {}

  constexpr int value() const { return value_; }
  constexpr bool valid() const { return value_ >= 0; }

  friend constexpr auto operator<=>(NodeId, NodeId) = default;

  std::string to_string() const {
    // Built with += rather than "n" + ... : the temporary-concat form
    // trips GCC 12's -Wrestrict false positive when inlined (PR105651).
    std::string s(1, 'n');
    s += std::to_string(value_);
    return s;
  }

 private:
  int value_ = -1;
};

/// The broadcast pseudo-destination.
inline constexpr NodeId kBroadcast{};

std::ostream& operator<<(std::ostream& os, NodeId id);

/// An ordered (tx, rx) link between two nodes.
struct LinkKey {
  NodeId tx;
  NodeId rx;
  friend constexpr auto operator<=>(const LinkKey&, const LinkKey&) = default;
};

}  // namespace vifi::sim

template <>
struct std::hash<vifi::sim::NodeId> {
  std::size_t operator()(vifi::sim::NodeId id) const noexcept {
    return std::hash<int>{}(id.value());
  }
};

template <>
struct std::hash<vifi::sim::LinkKey> {
  std::size_t operator()(const vifi::sim::LinkKey& k) const noexcept {
    return std::hash<int>{}(k.tx.value()) * 1000003u ^
           std::hash<int>{}(k.rx.value());
  }
};
