#pragma once

/// \file burst.h
/// Loss-burstiness statistics for Fig. 6: (a) the conditional loss
/// probability P(loss_{i+k} | loss_i) as a function of lag k, and (b) the
/// cross-BS conditional reception table showing losses are path-dependent
/// rather than receiver-dependent (§3.4.2).

#include <vector>

namespace vifi::analysis {

/// A dense probe record: received[i] says whether probe i was decoded;
/// in_range[i] masks probes taken while the pair was in radio range (the
/// curve conditions on in-range losses only, to measure *channel* bursts
/// rather than out-of-coverage runs).
struct ProbeSeries {
  std::vector<bool> received;
  std::vector<bool> in_range;
};

/// P(loss at i) over in-range probes.
double unconditional_loss(const ProbeSeries& s);

/// P(loss at i+k | loss at i) for each lag in \p lags; both indices must be
/// in range. Returns one value per lag (NaN-free: lags with no support
/// yield the unconditional loss).
std::vector<double> conditional_loss_curve(const ProbeSeries& s,
                                           const std::vector<int>& lags);

/// The Fig. 6(b) table for a BS pair A, B probed in lockstep.
struct PairConditionals {
  double p_a = 0.0;                ///< P(A): unconditional reception from A.
  double p_b = 0.0;                ///< P(B).
  double p_a_next_after_a_loss = 0.0;  ///< P(A_{i+1} | !A_i).
  double p_b_next_after_a_loss = 0.0;  ///< P(B_{i+1} | !A_i).
  double p_b_next_after_b_loss = 0.0;  ///< P(B_{i+1} | !B_i).
  double p_a_next_after_b_loss = 0.0;  ///< P(A_{i+1} | !B_i).
};

struct PairSeries {
  std::vector<bool> a_received;
  std::vector<bool> b_received;
  std::vector<bool> both_in_range;
};

PairConditionals pair_conditionals(const PairSeries& s);

}  // namespace vifi::analysis
