#include "analysis/sessions.h"

#include <algorithm>

#include "util/contracts.h"

namespace vifi::analysis {

std::vector<double> interval_ratios(const SlotStream& stream,
                                    Time interval) {
  VIFI_EXPECTS(interval >= stream.slot);
  VIFI_EXPECTS(stream.per_slot_max > 0);
  const auto slots_per_interval = static_cast<std::size_t>(
      interval.to_micros() / stream.slot.to_micros());
  VIFI_EXPECTS(slots_per_interval > 0);
  std::vector<double> ratios;
  const std::size_t n = stream.delivered.size() / slots_per_interval;
  ratios.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    int got = 0;
    for (std::size_t j = 0; j < slots_per_interval; ++j)
      got += stream.delivered[i * slots_per_interval + j];
    ratios.push_back(static_cast<double>(got) /
                     (static_cast<double>(slots_per_interval) *
                      stream.per_slot_max));
  }
  return ratios;
}

std::vector<double> session_lengths_s(const SlotStream& stream,
                                      const SessionDef& def) {
  const std::vector<double> ratios = interval_ratios(stream, def.interval);
  const double interval_s = def.interval.to_seconds();
  std::vector<double> lengths;
  double run = 0.0;
  for (double r : ratios) {
    if (r >= def.min_ratio) {
      run += interval_s;
    } else if (run > 0.0) {
      lengths.push_back(run);
      run = 0.0;
    }
  }
  if (run > 0.0) lengths.push_back(run);
  return lengths;
}

Cdf session_time_cdf(const std::vector<double>& lengths) {
  Cdf cdf;
  for (double len : lengths) cdf.add(len, len);
  return cdf;
}

double median_session_length(const std::vector<double>& lengths) {
  if (lengths.empty()) return 0.0;
  return session_time_cdf(lengths).quantile(0.5);
}

Timeline connectivity_timeline(const SlotStream& stream,
                               const SessionDef& def) {
  const std::vector<double> ratios = interval_ratios(stream, def.interval);
  Timeline tl;
  tl.strip.reserve(ratios.size());
  bool in_gap = false;
  for (double r : ratios) {
    if (r >= def.min_ratio) {
      tl.strip.push_back('#');
      tl.adequate_s += def.interval.to_seconds();
      in_gap = false;
    } else if (r == 0.0) {
      tl.strip.push_back(' ');
      in_gap = false;
    } else {
      tl.strip.push_back('.');
      if (!in_gap) ++tl.interruptions;
      in_gap = true;
    }
  }
  return tl;
}

}  // namespace vifi::analysis
