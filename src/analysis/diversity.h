#pragma once

/// \file diversity.h
/// BS-diversity statistics (Fig. 5): how many BSes can the vehicle hear per
/// one-second period? Both visibility definitions from the paper are
/// supported — at least one beacon, and at least 50% of beacons.

#include "trace/observations.h"
#include "util/cdf.h"

namespace vifi::analysis {

/// CDF over seconds of the number of BSes with a beacon reception fraction
/// >= \p min_fraction in that second (min_fraction <= 1/bps reduces to "at
/// least one beacon").
Cdf visible_bs_cdf(const trace::MeasurementTrace& trip, double min_fraction);

/// Same, pooled over all trips of a campaign.
Cdf visible_bs_cdf(const trace::Campaign& campaign, double min_fraction);

}  // namespace vifi::analysis
