#include "analysis/diversity.h"

#include <algorithm>

#include "util/contracts.h"

namespace vifi::analysis {

namespace {
void add_trip(Cdf& cdf, const trace::MeasurementTrace& trip,
              double min_fraction) {
  const auto counts = trace::beacon_counts_per_second(trip);
  const int secs = trip.seconds();
  const double threshold =
      std::max(1.0, min_fraction * trip.beacons_per_second);
  for (int s = 0; s < secs; ++s) {
    int visible = 0;
    for (const auto& [bs, row] : counts) {
      (void)bs;
      const int c =
          static_cast<std::size_t>(s) < row.size() ? row[static_cast<std::size_t>(s)] : 0;
      if (static_cast<double>(c) >= threshold) ++visible;
    }
    cdf.add(static_cast<double>(visible));
  }
}
}  // namespace

Cdf visible_bs_cdf(const trace::MeasurementTrace& trip, double min_fraction) {
  Cdf cdf;
  add_trip(cdf, trip, min_fraction);
  return cdf;
}

Cdf visible_bs_cdf(const trace::Campaign& campaign, double min_fraction) {
  Cdf cdf;
  for (const auto& trip : campaign.trips) add_trip(cdf, trip, min_fraction);
  return cdf;
}

}  // namespace vifi::analysis
