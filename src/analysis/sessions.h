#pragma once

/// \file sessions.h
/// Periods of uninterrupted connectivity (§3.1): a session is a maximal run
/// of consecutive intervals whose reception ratio meets a threshold. The
/// definition is parameterised exactly as in Figs. 4/7 — by the averaging
/// interval and the minimum reception ratio.

#include <string>
#include <vector>

#include "util/cdf.h"
#include "util/time.h"

namespace vifi::analysis {

/// A delivery stream: how many of the workload's packets made it in each
/// fixed-length slot (e.g. 2 per 100 ms slot: one up + one down).
struct SlotStream {
  Time slot = Time::millis(100);
  int per_slot_max = 2;
  std::vector<int> delivered;

  Time duration() const {
    return slot * static_cast<double>(delivered.size());
  }
};

/// Adequate-connectivity definition (Figs. 3, 4, 7).
struct SessionDef {
  Time interval = Time::seconds(1.0);
  double min_ratio = 0.5;
};

/// Reception ratio per averaging interval (partial trailing interval is
/// dropped).
std::vector<double> interval_ratios(const SlotStream& stream,
                                    Time interval);

/// Lengths (seconds) of all sessions in the stream.
std::vector<double> session_lengths_s(const SlotStream& stream,
                                      const SessionDef& def);

/// Builds the Fig. 3(d) CDF: fraction of *connected time* spent in sessions
/// of length <= x. Sessions from many trips can be merged.
Cdf session_time_cdf(const std::vector<double>& lengths);

/// Median of the session-time CDF — the "median session length" metric of
/// Figs. 4 and 7 (time-weighted: the median second of connectivity lives in
/// a session of this length). Returns 0 when there are no sessions.
double median_session_length(const std::vector<double>& lengths);

/// Fig. 3(a–c) / Fig. 8 strips: one character per interval, '#' adequate,
/// '.' interruption while in coverage, ' ' out of coverage (zero
/// reception). Interruption count treats each maximal '.' run inside
/// coverage as one interruption (a "dark circle").
struct Timeline {
  std::string strip;
  int interruptions = 0;
  double adequate_s = 0.0;
};

Timeline connectivity_timeline(const SlotStream& stream,
                               const SessionDef& def);

}  // namespace vifi::analysis
