#include "analysis/burst.h"

#include "util/contracts.h"

namespace vifi::analysis {

double unconditional_loss(const ProbeSeries& s) {
  VIFI_EXPECTS(s.received.size() == s.in_range.size());
  std::size_t n = 0, losses = 0;
  for (std::size_t i = 0; i < s.received.size(); ++i) {
    if (!s.in_range[i]) continue;
    ++n;
    if (!s.received[i]) ++losses;
  }
  return n == 0 ? 0.0 : static_cast<double>(losses) / static_cast<double>(n);
}

std::vector<double> conditional_loss_curve(const ProbeSeries& s,
                                           const std::vector<int>& lags) {
  VIFI_EXPECTS(s.received.size() == s.in_range.size());
  const double fallback = unconditional_loss(s);
  std::vector<double> out;
  out.reserve(lags.size());
  for (int k : lags) {
    VIFI_EXPECTS(k > 0);
    std::size_t n = 0, losses = 0;
    for (std::size_t i = 0; i + static_cast<std::size_t>(k) < s.received.size();
         ++i) {
      const std::size_t j = i + static_cast<std::size_t>(k);
      if (!s.in_range[i] || !s.in_range[j]) continue;
      if (s.received[i]) continue;  // condition: probe i lost
      ++n;
      if (!s.received[j]) ++losses;
    }
    out.push_back(n == 0 ? fallback
                         : static_cast<double>(losses) /
                               static_cast<double>(n));
  }
  return out;
}

PairConditionals pair_conditionals(const PairSeries& s) {
  VIFI_EXPECTS(s.a_received.size() == s.b_received.size());
  VIFI_EXPECTS(s.a_received.size() == s.both_in_range.size());
  PairConditionals out;
  std::size_t n = 0, a_got = 0, b_got = 0;
  std::size_t a_lost_n = 0, a_next_after_a = 0, b_next_after_a = 0;
  std::size_t b_lost_n = 0, b_next_after_b = 0, a_next_after_b = 0;
  for (std::size_t i = 0; i < s.a_received.size(); ++i) {
    if (!s.both_in_range[i]) continue;
    ++n;
    if (s.a_received[i]) ++a_got;
    if (s.b_received[i]) ++b_got;
    const std::size_t j = i + 1;
    if (j >= s.a_received.size() || !s.both_in_range[j]) continue;
    if (!s.a_received[i]) {
      ++a_lost_n;
      if (s.a_received[j]) ++a_next_after_a;
      if (s.b_received[j]) ++b_next_after_a;
    }
    if (!s.b_received[i]) {
      ++b_lost_n;
      if (s.b_received[j]) ++b_next_after_b;
      if (s.a_received[j]) ++a_next_after_b;
    }
  }
  auto ratio = [](std::size_t num, std::size_t den) {
    return den == 0 ? 0.0
                    : static_cast<double>(num) / static_cast<double>(den);
  };
  out.p_a = ratio(a_got, n);
  out.p_b = ratio(b_got, n);
  out.p_a_next_after_a_loss = ratio(a_next_after_a, a_lost_n);
  out.p_b_next_after_a_loss = ratio(b_next_after_a, a_lost_n);
  out.p_b_next_after_b_loss = ratio(b_next_after_b, b_lost_n);
  out.p_a_next_after_b_loss = ratio(a_next_after_b, b_lost_n);
  return out;
}

}  // namespace vifi::analysis
