#include "handoff/policies.h"

#include <algorithm>

#include "util/contracts.h"
#include "util/ewma.h"

namespace vifi::handoff {

namespace {

/// Per-BS, per-second mean RSSI as a dense table (NaN-free: pair of
/// has-value flag and value).
struct RssiTable {
  std::map<NodeId, std::vector<std::pair<bool, double>>> rows;

  static RssiTable build(const MeasurementTrace& trip) {
    RssiTable t;
    const auto secs = static_cast<std::size_t>(std::max(1, trip.seconds()));
    for (NodeId bs : trip.bs_ids)
      t.rows[bs].assign(secs, {false, 0.0});
    const auto per_bs = trace::beacon_rssi_per_second(trip);
    for (const auto& [bs, entries] : per_bs) {
      auto it = t.rows.find(bs);
      if (it == t.rows.end()) continue;
      for (const auto& [sec, avg] : entries) {
        if (sec >= 0 && static_cast<std::size_t>(sec) < it->second.size())
          it->second[static_cast<std::size_t>(sec)] = {true, avg};
      }
    }
    return t;
  }
};

}  // namespace

std::vector<NodeId> RssiPolicy::compute_choices(
    const MeasurementTrace& trip) {
  const auto secs = static_cast<std::size_t>(std::max(1, trip.seconds()));
  const RssiTable rssi = RssiTable::build(trip);
  std::map<NodeId, Ewma> avg;
  std::map<NodeId, int> last_heard;
  for (NodeId bs : trip.bs_ids) avg.emplace(bs, Ewma(alpha_));

  std::vector<NodeId> choices(secs);
  for (std::size_t s = 0; s < secs; ++s) {
    // Decide for second s using data from seconds < s.
    NodeId best{};
    double best_rssi = -1e9;
    for (NodeId bs : trip.bs_ids) {
      const auto lh = last_heard.find(bs);
      if (lh == last_heard.end() ||
          static_cast<int>(s) - lh->second > staleness_s_)
        continue;
      const Ewma& e = avg.at(bs);
      if (e.initialized() && e.value() > best_rssi) {
        best_rssi = e.value();
        best = bs;
      }
    }
    choices[s] = best;
    // Fold in second-s observations for future decisions.
    for (NodeId bs : trip.bs_ids) {
      const auto& [has, value] = rssi.rows.at(bs)[s];
      if (has) {
        avg.at(bs).update(value);
        last_heard[bs] = static_cast<int>(s);
      }
    }
  }
  return choices;
}

std::vector<NodeId> BrrPolicy::compute_choices(const MeasurementTrace& trip) {
  const auto secs = static_cast<std::size_t>(std::max(1, trip.seconds()));
  const auto counts = trace::beacon_counts_per_second(trip);
  std::map<NodeId, Ewma> ratio;
  std::map<NodeId, bool> seen;
  for (NodeId bs : trip.bs_ids) ratio.emplace(bs, Ewma(alpha_));

  std::vector<NodeId> choices(secs);
  for (std::size_t s = 0; s < secs; ++s) {
    NodeId best{};
    double best_ratio = 0.0;  // require strictly positive estimate
    for (NodeId bs : trip.bs_ids) {
      if (!seen[bs]) continue;
      const Ewma& e = ratio.at(bs);
      if (e.initialized() && e.value() > best_ratio) {
        best_ratio = e.value();
        best = bs;
      }
    }
    choices[s] = best;
    for (NodeId bs : trip.bs_ids) {
      const auto& row = counts.at(bs);
      const int c = s < row.size() ? row[s] : 0;
      if (c > 0) seen[bs] = true;
      // Once a BS has been seen, zero-count seconds drive its average down
      // (self-ageing); unseen BSes are not updated to avoid phantom zeros.
      if (seen[bs])
        ratio.at(bs).update(
            std::min(1.0, static_cast<double>(c) / trip.beacons_per_second));
    }
  }
  return choices;
}

std::vector<NodeId> StickyPolicy::compute_choices(
    const MeasurementTrace& trip) {
  const auto secs = static_cast<std::size_t>(std::max(1, trip.seconds()));
  const auto counts = trace::beacon_counts_per_second(trip);
  const RssiTable rssi = RssiTable::build(trip);

  auto last_second_rssi_best = [&](std::size_t s) {
    NodeId best{};
    double best_rssi = -1e9;
    if (s == 0) return best;
    for (NodeId bs : trip.bs_ids) {
      const auto& [has, value] = rssi.rows.at(bs)[s - 1];
      if (has && value > best_rssi) {
        best_rssi = value;
        best = bs;
      }
    }
    return best;
  };

  std::vector<NodeId> choices(secs);
  NodeId current{};
  int silent_for = 0;
  for (std::size_t s = 0; s < secs; ++s) {
    if (!current.valid()) {
      current = last_second_rssi_best(s);
      silent_for = 0;
    } else {
      const int silence_limit =
          static_cast<int>(silence_.to_seconds() + 0.5);
      if (silent_for >= silence_limit) {
        const NodeId next = last_second_rssi_best(s);
        if (next.valid()) {
          current = next;
          silent_for = 0;
        }
      }
    }
    choices[s] = current;
    // Update silence from this second's beacons.
    if (current.valid()) {
      const auto& row = counts.at(current);
      const int c = s < row.size() ? row[s] : 0;
      silent_for = c > 0 ? 0 : silent_for + 1;
    }
  }
  return choices;
}

HistoryPolicy::HistoryPolicy(const trace::Campaign& campaign,
                             double cell_size_m)
    : campaign_(campaign), cell_size_m_(cell_size_m) {
  VIFI_EXPECTS(cell_size_m > 0.0);
}

const HistoryPolicy::DayTable& HistoryPolicy::table_for_day(int day) {
  auto it = cache_.find(day);
  if (it != cache_.end()) return it->second;
  DayTable table;
  for (const auto* trip : campaign_.trips_on_day(day)) {
    for (const trace::ProbeSlot& slot : trip->slots) {
      const auto cell = mobility::grid_cell(slot.vehicle_pos, cell_size_m_);
      for (NodeId bs : trip->bs_ids) {
        auto& sc = table[{cell, bs}];
        sc.sum += (slot.down_from(bs) ? 1.0 : 0.0) +
                  (slot.up_to(bs) ? 1.0 : 0.0);
        ++sc.n;
      }
    }
  }
  return cache_.emplace(day, std::move(table)).first->second;
}

std::vector<NodeId> HistoryPolicy::compute_choices(
    const MeasurementTrace& trip) {
  const auto secs = static_cast<std::size_t>(std::max(1, trip.seconds()));
  const auto counts = trace::beacon_counts_per_second(trip);
  const DayTable* history =
      trip.day > 0 ? &table_for_day(trip.day - 1) : nullptr;

  // Fallback: the BS with the highest beacon count in the previous second.
  auto fallback = [&](std::size_t s) {
    NodeId best{};
    int best_count = 0;
    if (s == 0) return best;
    for (NodeId bs : trip.bs_ids) {
      const auto& row = counts.at(bs);
      const int c = (s - 1) < row.size() ? row[s - 1] : 0;
      if (c > best_count) {
        best_count = c;
        best = bs;
      }
    }
    return best;
  };

  std::vector<NodeId> choices(secs);
  for (std::size_t s = 0; s < secs; ++s) {
    NodeId chosen{};
    if (history != nullptr) {
      // The vehicle's position at this second (first slot of the second).
      const std::size_t slot_index = s * 10;
      if (slot_index < trip.slots.size()) {
        const auto cell = mobility::grid_cell(
            trip.slots[slot_index].vehicle_pos, cell_size_m_);
        double best_score = 0.0;
        for (NodeId bs : trip.bs_ids) {
          const auto it = history->find({cell, bs});
          if (it == history->end() || it->second.n == 0) continue;
          const double score = it->second.sum / it->second.n;
          if (score > best_score) {
            best_score = score;
            chosen = bs;
          }
        }
      }
    }
    choices[s] = chosen.valid() ? chosen : fallback(s);
  }
  return choices;
}

std::vector<NodeId> BestBsPolicy::compute_choices(
    const MeasurementTrace& trip) {
  const auto secs = static_cast<std::size_t>(std::max(1, trip.seconds()));
  std::vector<NodeId> choices(secs);
  for (std::size_t s = 0; s < secs; ++s) {
    // Count two-way probe successes within second s (the future second the
    // association will serve — BestBS has oracle knowledge, §3.1.5).
    NodeId best{};
    int best_score = -1;
    for (NodeId bs : trip.bs_ids) {
      int score = 0;
      for (std::size_t i = s * 10; i < std::min(trip.slots.size(), (s + 1) * 10);
           ++i) {
        const trace::ProbeSlot& slot = trip.slots[i];
        score += (slot.down_from(bs) ? 1 : 0) + (slot.up_to(bs) ? 1 : 0);
      }
      if (score > best_score) {
        best_score = score;
        best = bs;
      }
    }
    choices[s] = best;
  }
  return choices;
}

}  // namespace vifi::handoff
