#pragma once

/// \file policies.h
/// The six handoff policies of §3.1.
///
/// 1. RSSI    — exponential average (alpha 0.5) of received-beacon RSSI;
///              what commodity NICs do.
/// 2. BRR     — exponential average of per-second beacon reception ratio
///              (ETX-style probe metric).
/// 3. Sticky  — hold the current BS until silence for 3 s, then strongest
///              signal (the CarTel strategy).
/// 4. History — best historical (previous-day) per-location performance
///              (MobiSteer-style).
/// 5. BestBS  — oracle: per second, the BS with the best two-way reception
///              in the *next* second; upper-bounds hard handoff.
/// 6. AllBSes — oracle macrodiversity: success if any BS succeeds; this one
///              lives in replay.h since it is not an association policy.

#include <map>
#include <memory>

#include "handoff/policy.h"
#include "trace/observations.h"

namespace vifi::handoff {

class RssiPolicy final : public PerSecondPolicy {
 public:
  /// \p staleness: a BS is a candidate only if heard within this window.
  explicit RssiPolicy(double alpha = 0.5, int staleness_s = 5)
      : alpha_(alpha), staleness_s_(staleness_s) {}
  std::string name() const override { return "RSSI"; }

 protected:
  std::vector<NodeId> compute_choices(const MeasurementTrace& trip) override;

 private:
  double alpha_;
  int staleness_s_;
};

class BrrPolicy final : public PerSecondPolicy {
 public:
  explicit BrrPolicy(double alpha = 0.5) : alpha_(alpha) {}
  std::string name() const override { return "BRR"; }

 protected:
  std::vector<NodeId> compute_choices(const MeasurementTrace& trip) override;

 private:
  double alpha_;
};

class StickyPolicy final : public PerSecondPolicy {
 public:
  explicit StickyPolicy(Time silence = Time::seconds(3.0))
      : silence_(silence) {}
  std::string name() const override { return "Sticky"; }

 protected:
  std::vector<NodeId> compute_choices(const MeasurementTrace& trip) override;

 private:
  Time silence_;
};

/// History needs the whole campaign: day d associates using day d-1 logs.
/// On day 0 (or in cells never visited before) it falls back to the BS
/// with the highest recent beacon count.
class HistoryPolicy final : public PerSecondPolicy {
 public:
  explicit HistoryPolicy(const trace::Campaign& campaign,
                         double cell_size_m = 25.0);
  std::string name() const override { return "History"; }

 protected:
  std::vector<NodeId> compute_choices(const MeasurementTrace& trip) override;

 private:
  struct CellScore {
    double sum = 0.0;
    int n = 0;
  };
  using DayTable = std::map<std::pair<mobility::GridCell, NodeId>, CellScore>;

  const DayTable& table_for_day(int day);

  const trace::Campaign& campaign_;
  double cell_size_m_;
  std::map<int, DayTable> cache_;
};

/// Oracle upper bound for hard handoff: per one-second period, associates
/// to the BS with the best (down + up) reception in that period (§3.1.5).
class BestBsPolicy final : public PerSecondPolicy {
 public:
  std::string name() const override { return "BestBS"; }

 protected:
  std::vector<NodeId> compute_choices(const MeasurementTrace& trip) override;
};

}  // namespace vifi::handoff
