#pragma once

/// \file replay.h
/// Replays a measurement trace under a handoff policy and reports which of
/// the client's 100 ms-workload packets got through (§3.1: "the traces of
/// broadcast packets and the current association determine which packets
/// are successfully received").

#include <vector>

#include "handoff/policy.h"
#include "trace/observations.h"

namespace vifi::handoff {

/// Per-probe-slot outcome of the mirrored workload (one packet each way).
struct SlotOutcome {
  bool up = false;
  bool down = false;
  int delivered() const { return (up ? 1 : 0) + (down ? 1 : 0); }
};

/// Hard handoff: only the associated BS counts.
std::vector<SlotOutcome> replay_hard_handoff(const MeasurementTrace& trip,
                                             HandoffPolicy& policy);

/// AllBSes oracle diversity (§3.1.6): upstream succeeds if any BS heard the
/// packet; downstream succeeds if the vehicle heard any BS that slot.
/// \p max_bs < 0 uses all BSes; otherwise the union is restricted per
/// second to the \p max_bs best BSes of that second (the §3.4.1
/// "two BSes give most of the gain" experiment).
std::vector<SlotOutcome> replay_allbses(const MeasurementTrace& trip,
                                        int max_bs = -1);

/// Total packets delivered across a trip (both directions).
std::int64_t packets_delivered(const std::vector<SlotOutcome>& outcomes);

}  // namespace vifi::handoff
