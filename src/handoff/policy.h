#pragma once

/// \file policy.h
/// Hard-handoff policy interface for trace replay (§3.1). A policy watches a
/// trip unfold and decides, per probe slot, which single BS the client is
/// associated with. Per §3.1 the study deliberately ignores switching and
/// scanning delays to expose the *inherent* limits of hard handoff.
///
/// Information discipline: practical policies (RSSI, BRR, Sticky, History)
/// must only use beacon observations from strictly earlier seconds, plus —
/// for History — the previous day's logs. Oracle policies (BestBS) read
/// future probe outcomes by design.

#include <string>
#include <vector>

#include "trace/observations.h"

namespace vifi::handoff {

using sim::NodeId;
using trace::MeasurementTrace;

class HandoffPolicy {
 public:
  virtual ~HandoffPolicy() = default;

  virtual std::string name() const = 0;

  /// Resets state and prepares for replaying \p trip.
  virtual void begin_trip(const MeasurementTrace& trip) = 0;

  /// The BS associated during probe slot \p slot_index (invalid NodeId if
  /// not associated). Called in increasing slot order.
  virtual NodeId associate(std::size_t slot_index) = 0;
};

/// Base for policies that re-decide once per second (all of §3.1's do).
/// Subclasses produce the per-second association sequence for a trip.
class PerSecondPolicy : public HandoffPolicy {
 public:
  void begin_trip(const MeasurementTrace& trip) final;
  NodeId associate(std::size_t slot_index) final;

 protected:
  /// choices[s] = BS associated during second s.
  virtual std::vector<NodeId> compute_choices(
      const MeasurementTrace& trip) = 0;

 private:
  std::vector<NodeId> choices_;
  const MeasurementTrace* trip_ = nullptr;
};

}  // namespace vifi::handoff
