#include "handoff/policy.h"

#include <algorithm>

#include "util/contracts.h"

namespace vifi::handoff {

void PerSecondPolicy::begin_trip(const MeasurementTrace& trip) {
  trip_ = &trip;
  choices_ = compute_choices(trip);
  VIFI_ENSURES(static_cast<int>(choices_.size()) >= trip.seconds());
}

NodeId PerSecondPolicy::associate(std::size_t slot_index) {
  VIFI_EXPECTS(trip_ != nullptr);
  VIFI_EXPECTS(slot_index < trip_->slots.size());
  const auto sec = static_cast<std::size_t>(
      trip_->slots[slot_index].t.to_micros() / 1'000'000);
  if (choices_.empty()) return NodeId{};
  return choices_[std::min(sec, choices_.size() - 1)];
}

}  // namespace vifi::handoff
