#include "handoff/replay.h"

#include <algorithm>

#include "obs/recorder.h"
#include "util/contracts.h"

namespace vifi::handoff {

std::vector<SlotOutcome> replay_hard_handoff(const MeasurementTrace& trip,
                                             HandoffPolicy& policy) {
  policy.begin_trip(trip);
  obs::TraceRecorder* rec = obs::current_recorder();
  NodeId last_bs{};
  std::vector<SlotOutcome> outcomes(trip.slots.size());
  for (std::size_t i = 0; i < trip.slots.size(); ++i) {
    const NodeId bs = policy.associate(i);
    if (rec && bs != last_bs) {
      rec->record(obs::EventKind::Handoff, trip.slots[i].t, trip.vehicle, bs,
                  i);
      last_bs = bs;
    }
    if (!bs.valid()) continue;
    outcomes[i].up = trip.slots[i].up_to(bs);
    outcomes[i].down = trip.slots[i].down_from(bs);
    if (rec) {
      if (outcomes[i].up)
        rec->record(obs::EventKind::AppDeliver, trip.slots[i].t, bs,
                    trip.vehicle, i, 0.0, 0.0, 0);
      if (outcomes[i].down)
        rec->record(obs::EventKind::AppDeliver, trip.slots[i].t, trip.vehicle,
                    bs, i, 0.0, 0.0, 1);
    }
  }
  return outcomes;
}

std::vector<SlotOutcome> replay_allbses(const MeasurementTrace& trip,
                                        int max_bs) {
  std::vector<SlotOutcome> outcomes(trip.slots.size());
  // Per second, optionally restrict to the k best BSes of that second.
  const auto secs = static_cast<std::size_t>(std::max(1, trip.seconds()));
  std::vector<std::vector<NodeId>> allowed(secs);
  if (max_bs < 0) {
    for (auto& a : allowed) a = trip.bs_ids;
  } else {
    for (std::size_t s = 0; s < secs; ++s) {
      std::vector<std::pair<int, NodeId>> scored;
      for (NodeId bs : trip.bs_ids) {
        int score = 0;
        for (std::size_t i = s * 10;
             i < std::min(trip.slots.size(), (s + 1) * 10); ++i)
          score += (trip.slots[i].down_from(bs) ? 1 : 0) +
                   (trip.slots[i].up_to(bs) ? 1 : 0);
        scored.emplace_back(score, bs);
      }
      std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
        if (a.first != b.first) return a.first > b.first;
        return a.second < b.second;
      });
      for (int k = 0; k < std::min<int>(max_bs, static_cast<int>(scored.size()));
           ++k)
        allowed[s].push_back(scored[static_cast<std::size_t>(k)].second);
    }
  }

  for (std::size_t i = 0; i < trip.slots.size(); ++i) {
    const trace::ProbeSlot& slot = trip.slots[i];
    const auto sec = std::min(
        static_cast<std::size_t>(slot.t.to_micros() / 1'000'000), secs - 1);
    for (NodeId bs : allowed[sec]) {
      outcomes[i].up = outcomes[i].up || slot.up_to(bs);
      outcomes[i].down = outcomes[i].down || slot.down_from(bs);
    }
  }
  return outcomes;
}

std::int64_t packets_delivered(const std::vector<SlotOutcome>& outcomes) {
  std::int64_t n = 0;
  for (const SlotOutcome& o : outcomes) n += o.delivered();
  return n;
}

}  // namespace vifi::handoff
