#include "obs/sink.h"

#include <algorithm>

#include "util/contracts.h"

namespace vifi::obs {

EventRing::EventRing(std::size_t capacity) : capacity_(capacity) {
  VIFI_EXPECTS(capacity > 0);
}

void EventRing::push(const TraceEvent& e) {
  if (events_.size() < capacity_) {
    events_.push_back(e);
    return;
  }
  events_[head_] = e;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceEvent> EventRing::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  out.insert(out.end(), events_.begin() + static_cast<std::ptrdiff_t>(head_),
             events_.end());
  out.insert(out.end(), events_.begin(),
             events_.begin() + static_cast<std::ptrdiff_t>(head_));
  return out;
}

void TraceSink::set_node_label(sim::NodeId node, const std::string& label) {
  (void)node;
  (void)label;
}

void TraceSink::finalize(const std::vector<SpoolLog>& logs) { (void)logs; }

// --- RingSink -------------------------------------------------------------

RingSink::RingSink(std::size_t per_node_capacity)
    : per_node_capacity_(per_node_capacity) {
  VIFI_EXPECTS(per_node_capacity > 0);
}

void RingSink::push(const TraceEvent& e) {
  auto it = rings_.find(e.node);
  if (it == rings_.end())
    it = rings_.emplace(e.node, EventRing(per_node_capacity_)).first;
  it->second.push(e);
}

std::uint64_t RingSink::dropped() const {
  std::uint64_t n = 0;
  for (const auto& [node, ring] : rings_) {
    (void)node;
    n += ring.dropped();
  }
  return n;
}

std::vector<sim::NodeId> RingSink::nodes() const {
  std::vector<sim::NodeId> out;
  out.reserve(rings_.size());
  for (const auto& [node, ring] : rings_) {
    (void)ring;
    out.push_back(node);
  }
  return out;
}

std::vector<TraceEvent> RingSink::events() const {
  std::vector<TraceEvent> out;
  for (const auto& [node, ring] : rings_) {
    (void)node;
    const auto events = ring.snapshot();
    out.insert(out.end(), events.begin(), events.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& x, const TraceEvent& y) {
              return x.seq < y.seq;
            });
  return out;
}

const EventRing& RingSink::ring(sim::NodeId node) const {
  static const EventRing kEmpty{1};
  const auto it = rings_.find(node);
  return it == rings_.end() ? kEmpty : it->second;
}

void RingSink::absorb(TraceSink& other, Time at_offset,
                      std::uint64_t seq_offset) {
  auto* other_ring = dynamic_cast<RingSink*>(&other);
  VIFI_EXPECTS(other_ring != nullptr);
  VIFI_EXPECTS(other_ring->per_node_capacity_ == per_node_capacity_);
  for (const auto& [node, ring] : other_ring->rings_) {
    auto it = rings_.find(node);
    if (it == rings_.end())
      it = rings_.emplace(node, EventRing(per_node_capacity_)).first;
    // Replaying other's *retained* window reproduces the ring a direct
    // recording would hold: the survivors of a ring of capacity C are
    // always a suffix of the pushed stream, and any suffix of the
    // combined stream of length <= C is covered by the retained windows.
    // Only the drop count needs other's own overwrites added back.
    for (const TraceEvent& e : ring.snapshot()) {
      TraceEvent shifted = e;
      shifted.at = e.at + at_offset;
      shifted.seq = e.seq + seq_offset;
      it->second.push(shifted);
    }
    it->second.add_dropped(ring.dropped());
  }
}

// --- StreamSink -----------------------------------------------------------

StreamSink::StreamSink(std::string path, std::size_t block_events)
    : writer_(std::make_unique<SpoolWriter>(std::move(path), block_events)) {}

void StreamSink::push(const TraceEvent& e) { writer_->push(e); }

std::vector<sim::NodeId> StreamSink::nodes() const {
  return writer_->nodes();
}

std::vector<TraceEvent> StreamSink::events() const {
  if (!writer_->finalized()) writer_->finalize({});
  return SpoolReader(writer_->path()).events();
}

void StreamSink::absorb(TraceSink& other, Time at_offset,
                        std::uint64_t seq_offset) {
  auto* other_stream = dynamic_cast<StreamSink*>(&other);
  VIFI_EXPECTS(other_stream != nullptr);
  // Stream absorb is a full replay: unlike rings nothing was overwritten,
  // so the stitched spool holds every event of every trip — and because
  // the push sequence (hence block-flush cadence) matches a sequential
  // recording's, so do the resulting bytes.
  for (const TraceEvent& e : other_stream->events()) {
    TraceEvent shifted = e;
    shifted.at = e.at + at_offset;
    shifted.seq = e.seq + seq_offset;
    writer_->push(shifted);
  }
}

void StreamSink::set_node_label(sim::NodeId node, const std::string& label) {
  writer_->set_node_label(node, label);
}

void StreamSink::finalize(const std::vector<SpoolLog>& logs) {
  writer_->finalize(logs);
}

}  // namespace vifi::obs
