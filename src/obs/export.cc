#include "obs/export.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "obs/span.h"

namespace vifi::obs {

namespace {

/// Track id for nodes that have none (invalid NodeId) and for the log
/// track — well clear of any simulated node id.
constexpr int kNoNodeTid = 1000000;
constexpr int kLogTid = 1000001;

int tid_of(sim::NodeId node) {
  return node.valid() ? node.value() : kNoNodeTid;
}

const char* category(EventKind kind) {
  switch (kind) {
    case EventKind::BeaconTx:
    case EventKind::BeaconRx:
      return "beacon";
    case EventKind::AnchorChange:
    case EventKind::AuxSetChange:
      return "designation";
    case EventKind::RelayEval:
    case EventKind::RelayTx:
      return "relay";
    case EventKind::SalvageRequest:
    case EventKind::SalvageHandoff:
    case EventKind::SalvageDeliver:
      return "salvage";
    case EventKind::FrameEnqueue:
    case EventKind::FrameTx:
    case EventKind::FrameDecode:
    case EventKind::FrameCollide:
    case EventKind::FrameDeliver:
    case EventKind::FrameDrop:
      return "mac";
    case EventKind::AppDeliver:
      return "app";
    case EventKind::Handoff:
      return "handoff";
    case EventKind::CoordTransition:
    case EventKind::CoordPrestage:
    case EventKind::CoordSuppress:
      return "coord";
    case EventKind::Log:
      return "log";
  }
  return "?";
}

std::string render_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// The typed argument object shared by both exporters.
std::string args_json(const TraceEvent& e) {
  std::string out = "{";
  out += "\"peer\":\"" + (e.peer.valid() ? e.peer.to_string() : "-") + "\"";
  out += ",\"id\":" + std::to_string(e.id);
  out += ",\"a\":" + render_double(e.a);
  out += ",\"b\":" + render_double(e.b);
  out += ",\"c\":" + std::to_string(e.c);
  out += "}";
  return out;
}

std::string dropped_warning(std::uint64_t dropped) {
  return "ring dropped " + std::to_string(dropped) +
         " events (oldest overwritten); timeline is truncated — use "
         "--trace-stream for full fidelity";
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void write_chrome_trace(const TraceRecorder& recorder, std::ostream& os) {
  os << "{\"traceEvents\":[\n";
  bool first = true;
  const auto emit = [&os, &first](const std::string& line) {
    if (!first) os << ",\n";
    first = false;
    os << line;
  };

  // One named thread track per node (metadata events).
  for (const sim::NodeId node : recorder.nodes()) {
    const std::string& label = recorder.node_label(node);
    std::string name = node.valid() ? node.to_string() : std::string("(none)");
    if (!label.empty()) name += " " + label;
    emit("{\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(tid_of(node)) +
         ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
         json_escape(name) + "\"}}");
  }
  const std::uint64_t dropped = recorder.dropped();
  if (!recorder.log_records().empty() || dropped > 0)
    emit("{\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(kLogTid) +
         ",\"name\":\"thread_name\",\"args\":{\"name\":\"log\"}}");

  const std::vector<TraceEvent> events = recorder.merged();
  for (const TraceEvent& e : events) {
    std::string line = "{\"name\":\"";
    line += to_string(e.kind);
    line += "\",\"cat\":\"";
    line += category(e.kind);
    line += "\",\"pid\":0,\"tid\":" + std::to_string(tid_of(e.node));
    line += ",\"ts\":" + std::to_string(e.at.to_micros());
    if (e.kind == EventKind::FrameTx) {
      // Frame transmissions are duration slices: `a` carries the airtime.
      line += ",\"ph\":\"X\",\"dur\":" +
              std::to_string(static_cast<std::int64_t>(e.a * 1e6 + 0.5));
    } else {
      line += ",\"ph\":\"i\",\"s\":\"t\"";
    }
    line += ",\"args\":" + args_json(e) + "}";
    emit(line);
  }

  // The derived span layer: anchor tenures, coord-phase occupancy, and
  // contact runs as duration slices on the owning node's track.
  Time horizon;
  for (const TraceEvent& e : events) horizon = std::max(horizon, e.at);
  for (const Span& span : build_spans(events, horizon)) {
    std::string line = "{\"name\":\"" + json_escape(span_label(span));
    line += "\",\"cat\":\"span\",\"ph\":\"X\",\"pid\":0,\"tid\":" +
            std::to_string(tid_of(span.node));
    line += ",\"ts\":" + std::to_string(span.begin.to_micros());
    line += ",\"dur\":" + std::to_string(span.duration().to_micros());
    line += ",\"args\":{\"peer\":\"" +
            (span.peer.valid() ? span.peer.to_string() : std::string("-")) +
            "\"}}";
    emit(line);
  }

  if (dropped > 0)
    emit("{\"name\":\"" + json_escape(dropped_warning(dropped)) +
         "\",\"cat\":\"log\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":" +
         std::to_string(kLogTid) + ",\"ts\":0,\"args\":{\"dropped\":" +
         std::to_string(dropped) + "}}");

  for (const LogRecord& rec : recorder.log_records()) {
    emit("{\"name\":\"" + json_escape(rec.message) +
         "\",\"cat\":\"log\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":" +
         std::to_string(kLogTid) + ",\"ts\":" +
         std::to_string(rec.at.to_micros()) + ",\"args\":{\"level\":" +
         std::to_string(static_cast<int>(rec.level)) + "}}");
  }

  os << "\n]}\n";
}

std::string chrome_trace_json(const TraceRecorder& recorder) {
  std::ostringstream os;
  write_chrome_trace(recorder, os);
  return os.str();
}

void write_jsonl(const TraceRecorder& recorder, std::ostream& os) {
  if (const std::uint64_t dropped = recorder.dropped(); dropped > 0)
    os << "{\"warning\":\"" << json_escape(dropped_warning(dropped))
       << "\",\"dropped\":" << dropped << "}\n";
  for (const TraceEvent& e : recorder.merged()) {
    os << "{\"seq\":" << e.seq << ",\"t_us\":" << e.at.to_micros()
       << ",\"kind\":\"" << to_string(e.kind) << "\",\"node\":\""
       << (e.node.valid() ? e.node.to_string() : std::string("-"))
       << "\",\"peer\":\""
       << (e.peer.valid() ? e.peer.to_string() : std::string("-"))
       << "\",\"id\":" << e.id << ",\"a\":" << render_double(e.a)
       << ",\"b\":" << render_double(e.b) << ",\"c\":" << e.c << "}\n";
  }
  for (const LogRecord& rec : recorder.log_records()) {
    os << "{\"seq\":" << rec.seq << ",\"t_us\":" << rec.at.to_micros()
       << ",\"kind\":\"log\",\"level\":" << static_cast<int>(rec.level)
       << ",\"message\":\"" << json_escape(rec.message) << "\"}\n";
  }
}

std::string events_jsonl(const TraceRecorder& recorder) {
  std::ostringstream os;
  write_jsonl(recorder, os);
  return os.str();
}

}  // namespace vifi::obs
