#pragma once

/// \file recorder.h
/// TripScope's TraceRecorder: typed protocol events (event.h) stamped
/// with a timeline time and a recorder-wide sequence number, handed to a
/// pluggable TraceSink (sink.h) — per-node rings by default, a disk
/// spool (StreamSink) for full-fidelity city-scale timelines — plus a
/// bounded side channel for routed log lines.
///
/// Recording is *pull-free and allocation-free on the steady state* with
/// the default ring sink: each node's events land in a fixed-capacity
/// ring that overwrites its oldest entries on wrap (the newest window is
/// what a timeline wants), and the recorder-wide sequence number makes
/// the merged stream deterministic.
///
/// Enabling/disabling is a thread-local pointer: `current_recorder()`
/// returns the recorder installed by the innermost `TraceScope` on this
/// thread, or nullptr. Call sites are written as
///
///     obs::TraceRecorder* rec = obs::current_recorder();
///     if (rec) rec->record(...);
///
/// so with tracing off the whole observability layer costs one
/// thread-local load and a branch per instrumented site (perf-gated by
/// bench/perf_suite). Runtime workers each install their own recorder, so
/// concurrent points never share one.

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/event.h"
#include "obs/sink.h"
#include "sim/ids.h"
#include "util/logging.h"
#include "util/time.h"

namespace vifi::obs {

/// A routed log line (the VIFI_WARN+ channel, satellite of ISSUE 6).
struct LogRecord {
  Time at;
  std::uint64_t seq = 0;
  LogLevel level = LogLevel::Warn;
  std::string message;
};

class TraceRecorder {
 public:
  /// Ring-backed recorder (the default): \p per_node_capacity bounds
  /// each node's ring (64 B per slot).
  explicit TraceRecorder(std::size_t per_node_capacity = 1 << 14);

  /// Recorder over an explicit sink — `std::make_unique<StreamSink>(path)`
  /// for a full-fidelity disk spool.
  explicit TraceRecorder(std::unique_ptr<TraceSink> sink);

  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Records one event at time base() + \p at (the caller passes its
  /// simulator-local clock; the base stitches successive trips onto one
  /// timeline).
  void record(EventKind kind, Time at, sim::NodeId node,
              sim::NodeId peer = {}, std::uint64_t id = 0, double a = 0.0,
              double b = 0.0, std::int32_t c = 0);

  /// Records a routed log line (bounded; oldest dropped first). The
  /// timestamp is base() + the last recorded event's local time — logging
  /// has no clock of its own.
  void log(LogLevel level, std::string message);

  /// Timeline offset added to every recorded time. The runtime sets this
  /// to the accumulated horizon before each trip of a point, so one
  /// recorder holds the whole point's timeline.
  void set_time_base(Time base) { base_ = base; }
  Time time_base() const { return base_; }
  std::size_t per_node_capacity() const { return per_node_capacity_; }

  /// True when the sink is a StreamSink (events spooled to disk).
  bool streaming() const { return stream_ != nullptr; }
  /// The stream sink's spool path; expects streaming().
  const std::string& spool_path() const;
  /// Seals a streaming recorder's spool (flushes residual blocks, writes
  /// the footer with the routed logs). No-op for ring recorders and on
  /// repeat calls; recording after finalize is a contract violation.
  void finalize() const;

  /// Folds a whole recorder in: \p other's events land at their recorded
  /// time plus \p offset, with sequence numbers continued after this
  /// recorder's. When \p other recorded one trip (base 0) and \p offset is
  /// the accumulated horizon, the result is byte-identical to having
  /// recorded that trip directly into this recorder under
  /// set_time_base(offset) — including ring overwrite behaviour and
  /// per-kind counts (sink kinds must match; ring capacities must match).
  /// The sharded executor uses this to stitch per-worker trip recorders
  /// into one point timeline; a stream \p other's part spool is finalized
  /// and fully replayed (streams never drop).
  void absorb(const TraceRecorder& other, Time offset);

  /// Human-readable track label for a node ("bs", "vehicle", "host").
  void set_node_label(sim::NodeId node, std::string label);
  const std::string& node_label(sim::NodeId node) const;

  // --- queries (exporters, tests, the tripscope CLI) ---------------------
  /// Nodes with at least one event or a label, ascending id.
  std::vector<sim::NodeId> nodes() const;
  /// A node's ring; an empty one for unseen nodes and stream recorders.
  const EventRing& ring(sim::NodeId node) const;
  /// All retained events merged in recording order (seq ascending). For
  /// a streaming recorder this finalizes the spool and reads it back —
  /// it is an export-time call, not a mid-run one.
  std::vector<TraceEvent> merged() const;
  const std::deque<LogRecord>& log_records() const { return logs_; }

  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t dropped() const { return sink_->dropped(); }
  /// Total events recorded of one kind (counted even when a ring has
  /// since overwritten them — reconciliation wants exact counts).
  std::uint64_t count(EventKind kind) const {
    return kind_counts_[static_cast<int>(kind)];
  }

 private:
  std::vector<SpoolLog> spool_logs() const;

  std::size_t per_node_capacity_;
  Time base_;
  Time last_local_;  ///< Last record()'s local time, for log timestamps.
  std::uint64_t next_seq_ = 1;
  std::uint64_t recorded_ = 0;
  std::uint64_t kind_counts_[kEventKindCount] = {};
  std::unique_ptr<TraceSink> sink_;
  RingSink* ring_ = nullptr;      ///< sink_ downcast when ring-backed.
  StreamSink* stream_ = nullptr;  ///< sink_ downcast when stream-backed.
  std::map<sim::NodeId, std::string> labels_;
  std::deque<LogRecord> logs_;
  static constexpr std::size_t kMaxLogRecords = 4096;
};

/// The recorder installed on this thread, or nullptr when tracing is off.
TraceRecorder* current_recorder();

/// RAII installation of a recorder into the thread-local slot. Nests;
/// restores the previous recorder on destruction.
class TraceScope {
 public:
  explicit TraceScope(TraceRecorder& recorder);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceRecorder* prev_;
};

}  // namespace vifi::obs
