#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "util/contracts.h"

namespace vifi::obs {

namespace {

thread_local MetricsRegistry* t_current = nullptr;

/// %.17g matches runtime/result.cc's serialisation: shortest round-trip
/// rendering, so byte-identity across thread counts carries over here.
std::string render_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  VIFI_EXPECTS(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double sample) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), sample);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += sample;
}

void Histogram::merge(const Histogram& other) {
  VIFI_EXPECTS(bounds_ == other.bounds_);
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
}

std::string MetricsRegistry::key(const std::string& name,
                                 const Labels& labels) {
  if (labels.empty()) return name;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string k = name;
  k += '{';
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) k += ',';
    k += sorted[i].first;
    k += '=';
    k += sorted[i].second;
  }
  k += '}';
  return k;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  return counters_[key(name, labels)];
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  return gauges_[key(name, labels)];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      const Labels& labels) {
  const std::string k = key(name, labels);
  auto it = histograms_.find(k);
  if (it == histograms_.end())
    it = histograms_.emplace(k, Histogram(std::move(bounds))).first;
  else
    VIFI_EXPECTS(it->second.bounds() == bounds);
  return it->second;
}

std::map<std::string, double> MetricsRegistry::flatten() const {
  std::map<std::string, double> out;
  for (const auto& [k, c] : counters_) out[k] = c.value;
  for (const auto& [k, g] : gauges_) out[k] = g.value;
  for (const auto& [k, h] : histograms_) {
    out[k + ".count"] = static_cast<double>(h.count());
    out[k + ".sum"] = h.sum();
  }
  return out;
}

double MetricsRegistry::total(const std::string& name) const {
  const auto family_of = [](const std::string& k) {
    const std::size_t brace = k.find('{');
    return brace == std::string::npos ? k : k.substr(0, brace);
  };
  double scalar_sum = 0.0;
  bool scalar_hit = false;
  for (const auto& [k, c] : counters_)
    if (family_of(k) == name) {
      scalar_sum += c.value;
      scalar_hit = true;
    }
  for (const auto& [k, g] : gauges_)
    if (family_of(k) == name) {
      scalar_sum += g.value;
      scalar_hit = true;
    }
  // Histograms have no single total (count vs sum ambiguity — see the
  // header contract): a bare family name is an error, a `.count`/`.sum`
  // suffix sums that statistic across the family's label variants.
  double hist_sum = 0.0;
  bool hist_stat_hit = false;
  bool hist_bare_hit = false;
  for (const auto& [k, h] : histograms_) {
    const std::string family = family_of(k);
    if (family == name) {
      hist_bare_hit = true;
    } else if (name == family + ".count") {
      hist_sum += static_cast<double>(h.count());
      hist_stat_hit = true;
    } else if (name == family + ".sum") {
      hist_sum += h.sum();
      hist_stat_hit = true;
    }
  }
  if (hist_bare_hit) {
    if (scalar_hit)
      throw ContractViolation(
          "MetricsRegistry::total(\"" + name +
          "\"): name matches both a counter/gauge family and a histogram "
          "family; no single sum is right — rename one, or ask for the "
          "histogram's \"" + name + ".count\" / \"" + name + ".sum\"");
    throw ContractViolation(
        "MetricsRegistry::total(\"" + name +
        "\"): name is a histogram family, which has no single total; ask "
        "for \"" + name + ".count\" or \"" + name + ".sum\"");
  }
  if (hist_stat_hit) {
    if (scalar_hit)
      throw ContractViolation(
          "MetricsRegistry::total(\"" + name +
          "\"): name matches both a counter/gauge family and a histogram "
          "statistic; no single sum is right — rename one of them");
    return hist_sum;
  }
  return scalar_sum;
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [k, c] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + k + "\": " + render_double(c.value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [k, g] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + k + "\": " + render_double(g.value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [k, h] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + k + "\": {\"count\": " +
           std::to_string(h.count()) + ", \"sum\": " + render_double(h.sum()) +
           ", \"bounds\": [";
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      if (i > 0) out += ", ";
      out += render_double(h.bounds()[i]);
    }
    out += "], \"buckets\": [";
    for (std::size_t i = 0; i < h.buckets().size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(h.buckets()[i]);
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [k, c] : other.counters_) counters_[k].value += c.value;
  for (const auto& [k, g] : other.gauges_) gauges_[k].value = g.value;
  for (const auto& [k, h] : other.histograms_) {
    auto it = histograms_.find(k);
    if (it == histograms_.end())
      it = histograms_.emplace(k, Histogram(h.bounds())).first;
    it->second.merge(h);
  }
}

MetricsRegistry* current_metrics() { return t_current; }

MetricsScope::MetricsScope(MetricsRegistry& registry) : prev_(t_current) {
  t_current = &registry;
}

MetricsScope::~MetricsScope() { t_current = prev_; }

}  // namespace vifi::obs
