#pragma once

/// \file span.h
/// Span-style intervals derived from the TripScope event stream. Events
/// are instants; several protocol facts are *durations* — how long a
/// vehicle kept one anchor, how long the coordination tier held a client
/// in one phase, how long a (receiver, beaconer) pair stayed in contact.
/// build_spans() folds a seq-ordered event stream into those intervals so
/// exporters can emit Chrome "X" duration slices (Perfetto renders tenure
/// bars instead of instant ticks) and `tripscope query` can summarise
/// tenure percentiles and handoff gaps.
///
/// Derivations (all pure functions of the event stream + horizon):
///   AnchorTenure  one span per (vehicle, anchor) designation stretch,
///                 opened by an AnchorChange to a valid peer, closed by
///                 the next AnchorChange (or the horizon while still
///                 designated). An anchor-lost change closes without
///                 opening.
///   CoordPhase    one span per (client, phase) occupancy stretch from
///                 CoordTransition events (c packs event<<8|from<<4|to).
///                 The leading pre-first-transition stretch is skipped
///                 (its start is not observable from the stream); open
///                 non-Idle phases close at the horizon.
///   Contact       one span per BeaconRx run between a (receiver, tx)
///                 pair; a gap larger than SpanConfig::contact_gap splits
///                 runs. Contacts close at the last beacon heard, not the
///                 horizon; a single beacon yields a zero-length span.

#include <string>
#include <vector>

#include "obs/event.h"
#include "sim/ids.h"
#include "util/time.h"

namespace vifi::obs {

enum class SpanKind : int {
  AnchorTenure,
  CoordPhase,
  Contact,
};

const char* to_string(SpanKind kind);

/// One derived interval on a node's track.
struct Span {
  SpanKind kind = SpanKind::AnchorTenure;
  sim::NodeId node;  ///< Track owner (vehicle / coord client / receiver).
  sim::NodeId peer;  ///< Anchor / anchor-at-open / beacon transmitter.
  Time begin;
  Time end;
  /// Kind-specific detail: the coord phase name for CoordPhase, empty
  /// otherwise.
  std::string detail;

  Time duration() const { return end - begin; }
};

/// Display name for a span: "anchor_tenure", "phase:<name>", "contact".
std::string span_label(const Span& span);

struct SpanConfig {
  /// BeaconRx gap above which a contact run is split in two.
  Time contact_gap = Time::seconds(3.0);
};

/// Derives all spans from \p events (must be seq-ascending, i.e.
/// TraceRecorder::merged() / SpoolReader::events() order) with open
/// intervals closed at \p horizon. Output is canonically sorted by
/// (begin, end, node, peer, kind, detail) — deterministic for a
/// deterministic stream.
std::vector<Span> build_spans(const std::vector<TraceEvent>& events,
                              Time horizon, const SpanConfig& config = {});

}  // namespace vifi::obs
