#pragma once

/// \file event.h
/// Typed protocol trace events — the vocabulary of TripScope. One compact
/// POD per observable protocol action: beacons, anchor/auxiliary changes,
/// the §4.4 relay-probability evaluations with their inputs, salvage
/// hand-offs, the frame lifecycle on the medium, and handoff-policy
/// association changes during §3.1 replays. Events are cheap enough to
/// record on the hot path (no allocation, no strings); anything textual
/// (log lines, node labels) travels on side channels in the recorder.

#include <cstdint>

#include "sim/ids.h"
#include "util/time.h"

namespace vifi::obs {

/// What happened. Grouped by subsystem; the exporter renders the names.
enum class EventKind : std::uint8_t {
  // Beacons and the designation state machine (§4.3).
  BeaconTx,      ///< node emitted a beacon (c: 1 = vehicle beacon).
  BeaconRx,      ///< node decoded peer's beacon.
  AnchorChange,  ///< vehicle node switched anchor to peer (invalid = lost);
                 ///< a = new anchor's beacon reception score, id = switch #.
  AuxSetChange,  ///< vehicle's auxiliary set size changed to c.
  // Coordinated relaying (§4.4) and salvage (§4.5).
  RelayEval,     ///< auxiliary node evaluated relay probability a for
                 ///< packet id toward peer; b = 1 if it chose to relay,
                 ///< c = size of the designated auxiliary set.
  RelayTx,       ///< auxiliary node relayed packet id toward peer
                 ///< (c: 0 = upstream via backplane, 1 = downstream on air).
  SalvageRequest,  ///< new anchor node asked peer (prev anchor) to salvage
                   ///< packets for vehicle c.
  SalvageHandoff,  ///< prev-anchor node handed packet id over to peer.
  SalvageDeliver,  ///< new-anchor node received salvaged packet id.
  // Frame lifecycle on the wireless medium.
  FrameEnqueue,  ///< node queued a frame at its radio (c: FrameType).
  FrameTx,       ///< node started transmitting (a: airtime seconds,
                 ///< b: attempt for data frames, c: FrameType).
  FrameDecode,   ///< node sampled a successful decode of peer's frame.
  FrameCollide,  ///< node lost peer's frame to a collision.
  FrameDeliver,  ///< node's sink received peer's frame (c: FrameType).
  FrameDrop,     ///< node dropped packet id after exhausting attempts.
  // End-to-end application view.
  AppDeliver,  ///< node delivered unique app packet id (c: 1 = downstream).
  // §3.1 trace replay.
  Handoff,  ///< replayed vehicle node associated with peer (invalid = none).
  // CoordTier: the BS-side ConnectivityManager (src/coord/).
  CoordTransition,  ///< client node's machine fired: peer = its anchor,
                    ///< id = per-client transition #, a = prediction
                    ///< confidence, c packs (event<<8 | from<<4 | to).
  CoordPrestage,    ///< predicted BS peer pre-staged for client node
                    ///< (a: prediction confidence).
  CoordSuppress,    ///< auxiliary peer's relay for client node suppressed
                    ///< under a confident prediction (a: confidence).
  // Satellite: VIFI_WARN+ log lines routed through the recorder.
  Log,  ///< c: LogLevel; the message is in the recorder's log channel.
};

/// Total number of EventKind values (for per-kind counters).
inline constexpr int kEventKindCount = static_cast<int>(EventKind::Log) + 1;

const char* to_string(EventKind kind);

/// One recorded protocol event. 64 bytes, trivially copyable; the ring
/// buffers move these around by value.
struct TraceEvent {
  Time at;                ///< Timeline time (recorder base + sim clock).
  std::uint64_t seq = 0;  ///< Recorder-wide order, for deterministic merge.
  std::uint64_t id = 0;   ///< Packet id / beacon count / kind-specific.
  sim::NodeId node;       ///< The node whose track this event belongs to.
  sim::NodeId peer;       ///< Counterpart node (tx of a decoded frame, new
                          ///< anchor, relay destination...), if any.
  EventKind kind = EventKind::BeaconTx;
  std::int32_t c = 0;  ///< Small integer argument (see EventKind docs).
  double a = 0.0;      ///< Kind-specific (probability, airtime seconds...).
  double b = 0.0;      ///< Second kind-specific value.
};

}  // namespace vifi::obs
