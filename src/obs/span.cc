#include "obs/span.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

#include "coord/state.h"

namespace vifi::obs {

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::AnchorTenure:
      return "anchor_tenure";
    case SpanKind::CoordPhase:
      return "coord_phase";
    case SpanKind::Contact:
      return "contact";
  }
  return "?";
}

std::string span_label(const Span& span) {
  if (span.kind == SpanKind::CoordPhase) return "phase:" + span.detail;
  return to_string(span.kind);
}

namespace {

struct OpenTenure {
  sim::NodeId anchor;
  Time begin;
};

struct OpenPhase {
  coord::ClientPhase phase = coord::ClientPhase::Idle;
  sim::NodeId anchor;
  Time begin;
};

struct OpenContact {
  Time begin;
  Time last;
};

coord::ClientPhase to_phase_of(const TraceEvent& e) {
  return static_cast<coord::ClientPhase>(e.c & 0xF);
}

}  // namespace

std::vector<Span> build_spans(const std::vector<TraceEvent>& events,
                              Time horizon, const SpanConfig& config) {
  std::vector<Span> out;
  // Ordered maps for deterministic horizon-close order (the final sort
  // ties on every Span field, so this is belt-and-braces, not required).
  std::map<sim::NodeId, OpenTenure> tenures;
  std::map<sim::NodeId, OpenPhase> phases;
  std::map<std::pair<sim::NodeId, sim::NodeId>, OpenContact> contacts;

  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case EventKind::AnchorChange: {
        const auto it = tenures.find(e.node);
        if (it != tenures.end()) {
          out.push_back({SpanKind::AnchorTenure, e.node, it->second.anchor,
                         it->second.begin, e.at, {}});
          tenures.erase(it);
        }
        if (e.peer.valid()) tenures[e.node] = {e.peer, e.at};
        break;
      }
      case EventKind::CoordTransition: {
        const auto it = phases.find(e.node);
        if (it != phases.end())
          out.push_back({SpanKind::CoordPhase, e.node, it->second.anchor,
                         it->second.begin, e.at,
                         coord::to_string(it->second.phase)});
        // The stream only shows when phases *change*, so the stretch
        // before a client's first transition has no observable start —
        // tracking begins here.
        phases[e.node] = {to_phase_of(e), e.peer, e.at};
        break;
      }
      case EventKind::BeaconRx: {
        const std::pair<sim::NodeId, sim::NodeId> key{e.node, e.peer};
        const auto it = contacts.find(key);
        if (it == contacts.end()) {
          contacts[key] = {e.at, e.at};
        } else if (e.at - it->second.last > config.contact_gap) {
          out.push_back({SpanKind::Contact, e.node, e.peer, it->second.begin,
                         it->second.last, {}});
          it->second = {e.at, e.at};
        } else {
          it->second.last = e.at;
        }
        break;
      }
      default:
        break;
    }
  }

  for (const auto& [node, open] : tenures)
    out.push_back(
        {SpanKind::AnchorTenure, node, open.anchor, open.begin, horizon, {}});
  for (const auto& [node, open] : phases)
    if (open.phase != coord::ClientPhase::Idle)
      out.push_back({SpanKind::CoordPhase, node, open.anchor, open.begin,
                     horizon, coord::to_string(open.phase)});
  for (const auto& [key, open] : contacts)
    out.push_back(
        {SpanKind::Contact, key.first, key.second, open.begin, open.last, {}});

  std::sort(out.begin(), out.end(), [](const Span& x, const Span& y) {
    return std::tie(x.begin, x.end, x.node, x.peer, x.kind, x.detail) <
           std::tie(y.begin, y.end, y.node, y.peer, y.kind, y.detail);
  });
  return out;
}

}  // namespace vifi::obs
