#include "obs/spool.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "util/contracts.h"

namespace vifi::obs {

namespace {

// --- fixed-width field helpers (host endianness; see spool.h) -------------

template <typename T>
void put(std::string& buf, T v) {
  char b[sizeof(T)];
  std::memcpy(b, &v, sizeof(T));
  buf.append(b, sizeof(T));
}

/// Bounds-checked cursor over a byte buffer; throws instead of reading
/// past the end so truncated files fail crisply, not undefined.
class Cursor {
 public:
  Cursor(const char* data, std::size_t size, const std::string& path)
      : data_(data), size_(size), path_(path) {}

  template <typename T>
  T get() {
    T v;
    need(sizeof(T));
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string get_string(std::size_t n) {
    need(n);
    std::string s(data_ + pos_, n);
    pos_ += n;
    return s;
  }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > size_)
      throw std::runtime_error("truncated spool footer in " + path_);
  }

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  const std::string& path_;
};

constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8;
constexpr std::size_t kTrailerBytes = 8 + 8;
constexpr std::size_t kChunkHeaderBytes = 4 + 4;

std::ifstream open_spool(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open spool " + path);
  return in;
}

}  // namespace

void encode_event(const TraceEvent& e, char* out) {
  const std::int64_t at_us = e.at.to_micros();
  const std::int32_t node = e.node.value();
  const std::int32_t peer = e.peer.value();
  const std::uint8_t kind = static_cast<std::uint8_t>(e.kind);
  const std::uint8_t pad[3] = {0, 0, 0};
  char* p = out;
  std::memcpy(p, &at_us, 8), p += 8;
  std::memcpy(p, &e.seq, 8), p += 8;
  std::memcpy(p, &e.id, 8), p += 8;
  std::memcpy(p, &node, 4), p += 4;
  std::memcpy(p, &peer, 4), p += 4;
  std::memcpy(p, &e.c, 4), p += 4;
  std::memcpy(p, &kind, 1), p += 1;
  std::memcpy(p, pad, 3), p += 3;
  // Doubles travel as raw IEEE-754 bits: decode is bit-exact, so exports
  // of a re-loaded spool match the in-memory recorder's byte-for-byte.
  std::memcpy(p, &e.a, 8), p += 8;
  std::memcpy(p, &e.b, 8), p += 8;
  VIFI_ENSURES(static_cast<std::size_t>(p - out) == kSpoolRecordBytes);
}

TraceEvent decode_event(const char* in) {
  TraceEvent e;
  std::int64_t at_us = 0;
  std::int32_t node = 0, peer = 0;
  std::uint8_t kind = 0;
  const char* p = in;
  std::memcpy(&at_us, p, 8), p += 8;
  std::memcpy(&e.seq, p, 8), p += 8;
  std::memcpy(&e.id, p, 8), p += 8;
  std::memcpy(&node, p, 4), p += 4;
  std::memcpy(&peer, p, 4), p += 4;
  std::memcpy(&e.c, p, 4), p += 4;
  std::memcpy(&kind, p, 1), p += 4;  // skip the 3 pad bytes too
  std::memcpy(&e.a, p, 8), p += 8;
  std::memcpy(&e.b, p, 8), p += 8;
  e.at = Time::micros(at_us);
  e.node = sim::NodeId{node};
  e.peer = sim::NodeId{peer};
  e.kind = static_cast<EventKind>(kind);
  return e;
}

// --- SpoolWriter ----------------------------------------------------------

SpoolWriter::SpoolWriter(std::string path, std::size_t block_events)
    : path_(std::move(path)),
      block_events_(block_events),
      out_(path_, std::ios::binary | std::ios::trunc) {
  VIFI_EXPECTS(block_events_ > 0);
  if (!out_) throw std::runtime_error("cannot create spool " + path_);
  std::string header;
  header.append(kSpoolMagic, 8);
  put<std::uint32_t>(header, kSpoolVersion);
  put<std::uint32_t>(header, static_cast<std::uint32_t>(kSpoolRecordBytes));
  put<std::uint64_t>(header, static_cast<std::uint64_t>(block_events_));
  out_.write(header.data(), static_cast<std::streamsize>(header.size()));
}

SpoolWriter::~SpoolWriter() {
  // Best-effort: a writer abandoned mid-run still leaves an indexed spool
  // (errors here cannot propagate out of a destructor).
  if (!finalized_) {
    try {
      finalize({});
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
  }
}

void SpoolWriter::push(const TraceEvent& e) {
  VIFI_EXPECTS(!finalized_);
  ++pushed_;
  ++kind_counts_[static_cast<int>(e.kind)];
  max_at_us_ = std::max(max_at_us_, e.at.to_micros());
  auto it = nodes_.find(e.node);
  if (it == nodes_.end()) {
    it = nodes_.emplace(e.node, NodeState{}).first;
    it->second.block.reserve(block_events_);
  }
  NodeState& state = it->second;
  ++state.events;
  state.block.push_back(e);
  if (state.block.size() >= block_events_) flush_block(e.node, state);
}

void SpoolWriter::set_node_label(sim::NodeId node, const std::string& label) {
  nodes_[node].label = label;
}

std::vector<sim::NodeId> SpoolWriter::nodes() const {
  std::vector<sim::NodeId> out;
  out.reserve(nodes_.size());
  for (const auto& [node, state] : nodes_) {
    (void)state;
    out.push_back(node);
  }
  return out;
}

void SpoolWriter::flush_block(sim::NodeId node, NodeState& state) {
  std::string chunk;
  chunk.reserve(kChunkHeaderBytes + state.block.size() * kSpoolRecordBytes);
  put<std::int32_t>(chunk, node.value());
  put<std::uint32_t>(chunk, static_cast<std::uint32_t>(state.block.size()));
  char rec[kSpoolRecordBytes];
  for (const TraceEvent& e : state.block) {
    encode_event(e, rec);
    chunk.append(rec, kSpoolRecordBytes);
  }
  state.chunks.push_back(
      {static_cast<std::uint64_t>(out_.tellp()),
       static_cast<std::uint32_t>(state.block.size())});
  out_.write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
  state.block.clear();
}

void SpoolWriter::finalize(const std::vector<SpoolLog>& logs) {
  if (finalized_) return;
  finalized_ = true;
  for (auto& [node, state] : nodes_)
    if (!state.block.empty()) flush_block(node, state);
  kind_counts_[static_cast<int>(EventKind::Log)] =
      static_cast<std::uint64_t>(logs.size());

  const std::uint64_t footer_offset = static_cast<std::uint64_t>(out_.tellp());
  std::string footer;
  put<std::uint64_t>(footer, pushed_);
  put<std::int64_t>(footer, max_at_us_);
  put<std::uint32_t>(footer, static_cast<std::uint32_t>(kEventKindCount));
  for (int k = 0; k < kEventKindCount; ++k)
    put<std::uint64_t>(footer, kind_counts_[k]);
  put<std::uint32_t>(footer, static_cast<std::uint32_t>(nodes_.size()));
  for (const auto& [node, state] : nodes_) {
    put<std::int32_t>(footer, node.value());
    put<std::uint64_t>(footer, state.events);
    put<std::uint32_t>(footer, static_cast<std::uint32_t>(state.chunks.size()));
    for (const SpoolChunkRef& c : state.chunks) {
      put<std::uint64_t>(footer, c.offset);
      put<std::uint32_t>(footer, c.count);
    }
    put<std::uint32_t>(footer, static_cast<std::uint32_t>(state.label.size()));
    footer += state.label;
  }
  put<std::uint32_t>(footer, static_cast<std::uint32_t>(logs.size()));
  for (const SpoolLog& log : logs) {
    put<std::int64_t>(footer, log.at_us);
    put<std::uint64_t>(footer, log.seq);
    put<std::int32_t>(footer, log.level);
    put<std::uint32_t>(footer, static_cast<std::uint32_t>(log.message.size()));
    footer += log.message;
  }
  put<std::uint64_t>(footer, footer_offset);
  footer.append(kSpoolEndMagic, 8);
  out_.write(footer.data(), static_cast<std::streamsize>(footer.size()));
  out_.flush();
  if (!out_) throw std::runtime_error("spool write failed: " + path_);
  out_.close();
}

// --- SpoolReader ----------------------------------------------------------

SpoolReader::SpoolReader(std::string path) : path_(std::move(path)) {
  std::ifstream in = open_spool(path_);
  in.seekg(0, std::ios::end);
  const std::int64_t size = static_cast<std::int64_t>(in.tellg());
  if (size < static_cast<std::int64_t>(kHeaderBytes + kTrailerBytes))
    throw std::runtime_error("not a vifi spool (too small): " + path_);

  char header[kHeaderBytes];
  in.seekg(0);
  in.read(header, kHeaderBytes);
  if (!in || std::memcmp(header, kSpoolMagic, 8) != 0)
    throw std::runtime_error("not a vifi spool (bad magic): " + path_);
  std::uint32_t version = 0, record_bytes = 0;
  std::memcpy(&version, header + 8, 4);
  std::memcpy(&record_bytes, header + 12, 4);
  std::memcpy(&block_events_, header + 16, 8);
  if (version != kSpoolVersion)
    throw std::runtime_error("spool version " + std::to_string(version) +
                             " unsupported (expected " +
                             std::to_string(kSpoolVersion) + "): " + path_);
  if (record_bytes != kSpoolRecordBytes)
    throw std::runtime_error("spool record size mismatch in " + path_);

  char trailer[kTrailerBytes];
  in.seekg(size - static_cast<std::int64_t>(kTrailerBytes));
  in.read(trailer, kTrailerBytes);
  if (!in || std::memcmp(trailer + 8, kSpoolEndMagic, 8) != 0)
    throw std::runtime_error(
        "spool has no trailer (unfinalized or truncated): " + path_);
  std::uint64_t footer_offset = 0;
  std::memcpy(&footer_offset, trailer, 8);
  const std::uint64_t footer_end =
      static_cast<std::uint64_t>(size) - kTrailerBytes;
  if (footer_offset < kHeaderBytes || footer_offset > footer_end)
    throw std::runtime_error("spool footer offset out of range in " + path_);

  std::string buf(footer_end - footer_offset, '\0');
  in.seekg(static_cast<std::int64_t>(footer_offset));
  in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
  if (!in) throw std::runtime_error("truncated spool footer in " + path_);

  Cursor cur(buf.data(), buf.size(), path_);
  recorded_ = cur.get<std::uint64_t>();
  max_at_us_ = cur.get<std::int64_t>();
  const std::uint32_t kinds = cur.get<std::uint32_t>();
  if (kinds != static_cast<std::uint32_t>(kEventKindCount))
    throw std::runtime_error("spool kind-count mismatch in " + path_);
  for (int k = 0; k < kEventKindCount; ++k)
    kind_counts_[k] = cur.get<std::uint64_t>();
  const std::uint32_t node_count = cur.get<std::uint32_t>();
  nodes_.reserve(node_count);
  for (std::uint32_t i = 0; i < node_count; ++i) {
    SpoolNodeIndex idx;
    idx.node = sim::NodeId{cur.get<std::int32_t>()};
    idx.events = cur.get<std::uint64_t>();
    const std::uint32_t chunk_count = cur.get<std::uint32_t>();
    idx.chunks.reserve(chunk_count);
    for (std::uint32_t c = 0; c < chunk_count; ++c) {
      SpoolChunkRef ref;
      ref.offset = cur.get<std::uint64_t>();
      ref.count = cur.get<std::uint32_t>();
      idx.chunks.push_back(ref);
    }
    idx.label = cur.get_string(cur.get<std::uint32_t>());
    nodes_.push_back(std::move(idx));
  }
  const std::uint32_t log_count = cur.get<std::uint32_t>();
  logs_.reserve(log_count);
  for (std::uint32_t i = 0; i < log_count; ++i) {
    SpoolLog log;
    log.at_us = cur.get<std::int64_t>();
    log.seq = cur.get<std::uint64_t>();
    log.level = cur.get<std::int32_t>();
    log.message = cur.get_string(cur.get<std::uint32_t>());
    logs_.push_back(std::move(log));
  }
}

const SpoolNodeIndex* SpoolReader::find_node(sim::NodeId node) const {
  for (const SpoolNodeIndex& idx : nodes_)
    if (idx.node == node) return &idx;
  return nullptr;
}

namespace {

/// Reads one chunk at the current stream position, forwarding records to
/// \p fn. Returns the chunk's node id.
sim::NodeId read_chunk(std::ifstream& in, const std::string& path,
                       const std::function<void(const TraceEvent&)>& fn) {
  char header[kChunkHeaderBytes];
  in.read(header, kChunkHeaderBytes);
  std::int32_t node = 0;
  std::uint32_t count = 0;
  std::memcpy(&node, header, 4);
  std::memcpy(&count, header + 4, 4);
  if (!in) throw std::runtime_error("truncated spool chunk in " + path);
  char rec[kSpoolRecordBytes];
  for (std::uint32_t i = 0; i < count; ++i) {
    in.read(rec, kSpoolRecordBytes);
    if (!in) throw std::runtime_error("truncated spool chunk in " + path);
    fn(decode_event(rec));
  }
  return sim::NodeId{node};
}

}  // namespace

void SpoolReader::scan(const std::function<void(const TraceEvent&)>& fn) const {
  // Every chunk of every node, walked in file order: chunk offsets from
  // the index, merged and sorted, stream the data region exactly once.
  std::vector<SpoolChunkRef> all;
  for (const SpoolNodeIndex& idx : nodes_)
    all.insert(all.end(), idx.chunks.begin(), idx.chunks.end());
  std::sort(all.begin(), all.end(),
            [](const SpoolChunkRef& x, const SpoolChunkRef& y) {
              return x.offset < y.offset;
            });
  std::ifstream in = open_spool(path_);
  for (const SpoolChunkRef& ref : all) {
    in.seekg(static_cast<std::int64_t>(ref.offset));
    read_chunk(in, path_, fn);
  }
}

void SpoolReader::scan_node(
    sim::NodeId node, const std::function<void(const TraceEvent&)>& fn) const {
  const SpoolNodeIndex* idx = find_node(node);
  if (idx == nullptr) return;
  std::ifstream in = open_spool(path_);
  for (const SpoolChunkRef& ref : idx->chunks) {
    in.seekg(static_cast<std::int64_t>(ref.offset));
    const sim::NodeId got = read_chunk(in, path_, fn);
    if (got != node)
      throw std::runtime_error("spool index points at a foreign chunk in " +
                               path_);
  }
}

std::vector<TraceEvent> SpoolReader::events() const {
  std::vector<TraceEvent> out;
  out.reserve(recorded_);
  scan([&out](const TraceEvent& e) { out.push_back(e); });
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& x, const TraceEvent& y) {
              return x.seq < y.seq;
            });
  return out;
}

}  // namespace vifi::obs
