#pragma once

/// \file export.h
/// Timeline exporters for TripScope recordings.
///
/// Two formats:
///  * Chrome trace-event JSON (`{"traceEvents": [...]}`), loadable in
///    Perfetto / chrome://tracing: one track (tid) per simulated node,
///    frame transmissions as duration ("X") slices, everything else as
///    instant ("i") events with the typed arguments in `args` — plus the
///    derived span layer (span.h) as "X" slices under cat "span", so
///    anchor tenures, coord-phase occupancy, and contacts render as bars.
///  * JSONL: one event object per line in deterministic recording order —
///    the grep/jq-friendly stream, byte-identical across runner thread
///    counts for the same point.
///
/// Both renderings are pure functions of the recorder's contents. When a
/// ring-backed recorder has overwritten events (`dropped() > 0`) both
/// formats carry a one-line truncation warning — silent truncation made
/// count reconciliation fail mysteriously (ISSUE 10 satellite).

#include <iosfwd>
#include <string>
#include <string_view>

#include "obs/recorder.h"

namespace vifi::obs {

/// Escapes a string for embedding inside a JSON string literal
/// (quotes, backslashes, control characters as \uXXXX).
std::string json_escape(std::string_view s);

/// Chrome trace-event JSON. `pid` 0 carries the whole deployment; each
/// node is a named thread track; routed log lines ride a "log" track.
void write_chrome_trace(const TraceRecorder& recorder, std::ostream& os);
std::string chrome_trace_json(const TraceRecorder& recorder);

/// One JSON object per line: events in seq order, then log records.
void write_jsonl(const TraceRecorder& recorder, std::ostream& os);
std::string events_jsonl(const TraceRecorder& recorder);

}  // namespace vifi::obs
