#pragma once

/// \file metrics.h
/// TripScope's unified MetricsRegistry: counters, gauges, and fixed-bucket
/// histograms, labeled by node/role/direction/whatever the subsystem needs.
///
/// Naming convention (documented in README "Observability"):
///   <subsystem>.<metric>{label=value,label2=value2}
/// with labels sorted by key, e.g. `mac.frames_tx{node=n3,role=vehicle}`.
/// Subsystems either register live instruments once (cache the returned
/// reference; registration is a map lookup, updates are a bare add) or
/// publish their legacy snapshot structs through the thin shims
/// (`mac::Medium::publish`, `core::VifiStats::publish`), which keep the
/// hot-path counters exactly where they were.
///
/// Like the TraceRecorder, a registry is installed per thread with
/// `MetricsScope`; `current_metrics()` is nullptr when observability is
/// off, so instrumented constructors pay one thread-local load.

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace vifi::obs {

/// Label set. Keys are sorted into the canonical key string on lookup.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter.
struct Counter {
  double value = 0.0;
  void add(double delta) { value += delta; }
  void inc() { value += 1.0; }
};

/// Point-in-time value; publishing overwrites.
struct Gauge {
  double value = 0.0;
  void set(double v) { value = v; }
};

/// Fixed-bucket histogram: bucket i counts samples <= bounds[i]; one
/// overflow bucket counts the rest. Bounds are fixed at registration so
/// merged output is deterministic and exporters never re-bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double sample);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

  /// Folds another histogram in (bounds must match exactly).
  void merge(const Histogram& other);

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// The registry. Instrument references remain valid for the registry's
/// lifetime (node-based map storage).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Canonical key: name{k=v,...} with labels sorted by key.
  static std::string key(const std::string& name, const Labels& labels);

  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  /// Registering the same histogram twice must agree on bounds.
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const Labels& labels = {});

  /// Every scalar the registry knows, in key order: counters and gauges
  /// verbatim, histograms flattened to `<key>.count` and `<key>.sum`.
  /// This is what the executor draws result columns from.
  std::map<std::string, double> flatten() const;

  /// Sum across label variants of one metric family. The name part of a
  /// key is everything before '{'; `total("mac.frames_tx")` sums that
  /// counter over all nodes.
  ///
  /// The label-summing contract, precisely:
  ///  * A name matching counters and/or gauges sums their values.
  ///  * Histograms are *not* silently folded in — a histogram has no
  ///    single total (count vs sum ambiguity). Ask for the statistic:
  ///    `total("lat.ms.count")` / `total("lat.ms.sum")` sum that
  ///    statistic across the family's label variants.
  ///  * A bare name matching only histograms throws ContractViolation
  ///    (ask for .count or .sum); a name matching both a scalar family
  ///    and a histogram family (mixed registration) throws too, since no
  ///    one sum is right.
  ///  * A name matching nothing returns 0.0 (absent metrics read as
  ///    zero, like an untouched counter).
  double total(const std::string& name) const;

  /// Deterministic JSON document ({"counters":{...},"gauges":{...},
  /// "histograms":{...}}), for the per-point metrics export.
  std::string to_json() const;

  /// Folds another registry in, key by key: counters add, gauges take
  /// \p other's value (publish-overwrites semantics), histograms merge
  /// bucket-wise (bounds must agree); missing instruments are created.
  /// The sharded executor folds per-trip registries in trip order, and
  /// the sequential path uses the *same* fold so floating-point sums are
  /// byte-identical across both.
  void merge(const MetricsRegistry& other);

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// The registry installed on this thread, or nullptr.
MetricsRegistry* current_metrics();

/// RAII thread-local installation, nesting like TraceScope.
class MetricsScope {
 public:
  explicit MetricsScope(MetricsRegistry& registry);
  ~MetricsScope();
  MetricsScope(const MetricsScope&) = delete;
  MetricsScope& operator=(const MetricsScope&) = delete;

 private:
  MetricsRegistry* prev_;
};

}  // namespace vifi::obs
