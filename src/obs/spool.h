#pragma once

/// \file spool.h
/// TripScope's disk spool: the on-disk format behind obs::StreamSink and
/// the `tripscope query` engine. A spool holds one recorder's
/// full-fidelity event stream — rings keep the newest window, spools keep
/// everything, so city-scale timelines survive past 16k events per node.
///
/// Layout (fixed-width host-endian fields; spools are per-run artifacts
/// compared byte-wise on one host, not an interchange format):
///
///   header   magic "VIFISPL1", u32 version, u32 record_bytes,
///            u64 block_events
///   chunks   repeated { i32 node, u32 count, count x 56-byte records },
///            appended whenever a node's in-memory block fills (and once
///            more per non-empty block at finalize) — the flush cadence is
///            a pure function of the push sequence, so spool bytes are
///            deterministic for any worker count
///   footer   stream totals, exact per-kind counts, per-node chunk index
///            with labels, and the recorder's routed log lines
///   trailer  u64 footer_offset, magic "VIFIEND1"
///
/// Records store doubles as raw IEEE-754 bits, so spool -> load -> export
/// reproduces an in-memory recorder's exports byte-for-byte. The trailer
/// lets SpoolReader seek the footer from EOF and then seek straight to any
/// node's chunks without reading the rest of the file.

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obs/event.h"
#include "sim/ids.h"
#include "util/time.h"

namespace vifi::obs {

inline constexpr char kSpoolMagic[9] = "VIFISPL1";
inline constexpr char kSpoolEndMagic[9] = "VIFIEND1";
inline constexpr std::uint32_t kSpoolVersion = 1;
/// Encoded size of one TraceEvent record.
inline constexpr std::size_t kSpoolRecordBytes = 56;
/// Events buffered per node before a chunk is appended to the file.
inline constexpr std::size_t kSpoolBlockEvents = 512;

/// Encodes \p e into exactly kSpoolRecordBytes at \p out.
void encode_event(const TraceEvent& e, char* out);
/// Decodes kSpoolRecordBytes at \p in (the encode_event inverse).
TraceEvent decode_event(const char* in);

/// One chunk's position in the file: \p offset points at the chunk header
/// (i32 node, u32 count), \p count is its record count.
struct SpoolChunkRef {
  std::uint64_t offset = 0;
  std::uint32_t count = 0;
};

/// Footer index entry for one node.
struct SpoolNodeIndex {
  sim::NodeId node;
  std::uint64_t events = 0;  ///< Total records across this node's chunks.
  std::string label;         ///< Recorder track label ("bs", "vehicle"...).
  std::vector<SpoolChunkRef> chunks;
};

/// A routed log line carried in the footer (the recorder's bounded
/// VIFI_WARN+ channel; logs are not chunk records).
struct SpoolLog {
  std::int64_t at_us = 0;
  std::uint64_t seq = 0;
  std::int32_t level = 0;
  std::string message;
};

/// Writes one spool file. Pushes buffer into per-node blocks and flush to
/// disk only when a block fills; finalize() flushes the remainder and
/// writes the footer + trailer. Destruction finalizes best-effort so a
/// spool is never left without its index.
class SpoolWriter {
 public:
  explicit SpoolWriter(std::string path,
                       std::size_t block_events = kSpoolBlockEvents);
  ~SpoolWriter();
  SpoolWriter(const SpoolWriter&) = delete;
  SpoolWriter& operator=(const SpoolWriter&) = delete;

  /// Buffers one event on its node's block (amortised: one chunk write per
  /// block_events pushes). Must not be called after finalize().
  void push(const TraceEvent& e);

  /// Track label recorded into the footer's node index.
  void set_node_label(sim::NodeId node, const std::string& label);

  /// Flushes every non-empty block (ascending node order) and writes the
  /// footer + trailer. Idempotent; the \p logs of the first call win. The
  /// footer's Log kind count is logs.size() — log lines travel in the
  /// footer, not as chunk records.
  void finalize(const std::vector<SpoolLog>& logs);
  bool finalized() const { return finalized_; }

  const std::string& path() const { return path_; }
  std::uint64_t pushed() const { return pushed_; }
  std::uint64_t kind_count(EventKind kind) const {
    return kind_counts_[static_cast<int>(kind)];
  }
  /// Nodes with at least one pushed event or a label, ascending id.
  std::vector<sim::NodeId> nodes() const;

 private:
  struct NodeState {
    std::uint64_t events = 0;
    std::string label;
    std::vector<TraceEvent> block;
    std::vector<SpoolChunkRef> chunks;
  };

  void flush_block(sim::NodeId node, NodeState& state);

  std::string path_;
  std::size_t block_events_;
  bool finalized_ = false;
  std::uint64_t pushed_ = 0;
  std::int64_t max_at_us_ = 0;
  std::uint64_t kind_counts_[kEventKindCount] = {};
  /// Ordered: finalize's residual-block flush and the footer index walk
  /// nodes ascending, part of the byte-determinism contract.
  std::map<sim::NodeId, NodeState> nodes_;
  std::ofstream out_;
};

/// Reads one spool file. The constructor parses only the trailer + footer;
/// scans stream chunk-by-chunk (never materialising the whole file) and
/// scan_node() seeks straight to one node's chunks via the footer index.
class SpoolReader {
 public:
  /// Opens and validates \p path; throws std::runtime_error with a crisp
  /// message on missing/truncated/foreign files.
  explicit SpoolReader(std::string path);

  const std::string& path() const { return path_; }
  std::uint64_t recorded() const { return recorded_; }
  std::int64_t max_at_us() const { return max_at_us_; }
  std::uint64_t block_events() const { return block_events_; }
  /// Exact per-kind counts from the footer — the recorder's counters at
  /// finalize time, which `tripscope query` reconciles against a chunk
  /// scan.
  std::uint64_t kind_count(EventKind kind) const {
    return kind_counts_[static_cast<int>(kind)];
  }
  const std::vector<SpoolNodeIndex>& nodes() const { return nodes_; }
  const SpoolNodeIndex* find_node(sim::NodeId node) const;
  const std::vector<SpoolLog>& logs() const { return logs_; }

  /// Streams every record in file (chunk-major) order. Within a chunk
  /// records are seq-ascending; across chunks they are not globally
  /// sorted — callers needing the timeline order sort by seq (events()).
  void scan(const std::function<void(const TraceEvent&)>& fn) const;
  /// Streams only \p node's records, seeking each chunk via the footer
  /// index; a node absent from the index is a no-op.
  void scan_node(sim::NodeId node,
                 const std::function<void(const TraceEvent&)>& fn) const;
  /// Full materialisation in seq (recording) order — what exporters and
  /// TraceRecorder::absorb consume.
  std::vector<TraceEvent> events() const;

 private:
  std::string path_;
  std::uint64_t recorded_ = 0;
  std::int64_t max_at_us_ = 0;
  std::uint64_t block_events_ = 0;
  std::uint64_t kind_counts_[kEventKindCount] = {};
  std::vector<SpoolNodeIndex> nodes_;
  std::vector<SpoolLog> logs_;
};

}  // namespace vifi::obs
