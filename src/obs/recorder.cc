#include "obs/recorder.h"

#include <algorithm>

#include "util/contracts.h"

namespace vifi::obs {

namespace {
thread_local TraceRecorder* t_current = nullptr;
}  // namespace

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::BeaconTx:
      return "beacon_tx";
    case EventKind::BeaconRx:
      return "beacon_rx";
    case EventKind::AnchorChange:
      return "anchor_change";
    case EventKind::AuxSetChange:
      return "aux_set_change";
    case EventKind::RelayEval:
      return "relay_eval";
    case EventKind::RelayTx:
      return "relay_tx";
    case EventKind::SalvageRequest:
      return "salvage_request";
    case EventKind::SalvageHandoff:
      return "salvage_handoff";
    case EventKind::SalvageDeliver:
      return "salvage_deliver";
    case EventKind::FrameEnqueue:
      return "frame_enqueue";
    case EventKind::FrameTx:
      return "frame_tx";
    case EventKind::FrameDecode:
      return "frame_decode";
    case EventKind::FrameCollide:
      return "frame_collide";
    case EventKind::FrameDeliver:
      return "frame_deliver";
    case EventKind::FrameDrop:
      return "frame_drop";
    case EventKind::AppDeliver:
      return "app_deliver";
    case EventKind::Handoff:
      return "handoff";
    case EventKind::CoordTransition:
      return "coord_transition";
    case EventKind::CoordPrestage:
      return "coord_prestage";
    case EventKind::CoordSuppress:
      return "coord_suppress";
    case EventKind::Log:
      return "log";
  }
  return "?";
}

EventRing::EventRing(std::size_t capacity) : capacity_(capacity) {
  VIFI_EXPECTS(capacity > 0);
}

void EventRing::push(const TraceEvent& e) {
  if (events_.size() < capacity_) {
    events_.push_back(e);
    return;
  }
  events_[head_] = e;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceEvent> EventRing::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  out.insert(out.end(), events_.begin() + static_cast<std::ptrdiff_t>(head_),
             events_.end());
  out.insert(out.end(), events_.begin(),
             events_.begin() + static_cast<std::ptrdiff_t>(head_));
  return out;
}

TraceRecorder::TraceRecorder(std::size_t per_node_capacity)
    : per_node_capacity_(per_node_capacity) {
  VIFI_EXPECTS(per_node_capacity > 0);
}

void TraceRecorder::record(EventKind kind, Time at, sim::NodeId node,
                           sim::NodeId peer, std::uint64_t id, double a,
                           double b, std::int32_t c) {
  TraceEvent e;
  e.at = base_ + at;
  e.seq = next_seq_++;
  e.id = id;
  e.node = node;
  e.peer = peer;
  e.kind = kind;
  e.c = c;
  e.a = a;
  e.b = b;
  last_local_ = at;
  ++recorded_;
  ++kind_counts_[static_cast<int>(kind)];
  auto it = rings_.find(node);
  if (it == rings_.end())
    it = rings_.emplace(node, EventRing(per_node_capacity_)).first;
  it->second.push(e);
}

void TraceRecorder::log(LogLevel level, std::string message) {
  LogRecord rec;
  rec.at = base_ + last_local_;
  rec.seq = next_seq_++;
  rec.level = level;
  rec.message = std::move(message);
  ++kind_counts_[static_cast<int>(EventKind::Log)];
  logs_.push_back(std::move(rec));
  if (logs_.size() > kMaxLogRecords) logs_.pop_front();
}

void TraceRecorder::set_node_label(sim::NodeId node, std::string label) {
  labels_[node] = std::move(label);
}

const std::string& TraceRecorder::node_label(sim::NodeId node) const {
  static const std::string kEmpty;
  const auto it = labels_.find(node);
  return it == labels_.end() ? kEmpty : it->second;
}

std::vector<sim::NodeId> TraceRecorder::nodes() const {
  std::vector<sim::NodeId> out;
  for (const auto& [node, ring] : rings_) {
    (void)ring;
    out.push_back(node);
  }
  for (const auto& [node, label] : labels_) {
    (void)label;
    if (!rings_.contains(node)) out.push_back(node);
  }
  std::sort(out.begin(), out.end());
  return out;
}

const EventRing& TraceRecorder::ring(sim::NodeId node) const {
  static const EventRing kEmpty{1};
  const auto it = rings_.find(node);
  return it == rings_.end() ? kEmpty : it->second;
}

std::vector<TraceEvent> TraceRecorder::merged() const {
  std::vector<TraceEvent> out;
  for (const auto& [node, ring] : rings_) {
    (void)node;
    const auto events = ring.snapshot();
    out.insert(out.end(), events.begin(), events.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& x, const TraceEvent& y) {
              return x.seq < y.seq;
            });
  return out;
}

void TraceRecorder::absorb(const TraceRecorder& other, Time offset) {
  VIFI_EXPECTS(other.per_node_capacity_ == per_node_capacity_);
  // Sequence numbers continue after everything (events *and* logs) this
  // recorder has issued, exactly as if other's stream had been recorded
  // here next.
  const std::uint64_t seq_offset = next_seq_ - 1;
  for (const auto& [node, ring] : other.rings_) {
    auto it = rings_.find(node);
    if (it == rings_.end())
      it = rings_.emplace(node, EventRing(per_node_capacity_)).first;
    // Replaying other's *retained* window reproduces the ring a direct
    // recording would hold: the survivors of a ring of capacity C are
    // always a suffix of the pushed stream, and any suffix of the
    // combined stream of length <= C is covered by the retained windows.
    // Only the drop count needs other's own overwrites added back.
    for (const TraceEvent& e : ring.snapshot()) {
      TraceEvent shifted = e;
      shifted.at = e.at + offset;
      shifted.seq = e.seq + seq_offset;
      it->second.push(shifted);
    }
    it->second.add_dropped(ring.dropped());
  }
  for (const LogRecord& log : other.logs_) {
    LogRecord shifted = log;
    shifted.at = log.at + offset;
    shifted.seq = log.seq + seq_offset;
    logs_.push_back(std::move(shifted));
    if (logs_.size() > kMaxLogRecords) logs_.pop_front();
  }
  for (const auto& [node, label] : other.labels_) labels_[node] = label;
  for (int k = 0; k < kEventKindCount; ++k)
    kind_counts_[k] += other.kind_counts_[k];
  recorded_ += other.recorded_;
  next_seq_ += other.next_seq_ - 1;
  // A log stamped after the absorb lands where a direct recording would
  // have put it: offset + other's last local time, relative to our base.
  last_local_ = offset + other.base_ + other.last_local_ - base_;
}

std::uint64_t TraceRecorder::dropped() const {
  std::uint64_t n = 0;
  for (const auto& [node, ring] : rings_) {
    (void)node;
    n += ring.dropped();
  }
  return n;
}

TraceRecorder* current_recorder() { return t_current; }

TraceScope::TraceScope(TraceRecorder& recorder) : prev_(t_current) {
  t_current = &recorder;
}

TraceScope::~TraceScope() { t_current = prev_; }

}  // namespace vifi::obs
