#include "obs/recorder.h"

#include <algorithm>

#include "util/contracts.h"

namespace vifi::obs {

namespace {
thread_local TraceRecorder* t_current = nullptr;
}  // namespace

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::BeaconTx:
      return "beacon_tx";
    case EventKind::BeaconRx:
      return "beacon_rx";
    case EventKind::AnchorChange:
      return "anchor_change";
    case EventKind::AuxSetChange:
      return "aux_set_change";
    case EventKind::RelayEval:
      return "relay_eval";
    case EventKind::RelayTx:
      return "relay_tx";
    case EventKind::SalvageRequest:
      return "salvage_request";
    case EventKind::SalvageHandoff:
      return "salvage_handoff";
    case EventKind::SalvageDeliver:
      return "salvage_deliver";
    case EventKind::FrameEnqueue:
      return "frame_enqueue";
    case EventKind::FrameTx:
      return "frame_tx";
    case EventKind::FrameDecode:
      return "frame_decode";
    case EventKind::FrameCollide:
      return "frame_collide";
    case EventKind::FrameDeliver:
      return "frame_deliver";
    case EventKind::FrameDrop:
      return "frame_drop";
    case EventKind::AppDeliver:
      return "app_deliver";
    case EventKind::Handoff:
      return "handoff";
    case EventKind::CoordTransition:
      return "coord_transition";
    case EventKind::CoordPrestage:
      return "coord_prestage";
    case EventKind::CoordSuppress:
      return "coord_suppress";
    case EventKind::Log:
      return "log";
  }
  return "?";
}

TraceRecorder::TraceRecorder(std::size_t per_node_capacity)
    : TraceRecorder(std::make_unique<RingSink>(per_node_capacity)) {}

TraceRecorder::TraceRecorder(std::unique_ptr<TraceSink> sink)
    : per_node_capacity_(1 << 14), sink_(std::move(sink)) {
  VIFI_EXPECTS(sink_ != nullptr);
  ring_ = dynamic_cast<RingSink*>(sink_.get());
  stream_ = dynamic_cast<StreamSink*>(sink_.get());
  if (ring_ != nullptr) per_node_capacity_ = ring_->per_node_capacity();
}

TraceRecorder::~TraceRecorder() = default;

void TraceRecorder::record(EventKind kind, Time at, sim::NodeId node,
                           sim::NodeId peer, std::uint64_t id, double a,
                           double b, std::int32_t c) {
  TraceEvent e;
  e.at = base_ + at;
  e.seq = next_seq_++;
  e.id = id;
  e.node = node;
  e.peer = peer;
  e.kind = kind;
  e.c = c;
  e.a = a;
  e.b = b;
  last_local_ = at;
  ++recorded_;
  ++kind_counts_[static_cast<int>(kind)];
  // Devirtualized fast path for the default backend (RingSink is final).
  if (ring_ != nullptr)
    ring_->push(e);
  else
    sink_->push(e);
}

void TraceRecorder::log(LogLevel level, std::string message) {
  LogRecord rec;
  rec.at = base_ + last_local_;
  rec.seq = next_seq_++;
  rec.level = level;
  rec.message = std::move(message);
  ++kind_counts_[static_cast<int>(EventKind::Log)];
  logs_.push_back(std::move(rec));
  if (logs_.size() > kMaxLogRecords) logs_.pop_front();
}

const std::string& TraceRecorder::spool_path() const {
  VIFI_EXPECTS(stream_ != nullptr);
  return stream_->path();
}

std::vector<SpoolLog> TraceRecorder::spool_logs() const {
  std::vector<SpoolLog> out;
  out.reserve(logs_.size());
  for (const LogRecord& log : logs_) {
    SpoolLog s;
    s.at_us = log.at.to_micros();
    s.seq = log.seq;
    s.level = static_cast<std::int32_t>(log.level);
    s.message = log.message;
    out.push_back(std::move(s));
  }
  return out;
}

void TraceRecorder::finalize() const {
  if (stream_ != nullptr && !stream_->finalized())
    stream_->finalize(spool_logs());
}

void TraceRecorder::set_node_label(sim::NodeId node, std::string label) {
  sink_->set_node_label(node, label);
  labels_[node] = std::move(label);
}

const std::string& TraceRecorder::node_label(sim::NodeId node) const {
  static const std::string kEmpty;
  const auto it = labels_.find(node);
  return it == labels_.end() ? kEmpty : it->second;
}

std::vector<sim::NodeId> TraceRecorder::nodes() const {
  std::vector<sim::NodeId> out = sink_->nodes();
  for (const auto& [node, label] : labels_) {
    (void)label;
    if (std::find(out.begin(), out.end(), node) == out.end())
      out.push_back(node);
  }
  std::sort(out.begin(), out.end());
  return out;
}

const EventRing& TraceRecorder::ring(sim::NodeId node) const {
  static const EventRing kEmpty{1};
  return ring_ != nullptr ? ring_->ring(node) : kEmpty;
}

std::vector<TraceEvent> TraceRecorder::merged() const {
  // Seal a streaming recorder's spool first so its footer carries the
  // routed logs (StreamSink::events alone would finalize without them).
  finalize();
  return sink_->events();
}

void TraceRecorder::absorb(const TraceRecorder& other, Time offset) {
  VIFI_EXPECTS(streaming() == other.streaming());
  // Sequence numbers continue after everything (events *and* logs) this
  // recorder has issued, exactly as if other's stream had been recorded
  // here next.
  const std::uint64_t seq_offset = next_seq_ - 1;
  sink_->absorb(*other.sink_, offset, seq_offset);
  for (const LogRecord& log : other.logs_) {
    LogRecord shifted = log;
    shifted.at = log.at + offset;
    shifted.seq = log.seq + seq_offset;
    logs_.push_back(std::move(shifted));
    if (logs_.size() > kMaxLogRecords) logs_.pop_front();
  }
  for (const auto& [node, label] : other.labels_) set_node_label(node, label);
  for (int k = 0; k < kEventKindCount; ++k)
    kind_counts_[k] += other.kind_counts_[k];
  recorded_ += other.recorded_;
  next_seq_ += other.next_seq_ - 1;
  // A log stamped after the absorb lands where a direct recording would
  // have put it: offset + other's last local time, relative to our base.
  last_local_ = offset + other.base_ + other.last_local_ - base_;
}

TraceRecorder* current_recorder() { return t_current; }

TraceScope::TraceScope(TraceRecorder& recorder) : prev_(t_current) {
  t_current = &recorder;
}

TraceScope::~TraceScope() { t_current = prev_; }

}  // namespace vifi::obs
