#pragma once

/// \file sink.h
/// TripScope's trace backends. A TraceRecorder owns exactly one
/// TraceSink, which decides what happens to recorded events after the
/// recorder has stamped them (timeline time, global seq):
///
///   RingSink    per-node fixed-capacity rings, overwrite-oldest — the
///               default. Zero I/O, bounded memory, keeps the newest
///               window per node; `dropped()` counts what wrapping
///               overwrote.
///   StreamSink  full fidelity to disk — spools every event into a
///               chunked per-node binary file (spool.h), flushing in
///               fixed-size blocks off the hot path. Never drops;
///               city-scale timelines survive past the ring horizon.
///
/// Both sinks implement `absorb` so the sharded executor can stitch
/// per-trip sinks into one session sink with the same bytes a sequential
/// recording would produce (the determinism contract recorder.h states).

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/event.h"
#include "obs/spool.h"
#include "sim/ids.h"
#include "util/time.h"

namespace vifi::obs {

/// Fixed-capacity event ring. Overwrites the oldest entry once full;
/// `dropped()` counts overwritten events so exporters can say so.
class EventRing {
 public:
  explicit EventRing(std::size_t capacity);

  void push(const TraceEvent& e);

  std::size_t size() const { return events_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t dropped() const { return dropped_; }
  /// Folds another ring's drop count in (RingSink::absorb: the absorbed
  /// ring's own overwrites must still be accounted for).
  void add_dropped(std::uint64_t n) { dropped_ += n; }

  /// Events oldest-to-newest (unwraps the ring).
  std::vector<TraceEvent> snapshot() const;

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  ///< Next write position once the ring is full.
  std::uint64_t dropped_ = 0;
  std::vector<TraceEvent> events_;
};

/// Where a recorder's stamped events go. Implementations must preserve
/// the recorder's determinism contract: given the same push sequence,
/// the sink's observable state (and any file it writes) is identical.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Accepts one fully-stamped event (timeline time and seq assigned by
  /// the recorder).
  virtual void push(const TraceEvent& e) = 0;

  /// Events lost to this sink (ring overwrites; always 0 for streams).
  virtual std::uint64_t dropped() const = 0;

  /// Nodes with at least one retained event, ascending id.
  virtual std::vector<sim::NodeId> nodes() const = 0;

  /// Retained events in recording (seq ascending) order. For streams
  /// this finalizes the spool and reads it back.
  virtual std::vector<TraceEvent> events() const = 0;

  /// Folds \p other's event stream in, shifted by \p at_offset /
  /// \p seq_offset, exactly as if those events had been pushed here
  /// next. \p other must be the same sink kind (and, for rings, the
  /// same capacity); it may be finalized in the process.
  virtual void absorb(TraceSink& other, Time at_offset,
                      std::uint64_t seq_offset) = 0;

  /// Human-readable track label for a node. Streams persist it in the
  /// spool footer; rings ignore it (the recorder keeps its own map).
  virtual void set_node_label(sim::NodeId node, const std::string& label);

  /// Flushes and seals the sink's backing store with the recorder's
  /// routed \p logs. No-op for rings; for streams, pushes after this
  /// violate the spool writer's contract.
  virtual void finalize(const std::vector<SpoolLog>& logs);
};

/// The default in-memory backend: one EventRing per node.
class RingSink final : public TraceSink {
 public:
  explicit RingSink(std::size_t per_node_capacity);

  void push(const TraceEvent& e) override;
  std::uint64_t dropped() const override;
  std::vector<sim::NodeId> nodes() const override;
  std::vector<TraceEvent> events() const override;
  void absorb(TraceSink& other, Time at_offset,
              std::uint64_t seq_offset) override;

  std::size_t per_node_capacity() const { return per_node_capacity_; }
  /// A node's ring; a shared empty ring for unseen nodes.
  const EventRing& ring(sim::NodeId node) const;

 private:
  std::size_t per_node_capacity_;
  /// Ordered map: node iteration order is deterministic and references
  /// stay stable while rings grow elsewhere.
  std::map<sim::NodeId, EventRing> rings_;
};

/// The full-fidelity disk backend: every event spooled to \p path.
class StreamSink final : public TraceSink {
 public:
  explicit StreamSink(std::string path,
                      std::size_t block_events = kSpoolBlockEvents);

  void push(const TraceEvent& e) override;
  std::uint64_t dropped() const override { return 0; }
  std::vector<sim::NodeId> nodes() const override;
  /// Finalizes the spool (with no logs, if the recorder has not already
  /// finalized it) and reads every record back in seq order.
  std::vector<TraceEvent> events() const override;
  /// \p other must be a StreamSink; its spool is finalized, read back,
  /// and replayed into this one shifted. The sharded executor absorbs
  /// per-trip part spools this way, in trip order, so the session spool
  /// is byte-identical to a sequential recording's.
  void absorb(TraceSink& other, Time at_offset,
              std::uint64_t seq_offset) override;
  void set_node_label(sim::NodeId node, const std::string& label) override;
  void finalize(const std::vector<SpoolLog>& logs) override;

  const std::string& path() const { return writer_->path(); }
  bool finalized() const { return writer_->finalized(); }
  std::uint64_t pushed() const { return writer_->pushed(); }

 private:
  std::unique_ptr<SpoolWriter> writer_;
};

}  // namespace vifi::obs
