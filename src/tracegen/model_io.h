#pragma once

/// \file model_io.h
/// Text serialisation of fitted `TraceModel`s (`vifi-tracemodel v1`),
/// line-oriented and diff-friendly like the trace format, so fit and
/// synthesis can run as separate CLI steps (traceforge fit | synth).

#include <iosfwd>
#include <string>

#include "tracegen/fit.h"

namespace vifi::tracegen {

void save_model(const TraceModel& model, std::ostream& os);
void save_model_file(const TraceModel& model, const std::string& path);

/// Throws std::runtime_error with a crisp message on malformed, truncated
/// or foreign-version input.
TraceModel load_model(std::istream& is);
TraceModel load_model_file(const std::string& path);

}  // namespace vifi::tracegen
