#pragma once

/// \file fit.h
/// TraceForge model fitting: turns logged `MeasurementTrace` beacon records
/// into a generative per-link model of vehicle<->BS connectivity. Three
/// statistics drive the paper's trace-driven evaluation (§5) and are the
/// ones we fit:
///
///  * contact structure — per BS, the rate at which the vehicle enters
///    coverage and the empirical CDF of how long a contact lasts;
///  * loss level — the mean beacon loss ratio while a contact is up; and
///  * burstiness — losses cluster (Fig. 6), modelled by the same
///    Gilbert–Elliott two-state parameters `channel::TwoStateProcess`
///    simulates: mean good-run and bad-run sojourn times within contacts.
///
/// A fitted `TraceModel` is a plain value; `tracegen::synthesize_fleet`
/// turns it into arbitrarily many statistically-matched traces.

#include <string>
#include <vector>

#include "sim/ids.h"
#include "trace/observations.h"
#include "util/time.h"

namespace vifi::tracegen {

using sim::NodeId;

struct FitOptions {
  /// Silent seconds tolerated *inside* a contact before it is split in
  /// two. 2 s matches the paper's observation that short fades within a
  /// BS association are channel bursts, not disconnections.
  int gap_tolerance_s = 2;
};

/// One maximal coverage episode of a vehicle at a BS.
struct Contact {
  NodeId bs;
  int start_sec = 0;
  int duration_s = 0;     ///< First through last active second, inclusive.
  double mean_loss = 0.0; ///< 1 - beacons_heard / beacons_sent over the contact.
};

/// Maximal runs of seconds with >= 1 beacon decoded, per BS, split where
/// more than `gap_tolerance_s` consecutive seconds go silent. Ordered by
/// (bs, start_sec).
std::vector<Contact> extract_contacts(const trace::MeasurementTrace& trip,
                                      const FitOptions& opts = {});

/// The same contacts re-sorted into the order the vehicle *experienced*
/// them — (start_sec, bs) — so successive entries name successive coverage
/// episodes. This is the raw material of the coordination tier's next-BS
/// predictor: each pair of consecutive distinct-BS contacts is one
/// observed BS-to-BS succession.
std::vector<Contact> contact_timeline(const trace::MeasurementTrace& trip,
                                      const FitOptions& opts = {});

/// The generative model of one vehicle<->BS link.
struct LinkModel {
  NodeId bs;
  /// Contact arrivals per trip-second (Poisson gap between contacts).
  double contact_rate_hz = 0.0;
  /// Per-contact (duration, loss) samples, PARALLEL arrays in fitted
  /// contact order: synthesis bootstraps whole contacts (one index draws
  /// both), preserving the duration-loss correlation (long contacts pass
  /// close to the BS and lose less).
  std::vector<double> duration_s;
  std::vector<double> loss_level;
  /// Gilbert–Elliott sojourn means within a contact, in the exact shape
  /// `channel::TwoStateProcess(mean_on, mean_off, ...)` consumes. A zero
  /// mean_off means no bad run was ever observed (the link never fades
  /// inside a contact).
  Time mean_on = Time::seconds(1.0);
  Time mean_off = Time::zero();
  /// Beacon RSSI distribution while in contact.
  double rssi_mean_dbm = -75.0;
  double rssi_stddev_dbm = 4.0;
};

/// A whole testbed's fitted model: per-BS link models plus the campaign
/// constants synthesis must reproduce.
struct TraceModel {
  std::string testbed;
  Time trip_duration;
  int beacons_per_second = 10;
  int source_trips = 0;  ///< Traces the fit pooled.
  FitOptions fit;
  std::vector<LinkModel> links;  ///< In bs id order.

  /// The link model for \p bs, or nullptr if the BS was never fitted.
  const LinkModel* link(NodeId bs) const;
  std::vector<NodeId> bs_ids() const;
};

/// Fits one model from the pooled contacts of every given trace (several
/// trips, several vehicles — all vehicles sample the same environment).
/// Throws std::runtime_error on an empty input or traces from different
/// testbeds.
TraceModel fit_model(const std::vector<const trace::MeasurementTrace*>& trips,
                     const FitOptions& opts = {});
TraceModel fit_model(const trace::Campaign& campaign,
                     const FitOptions& opts = {});

/// Fig. 6-style conditional loss over the expected beacon grid within
/// contacts: P(beacon i+1 lost | beacon i lost) against the unconditional
/// loss. `ratio() > 1` means losses cluster; a memoryless channel gives 1.
struct BurstinessStats {
  double unconditional_loss = 0.0;
  double conditional_loss = 0.0;
  std::int64_t slots = 0;  ///< Expected beacon slots examined.

  double ratio() const {
    return unconditional_loss > 0.0 ? conditional_loss / unconditional_loss
                                    : 1.0;
  }
};

BurstinessStats measure_burstiness(
    const std::vector<const trace::MeasurementTrace*>& trips,
    const FitOptions& opts = {});

/// Pooled contact-duration samples (sorted) — the source side of the
/// synthetic-vs-source CDF distance `bench/validation_synth` gates.
std::vector<double> pooled_contact_durations(
    const std::vector<const trace::MeasurementTrace*>& trips,
    const FitOptions& opts = {});

/// Mean beacon loss ratio over contact seconds, pooled across traces.
double pooled_contact_loss(
    const std::vector<const trace::MeasurementTrace*>& trips,
    const FitOptions& opts = {});

/// Kolmogorov–Smirnov distance between two empirical samples (each need
/// not be sorted); 0 = identical distributions, 1 = disjoint supports.
double ks_distance(std::vector<double> a, std::vector<double> b);

}  // namespace vifi::tracegen
