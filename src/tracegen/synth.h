#pragma once

/// \file synth.h
/// TraceForge synthesis: generates statistically-matched `MeasurementTrace`
/// fleets from a fitted `TraceModel`. Each vehicle<->BS link is an
/// alternating renewal process — exponential inter-contact gaps at the
/// fitted arrival rate, contact lengths and loss levels drawn from the
/// fitted empirical CDFs — and losses *within* a contact cluster through a
/// `channel::TwoStateProcess` carrying the fitted Gilbert–Elliott sojourn
/// means, so synthetic traces reproduce Fig. 6's conditional-loss decay.
///
/// Output is a deterministic function of (model, spec): every random draw
/// comes from named Rng streams forked per (day, trip, vehicle, BS).

#include "tracegen/fit.h"
#include "trace/observations.h"
#include "util/rng.h"

namespace vifi::tracegen {

struct SynthesisSpec {
  int vehicles = 1;
  int days = 1;
  int trips_per_day = 1;
  /// Zero means the model's fitted trip duration.
  Time trip_duration = Time::zero();
  std::uint64_t seed = 1;
};

/// One synthetic trip log for \p vehicle (beacon-only, the DieselNet
/// methodology — exactly what the §5.1 loss schedule consumes).
trace::MeasurementTrace synthesize_trace(const TraceModel& model,
                                         NodeId vehicle, int day, int trip,
                                         Time duration, Rng rng);

/// A whole synthetic campaign: days x trips_per_day trips, one trace per
/// vehicle per trip, ordered by (day, trip, vehicle). Vehicle ids follow
/// the testbed convention (BSes 0..n-1, vehicles n..n+V-1), so the traces
/// replay directly on `make_testbed(model.testbed, spec.vehicles)`.
trace::Campaign synthesize_fleet(const TraceModel& model,
                                 const SynthesisSpec& spec);

}  // namespace vifi::tracegen
