#pragma once

/// \file catalog.h
/// The TraceCatalog: a manifest-backed directory of `vifi-trace v1` files
/// describing a fleet's replayable trips. The manifest (`manifest.txt`,
/// `vifi-catalog v1`) names the testbed, the fleet, and one trace file per
/// (day, trip, vehicle); the loader parses everything once into immutable
/// traces and groups them into per-trip fleets ready for
/// `LiveTrip` / `build_fleet_loss_schedule`.
///
/// `load_catalog_shared` adds a process-wide cache keyed by directory:
/// runtime workers sweeping a `trace_sets` axis all share one parsed,
/// immutable catalog instead of re-reading files per point.
///
/// `CatalogStream` is the city-scale counterpart: it parses the manifest
/// only (duplicate, vehicle-set and fleet-size validation are all
/// manifest-derivable) and loads one trip group's traces at a time, so a
/// thousand-vehicle catalog never has to sit in memory whole. Both loaders
/// share one parser and one per-trace validator, so a catalog either loads
/// identically through both or fails with the same message.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "trace/observations.h"

namespace vifi::tracegen {

using sim::NodeId;

class TraceCatalog {
 public:
  /// Parses `dir/manifest.txt` and every trace it names. Throws
  /// std::runtime_error with a crisp message on missing/malformed
  /// manifests, unreadable traces, duplicate (day, trip, vehicle) entries,
  /// traces whose header contradicts the manifest, or trip groups whose
  /// vehicle sets differ.
  static TraceCatalog load(const std::string& dir);

  const std::string& name() const { return name_; }
  const std::string& testbed() const { return testbed_; }
  const std::string& dir() const { return dir_; }
  int fleet_size() const { return fleet_size_; }
  /// The fleet's vehicle ids (every trip group carries exactly this set),
  /// in id order.
  const std::vector<NodeId>& vehicle_ids() const { return vehicle_ids_; }
  /// Distinct campaign days the catalog covers (>= 1).
  int days() const { return days_; }

  /// All traces, ordered by (day, trip, vehicle).
  const std::vector<trace::MeasurementTrace>& traces() const {
    return traces_;
  }

  /// Number of (day, trip) fleet groups.
  std::size_t trip_groups() const { return groups_.size(); }

  /// One trip's fleet, in vehicle-id order — the exact shape
  /// `trace::build_fleet_loss_schedule` and the fleet `LiveTrip` take.
  /// The pointers stay valid for the catalog's lifetime.
  std::vector<const trace::MeasurementTrace*> fleet_trip(
      std::size_t group) const;

 private:
  std::string name_;
  std::string testbed_;
  std::string dir_;
  int fleet_size_ = 0;
  int days_ = 1;
  std::vector<NodeId> vehicle_ids_;
  std::vector<trace::MeasurementTrace> traces_;
  std::vector<std::vector<std::size_t>> groups_;  ///< Indices into traces_.
};

/// Lazy view of a catalog directory: `open` parses and validates the
/// manifest without reading any trace file; `load_group` materialises one
/// (day, trip) fleet group on demand. Group indices, group order and the
/// traces a group yields are identical to the eager loader's — a sharded
/// replay that folds groups in index order reproduces `TraceCatalog::load`
/// byte for byte while holding only one group in memory per worker.
class CatalogStream {
 public:
  /// Parses `dir/manifest.txt`. Throws std::runtime_error with the same
  /// messages as `TraceCatalog::load` for every manifest-level defect
  /// (bad magic/header, duplicate entries, mismatched trip vehicle sets,
  /// fleet-size contradictions). Trace-level defects (unreadable files,
  /// headers contradicting the manifest, ragged trip durations) surface
  /// from `load_group`, again with the eager loader's messages.
  static CatalogStream open(const std::string& dir);

  const std::string& name() const { return name_; }
  const std::string& testbed() const { return testbed_; }
  const std::string& dir() const { return dir_; }
  int fleet_size() const { return fleet_size_; }
  const std::vector<NodeId>& vehicle_ids() const { return vehicle_ids_; }
  int days() const { return days_; }
  std::size_t trip_groups() const { return groups_.size(); }

  /// The (day, trip) coordinates of a group, in the catalog's canonical
  /// (day, trip)-sorted group order.
  std::pair<int, int> group_key(std::size_t group) const;

  /// Reads and validates one trip group's traces, in vehicle-id order —
  /// the same traces `TraceCatalog::fleet_trip` would point at. The
  /// returned vector owns its traces; nothing is cached.
  std::vector<trace::MeasurementTrace> load_group(std::size_t group) const;

 private:
  struct GroupEntry {
    std::string file;
    int day = 0;
    int trip = 0;
    NodeId vehicle;
  };

  std::string name_;
  std::string testbed_;
  std::string dir_;
  int fleet_size_ = 0;
  int days_ = 1;
  std::vector<NodeId> vehicle_ids_;
  std::vector<std::vector<GroupEntry>> groups_;  ///< Vehicle order per group.
};

/// Writes \p campaign as a catalog: one `vifi-trace v1` file per trace plus
/// the manifest. Creates \p dir (and parents) if needed; overwrites an
/// existing manifest. Every trace must name its logging vehicle, and every
/// (day, trip) must carry the same vehicle set.
void write_catalog(const std::string& dir, const std::string& catalog_name,
                   const trace::Campaign& campaign);

/// Loads through the process-wide cache: repeated calls for the same
/// directory return the *same* immutable instance, so concurrent runtime
/// workers share one parsed copy. Thread-safe.
std::shared_ptr<const TraceCatalog> load_catalog_shared(
    const std::string& dir);

/// Drops the cache (tests; also lets a CLI re-read a rewritten catalog).
void drop_catalog_cache();

}  // namespace vifi::tracegen
