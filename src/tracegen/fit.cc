#include "tracegen/fit.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "util/contracts.h"

namespace vifi::tracegen {

namespace {

/// Mean of a sample, or \p fallback when empty.
double mean_or(const std::vector<double>& xs, double fallback) {
  if (xs.empty()) return fallback;
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

void check_same_environment(
    const std::vector<const trace::MeasurementTrace*>& trips,
    const char* who) {
  if (trips.empty())
    throw std::runtime_error(std::string(who) + ": no traces given");
  for (const trace::MeasurementTrace* t : trips) {
    VIFI_EXPECTS(t != nullptr);
    if (t->testbed != trips.front()->testbed)
      throw std::runtime_error(
          std::string(who) + ": traces from different testbeds ('" +
          trips.front()->testbed + "' vs '" + t->testbed + "')");
    if (t->beacons_per_second != trips.front()->beacons_per_second)
      throw std::runtime_error(std::string(who) +
                               ": traces with different beacon rates");
  }
}

/// The extraction core, over a precomputed per-second count map — lets
/// fit_model reuse one beacon_counts_per_second pass for both contact
/// extraction and the Gilbert–Elliott run scan.
std::vector<Contact> contacts_from_counts(
    const std::map<NodeId, std::vector<int>>& counts, int beacons_per_second,
    const FitOptions& opts) {
  VIFI_EXPECTS(opts.gap_tolerance_s >= 0);
  VIFI_EXPECTS(beacons_per_second > 0);
  std::vector<Contact> out;
  const double sent_per_sec = static_cast<double>(beacons_per_second);
  for (const auto& [bs, per_sec] : counts) {
    int start = -1, last_active = -1;
    std::int64_t heard = 0;
    auto close = [&] {
      if (start < 0) return;
      Contact c;
      c.bs = bs;
      c.start_sec = start;
      c.duration_s = last_active - start + 1;
      const double sent = sent_per_sec * c.duration_s;
      c.mean_loss =
          std::clamp(1.0 - static_cast<double>(heard) / sent, 0.0, 1.0);
      out.push_back(c);
      start = -1;
      last_active = -1;
      heard = 0;
    };
    for (int s = 0; s < static_cast<int>(per_sec.size()); ++s) {
      if (per_sec[static_cast<std::size_t>(s)] <= 0) continue;
      if (start >= 0 && s - last_active - 1 > opts.gap_tolerance_s) close();
      if (start < 0) start = s;
      last_active = s;
      heard += per_sec[static_cast<std::size_t>(s)];
    }
    close();
  }
  // counts iterates a std::map, so contacts already come out in
  // (bs, start_sec) order.
  return out;
}

}  // namespace

std::vector<Contact> extract_contacts(const trace::MeasurementTrace& trip,
                                      const FitOptions& opts) {
  return contacts_from_counts(trace::beacon_counts_per_second(trip),
                              trip.beacons_per_second, opts);
}

std::vector<Contact> contact_timeline(const trace::MeasurementTrace& trip,
                                      const FitOptions& opts) {
  std::vector<Contact> contacts = extract_contacts(trip, opts);
  std::sort(contacts.begin(), contacts.end(),
            [](const Contact& a, const Contact& b) {
              if (a.start_sec != b.start_sec) return a.start_sec < b.start_sec;
              return a.bs < b.bs;
            });
  return contacts;
}

const LinkModel* TraceModel::link(NodeId bs) const {
  for (const LinkModel& l : links)
    if (l.bs == bs) return &l;
  return nullptr;
}

std::vector<NodeId> TraceModel::bs_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(links.size());
  for (const LinkModel& l : links) ids.push_back(l.bs);
  return ids;
}

TraceModel fit_model(const std::vector<const trace::MeasurementTrace*>& trips,
                     const FitOptions& opts) {
  check_same_environment(trips, "fit_model");

  TraceModel model;
  model.testbed = trips.front()->testbed;
  model.beacons_per_second = trips.front()->beacons_per_second;
  model.source_trips = static_cast<int>(trips.size());
  model.fit = opts;
  for (const trace::MeasurementTrace* t : trips)
    model.trip_duration = std::max(model.trip_duration, t->duration);

  struct LinkAcc {
    int contacts = 0;
    double seconds_observed = 0.0;  ///< Total trip time this BS was logged.
    std::vector<double> durations;
    std::vector<double> losses;
    std::vector<double> good_runs;
    std::vector<double> bad_runs;
    int rssi_n = 0;
    double rssi_sum = 0.0, rssi_sumsq = 0.0;
  };
  std::map<NodeId, LinkAcc> accs;
  // Register every BS any trace names, so links with zero contacts still
  // appear (rate 0) and synthesized traces keep the full bs_ids list.
  for (const trace::MeasurementTrace* t : trips)
    for (const NodeId bs : t->bs_ids) accs[bs];

  for (const trace::MeasurementTrace* t : trips) {
    const double dur_s = t->duration.to_seconds();
    for (const NodeId bs : t->bs_ids) accs[bs].seconds_observed += dur_s;

    const auto counts = trace::beacon_counts_per_second(*t);
    const std::vector<Contact> contacts =
        contacts_from_counts(counts, t->beacons_per_second, opts);
    for (const Contact& c : contacts) {
      LinkAcc& acc = accs[c.bs];
      ++acc.contacts;
      acc.durations.push_back(static_cast<double>(c.duration_s));
      acc.losses.push_back(c.mean_loss);
    }

    // Gilbert–Elliott runs: good/bad seconds within each contact.
    for (const Contact& c : contacts) {
      const auto it = counts.find(c.bs);
      if (it == counts.end()) continue;
      LinkAcc& acc = accs[c.bs];
      int run = 0;
      bool good = true;
      auto flush = [&] {
        if (run == 0) return;
        (good ? acc.good_runs : acc.bad_runs)
            .push_back(static_cast<double>(run));
        run = 0;
      };
      for (int s = c.start_sec; s < c.start_sec + c.duration_s; ++s) {
        const bool g = it->second[static_cast<std::size_t>(s)] > 0;
        if (run > 0 && g != good) flush();
        good = g;
        ++run;
      }
      flush();
    }

    for (const trace::BeaconObs& b : t->vehicle_beacons) {
      LinkAcc& acc = accs[b.bs];
      ++acc.rssi_n;
      acc.rssi_sum += b.rssi_dbm;
      acc.rssi_sumsq += b.rssi_dbm * b.rssi_dbm;
    }
  }

  for (const auto& [bs, acc] : accs) {
    LinkModel link;
    link.bs = bs;
    if (acc.seconds_observed > 0.0)
      link.contact_rate_hz = acc.contacts / acc.seconds_observed;
    link.duration_s = acc.durations;  // parallel with loss_level: one
    link.loss_level = acc.losses;     // fitted contact per index
    link.mean_on = Time::seconds(std::max(1.0, mean_or(acc.good_runs, 1.0)));
    link.mean_off = acc.bad_runs.empty()
                        ? Time::zero()
                        : Time::seconds(mean_or(acc.bad_runs, 1.0));
    if (acc.rssi_n > 0) {
      link.rssi_mean_dbm = acc.rssi_sum / acc.rssi_n;
      const double var =
          acc.rssi_sumsq / acc.rssi_n - link.rssi_mean_dbm * link.rssi_mean_dbm;
      link.rssi_stddev_dbm = std::sqrt(std::max(0.0, var));
    }
    model.links.push_back(std::move(link));
  }
  return model;
}

TraceModel fit_model(const trace::Campaign& campaign, const FitOptions& opts) {
  std::vector<const trace::MeasurementTrace*> trips;
  trips.reserve(campaign.trips.size());
  for (const trace::MeasurementTrace& t : campaign.trips) trips.push_back(&t);
  return fit_model(trips, opts);
}

BurstinessStats measure_burstiness(
    const std::vector<const trace::MeasurementTrace*>& trips,
    const FitOptions& opts) {
  check_same_environment(trips, "measure_burstiness");
  std::int64_t slots = 0, losses = 0;
  std::int64_t pairs_after_loss = 0, losses_after_loss = 0;
  for (const trace::MeasurementTrace* t : trips) {
    const int bps = t->beacons_per_second;
    // Beacons land on a fixed grid (campaign.cc emits them at a constant
    // offset inside each slot), so "beacon i" is a grid slot and a loss is
    // an empty slot during a contact.
    std::map<NodeId, std::vector<char>> heard;  // per-bs grid occupancy
    const auto n_slots = static_cast<std::size_t>(
        std::max<std::int64_t>(1, t->seconds()) * bps);
    for (const NodeId bs : t->bs_ids) heard[bs].assign(n_slots, 0);
    for (const trace::BeaconObs& b : t->vehicle_beacons) {
      const auto slot = static_cast<std::size_t>(
          b.t.to_micros() / (1'000'000 / bps));
      auto it = heard.find(b.bs);
      if (it != heard.end() && slot < n_slots) it->second[slot] = 1;
    }
    for (const Contact& c : extract_contacts(*t, opts)) {
      const std::vector<char>& grid = heard.at(c.bs);
      const auto lo = static_cast<std::size_t>(c.start_sec) *
                      static_cast<std::size_t>(bps);
      const auto hi = std::min(
          grid.size(), lo + static_cast<std::size_t>(c.duration_s) *
                                static_cast<std::size_t>(bps));
      for (std::size_t i = lo; i < hi; ++i) {
        ++slots;
        const bool lost = grid[i] == 0;
        if (lost) ++losses;
        if (i + 1 < hi) {
          if (lost) {
            ++pairs_after_loss;
            if (grid[i + 1] == 0) ++losses_after_loss;
          }
        }
      }
    }
  }
  BurstinessStats out;
  out.slots = slots;
  if (slots > 0)
    out.unconditional_loss =
        static_cast<double>(losses) / static_cast<double>(slots);
  if (pairs_after_loss > 0)
    out.conditional_loss = static_cast<double>(losses_after_loss) /
                           static_cast<double>(pairs_after_loss);
  return out;
}

std::vector<double> pooled_contact_durations(
    const std::vector<const trace::MeasurementTrace*>& trips,
    const FitOptions& opts) {
  std::vector<double> out;
  for (const trace::MeasurementTrace* t : trips) {
    VIFI_EXPECTS(t != nullptr);
    for (const Contact& c : extract_contacts(*t, opts))
      out.push_back(static_cast<double>(c.duration_s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

double pooled_contact_loss(
    const std::vector<const trace::MeasurementTrace*>& trips,
    const FitOptions& opts) {
  double loss_weighted = 0.0, seconds = 0.0;
  for (const trace::MeasurementTrace* t : trips) {
    VIFI_EXPECTS(t != nullptr);
    for (const Contact& c : extract_contacts(*t, opts)) {
      loss_weighted += c.mean_loss * c.duration_s;
      seconds += c.duration_s;
    }
  }
  return seconds > 0.0 ? loss_weighted / seconds : 0.0;
}

double ks_distance(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) return a.empty() == b.empty() ? 0.0 : 1.0;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  double d = 0.0;
  std::size_t i = 0, j = 0;
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  while (i < a.size() || j < b.size()) {
    // Step both CDFs past the next value (ties advance together, or the
    // distance at a shared jump would be overcounted).
    const double x = (i < a.size() && (j >= b.size() || a[i] <= b[j]))
                         ? a[i]
                         : b[j];
    while (i < a.size() && a[i] == x) ++i;
    while (j < b.size() && b[j] == x) ++j;
    d = std::max(d, std::abs(static_cast<double>(i) / na -
                             static_cast<double>(j) / nb));
  }
  return d;
}

}  // namespace vifi::tracegen
