#include "tracegen/synth.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "channel/markov.h"
#include "util/contracts.h"

namespace vifi::tracegen {

namespace {

double mean_of(const std::vector<double>& xs) {
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return xs.empty() ? 0.0 : sum / static_cast<double>(xs.size());
}

/// Synthesizes one link's beacons over [0, dur_s) seconds into \p out.
void synthesize_link(const LinkModel& link, int bps, int gap_tolerance_s,
                     std::int64_t dur_s, Rng rng,
                     std::vector<trace::BeaconObs>& out) {
  VIFI_EXPECTS(link.duration_s.size() == link.loss_level.size());
  if (link.contact_rate_hz <= 0.0 || link.duration_s.empty()) return;
  const double mean_cycle_s = 1.0 / link.contact_rate_hz;
  const double mean_duration_s = mean_of(link.duration_s);
  // Gaps must exceed the fit's tolerance, or re-extraction would merge
  // adjacent contacts; the exponential part keeps the fitted arrival rate.
  const double min_gap_s = static_cast<double>(gap_tolerance_s + 1);
  const double mean_gap_s =
      std::max(1.0, mean_cycle_s - mean_duration_s - min_gap_s);
  const std::int64_t spacing_us = 1'000'000 / bps;

  double t = rng.exponential(mean_gap_s);
  int contact_idx = 0;
  while (true) {
    const auto start = static_cast<std::int64_t>(std::llround(t));
    if (start >= dur_s) break;
    // Bootstrap a whole fitted contact: one index draws duration AND loss,
    // preserving their correlation (long contacts lose less).
    const auto sample = std::min(
        link.duration_s.size() - 1,
        static_cast<std::size_t>(rng.uniform01() *
                                 static_cast<double>(link.duration_s.size())));
    const auto len = std::max<std::int64_t>(
        1, std::llround(link.duration_s[sample]));
    const std::int64_t end = std::min(dur_s, start + len);
    const double p = std::clamp(link.loss_level[sample], 0.0, 1.0);

    // Gilbert–Elliott: split the contact's loss level across the two
    // states with maximum contrast, keeping the mean exact — bad-state
    // seconds lose everything when the drawn level allows it, and
    // otherwise carry p scaled up by the bad-time share.
    const bool has_bad = link.mean_off > Time::zero();
    double p_good = p, p_bad = p;
    // A contact starts at a decoded beacon by definition (extraction opens
    // on an active second), so the chain starts in the good state.
    channel::TwoStateProcess ge(
        link.mean_on, has_bad ? link.mean_off : Time::seconds(1.0),
        /*start_on=*/true, rng.fork("ge" + std::to_string(contact_idx)));
    if (has_bad) {
      const double f_off = 1.0 - ge.stationary_on_fraction();
      if (f_off <= p) {
        p_bad = 1.0;
        p_good = (p - f_off) / (1.0 - f_off);
      } else {
        p_bad = p / f_off;
        p_good = 0.0;
      }
    }

    for (std::int64_t sec = start; sec < end; ++sec) {
      const bool good =
          !has_bad || ge.on_at(Time::seconds(static_cast<double>(sec - start)));
      const double p_state = good ? p_good : p_bad;
      for (int b = 0; b < bps; ++b) {
        if (!rng.bernoulli(1.0 - p_state)) continue;
        // The campaign generator beacons at a fixed 37 ms offset inside
        // each slot; mirror its grid so fit <-> synth slots line up.
        const std::int64_t offset_us =
            std::min<std::int64_t>(b * spacing_us + 37'000, 999'999);
        out.push_back({Time::micros(sec * 1'000'000 + offset_us), link.bs,
                       rng.normal(link.rssi_mean_dbm, link.rssi_stddev_dbm)});
      }
    }
    t = static_cast<double>(end) + min_gap_s + rng.exponential(mean_gap_s);
    ++contact_idx;
  }
}

}  // namespace

trace::MeasurementTrace synthesize_trace(const TraceModel& model,
                                         NodeId vehicle, int day, int trip,
                                         Time duration, Rng rng) {
  VIFI_EXPECTS(vehicle.valid());
  VIFI_EXPECTS(duration > Time::zero());
  VIFI_EXPECTS(model.beacons_per_second > 0);
  trace::MeasurementTrace t;
  t.testbed = model.testbed;
  t.day = day;
  t.trip = trip;
  t.vehicle = vehicle;
  t.duration = duration;
  t.beacons_per_second = model.beacons_per_second;
  t.bs_ids = model.bs_ids();
  const auto dur_s = static_cast<std::int64_t>(t.seconds());
  for (const LinkModel& link : model.links)
    synthesize_link(link, model.beacons_per_second, model.fit.gap_tolerance_s,
                    dur_s, rng.fork("bs" + std::to_string(link.bs.value())),
                    t.vehicle_beacons);
  std::sort(t.vehicle_beacons.begin(), t.vehicle_beacons.end(),
            [](const trace::BeaconObs& a, const trace::BeaconObs& b) {
              return a.t != b.t ? a.t < b.t : a.bs < b.bs;
            });
  return t;
}

trace::Campaign synthesize_fleet(const TraceModel& model,
                                 const SynthesisSpec& spec) {
  VIFI_EXPECTS(spec.vehicles > 0);
  VIFI_EXPECTS(spec.days > 0 && spec.trips_per_day > 0);
  const Time duration =
      spec.trip_duration.is_zero() ? model.trip_duration : spec.trip_duration;
  if (duration <= Time::zero())
    throw std::runtime_error(
        "synthesize_fleet: model has no trip duration and the spec names "
        "none");

  // Testbed id convention: BSes 0..n-1, vehicles n..n+V-1.
  int first_vehicle = 0;
  for (const LinkModel& l : model.links)
    first_vehicle = std::max(first_vehicle, l.bs.value() + 1);

  trace::Campaign campaign;
  campaign.testbed = model.testbed;
  Rng root(spec.seed);
  for (int day = 0; day < spec.days; ++day) {
    for (int trip = 0; trip < spec.trips_per_day; ++trip) {
      Rng trip_rng = root.fork("day" + std::to_string(day) + "/trip" +
                               std::to_string(trip));
      for (int v = 0; v < spec.vehicles; ++v) {
        campaign.trips.push_back(synthesize_trace(
            model, NodeId(first_vehicle + v), day, trip, duration,
            trip_rng.fork("veh" + std::to_string(v))));
      }
    }
  }
  return campaign;
}

}  // namespace vifi::tracegen
