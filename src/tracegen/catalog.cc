#include "tracegen/catalog.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "trace/trace_io.h"

namespace vifi::tracegen {

namespace {

constexpr const char* kManifestName = "manifest.txt";
constexpr const char* kMagic = "# vifi-catalog v1";

[[noreturn]] void fail(const std::string& dir, const std::string& why) {
  throw std::runtime_error("catalog error (" + dir + "): " + why);
}

struct ManifestEntry {
  std::string file;
  int day = 0;
  int trip = 0;
  NodeId vehicle;
};

/// Everything the manifest alone pins down, shared by the eager and the
/// streaming loader so they cannot drift: the header, the entries in
/// canonical (day, trip, vehicle) order with duplicates rejected.
struct ParsedManifest {
  std::string name;
  std::string testbed;
  int fleet_size = 0;
  std::vector<ManifestEntry> entries;
};

ParsedManifest parse_manifest(const std::string& dir) {
  namespace fs = std::filesystem;
  const fs::path manifest_path = fs::path(dir) / kManifestName;
  std::ifstream is(manifest_path);
  if (!is)
    fail(dir, "cannot open " + manifest_path.string() +
                  " (not a trace catalog?)");

  ParsedManifest m;
  std::string line;
  int line_no = 1;
  if (!std::getline(is, line) || line != kMagic) {
    if (line.rfind("# vifi-catalog v", 0) == 0)
      fail(dir, "unsupported manifest version '" + line.substr(2) +
                    "' (this build reads vifi-catalog v1)");
    fail(dir, "bad manifest magic (expected '" + std::string(kMagic) + "')");
  }
  bool have_header = false;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "catalog") {
      std::string kw;
      ls >> m.name >> kw >> m.testbed >> kw >> m.fleet_size;
      if (!ls || m.fleet_size <= 0)
        fail(dir, "bad catalog header at manifest line " +
                      std::to_string(line_no));
      have_header = true;
    } else if (tag == "trace") {
      ManifestEntry e;
      std::string kw;
      int veh = -1;
      ls >> e.file >> kw >> e.day >> kw >> e.trip >> kw >> veh;
      if (!ls || veh < 0)
        fail(dir, "bad trace line at manifest line " + std::to_string(line_no));
      e.vehicle = NodeId(veh);
      m.entries.push_back(std::move(e));
    } else {
      fail(dir, "unknown manifest tag '" + tag + "' at line " +
                    std::to_string(line_no));
    }
  }
  if (!have_header) fail(dir, "manifest has no catalog header");
  if (m.entries.empty()) fail(dir, "manifest names no traces");

  // Canonical order regardless of how the manifest lists its lines, so
  // two semantically identical catalogs replay byte-identically.
  std::sort(m.entries.begin(), m.entries.end(),
            [](const ManifestEntry& a, const ManifestEntry& b) {
              return std::tuple(a.day, a.trip, a.vehicle) <
                     std::tuple(b.day, b.trip, b.vehicle);
            });
  std::set<std::tuple<int, int, int>> seen;
  for (const ManifestEntry& e : m.entries) {
    if (!seen.insert({e.day, e.trip, e.vehicle.value()}).second)
      fail(dir, "duplicate trace for day " + std::to_string(e.day) +
                    " trip " + std::to_string(e.trip) + " vehicle " +
                    e.vehicle.to_string());
  }
  return m;
}

/// Reads one manifest entry's trace and checks it against the manifest.
/// The single per-trace validator both loaders run, so a defective trace
/// fails with the same message whether reached eagerly or via a stream.
trace::MeasurementTrace load_entry_trace(const std::string& dir,
                                         const ManifestEntry& e,
                                         const std::string& testbed) {
  trace::MeasurementTrace t;
  try {
    t = trace::load_trace_file((std::filesystem::path(dir) / e.file).string());
  } catch (const std::exception& ex) {
    fail(dir, std::string("trace '") + e.file + "': " + ex.what());
  }
  if (t.testbed != testbed)
    fail(dir, "trace '" + e.file + "' is from testbed '" + t.testbed +
                  "' but the manifest says '" + testbed + "'");
  if (t.vehicle != e.vehicle)
    fail(dir, "trace '" + e.file + "' was logged by " +
                  t.vehicle.to_string() + " but the manifest says " +
                  e.vehicle.to_string());
  if (t.day != e.day || t.trip != e.trip)
    fail(dir, "trace '" + e.file + "' header (day " +
                  std::to_string(t.day) + ", trip " + std::to_string(t.trip) +
                  ") contradicts the manifest");
  return t;
}

}  // namespace

TraceCatalog TraceCatalog::load(const std::string& dir) {
  ParsedManifest m = parse_manifest(dir);
  TraceCatalog cat;
  cat.dir_ = dir;
  cat.name_ = std::move(m.name);
  cat.testbed_ = std::move(m.testbed);
  cat.fleet_size_ = m.fleet_size;

  std::map<std::pair<int, int>, std::vector<std::size_t>> groups;
  for (const ManifestEntry& e : m.entries) {
    groups[{e.day, e.trip}].push_back(cat.traces_.size());
    cat.traces_.push_back(load_entry_trace(dir, e, cat.testbed_));
  }

  // Every trip group must carry the same fleet, in vehicle order, and
  // every trace of a group must share the trip's duration — the fleet
  // loss schedule has one horizon per trip, and a ragged group would
  // either truncate long logs or measure past short ones as dead air.
  std::vector<int> fleet;
  for (auto& [key, idxs] : groups) {
    std::sort(idxs.begin(), idxs.end(), [&cat](std::size_t a, std::size_t b) {
      return cat.traces_[a].vehicle < cat.traces_[b].vehicle;
    });
    std::vector<int> vehicles;
    vehicles.reserve(idxs.size());
    for (const std::size_t i : idxs) {
      vehicles.push_back(cat.traces_[i].vehicle.value());
      if (cat.traces_[i].duration != cat.traces_[idxs.front()].duration)
        fail(dir, "trip (day " + std::to_string(key.first) + ", trip " +
                      std::to_string(key.second) + ") is ragged: vehicle " +
                      cat.traces_[i].vehicle.to_string() + " logged " +
                      cat.traces_[i].duration.to_string() +
                      " but the group's first trace logged " +
                      cat.traces_[idxs.front()].duration.to_string());
    }
    if (fleet.empty())
      fleet = vehicles;
    else if (fleet != vehicles)
      fail(dir, "trip (day " + std::to_string(key.first) + ", trip " +
                    std::to_string(key.second) +
                    ") has a different vehicle set than the first trip");
    cat.groups_.push_back(idxs);
  }
  if (static_cast<int>(fleet.size()) != cat.fleet_size_)
    fail(dir, "manifest says fleet " + std::to_string(cat.fleet_size_) +
                  " but trips carry " + std::to_string(fleet.size()) +
                  " vehicles");
  for (const int v : fleet) cat.vehicle_ids_.push_back(NodeId(v));
  std::set<int> days;
  for (const auto& [key, idxs] : groups) days.insert(key.first);
  cat.days_ = std::max(1, static_cast<int>(days.size()));
  return cat;
}

CatalogStream CatalogStream::open(const std::string& dir) {
  ParsedManifest m = parse_manifest(dir);
  CatalogStream stream;
  stream.dir_ = dir;
  stream.name_ = std::move(m.name);
  stream.testbed_ = std::move(m.testbed);
  stream.fleet_size_ = m.fleet_size;

  // Group in canonical (day, trip) order; entries are already sorted by
  // (day, trip, vehicle), so each group arrives in vehicle order too —
  // the exact group indices and per-group trace order the eager loader
  // produces. Vehicle-set and fleet-size validation need only the
  // manifest; ragged durations and header contradictions need the trace
  // files and are deferred to load_group.
  std::map<std::pair<int, int>, std::vector<GroupEntry>> groups;
  for (ManifestEntry& e : m.entries)
    groups[{e.day, e.trip}].push_back(
        GroupEntry{std::move(e.file), e.day, e.trip, e.vehicle});

  std::vector<int> fleet;
  for (auto& [key, group] : groups) {
    std::vector<int> vehicles;
    vehicles.reserve(group.size());
    for (const GroupEntry& e : group) vehicles.push_back(e.vehicle.value());
    if (fleet.empty())
      fleet = vehicles;
    else if (fleet != vehicles)
      fail(dir, "trip (day " + std::to_string(key.first) + ", trip " +
                    std::to_string(key.second) +
                    ") has a different vehicle set than the first trip");
    stream.groups_.push_back(std::move(group));
  }
  if (static_cast<int>(fleet.size()) != stream.fleet_size_)
    fail(dir, "manifest says fleet " + std::to_string(stream.fleet_size_) +
                  " but trips carry " + std::to_string(fleet.size()) +
                  " vehicles");
  for (const int v : fleet) stream.vehicle_ids_.push_back(NodeId(v));
  std::set<int> days;
  for (const auto& group : stream.groups_) days.insert(group.front().day);
  stream.days_ = std::max(1, static_cast<int>(days.size()));
  return stream;
}

std::pair<int, int> CatalogStream::group_key(std::size_t group) const {
  if (group >= groups_.size())
    fail(dir_, "trip group " + std::to_string(group) + " out of range (" +
                   std::to_string(groups_.size()) + " groups)");
  return {groups_[group].front().day, groups_[group].front().trip};
}

std::vector<trace::MeasurementTrace> CatalogStream::load_group(
    std::size_t group) const {
  if (group >= groups_.size())
    fail(dir_, "trip group " + std::to_string(group) + " out of range (" +
                   std::to_string(groups_.size()) + " groups)");
  std::vector<trace::MeasurementTrace> traces;
  traces.reserve(groups_[group].size());
  for (const GroupEntry& e : groups_[group]) {
    ManifestEntry entry{e.file, e.day, e.trip, e.vehicle};
    traces.push_back(load_entry_trace(dir_, entry, testbed_));
    if (traces.back().duration != traces.front().duration) {
      const auto [day, trip] = group_key(group);
      fail(dir_, "trip (day " + std::to_string(day) + ", trip " +
                     std::to_string(trip) + ") is ragged: vehicle " +
                     traces.back().vehicle.to_string() + " logged " +
                     traces.back().duration.to_string() +
                     " but the group's first trace logged " +
                     traces.front().duration.to_string());
    }
  }
  return traces;
}

std::vector<const trace::MeasurementTrace*> TraceCatalog::fleet_trip(
    std::size_t group) const {
  if (group >= groups_.size())
    fail(dir_, "trip group " + std::to_string(group) + " out of range (" +
                   std::to_string(groups_.size()) + " groups)");
  std::vector<const trace::MeasurementTrace*> out;
  out.reserve(groups_[group].size());
  for (const std::size_t i : groups_[group]) out.push_back(&traces_[i]);
  return out;
}

void write_catalog(const std::string& dir, const std::string& catalog_name,
                   const trace::Campaign& campaign) {
  namespace fs = std::filesystem;
  if (campaign.trips.empty()) fail(dir, "refusing to write an empty catalog");
  if (catalog_name.empty() ||
      catalog_name.find_first_of(" \t\n") != std::string::npos)
    fail(dir, "catalog name must be a single non-empty token");

  std::map<std::pair<int, int>, std::set<int>> fleets;
  for (const trace::MeasurementTrace& t : campaign.trips) {
    if (!t.vehicle.valid())
      fail(dir, "trace (day " + std::to_string(t.day) + ", trip " +
                    std::to_string(t.trip) +
                    ") names no logging vehicle; legacy single-vehicle "
                    "traces cannot form a catalog");
    if (t.testbed != campaign.trips.front().testbed)
      fail(dir, "traces from different testbeds ('" +
                    campaign.trips.front().testbed + "' vs '" + t.testbed +
                    "')");
    if (!fleets[{t.day, t.trip}].insert(t.vehicle.value()).second)
      fail(dir, "duplicate trace for day " + std::to_string(t.day) +
                    " trip " + std::to_string(t.trip) + " vehicle " +
                    t.vehicle.to_string());
  }
  const std::set<int>& fleet = fleets.begin()->second;
  for (const auto& [key, vehicles] : fleets) {
    if (vehicles != fleet)
      fail(dir, "trip (day " + std::to_string(key.first) + ", trip " +
                    std::to_string(key.second) +
                    ") has a different vehicle set than the first trip");
  }

  const fs::path root(dir);
  fs::create_directories(root);
  std::ofstream manifest(root / kManifestName);
  if (!manifest)
    fail(dir, "cannot write " + (root / kManifestName).string());
  manifest << kMagic << "\n";
  manifest << "catalog " << catalog_name << " testbed "
           << campaign.trips.front().testbed << " fleet " << fleet.size()
           << "\n";
  for (const trace::MeasurementTrace& t : campaign.trips) {
    const std::string file = "day" + std::to_string(t.day) + "_trip" +
                             std::to_string(t.trip) + "_veh" +
                             std::to_string(t.vehicle.value()) + ".vifitrace";
    trace::save_trace_file(t, (root / file).string());
    manifest << "trace " << file << " day " << t.day << " trip " << t.trip
             << " vehicle " << t.vehicle.value() << "\n";
  }
}

namespace {

std::mutex g_cache_mu;
std::map<std::string, std::shared_ptr<const TraceCatalog>>* g_cache = nullptr;

std::string cache_key(const std::string& dir) {
  std::error_code ec;
  const auto canonical = std::filesystem::weakly_canonical(dir, ec);
  return ec ? dir : canonical.string();
}

}  // namespace

std::shared_ptr<const TraceCatalog> load_catalog_shared(
    const std::string& dir) {
  const std::string key = cache_key(dir);
  {
    const std::lock_guard<std::mutex> lock(g_cache_mu);
    if (g_cache != nullptr) {
      const auto it = g_cache->find(key);
      if (it != g_cache->end()) return it->second;
    }
  }
  // Parse outside the lock: a big catalog must not serialise unrelated
  // workers. Two threads racing the same cold key both parse; the first
  // insert wins and both end up sharing it on the next lookup.
  auto parsed = std::make_shared<const TraceCatalog>(TraceCatalog::load(dir));
  const std::lock_guard<std::mutex> lock(g_cache_mu);
  if (g_cache == nullptr)
    g_cache = new std::map<std::string, std::shared_ptr<const TraceCatalog>>();
  const auto [it, inserted] = g_cache->emplace(key, std::move(parsed));
  return it->second;
}

void drop_catalog_cache() {
  const std::lock_guard<std::mutex> lock(g_cache_mu);
  if (g_cache != nullptr) g_cache->clear();
}

}  // namespace vifi::tracegen
