#include "tracegen/model_io.h"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace vifi::tracegen {

namespace {

constexpr const char* kMagicPrefix = "# vifi-tracemodel v";
constexpr int kVersion = 1;

[[noreturn]] void fail(int line_no, const std::string& why) {
  throw std::runtime_error("tracemodel parse error at line " +
                           std::to_string(line_no) + ": " + why);
}

/// Shortest round-trip double rendering (same scheme as runtime::ResultSink).
std::string fmt(double v) {
  char buf[40];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) throw std::runtime_error("tracemodel: bad double");
  return std::string(buf, end);
}

void save_samples(std::ostream& os, const char* tag, NodeId bs,
                  const std::vector<double>& xs) {
  os << tag << " " << bs.value() << " " << xs.size();
  for (const double x : xs) os << " " << fmt(x);
  os << "\n";
}

std::vector<double> load_samples(std::istringstream& ls, int line_no) {
  std::size_t n = 0;
  ls >> n;
  if (!ls) fail(line_no, "bad sample count");
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    ls >> xs[i];
    if (!ls) fail(line_no, "truncated sample list");
  }
  return xs;
}

}  // namespace

void save_model(const TraceModel& model, std::ostream& os) {
  os << kMagicPrefix << kVersion << "\n";
  os << "model " << model.testbed << " duration_us "
     << model.trip_duration.to_micros() << " bps " << model.beacons_per_second
     << " gap_s " << model.fit.gap_tolerance_s << " trips "
     << model.source_trips << " links " << model.links.size() << "\n";
  for (const LinkModel& l : model.links) {
    os << "link " << l.bs.value() << " rate " << fmt(l.contact_rate_hz)
       << " on_us " << l.mean_on.to_micros() << " off_us "
       << l.mean_off.to_micros() << " rssi_mean " << fmt(l.rssi_mean_dbm)
       << " rssi_sd " << fmt(l.rssi_stddev_dbm) << "\n";
    save_samples(os, "durations", l.bs, l.duration_s);
    save_samples(os, "losses", l.bs, l.loss_level);
  }
}

void save_model_file(const TraceModel& model, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  save_model(model, os);
}

TraceModel load_model(std::istream& is) {
  std::string line;
  int line_no = 1;
  if (!std::getline(is, line)) fail(line_no, "empty input");
  if (line.rfind(kMagicPrefix, 0) != 0)
    fail(line_no, "not a vifi-tracemodel file (bad magic)");
  if (line != kMagicPrefix + std::to_string(kVersion))
    fail(line_no, "unsupported version '" +
                      line.substr(std::string(kMagicPrefix).size() - 1) +
                      "' (this build reads v" + std::to_string(kVersion) +
                      ")");

  TraceModel model;
  bool have_header = false;
  std::size_t expected_links = 0;
  LinkModel* open_link = nullptr;
  bool have_durations = false, have_losses = false;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "model") {
      std::string kw;
      std::int64_t dur_us = 0;
      ls >> model.testbed >> kw >> dur_us >> kw >> model.beacons_per_second >>
          kw >> model.fit.gap_tolerance_s >> kw >> model.source_trips >> kw >>
          expected_links;
      if (!ls) fail(line_no, "bad model header");
      if (model.beacons_per_second <= 0)
        fail(line_no, "beacons_per_second must be positive");
      model.trip_duration = Time::micros(dur_us);
      have_header = true;
    } else if (tag == "link") {
      if (!have_header) fail(line_no, "link before model header");
      if (open_link != nullptr && !(have_durations && have_losses))
        fail(line_no, "previous link is missing its sample lists");
      LinkModel l;
      int id = -1;
      std::string kw;
      std::int64_t on_us = 0, off_us = 0;
      ls >> id >> kw >> l.contact_rate_hz >> kw >> on_us >> kw >> off_us >>
          kw >> l.rssi_mean_dbm >> kw >> l.rssi_stddev_dbm;
      if (!ls || id < 0) fail(line_no, "bad link line");
      l.bs = NodeId(id);
      l.mean_on = Time::micros(on_us);
      l.mean_off = Time::micros(off_us);
      model.links.push_back(std::move(l));
      open_link = &model.links.back();
      have_durations = have_losses = false;
    } else if (tag == "durations" || tag == "losses") {
      int id = -1;
      ls >> id;
      if (open_link == nullptr || id != open_link->bs.value())
        fail(line_no, tag + " line does not follow its link line");
      auto xs = load_samples(ls, line_no);
      if (tag == "durations") {
        open_link->duration_s = std::move(xs);
        have_durations = true;
      } else {
        open_link->loss_level = std::move(xs);
        have_losses = true;
      }
      // The two lists are parallel (one fitted contact per index); a
      // length mismatch would index out of bounds at synthesis time.
      if (have_durations && have_losses &&
          open_link->duration_s.size() != open_link->loss_level.size())
        fail(line_no, "link " + std::to_string(open_link->bs.value()) +
                          " has " + std::to_string(open_link->duration_s.size()) +
                          " durations but " +
                          std::to_string(open_link->loss_level.size()) +
                          " losses (parallel lists must match)");
    } else {
      fail(line_no, "unknown tag: " + tag);
    }
  }
  if (!have_header) fail(line_no, "missing model header");
  if (model.links.size() != expected_links)
    fail(line_no, "truncated input: header names " +
                      std::to_string(expected_links) + " links, found " +
                      std::to_string(model.links.size()));
  if (open_link != nullptr && !(have_durations && have_losses))
    fail(line_no, "truncated input: last link is missing its sample lists");
  return model;
}

TraceModel load_model_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  return load_model(is);
}

}  // namespace vifi::tracegen
