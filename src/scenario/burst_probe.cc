#include "scenario/burst_probe.h"

#include "util/contracts.h"

namespace vifi::scenario {

namespace {

/// Samples one vehicle's probe stream against an existing channel.
BurstProbeRun probe_one(channel::VehicularChannel& channel, NodeId bs,
                        NodeId veh, Time trip_duration, Time period,
                        double in_range_threshold) {
  BurstProbeRun run;
  run.bs = bs;
  run.vehicle = veh;
  const auto n = static_cast<std::int64_t>(trip_duration.to_micros() /
                                           period.to_micros());
  run.received.reserve(static_cast<std::size_t>(n));
  run.in_range.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const Time now = period * static_cast<double>(i);
    run.received.push_back(channel.sample_delivery(bs, veh, now));
    run.in_range.push_back(channel.geometric_reception_prob(bs, veh, now) >=
                           in_range_threshold);
  }
  return run;
}

}  // namespace

BurstProbeRun burst_probe_single(const Testbed& bed, NodeId bs,
                                 Time trip_duration, Time period, Rng rng,
                                 double in_range_threshold, NodeId vehicle) {
  VIFI_EXPECTS(period > Time::zero());
  auto channel = bed.make_channel(rng.fork("channel"));
  const NodeId veh = vehicle.valid() ? vehicle : bed.vehicle();
  VIFI_EXPECTS(bed.is_vehicle(veh));
  return probe_one(*channel, bs, veh, trip_duration, period,
                   in_range_threshold);
}

std::vector<BurstProbeRun> burst_probe_fleet(const Testbed& bed, NodeId bs,
                                             Time trip_duration, Time period,
                                             Rng rng,
                                             double in_range_threshold) {
  VIFI_EXPECTS(period > Time::zero());
  auto channel = bed.make_channel(rng.fork("channel"));
  std::vector<BurstProbeRun> runs;
  runs.reserve(bed.vehicle_ids().size());
  for (const NodeId veh : bed.vehicle_ids())
    runs.push_back(probe_one(*channel, bs, veh, trip_duration, period,
                             in_range_threshold));
  return runs;
}

PairProbeRun burst_probe_pair(const Testbed& bed, NodeId a, NodeId b,
                              Time trip_duration, Time period, Rng rng,
                              double in_range_threshold, NodeId vehicle) {
  VIFI_EXPECTS(period > Time::zero());
  PairProbeRun run;
  run.bs_a = a;
  run.bs_b = b;
  auto channel = bed.make_channel(rng.fork("channel"));
  const NodeId veh = vehicle.valid() ? vehicle : bed.vehicle();
  VIFI_EXPECTS(bed.is_vehicle(veh));
  run.vehicle = veh;
  const auto n = static_cast<std::int64_t>(trip_duration.to_micros() /
                                           period.to_micros());
  for (std::int64_t i = 0; i < n; ++i) {
    const Time now = period * static_cast<double>(i);
    // A transmits at the interval start, B half a period later (they share
    // the channel; the offset avoids collisions as in the paper's setup).
    run.a_received.push_back(channel->sample_delivery(a, veh, now));
    run.b_received.push_back(
        channel->sample_delivery(b, veh, now + period / 2.0));
    const bool in_a =
        channel->geometric_reception_prob(a, veh, now) >= in_range_threshold;
    const bool in_b =
        channel->geometric_reception_prob(b, veh, now) >= in_range_threshold;
    run.both_in_range.push_back(in_a && in_b);
  }
  return run;
}

}  // namespace vifi::scenario
