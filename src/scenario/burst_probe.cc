#include "scenario/burst_probe.h"

#include "util/contracts.h"

namespace vifi::scenario {

BurstProbeRun burst_probe_single(const Testbed& bed, NodeId bs,
                                 Time trip_duration, Time period, Rng rng,
                                 double in_range_threshold) {
  VIFI_EXPECTS(period > Time::zero());
  BurstProbeRun run;
  run.bs = bs;
  auto channel = bed.make_channel(rng.fork("channel"));
  const NodeId veh = bed.vehicle();
  const auto n = static_cast<std::int64_t>(trip_duration.to_micros() /
                                           period.to_micros());
  run.received.reserve(static_cast<std::size_t>(n));
  run.in_range.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const Time now = period * static_cast<double>(i);
    run.received.push_back(channel->sample_delivery(bs, veh, now));
    run.in_range.push_back(channel->geometric_reception_prob(bs, veh, now) >=
                           in_range_threshold);
  }
  return run;
}

PairProbeRun burst_probe_pair(const Testbed& bed, NodeId a, NodeId b,
                              Time trip_duration, Time period, Rng rng,
                              double in_range_threshold) {
  VIFI_EXPECTS(period > Time::zero());
  PairProbeRun run;
  run.bs_a = a;
  run.bs_b = b;
  auto channel = bed.make_channel(rng.fork("channel"));
  const NodeId veh = bed.vehicle();
  const auto n = static_cast<std::int64_t>(trip_duration.to_micros() /
                                           period.to_micros());
  for (std::int64_t i = 0; i < n; ++i) {
    const Time now = period * static_cast<double>(i);
    // A transmits at the interval start, B half a period later (they share
    // the channel; the offset avoids collisions as in the paper's setup).
    run.a_received.push_back(channel->sample_delivery(a, veh, now));
    run.b_received.push_back(
        channel->sample_delivery(b, veh, now + period / 2.0));
    const bool in_a =
        channel->geometric_reception_prob(a, veh, now) >= in_range_threshold;
    const bool in_b =
        channel->geometric_reception_prob(b, veh, now) >= in_range_threshold;
    run.both_in_range.push_back(in_a && in_b);
  }
  return run;
}

}  // namespace vifi::scenario
