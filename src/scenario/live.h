#pragma once

/// \file live.h
/// Assembles a live protocol run for one trip: testbed geometry + channel
/// (stochastic VanLAN-style, or a §5.1 trace-driven loss schedule) + the
/// full ViFi/BRR stack + a fresh simulator. Experiments attach application
/// workloads through the transport and run the clock.

#include <memory>

#include "apps/transport.h"
#include "channel/loss_model.h"
#include "core/system.h"
#include "scenario/testbed.h"
#include "sim/simulator.h"
#include "trace/loss_schedule.h"
#include "trace/observations.h"

namespace vifi::scenario {

/// One self-contained protocol trip (own simulator, channel and stack).
class LiveTrip {
 public:
  /// Stochastic-channel trip (the deployment methodology).
  LiveTrip(const Testbed& bed, core::SystemConfig config,
           std::uint64_t trip_seed);

  /// Trace-driven trip (the DieselNet methodology): the §5.1 loss schedule
  /// built from a beacon log replaces the stochastic channel.
  LiveTrip(const Testbed& bed, const trace::MeasurementTrace& trip,
           core::SystemConfig config, std::uint64_t trip_seed,
           bool use_bs_beacon_logs = false);

  sim::Simulator& simulator() { return sim_; }
  core::VifiSystem& system() { return *system_; }
  apps::VifiTransport& transport() { return *transport_; }
  channel::LossModel& loss_model() { return *channel_; }

  /// Starts the protocol stack and advances the clock to \p until.
  void run_until(Time until);

  /// Protocol warm-up the benches use before attaching workloads (beacons
  /// must populate anchor choice and pab gossip).
  static Time warmup() { return Time::seconds(3.0); }

 private:
  sim::Simulator sim_;
  std::unique_ptr<channel::LossModel> channel_;
  std::unique_ptr<core::VifiSystem> system_;
  std::unique_ptr<apps::VifiTransport> transport_;
  bool started_ = false;
};

}  // namespace vifi::scenario
