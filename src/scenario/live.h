#pragma once

/// \file live.h
/// Assembles a live protocol run for one trip: testbed geometry + channel
/// (stochastic VanLAN-style, or a §5.1 trace-driven loss schedule) + the
/// full ViFi/BRR stack + a fresh simulator. Experiments attach application
/// workloads through the transport and run the clock.
///
/// Fleet testbeds get the whole fleet: one ViFi client per vehicle on the
/// shared medium/backplane, and one transport per vehicle so workloads
/// attach per vehicle.

#include <memory>
#include <vector>

#include "apps/transport.h"
#include "channel/loss_model.h"
#include "coord/manager.h"
#include "core/system.h"
#include "scenario/testbed.h"
#include "sim/simulator.h"
#include "trace/loss_schedule.h"
#include "trace/observations.h"
#include "tracegen/catalog.h"

namespace vifi::scenario {

/// One self-contained protocol trip (own simulator, channel and stack).
class LiveTrip {
 public:
  /// Stochastic-channel trip (the deployment methodology). The whole fleet
  /// of \p bed rides: V vehicles, V transports.
  LiveTrip(const Testbed& bed, core::SystemConfig config,
           std::uint64_t trip_seed);

  /// Trace-driven trip (the DieselNet methodology): the §5.1 loss schedule
  /// built from a beacon log replaces the stochastic channel. \p trip's
  /// `vehicle` field names the connected vehicle (invalid = the testbed's
  /// first vehicle); the rest of the fleet has no schedule and stays deaf.
  LiveTrip(const Testbed& bed, const trace::MeasurementTrace& trip,
           core::SystemConfig config, std::uint64_t trip_seed,
           bool use_bs_beacon_logs = false);

  /// Trace-driven fleet trip: one trace per vehicle of the same trip, as
  /// generate_campaign produces for fleet testbeds.
  LiveTrip(const Testbed& bed,
           const std::vector<const trace::MeasurementTrace*>& trips,
           core::SystemConfig config, std::uint64_t trip_seed,
           bool use_bs_beacon_logs = false);

  /// Catalog replay: builds the fleet loss schedule straight from one trip
  /// group of a TraceCatalog (tracegen) — the whole-fleet form of the
  /// DieselNet methodology.
  LiveTrip(const Testbed& bed, const tracegen::TraceCatalog& catalog,
           std::size_t trip_group, core::SystemConfig config,
           std::uint64_t trip_seed, bool use_bs_beacon_logs = false);

  sim::Simulator& simulator() { return sim_; }
  core::VifiSystem& system() { return *system_; }
  /// The first (or only) vehicle's transport.
  apps::VifiTransport& transport() { return *transports_.front(); }
  /// A specific vehicle's transport.
  apps::VifiTransport& transport(sim::NodeId vehicle);
  /// One transport per vehicle, in fleet order.
  const std::vector<std::unique_ptr<apps::VifiTransport>>& transports() const {
    return transports_;
  }
  channel::LossModel& loss_model() { return *channel_; }

  /// The CoordTier manager riding this trip, or nullptr when the trip's
  /// SystemConfig left coordination off (the historical PAB-only stack).
  coord::ConnectivityManager* coord() { return coord_.get(); }

  /// Snapshot of the trip's medium accounting (per-node airtime ledger,
  /// role-tagged by VifiSystem) — the raw material for fairness metrics.
  mac::MediumStats medium_stats() const { return system_->medium().snapshot(); }

  /// Starts the protocol stack and advances the clock to \p until.
  void run_until(Time until);

  /// Protocol warm-up the benches use before attaching workloads (beacons
  /// must populate anchor choice and pab gossip).
  static Time warmup() { return Time::seconds(3.0); }

 private:
  void build_stack(const Testbed& bed, core::SystemConfig config,
                   std::uint64_t system_seed);

  sim::Simulator sim_;
  std::unique_ptr<channel::LossModel> channel_;
  std::unique_ptr<core::VifiSystem> system_;
  std::unique_ptr<coord::ConnectivityManager> coord_;
  std::vector<std::unique_ptr<apps::VifiTransport>> transports_;
  bool started_ = false;
};

}  // namespace vifi::scenario
