#pragma once

/// \file channel_plan.h
/// §6 deployment study: city-wide meshes are often engineered in a
/// cellular pattern with neighbouring BSes on different WiFi channels — a
/// pattern that destroys the same-channel diversity ViFi feeds on. The
/// paper's proposed fix: give each BS an auxiliary radio tuned so that a
/// BS's neighbours can still overhear the BS-client channel, transmitting
/// on it only to relay.
///
/// `ChannelizedLoss` wraps any base loss model with channel gating:
///
///   * every BS serves clients on its own primary channel;
///   * the vehicle's data channel follows its current anchor;
///   * with aux radios, BSes *hear* all channels but still transmit to the
///     vehicle on the vehicle's channel (relaying, per §6);
///   * without aux radios, cross-channel BSes are deaf to each other and
///     to vehicles tuned elsewhere;
///   * beacons are assumed visible across channels (clients scan; the
///     paper treats scanning as a solved problem, §3.1).
///
/// Because the wrapper cannot see frame types, beacon visibility is
/// modelled by keeping *BS-to-vehicle* reception open in both
/// configurations; the gating bites on what matters for diversity — which
/// BSes can overhear the vehicle's transmissions and each other.

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "channel/loss_model.h"

namespace vifi::scenario {

/// Static channel assignment per BS.
class ChannelPlan {
 public:
  void assign(sim::NodeId bs, int channel) { channels_[bs] = channel; }
  int channel_of(sim::NodeId bs) const {
    const auto it = channels_.find(bs);
    return it == channels_.end() ? 0 : it->second;
  }

  /// Round-robin assignment over `n_channels` in id order (the cellular
  /// pattern §6 describes).
  static ChannelPlan cellular(const std::vector<sim::NodeId>& bs_ids,
                              int n_channels) {
    ChannelPlan plan;
    int next = 0;
    for (sim::NodeId bs : bs_ids) {
      plan.assign(bs, next);
      next = (next + 1) % n_channels;
    }
    return plan;
  }

 private:
  std::map<sim::NodeId, int> channels_;
};

class ChannelizedLoss final : public channel::LossModel {
 public:
  /// Reports the channel a given vehicle is currently serving on (its
  /// anchor's primary channel); called only for registered vehicles.
  using ServingChannelFn = std::function<int(sim::NodeId vehicle)>;

  /// Fleet form: every id in \p vehicles is gated by its *own* serving
  /// channel. (The single-vehicle predecessor kept one `vehicle_` /
  /// `vehicle_channel_` pair, so a second vehicle fell through to the
  /// BS-to-BS branch and was silently gated as a channel-0 BS.)
  ChannelizedLoss(channel::LossModel& base, ChannelPlan plan,
                  std::vector<sim::NodeId> vehicles, bool aux_radios,
                  ServingChannelFn serving_channel)
      : base_(base),
        plan_(std::move(plan)),
        vehicles_(vehicles.begin(), vehicles.end()),
        aux_radios_(aux_radios),
        serving_channel_(std::move(serving_channel)) {}

  /// Single-vehicle convenience, matching the original interface.
  ChannelizedLoss(channel::LossModel& base, ChannelPlan plan,
                  sim::NodeId vehicle, bool aux_radios,
                  std::function<int()> vehicle_channel)
      : ChannelizedLoss(base, std::move(plan),
                        std::vector<sim::NodeId>{vehicle}, aux_radios,
                        [fn = std::move(vehicle_channel)](sim::NodeId) {
                          return fn();
                        }) {}

  bool sample_delivery(sim::NodeId tx, sim::NodeId rx, Time now) override {
    const bool audible = can_hear(tx, rx);
    // Always advance the base model so stochastic state stays in sync.
    const bool delivered = base_.sample_delivery(tx, rx, now);
    return audible && delivered;
  }

  double reception_prob(sim::NodeId tx, sim::NodeId rx,
                        Time now) const override {
    return can_hear(tx, rx) ? base_.reception_prob(tx, rx, now) : 0.0;
  }

 private:
  bool is_vehicle(sim::NodeId id) const { return vehicles_.contains(id); }

  bool can_hear(sim::NodeId tx, sim::NodeId rx) const {
    if (is_vehicle(tx)) {
      if (is_vehicle(rx)) {
        // Vehicle-to-vehicle overhearing requires a shared serving channel
        // (or aux listen-everywhere radios).
        return aux_radios_ || serving_channel_(tx) == serving_channel_(rx);
      }
      // A vehicle transmits on its serving channel; a BS hears it if tuned
      // there or if it carries an aux (listen-everywhere) radio.
      return aux_radios_ || plan_.channel_of(rx) == serving_channel_(tx);
    }
    if (is_vehicle(rx)) {
      // BSes address a vehicle on that vehicle's serving channel (anchor
      // natively, relays via the aux radio); beacon scanning keeps
      // discovery open.
      return true;
    }
    // BS-to-BS overhearing.
    return aux_radios_ ||
           plan_.channel_of(tx) == plan_.channel_of(rx);
  }

  channel::LossModel& base_;
  ChannelPlan plan_;
  std::set<sim::NodeId> vehicles_;
  bool aux_radios_;
  ServingChannelFn serving_channel_;
};

}  // namespace vifi::scenario
