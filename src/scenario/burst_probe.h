#pragma once

/// \file burst_probe.h
/// The Fig. 6 micro-experiments: dense probing that exposes loss burstiness
/// and cross-BS (in)dependence.
///
///  (a) one BS sends a packet every 10 ms for a trip; a different sender is
///      picked per trip;
///  (b) a chosen pair of BSes each send a packet every 20 ms.

#include <vector>

#include "scenario/testbed.h"
#include "util/rng.h"

namespace vifi::scenario {

/// Outcome of dense single-BS probing over one trip, as observed by one
/// vehicle of the fleet.
struct BurstProbeRun {
  NodeId bs;
  NodeId vehicle;              ///< The observing vehicle.
  std::vector<bool> received;  ///< Per probe, in time order.
  std::vector<bool> in_range;  ///< Geometric reception prob >= threshold.
};

/// Fig. 6(a): probes every \p period from \p bs to a moving vehicle
/// (\p vehicle invalid = the testbed's first vehicle).
BurstProbeRun burst_probe_single(const Testbed& bed, NodeId bs,
                                 Time trip_duration, Time period, Rng rng,
                                 double in_range_threshold = 0.2,
                                 NodeId vehicle = NodeId{});

/// Per-vehicle observation logs of the same probe stream: every vehicle of
/// the fleet samples the shared channel realisation, in fleet order.
std::vector<BurstProbeRun> burst_probe_fleet(const Testbed& bed, NodeId bs,
                                             Time trip_duration, Time period,
                                             Rng rng,
                                             double in_range_threshold = 0.2);

/// Fig. 6(b): interleaved probes from two BSes; probe i of A and probe i of
/// B belong to the same 20 ms interval.
struct PairProbeRun {
  NodeId bs_a;
  NodeId bs_b;
  NodeId vehicle;  ///< The observing vehicle.
  std::vector<bool> a_received;
  std::vector<bool> b_received;
  std::vector<bool> both_in_range;
};

PairProbeRun burst_probe_pair(const Testbed& bed, NodeId a, NodeId b,
                              Time trip_duration, Time period, Rng rng,
                              double in_range_threshold = 0.2,
                              NodeId vehicle = NodeId{});

}  // namespace vifi::scenario
