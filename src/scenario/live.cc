#include "scenario/live.h"

#include <set>

#include "util/contracts.h"

namespace vifi::scenario {

void LiveTrip::build_stack(const Testbed& bed, core::SystemConfig config,
                           std::uint64_t system_seed) {
  config.seed = system_seed;
  system_ = std::make_unique<core::VifiSystem>(sim_, *channel_, bed.bs_ids(),
                                               bed.vehicle_ids(),
                                               bed.wired_host(), config);
  if (config.coord.enabled) {
    coord_ = std::make_unique<coord::ConnectivityManager>(sim_, config.coord);
    coord::attach(*system_, *coord_);
  }
  if (bed.fleet_size() == 1) {
    // Single-vehicle form: the transport keeps the historical catch-all
    // host handler, so callers may still override it wholesale.
    transports_.push_back(std::make_unique<apps::VifiTransport>(*system_));
  } else {
    for (const NodeId v : bed.vehicle_ids())
      transports_.push_back(std::make_unique<apps::VifiTransport>(*system_, v));
  }
}

LiveTrip::LiveTrip(const Testbed& bed, core::SystemConfig config,
                   std::uint64_t trip_seed) {
  Rng root(trip_seed);
  channel_ = bed.make_channel(root.fork("channel"));
  build_stack(bed, config, root.fork("system").next_u64());
}

LiveTrip::LiveTrip(const Testbed& bed, const trace::MeasurementTrace& trip,
                   core::SystemConfig config, std::uint64_t trip_seed,
                   bool use_bs_beacon_logs) {
  Rng root(trip_seed);
  trace::LossScheduleOptions options;
  options.vehicle = trip.vehicle.valid() ? trip.vehicle : bed.vehicle();
  options.use_bs_beacon_logs = use_bs_beacon_logs;
  channel_ = trace::build_loss_schedule(trip, options, root.fork("schedule"));
  build_stack(bed, config, root.fork("system").next_u64());
}

LiveTrip::LiveTrip(const Testbed& bed,
                   const std::vector<const trace::MeasurementTrace*>& trips,
                   core::SystemConfig config, std::uint64_t trip_seed,
                   bool use_bs_beacon_logs) {
  VIFI_EXPECTS(trips.size() == static_cast<std::size_t>(bed.fleet_size()));
  // Mismatched traces (recorded on a testbed with a different id layout)
  // would register schedules under foreign ids and leave the whole fleet
  // silently deaf — fail loudly instead.
  std::set<NodeId> seen;
  for (const trace::MeasurementTrace* trip : trips) {
    VIFI_EXPECTS(trip != nullptr);
    if (!bed.is_vehicle(trip->vehicle))
      throw ContractViolation(
          "LiveTrip: trace logged by " + trip->vehicle.to_string() +
          ", which is not a vehicle of this testbed");
    if (!seen.insert(trip->vehicle).second)
      throw ContractViolation("LiveTrip: duplicate trace for vehicle " +
                              trip->vehicle.to_string());
  }
  Rng root(trip_seed);
  channel_ = trace::build_fleet_loss_schedule(trips, use_bs_beacon_logs,
                                              root.fork("schedule"));
  build_stack(bed, config, root.fork("system").next_u64());
}

LiveTrip::LiveTrip(const Testbed& bed, const tracegen::TraceCatalog& catalog,
                   std::size_t trip_group, core::SystemConfig config,
                   std::uint64_t trip_seed, bool use_bs_beacon_logs)
    : LiveTrip(bed, catalog.fleet_trip(trip_group), config, trip_seed,
               use_bs_beacon_logs) {}

apps::VifiTransport& LiveTrip::transport(sim::NodeId vehicle) {
  for (auto& t : transports_)
    if (t->vehicle() == vehicle) return *t;
  throw ContractViolation("LiveTrip: no transport for vehicle " +
                          vehicle.to_string());
}

void LiveTrip::run_until(Time until) {
  if (!started_) {
    started_ = true;
    system_->start();
    if (coord_ != nullptr) coord_->start();
  }
  VIFI_EXPECTS(until >= sim_.now());
  sim_.run_until(until);
}

}  // namespace vifi::scenario
