#include "scenario/live.h"

#include "util/contracts.h"

namespace vifi::scenario {

LiveTrip::LiveTrip(const Testbed& bed, core::SystemConfig config,
                   std::uint64_t trip_seed) {
  Rng root(trip_seed);
  channel_ = bed.make_channel(root.fork("channel"));
  config.seed = root.fork("system").next_u64();
  system_ = std::make_unique<core::VifiSystem>(
      sim_, *channel_, bed.bs_ids(), bed.vehicle(), bed.wired_host(), config);
  transport_ = std::make_unique<apps::VifiTransport>(*system_);
}

LiveTrip::LiveTrip(const Testbed& bed, const trace::MeasurementTrace& trip,
                   core::SystemConfig config, std::uint64_t trip_seed,
                   bool use_bs_beacon_logs) {
  Rng root(trip_seed);
  trace::LossScheduleOptions options;
  options.vehicle = bed.vehicle();
  options.use_bs_beacon_logs = use_bs_beacon_logs;
  channel_ = trace::build_loss_schedule(trip, options, root.fork("schedule"));
  config.seed = root.fork("system").next_u64();
  system_ = std::make_unique<core::VifiSystem>(
      sim_, *channel_, bed.bs_ids(), bed.vehicle(), bed.wired_host(), config);
  transport_ = std::make_unique<apps::VifiTransport>(*system_);
}

void LiveTrip::run_until(Time until) {
  if (!started_) {
    started_ = true;
    system_->start();
  }
  VIFI_EXPECTS(until >= sim_.now());
  sim_.run_until(until);
}

}  // namespace vifi::scenario
