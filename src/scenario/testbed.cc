#include "scenario/testbed.h"

#include "util/contracts.h"

namespace vifi::scenario {

Testbed::Testbed(mobility::Layout layout,
                 channel::VehicularChannelParams channel_params)
    : layout_(std::move(layout)), channel_params_(channel_params) {
  const int n = static_cast<int>(layout_.bs_positions.size());
  VIFI_EXPECTS(n > 0);
  bs_ids_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) bs_ids_.push_back(NodeId(i));
  vehicle_ = NodeId(n);
  wired_host_ = NodeId(n + 1);
  vehicle_mobility_ = mobility::make_vehicle_mobility(layout_);
}

mobility::Vec2 Testbed::bs_position(NodeId bs) const {
  VIFI_EXPECTS(bs.valid() &&
               bs.value() < static_cast<int>(layout_.bs_positions.size()));
  return layout_.bs_positions[static_cast<std::size_t>(bs.value())];
}

mobility::Vec2 Testbed::position(NodeId node, Time t) const {
  if (node == vehicle_) return vehicle_mobility_->position_at(t);
  if (node == wired_host_) {
    // The wired host has no radio; park it far outside the radio plane.
    return {-1e9, -1e9};
  }
  return bs_position(node);
}

channel::VehicularChannel::PositionFn Testbed::position_fn() const {
  return [this](NodeId node, Time t) { return position(node, t); };
}

std::unique_ptr<channel::VehicularChannel> Testbed::make_channel(
    Rng rng) const {
  auto ch = std::make_unique<channel::VehicularChannel>(channel_params_,
                                                        position_fn(), rng);
  ch->mark_mobile(vehicle_);
  return ch;
}

Time Testbed::trip_duration() const {
  mobility::WaypointPath path(layout_.route_waypoints, /*closed=*/true);
  if (layout_.stops.empty())
    return Time::seconds(path.total_length() / layout_.cruise_mps);
  Time dwell = Time::zero();
  for (const auto& s : layout_.stops) dwell += s.dwell;
  return Time::seconds(path.total_length() / layout_.cruise_mps) + dwell;
}

Testbed make_vanlan() {
  channel::VehicularChannelParams params;  // defaults are VanLAN-calibrated
  return Testbed(mobility::vanlan_layout(), params);
}

Testbed make_dieselnet(int channel) {
  channel::VehicularChannelParams params;
  // Town environment: shorter usable range (buildings, foliage, non-WiFi
  // interferers) and slightly longer gray periods than the campus.
  params.distance.midpoint_m = 130.0;
  params.distance.width_m = 30.0;
  params.gray_mean_off = Time::seconds(45.0);
  params.gray_mean_on = Time::seconds(5.0);
  return Testbed(mobility::dieselnet_layout(channel), params);
}

}  // namespace vifi::scenario
