#include "scenario/testbed.h"

#include <algorithm>
#include <string>

#include "util/contracts.h"

namespace vifi::scenario {

Testbed::Testbed(mobility::Layout layout,
                 channel::VehicularChannelParams channel_params,
                 FleetSpec fleet)
    : layout_(std::move(layout)), channel_params_(channel_params) {
  const int n = static_cast<int>(layout_.bs_positions.size());
  VIFI_EXPECTS(n > 0);
  VIFI_EXPECTS(fleet.vehicles > 0);
  VIFI_EXPECTS(fleet.phases.empty() ||
               fleet.phases.size() == static_cast<std::size_t>(fleet.vehicles));
  bs_ids_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) bs_ids_.push_back(NodeId(i));
  for (int v = 0; v < fleet.vehicles; ++v) {
    vehicle_ids_.push_back(NodeId(n + v));
    const double phase = fleet.phases.empty()
                             ? static_cast<double>(v) /
                                   static_cast<double>(fleet.vehicles)
                             : fleet.phases[static_cast<std::size_t>(v)];
    vehicle_mobility_.push_back(mobility::make_vehicle_mobility(layout_, phase));
  }
  wired_host_ = NodeId(n + fleet.vehicles);
}

bool Testbed::is_vehicle(NodeId node) const {
  return node.valid() && node >= vehicle_ids_.front() &&
         node <= vehicle_ids_.back();
}

mobility::Vec2 Testbed::bs_position(NodeId bs) const {
  VIFI_EXPECTS(bs.valid() &&
               bs.value() < static_cast<int>(layout_.bs_positions.size()));
  return layout_.bs_positions[static_cast<std::size_t>(bs.value())];
}

mobility::Vec2 Testbed::position(NodeId node, Time t) const {
  if (is_vehicle(node)) {
    const auto i =
        static_cast<std::size_t>(node.value() - vehicle_ids_.front().value());
    return vehicle_mobility_[i]->position_at(t);
  }
  if (node == wired_host_) {
    // The wired host has no radio; park it far outside the radio plane.
    return {-1e9, -1e9};
  }
  if (!node.valid() || node > wired_host_) {
    throw ContractViolation(
        "Testbed::position: node " + node.to_string() + " is not part of " +
        layout_.name + " (valid ids: BSes 0.." +
        std::to_string(bs_ids_.size() - 1) + ", vehicles " +
        vehicle_ids_.front().to_string() + ".." +
        vehicle_ids_.back().to_string() + ", wired host " +
        wired_host_.to_string() + ")");
  }
  return bs_position(node);
}

channel::VehicularChannel::PositionFn Testbed::position_fn() const {
  return [this](NodeId node, Time t) { return position(node, t); };
}

std::unique_ptr<channel::VehicularChannel> Testbed::make_channel(
    Rng rng) const {
  auto ch = std::make_unique<channel::VehicularChannel>(channel_params_,
                                                        position_fn(), rng);
  for (NodeId v : vehicle_ids_) ch->mark_mobile(v);
  return ch;
}

mac::SpatialCulling Testbed::make_culling(double audibility_threshold) const {
  mac::SpatialCulling cull;
  cull.position = position_fn();
  cull.max_audible_m =
      channel::DistanceLossCurve(channel_params_.distance)
          .range_for(audibility_threshold);
  // Margin per endpoint between refreshes: the route cruise speed with
  // generous slack (buses dwell, shuttles hold the speed limit).
  cull.refresh = Time::millis(250);
  cull.margin_m = std::max(10.0, 3.0 * layout_.cruise_mps * 0.25);
  return cull;
}

Time Testbed::trip_duration() const {
  return mobility::route_cycle_time(layout_);
}

Testbed make_vanlan(int vehicles) {
  channel::VehicularChannelParams params;  // defaults are VanLAN-calibrated
  FleetSpec fleet;
  fleet.vehicles = vehicles;
  return Testbed(mobility::vanlan_layout(), params, std::move(fleet));
}

Testbed make_dieselnet(int channel, int vehicles) {
  FleetSpec fleet;
  fleet.vehicles = vehicles;
  return make_dieselnet_fleet(channel, std::move(fleet));
}

Testbed make_dieselnet_fleet(int channel, FleetSpec fleet) {
  channel::VehicularChannelParams params;
  // Town environment: shorter usable range (buildings, foliage, non-WiFi
  // interferers) and slightly longer gray periods than the campus.
  params.distance.midpoint_m = 130.0;
  params.distance.width_m = 30.0;
  params.gray_mean_off = Time::seconds(45.0);
  params.gray_mean_on = Time::seconds(5.0);
  return Testbed(mobility::dieselnet_layout(channel), params,
                 std::move(fleet));
}

}  // namespace vifi::scenario
