#pragma once

/// \file campaign.h
/// The measurement study generator (§3.1): every node broadcasts a 500-byte
/// probe at 1 Mbps every 100 ms plus ~10 beacons/s; the vehicle (and, on
/// VanLAN, the BSes) log what they decode. Probe outcomes are sampled
/// directly through the channel model — §3.1 verified that
/// self-interference of this light workload is negligible, so skipping MAC
/// contention preserves the measured statistics while being ~20x faster.
/// Live protocol experiments (ViFi vs BRR) use the full MAC.

#include "scenario/testbed.h"
#include "trace/observations.h"
#include "util/rng.h"

namespace vifi::scenario {

struct CampaignConfig {
  int days = 3;
  int trips_per_day = 6;
  /// Trip length; zero means one full route lap.
  Time trip_duration = Time::zero();
  std::uint64_t seed = 1;
  /// Log 100 ms probe slots (§3.1 handoff study). DieselNet vehicles could
  /// not probe the BSes, so their campaigns log beacons only.
  bool log_probes = true;
  /// Log BS-to-BS beacons (possible only on VanLAN, §5.1 validation).
  bool log_bs_beacons = false;
  int beacons_per_second = 10;
};

/// Runs the campaign: days x trips_per_day independent trips, each with a
/// fresh channel realisation (a trip starts with uncorrelated fading).
/// Fleet testbeds produce one MeasurementTrace per vehicle per trip — all
/// vehicles of a trip share its channel realisation, and the campaign's
/// trips are ordered by (day, trip, vehicle).
trace::Campaign generate_campaign(const Testbed& bed,
                                  const CampaignConfig& config);

/// Restricts a trace to a subset of BSes (drops observations of the rest);
/// used for the BS-density sweep of Fig. 2.
trace::MeasurementTrace filter_to_bs_subset(
    const trace::MeasurementTrace& t, const std::vector<NodeId>& subset);

}  // namespace vifi::scenario
