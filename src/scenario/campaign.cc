#include "scenario/campaign.h"

#include <algorithm>
#include <string>

#include "channel/distance_loss.h"
#include "util/contracts.h"

namespace vifi::scenario {

namespace {

/// One trip of the whole fleet: every vehicle rides the same channel
/// realisation (they share the campus at the same instant) and each logs
/// its own MeasurementTrace. For a single-vehicle testbed the channel draw
/// order — and therefore the generated trace — is identical to the
/// original single-vehicle generator.
std::vector<trace::MeasurementTrace> generate_trip(
    const Testbed& bed, const CampaignConfig& config, int day, int trip,
    Rng rng) {
  const std::vector<NodeId>& vehicles = bed.vehicle_ids();
  std::vector<trace::MeasurementTrace> logs(vehicles.size());
  const Time duration = config.trip_duration.is_zero() ? bed.trip_duration()
                                                       : config.trip_duration;
  for (std::size_t v = 0; v < vehicles.size(); ++v) {
    trace::MeasurementTrace& t = logs[v];
    t.testbed = bed.layout().name;
    t.day = day;
    t.trip = trip;
    t.vehicle = vehicles[v];
    t.duration = duration;
    t.beacons_per_second = config.beacons_per_second;
    t.bs_ids = bed.bs_ids();
  }

  auto channel = bed.make_channel(rng.fork("channel"));
  Rng rssi_rng = rng.fork("rssi");

  const Time slot_len = Time::millis(100);
  const auto n_slots =
      static_cast<std::int64_t>(duration.to_micros() / slot_len.to_micros());
  const int beacons_per_slot = std::max(1, config.beacons_per_second / 10);

  for (std::int64_t i = 0; i < n_slots; ++i) {
    const Time now = slot_len * static_cast<double>(i);

    if (config.log_probes) {
      for (std::size_t v = 0; v < vehicles.size(); ++v) {
        const NodeId veh = vehicles[v];
        trace::ProbeSlot slot;
        slot.t = now;
        slot.vehicle_pos = bed.position(veh, now);
        for (NodeId bs : bed.bs_ids()) {
          if (channel->sample_delivery(bs, veh, now))
            slot.down_heard.push_back(bs);
          if (channel->sample_delivery(veh, bs, now))
            slot.up_heard_by.push_back(bs);
        }
        logs[v].slots.push_back(std::move(slot));
      }
    }

    // Beacons within this slot (10/s => 1 per 100 ms slot).
    for (int b = 0; b < beacons_per_slot; ++b) {
      const Time bt = now + Time::millis(37);  // fixed offset inside slot
      for (std::size_t v = 0; v < vehicles.size(); ++v) {
        const NodeId veh = vehicles[v];
        // Slot-start GPS fix, as the original generator recorded it — keeps
        // single-vehicle campaign bytes identical across the fleet refactor.
        const mobility::Vec2 vpos = bed.position(veh, now);
        for (NodeId bs : bed.bs_ids()) {
          if (!channel->sample_delivery(bs, veh, bt)) continue;
          const double d = mobility::distance(bed.position(bs, bt), vpos);
          logs[v].vehicle_beacons.push_back(
              {bt, bs, channel::synthesize_rssi_dbm(d, rssi_rng)});
        }
      }
      if (config.log_bs_beacons) {
        for (NodeId tx : bed.bs_ids())
          for (NodeId rx : bed.bs_ids()) {
            if (tx == rx) continue;
            if (channel->sample_delivery(tx, rx, bt)) {
              // BS-side logs are shared infrastructure; mirror them into
              // every vehicle's trace so any one trace can drive the §5.1
              // validation schedule.
              for (auto& t : logs) t.bs_beacons.push_back({bt, tx, rx});
            }
          }
      }
    }
  }
  return logs;
}

}  // namespace

trace::Campaign generate_campaign(const Testbed& bed,
                                  const CampaignConfig& config) {
  VIFI_EXPECTS(config.days > 0 && config.trips_per_day > 0);
  trace::Campaign campaign;
  campaign.testbed = bed.layout().name;
  Rng root(config.seed);
  for (int day = 0; day < config.days; ++day) {
    for (int trip = 0; trip < config.trips_per_day; ++trip) {
      Rng trip_rng = root.fork("day" + std::to_string(day) + "/trip" +
                               std::to_string(trip));
      auto logs = generate_trip(bed, config, day, trip, trip_rng);
      for (auto& t : logs) campaign.trips.push_back(std::move(t));
    }
  }
  return campaign;
}

trace::MeasurementTrace filter_to_bs_subset(
    const trace::MeasurementTrace& t, const std::vector<NodeId>& subset) {
  auto keep = [&subset](NodeId id) {
    return std::find(subset.begin(), subset.end(), id) != subset.end();
  };
  trace::MeasurementTrace out = t;
  out.bs_ids.clear();
  for (NodeId id : t.bs_ids)
    if (keep(id)) out.bs_ids.push_back(id);
  for (auto& slot : out.slots) {
    std::erase_if(slot.down_heard, [&](NodeId id) { return !keep(id); });
    std::erase_if(slot.up_heard_by, [&](NodeId id) { return !keep(id); });
  }
  std::erase_if(out.vehicle_beacons,
                [&](const trace::BeaconObs& b) { return !keep(b.bs); });
  std::erase_if(out.bs_beacons, [&](const trace::BsBeaconObs& b) {
    return !keep(b.tx) || !keep(b.rx);
  });
  return out;
}

}  // namespace vifi::scenario
