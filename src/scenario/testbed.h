#pragma once

/// \file testbed.h
/// Binds a geometric layout to node identities, mobility, and channel
/// parameters — everything needed to instantiate channels, media and
/// protocol stacks for one of the two testbeds.
///
/// The paper's testbeds were fleets: VanLAN ran two shuttles (§2.1) and
/// DieselNet is a whole bus system. A Testbed therefore carries V >= 1
/// vehicles with per-vehicle mobility (route offsets for shuttles, stop
/// schedule phases for buses).
///
/// Node id convention: BSes are 0..n-1 (matching layout order), vehicles
/// are n..n+V-1 (matching fleet order), and the wired correspondent host is
/// n+V. Ids beyond the wired host do not exist in the testbed.

#include <memory>
#include <vector>

#include "channel/vehicular.h"
#include "mac/medium.h"
#include "mobility/layouts.h"
#include "mobility/mobility.h"
#include "sim/ids.h"

namespace vifi::scenario {

using sim::NodeId;

/// Describes the vehicle fleet a testbed runs. The default is the paper's
/// single instrumented vehicle; VanLAN itself ran two vans and DieselNet
/// variants scale to whole bus systems.
struct FleetSpec {
  int vehicles = 1;
  /// Per-vehicle phase along the route cycle, each in [0, 1): shuttles get
  /// a route offset of phase x route length, buses a time offset of
  /// phase x lap time against the shared stop schedule. Empty = spread the
  /// fleet evenly (vehicle i at phase i / V).
  std::vector<double> phases;
};

class Testbed {
 public:
  Testbed(mobility::Layout layout,
          channel::VehicularChannelParams channel_params,
          FleetSpec fleet = {});

  const mobility::Layout& layout() const { return layout_; }
  const channel::VehicularChannelParams& channel_params() const {
    return channel_params_;
  }

  const std::vector<NodeId>& bs_ids() const { return bs_ids_; }
  /// All vehicle ids, in fleet order (ids n..n+V-1).
  const std::vector<NodeId>& vehicle_ids() const { return vehicle_ids_; }
  /// The first (or only) vehicle — the paper's instrumented one.
  NodeId vehicle() const { return vehicle_ids_.front(); }
  int fleet_size() const { return static_cast<int>(vehicle_ids_.size()); }
  NodeId wired_host() const { return wired_host_; }
  bool is_vehicle(NodeId node) const;

  mobility::Vec2 bs_position(NodeId bs) const;
  /// Position of any testbed node at time \p t. Precondition: \p node is a
  /// BS, a vehicle, or the wired host of *this* testbed.
  mobility::Vec2 position(NodeId node, Time t) const;

  /// Position callback for channel models. The Testbed must outlive any
  /// channel constructed with this.
  channel::VehicularChannel::PositionFn position_fn() const;

  /// A fresh stochastic channel with every vehicle marked mobile.
  /// Deterministic per \p rng.
  std::unique_ptr<channel::VehicularChannel> make_channel(Rng rng) const;

  /// Spatial-culling configuration for media running on this testbed:
  /// positions come from the testbed (which must outlive the medium), and
  /// the max audible range inverts the distance curve at
  /// \p audibility_threshold — a provable bound, since every stochastic
  /// multiplier the vehicular channel composes on top of the curve is
  /// <= 1. The motion margin comfortably covers the route cruise speed at
  /// the default refresh interval.
  mac::SpatialCulling make_culling(double audibility_threshold = 0.05) const;

  /// Duration of one trip (one lap of the route, including dwells).
  Time trip_duration() const;

 private:
  mobility::Layout layout_;
  channel::VehicularChannelParams channel_params_;
  std::vector<NodeId> bs_ids_;
  std::vector<NodeId> vehicle_ids_;
  NodeId wired_host_;
  std::vector<std::unique_ptr<mobility::MobilityModel>> vehicle_mobility_;
};

/// VanLAN with its default channel calibration; \p vehicles shuttles evenly
/// out of phase around the campus loop.
Testbed make_vanlan(int vehicles = 1);

/// DieselNet (channel 1 or 6) — beacon-logging only in the paper; the
/// harsher town channel reflects obstructions and non-WiFi interference.
/// \p vehicles buses staggered on the shared stop schedule.
Testbed make_dieselnet(int channel, int vehicles = 1);

/// DieselNet variant with an explicit fleet (V buses with chosen phases) —
/// the generator for bus-system-scale contention studies.
Testbed make_dieselnet_fleet(int channel, FleetSpec fleet);

}  // namespace vifi::scenario
