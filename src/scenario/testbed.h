#pragma once

/// \file testbed.h
/// Binds a geometric layout to node identities, mobility, and channel
/// parameters — everything needed to instantiate channels, media and
/// protocol stacks for one of the two testbeds.
///
/// Node id convention: BSes are 0..n-1 (matching layout order), the vehicle
/// is n, and the wired correspondent host is n+1.

#include <memory>
#include <vector>

#include "channel/vehicular.h"
#include "mobility/layouts.h"
#include "mobility/mobility.h"
#include "sim/ids.h"

namespace vifi::scenario {

using sim::NodeId;

class Testbed {
 public:
  explicit Testbed(mobility::Layout layout,
                   channel::VehicularChannelParams channel_params);

  const mobility::Layout& layout() const { return layout_; }
  const channel::VehicularChannelParams& channel_params() const {
    return channel_params_;
  }

  const std::vector<NodeId>& bs_ids() const { return bs_ids_; }
  NodeId vehicle() const { return vehicle_; }
  NodeId wired_host() const { return wired_host_; }

  mobility::Vec2 bs_position(NodeId bs) const;
  mobility::Vec2 position(NodeId node, Time t) const;

  /// Position callback for channel models. The Testbed must outlive any
  /// channel constructed with this.
  channel::VehicularChannel::PositionFn position_fn() const;

  /// A fresh stochastic channel with mobile-node marking applied.
  /// Deterministic per \p rng.
  std::unique_ptr<channel::VehicularChannel> make_channel(Rng rng) const;

  /// Duration of one trip (one lap of the route, including dwells).
  Time trip_duration() const;

 private:
  mobility::Layout layout_;
  channel::VehicularChannelParams channel_params_;
  std::vector<NodeId> bs_ids_;
  NodeId vehicle_;
  NodeId wired_host_;
  std::unique_ptr<mobility::MobilityModel> vehicle_mobility_;
};

/// VanLAN with its default channel calibration.
Testbed make_vanlan();

/// DieselNet (channel 1 or 6) — beacon-logging only in the paper; the
/// harsher town channel reflects obstructions and non-WiFi interference.
Testbed make_dieselnet(int channel);

}  // namespace vifi::scenario
