#pragma once

/// \file trace_io.h
/// Text serialisation of measurement traces, in the spirit of the public
/// DieselNet traces the paper releases ("Our traces are available at
/// traces.cs.umass.edu"). Line-oriented, versioned, diff-friendly.

#include <iosfwd>
#include <string>

#include "trace/observations.h"

namespace vifi::trace {

/// Writes one trip in `vifi-trace v1` format.
void save_trace(const MeasurementTrace& t, std::ostream& os);
void save_trace_file(const MeasurementTrace& t, const std::string& path);

/// Parses one trip. Throws std::runtime_error on malformed input.
MeasurementTrace load_trace(std::istream& is);
MeasurementTrace load_trace_file(const std::string& path);

}  // namespace vifi::trace
