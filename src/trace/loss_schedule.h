#pragma once

/// \file loss_schedule.h
/// The paper's trace-driven simulation input (§5.1): converts logged beacon
/// receptions into a per-second symmetric loss schedule.
///
///  * vehicle <-> BS: loss = 1 - beacons_heard / beacons_sent per second;
///  * BS <-> BS (DieselNet, where inter-BS behaviour is unknown): pairs
///    never simultaneously visible to the vehicle are unreachable; all
///    other pairs draw a Uniform(0,1) constant loss ratio;
///  * BS <-> BS (VanLAN validation, where BS-side logs exist): per-second
///    inter-BS beacon loss ratio.

#include <memory>
#include <vector>

#include "channel/trace_driven.h"
#include "trace/observations.h"
#include "util/rng.h"

namespace vifi::trace {

struct LossScheduleOptions {
  /// Vehicle node id to register in the schedule.
  NodeId vehicle;
  /// Use logged BS-to-BS beacons (VanLAN validation) instead of the
  /// DieselNet co-visibility + Uniform(0,1) rule.
  bool use_bs_beacon_logs = false;
};

/// Builds the §5.1 loss schedule for one trip.
std::unique_ptr<channel::TraceLossModel> build_loss_schedule(
    const MeasurementTrace& trip, const LossScheduleOptions& options,
    Rng rng);

/// Fleet form: one trace per vehicle of the same trip (each trace's
/// `vehicle` field identifies its logger). The vehicle<->BS schedules of
/// all traces merge into one model; inter-BS links are configured once,
/// from the first trace, since BS-side behaviour is shared infrastructure.
std::unique_ptr<channel::TraceLossModel> build_fleet_loss_schedule(
    const std::vector<const MeasurementTrace*>& trips,
    bool use_bs_beacon_logs, Rng rng);

/// True if the two BSes are ever heard by the vehicle within the same
/// one-second interval of the trip.
bool ever_covisible(const MeasurementTrace& trip, NodeId a, NodeId b);

}  // namespace vifi::trace
