#include "trace/trace_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/contracts.h"

namespace vifi::trace {

namespace {
constexpr const char* kMagic = "# vifi-trace v1";

void fail(const std::string& why) {
  throw std::runtime_error("trace parse error: " + why);
}
}  // namespace

void save_trace(const MeasurementTrace& t, std::ostream& os) {
  os << kMagic << "\n";
  os << "trace " << t.testbed << " day " << t.day << " trip " << t.trip
     << " duration_us " << t.duration.to_micros() << " bps "
     << t.beacons_per_second << "\n";
  // The logging vehicle. Newly generated campaigns always name it (fleet
  // or not); traces loaded from pre-fleet files carry no vehicle line and
  // round-trip byte-identically.
  if (t.vehicle.valid()) os << "vehicle " << t.vehicle.value() << "\n";
  for (NodeId bs : t.bs_ids) os << "bs " << bs.value() << "\n";
  for (const ProbeSlot& s : t.slots) {
    os << "slot " << s.t.to_micros() << " " << s.vehicle_pos.x << " "
       << s.vehicle_pos.y << " down";
    for (NodeId id : s.down_heard) os << " " << id.value();
    os << " up";
    for (NodeId id : s.up_heard_by) os << " " << id.value();
    os << "\n";
  }
  for (const BeaconObs& b : t.vehicle_beacons)
    os << "beacon " << b.t.to_micros() << " " << b.bs.value() << " "
       << b.rssi_dbm << "\n";
  for (const BsBeaconObs& b : t.bs_beacons)
    os << "bsbeacon " << b.t.to_micros() << " " << b.tx.value() << " "
       << b.rx.value() << "\n";
}

void save_trace_file(const MeasurementTrace& t, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  save_trace(t, os);
}

MeasurementTrace load_trace(std::istream& is) {
  MeasurementTrace t;
  std::string line;
  if (!std::getline(is, line) || line != kMagic) fail("bad magic");
  bool have_header = false;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "trace") {
      std::string kw;
      std::int64_t dur_us = 0;
      ls >> t.testbed >> kw >> t.day >> kw >> t.trip >> kw >> dur_us >> kw >>
          t.beacons_per_second;
      if (!ls) fail("bad trace header");
      t.duration = Time::micros(dur_us);
      have_header = true;
    } else if (tag == "vehicle") {
      int id = -1;
      ls >> id;
      if (!ls || id < 0) fail("bad vehicle line");
      t.vehicle = NodeId(id);
    } else if (tag == "bs") {
      int id = -1;
      ls >> id;
      if (!ls || id < 0) fail("bad bs line");
      t.bs_ids.push_back(NodeId(id));
    } else if (tag == "slot") {
      ProbeSlot s;
      std::int64_t us = 0;
      std::string kw;
      ls >> us >> s.vehicle_pos.x >> s.vehicle_pos.y >> kw;
      if (!ls || kw != "down") fail("bad slot line");
      s.t = Time::micros(us);
      std::string tok;
      bool in_down = true;
      while (ls >> tok) {
        if (tok == "up") {
          in_down = false;
          continue;
        }
        const int id = std::stoi(tok);
        (in_down ? s.down_heard : s.up_heard_by).push_back(NodeId(id));
      }
      t.slots.push_back(std::move(s));
    } else if (tag == "beacon") {
      BeaconObs b;
      std::int64_t us = 0;
      int id = -1;
      ls >> us >> id >> b.rssi_dbm;
      if (!ls || id < 0) fail("bad beacon line");
      b.t = Time::micros(us);
      b.bs = NodeId(id);
      t.vehicle_beacons.push_back(b);
    } else if (tag == "bsbeacon") {
      BsBeaconObs b;
      std::int64_t us = 0;
      int txid = -1, rxid = -1;
      ls >> us >> txid >> rxid;
      if (!ls || txid < 0 || rxid < 0) fail("bad bsbeacon line");
      b.t = Time::micros(us);
      b.tx = NodeId(txid);
      b.rx = NodeId(rxid);
      t.bs_beacons.push_back(b);
    } else {
      fail("unknown tag: " + tag);
    }
  }
  if (!have_header) fail("missing trace header");
  return t;
}

MeasurementTrace load_trace_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  return load_trace(is);
}

}  // namespace vifi::trace
