#include "trace/trace_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/contracts.h"

namespace vifi::trace {

namespace {
constexpr const char* kMagic = "# vifi-trace v1";
constexpr const char* kMagicPrefix = "# vifi-trace v";

[[noreturn]] void fail(int line_no, const std::string& why) {
  throw std::runtime_error("trace parse error at line " +
                           std::to_string(line_no) + ": " + why);
}
}  // namespace

void save_trace(const MeasurementTrace& t, std::ostream& os) {
  os << kMagic << "\n";
  os << "trace " << t.testbed << " day " << t.day << " trip " << t.trip
     << " duration_us " << t.duration.to_micros() << " bps "
     << t.beacons_per_second << "\n";
  // The logging vehicle. Newly generated campaigns always name it (fleet
  // or not); traces loaded from pre-fleet files carry no vehicle line and
  // round-trip byte-identically.
  if (t.vehicle.valid()) os << "vehicle " << t.vehicle.value() << "\n";
  for (NodeId bs : t.bs_ids) os << "bs " << bs.value() << "\n";
  for (const ProbeSlot& s : t.slots) {
    os << "slot " << s.t.to_micros() << " " << s.vehicle_pos.x << " "
       << s.vehicle_pos.y << " down";
    for (NodeId id : s.down_heard) os << " " << id.value();
    os << " up";
    for (NodeId id : s.up_heard_by) os << " " << id.value();
    os << "\n";
  }
  for (const BeaconObs& b : t.vehicle_beacons)
    os << "beacon " << b.t.to_micros() << " " << b.bs.value() << " "
       << b.rssi_dbm << "\n";
  for (const BsBeaconObs& b : t.bs_beacons)
    os << "bsbeacon " << b.t.to_micros() << " " << b.tx.value() << " "
       << b.rx.value() << "\n";
}

void save_trace_file(const MeasurementTrace& t, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  save_trace(t, os);
}

MeasurementTrace load_trace(std::istream& is) {
  MeasurementTrace t;
  std::string line;
  int line_no = 1;
  if (!std::getline(is, line)) fail(line_no, "empty input");
  if (line != kMagic) {
    // Distinguish "a vifi trace from a different format revision" from
    // "not a vifi trace at all" — the fixes differ (upgrade vs wrong file).
    if (line.rfind(kMagicPrefix, 0) == 0)
      fail(line_no, "unsupported trace version '" + line.substr(2) +
                        "' (this build reads vifi-trace v1)");
    fail(line_no, "not a vifi-trace file (expected '" + std::string(kMagic) +
                      "')");
  }
  bool have_header = false;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "trace") {
      std::string kw;
      std::int64_t dur_us = 0;
      ls >> t.testbed >> kw >> t.day >> kw >> t.trip >> kw >> dur_us >> kw >>
          t.beacons_per_second;
      if (!ls) fail(line_no, "bad or truncated trace header: '" + line + "'");
      if (t.beacons_per_second <= 0)
        fail(line_no, "beacons_per_second must be positive");
      if (dur_us < 0) fail(line_no, "negative trip duration");
      t.duration = Time::micros(dur_us);
      have_header = true;
    } else if (tag == "vehicle") {
      int id = -1;
      ls >> id;
      if (!ls || id < 0) fail(line_no, "bad vehicle line: '" + line + "'");
      t.vehicle = NodeId(id);
    } else if (tag == "bs") {
      int id = -1;
      ls >> id;
      if (!ls || id < 0) fail(line_no, "bad bs line: '" + line + "'");
      t.bs_ids.push_back(NodeId(id));
    } else if (tag == "slot") {
      ProbeSlot s;
      std::int64_t us = 0;
      std::string kw;
      ls >> us >> s.vehicle_pos.x >> s.vehicle_pos.y >> kw;
      if (!ls || kw != "down")
        fail(line_no, "bad or truncated slot line: '" + line + "'");
      s.t = Time::micros(us);
      std::string tok;
      bool in_down = true;
      bool saw_up = false;
      while (ls >> tok) {
        if (tok == "up") {
          if (saw_up) fail(line_no, "slot line has two 'up' markers");
          in_down = false;
          saw_up = true;
          continue;
        }
        int id = -1;
        try {
          id = std::stoi(tok);
        } catch (const std::exception&) {
          fail(line_no, "bad node id '" + tok + "' in slot line");
        }
        if (id < 0) fail(line_no, "negative node id in slot line");
        (in_down ? s.down_heard : s.up_heard_by).push_back(NodeId(id));
      }
      if (!saw_up)
        fail(line_no, "truncated slot line (missing 'up' marker): '" + line +
                          "'");
      t.slots.push_back(std::move(s));
    } else if (tag == "beacon") {
      BeaconObs b;
      std::int64_t us = 0;
      int id = -1;
      ls >> us >> id >> b.rssi_dbm;
      if (!ls || id < 0)
        fail(line_no, "bad or truncated beacon line: '" + line + "'");
      b.t = Time::micros(us);
      b.bs = NodeId(id);
      t.vehicle_beacons.push_back(b);
    } else if (tag == "bsbeacon") {
      BsBeaconObs b;
      std::int64_t us = 0;
      int txid = -1, rxid = -1;
      ls >> us >> txid >> rxid;
      if (!ls || txid < 0 || rxid < 0)
        fail(line_no, "bad or truncated bsbeacon line: '" + line + "'");
      b.t = Time::micros(us);
      b.tx = NodeId(txid);
      b.rx = NodeId(rxid);
      t.bs_beacons.push_back(b);
    } else {
      fail(line_no, "unknown tag: " + tag);
    }
  }
  if (!have_header)
    fail(line_no, "missing trace header (truncated or empty trace?)");
  return t;
}

MeasurementTrace load_trace_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  return load_trace(is);
}

}  // namespace vifi::trace
