#pragma once

/// \file observations.h
/// Measurement-study records: what the testbed vehicles log (§2, §3.1).
/// A `MeasurementTrace` is one *trip* of the vehicle through the coverage
/// region; campaigns aggregate trips across days.

#include <map>
#include <string>
#include <vector>

#include "mobility/vec2.h"
#include "sim/ids.h"
#include "util/time.h"

namespace vifi::trace {

using sim::NodeId;

/// A BS beacon decoded by the vehicle, with the measured signal strength
/// that RSSI-style handoff policies use.
struct BeaconObs {
  Time t;
  NodeId bs;
  double rssi_dbm = 0.0;
};

/// A beacon from one BS decoded by another BS (logged on VanLAN only, where
/// we control the BSes; used to configure inter-BS loss in validation).
struct BsBeaconObs {
  Time t;
  NodeId tx;
  NodeId rx;
};

/// Outcome of one 100 ms probe slot (§3.1: every node broadcasts a 500-byte
/// packet at 1 Mbps every 100 ms; receivers log what they decode).
struct ProbeSlot {
  Time t;                               ///< Slot start.
  mobility::Vec2 vehicle_pos;           ///< GPS fix for the slot.
  std::vector<NodeId> down_heard;       ///< BS probes the vehicle decoded.
  std::vector<NodeId> up_heard_by;      ///< BSes that decoded the vehicle's probe.

  bool down_from(NodeId bs) const;
  bool up_to(NodeId bs) const;
};

/// One trip's worth of raw logs, as recorded by ONE vehicle. Fleet
/// campaigns produce one trace per vehicle per trip (all vehicles share the
/// trip's channel realisation); `vehicle` identifies the logger.
struct MeasurementTrace {
  std::string testbed;       ///< "VanLAN", "DieselNet-Ch1", ...
  int day = 0;               ///< Day index within the campaign.
  int trip = 0;              ///< Trip index within the day.
  NodeId vehicle;            ///< Logging vehicle (invalid = legacy trace).
  Time duration;             ///< Trip length.
  int beacons_per_second = 10;
  std::vector<NodeId> bs_ids;
  std::vector<ProbeSlot> slots;          ///< 10 per second; may be empty for
                                         ///< beacon-only (DieselNet) traces.
  std::vector<BeaconObs> vehicle_beacons;  ///< BS beacons heard by vehicle.
  std::vector<BsBeaconObs> bs_beacons;     ///< VanLAN only.

  int seconds() const {
    return static_cast<int>(duration.to_seconds() + 0.5);
  }
};

/// Per-second beacon reception counts from one BS, vehicle side:
/// counts[s] = beacons decoded during second s.
std::map<NodeId, std::vector<int>> beacon_counts_per_second(
    const MeasurementTrace& t);

/// Per-second mean beacon RSSI per BS (only seconds with >= 1 beacon).
std::map<NodeId, std::vector<std::pair<int, double>>> beacon_rssi_per_second(
    const MeasurementTrace& t);

/// A whole measurement campaign: several days, several trips per day.
struct Campaign {
  std::string testbed;
  std::vector<MeasurementTrace> trips;  ///< Ordered by (day, trip).

  int days() const;
  std::vector<const MeasurementTrace*> trips_on_day(int day) const;
};

}  // namespace vifi::trace
