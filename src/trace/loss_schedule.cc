#include "trace/loss_schedule.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/contracts.h"

namespace vifi::trace {

bool ever_covisible(const MeasurementTrace& trip, NodeId a, NodeId b) {
  const auto counts = beacon_counts_per_second(trip);
  const auto ia = counts.find(a);
  const auto ib = counts.find(b);
  if (ia == counts.end() || ib == counts.end()) return false;
  const std::size_t n = std::min(ia->second.size(), ib->second.size());
  for (std::size_t s = 0; s < n; ++s)
    if (ia->second[s] > 0 && ib->second[s] > 0) return true;
  return false;
}

std::unique_ptr<channel::TraceLossModel> build_loss_schedule(
    const MeasurementTrace& trip, const LossScheduleOptions& options,
    Rng rng) {
  VIFI_EXPECTS(options.vehicle.valid());
  VIFI_EXPECTS(trip.beacons_per_second > 0);
  auto model = std::make_unique<channel::TraceLossModel>(rng.fork("draws"));

  // Vehicle <-> BS: per-second beacon loss ratio, symmetric.
  const auto counts = beacon_counts_per_second(trip);
  for (const auto& [bs, per_sec] : counts) {
    for (std::size_t s = 0; s < per_sec.size(); ++s) {
      const double ratio =
          std::clamp(static_cast<double>(per_sec[s]) /
                         static_cast<double>(trip.beacons_per_second),
                     0.0, 1.0);
      model->set_loss_rate(options.vehicle, bs, static_cast<int>(s),
                           1.0 - ratio);
    }
  }

  if (options.use_bs_beacon_logs) {
    // VanLAN validation: per-second inter-BS beacon loss ratios.
    std::map<std::pair<int, int>, std::map<int, int>> heard;  // (tx,rx)->sec->n
    for (const BsBeaconObs& b : trip.bs_beacons) {
      const int s = static_cast<int>(b.t.to_micros() / 1'000'000);
      ++heard[{b.tx.value(), b.rx.value()}][s];
    }
    const int horizon = trip.seconds();
    for (NodeId a : trip.bs_ids) {
      for (NodeId b : trip.bs_ids) {
        if (!(a < b)) continue;
        // Symmetrise by averaging the two directions' counts.
        const auto& ab = heard[{a.value(), b.value()}];
        const auto& ba = heard[{b.value(), a.value()}];
        for (int s = 0; s < horizon; ++s) {
          const auto fa = ab.find(s);
          const auto fb = ba.find(s);
          const int n = (fa != ab.end() ? fa->second : 0) +
                        (fb != ba.end() ? fb->second : 0);
          const double ratio =
              std::clamp(static_cast<double>(n) /
                             (2.0 * trip.beacons_per_second),
                         0.0, 1.0);
          model->set_loss_rate(a, b, s, 1.0 - ratio);
        }
      }
    }
  } else {
    // DieselNet rule: never-co-visible pairs are unreachable; others get a
    // Uniform(0,1) constant loss ratio (§5.1).
    Rng interbs = rng.fork("interbs");
    for (NodeId a : trip.bs_ids) {
      for (NodeId b : trip.bs_ids) {
        if (!(a < b)) continue;
        if (!ever_covisible(trip, a, b)) continue;  // unset => loss 1.0
        model->set_constant_loss_rate(a, b, interbs.uniform01());
      }
    }
  }
  return model;
}

}  // namespace vifi::trace
