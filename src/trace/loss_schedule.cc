#include "trace/loss_schedule.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/contracts.h"

namespace vifi::trace {

bool ever_covisible(const MeasurementTrace& trip, NodeId a, NodeId b) {
  const auto counts = beacon_counts_per_second(trip);
  const auto ia = counts.find(a);
  const auto ib = counts.find(b);
  if (ia == counts.end() || ib == counts.end()) return false;
  const std::size_t n = std::min(ia->second.size(), ib->second.size());
  for (std::size_t s = 0; s < n; ++s)
    if (ia->second[s] > 0 && ib->second[s] > 0) return true;
  return false;
}

namespace {

/// Registers one vehicle's per-second beacon loss ratios, symmetric.
void add_vehicle_links(channel::TraceLossModel& model,
                       const MeasurementTrace& trip, NodeId vehicle) {
  VIFI_EXPECTS(vehicle.valid());
  VIFI_EXPECTS(trip.beacons_per_second > 0);
  const auto counts = beacon_counts_per_second(trip);
  for (const auto& [bs, per_sec] : counts) {
    for (std::size_t s = 0; s < per_sec.size(); ++s) {
      const double ratio =
          std::clamp(static_cast<double>(per_sec[s]) /
                         static_cast<double>(trip.beacons_per_second),
                     0.0, 1.0);
      model.set_loss_rate(vehicle, bs, static_cast<int>(s), 1.0 - ratio);
    }
  }
}

/// Registers inter-BS links per the §5.1 rules (shared across vehicles).
void add_interbs_links(channel::TraceLossModel& model,
                       const MeasurementTrace& trip, bool use_bs_beacon_logs,
                       Rng& rng);

}  // namespace

std::unique_ptr<channel::TraceLossModel> build_loss_schedule(
    const MeasurementTrace& trip, const LossScheduleOptions& options,
    Rng rng) {
  auto model = std::make_unique<channel::TraceLossModel>(rng.fork("draws"));
  add_vehicle_links(*model, trip, options.vehicle);
  add_interbs_links(*model, trip, options.use_bs_beacon_logs, rng);
  return model;
}

std::unique_ptr<channel::TraceLossModel> build_fleet_loss_schedule(
    const std::vector<const MeasurementTrace*>& trips,
    bool use_bs_beacon_logs, Rng rng) {
  VIFI_EXPECTS(!trips.empty());
  // Validate the fleet before touching the model: a duplicate or foreign
  // trace would register schedules under the wrong ids and leave part of
  // the fleet silently deaf.
  std::set<NodeId> vehicles;
  for (const MeasurementTrace* trip : trips) {
    VIFI_EXPECTS(trip != nullptr);
    if (!trip->vehicle.valid())
      throw std::runtime_error(
          "build_fleet_loss_schedule: trace (day " +
          std::to_string(trip->day) + ", trip " + std::to_string(trip->trip) +
          ") names no logging vehicle; fleet schedules need one trace per "
          "vehicle");
    if (!vehicles.insert(trip->vehicle).second)
      throw std::runtime_error(
          "build_fleet_loss_schedule: duplicate trace for vehicle " +
          trip->vehicle.to_string());
    if (trip->testbed != trips.front()->testbed)
      throw std::runtime_error(
          "build_fleet_loss_schedule: foreign trace — testbed '" +
          trip->testbed + "' does not match '" + trips.front()->testbed +
          "'");
    // Compare as sets: the trace format puts no ordering contract on its
    // `bs` lines (real logs may record BSes in first-heard order).
    auto sorted_bs = [](const MeasurementTrace& t) {
      std::vector<NodeId> ids = t.bs_ids;
      std::sort(ids.begin(), ids.end());
      return ids;
    };
    if (sorted_bs(*trip) != sorted_bs(*trips.front()))
      throw std::runtime_error(
          "build_fleet_loss_schedule: foreign trace — vehicle " +
          trip->vehicle.to_string() +
          "'s log names a different BS set than the first trace");
  }
  auto model = std::make_unique<channel::TraceLossModel>(rng.fork("draws"));
  for (const MeasurementTrace* trip : trips)
    add_vehicle_links(*model, *trip, trip->vehicle);
  add_interbs_links(*model, *trips.front(), use_bs_beacon_logs, rng);
  return model;
}

namespace {

void add_interbs_links(channel::TraceLossModel& model,
                       const MeasurementTrace& trip, bool use_bs_beacon_logs,
                       Rng& rng) {
  if (use_bs_beacon_logs) {
    // VanLAN validation: per-second inter-BS beacon loss ratios.
    std::map<std::pair<int, int>, std::map<int, int>> heard;  // (tx,rx)->sec->n
    for (const BsBeaconObs& b : trip.bs_beacons) {
      const int s = static_cast<int>(b.t.to_micros() / 1'000'000);
      ++heard[{b.tx.value(), b.rx.value()}][s];
    }
    const int horizon = trip.seconds();
    for (NodeId a : trip.bs_ids) {
      for (NodeId b : trip.bs_ids) {
        if (!(a < b)) continue;
        // Symmetrise by averaging the two directions' counts.
        const auto& ab = heard[{a.value(), b.value()}];
        const auto& ba = heard[{b.value(), a.value()}];
        for (int s = 0; s < horizon; ++s) {
          const auto fa = ab.find(s);
          const auto fb = ba.find(s);
          const int n = (fa != ab.end() ? fa->second : 0) +
                        (fb != ba.end() ? fb->second : 0);
          const double ratio =
              std::clamp(static_cast<double>(n) /
                             (2.0 * trip.beacons_per_second),
                         0.0, 1.0);
          model.set_loss_rate(a, b, s, 1.0 - ratio);
        }
      }
    }
  } else {
    // DieselNet rule: never-co-visible pairs are unreachable; others get a
    // Uniform(0,1) constant loss ratio (§5.1).
    Rng interbs = rng.fork("interbs");
    for (NodeId a : trip.bs_ids) {
      for (NodeId b : trip.bs_ids) {
        if (!(a < b)) continue;
        if (!ever_covisible(trip, a, b)) continue;  // unset => loss 1.0
        model.set_constant_loss_rate(a, b, interbs.uniform01());
      }
    }
  }
}

}  // namespace

}  // namespace vifi::trace
