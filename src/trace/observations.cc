#include "trace/observations.h"

#include <algorithm>

namespace vifi::trace {

bool ProbeSlot::down_from(NodeId bs) const {
  return std::find(down_heard.begin(), down_heard.end(), bs) !=
         down_heard.end();
}

bool ProbeSlot::up_to(NodeId bs) const {
  return std::find(up_heard_by.begin(), up_heard_by.end(), bs) !=
         up_heard_by.end();
}

std::map<NodeId, std::vector<int>> beacon_counts_per_second(
    const MeasurementTrace& t) {
  std::map<NodeId, std::vector<int>> counts;
  const auto secs = static_cast<std::size_t>(std::max(1, t.seconds()));
  for (NodeId bs : t.bs_ids) counts[bs].assign(secs, 0);
  for (const BeaconObs& b : t.vehicle_beacons) {
    const auto s = static_cast<std::size_t>(b.t.to_micros() / 1'000'000);
    if (s >= secs) continue;
    auto it = counts.find(b.bs);
    if (it == counts.end()) continue;
    ++it->second[s];
  }
  return counts;
}

std::map<NodeId, std::vector<std::pair<int, double>>> beacon_rssi_per_second(
    const MeasurementTrace& t) {
  struct Acc {
    int n = 0;
    double sum = 0.0;
  };
  std::map<NodeId, std::map<int, Acc>> acc;
  for (const BeaconObs& b : t.vehicle_beacons) {
    const int s = static_cast<int>(b.t.to_micros() / 1'000'000);
    auto& a = acc[b.bs][s];
    ++a.n;
    a.sum += b.rssi_dbm;
  }
  std::map<NodeId, std::vector<std::pair<int, double>>> out;
  for (const auto& [bs, per_sec] : acc) {
    auto& vec = out[bs];
    vec.reserve(per_sec.size());
    for (const auto& [s, a] : per_sec)
      vec.emplace_back(s, a.sum / static_cast<double>(a.n));
  }
  return out;
}

int Campaign::days() const {
  int d = 0;
  for (const auto& t : trips) d = std::max(d, t.day + 1);
  return d;
}

std::vector<const MeasurementTrace*> Campaign::trips_on_day(int day) const {
  std::vector<const MeasurementTrace*> out;
  for (const auto& t : trips)
    if (t.day == day) out.push_back(&t);
  return out;
}

}  // namespace vifi::trace
