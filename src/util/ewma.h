#pragma once

/// \file ewma.h
/// Exponentially weighted moving average, the smoother both the handoff
/// policies (§3.1) and ViFi's beacon-based reception-probability estimator
/// (§4.6, alpha = 0.5) use.

#include "util/contracts.h"

namespace vifi {

/// value' = alpha * sample + (1 - alpha) * value.
class Ewma {
 public:
  explicit Ewma(double alpha = 0.5) : alpha_(alpha) {
    VIFI_EXPECTS(alpha > 0.0 && alpha <= 1.0);
  }

  void update(double sample) {
    if (!initialized_) {
      value_ = sample;
      initialized_ = true;
    } else {
      value_ = alpha_ * sample + (1.0 - alpha_) * value_;
    }
  }

  bool initialized() const { return initialized_; }

  /// Current average; \p fallback if no sample has been seen yet.
  double value_or(double fallback) const {
    return initialized_ ? value_ : fallback;
  }

  double value() const {
    VIFI_EXPECTS(initialized_);
    return value_;
  }

  void reset() {
    initialized_ = false;
    value_ = 0.0;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace vifi
