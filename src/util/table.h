#pragma once

/// \file table.h
/// Aligned ASCII tables and figure series. Every bench binary renders the
/// paper's rows/series through these so the output format is uniform and
/// easy to diff against EXPERIMENTS.md.

#include <iosfwd>
#include <string>
#include <vector>

namespace vifi {

/// A simple column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> cells);
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  /// Formats "v ± half" the way the paper annotates 95% CIs.
  static std::string num_ci(double v, double half, int precision = 2);
  /// Formats a percentage, e.g. "25%".
  static std::string pct(double fraction01, int precision = 0);

  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// A figure rendered as rows of x plus one column per series.
class SeriesChart {
 public:
  SeriesChart(std::string title, std::string x_label)
      : title_(std::move(title)), x_label_(std::move(x_label)) {}

  /// Adds a named series; values must align with the x grid.
  void add_series(std::string name, std::vector<double> values);
  void set_x(std::vector<double> xs) { xs_ = std::move(xs); }
  void set_precision(int p) { precision_ = p; }

  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::string title_;
  std::string x_label_;
  std::vector<double> xs_;
  std::vector<std::pair<std::string, std::vector<double>>> series_;
  int precision_ = 2;
};

}  // namespace vifi
