#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"
#include "util/rng.h"

namespace vifi {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  VIFI_EXPECTS(n_ > 0);
  return mean_;
}

double RunningStats::variance() const {
  VIFI_EXPECTS(n_ > 0);
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  VIFI_EXPECTS(n_ > 0);
  return min_;
}

double RunningStats::max() const {
  VIFI_EXPECTS(n_ > 0);
  return max_;
}

double percentile(std::vector<double> values, double p) {
  VIFI_EXPECTS(!values.empty());
  VIFI_EXPECTS(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double median(std::vector<double> values) {
  return percentile(std::move(values), 50.0);
}

Interval mean_ci95(const std::vector<double>& values) {
  VIFI_EXPECTS(!values.empty());
  RunningStats s;
  for (double v : values) s.add(v);
  const double half =
      1.96 * s.stddev() / std::sqrt(static_cast<double>(values.size()));
  return {s.mean() - half, s.mean() + half};
}

Interval bootstrap_median_ci95(const std::vector<double>& values, Rng& rng,
                               int resamples) {
  VIFI_EXPECTS(!values.empty());
  VIFI_EXPECTS(resamples > 1);
  const auto n = static_cast<std::int64_t>(values.size());
  std::vector<double> medians;
  medians.reserve(static_cast<std::size_t>(resamples));
  std::vector<double> draw(values.size());
  for (int r = 0; r < resamples; ++r) {
    for (auto& d : draw)
      d = values[static_cast<std::size_t>(rng.uniform_int(0, n - 1))];
    medians.push_back(median(draw));
  }
  return {percentile(medians, 2.5), percentile(medians, 97.5)};
}

}  // namespace vifi
