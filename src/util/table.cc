#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/contracts.h"

namespace vifi {

void TextTable::set_header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::num_ci(double v, double half, int precision) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.*f ±%.*f", precision, v, precision, half);
  return buf;
}

std::string TextTable::pct(double fraction01, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction01 * 100.0);
  return buf;
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  auto account = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  if (!header_.empty()) account(header_);
  for (const auto& r : rows_) account(r);

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << (i == 0 ? "| " : " | ");
      os << row[i];
      os << std::string(widths[i] - row[i].size(), ' ');
    }
    os << " |\n";
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 1;
    for (std::size_t w : widths) total += w + 3;
    os << std::string(total, '-') << "\n";
  }
  for (const auto& r : rows_) emit(r);
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

void SeriesChart::add_series(std::string name, std::vector<double> values) {
  series_.emplace_back(std::move(name), std::move(values));
}

void SeriesChart::print(std::ostream& os) const {
  TextTable t(title_);
  std::vector<std::string> header{x_label_};
  for (const auto& [name, vals] : series_) {
    VIFI_EXPECTS(vals.size() == xs_.size());
    header.push_back(name);
  }
  t.set_header(std::move(header));
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    std::vector<std::string> row{TextTable::num(xs_[i], precision_)};
    for (const auto& [name, vals] : series_) {
      (void)name;
      row.push_back(TextTable::num(vals[i], precision_));
    }
    t.add_row(std::move(row));
  }
  t.print(os);
}

std::string SeriesChart::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace vifi
