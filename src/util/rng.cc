#include "util/rng.h"

#include <cmath>

namespace vifi {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

/// FNV-1a over a string, used to derive child-stream seeds from names.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& w : s_) w = splitmix64(x);
}

Rng Rng::fork(std::string_view name) const {
  // The child seed mixes the parent's *initial* identity (its state words
  // are a pure function of the seed at construction; we use the current
  // words, which still yields determinism because forks are performed at
  // deterministic points) with the stream name.
  std::uint64_t mix = fnv1a(name);
  std::array<std::uint64_t, 4> child{};
  std::uint64_t x = s_[0] ^ rotl(s_[1], 17) ^ rotl(s_[2], 31) ^ s_[3] ^ mix;
  for (auto& w : child) w = splitmix64(x);
  return Rng(child);
}

std::uint64_t Rng::next_u64() {
  // xoshiro256**
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  VIFI_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  VIFI_EXPECTS(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % span);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  VIFI_EXPECTS(mean > 0.0);
  double u = uniform01();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  VIFI_EXPECTS(stddev >= 0.0);
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1 = uniform01();
  double u2 = uniform01();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

std::vector<int> Rng::sample(int n, int k) {
  VIFI_EXPECTS(n >= 0 && k >= 0 && k <= n);
  std::vector<int> pool(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) pool[static_cast<std::size_t>(i)] = i;
  // Partial Fisher–Yates: the first k slots end up a uniform sample.
  for (int i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(uniform_int(i, n - 1));
    std::swap(pool[static_cast<std::size_t>(i)], pool[j]);
  }
  pool.resize(static_cast<std::size_t>(k));
  return pool;
}

}  // namespace vifi
