#include "util/cdf.h"

#include <algorithm>

#include "util/contracts.h"

namespace vifi {

void Cdf::add(double value, double weight) {
  VIFI_EXPECTS(weight >= 0.0);
  if (weight == 0.0) return;
  samples_.emplace_back(value, weight);
  total_weight_ += weight;
  sorted_ = false;
}

void Cdf::sort_if_needed() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::fraction_at_or_below(double x) const {
  if (samples_.empty()) return 0.0;
  sort_if_needed();
  double acc = 0.0;
  for (const auto& [v, w] : samples_) {
    if (v > x) break;
    acc += w;
  }
  return acc / total_weight_;
}

double Cdf::quantile(double q) const {
  VIFI_EXPECTS(!samples_.empty());
  VIFI_EXPECTS(q >= 0.0 && q <= 1.0);
  sort_if_needed();
  const double target = q * total_weight_;
  double acc = 0.0;
  for (const auto& [v, w] : samples_) {
    acc += w;
    if (acc >= target) return v;
  }
  return samples_.back().first;
}

std::vector<double> Cdf::evaluate(const std::vector<double>& xs) const {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(fraction_at_or_below(x));
  return out;
}

std::vector<double> Cdf::sorted_values() const {
  sort_if_needed();
  std::vector<double> vs;
  vs.reserve(samples_.size());
  for (const auto& [v, w] : samples_) {
    (void)w;
    if (vs.empty() || vs.back() != v) vs.push_back(v);
  }
  return vs;
}

}  // namespace vifi
