#pragma once

/// \file contracts.h
/// Precondition / postcondition checks in the style of the C++ Core
/// Guidelines' Expects()/Ensures() (I.5, I.7). Violations indicate a bug in
/// the caller (Expects) or the implementation (Ensures) and abort via an
/// exception so tests can assert on them.

#include <stdexcept>
#include <string>

namespace vifi {

/// Thrown when a contract (pre- or postcondition) is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace vifi

#define VIFI_EXPECTS(cond)                                                \
  do {                                                                    \
    if (!(cond))                                                          \
      ::vifi::detail::contract_fail("precondition", #cond, __FILE__,      \
                                    __LINE__);                            \
  } while (0)

#define VIFI_ENSURES(cond)                                                \
  do {                                                                    \
    if (!(cond))                                                          \
      ::vifi::detail::contract_fail("postcondition", #cond, __FILE__,     \
                                    __LINE__);                            \
  } while (0)
