#include "util/time.h"

#include <cstdio>
#include <ostream>

namespace vifi {

std::string Time::to_string() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6fs", to_seconds());
  return buf;
}

std::ostream& operator<<(std::ostream& os, Time t) {
  return os << t.to_string();
}

}  // namespace vifi
