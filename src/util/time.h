#pragma once

/// \file time.h
/// Simulated time. A single value type is used both for points on the
/// simulation clock and for durations (as in ns-3); the underlying unit is
/// integer microseconds so event ordering is exact and bit-reproducible.

#include <cstdint>
#include <compare>
#include <iosfwd>
#include <string>

namespace vifi {

/// A simulated time point or duration with microsecond resolution.
class Time {
 public:
  constexpr Time() = default;

  /// Named constructors. Fractional inputs are rounded to the nearest
  /// microsecond.
  static constexpr Time micros(std::int64_t us) { return Time(us); }
  static constexpr Time millis(double ms) {
    return Time(round_i64(ms * 1e3));
  }
  static constexpr Time seconds(double s) { return Time(round_i64(s * 1e6)); }
  static constexpr Time minutes(double m) { return seconds(m * 60.0); }
  static constexpr Time hours(double h) { return seconds(h * 3600.0); }
  static constexpr Time zero() { return Time(0); }
  static constexpr Time max() { return Time(INT64_MAX); }

  constexpr std::int64_t to_micros() const { return us_; }
  constexpr double to_millis() const { return static_cast<double>(us_) / 1e3; }
  constexpr double to_seconds() const {
    return static_cast<double>(us_) / 1e6;
  }

  constexpr bool is_zero() const { return us_ == 0; }
  constexpr bool is_negative() const { return us_ < 0; }

  friend constexpr Time operator+(Time a, Time b) { return Time(a.us_ + b.us_); }
  friend constexpr Time operator-(Time a, Time b) { return Time(a.us_ - b.us_); }
  friend constexpr Time operator*(Time a, double k) {
    return Time(round_i64(static_cast<double>(a.us_) * k));
  }
  friend constexpr Time operator*(double k, Time a) { return a * k; }
  friend constexpr Time operator/(Time a, double k) {
    return Time(round_i64(static_cast<double>(a.us_) / k));
  }
  /// Ratio of two durations.
  friend constexpr double operator/(Time a, Time b) {
    return static_cast<double>(a.us_) / static_cast<double>(b.us_);
  }
  Time& operator+=(Time o) {
    us_ += o.us_;
    return *this;
  }
  Time& operator-=(Time o) {
    us_ -= o.us_;
    return *this;
  }

  friend constexpr auto operator<=>(Time, Time) = default;

  /// "12.345s"-style rendering for logs and tables.
  std::string to_string() const;

 private:
  static constexpr std::int64_t round_i64(double v) {
    return static_cast<std::int64_t>(v >= 0 ? v + 0.5 : v - 0.5);
  }
  constexpr explicit Time(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

std::ostream& operator<<(std::ostream& os, Time t);

}  // namespace vifi
