#include "util/logging.h"

#include <cstdio>

namespace vifi {

namespace {
LogLevel g_level = LogLevel::Warn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}
}  // namespace detail

}  // namespace vifi
