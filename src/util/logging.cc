#include "util/logging.h"

#include <atomic>
#include <cstdio>

#include "obs/recorder.h"

namespace vifi {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
  // Route warnings and errors onto the active trace timeline, if any —
  // a misbehaving point's warnings then sit next to the protocol events
  // that provoked them.
  if (level >= LogLevel::Warn && level < LogLevel::Off) {
    if (obs::TraceRecorder* rec = obs::current_recorder())
      rec->log(level, msg);
  }
}
}  // namespace detail

}  // namespace vifi
