#pragma once

/// \file stats.h
/// Descriptive statistics used throughout the evaluation: running moments,
/// percentiles, medians, and the 95% confidence intervals the paper puts on
/// every error bar.

#include <cstddef>
#include <vector>

namespace vifi {

/// Numerically stable running mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// p-th percentile (p in [0,100]) with linear interpolation between order
/// statistics. The input need not be sorted; an internal copy is sorted.
double percentile(std::vector<double> values, double p);

double median(std::vector<double> values);

/// A two-sided interval [lo, hi].
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  double half_width() const { return (hi - lo) / 2.0; }
};

/// 95% confidence interval for the mean (normal approximation, z = 1.96).
Interval mean_ci95(const std::vector<double>& values);

class Rng;

/// 95% bootstrap percentile interval for the median. Suitable for the
/// session-length medians whose sampling distribution is far from normal.
Interval bootstrap_median_ci95(const std::vector<double>& values, Rng& rng,
                               int resamples = 1000);

}  // namespace vifi
