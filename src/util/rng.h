#pragma once

/// \file rng.h
/// Deterministic pseudo-random number generation for the simulator.
///
/// Every stochastic component draws from its own named stream forked from a
/// single root seed, so experiments are bit-reproducible regardless of the
/// order in which components consume randomness. The generator is
/// xoshiro256** (public domain, Blackman & Vigna) seeded via splitmix64.

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "util/contracts.h"

namespace vifi {

/// A self-contained pseudo-random stream.
class Rng {
 public:
  /// Seeds the stream. Identical seeds produce identical sequences.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Forks a child stream whose sequence is a deterministic function of this
  /// stream's seed and \p name, independent of draws made from the parent.
  Rng fork(std::string_view name) const;

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1) with 53 bits of precision.
  double uniform01();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in the closed range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// True with probability p (p outside [0,1] is clamped).
  bool bernoulli(double p);

  /// Exponentially distributed with the given mean (> 0).
  double exponential(double mean);

  /// Normally distributed (Box–Muller).
  double normal(double mean, double stddev);

  /// A uniformly random subset of size \p k drawn from {0, ..., n-1}
  /// without replacement, in random order.
  std::vector<int> sample(int n, int k);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  explicit Rng(const std::array<std::uint64_t, 4>& state) : s_(state) {}
  std::array<std::uint64_t, 4> s_{};
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace vifi
