#pragma once

/// \file logging.h
/// Minimal leveled logging to stderr. Disabled (Warn) by default so tests
/// and benches stay quiet; examples turn on Info to narrate what they do.
/// When a TripScope TraceRecorder is installed on the calling thread
/// (obs/recorder.h), Warn and Error lines are additionally routed into its
/// log channel so they land on the exported timeline.

#include <sstream>
#include <string>

namespace vifi {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log threshold. Thread-safe (atomic): runtime workers run
/// concurrently and any of them may consult — or a test may flip — the
/// threshold while others log.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

}  // namespace vifi

#define VIFI_LOG(level, expr)                                       \
  do {                                                              \
    if (static_cast<int>(level) >=                                  \
        static_cast<int>(::vifi::log_level())) {                    \
      std::ostringstream vifi_log_os_;                              \
      vifi_log_os_ << expr;                                         \
      ::vifi::detail::log_line(level, vifi_log_os_.str());          \
    }                                                               \
  } while (0)

#define VIFI_DEBUG(expr) VIFI_LOG(::vifi::LogLevel::Debug, expr)
#define VIFI_INFO(expr) VIFI_LOG(::vifi::LogLevel::Info, expr)
#define VIFI_WARN(expr) VIFI_LOG(::vifi::LogLevel::Warn, expr)
#define VIFI_ERROR(expr) VIFI_LOG(::vifi::LogLevel::Error, expr)
