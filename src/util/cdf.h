#pragma once

/// \file cdf.h
/// Empirical CDFs, both sample-weighted (Fig. 5) and value-weighted
/// (Fig. 3d weights each session by its length: "% of time spent in a
/// session of a given length").

#include <cstddef>
#include <vector>

namespace vifi {

/// An empirical cumulative distribution built from weighted samples.
class Cdf {
 public:
  /// Adds a sample with the given non-negative weight.
  void add(double value, double weight = 1.0);

  bool empty() const { return samples_.empty(); }
  std::size_t sample_count() const { return samples_.size(); }
  double total_weight() const { return total_weight_; }

  /// Fraction of total weight at values <= x, in [0, 1].
  double fraction_at_or_below(double x) const;

  /// Smallest sample value v such that fraction_at_or_below(v) >= q.
  double quantile(double q) const;

  /// Evaluates the CDF at each of the given x positions (for plotting a
  /// figure as a fixed grid of rows).
  std::vector<double> evaluate(const std::vector<double>& xs) const;

  /// The distinct sorted sample values (useful for choosing plot grids).
  std::vector<double> sorted_values() const;

 private:
  void sort_if_needed() const;

  mutable std::vector<std::pair<double, double>> samples_;  // (value, weight)
  mutable bool sorted_ = true;
  double total_weight_ = 0.0;
};

}  // namespace vifi
