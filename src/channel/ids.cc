#include <ostream>

#include "sim/ids.h"

namespace vifi::sim {

std::ostream& operator<<(std::ostream& os, NodeId id) {
  return os << id.to_string();
}

}  // namespace vifi::sim
