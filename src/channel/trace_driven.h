#pragma once

/// \file trace_driven.h
/// The paper's §5.1 trace-driven methodology: "The beacon loss ratio from a
/// BS to the vehicle in each one-second interval is used as the packet loss
/// rate from that BS to the vehicle and from the vehicle to the BS", with
/// inter-BS pairs that are never simultaneously visible treated as
/// unreachable and other pairs given a Uniform(0,1) loss ratio.
///
/// The schedule is symmetric per one-second bucket; finer-timescale
/// behaviour and asymmetry are deliberately ignored, as in the paper.

#include <unordered_map>
#include <vector>

#include "channel/loss_model.h"
#include "util/rng.h"

namespace vifi::channel {

/// A per-second, per-pair loss-rate schedule driving a memoryless channel.
class TraceLossModel final : public LossModel {
 public:
  explicit TraceLossModel(Rng rng) : rng_(rng) {}

  /// Sets the loss rate (in [0,1]) between a and b for second \p sec.
  /// Symmetric: stored once per unordered pair.
  void set_loss_rate(NodeId a, NodeId b, int sec, double loss);

  /// Sets a time-invariant loss rate for the pair (used for inter-BS links).
  void set_constant_loss_rate(NodeId a, NodeId b, double loss);

  /// Loss rate in effect for the pair at time \p now; 1.0 (unreachable)
  /// where nothing was recorded.
  double loss_rate(NodeId a, NodeId b, Time now) const;

  /// Number of seconds covered by the longest per-pair schedule.
  int horizon_seconds() const { return horizon_; }

  bool sample_delivery(NodeId tx, NodeId rx, Time now) override;
  double reception_prob(NodeId tx, NodeId rx, Time now) const override;

 private:
  struct PairSchedule {
    std::vector<double> per_second;  // loss rate per second; <0 => unset
    double constant = -1.0;          // >= 0 overrides when second unset
  };

  static sim::LinkKey canonical(NodeId a, NodeId b);

  std::unordered_map<sim::LinkKey, PairSchedule> pairs_;
  int horizon_ = 0;
  Rng rng_;
};

}  // namespace vifi::channel
