#include "channel/markov.h"

namespace vifi::channel {

TwoStateProcess::TwoStateProcess(Time mean_on, Time mean_off, bool start_on,
                                 Rng rng)
    : mean_on_(mean_on), mean_off_(mean_off), on_(start_on), rng_(rng) {
  VIFI_EXPECTS(mean_on > Time::zero());
  VIFI_EXPECTS(mean_off > Time::zero());
  next_transition_ = Time::zero();
  draw_next_transition();
}

TwoStateProcess TwoStateProcess::stationary(Time mean_on, Time mean_off,
                                            Rng rng) {
  const double p_on =
      mean_on.to_seconds() / (mean_on.to_seconds() + mean_off.to_seconds());
  const bool start_on = rng.bernoulli(p_on);
  return TwoStateProcess(mean_on, mean_off, start_on, rng);
}

void TwoStateProcess::draw_next_transition() {
  const Time mean = on_ ? mean_on_ : mean_off_;
  next_transition_ += Time::seconds(rng_.exponential(mean.to_seconds()));
}

bool TwoStateProcess::on_at(Time now) {
  VIFI_EXPECTS(now >= last_query_);
  last_query_ = now;
  while (next_transition_ <= now) {
    on_ = !on_;
    draw_next_transition();
  }
  return on_;
}

double TwoStateProcess::stationary_on_fraction() const {
  return mean_on_.to_seconds() /
         (mean_on_.to_seconds() + mean_off_.to_seconds());
}

}  // namespace vifi::channel
