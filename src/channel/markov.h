#pragma once

/// \file markov.h
/// Continuous-time two-state processes underlying the channel model:
///
///  * Gilbert–Elliott burst fading — packet losses cluster in Bad-state
///    episodes, reproducing Fig. 6(a)'s conditional loss decay; and
///  * gray periods — rare, seconds-long collapses of connection quality
///    that hit even clients near a BS (§3.3).
///
/// Both are exact CTMC simulations: exponential sojourn times are drawn
/// lazily as simulated time advances, so per-packet sampling is O(jumps).

#include "util/contracts.h"
#include "util/rng.h"
#include "util/time.h"

namespace vifi::channel {

/// A two-state (ON/OFF) continuous-time Markov chain advanced lazily.
class TwoStateProcess {
 public:
  /// Mean sojourn times must be positive. \p start_on picks the initial
  /// state; pass rng-derived values for a stationary start.
  TwoStateProcess(Time mean_on, Time mean_off, bool start_on, Rng rng);

  /// Creates a process whose initial state is drawn from the stationary
  /// distribution.
  static TwoStateProcess stationary(Time mean_on, Time mean_off, Rng rng);

  /// Advances to \p now (non-decreasing across calls) and returns the state.
  bool on_at(Time now);

  /// Fraction of time spent ON in steady state.
  double stationary_on_fraction() const;

  /// The Gilbert–Elliott sojourn means this process was built with —
  /// exposed so fitted models (tracegen) can round-trip the parameters.
  Time mean_on() const { return mean_on_; }
  Time mean_off() const { return mean_off_; }

 private:
  void draw_next_transition();

  Time mean_on_;
  Time mean_off_;
  bool on_;
  Time next_transition_;
  Time last_query_ = Time::zero();
  Rng rng_;
};

}  // namespace vifi::channel
