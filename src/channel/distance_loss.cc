#include "channel/distance_loss.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace vifi::channel {

DistanceLossCurve::DistanceLossCurve(const Params& p) : params_(p) {
  VIFI_EXPECTS(p.p_max > 0.0 && p.p_max <= 1.0);
  VIFI_EXPECTS(p.midpoint_m > 0.0);
  VIFI_EXPECTS(p.width_m > 0.0);
  // Solve p_max / (1 + exp((d - mid)/w)) < 1e-3 for d.
  cutoff_m_ = range_for(1e-3);
}

double DistanceLossCurve::range_for(double p) const {
  VIFI_EXPECTS(p > 0.0 && p < 1.0);
  if (p >= reception_prob(0.0)) return 0.0;
  return std::max(0.0, params_.midpoint_m +
                           params_.width_m * std::log(params_.p_max / p - 1.0));
}

double DistanceLossCurve::reception_prob(double distance_m) const {
  VIFI_EXPECTS(distance_m >= 0.0);
  const double z = (distance_m - params_.midpoint_m) / params_.width_m;
  return params_.p_max / (1.0 + std::exp(z));
}

double synthesize_rssi_dbm(double distance_m, Rng& rng) {
  // Log-distance path loss, exponent 2.8 (suburban), 8 dB shadowing.
  const double d = std::max(distance_m, 1.0);
  const double mean = -40.0 - 10.0 * 2.8 * std::log10(d);
  return mean + rng.normal(0.0, 4.0);
}

}  // namespace vifi::channel
