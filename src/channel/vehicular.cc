#include "channel/vehicular.h"

#include <algorithm>
#include <string>

#include "util/contracts.h"

namespace vifi::channel {

namespace {
std::string link_name(const char* prefix, NodeId a, NodeId b) {
  return std::string(prefix) + "/" + std::to_string(a.value()) + "/" +
         std::to_string(b.value());
}
}  // namespace

VehicularChannel::VehicularChannel(VehicularChannelParams params,
                                   PositionFn positions, Rng rng)
    : params_(params),
      curve_(params.distance),
      positions_(std::move(positions)),
      rng_(rng),
      draw_rng_(rng.fork("per-packet-draws")) {
  VIFI_EXPECTS(positions_ != nullptr);
}

void VehicularChannel::mark_mobile(NodeId node) {
  VIFI_EXPECTS(node.valid());
  mobile_ids_.insert(node);
}

VehicularChannel::LinkState& VehicularChannel::link_state(NodeId tx,
                                                          NodeId rx) const {
  const sim::LinkKey key{tx, rx};
  auto it = links_.find(key);
  if (it == links_.end()) {
    Rng fork = rng_.fork(link_name("ge", tx, rx));
    it = links_
             .emplace(key, LinkState{TwoStateProcess::stationary(
                               params_.ge_mean_bad, params_.ge_mean_good,
                               fork.fork("proc"))})
             .first;
  }
  return it->second;
}

VehicularChannel::PathState& VehicularChannel::path_state(NodeId a,
                                                          NodeId b) const {
  if (b < a) std::swap(a, b);
  const sim::LinkKey key{a, b};
  auto it = paths_.find(key);
  if (it == paths_.end()) {
    Rng fork = rng_.fork(link_name("gray", a, b));
    it = paths_
             .emplace(key, PathState{TwoStateProcess::stationary(
                               params_.gray_mean_on, params_.gray_mean_off,
                               fork.fork("proc"))})
             .first;
  }
  return it->second;
}

VehicularChannel::NodeState* VehicularChannel::node_state(NodeId n) const {
  if (!mobile_ids_.contains(n)) return nullptr;
  auto it = mobile_.find(n);
  if (it == mobile_.end()) {
    Rng fork = rng_.fork(link_name("fade", n, n));
    it = mobile_
             .emplace(n, NodeState{TwoStateProcess::stationary(
                             params_.common_mean_on, params_.common_mean_off,
                             fork.fork("proc"))})
             .first;
  }
  return &it->second;
}

double VehicularChannel::geometric_reception_prob(NodeId tx, NodeId rx,
                                                  Time now) const {
  const double d =
      mobility::distance(positions_(tx, now), positions_(rx, now));
  return curve_.reception_prob(d);
}

double VehicularChannel::instantaneous_prob(NodeId tx, NodeId rx,
                                            Time now) const {
  const double d =
      mobility::distance(positions_(tx, now), positions_(rx, now));
  if (d > curve_.cutoff_m()) return 0.0;
  double p = curve_.reception_prob(d);
  if (link_state(tx, rx).ge_bad.on_at(now)) p *= params_.ge_bad_multiplier;
  if (path_state(tx, rx).gray_on.on_at(now)) p *= params_.gray_multiplier;
  for (NodeId end : {tx, rx}) {
    if (NodeState* ns = node_state(end); ns && ns->fade_on.on_at(now))
      p *= params_.common_multiplier;
  }
  return std::clamp(p, 0.0, 1.0);
}

bool VehicularChannel::sample_delivery(NodeId tx, NodeId rx, Time now) {
  return draw_rng_.bernoulli(instantaneous_prob(tx, rx, now));
}

double VehicularChannel::reception_prob(NodeId tx, NodeId rx,
                                        Time now) const {
  return instantaneous_prob(tx, rx, now);
}

}  // namespace vifi::channel
