#include "channel/trace_driven.h"

#include <algorithm>

#include "util/contracts.h"

namespace vifi::channel {

sim::LinkKey TraceLossModel::canonical(NodeId a, NodeId b) {
  if (b < a) std::swap(a, b);
  return {a, b};
}

void TraceLossModel::set_loss_rate(NodeId a, NodeId b, int sec, double loss) {
  VIFI_EXPECTS(sec >= 0);
  VIFI_EXPECTS(loss >= 0.0 && loss <= 1.0);
  auto& sched = pairs_[canonical(a, b)];
  if (sched.per_second.size() <= static_cast<std::size_t>(sec))
    sched.per_second.resize(static_cast<std::size_t>(sec) + 1, -1.0);
  sched.per_second[static_cast<std::size_t>(sec)] = loss;
  horizon_ = std::max(horizon_, sec + 1);
}

void TraceLossModel::set_constant_loss_rate(NodeId a, NodeId b, double loss) {
  VIFI_EXPECTS(loss >= 0.0 && loss <= 1.0);
  pairs_[canonical(a, b)].constant = loss;
}

double TraceLossModel::loss_rate(NodeId a, NodeId b, Time now) const {
  const auto it = pairs_.find(canonical(a, b));
  if (it == pairs_.end()) return 1.0;
  const PairSchedule& sched = it->second;
  const auto sec = static_cast<std::size_t>(
      std::max<std::int64_t>(0, now.to_micros() / 1'000'000));
  if (sec < sched.per_second.size() && sched.per_second[sec] >= 0.0)
    return sched.per_second[sec];
  if (sched.constant >= 0.0) return sched.constant;
  return 1.0;
}

bool TraceLossModel::sample_delivery(NodeId tx, NodeId rx, Time now) {
  return rng_.bernoulli(1.0 - loss_rate(tx, rx, now));
}

double TraceLossModel::reception_prob(NodeId tx, NodeId rx, Time now) const {
  return 1.0 - loss_rate(tx, rx, now);
}

}  // namespace vifi::channel
