#pragma once

/// \file distance_loss.h
/// Distance-dependent mean reception probability and a synthetic RSSI.
/// The shape (near-perfect close in, a soft shoulder, then rapid falloff)
/// matches outdoor 1 Mbps 802.11b with omni antennas — the fixed, lowest
/// rate the paper uses to maximise range (§5.1).

#include "util/rng.h"

namespace vifi::channel {

/// Logistic distance→delivery-probability curve.
class DistanceLossCurve {
 public:
  struct Params {
    double p_max = 0.97;       ///< Delivery probability right at the BS.
    double midpoint_m = 135.0; ///< Distance where probability halves.
    /// Shoulder softness: a wide shoulder creates the broad marginal bands
    /// (reception 0.2-0.7, several BSes at once) that the paper's campus
    /// exhibits — the regime where diversity pays.
    double width_m = 48.0;
  };

  DistanceLossCurve() : DistanceLossCurve(Params{}) {}
  explicit DistanceLossCurve(const Params& p);

  /// Mean delivery probability at the given distance (meters, >= 0).
  double reception_prob(double distance_m) const;

  /// Distance beyond which reception is negligible (< 0.1%); callers can
  /// skip work for pairs farther apart.
  double cutoff_m() const { return cutoff_m_; }

  /// Inverse of the curve: the distance at which reception falls to \p p
  /// (0 < p < 1; 0 when even distance zero is already below \p p). Links
  /// longer than this are *provably* below \p p for any fade state, since
  /// every stochastic multiplier the vehicular channel composes on top of
  /// this curve is <= 1 — the basis for spatial interference culling.
  double range_for(double p) const;

  const Params& params() const { return params_; }

 private:
  Params params_;
  double cutoff_m_;
};

/// Synthetic received signal strength (dBm) for beacon logs: log-distance
/// path loss with shadowing noise. Only its *ordering* matters — the RSSI
/// handoff policy picks the strongest BS.
double synthesize_rssi_dbm(double distance_m, Rng& rng);

}  // namespace vifi::channel
