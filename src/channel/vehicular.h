#pragma once

/// \file vehicular.h
/// The stochastic vehicular radio environment used for "deployment"
/// experiments (the reproduction's VanLAN). It composes, per link:
///
///   reception = distance_curve(d)            (slow, geometry-driven)
///             x Gilbert–Elliott burst state  (fast, path-dependent fading)
///             x gray-period state            (rare seconds-long collapses)
///             x common-mode vehicle fade     (small receiver-dependent term)
///
/// Calibration targets are the paper's measured statistics, not RF truth:
/// Fig. 5 (number of BSes audible per second), Fig. 6(a) (burstiness:
/// P(loss_{i+k} | loss_i) decaying from ~0.7 to the unconditional rate) and
/// Fig. 6(b) (losses nearly independent across BSes — the common-mode fade
/// supplies the paper's small residual correlation).

#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "channel/distance_loss.h"
#include "channel/loss_model.h"
#include "channel/markov.h"
#include "mobility/vec2.h"
#include "util/rng.h"

namespace vifi::channel {

struct VehicularChannelParams {
  DistanceLossCurve::Params distance{};

  // Gilbert–Elliott burst fading (per directed link).
  Time ge_mean_good = Time::seconds(3.0);
  Time ge_mean_bad = Time::seconds(0.9);
  double ge_bad_multiplier = 0.12;  ///< Reception multiplier in Bad state.

  // Gray periods (per undirected path; §3.3): sharp unpredictable drops
  // even close to a BS.
  Time gray_mean_off = Time::seconds(55.0);
  Time gray_mean_on = Time::seconds(4.0);
  double gray_multiplier = 0.05;

  // Common-mode fade tied to a *mobile node* (vehicle passing an
  // obstruction). Affects all of that node's links at once; kept weak so
  // cross-BS losses stay roughly independent (Fig. 6b).
  Time common_mean_off = Time::seconds(30.0);
  Time common_mean_on = Time::seconds(1.2);
  double common_multiplier = 0.45;
};

/// Stochastic per-link delivery model; see file comment.
class VehicularChannel final : public LossModel {
 public:
  /// \p positions maps any registered node to its position at a time.
  using PositionFn = std::function<mobility::Vec2(NodeId, Time)>;

  VehicularChannel(VehicularChannelParams params, PositionFn positions,
                   Rng rng);

  /// Marks a node as mobile: it gets a common-mode fade process.
  void mark_mobile(NodeId node);

  bool sample_delivery(NodeId tx, NodeId rx, Time now) override;
  double reception_prob(NodeId tx, NodeId rx, Time now) const override;

  /// Distance-only mean reception (no fade states); for analysis and tests.
  double geometric_reception_prob(NodeId tx, NodeId rx, Time now) const;

  const VehicularChannelParams& params() const { return params_; }

 private:
  struct LinkState {
    TwoStateProcess ge_bad;  // ON == Bad (burst-loss) state
  };
  struct PathState {
    TwoStateProcess gray_on;  // ON == gray period
  };
  struct NodeState {
    TwoStateProcess fade_on;  // ON == vehicle-wide fade
  };

  LinkState& link_state(NodeId tx, NodeId rx) const;
  PathState& path_state(NodeId a, NodeId b) const;
  NodeState* node_state(NodeId n) const;  // nullptr if not mobile
  double instantaneous_prob(NodeId tx, NodeId rx, Time now) const;

  VehicularChannelParams params_;
  DistanceLossCurve curve_;
  PositionFn positions_;
  mutable Rng rng_;
  mutable std::unordered_map<sim::LinkKey, LinkState> links_;
  mutable std::unordered_map<sim::LinkKey, PathState> paths_;  // a < b key
  mutable std::unordered_map<NodeId, NodeState> mobile_;
  std::unordered_set<NodeId> mobile_ids_;
  mutable Rng draw_rng_;
};

}  // namespace vifi::channel
