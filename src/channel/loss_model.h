#pragma once

/// \file loss_model.h
/// The channel abstraction: given (transmitter, receiver, time), does a
/// frame get through? Two families implement it — the stochastic vehicular
/// model used for "deployment" experiments (VanLAN role) and the
/// trace-driven schedule used for DieselNet-style replay (§5.1).

#include "sim/ids.h"
#include "util/time.h"

namespace vifi::channel {

using sim::NodeId;

/// Per-link packet-delivery oracle.
///
/// `sample_delivery` draws one channel realisation for a single frame and
/// may advance hidden burst state; it must be called in non-decreasing time
/// order per link. `reception_prob` is a side-effect-free snapshot of the
/// current average delivery probability (what a perfect estimator would
/// know), used by idealised policies and analysis.
class LossModel {
 public:
  virtual ~LossModel() = default;

  virtual bool sample_delivery(NodeId tx, NodeId rx, Time now) = 0;

  virtual double reception_prob(NodeId tx, NodeId rx, Time now) const = 0;
};

}  // namespace vifi::channel
