#pragma once

/// \file voip.h
/// The VoIP workload and scorer (§5.3.2): bidirectional G.729 streams
/// (20-byte payload every 20 ms), a fixed delay budget (coding 25 ms,
/// jitter buffer 60 ms, wired 40 ms), per-packet deadline of 52 ms on the
/// wireless segment, 3-second MoS windows, and interruption tracking — an
/// interruption occurs when the window MoS drops below 2.

#include <cstdint>
#include <map>
#include <vector>

#include "apps/mos.h"
#include "apps/transport.h"
#include "sim/simulator.h"
#include "util/time.h"

namespace vifi::apps {

struct VoipParams {
  Time packet_interval = Time::millis(20);
  int payload_bytes = 20;
  VoipDelayBudget budget{};
  Time window = Time::seconds(3.0);
  double interruption_mos = 2.0;
  int flow = 77;
};

/// Result of one VoIP call.
struct VoipResult {
  std::vector<double> window_mos;        ///< MoS per 3 s window.
  std::vector<double> session_lengths_s; ///< Runs of windows with MoS >= 2.
  double mean_mos = 0.0;
  double median_session_s = 0.0;         ///< Time-weighted median.
  std::int64_t packets_sent = 0;
  std::int64_t packets_on_time = 0;
  double effective_loss() const {
    return packets_sent == 0
               ? 0.0
               : 1.0 - static_cast<double>(packets_on_time) / packets_sent;
  }
};

/// Runs a bidirectional VoIP call over the transport for the given
/// duration; call run() after the simulator finishes to collect results.
class VoipCall {
 public:
  VoipCall(sim::Simulator& sim, Transport& transport, VoipParams params = {});

  /// Starts sending; packets flow until \p until.
  void start(Time until);

  /// Scores the call; valid once the simulator has run past `until`.
  VoipResult result() const;

  const VoipParams& params() const { return params_; }

 private:
  void on_tick();
  void on_delivery(const net::PacketRef& p);

  sim::Simulator& sim_;
  Transport& transport_;
  VoipParams params_;
  sim::PeriodicTimer tick_;
  Time until_;
  std::uint64_t next_seq_ = 0;

  struct Sent {
    Time at;
    bool on_time = false;
  };
  /// Keyed by (direction, seq).
  std::map<std::pair<int, std::uint64_t>, Sent> sent_;
};

/// Session lengths (seconds) from a MoS-per-window series: maximal runs of
/// windows with MoS >= threshold.
std::vector<double> mos_session_lengths(const std::vector<double>& window_mos,
                                        double threshold, double window_s);

}  // namespace vifi::apps
