#include "apps/tcp.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace vifi::apps {

namespace {
Direction reverse(Direction d) {
  return d == Direction::Upstream ? Direction::Downstream
                                  : Direction::Upstream;
}
}  // namespace

TcpTransfer::TcpTransfer(sim::Simulator& sim, Transport& transport, int flow,
                         Direction dir, std::int64_t total_bytes,
                         TcpParams params)
    : sim_(sim),
      transport_(transport),
      flow_(flow),
      dir_(dir),
      total_(total_bytes),
      params_(params) {
  VIFI_EXPECTS(total_bytes > 0);
  VIFI_EXPECTS(params.mss > 0);
  const auto segments = static_cast<std::size_t>(
      (total_ + params_.mss - 1) / params_.mss);
  got_.assign(segments, false);
  cwnd_ = static_cast<double>(params_.init_cwnd_segments) * params_.mss;
  ssthresh_ = static_cast<double>(params_.init_ssthresh);
  transport_.subscribe(flow_,
                       [this](const net::PacketRef& p) { on_packet(p); });
}

TcpTransfer::~TcpTransfer() {
  abort();
  // Late packets for this flow may still be in flight; drop them rather
  // than dispatching into a dead object.
  transport_.unsubscribe(flow_);
}

void TcpTransfer::start() {
  VIFI_EXPECTS(!started_);
  started_ = true;
  started_at_ = sim_.now();
  last_progress_ = sim_.now();
  // Client requests the file: SYN travels opposite to the payload.
  TcpSegment syn;
  syn.kind = TcpSegment::Kind::Syn;
  ++syn_attempts_;
  transport_.send(reverse(dir_), params_.header_bytes, flow_, 0, syn);
  arm_rto();  // SYN is also guarded by the RTO
}

void TcpTransfer::abort() {
  if (aborted_) return;
  aborted_ = true;
  if (rto_armed_) sim_.cancel(rto_event_);
  rto_armed_ = false;
}

void TcpTransfer::set_completion_handler(std::function<void()> fn) {
  on_complete_ = std::move(fn);
}

void TcpTransfer::on_packet(const net::PacketRef& p) {
  if (aborted_ || complete_) return;
  const TcpSegment* seg = std::get_if<TcpSegment>(&p->app_data);
  if (seg == nullptr) return;
  switch (seg->kind) {
    case TcpSegment::Kind::Syn: {
      if (p->dir == dir_) return;  // stray
      // Server side: answer and establish.
      TcpSegment synack;
      synack.kind = TcpSegment::Kind::SynAck;
      transport_.send(dir_, params_.header_bytes, flow_, 0, synack);
      establish();
      break;
    }
    case TcpSegment::Kind::SynAck:
      // Client side: connection up; data will follow from the server.
      last_progress_ = sim_.now();
      break;
    case TcpSegment::Kind::Data:
      if (p->dir != dir_) return;
      on_data(*seg);
      break;
    case TcpSegment::Kind::Ack:
      if (p->dir != reverse(dir_)) return;
      on_ack(*seg);
      break;
  }
}

// ---------------------------------------------------------------- sender --

void TcpTransfer::establish() {
  if (established_) return;
  established_ = true;
  last_progress_ = sim_.now();
  backoff_ = 0;
  send_window();
}

void TcpTransfer::send_window() {
  if (aborted_ || complete_) return;
  while (next_seq_ < total_ &&
         static_cast<double>(next_seq_ - highest_ack_) < cwnd_) {
    send_segment(next_seq_, /*is_retransmit=*/false);
    next_seq_ += std::min<std::int64_t>(params_.mss, total_ - next_seq_);
  }
  arm_rto();
}

void TcpTransfer::send_segment(std::int64_t seq, bool is_retransmit) {
  TcpSegment seg;
  seg.kind = TcpSegment::Kind::Data;
  seg.seq = seq;
  seg.len = static_cast<int>(std::min<std::int64_t>(params_.mss, total_ - seq));
  if (is_retransmit) {
    ++retransmissions_;
    // Karn: a retransmitted segment cannot provide an RTT sample.
    if (timed_seq_ == seq) timed_seq_ = -1;
  } else if (timed_seq_ < 0) {
    timed_seq_ = seq;
    timed_sent_at_ = sim_.now();
  }
  transport_.send(dir_, params_.header_bytes + seg.len, flow_,
                  static_cast<std::uint64_t>(seq), seg);
}

Time TcpTransfer::current_rto() const {
  Time base = params_.initial_rto;
  if (srtt_valid_) {
    base = Time::seconds(srtt_s_ + std::max(4.0 * rttvar_s_, 0.010));
  }
  base = std::max(base, params_.min_rto);
  for (int i = 0; i < backoff_; ++i) base = base * 2.0;
  return std::min(base, params_.max_rto);
}

void TcpTransfer::arm_rto() {
  if (aborted_ || complete_) return;
  if (rto_armed_) sim_.cancel(rto_event_);
  rto_armed_ = true;
  rto_event_ = sim_.schedule(current_rto(), [this] {
    rto_armed_ = false;
    on_rto();
  });
}

void TcpTransfer::note_rtt_sample(Time rtt) {
  const double r = rtt.to_seconds();
  if (!srtt_valid_) {
    srtt_s_ = r;
    rttvar_s_ = r / 2.0;
    srtt_valid_ = true;
  } else {
    rttvar_s_ = 0.75 * rttvar_s_ + 0.25 * std::abs(srtt_s_ - r);
    srtt_s_ = 0.875 * srtt_s_ + 0.125 * r;
  }
}

void TcpTransfer::on_ack(const TcpSegment& seg) {
  if (!established_) establish();
  if (seg.ack > highest_ack_) {
    // New data acknowledged.
    highest_ack_ = seg.ack;
    last_progress_ = sim_.now();
    dupacks_ = 0;
    backoff_ = 0;
    if (timed_seq_ >= 0 && seg.ack > timed_seq_) {
      note_rtt_sample(sim_.now() - timed_sent_at_);
      timed_seq_ = -1;
    }
    if (cwnd_ < ssthresh_) {
      cwnd_ += params_.mss;  // slow start
    } else {
      cwnd_ += static_cast<double>(params_.mss) * params_.mss / cwnd_;
    }
    if (highest_ack_ >= total_) {
      complete_ = true;
      completed_at_ = sim_.now();
      if (rto_armed_) sim_.cancel(rto_event_);
      rto_armed_ = false;
      if (on_complete_) on_complete_();
      return;
    }
    send_window();
  } else if (seg.ack == highest_ack_ && next_seq_ > highest_ack_) {
    ++dupacks_;
    if (dupacks_ == params_.dupack_threshold) {
      // Fast retransmit.
      const double in_flight =
          static_cast<double>(next_seq_ - highest_ack_);
      ssthresh_ = std::max(in_flight / 2.0,
                           2.0 * params_.mss);
      cwnd_ = ssthresh_;
      send_segment(highest_ack_, /*is_retransmit=*/true);
      arm_rto();
    }
  }
}

void TcpTransfer::on_rto() {
  if (aborted_ || complete_) return;
  if (!established_) {
    // Retransmit the SYN (client side has nothing else to do).
    TcpSegment syn;
    syn.kind = TcpSegment::Kind::Syn;
    ++syn_attempts_;
    ++retransmissions_;
    ++backoff_;
    transport_.send(reverse(dir_), params_.header_bytes, flow_, 0, syn);
    arm_rto();
    return;
  }
  if (next_seq_ <= highest_ack_) return;  // nothing outstanding
  // Timeout: multiplicative backoff, restart from the hole.
  ssthresh_ = std::max(static_cast<double>(next_seq_ - highest_ack_) / 2.0,
                       2.0 * params_.mss);
  cwnd_ = params_.mss;
  ++backoff_;
  dupacks_ = 0;
  send_segment(highest_ack_, /*is_retransmit=*/true);
  arm_rto();
}

// -------------------------------------------------------------- receiver --

void TcpTransfer::on_data(const TcpSegment& seg) {
  const auto index = static_cast<std::size_t>(seg.seq / params_.mss);
  if (index < got_.size()) got_[index] = true;
  while (rcv_next_ < total_) {
    const auto i = static_cast<std::size_t>(rcv_next_ / params_.mss);
    if (!got_[i]) break;
    rcv_next_ += std::min<std::int64_t>(params_.mss, total_ - rcv_next_);
  }
  send_ack_segment();
}

void TcpTransfer::send_ack_segment() {
  TcpSegment ack;
  ack.kind = TcpSegment::Kind::Ack;
  ack.ack = rcv_next_;
  transport_.send(reverse(dir_), params_.header_bytes, flow_,
                  static_cast<std::uint64_t>(rcv_next_), ack);
}

}  // namespace vifi::apps
