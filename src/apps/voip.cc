#include "apps/voip.h"

#include <algorithm>

#include "analysis/sessions.h"
#include "util/contracts.h"
#include "util/stats.h"

namespace vifi::apps {

VoipCall::VoipCall(sim::Simulator& sim, Transport& transport,
                   VoipParams params)
    : sim_(sim),
      transport_(transport),
      params_(params),
      tick_(sim, params.packet_interval, [this] { on_tick(); }) {
  transport_.subscribe(params_.flow,
                       [this](const net::PacketRef& p) { on_delivery(p); });
}

void VoipCall::start(Time until) {
  until_ = until;
  tick_.start_after(Time::zero() + params_.packet_interval);
}

void VoipCall::on_tick() {
  if (sim_.now() >= until_) {
    tick_.stop();
    return;
  }
  const std::uint64_t seq = next_seq_++;
  for (const Direction dir : {Direction::Upstream, Direction::Downstream}) {
    sent_[{static_cast<int>(dir), seq}] = {sim_.now(), false};
    transport_.send(dir, params_.payload_bytes, params_.flow, seq);
  }
}

void VoipCall::on_delivery(const net::PacketRef& p) {
  const auto key = std::make_pair(static_cast<int>(p->dir), p->app_seq);
  const auto it = sent_.find(key);
  if (it == sent_.end()) return;
  const double wireless_ms = (sim_.now() - it->second.at).to_millis();
  if (wireless_ms <= params_.budget.wireless_deadline_ms())
    it->second.on_time = true;
}

VoipResult VoipCall::result() const {
  VoipResult r;
  if (sent_.empty()) return r;
  // Bucket packets into 3-second windows by send time.
  const double window_s = params_.window.to_seconds();
  const auto n_windows = static_cast<std::size_t>(
      until_.to_seconds() / window_s + 0.5);
  std::vector<std::int64_t> total(n_windows, 0), on_time(n_windows, 0);
  for (const auto& [key, sent] : sent_) {
    (void)key;
    const auto w = static_cast<std::size_t>(sent.at.to_seconds() / window_s);
    if (w >= n_windows) continue;
    ++total[w];
    if (sent.on_time) ++on_time[w];
    ++r.packets_sent;
    if (sent.on_time) ++r.packets_on_time;
  }
  // Score each window. The delay term is the full budget (a fixed-depth
  // jitter buffer plays out at a fixed mouth-to-ear delay; §5.3.2 aims at
  // 177 ms); the loss term absorbs both losses and deadline misses.
  const double d = params_.budget.coding_ms + params_.budget.jitter_buffer_ms +
                   params_.budget.wired_ms +
                   params_.budget.wireless_deadline_ms();
  r.window_mos.reserve(n_windows);
  for (std::size_t w = 0; w < n_windows; ++w) {
    const double loss =
        total[w] == 0 ? 1.0
                      : 1.0 - static_cast<double>(on_time[w]) / total[w];
    r.window_mos.push_back(mos_g729(d, loss));
  }
  r.session_lengths_s = mos_session_lengths(
      r.window_mos, params_.interruption_mos, window_s);
  r.median_session_s = analysis::median_session_length(r.session_lengths_s);
  RunningStats ms;
  for (double m : r.window_mos) ms.add(m);
  r.mean_mos = ms.count() ? ms.mean() : 0.0;
  return r;
}

std::vector<double> mos_session_lengths(const std::vector<double>& window_mos,
                                        double threshold, double window_s) {
  VIFI_EXPECTS(window_s > 0.0);
  std::vector<double> lengths;
  double run = 0.0;
  for (double m : window_mos) {
    if (m >= threshold) {
      run += window_s;
    } else if (run > 0.0) {
      lengths.push_back(run);
      run = 0.0;
    }
  }
  if (run > 0.0) lengths.push_back(run);
  return lengths;
}

}  // namespace vifi::apps
