#include "apps/transport.h"

#include "util/contracts.h"

namespace vifi::apps {

VifiTransport::VifiTransport(core::VifiSystem& system)
    : system_(system), vehicle_(system.vehicle_id()) {
  system_.vehicle().set_delivery_handler(
      [this](const net::PacketRef& p) { dispatch(p); });
  system_.host().set_delivery_handler(
      [this](const net::PacketRef& p) { dispatch(p); });
}

VifiTransport::VifiTransport(core::VifiSystem& system, sim::NodeId vehicle)
    : system_(system), vehicle_(vehicle) {
  system_.vehicle(vehicle_).set_delivery_handler(
      [this](const net::PacketRef& p) { dispatch(p); });
  system_.host().set_delivery_handler(
      vehicle_, [this](const net::PacketRef& p) { dispatch(p); });
}

void VifiTransport::send(Direction dir, int bytes, int flow,
                         std::uint64_t app_seq, net::AppPayload data) {
  if (dir == Direction::Upstream)
    system_.send_up(bytes, flow, app_seq, std::move(data), vehicle_);
  else
    system_.send_down(bytes, flow, app_seq, std::move(data), vehicle_);
}

void VifiTransport::subscribe(int flow, Handler handler) {
  VIFI_EXPECTS(handler != nullptr);
  handlers_[flow] = std::move(handler);
}

void VifiTransport::unsubscribe(int flow) { handlers_.erase(flow); }

Time VifiTransport::now() const { return system_.simulator().now(); }

void VifiTransport::dispatch(const net::PacketRef& p) {
  const auto it = handlers_.find(p->flow);
  if (it != handlers_.end()) it->second(p);
}

}  // namespace vifi::apps
