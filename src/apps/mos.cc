#include "apps/mos.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace vifi::apps {

double r_factor_g729(double mouth_to_ear_delay_ms, double loss_rate) {
  VIFI_EXPECTS(mouth_to_ear_delay_ms >= 0.0);
  VIFI_EXPECTS(loss_rate >= 0.0 && loss_rate <= 1.0);
  const double d = mouth_to_ear_delay_ms;
  const double e = loss_rate;
  const double heaviside = d > 177.3 ? 1.0 : 0.0;
  return 94.2 - 0.024 * d - 0.11 * (d - 177.3) * heaviside - 11.0 -
         40.0 * std::log10(1.0 + 10.0 * e);
}

double mos_from_r(double r) {
  if (r < 0.0) return 1.0;
  if (r > 100.0) return 4.5;
  return 1.0 + 0.035 * r + 7e-6 * r * (r - 60.0) * (100.0 - r);
}

double mos_g729(double mouth_to_ear_delay_ms, double loss_rate) {
  return mos_from_r(r_factor_g729(mouth_to_ear_delay_ms, loss_rate));
}

}  // namespace vifi::apps
