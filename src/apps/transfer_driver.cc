#include "apps/transfer_driver.h"

#include <algorithm>

#include "util/contracts.h"
#include "util/stats.h"

namespace vifi::apps {

double TransferDriverResult::median_transfer_time_s() const {
  if (transfer_times_s.empty()) return 0.0;
  return median(transfer_times_s);
}

double TransferDriverResult::mean_transfers_per_session() const {
  if (transfers_per_session.empty()) return 0.0;
  double sum = 0.0;
  for (int n : transfers_per_session) sum += n;
  return sum / static_cast<double>(transfers_per_session.size());
}

double TransferDriverResult::transfers_per_second() const {
  return duration_s > 0.0 ? completed / duration_s : 0.0;
}

TransferDriver::TransferDriver(sim::Simulator& sim, Transport& transport,
                               Direction dir, TransferDriverParams params)
    : sim_(sim),
      transport_(transport),
      dir_(dir),
      params_(params),
      stall_check_(sim, Time::seconds(1.0), [this] { check_stall(); }),
      next_flow_(params.first_flow) {}

TransferDriver::~TransferDriver() {
  if (current_) current_->abort();
}

void TransferDriver::start(Time until) {
  VIFI_EXPECTS(!running_);
  running_ = true;
  until_ = until;
  started_ = sim_.now();
  stall_check_.start();
  launch_next();
}

void TransferDriver::launch_next() {
  if (sim_.now() >= until_) {
    running_ = false;
    stall_check_.stop();
    close_session();
    result_.duration_s = (sim_.now() - started_).to_seconds();
    return;
  }
  current_ = std::make_unique<TcpTransfer>(
      sim_, transport_, next_flow_++, dir_, params_.transfer_bytes,
      params_.tcp);
  current_->set_completion_handler([this] { on_complete(); });
  current_->start();
}

void TransferDriver::on_complete() {
  result_.transfer_times_s.push_back(
      (current_->completion_time() - current_->start_time()).to_seconds());
  ++result_.completed;
  ++session_count_;
  // Start the next fetch immediately (back-to-back workload).
  sim_.schedule(Time::micros(1), [this] { launch_next(); });
}

void TransferDriver::check_stall() {
  if (!running_ || !current_ || current_->complete()) return;
  if (sim_.now() >= until_) {
    current_->abort();
    running_ = false;
    stall_check_.stop();
    close_session();
    result_.duration_s = (sim_.now() - started_).to_seconds();
    return;
  }
  if (sim_.now() - current_->last_progress() >= params_.stall_timeout) {
    current_->abort();
    ++result_.aborted;
    close_session();
    launch_next();
  }
}

void TransferDriver::close_session() {
  if (session_count_ > 0)
    result_.transfers_per_session.push_back(session_count_);
  session_count_ = 0;
}

TransferDriverResult TransferDriver::result() const { return result_; }

}  // namespace vifi::apps
