#pragma once

/// \file transfer_driver.h
/// The §5.3.1 short-transfer workload: repeatedly fetch a 10 KB file;
/// transfers making no progress for ten seconds are terminated and started
/// afresh; a *session* is a period in which no transfer attempt was
/// terminated for lack of progress.

#include <memory>
#include <vector>

#include "apps/tcp.h"
#include "apps/transport.h"
#include "sim/simulator.h"

namespace vifi::apps {

struct TransferDriverParams {
  std::int64_t transfer_bytes = 10 * 1024;
  Time stall_timeout = Time::seconds(10.0);
  TcpParams tcp{};
  int first_flow = 1000;  ///< Flow ids: one per transfer attempt.
};

struct TransferDriverResult {
  std::vector<double> transfer_times_s;    ///< Completed transfers only.
  std::vector<int> transfers_per_session;  ///< Completed count per session.
  int completed = 0;
  int aborted = 0;
  double duration_s = 0.0;

  double median_transfer_time_s() const;
  double mean_transfers_per_session() const;
  double transfers_per_second() const;
};

/// Runs back-to-back transfers in one direction until `until`.
class TransferDriver {
 public:
  TransferDriver(sim::Simulator& sim, Transport& transport, Direction dir,
                 TransferDriverParams params = {});
  ~TransferDriver();
  TransferDriver(const TransferDriver&) = delete;
  TransferDriver& operator=(const TransferDriver&) = delete;

  void start(Time until);

  /// Valid after the simulator has run past `until`.
  TransferDriverResult result() const;

 private:
  void launch_next();
  void on_complete();
  void check_stall();
  void close_session();

  sim::Simulator& sim_;
  Transport& transport_;
  Direction dir_;
  TransferDriverParams params_;
  sim::PeriodicTimer stall_check_;
  Time until_;
  Time started_;
  int next_flow_;
  std::unique_ptr<TcpTransfer> current_;
  TransferDriverResult result_;
  int session_count_ = 0;
  bool running_ = false;
};

}  // namespace vifi::apps
