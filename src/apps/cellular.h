#pragma once

/// \file cellular.h
/// The EVDO Rev. A comparison link (§5.3.1): an always-on, asymmetric-rate
/// point-to-point bearer with cellular-scale latency. Calibrated so 10 KB
/// TCP fetches land near the paper's medians (~0.75 s down, ~1.2 s up).

#include <deque>

#include "apps/transport.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace vifi::apps {

struct CellularParams {
  double down_rate_bps = 900e3;  ///< EVDO Rev. A forward link (typical).
  double up_rate_bps = 250e3;    ///< Reverse link (typical).
  Time one_way_latency = Time::millis(75);
  double loss = 0.002;
};

class CellularTransport final : public Transport {
 public:
  CellularTransport(sim::Simulator& sim, CellularParams params, Rng rng);

  void send(Direction dir, int bytes, int flow, std::uint64_t app_seq,
            net::AppPayload data = {}) override;
  void subscribe(int flow, Handler handler) override;
  void unsubscribe(int flow) override { handlers_.erase(flow); }
  Time now() const override { return sim_.now(); }

 private:
  sim::Simulator& sim_;
  CellularParams params_;
  Rng rng_;
  net::PacketFactory factory_;
  std::map<int, Handler> handlers_;
  Time down_free_;
  Time up_free_;
};

}  // namespace vifi::apps
