#pragma once

/// \file mos.h
/// VoIP call quality scoring (§5.3.2): the E-model R-factor for the G.729
/// codec reduced per Cole & Rosenbluth, and its mapping to the Mean Opinion
/// Score. MoS labels: 5 perfect, 4 fair, 3 annoying, 2 very annoying,
/// 1 impossible to communicate.

namespace vifi::apps {

/// G.729 R-factor with expectation factor A = 0:
///   R = 94.2 - 0.024 d - 0.11 (d - 177.3) H(d - 177.3)
///       - 11 - 40 log10(1 + 10 e)
/// where d is the mouth-to-ear delay in milliseconds and e the total loss
/// rate (network losses plus late arrivals) in [0, 1].
double r_factor_g729(double mouth_to_ear_delay_ms, double loss_rate);

/// MoS from R: 1 if R < 0; 4.5 if R > 100;
/// else 1 + 0.035 R + 7e-6 R (R - 60)(100 - R).
double mos_from_r(double r);

/// Convenience composition.
double mos_g729(double mouth_to_ear_delay_ms, double loss_rate);

/// The fixed delay budget used in the evaluation (§5.3.2).
struct VoipDelayBudget {
  double coding_ms = 25.0;
  double jitter_buffer_ms = 60.0;
  double wired_ms = 40.0;  ///< Cross-country wired segment.
  /// Mouth-to-ear target; beyond it the delay impairment grows sharply.
  double target_mouth_to_ear_ms = 177.0;
  /// Maximum tolerable wireless-segment delay: packets later than this are
  /// counted as lost ("... packets that take more than 52 ms in the
  /// wireless part should be considered lost").
  double wireless_deadline_ms() const {
    return target_mouth_to_ear_ms - coding_ms - jitter_buffer_ms - wired_ms;
  }
};

}  // namespace vifi::apps
