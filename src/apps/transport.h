#pragma once

/// \file transport.h
/// The application-facing datagram service between the vehicle and the
/// wired host. Applications (VoIP, TCP, probes) are transport-agnostic:
/// they run unchanged over ViFi/BRR (VifiTransport) or over the cellular
/// comparison link (§5.3.1).

#include <functional>
#include <map>

#include "core/system.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace vifi::apps {

using net::Direction;

/// Unreliable datagram transport between the vehicle end and the host end.
class Transport {
 public:
  using Handler = std::function<void(const net::PacketRef&)>;

  virtual ~Transport() = default;

  /// Sends \p bytes toward the other end. Upstream = vehicle-to-host.
  virtual void send(Direction dir, int bytes, int flow,
                    std::uint64_t app_seq, net::AppPayload data = {}) = 0;

  /// Registers the unique-delivery handler for a flow (both directions;
  /// the packet's dir field disambiguates).
  virtual void subscribe(int flow, Handler handler) = 0;

  /// Removes a flow's handler. Must be called before the handler's
  /// captures die — late packets for the flow may still be in flight.
  virtual void unsubscribe(int flow) = 0;

  virtual Time now() const = 0;
};

/// Transport over a live ViFi (or BRR-configured) deployment.
///
/// The single-argument form binds the whole system (first vehicle +
/// catch-all host handler) — the historical single-vehicle behaviour. The
/// two-argument form binds one vehicle of a fleet: it registers a
/// per-vehicle host handler, so one VifiTransport per vehicle coexists on
/// the shared wired host.
class VifiTransport final : public Transport {
 public:
  explicit VifiTransport(core::VifiSystem& system);
  VifiTransport(core::VifiSystem& system, sim::NodeId vehicle);

  /// The vehicle this transport serves.
  sim::NodeId vehicle() const { return vehicle_; }

  void send(Direction dir, int bytes, int flow, std::uint64_t app_seq,
            net::AppPayload data = {}) override;
  void subscribe(int flow, Handler handler) override;
  void unsubscribe(int flow) override;
  Time now() const override;

 private:
  void dispatch(const net::PacketRef& p);

  core::VifiSystem& system_;
  sim::NodeId vehicle_;
  std::map<int, Handler> handlers_;
};

}  // namespace vifi::apps
