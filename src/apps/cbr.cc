#include "apps/cbr.h"

#include "obs/metrics.h"
#include "util/contracts.h"

namespace vifi::apps {

CbrWorkload::CbrWorkload(sim::Simulator& sim, Transport& transport,
                         CbrParams params)
    : sim_(sim),
      transport_(transport),
      params_(params),
      tick_(sim, params.interval, [this] { on_tick(); }) {
  transport_.subscribe(params_.flow,
                       [this](const net::PacketRef& p) { on_delivery(p); });
}

void CbrWorkload::start(Time until) {
  until_ = until;
  tick_.start_after(params_.interval);
}

void CbrWorkload::on_tick() {
  if (sim_.now() >= until_) {
    tick_.stop();
    return;
  }
  const auto slot = slots_++;
  delivered_per_slot_.push_back(0);
  slot_start_.push_back(sim_.now());
  transport_.send(Direction::Upstream, params_.payload_bytes, params_.flow,
                  slot);
  transport_.send(Direction::Downstream, params_.payload_bytes, params_.flow,
                  slot);
}

void CbrWorkload::on_delivery(const net::PacketRef& p) {
  const auto slot = static_cast<std::size_t>(p->app_seq);
  if (slot >= slots_) return;
  if (sim_.now() - slot_start_[slot] > params_.delivery_deadline) return;
  if (delivered_per_slot_[slot] < 2) ++delivered_per_slot_[slot];
}

analysis::SlotStream CbrWorkload::slot_stream() const {
  analysis::SlotStream s;
  s.slot = params_.interval;
  s.per_slot_max = 2;
  s.delivered = delivered_per_slot_;
  return s;
}

std::int64_t CbrWorkload::delivered() const {
  std::int64_t n = 0;
  for (int d : delivered_per_slot_) n += d;
  return n;
}

void CbrWorkload::publish(obs::MetricsRegistry& registry) const {
  registry.counter("app.cbr_sent").add(static_cast<double>(sent()));
  registry.counter("app.cbr_delivered").add(static_cast<double>(delivered()));
  registry.counter("app.cbr_slots").add(static_cast<double>(slots_));
}

}  // namespace vifi::apps
