#pragma once

/// \file tcp.h
/// A compact TCP (Reno-style) sufficient for the paper's short-transfer
/// workload: three-way handshake, slow start, congestion avoidance,
/// triple-duplicate-ACK fast retransmit, and an RFC 6298-style RTO with a
/// 1-second minimum (the figure from which ViFi's salvage window derives,
/// §4.5). Both connection endpoints live in this object; the Transport
/// moves their segments across the wireless system.

#include <cstdint>
#include <functional>
#include <vector>

#include "apps/transport.h"
#include "sim/simulator.h"
#include "util/time.h"

namespace vifi::apps {

struct TcpParams {
  int mss = 1200;
  int init_cwnd_segments = 2;
  std::int64_t init_ssthresh = 64 * 1024;
  int dupack_threshold = 3;
  Time min_rto = Time::seconds(1.0);
  Time max_rto = Time::seconds(16.0);
  Time initial_rto = Time::seconds(1.0);
  int header_bytes = 40;  ///< TCP/IP header on every segment.
};

/// Segment exchanged through the Transport's app_data. The wire struct
/// lives at the net layer (net/payload.h) so packets can store it inline.
using TcpSegment = net::TcpSegmentData;

/// One connection transferring `total_bytes` in direction `dir`
/// (Downstream = wired host serves the file to the vehicle).
class TcpTransfer {
 public:
  TcpTransfer(sim::Simulator& sim, Transport& transport, int flow,
              Direction dir, std::int64_t total_bytes, TcpParams params = {});
  ~TcpTransfer();
  TcpTransfer(const TcpTransfer&) = delete;
  TcpTransfer& operator=(const TcpTransfer&) = delete;

  /// Kicks off the handshake (client side = receiver of the file).
  void start();

  /// Cancels all timers; no further segments are sent.
  void abort();

  bool complete() const { return complete_; }
  Time completion_time() const { return completed_at_; }
  Time start_time() const { return started_at_; }
  /// Monotone progress marker for the driver's 10 s stall rule.
  Time last_progress() const { return last_progress_; }
  std::int64_t bytes_acked() const { return highest_ack_; }
  int retransmissions() const { return retransmissions_; }

  /// Invoked once when the last byte is cumulatively acknowledged.
  void set_completion_handler(std::function<void()> fn);

 private:
  // --- sender side ---
  void establish();
  void send_window();
  void send_segment(std::int64_t seq, bool is_retransmit);
  void on_ack(const TcpSegment& seg);
  void on_rto();
  void arm_rto();
  Time current_rto() const;
  void note_rtt_sample(Time rtt);

  // --- receiver side ---
  void on_data(const TcpSegment& seg);
  void send_ack_segment();

  void on_packet(const net::PacketRef& p);

  sim::Simulator& sim_;
  Transport& transport_;
  int flow_;
  Direction dir_;  ///< Direction payload travels.
  std::int64_t total_;
  TcpParams params_;

  // Sender state.
  bool established_ = false;
  std::int64_t next_seq_ = 0;      ///< Next new byte to send.
  std::int64_t highest_ack_ = 0;   ///< Cumulative bytes acked.
  double cwnd_ = 0.0;              ///< Bytes.
  double ssthresh_ = 0.0;
  int dupacks_ = 0;
  std::int64_t timed_seq_ = -1;    ///< Segment being RTT-timed (Karn).
  Time timed_sent_at_;
  bool srtt_valid_ = false;
  double srtt_s_ = 0.0;
  double rttvar_s_ = 0.0;
  int backoff_ = 0;                ///< RTO exponential backoff shift.
  sim::EventId rto_event_{};
  bool rto_armed_ = false;
  int retransmissions_ = 0;
  int syn_attempts_ = 0;

  // Receiver state.
  std::vector<bool> got_;          ///< Per MSS-aligned segment.
  std::int64_t rcv_next_ = 0;      ///< Next expected byte.

  bool started_ = false;
  bool complete_ = false;
  bool aborted_ = false;
  Time started_at_;
  Time completed_at_;
  Time last_progress_;
  std::function<void()> on_complete_;
};

}  // namespace vifi::apps
