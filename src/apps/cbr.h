#pragma once

/// \file cbr.h
/// The link-layer probe workload (§5.2): a 500-byte packet each way every
/// 100 ms, link-layer retransmissions disabled. Produces the per-slot
/// delivery stream the session analysis consumes.

#include <vector>

#include "analysis/sessions.h"
#include "apps/transport.h"
#include "sim/simulator.h"

namespace vifi::obs {
class MetricsRegistry;
}

namespace vifi::apps {

struct CbrParams {
  Time interval = Time::millis(100);
  int payload_bytes = 500;
  int flow = 55;
  /// Deliveries later than this after send don't count for their slot
  /// (keeps slot accounting causal; generous vs. one-way relay delays).
  Time delivery_deadline = Time::millis(95);
};

/// Bidirectional constant-bit-rate probe stream over a transport.
class CbrWorkload {
 public:
  CbrWorkload(sim::Simulator& sim, Transport& transport, CbrParams params = {});

  void start(Time until);

  /// Slot stream: 2 packets attempted per slot (one per direction);
  /// delivered counts those that arrived within the deadline. Valid after
  /// the simulator has passed `until`.
  analysis::SlotStream slot_stream() const;

  std::int64_t sent() const { return 2 * static_cast<std::int64_t>(slots_); }
  std::int64_t delivered() const;

  /// Compatibility shim: workload-level sent/delivered counters under the
  /// `app.*` namespace (additive across trips).
  void publish(obs::MetricsRegistry& registry) const;

 private:
  void on_tick();
  void on_delivery(const net::PacketRef& p);

  sim::Simulator& sim_;
  Transport& transport_;
  CbrParams params_;
  sim::PeriodicTimer tick_;
  Time until_;
  std::size_t slots_ = 0;
  std::vector<int> delivered_per_slot_;
  std::vector<Time> slot_start_;
};

}  // namespace vifi::apps
