#include "apps/cellular.h"

#include <algorithm>

#include "util/contracts.h"

namespace vifi::apps {

namespace {
// Arbitrary endpoint ids for the synthetic bearer.
const sim::NodeId kVehicleEnd{9001};
const sim::NodeId kHostEnd{9002};
}  // namespace

CellularTransport::CellularTransport(sim::Simulator& sim,
                                     CellularParams params, Rng rng)
    : sim_(sim), params_(params), rng_(rng) {
  VIFI_EXPECTS(params.down_rate_bps > 0 && params.up_rate_bps > 0);
}

void CellularTransport::send(Direction dir, int bytes, int flow,
                             std::uint64_t app_seq, net::AppPayload data) {
  const bool up = dir == Direction::Upstream;
  auto packet = factory_.make(dir, up ? kVehicleEnd : kHostEnd,
                              up ? kHostEnd : kVehicleEnd, bytes, sim_.now(),
                              flow, app_seq, std::move(data));
  if (rng_.bernoulli(params_.loss)) return;
  Time& next_free = up ? up_free_ : down_free_;
  const double rate = up ? params_.up_rate_bps : params_.down_rate_bps;
  const Time start = std::max(sim_.now(), next_free);
  next_free = start + Time::seconds(static_cast<double>(bytes) * 8.0 / rate);
  const Time deliver_at = next_free + params_.one_way_latency;
  sim_.schedule_at(deliver_at, [this, packet] {
    const auto it = handlers_.find(packet->flow);
    if (it != handlers_.end()) it->second(packet);
  });
}

void CellularTransport::subscribe(int flow, Handler handler) {
  VIFI_EXPECTS(handler != nullptr);
  handlers_[flow] = std::move(handler);
}

}  // namespace vifi::apps
