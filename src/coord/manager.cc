#include "coord/manager.h"

#include "core/system.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "util/contracts.h"

namespace vifi::coord {

namespace {

/// Packs a transition into TraceEvent::c: event in bits 8+, phases in two
/// nibbles (kClientPhaseCount = 5 fits in 4 bits).
std::int32_t pack_transition(CoordEvent event, ClientPhase from,
                             ClientPhase to) {
  return (static_cast<std::int32_t>(event) << 8) |
         (static_cast<std::int32_t>(from) << 4) |
         static_cast<std::int32_t>(to);
}

}  // namespace

ConnectivityManager::ConnectivityManager(sim::Simulator& sim,
                                         core::CoordParams params)
    : sim_(sim),
      params_(std::move(params)),
      tick_timer_(sim, Time::seconds(1.0), [this] { tick(sim_.now()); }) {
  predictor_.seed(params_.history);
}

void ConnectivityManager::start() { tick_timer_.start(); }

ClientPhase ConnectivityManager::fire(NodeId vehicle, ClientState& st,
                                      CoordEvent event) {
  const ClientPhase from = st.machine.phase();
  const ClientPhase to = st.machine.fire(event);
  ++transitions_;
  if (obs::TraceRecorder* rec = obs::current_recorder())
    rec->record(obs::EventKind::CoordTransition, sim_.now(), vehicle,
                st.anchor, st.machine.transitions(), st.confidence, 0.0,
                pack_transition(event, from, to));
  return to;
}

void ConnectivityManager::clear_prediction(ClientState& st) {
  st.predicted = NodeId{};
  st.confidence = 0.0;
}

void ConnectivityManager::maybe_predict(NodeId vehicle, ClientState& st) {
  if (st.machine.phase() != ClientPhase::Associated) return;
  VIFI_EXPECTS(st.anchor.valid());
  const auto p = predictor_.predict(st.anchor, params_.min_confidence,
                                    params_.min_history);
  if (!p.has_value() || p->bs == st.anchor) return;
  st.predicted = p->bs;
  st.confidence = p->confidence;
  ++predictions_;
  fire(vehicle, st, CoordEvent::PredictionMade);
  if (params_.prestage) {
    ++prestages_;
    if (obs::TraceRecorder* rec = obs::current_recorder())
      rec->record(obs::EventKind::CoordPrestage, sim_.now(), vehicle,
                  st.predicted, 0, st.confidence);
    if (prestage_handler_)
      prestage_handler_(vehicle, st.predicted, st.anchor);
  }
}

void ConnectivityManager::on_beacon(NodeId observer, NodeId vehicle,
                                    NodeId anchor, NodeId prev_anchor) {
  (void)observer;
  (void)prev_anchor;
  VIFI_EXPECTS(vehicle.valid());
  const Time now = sim_.now();
  ClientState& st = clients_[vehicle];
  // Every BS in range decodes the same beacon at the same instant; the
  // first observation carries all its information.
  if (st.seen_once && st.last_seen == now &&
      st.machine.phase() != ClientPhase::Idle)
    return;
  st.seen_once = true;
  st.last_seen = now;
  fire(vehicle, st, CoordEvent::BeaconSeen);

  if (!anchor.valid()) {
    // A beacon with no designation: loss-driven fallback for clients that
    // had one, nothing extra for clients still discovering.
    if (st.anchor.valid()) {
      clear_prediction(st);
      fire(vehicle, st, CoordEvent::AnchorLost);
      st.anchor = NodeId{};
    }
    return;
  }

  const ClientPhase phase = st.machine.phase();
  if (!st.anchor.valid()) {
    // First designation.
    st.anchor = anchor;
    fire(vehicle, st, CoordEvent::AnchorConfirmed);
  } else if (anchor == st.anchor) {
    // Same anchor: HandedOff settles back into Associated on the next
    // confirmation; the associated phases treat it as steady state.
    if (phase == ClientPhase::HandedOff)
      fire(vehicle, st, CoordEvent::AnchorConfirmed);
  } else {
    // Anchor switch: judge a live prediction, learn the succession.
    predictor_.observe(st.anchor, anchor);
    if (phase == ClientPhase::PredictedHandoff) {
      if (anchor == st.predicted) {
        ++hits_;
        st.anchor = anchor;
        // The transition event still carries the window's confidence;
        // the window itself ends with the observed handoff.
        fire(vehicle, st, CoordEvent::HandoffObserved);
        clear_prediction(st);
      } else {
        ++misses_;
        clear_prediction(st);
        st.anchor = anchor;
        fire(vehicle, st, CoordEvent::PredictionMiss);
      }
    } else {
      st.anchor = anchor;
      fire(vehicle, st, CoordEvent::AnchorConfirmed);
    }
  }
  maybe_predict(vehicle, st);
}

void ConnectivityManager::tick(Time now) {
  for (auto& [vehicle, st] : clients_) {
    if (st.machine.phase() == ClientPhase::Idle) continue;
    if (now - st.last_seen <= params_.beacon_timeout) continue;
    clear_prediction(st);
    st.anchor = NodeId{};
    fire(vehicle, st, CoordEvent::Timeout);
  }
}

bool ConnectivityManager::suppress_relay(NodeId aux, NodeId vehicle) {
  if (!params_.suppress_relays) return false;
  const auto it = clients_.find(vehicle);
  if (it == clients_.end()) return false;
  const ClientState& st = it->second;
  if (st.machine.phase() != ClientPhase::PredictedHandoff) return false;
  if (st.confidence < params_.min_confidence) return false;
  if (aux == st.anchor || aux == st.predicted) return false;
  ++suppressed_;
  if (obs::TraceRecorder* rec = obs::current_recorder())
    rec->record(obs::EventKind::CoordSuppress, sim_.now(), vehicle, aux, 0,
                st.confidence);
  return true;
}

ClientPhase ConnectivityManager::phase(NodeId vehicle) const {
  const auto it = clients_.find(vehicle);
  return it == clients_.end() ? ClientPhase::Idle : it->second.machine.phase();
}

NodeId ConnectivityManager::anchor(NodeId vehicle) const {
  const auto it = clients_.find(vehicle);
  return it == clients_.end() ? NodeId{} : it->second.anchor;
}

NodeId ConnectivityManager::predicted(NodeId vehicle) const {
  const auto it = clients_.find(vehicle);
  return it == clients_.end() ? NodeId{} : it->second.predicted;
}

double ConnectivityManager::confidence(NodeId vehicle) const {
  const auto it = clients_.find(vehicle);
  return it == clients_.end() ? 0.0 : it->second.confidence;
}

void ConnectivityManager::publish(obs::MetricsRegistry& registry) const {
  registry.counter("coord.transitions").add(static_cast<double>(transitions_));
  registry.counter("coord.predictions").add(static_cast<double>(predictions_));
  registry.counter("coord.prediction_hits").add(static_cast<double>(hits_));
  registry.counter("coord.prediction_misses")
      .add(static_cast<double>(misses_));
  registry.counter("coord.prestages").add(static_cast<double>(prestages_));
  registry.counter("coord.suppressed_relays")
      .add(static_cast<double>(suppressed_));
}

void attach(core::VifiSystem& system, ConnectivityManager& manager) {
  for (const NodeId bs : system.bs_ids()) {
    core::VifiBasestation& station = system.basestation(bs);
    station.set_beacon_observer(
        [&manager, bs](NodeId vehicle, NodeId anchor, NodeId prev_anchor) {
          manager.on_beacon(bs, vehicle, anchor, prev_anchor);
        });
    station.set_relay_filter([&manager, bs](NodeId vehicle) {
      return manager.suppress_relay(bs, vehicle);
    });
  }
  manager.set_prestage_handler(
      [&system](NodeId vehicle, NodeId predicted, NodeId anchor) {
        system.basestation(predicted).prestage(vehicle, anchor);
      });
}

}  // namespace vifi::coord
