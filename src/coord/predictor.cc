#include "coord/predictor.h"

#include "util/contracts.h"

namespace vifi::coord {

void NextBsPredictor::add(NodeId from, NodeId to, int count) {
  VIFI_EXPECTS(from.valid() && to.valid() && from != to);
  VIFI_EXPECTS(count > 0);
  successors_[from][to] += count;
}

void NextBsPredictor::seed(const std::vector<std::array<int, 3>>& history) {
  for (const auto& [from, to, count] : history)
    add(NodeId(from), NodeId(to), count);
}

int NextBsPredictor::support(NodeId from) const {
  const auto it = successors_.find(from);
  if (it == successors_.end()) return 0;
  int total = 0;
  for (const auto& [to, count] : it->second) {
    (void)to;
    total += count;
  }
  return total;
}

std::optional<NextBsPredictor::Prediction> NextBsPredictor::predict(
    NodeId current, double min_confidence, int min_support) const {
  const auto it = successors_.find(current);
  if (it == successors_.end()) return std::nullopt;
  int total = 0, best_count = 0;
  NodeId best{};
  // Ordered map: the first maximal entry is the lowest BS id, so ties
  // break deterministically.
  for (const auto& [to, count] : it->second) {
    total += count;
    if (count > best_count) {
      best_count = count;
      best = to;
    }
  }
  if (total < min_support) return std::nullopt;
  Prediction p;
  p.bs = best;
  p.confidence = static_cast<double>(best_count) / static_cast<double>(total);
  p.support = total;
  if (p.confidence < min_confidence) return std::nullopt;
  return p;
}

std::vector<std::array<int, 3>> fit_history(
    const std::vector<const trace::MeasurementTrace*>& trips,
    const tracegen::FitOptions& opts) {
  std::map<NodeId, std::map<NodeId, int>> counts;
  for (const trace::MeasurementTrace* trip : trips) {
    VIFI_EXPECTS(trip != nullptr);
    const std::vector<tracegen::Contact> timeline =
        tracegen::contact_timeline(*trip, opts);
    for (std::size_t i = 1; i < timeline.size(); ++i) {
      const NodeId from = timeline[i - 1].bs;
      const NodeId to = timeline[i].bs;
      if (from != to) ++counts[from][to];
    }
  }
  std::vector<std::array<int, 3>> out;
  for (const auto& [from, tos] : counts)
    for (const auto& [to, count] : tos)
      out.push_back({from.value(), to.value(), count});
  return out;
}

}  // namespace vifi::coord
