#include "coord/state.h"

#include <string>

#include "util/contracts.h"

namespace vifi::coord {

const char* to_string(ClientPhase phase) {
  switch (phase) {
    case ClientPhase::Idle:
      return "Idle";
    case ClientPhase::Discovered:
      return "Discovered";
    case ClientPhase::Associated:
      return "Associated";
    case ClientPhase::PredictedHandoff:
      return "PredictedHandoff";
    case ClientPhase::HandedOff:
      return "HandedOff";
  }
  return "?";
}

const char* to_string(CoordEvent event) {
  switch (event) {
    case CoordEvent::BeaconSeen:
      return "BeaconSeen";
    case CoordEvent::AnchorConfirmed:
      return "AnchorConfirmed";
    case CoordEvent::PredictionMade:
      return "PredictionMade";
    case CoordEvent::HandoffObserved:
      return "HandoffObserved";
    case CoordEvent::PredictionMiss:
      return "PredictionMiss";
    case CoordEvent::AnchorLost:
      return "AnchorLost";
    case CoordEvent::Timeout:
      return "Timeout";
  }
  return "?";
}

std::optional<ClientPhase> next_phase(ClientPhase phase, CoordEvent event) {
  using P = ClientPhase;
  using E = CoordEvent;
  switch (phase) {
    case P::Idle:
      // Only a beacon wakes an idle client up; everything else (including
      // Timeout — there is nothing to time out) is a caller bug.
      if (event == E::BeaconSeen) return P::Discovered;
      return std::nullopt;
    case P::Discovered:
      switch (event) {
        case E::BeaconSeen: return P::Discovered;
        case E::AnchorConfirmed: return P::Associated;
        case E::Timeout: return P::Idle;
        default: return std::nullopt;
      }
    case P::Associated:
      switch (event) {
        case E::BeaconSeen: return P::Associated;
        case E::AnchorConfirmed: return P::Associated;
        case E::PredictionMade: return P::PredictedHandoff;
        case E::AnchorLost: return P::Discovered;
        case E::Timeout: return P::Idle;
        default: return std::nullopt;
      }
    case P::PredictedHandoff:
      switch (event) {
        case E::BeaconSeen: return P::PredictedHandoff;
        case E::HandoffObserved: return P::HandedOff;
        case E::PredictionMiss: return P::Associated;
        case E::AnchorLost: return P::Discovered;
        case E::Timeout: return P::Idle;
        default: return std::nullopt;
      }
    case P::HandedOff:
      switch (event) {
        case E::BeaconSeen: return P::HandedOff;
        case E::AnchorConfirmed: return P::Associated;
        case E::AnchorLost: return P::Discovered;
        case E::Timeout: return P::Idle;
        default: return std::nullopt;
      }
  }
  return std::nullopt;
}

ClientPhase ClientStateMachine::fire(CoordEvent event) {
  const std::optional<ClientPhase> next = next_phase(phase_, event);
  if (!next.has_value())
    throw ContractViolation(std::string("coord state machine: event ") +
                            to_string(event) + " is illegal in phase " +
                            to_string(phase_));
  phase_ = *next;
  ++transitions_;
  return phase_;
}

}  // namespace vifi::coord
