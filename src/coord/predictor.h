#pragma once

/// \file predictor.h
/// CoordTier's next-BS predictor: a BS-to-BS succession matrix learned
/// from mobility history. Routes repeat (VanLAN shuttles and DieselNet
/// buses drive fixed loops), so the empirical "after BS a the vehicle
/// next met BS b" counts are a strong predictor of the next anchor.
///
/// Two sources feed the matrix:
///  * offline — TraceForge contact timelines from recorded/synthesized
///    campaigns (`fit_history`, seeded through core::CoordParams); and
///  * online — anchor switches the ConnectivityManager observes live.
///
/// Prediction is deterministic: highest count wins, ties go to the lowest
/// BS id, and nothing is committed below the caller's confidence and
/// support floors.

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "sim/ids.h"
#include "tracegen/fit.h"
#include "trace/observations.h"

namespace vifi::coord {

using sim::NodeId;

class NextBsPredictor {
 public:
  struct Prediction {
    NodeId bs;               ///< The predicted next anchor.
    double confidence = 0.0; ///< Successor share: count / total-from-here.
    int support = 0;         ///< Total successions observed from here.
  };

  /// Folds one {from, to, count} succession triple into the matrix.
  void add(NodeId from, NodeId to, int count);
  /// Records one observed anchor switch (online learning).
  void observe(NodeId from, NodeId to) { add(from, to, 1); }
  /// Seeds from CoordParams::history triples.
  void seed(const std::vector<std::array<int, 3>>& history);

  /// The most likely successor of \p current, or nullopt when fewer than
  /// \p min_support successions were seen from it or the best successor's
  /// share is below \p min_confidence.
  std::optional<Prediction> predict(NodeId current, double min_confidence,
                                    int min_support) const;

  /// Successions observed out of \p from (any successor).
  int support(NodeId from) const;

 private:
  /// Ordered maps end to end: predictions and iteration are deterministic.
  std::map<NodeId, std::map<NodeId, int>> successors_;
};

/// Fits succession triples from recorded trips: every pair of consecutive
/// distinct-BS contacts on a trip's `tracegen::contact_timeline` is one
/// observed succession. The result feeds core::CoordParams::history.
std::vector<std::array<int, 3>> fit_history(
    const std::vector<const trace::MeasurementTrace*>& trips,
    const tracegen::FitOptions& opts = {});

}  // namespace vifi::coord
