#pragma once

/// \file manager.h
/// CoordTier's BS-side ConnectivityManager: the infrastructure-driven
/// alternative to ViFi's vehicle-driven PAB coordination. One manager
/// serves a whole deployment (the BSes share a backplane, so shared
/// connectivity state is the realistic model); per client it runs the
/// explicit connection/handoff state machine of state.h, learns BS
/// successions into a NextBsPredictor, and acts on confident predictions:
///
///  * pre-stage — warm the predicted next anchor (downstream sender +
///    proactive §4.5 salvage pull) before the handoff beacon gap; and
///  * suppress — skip redundant auxiliary relays from BSes that are
///    neither the anchor nor the predicted successor while the prediction
///    window is live.
///
/// Every machine transition is recorded as a first-class TripScope event
/// (EventKind::CoordTransition), and the manager's counters reconcile
/// exactly with the recorder's per-kind counts — the property harness
/// (tests/test_coord_props.cc) pins both.
///
/// Determinism: the manager holds no clock or entropy of its own — it sees
/// time only through the simulator and the observation calls, and every
/// container it iterates is ordered.

#include <cstdint>
#include <functional>
#include <map>

#include "coord/predictor.h"
#include "coord/state.h"
#include "core/config.h"
#include "sim/ids.h"
#include "sim/simulator.h"
#include "util/time.h"

namespace vifi::obs {
class MetricsRegistry;
}

namespace vifi::core {
class VifiSystem;
}

namespace vifi::coord {

class ConnectivityManager {
 public:
  ConnectivityManager(sim::Simulator& sim, core::CoordParams params);

  ConnectivityManager(const ConnectivityManager&) = delete;
  ConnectivityManager& operator=(const ConnectivityManager&) = delete;

  /// Starts the periodic timeout scan (1 s cadence, like the BS ticks).
  void start();

  /// Called when the predicted next anchor should be warmed:
  /// (vehicle, predicted_bs, current_anchor). attach() wires this to
  /// VifiBasestation::prestage on the predicted BS.
  void set_prestage_handler(
      std::function<void(NodeId vehicle, NodeId predicted, NodeId anchor)>
          handler) {
    prestage_handler_ = std::move(handler);
  }

  // --- observations ------------------------------------------------------

  /// One decoded client beacon: \p observer heard \p vehicle naming
  /// \p anchor (invalid = none yet). Multiple BSes decode the same beacon
  /// at the same instant; repeats are absorbed once per timestamp.
  void on_beacon(NodeId observer, NodeId vehicle, NodeId anchor,
                 NodeId prev_anchor = {});

  /// Timeout scan: clients silent past beacon_timeout drop back to Idle.
  void tick(Time now);

  /// Relay-filter seam for auxiliary BS \p aux: true = suppress the relay
  /// for \p vehicle's packet (only within a live confident-prediction
  /// window, and never for the anchor or the predicted successor).
  bool suppress_relay(NodeId aux, NodeId vehicle);

  // --- queries ------------------------------------------------------------

  ClientPhase phase(NodeId vehicle) const;
  /// The client's single live anchor (invalid when none). At most one per
  /// client by construction — the property harness reconciles this against
  /// the transition stream.
  NodeId anchor(NodeId vehicle) const;
  NodeId predicted(NodeId vehicle) const;
  double confidence(NodeId vehicle) const;
  const NextBsPredictor& predictor() const { return predictor_; }
  const core::CoordParams& params() const { return params_; }

  // --- counters (reconciled against TripScope per-kind counts) -----------

  std::uint64_t transitions() const { return transitions_; }
  std::uint64_t predictions() const { return predictions_; }
  std::uint64_t prediction_hits() const { return hits_; }
  std::uint64_t prediction_misses() const { return misses_; }
  std::uint64_t prestages() const { return prestages_; }
  std::uint64_t suppressed_relays() const { return suppressed_; }

  /// Adds the manager's counters into \p registry (coord.* namespace).
  void publish(obs::MetricsRegistry& registry) const;

 private:
  struct ClientState {
    ClientStateMachine machine;
    NodeId anchor{};
    NodeId predicted{};
    double confidence = 0.0;
    Time last_seen;
    bool seen_once = false;
  };

  /// Fires \p event on \p st's machine and records the transition as a
  /// TripScope event (c packs event<<8 | from<<4 | to).
  ClientPhase fire(NodeId vehicle, ClientState& st, CoordEvent event);
  /// Attempts a prediction for an Associated client; commits, pre-stages
  /// and moves to PredictedHandoff when confident.
  void maybe_predict(NodeId vehicle, ClientState& st);
  void clear_prediction(ClientState& st);

  sim::Simulator& sim_;
  core::CoordParams params_;
  NextBsPredictor predictor_;
  sim::PeriodicTimer tick_timer_;
  /// Ordered: the timeout scan iterates deterministically.
  std::map<NodeId, ClientState> clients_;
  std::function<void(NodeId, NodeId, NodeId)> prestage_handler_;

  std::uint64_t transitions_ = 0;
  std::uint64_t predictions_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t prestages_ = 0;
  std::uint64_t suppressed_ = 0;
};

/// Wires \p manager into every basestation of \p system: beacon
/// observations in, relay suppression and pre-staging out. Call once,
/// before VifiSystem::start(); \p manager must outlive \p system.
void attach(core::VifiSystem& system, ConnectivityManager& manager);

}  // namespace vifi::coord
