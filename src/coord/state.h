#pragma once

/// \file state.h
/// The CoordTier connection/handoff state machine — the per-client core of
/// the BS-side ConnectivityManager (manager.h). ViFi's PAB designation
/// (§4.3) is vehicle-driven and implicit; this tier makes the
/// infrastructure's view of each client an *explicit* machine in the
/// ConnectivityManager idiom:
///
///   Idle ──BeaconSeen──▶ Discovered ──AnchorConfirmed──▶ Associated
///   Associated ──PredictionMade──▶ PredictedHandoff
///   PredictedHandoff ──HandoffObserved──▶ HandedOff ──AnchorConfirmed──▶
///   Associated
///
/// with loss-driven fallback (AnchorLost → Discovered from any associated
/// phase), prediction-miss recovery (PredictedHandoff → Associated), and
/// beacon-timeout edges back to Idle from every non-idle phase.
///
/// The transition table is a pure function (`next_phase`), exhaustively
/// pinned by tests/test_coord.cc: every legal edge is asserted and every
/// illegal (phase, event) pair must be rejected with a crisp
/// ContractViolation naming both.

#include <cstdint>
#include <optional>

namespace vifi::coord {

/// The infrastructure's view of one client's connectivity lifecycle.
enum class ClientPhase : int {
  Idle,              ///< Never heard, or timed out — no live state.
  Discovered,        ///< Beacons heard, but no anchor designation yet.
  Associated,        ///< Client beacons name a live anchor.
  PredictedHandoff,  ///< Associated + a confident next-BS prediction.
  HandedOff,         ///< The predicted handoff was observed happening.
};

inline constexpr int kClientPhaseCount =
    static_cast<int>(ClientPhase::HandedOff) + 1;

/// What the manager observed about a client.
enum class CoordEvent : int {
  BeaconSeen,       ///< Any beacon from the client reached some BS.
  AnchorConfirmed,  ///< The client's beacon names a (new or first) anchor.
  PredictionMade,   ///< The predictor committed to a next BS confidently.
  HandoffObserved,  ///< The anchor switched to the predicted BS (a hit).
  PredictionMiss,   ///< The anchor switched to a different BS (a miss).
  AnchorLost,       ///< The client's beacon carries no valid anchor.
  Timeout,          ///< No beacon within the staleness window.
};

inline constexpr int kCoordEventCount =
    static_cast<int>(CoordEvent::Timeout) + 1;

const char* to_string(ClientPhase phase);
const char* to_string(CoordEvent event);

/// The pure transition table: the phase \p event moves \p phase to, or
/// nullopt when the pair is illegal. Exhaustive over the
/// kClientPhaseCount x kCoordEventCount grid.
std::optional<ClientPhase> next_phase(ClientPhase phase, CoordEvent event);

/// One client's machine. `fire` applies the table and throws
/// util::ContractViolation (naming the phase and event) on an illegal
/// pair — protocol code must never feed the machine an event its phase
/// cannot absorb.
class ClientStateMachine {
 public:
  ClientPhase phase() const { return phase_; }
  /// Transitions fired so far (legal ones only).
  std::uint64_t transitions() const { return transitions_; }

  /// Applies \p event; returns the new phase. Throws on illegal pairs.
  ClientPhase fire(CoordEvent event);

 private:
  ClientPhase phase_ = ClientPhase::Idle;
  std::uint64_t transitions_ = 0;
};

}  // namespace vifi::coord
