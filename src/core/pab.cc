#include "core/pab.h"

#include <algorithm>

#include "util/contracts.h"

namespace vifi::core {

PabTable::PabTable(NodeId self, int beacons_per_second, double alpha)
    : self_(self), beacons_per_second_(beacons_per_second), alpha_(alpha) {
  VIFI_EXPECTS(self.valid());
  VIFI_EXPECTS(beacons_per_second > 0);
}

void PabTable::note_beacon(NodeId from, Time now) {
  ++counts_this_second_[from];
  last_heard_[from] = now;
}

void PabTable::fold_reports(const std::vector<mac::ProbReport>& reports,
                            Time now) {
  for (const mac::ProbReport& r : reports) {
    if (!r.from.valid() || !r.to.valid()) continue;
    if (r.to == self_) continue;  // we know our own incoming better
    remote_[{r.from, r.to}] = {std::clamp(r.prob, 0.0, 1.0), now};
  }
}

void PabTable::tick_second(Time now) {
  // Every neighbour heard recently gets an update; silence counts as zero
  // so estimates age out naturally.
  for (auto& [from, est] : incoming_) {
    const auto it = counts_this_second_.find(from);
    const int c = it == counts_this_second_.end() ? 0 : it->second;
    // Only keep feeding zeros while the neighbour is plausibly nearby.
    const auto lh = last_heard_.find(from);
    const bool fresh = lh != last_heard_.end() &&
                       (now - lh->second).to_seconds() < kFreshnessSeconds;
    if (c > 0 || fresh) {
      est.avg.update(std::min(
          1.0, static_cast<double>(c) / beacons_per_second_));
      est.last_update = now;
    }
  }
  // New neighbours.
  for (const auto& [from, c] : counts_this_second_) {
    if (incoming_.contains(from)) continue;
    Estimate est;
    est.avg = Ewma(alpha_);
    est.avg.update(
        std::min(1.0, static_cast<double>(c) / beacons_per_second_));
    est.last_update = now;
    incoming_.emplace(from, est);
  }
  counts_this_second_.clear();
}

double PabTable::incoming(NodeId from, Time now, double fallback) const {
  const auto it = incoming_.find(from);
  if (it == incoming_.end() || !it->second.avg.initialized())
    return fallback;
  if ((now - it->second.last_update).to_seconds() > kFreshnessSeconds)
    return fallback;
  return it->second.avg.value();
}

double PabTable::get(NodeId from, NodeId to, Time now,
                     double fallback) const {
  if (to == self_) return incoming(from, now, fallback);
  const auto it = remote_.find({from, to});
  if (it == remote_.end()) return fallback;
  if ((now - it->second.last_update).to_seconds() > kFreshnessSeconds)
    return fallback;
  return it->second.prob;
}

std::vector<NodeId> PabTable::recent_neighbors(Time now,
                                               Time staleness) const {
  std::vector<NodeId> out;
  for (const auto& [from, t] : last_heard_)
    if (now - t <= staleness) out.push_back(from);
  return out;
}

std::vector<mac::ProbReport> PabTable::export_reports(Time now) const {
  std::vector<mac::ProbReport> out;
  // Own incoming estimates: (neighbour -> self).
  for (const auto& [from, est] : incoming_) {
    if (!est.avg.initialized()) continue;
    if ((now - est.last_update).to_seconds() > kFreshnessSeconds) continue;
    out.push_back({from, self_, est.avg.value()});
  }
  // Reverse direction learned from gossip: (self -> neighbour).
  for (const auto& [key, rem] : remote_) {
    if (key.tx != self_) continue;
    if ((now - rem.last_update).to_seconds() > kFreshnessSeconds) continue;
    out.push_back({key.tx, key.rx, rem.prob});
  }
  return out;
}

}  // namespace vifi::core
