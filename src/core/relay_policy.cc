#include "core/relay_policy.h"

#include <algorithm>

#include "util/contracts.h"

namespace vifi::core {

namespace {
/// Floor on probability estimates inside the computation: a contending BS
/// *did* hear the packet, so zero estimates (missing gossip) must not
/// zero-out the whole expectation.
constexpr double kMinSelfHear = 0.05;
}  // namespace

double pab_or_symmetric(const PabTable& pab, NodeId from, NodeId to,
                        Time now, double fallback) {
  const double direct = pab.get(from, to, now, -1.0);
  if (direct >= 0.0) return direct;
  const double reverse = pab.get(to, from, now, -1.0);
  if (reverse >= 0.0) return reverse;
  return fallback;
}

double contention_probability(const RelayContext& ctx, NodeId bi) {
  VIFI_EXPECTS(ctx.pab != nullptr);
  const PabTable& pab = *ctx.pab;
  // p(s->Bi): probability Bi heard the source transmission. For self we
  // know it happened; still use the estimate (the equations are about the
  // *population* of contenders), floored away from zero.
  double ps_bi = pab_or_symmetric(pab, ctx.src, bi, ctx.now, 0.0);
  if (bi == ctx.self) ps_bi = std::max(ps_bi, kMinSelfHear);
  // p(s->d) * p(d->Bi): probability the destination got the packet and Bi
  // heard its acknowledgment (independence assumed, §4.4).
  const double ps_d = pab_or_symmetric(pab, ctx.src, ctx.dst, ctx.now, 0.0);
  const double pd_bi = pab_or_symmetric(pab, ctx.dst, bi, ctx.now, 0.0);
  return ps_bi * (1.0 - ps_d * pd_bi);
}

namespace {

struct Contender {
  sim::NodeId id;
  double c = 0.0;   ///< Contention probability.
  double pd = 0.0;  ///< p(Bi -> d).
};

std::vector<Contender> gather(const RelayContext& ctx) {
  std::vector<Contender> out;
  out.reserve(ctx.auxiliaries.size());
  for (NodeId bi : ctx.auxiliaries) {
    Contender c;
    c.id = bi;
    c.c = contention_probability(ctx, bi);
    c.pd = pab_or_symmetric(*ctx.pab, bi, ctx.dst, ctx.now, 0.0);
    if (bi == ctx.self) c.pd = std::max(c.pd, kMinSelfHear);
    out.push_back(c);
  }
  return out;
}

const Contender* find_self(const std::vector<Contender>& cs, NodeId self) {
  for (const Contender& c : cs)
    if (c.id == self) return &c;
  return nullptr;
}

}  // namespace

double relay_probability(const RelayContext& ctx, RelayVariant variant) {
  VIFI_EXPECTS(ctx.pab != nullptr);
  VIFI_EXPECTS(ctx.self.valid() && ctx.src.valid() && ctx.dst.valid());
  const std::vector<Contender> cs = gather(ctx);
  const Contender* self = find_self(cs, ctx.self);
  if (self == nullptr) {
    // Not designated an auxiliary: relay conservatively as if alone.
    return std::clamp(
        pab_or_symmetric(*ctx.pab, ctx.self, ctx.dst, ctx.now, kMinSelfHear),
        0.0, 1.0);
  }

  switch (variant) {
    case RelayVariant::NoG1: {
      // Ignore other relays: relay w.p. own delivery ratio to destination.
      return std::clamp(self->pd, 0.0, 1.0);
    }
    case RelayVariant::NoG2: {
      // Ignore connectivity: expected relays = 1 with equal weights,
      // r_i = 1 / sum_j c_j.
      double sum_c = 0.0;
      for (const Contender& c : cs) sum_c += c.c;
      if (sum_c <= 0.0) return 1.0;
      return std::clamp(1.0 / sum_c, 0.0, 1.0);
    }
    case RelayVariant::NoG3: {
      // Expected *deliveries* = 1, minimising expected relays
      // (waterfilling over auxiliaries sorted by p(Bi->d), §5.5.1).
      std::vector<Contender> sorted = cs;
      std::sort(sorted.begin(), sorted.end(),
                [](const Contender& a, const Contender& b) {
                  if (a.pd != b.pd) return a.pd > b.pd;
                  return a.id < b.id;
                });
      double filled = 0.0;  // sum of r_j * p_j * c_j over better-ranked js
      for (const Contender& c : sorted) {
        const double cap = c.pd * c.c;
        double ri = 0.0;
        if (filled >= 1.0) {
          ri = 0.0;
        } else if (filled + cap <= 1.0) {
          ri = 1.0;
        } else if (cap > 0.0) {
          ri = (1.0 - filled) / cap;
        }
        filled += ri * cap;
        if (c.id == ctx.self) return std::clamp(ri, 0.0, 1.0);
      }
      return 0.0;
    }
    case RelayVariant::ViFi: {
      // Solve sum_i c_i * r * p_i = 1 for r; relay w.p. min(r * p_x, 1).
      double denom = 0.0;
      for (const Contender& c : cs) denom += c.c * c.pd;
      if (denom <= 0.0) return 1.0;  // pathological: nobody useful — relay
      const double r = 1.0 / denom;
      return std::clamp(r * self->pd, 0.0, 1.0);
    }
  }
  return 0.0;
}

}  // namespace vifi::core
