#pragma once

/// \file pab.h
/// Beacon-based estimation and dissemination of pairwise packet reception
/// probabilities p_ab (§4.6). Each node:
///
///   * estimates incoming probability from every neighbour as an
///     exponential average (alpha = 0.5) of the per-second beacon
///     reception ratio;
///   * gossips those estimates in its own beacons;
///   * re-gossips what it learned so that an auxiliary BS can know, e.g.,
///     the anchor-to-vehicle probability without hearing the vehicle.

#include <map>
#include <vector>

#include "mac/frame.h"
#include "sim/ids.h"
#include "util/ewma.h"
#include "util/time.h"

namespace vifi::core {

using sim::NodeId;

class PabTable {
 public:
  /// \p self is the owning node; \p beacons_per_second calibrates ratios.
  PabTable(NodeId self, int beacons_per_second = 10, double alpha = 0.5);

  /// Records reception of one beacon from \p from (direct observation).
  void note_beacon(NodeId from, Time now);

  /// Merges gossip carried in a received beacon.
  void fold_reports(const std::vector<mac::ProbReport>& reports, Time now);

  /// Rolls the current second's beacon counts into the exponential
  /// averages. Call once per second.
  void tick_second(Time now);

  /// Best known estimate of P(b receives from a); \p fallback when unknown
  /// or stale.
  double get(NodeId from, NodeId to, Time now, double fallback = 0.0) const;

  /// Incoming-probability estimate from \p from to self.
  double incoming(NodeId from, Time now, double fallback = 0.0) const;

  /// Neighbours heard within \p staleness of \p now.
  std::vector<NodeId> recent_neighbors(Time now, Time staleness) const;

  /// Gossip payload for this node's next beacon: all fresh incoming
  /// estimates (from=neighbour, to=self) plus fresh reverse estimates
  /// (from=self, to=neighbour) learned from neighbours' gossip.
  std::vector<mac::ProbReport> export_reports(Time now) const;

  NodeId self() const { return self_; }

 private:
  struct Estimate {
    Ewma avg{0.5};
    Time last_update;
  };
  struct Remote {
    double prob = 0.0;
    Time last_update;
  };

  /// Gossip entries and direct estimates go stale after this long.
  static constexpr double kFreshnessSeconds = 5.0;

  NodeId self_;
  int beacons_per_second_;
  double alpha_;
  std::map<NodeId, int> counts_this_second_;
  std::map<NodeId, Estimate> incoming_;          // from -> P(from->self)
  std::map<sim::LinkKey, Remote> remote_;        // gossip: (from,to) -> P
  std::map<NodeId, Time> last_heard_;
};

}  // namespace vifi::core
