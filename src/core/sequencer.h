#pragma once

/// \file sequencer.h
/// Optional in-order delivery (§4.7): ViFi's opportunistic early
/// transmission can reorder packets; the paper notes the effect is small
/// and that "it is straightforward to order packets using a sequencing
/// buffer at anchor BSes and vehicles". This is that buffer.
///
/// Packets are released in link-sequence order (consecutive per-sender
/// numbers assigned at first transmission); a packet never waits more than
/// `hold` for missing predecessors — losses must not stall the stream.

#include <cstdint>
#include <functional>
#include <map>

#include "net/packet.h"
#include "sim/simulator.h"
#include "util/contracts.h"

namespace vifi::core {

class Sequencer {
 public:
  using Deliver = std::function<void(const net::PacketRef&)>;

  Sequencer(sim::Simulator& sim, Time hold, Deliver deliver)
      : sim_(sim), hold_(hold), deliver_(std::move(deliver)) {
    VIFI_EXPECTS(hold > Time::zero());
    VIFI_EXPECTS(deliver_ != nullptr);
  }

  /// Accepts a received packet with its link sequence number. Duplicates
  /// must be filtered by the caller.
  void push(std::uint64_t link_seq, const net::PacketRef& packet) {
    VIFI_EXPECTS(packet != nullptr);
    if (link_seq <= released_through_) {
      // A predecessor we already gave up on: deliver immediately rather
      // than queue behind newer traffic.
      deliver_(packet);
      return;
    }
    buffer_.emplace(link_seq, Held{packet, sim_.now() + hold_});
    release_ready();
    arm();
  }

  std::size_t buffered() const { return buffer_.size(); }
  std::uint64_t released_through() const { return released_through_; }

 private:
  struct Held {
    net::PacketRef packet;
    Time deadline;
  };

  void release_ready() {
    // Deliver the in-order prefix, plus anything whose hold expired.
    while (!buffer_.empty()) {
      const auto it = buffer_.begin();
      const bool in_order = it->first == released_through_ + 1;
      const bool expired = it->second.deadline <= sim_.now();
      if (!in_order && !expired) break;
      released_through_ = it->first;
      deliver_(it->second.packet);
      buffer_.erase(it);
    }
  }

  void arm() {
    if (buffer_.empty()) {
      // Cancel on drain: without this the hold timer stays armed after the
      // in-order prefix releases everything, and the stale pending_ /
      // armed_at_ pair later fires a dead event into an empty buffer.
      if (armed_) {
        sim_.cancel(pending_);
        pending_ = sim::EventId{};
        armed_ = false;
      }
      return;
    }
    const Time next = buffer_.begin()->second.deadline;
    if (armed_ && armed_at_ <= next) return;
    sim_.cancel(pending_);
    armed_ = true;
    armed_at_ = next;
    pending_ = sim_.schedule_at(next, [this] {
      armed_ = false;
      release_ready();
      arm();
    });
  }

  sim::Simulator& sim_;
  Time hold_;
  Deliver deliver_;
  std::map<std::uint64_t, Held> buffer_;
  std::uint64_t released_through_ = 0;
  sim::EventId pending_{};
  bool armed_ = false;
  Time armed_at_;
};

}  // namespace vifi::core
