#include "core/basestation.h"

#include <algorithm>

#include "core/relay_policy.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "util/contracts.h"

namespace vifi::core {

namespace {
/// Wire overhead of a relayed/forwarded packet beyond its payload.
constexpr int kWireHeaderBytes = 28;
/// Wire size of small control messages (salvage request, register).
constexpr int kControlBytes = 24;
}  // namespace

VifiBasestation::VifiBasestation(sim::Simulator& sim, mac::Radio& radio,
                                 net::Backplane& backplane,
                                 NodeId wired_gateway,
                                 const VifiConfig& config, Rng rng,
                                 VifiStats* stats)
    : sim_(sim),
      radio_(radio),
      backplane_(backplane),
      gateway_(wired_gateway),
      config_(config),
      stats_(stats),
      rng_(rng),
      pab_(radio.self()),
      beaconing_(sim, radio, rng.fork("beacons"), config.beacon_period),
      second_tick_(sim, Time::seconds(1.0), [this] { on_second_tick(); }),
      relay_tick_(sim, config.relay_check_period, [this] { on_relay_tick(); }),
      pump_tick_(sim, Time::millis(50), [this] { pump_all(); }) {
  radio_.set_receiver([this](const mac::Frame& f) { on_frame(f); });
  radio_.set_idle_callback([this] { pump_all(); });
  beaconing_.set_payload_provider([this] { return beacon_payload(); });
  backplane_.attach(self(),
                    [this](const net::WireMessage& m) { on_wire(m); });
  if (obs::MetricsRegistry* metrics = obs::current_metrics())
    relay_prob_hist_ = &metrics->histogram(
        "core.relay_probability",
        {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
        {{"node", self().to_string()}});
}

VifiSender& VifiBasestation::sender_for(NodeId vehicle) {
  VIFI_EXPECTS(vehicle.valid());
  auto it = senders_.find(vehicle);
  if (it == senders_.end()) {
    auto sender = std::make_unique<VifiSender>(
        sim_, radio_, config_, self(), Direction::Downstream);
    sender->set_hop_dst_provider([this, vehicle]() -> NodeId {
      return is_anchor_for(vehicle) ? vehicle : NodeId{};
    });
    sender->set_piggyback_provider(
        [this] { return recent_received_ids(); });
    sender->set_designated_aux_provider([this, vehicle] {
      const auto vit = vehicles_.find(vehicle);
      return vit == vehicles_.end()
                 ? 0
                 : static_cast<int>(vit->second.auxiliaries.size());
    });
    sender->set_stats(stats_);
    it = senders_.emplace(vehicle, std::move(sender)).first;
  }
  return *it->second;
}

VifiSender& VifiBasestation::sender(NodeId vehicle) {
  return sender_for(vehicle);
}

void VifiBasestation::pump_all() {
  for (auto& [vehicle, sender] : senders_) {
    (void)vehicle;
    sender->pump();
  }
}

void VifiBasestation::start() {
  beaconing_.start();
  second_tick_.start();
  pump_tick_.start();
  if (config_.diversity) {
    // Random phase desynchronises relay timers across BSes (§4.4).
    relay_tick_.start_after(config_.relay_check_period *
                            rng_.uniform(0.1, 1.0));
  }
}

bool VifiBasestation::is_anchor_for(NodeId vehicle) const {
  const auto it = vehicles_.find(vehicle);
  return it != vehicles_.end() && it->second.anchor == self();
}

mac::BeaconPayload VifiBasestation::beacon_payload() {
  mac::BeaconPayload p;
  p.from_vehicle = false;
  p.prob_reports = pab_.export_reports(sim_.now());
  return p;
}

std::vector<std::uint64_t> VifiBasestation::recent_received_ids() const {
  return {recent_rx_order_.begin(), recent_rx_order_.end()};
}

void VifiBasestation::send_ack(std::uint64_t packet_id) {
  mac::Frame ack;
  ack.type = mac::FrameType::Ack;
  ack.ack.packet_id = packet_id;
  radio_.send(std::move(ack));
}

void VifiBasestation::on_frame(const mac::Frame& f) {
  const Time now = sim_.now();
  switch (f.type) {
    case mac::FrameType::Beacon:
      if (obs::TraceRecorder* rec = obs::current_recorder())
        rec->record(obs::EventKind::BeaconRx, now, self(), f.tx, 0, 0.0, 0.0,
                    f.beacon.from_vehicle ? 1 : 0);
      pab_.note_beacon(f.tx, now);
      pab_.fold_reports(f.beacon.prob_reports, now);
      if (f.beacon.from_vehicle) on_vehicle_beacon(f);
      break;
    case mac::FrameType::Ack:
      acks_overheard_.insert(f.ack.packet_id);
      for (auto& [vehicle, sender] : senders_) {
        (void)vehicle;
        sender->acknowledge(f.ack.packet_id, now, /*explicit_ack=*/true);
      }
      salvage_buffer_.erase(f.ack.packet_id);
      break;
    case mac::FrameType::Data:
      on_data(f);
      break;
  }
}

void VifiBasestation::on_vehicle_beacon(const mac::Frame& f) {
  VehicleState& st = vehicles_[f.tx];
  const bool was_anchor = st.anchor == self();
  st.anchor = f.beacon.anchor;
  st.prev_anchor = f.beacon.prev_anchor;
  st.auxiliaries = f.beacon.auxiliaries;
  st.last_beacon = sim_.now();
  if (st.anchor == self() && !was_anchor) {
    become_anchor(f.tx, st.prev_anchor);
  } else if (st.anchor != self()) {
    st.registered_as_anchor = false;
  }
  if (beacon_observer_)
    beacon_observer_(f.tx, f.beacon.anchor, f.beacon.prev_anchor);
}

void VifiBasestation::prestage(NodeId vehicle, NodeId current_anchor) {
  VIFI_EXPECTS(vehicle.valid());
  // Warm the downstream path so the first post-handoff packet pays no
  // lazy-construction latency.
  sender_for(vehicle);
  // Pull the current anchor's salvage buffer proactively — the same §4.5
  // exchange become_anchor issues, just ahead of the beacon gap. The reply
  // enqueues here without registering this BS as anchor; if the handoff
  // never happens, the packets simply age out of the salvage buffer.
  if (config_.salvage && current_anchor.valid() && current_anchor != self()) {
    net::WireMessage req;
    req.kind = net::WireMessage::Kind::SalvageRequest;
    req.from = self();
    req.to = current_anchor;
    req.about = vehicle;
    req.bytes = kControlBytes;
    backplane_.send(std::move(req));
  }
}

void VifiBasestation::become_anchor(NodeId vehicle, NodeId prev_anchor) {
  VehicleState& st = vehicles_[vehicle];
  if (!st.registered_as_anchor) {
    st.registered_as_anchor = true;
    net::WireMessage reg;
    reg.kind = net::WireMessage::Kind::AnchorRegister;
    reg.from = self();
    reg.to = gateway_;
    reg.about = vehicle;
    reg.bytes = kControlBytes;
    backplane_.send(std::move(reg));
  }
  if (config_.salvage && prev_anchor.valid() && prev_anchor != self()) {
    if (obs::TraceRecorder* rec = obs::current_recorder())
      rec->record(obs::EventKind::SalvageRequest, sim_.now(), self(),
                  prev_anchor, 0, 0.0, 0.0, vehicle.value());
    net::WireMessage req;
    req.kind = net::WireMessage::Kind::SalvageRequest;
    req.from = self();
    req.to = prev_anchor;
    req.about = vehicle;
    req.bytes = kControlBytes;
    backplane_.send(std::move(req));
  }
  sender_for(vehicle).pump();
}

net::Direction VifiBasestation::frame_direction(const mac::Frame& f,
                                                NodeId vehicle) const {
  return f.data.origin == vehicle ? Direction::Upstream
                                  : Direction::Downstream;
}

void VifiBasestation::on_data(const mac::Frame& f) {
  if (f.data.hop_dst == self()) {
    // We are the wireless-hop destination: upstream data from the vehicle.
    for (std::uint64_t id : f.data.piggyback_acked) {
      for (auto& [vehicle, sender] : senders_) {
        (void)vehicle;
        sender->acknowledge(id, sim_.now(), /*explicit_ack=*/false);
      }
      salvage_buffer_.erase(id);
    }
    accept_upstream(f.packet, f.data.packet_id, f.data.link_seq,
                    f.data.attempt, f.data.is_relay, f.data.relayer);
    return;
  }

  // Auxiliary path: consider overheard frames for relaying (§4.3 step 3).
  if (!config_.diversity) return;
  if (f.data.is_relay) return;  // relays of relays are forbidden
  if (relay_considered_.contains(f.data.packet_id)) return;

  // Identify the vehicle this packet concerns.
  NodeId vehicle{};
  if (vehicles_.contains(f.data.origin)) {
    vehicle = f.data.origin;  // upstream
  } else if (vehicles_.contains(f.data.hop_dst)) {
    vehicle = f.data.hop_dst;  // downstream
  } else {
    return;  // not a ViFi client we know about
  }
  const VehicleState& st = vehicles_.at(vehicle);
  // Only BSes the vehicle designated act as auxiliaries (§4.3).
  if (std::find(st.auxiliaries.begin(), st.auxiliaries.end(), self()) ==
      st.auxiliaries.end())
    return;

  if (stats_)
    stats_->on_aux_overhear(f.data.packet_id, f.data.attempt, self());
  // Buffer only once per packet.
  for (const OverheardEntry& e : overheard_)
    if (e.frame.data.packet_id == f.data.packet_id) return;
  overheard_.push_back({f, sim_.now(), vehicle});
}

void VifiBasestation::accept_upstream(const net::PacketRef& packet,
                                      std::uint64_t id,
                                      std::uint64_t link_seq, int attempt,
                                      bool relayed, NodeId relayer) {
  VIFI_EXPECTS(packet != nullptr);
  const bool is_new = received_up_.insert(id);

  if (stats_) {
    if (relayed)
      stats_->on_relay_reached_dst(id, attempt, relayer);
    else
      stats_->on_dst_rx_direct(id, attempt);
  }

  if (!relayed) {
    send_ack(id);
    acked_once_.insert(id);
  } else if (acked_once_.insert(id)) {
    send_ack(id);
  }

  if (is_new) {
    recent_rx_order_.push_back(id);
    while (recent_rx_order_.size() >
           static_cast<std::size_t>(config_.piggyback_depth))
      recent_rx_order_.pop_front();
    if (obs::TraceRecorder* rec = obs::current_recorder())
      rec->record(obs::EventKind::AppDeliver, sim_.now(), self(), relayer, id,
                  0.0, 0.0, 0);
    if (config_.inorder_delivery && link_seq != 0) {
      auto it = sequencers_.find(packet->src);
      if (it == sequencers_.end()) {
        it = sequencers_
                 .emplace(packet->src,
                          std::make_unique<Sequencer>(
                              sim_, config_.reorder_hold,
                              [this](const net::PacketRef& p) {
                                forward_to_gateway(p);
                              }))
                 .first;
      }
      it->second->push(link_seq, packet);
    } else {
      forward_to_gateway(packet);
    }
  }
}

void VifiBasestation::forward_to_gateway(const net::PacketRef& packet) {
  net::WireMessage fwd;
  fwd.kind = net::WireMessage::Kind::Data;
  fwd.from = self();
  fwd.to = gateway_;
  fwd.packet = packet;
  fwd.bytes = packet->bytes + kWireHeaderBytes;
  backplane_.send(std::move(fwd));
}

void VifiBasestation::enqueue_downstream(const net::PacketRef& packet) {
  salvage_buffer_[packet->id] = {packet, sim_.now()};
  sender_for(packet->dst).enqueue(packet);
}

void VifiBasestation::on_wire(const net::WireMessage& msg) {
  switch (msg.kind) {
    case net::WireMessage::Kind::Data:
      VIFI_EXPECTS(msg.packet != nullptr);
      enqueue_downstream(msg.packet);
      break;
    case net::WireMessage::Kind::RelayedData:
      VIFI_EXPECTS(msg.packet != nullptr);
      accept_upstream(msg.packet, msg.packet->id, msg.link_seq, msg.attempt,
                      /*relayed=*/true, msg.from);
      break;
    case net::WireMessage::Kind::SalvageRequest: {
      // Hand over unacknowledged recent Internet packets destined for the
      // vehicle in question (§4.5).
      obs::TraceRecorder* rec = obs::current_recorder();
      const Time cutoff = sim_.now() - config_.salvage_window;
      std::vector<std::uint64_t> moved;
      for (const auto& [id, entry] : salvage_buffer_) {
        if (entry.arrived < cutoff) continue;
        if (entry.packet->dst != msg.about) continue;
        net::WireMessage reply;
        reply.kind = net::WireMessage::Kind::SalvageReply;
        reply.from = self();
        reply.to = msg.from;
        reply.packet = entry.packet;
        reply.bytes = entry.packet->bytes + kWireHeaderBytes;
        backplane_.send(std::move(reply));
        if (rec)
          rec->record(obs::EventKind::SalvageHandoff, sim_.now(), self(),
                      msg.from, id, 0.0, 0.0, msg.about.value());
        moved.push_back(id);
        ++salvaged_out_;
      }
      for (std::uint64_t id : moved) salvage_buffer_.erase(id);
      break;
    }
    case net::WireMessage::Kind::SalvageReply:
      VIFI_EXPECTS(msg.packet != nullptr);
      if (stats_) stats_->on_salvaged();
      if (obs::TraceRecorder* rec = obs::current_recorder())
        rec->record(obs::EventKind::SalvageDeliver, sim_.now(), self(),
                    msg.from, msg.packet->id, 0.0, 0.0,
                    msg.packet->dst.value());
      // Treat as if it arrived from the Internet (§4.5).
      enqueue_downstream(msg.packet);
      break;
    case net::WireMessage::Kind::AnchorRegister:
      break;  // gateway-only message; ignore
  }
}

void VifiBasestation::on_relay_tick() {
  const Time now = sim_.now();
  obs::TraceRecorder* rec = obs::current_recorder();
  std::vector<OverheardEntry> pending;
  pending.reserve(overheard_.size());
  for (OverheardEntry& e : overheard_) {
    if (e.heard_at + config_.ack_wait > now) {
      pending.push_back(std::move(e));
      continue;
    }
    const std::uint64_t id = e.frame.data.packet_id;
    relay_considered_.insert(id);  // considered at most once (§4.3)
    if (acks_overheard_.contains(id)) continue;  // suppressed

    const auto vit = vehicles_.find(e.vehicle);
    if (vit == vehicles_.end()) continue;
    const VehicleState& st = vit->second;
    const Direction dir = frame_direction(e.frame, e.vehicle);
    const NodeId src = e.frame.data.origin;
    const NodeId dst =
        dir == Direction::Upstream ? st.anchor : e.frame.data.hop_dst;
    if (!dst.valid()) continue;
    // CoordTier seam: a confident live prediction suppresses redundant
    // auxiliary relays (the packet is considered, then skipped).
    if (relay_filter_ && relay_filter_(e.vehicle)) continue;

    if (stats_) stats_->on_aux_contend(id, e.frame.data.attempt, self());

    RelayContext ctx;
    ctx.self = self();
    ctx.src = src;
    ctx.dst = dst;
    ctx.auxiliaries = st.auxiliaries;
    ctx.pab = &pab_;
    ctx.now = now;
    const double p = relay_probability(ctx, config_.variant);
    if (relay_prob_hist_) relay_prob_hist_->observe(p);
    const bool chose_relay = rng_.bernoulli(p);
    if (rec)
      rec->record(obs::EventKind::RelayEval, now, self(), dst, id, p,
                  chose_relay ? 1.0 : 0.0,
                  static_cast<std::int32_t>(st.auxiliaries.size()));
    if (!chose_relay) continue;

    ++relays_sent_;
    if (stats_) stats_->on_aux_relay(id, e.frame.data.attempt, self());
    if (dir == Direction::Upstream) {
      // Relay over the inter-BS backplane (§4.3).
      if (rec)
        rec->record(obs::EventKind::RelayTx, now, self(), dst, id, p, 0.0, 0);
      net::WireMessage relay;
      relay.kind = net::WireMessage::Kind::RelayedData;
      relay.from = self();
      relay.to = dst;
      relay.packet = e.frame.packet;
      relay.attempt = e.frame.data.attempt;
      relay.link_seq = e.frame.data.link_seq;
      relay.bytes = e.frame.packet->bytes + kWireHeaderBytes;
      backplane_.send(std::move(relay));
    } else {
      // Relay on the vehicle-BS channel.
      if (rec)
        rec->record(obs::EventKind::RelayTx, now, self(), dst, id, p, 0.0, 1);
      mac::Frame relay = e.frame;
      relay.data.is_relay = true;
      relay.data.relayer = self();
      relay.data.piggyback_acked.clear();
      if (stats_) stats_->on_wireless_data_tx(Direction::Downstream);
      radio_.send(std::move(relay));
    }
  }
  overheard_ = std::move(pending);
}

void VifiBasestation::on_second_tick() {
  const Time now = sim_.now();
  pab_.tick_second(now);
  // Drop state for vehicles not heard from in a long time.
  std::erase_if(vehicles_, [now](const auto& kv) {
    return (now - kv.second.last_beacon) > Time::seconds(10.0);
  });
  // Salvage buffer pruning: entries too old to ever be salvaged.
  const Time cutoff = now - config_.salvage_window * 5.0;
  std::erase_if(salvage_buffer_, [cutoff](const auto& kv) {
    return kv.second.arrived < cutoff;
  });
}

}  // namespace vifi::core
