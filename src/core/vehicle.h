#pragma once

/// \file vehicle.h
/// The ViFi client on the vehicle (§4.3): picks the anchor with BRR over
/// beacons, designates every other recently-heard BS as auxiliary,
/// broadcasts beacons carrying {anchor, previous anchor, auxiliaries, pab
/// gossip}, sources upstream packets through the VifiSender, sinks
/// downstream packets (direct or relayed) with duplicate suppression, and
/// acknowledges per the §4.3 rules.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/config.h"
#include "core/id_set.h"
#include "core/pab.h"
#include "core/sender.h"
#include "core/sequencer.h"
#include "core/stats.h"
#include "mac/beaconing.h"
#include "mac/radio.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace vifi::core {

class VifiVehicle {
 public:
  VifiVehicle(sim::Simulator& sim, mac::Radio& radio, const VifiConfig& config,
              Rng rng, VifiStats* stats);

  VifiVehicle(const VifiVehicle&) = delete;
  VifiVehicle& operator=(const VifiVehicle&) = delete;

  NodeId self() const { return radio_.self(); }
  NodeId anchor() const { return anchor_; }
  NodeId prev_anchor() const { return prev_anchor_; }
  std::vector<NodeId> auxiliaries() const;

  /// Starts beaconing and periodic housekeeping.
  void start();

  /// Sends an application packet upstream (to the wired host through the
  /// anchor). The caller provides a fully-formed packet.
  void send_up(net::PacketRef packet);

  /// Called with each unique downstream packet delivered to the client.
  void set_delivery_handler(std::function<void(const net::PacketRef&)> fn);

  VifiSender& sender() { return sender_; }
  const PabTable& pab() const { return pab_; }

  std::uint64_t anchor_switches() const { return anchor_switches_; }

 private:
  void on_frame(const mac::Frame& f);
  void on_data(const mac::Frame& f);
  void on_second_tick();
  void select_anchor();
  mac::BeaconPayload beacon_payload();
  void send_ack(std::uint64_t packet_id);
  std::vector<std::uint64_t> recent_received_ids() const;

  sim::Simulator& sim_;
  mac::Radio& radio_;
  VifiConfig config_;
  VifiStats* stats_;
  PabTable pab_;
  mac::Beaconing beaconing_;
  sim::PeriodicTimer second_tick_;
  sim::PeriodicTimer pump_tick_;
  VifiSender sender_;

  NodeId anchor_{};
  NodeId prev_anchor_{};
  std::uint64_t anchor_switches_ = 0;
  int last_aux_count_ = 0;  ///< Last auxiliary-set size traced.

  RecentIdSet received_;
  RecentIdSet acked_once_;  ///< Ids acked in response to a *relayed* copy.
  std::deque<std::uint64_t> recent_rx_order_;  ///< For piggybacking.
  std::function<void(const net::PacketRef&)> deliver_;
  /// In-order delivery buffers, one per stream origin (§4.7 extension).
  std::map<NodeId, std::unique_ptr<Sequencer>> sequencers_;

  void deliver_up_the_stack(NodeId origin, std::uint64_t link_seq,
                            const net::PacketRef& packet);
};

}  // namespace vifi::core
