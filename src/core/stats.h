#pragma once

/// \file stats.h
/// Behavioural statistics of ViFi's coordination, recorded per source
/// transmission *attempt*. Feeds Table 1 (A1–C4), Table 2 / §5.5
/// false-positive/negative rates, and the Fig. 12 medium-efficiency
/// comparison including the PerfectRelay estimate (§5.4).

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "net/packet.h"
#include "sim/ids.h"
#include "util/time.h"

namespace vifi::obs {
class MetricsRegistry;
}

namespace vifi::core {

using net::Direction;
using sim::NodeId;

/// Everything observed about one source transmission attempt.
struct AttemptRecord {
  Direction dir = Direction::Upstream;
  Time tx_time;
  int designated_aux = 0;  ///< Size of the auxiliary set at tx time.
  bool dst_heard = false;  ///< Destination decoded this attempt directly.
  std::vector<NodeId> aux_heard;     ///< Auxiliaries that decoded it.
  std::vector<NodeId> aux_contended; ///< Heard it but no ACK at decision.
  struct Relay {
    NodeId aux;
    bool reached_dst = false;
  };
  std::vector<Relay> relays;
};

/// Table 1 rows for one direction.
struct CoordinationSummary {
  double median_designated_aux = 0.0;      // A1
  double avg_aux_heard = 0.0;              // A2
  double avg_aux_heard_no_ack = 0.0;       // A3
  double frac_src_tx_reached_dst = 0.0;    // B1
  double false_positive_rate = 0.0;        // B2: relays for successful tx /
                                           //     successful tx
  double avg_relays_when_fp = 0.0;         // B3
  double frac_src_tx_failed = 0.0;         // C1
  double frac_failed_with_aux_cover = 0.0; // C2
  // C3: failed transmissions that at least one auxiliary overheard but
  // nobody relayed, over covered failures. (Measuring over *all* failures
  // would contradict the paper's own numbers: upstream C2 = 66% implies
  // >= 34% of failures are uncoverable, yet C3 = 10%.)
  double false_negative_rate = 0.0;
  double frac_relays_reached_dst = 0.0;    // C4
  std::int64_t attempts = 0;
};

/// Fig. 12: application packets delivered per data transmission on the
/// vehicle-BS wireless channel.
struct EfficiencySummary {
  double up = 0.0;
  double down = 0.0;
  /// The PerfectRelay oracle estimated from the same logs (§5.4).
  double perfect_up = 0.0;
  double perfect_down = 0.0;
};

class VifiStats {
 public:
  // --- recording hooks (called by the protocol agents) -------------------
  void on_source_tx(std::uint64_t id, int attempt, Direction dir, Time now,
                    int designated_aux);
  void on_dst_rx_direct(std::uint64_t id, int attempt);
  void on_aux_overhear(std::uint64_t id, int attempt, NodeId aux);
  void on_aux_contend(std::uint64_t id, int attempt, NodeId aux);
  void on_aux_relay(std::uint64_t id, int attempt, NodeId aux);
  void on_relay_reached_dst(std::uint64_t id, int attempt, NodeId aux);
  /// Unique end-to-end delivery of an application packet.
  void on_app_delivered(Direction dir);
  /// A data frame hit the wireless channel (source or downstream relay).
  void on_wireless_data_tx(Direction dir);
  /// A packet was recovered through salvaging (§4.5).
  void on_salvaged() { ++salvaged_; }

  // --- summaries ----------------------------------------------------------
  CoordinationSummary coordination(Direction dir) const;
  EfficiencySummary efficiency() const;

  /// Compatibility shim onto the unified metrics registry: delivery/tx/
  /// salvage tallies as counters (additive across trips) and the Table 1 /
  /// Fig. 12 summaries as gauges under the `core.*` namespace.
  void publish(obs::MetricsRegistry& registry) const;

  std::int64_t app_delivered(Direction dir) const;
  std::int64_t wireless_data_tx(Direction dir) const;
  std::int64_t salvaged() const { return salvaged_; }
  std::int64_t source_attempts(Direction dir) const;

 private:
  static std::uint64_t key(std::uint64_t id, int attempt) {
    return id * 64 + static_cast<std::uint64_t>(attempt & 63);
  }
  AttemptRecord* find(std::uint64_t id, int attempt);

  std::unordered_map<std::uint64_t, AttemptRecord> attempts_;
  std::int64_t delivered_up_ = 0;
  std::int64_t delivered_down_ = 0;
  std::int64_t tx_up_ = 0;
  std::int64_t tx_down_ = 0;
  std::int64_t salvaged_ = 0;
};

}  // namespace vifi::core
