#pragma once

/// \file wired_host.h
/// The wired correspondent host / gateway. Downstream packets are routed to
/// the vehicle's *currently registered* anchor (anchors register when the
/// vehicle's beacons designate them, §4.3); packets in flight to a previous
/// anchor are the ones salvaging rescues (§4.5). Upstream packets arriving
/// from any anchor are delivered to the application.

#include <functional>
#include <map>

#include "core/id_set.h"
#include "core/stats.h"
#include "net/backplane.h"
#include "net/packet.h"
#include "sim/ids.h"

namespace vifi::core {

class WiredHost {
 public:
  WiredHost(net::Backplane& backplane, NodeId self, VifiStats* stats);

  WiredHost(const WiredHost&) = delete;
  WiredHost& operator=(const WiredHost&) = delete;

  NodeId self() const { return self_; }

  /// Sends a downstream packet toward the vehicle (packet.dst). Dropped
  /// (and counted) if no anchor has registered for that vehicle yet.
  void send_down(net::PacketRef packet);

  /// Unique upstream deliveries (catch-all: packets from any vehicle that
  /// has no per-vehicle handler registered).
  void set_delivery_handler(std::function<void(const net::PacketRef&)> fn);

  /// Unique upstream deliveries originating from one vehicle. Fleet
  /// deployments register one handler per vehicle; a per-vehicle handler
  /// takes precedence over the catch-all for its vehicle's packets.
  void set_delivery_handler(NodeId vehicle,
                            std::function<void(const net::PacketRef&)> fn);

  /// The anchor currently registered for a vehicle (invalid if none).
  NodeId registered_anchor(NodeId vehicle) const;

  std::uint64_t undeliverable() const { return undeliverable_; }

 private:
  void on_wire(const net::WireMessage& msg);

  net::Backplane& backplane_;
  NodeId self_;
  VifiStats* stats_;
  std::map<NodeId, NodeId> anchor_of_;  // vehicle -> registered anchor
  RecentIdSet delivered_;
  std::function<void(const net::PacketRef&)> deliver_;
  std::map<NodeId, std::function<void(const net::PacketRef&)>>
      deliver_per_vehicle_;  // keyed by packet source vehicle
  std::uint64_t undeliverable_ = 0;
};

}  // namespace vifi::core
