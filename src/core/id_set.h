#pragma once

/// \file id_set.h
/// A bounded recently-seen-ids set with FIFO eviction, used for duplicate
/// suppression (received packets, acked packets, relay-considered packets).

#include <cstdint>
#include <deque>
#include <unordered_set>

namespace vifi::core {

class RecentIdSet {
 public:
  explicit RecentIdSet(std::size_t capacity = 4096) : capacity_(capacity) {}

  /// Inserts; returns true if the id was new.
  bool insert(std::uint64_t id) {
    if (set_.contains(id)) return false;
    set_.insert(id);
    order_.push_back(id);
    while (order_.size() > capacity_) {
      set_.erase(order_.front());
      order_.pop_front();
    }
    return true;
  }

  bool contains(std::uint64_t id) const { return set_.contains(id); }
  std::size_t size() const { return set_.size(); }

 private:
  std::size_t capacity_;
  std::unordered_set<std::uint64_t> set_;
  std::deque<std::uint64_t> order_;
};

}  // namespace vifi::core
