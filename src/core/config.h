#pragma once

/// \file config.h
/// ViFi protocol configuration. The baselines of the evaluation are
/// expressed as configurations of the same stack (§5.1: "To ensure a fair
/// comparison, we implement BRR within the same framework as ViFi but with
/// the auxiliary BS functionality switched off"):
///
///   * BRR baseline ........ diversity=false, salvage=false
///   * "Only Diversity" .... diversity=true,  salvage=false  (Fig. 9)
///   * ViFi ................ diversity=true,  salvage=true
///
/// `variant` selects the §5.5.1 coordination ablations.

#include <array>
#include <vector>

#include "util/time.h"

namespace vifi::core {

/// Relay-probability formulations (§4.4 guidelines G1–G3 and their
/// violations studied in §5.5.1 / Table 2).
enum class RelayVariant {
  ViFi,  ///< Expected relays = 1, weighted by connectivity to destination.
  NoG1,  ///< Ignore other auxiliaries: relay w.p. own delivery ratio.
  NoG2,  ///< Ignore connectivity: relay w.p. 1 / sum(c_i).
  NoG3,  ///< Expected *deliveries* = 1 (waterfilling; §5.5.1).
};

inline const char* to_string(RelayVariant v) {
  switch (v) {
    case RelayVariant::ViFi:
      return "ViFi";
    case RelayVariant::NoG1:
      return "!G1";
    case RelayVariant::NoG2:
      return "!G2";
    case RelayVariant::NoG3:
      return "!G3";
  }
  return "?";
}

struct VifiConfig {
  bool diversity = true;  ///< Auxiliary overhearing + relaying enabled.
  bool salvage = true;    ///< §4.5 anchor-to-anchor packet salvaging.
  RelayVariant variant = RelayVariant::ViFi;

  /// Source retransmissions of unacknowledged packets. 0 disables (link-
  /// layer experiments, §5.2); application experiments use 3 (§5.3).
  int max_retx = 3;

  Time beacon_period = Time::millis(100);

  /// Auxiliary relay timers fire this often, with random per-BS phase
  /// (§4.4: "relay attempts of auxiliary BSes are not synchronized").
  Time relay_check_period = Time::millis(10);
  /// Minimum age of an overheard packet before a relay decision, giving
  /// the destination's ACK time to arrive.
  Time ack_wait = Time::millis(8);

  /// Retransmission timer: 99th percentile of observed ack delays (§4.7),
  /// clamped to [floor, cap]; `initial` is used before enough samples.
  Time retx_initial = Time::millis(60);
  Time retx_floor = Time::millis(15);
  Time retx_cap = Time::seconds(1.0);

  /// Relative BRR advantage a challenger BS needs before the vehicle
  /// re-anchors (prevents flapping between equals).
  double anchor_hysteresis = 0.15;
  /// A BS must have been heard within this window to serve as anchor or
  /// auxiliary.
  Time neighbor_staleness = Time::seconds(3.0);

  /// Anchor keeps unacknowledged Internet packets this long for the next
  /// anchor to salvage (§4.5: one second, from the minimum TCP RTO).
  Time salvage_window = Time::seconds(1.0);

  /// Size of the piggybacked recently-received id list (§4.8's 1-byte
  /// bitmap covers the last eight packets).
  int piggyback_depth = 8;

  /// §4.3 extension: cap the auxiliary set to the k best-heard BSes
  /// (negative = designate every BS heard, the paper's default). §3.4.1
  /// finds two or three auxiliaries capture nearly all of the gain, and
  /// §5.5.2 suggests the cap as a fix for high-density deployments.
  int max_auxiliaries = -1;

  /// §4.7 extension: deliver packets to the application in link-sequence
  /// order through a sequencing buffer (off by default; the paper measures
  /// that reordering is small and does not hurt TCP).
  bool inorder_delivery = false;
  /// How long the sequencing buffer waits for missing predecessors.
  Time reorder_hold = Time::millis(50);
};

/// CoordTier: the BS-side ConnectivityManager's knobs (src/coord/). Plain
/// data here so the whole stack (executor -> LiveTrip -> VifiSystem) can
/// thread it through without depending on the coord layer.
struct CoordParams {
  /// Off by default: the historical PAB-only stack, byte-for-byte.
  bool enabled = false;
  /// Warm the predicted next anchor (sender state + proactive salvage
  /// pull) before the handoff beacon gap.
  bool prestage = true;
  /// Suppress non-{anchor, predicted} auxiliary relays while a confident
  /// prediction is live.
  bool suppress_relays = true;
  /// Predictions below this successor-share never commit. Routes through
  /// ~10-BS testbeds spread successions wide, so the floor is set where a
  /// clear favourite (several times the uniform share) still qualifies;
  /// raising it towards 1 disables prediction on diffuse matrices.
  double min_confidence = 0.4;
  /// Successions observed from a BS before its predictions count.
  int min_history = 3;
  /// No client beacon for this long resets the machine to Idle.
  Time beacon_timeout = Time::seconds(3.0);
  /// Fitted mobility history seeding the next-BS predictor:
  /// {from_bs, to_bs, count} succession triples (coord::fit_history).
  std::vector<std::array<int, 3>> history;
};

}  // namespace vifi::core
