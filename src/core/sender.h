#pragma once

/// \file sender.h
/// The source-side data path shared by the vehicle (upstream) and the
/// anchor BS (downstream): a FIFO of application packets, per-packet
/// unique-id retransmission state, and the adaptive retransmission timer
/// of §4.7 — the 99th percentile of observed acknowledgment delays, so
/// sources "err towards waiting longer when conditions change rather than
/// retransmitting spuriously". When the medium frees up before the head
/// packet's retransmission time, the earliest *ready* packet is sent
/// instead (allowed reordering, §4.7).

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <vector>

#include "core/config.h"
#include "core/stats.h"
#include "mac/radio.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace vifi::obs {
class Histogram;
}

namespace vifi::core {

class VifiSender {
 public:
  VifiSender(sim::Simulator& sim, mac::Radio& radio, const VifiConfig& config,
             NodeId self, Direction dir);

  VifiSender(const VifiSender&) = delete;
  VifiSender& operator=(const VifiSender&) = delete;

  /// Wireless-hop destination at transmit time (anchor for the vehicle,
  /// vehicle for the anchor). An invalid id pauses sending.
  void set_hop_dst_provider(std::function<NodeId()> provider);
  /// Recently-received reverse-direction packet ids to piggyback (§4.8).
  void set_piggyback_provider(std::function<std::vector<std::uint64_t>()>);
  /// Auxiliary-set size at transmit time (recorded in stats).
  void set_designated_aux_provider(std::function<int()> provider);
  void set_stats(VifiStats* stats) { stats_ = stats; }
  /// Called when a packet exhausts its attempts without an ACK.
  void set_drop_handler(std::function<void(const net::PacketRef&)> handler);

  /// Queues an application packet for (re)transmission until acked or out
  /// of attempts.
  void enqueue(net::PacketRef packet);

  /// Acknowledgment (explicit ACK frame or piggybacked id).
  /// \p explicit_ack contributes a delay sample to the retx estimator.
  void acknowledge(std::uint64_t packet_id, Time now, bool explicit_ack);

  /// Current retransmission interval (99th pct of ack delays, clamped).
  Time retx_interval() const;

  std::size_t pending() const { return entries_.size(); }
  std::uint64_t acked_count() const { return acked_; }
  std::uint64_t dropped_count() const { return dropped_; }

  /// Hook this to the radio's idle callback (done by the owning agent).
  void pump();

 private:
  struct Entry {
    net::PacketRef packet;
    int attempts = 0;
    Time next_ready;       ///< Earliest time the next attempt may go out.
    Time last_tx;          ///< When the latest attempt was enqueued to air.
    std::uint64_t order;   ///< FIFO order of arrival.
    std::uint64_t link_seq = 0;  ///< Stream sequence, set at first tx.
  };

  void transmit(Entry& e);
  void arm_wake(Time at);

  sim::Simulator& sim_;
  mac::Radio& radio_;
  VifiConfig config_;
  NodeId self_;
  Direction dir_;
  std::function<NodeId()> hop_dst_;
  std::function<std::vector<std::uint64_t>()> piggyback_;
  std::function<int()> designated_aux_;
  std::function<void(const net::PacketRef&)> on_drop_;
  VifiStats* stats_ = nullptr;

  std::list<Entry> entries_;
  std::uint64_t next_order_ = 0;
  std::uint64_t next_link_seq_ = 0;
  std::deque<double> ack_delays_s_;  ///< Sliding window of samples.
  sim::EventId wake_{};
  Time wake_at_ = Time::max();
  std::uint64_t acked_ = 0;
  std::uint64_t dropped_ = 0;
  /// Live §4.7 retransmission-interval histogram (seconds), registered at
  /// construction when a MetricsRegistry is installed on this thread.
  obs::Histogram* retx_interval_hist_ = nullptr;
};

}  // namespace vifi::core
