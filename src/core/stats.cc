#include "core/stats.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/contracts.h"
#include "util/stats.h"

namespace vifi::core {

void VifiStats::on_source_tx(std::uint64_t id, int attempt, Direction dir,
                             Time now, int designated_aux) {
  AttemptRecord rec;
  rec.dir = dir;
  rec.tx_time = now;
  rec.designated_aux = designated_aux;
  attempts_[key(id, attempt)] = std::move(rec);
}

AttemptRecord* VifiStats::find(std::uint64_t id, int attempt) {
  const auto it = attempts_.find(key(id, attempt));
  return it == attempts_.end() ? nullptr : &it->second;
}

void VifiStats::on_dst_rx_direct(std::uint64_t id, int attempt) {
  if (AttemptRecord* r = find(id, attempt)) r->dst_heard = true;
}

void VifiStats::on_aux_overhear(std::uint64_t id, int attempt, NodeId aux) {
  if (AttemptRecord* r = find(id, attempt)) r->aux_heard.push_back(aux);
}

void VifiStats::on_aux_contend(std::uint64_t id, int attempt, NodeId aux) {
  if (AttemptRecord* r = find(id, attempt)) r->aux_contended.push_back(aux);
}

void VifiStats::on_aux_relay(std::uint64_t id, int attempt, NodeId aux) {
  if (AttemptRecord* r = find(id, attempt))
    r->relays.push_back({aux, false});
}

void VifiStats::on_relay_reached_dst(std::uint64_t id, int attempt,
                                     NodeId aux) {
  if (AttemptRecord* r = find(id, attempt)) {
    for (auto& relay : r->relays)
      if (relay.aux == aux) relay.reached_dst = true;
  }
}

void VifiStats::on_app_delivered(Direction dir) {
  (dir == Direction::Upstream ? delivered_up_ : delivered_down_) += 1;
}

void VifiStats::on_wireless_data_tx(Direction dir) {
  (dir == Direction::Upstream ? tx_up_ : tx_down_) += 1;
}

std::int64_t VifiStats::app_delivered(Direction dir) const {
  return dir == Direction::Upstream ? delivered_up_ : delivered_down_;
}

std::int64_t VifiStats::wireless_data_tx(Direction dir) const {
  return dir == Direction::Upstream ? tx_up_ : tx_down_;
}

std::int64_t VifiStats::source_attempts(Direction dir) const {
  std::int64_t n = 0;
  // detlint: unordered-iter-ok(integer count; commutative, order-free)
  for (const auto& [k, r] : attempts_) {
    (void)k;
    if (r.dir == dir) ++n;
  }
  return n;
}

CoordinationSummary VifiStats::coordination(Direction dir) const {
  CoordinationSummary s;
  std::vector<double> designated;
  designated.reserve(attempts_.size());
  std::int64_t n = 0;
  std::int64_t heard_sum = 0, contend_sum = 0;
  std::int64_t reached = 0, failed = 0;
  std::int64_t fp_relays = 0, fp_events = 0, fp_relay_count_sum = 0;
  std::int64_t failed_with_cover = 0, failed_no_relay = 0;
  std::int64_t relays = 0, relays_ok = 0;

  // The one float sink, designated, goes through median() which sorts;
  // pinned by CoordinationOrderInvariance in tests/test_core.cc.
  // detlint: unordered-iter-ok(int64 sums commutative; median sorts)
  for (const auto& [k, r] : attempts_) {
    (void)k;
    if (r.dir != dir) continue;
    ++n;
    designated.push_back(static_cast<double>(r.designated_aux));
    heard_sum += static_cast<std::int64_t>(r.aux_heard.size());
    contend_sum += static_cast<std::int64_t>(r.aux_contended.size());
    relays += static_cast<std::int64_t>(r.relays.size());
    for (const auto& relay : r.relays)
      if (relay.reached_dst) ++relays_ok;
    if (r.dst_heard) {
      ++reached;
      if (!r.relays.empty()) {
        ++fp_events;
        fp_relays += static_cast<std::int64_t>(r.relays.size());
        fp_relay_count_sum += static_cast<std::int64_t>(r.relays.size());
      }
    } else {
      ++failed;
      if (!r.aux_heard.empty()) {
        ++failed_with_cover;
        if (r.relays.empty()) ++failed_no_relay;
      }
    }
  }

  if (n == 0) return s;
  s.attempts = n;
  s.median_designated_aux = median(designated);
  s.avg_aux_heard = static_cast<double>(heard_sum) / n;
  s.avg_aux_heard_no_ack = static_cast<double>(contend_sum) / n;
  s.frac_src_tx_reached_dst = static_cast<double>(reached) / n;
  s.frac_src_tx_failed = static_cast<double>(failed) / n;
  s.false_positive_rate =
      reached > 0 ? static_cast<double>(fp_relays) / reached : 0.0;
  s.avg_relays_when_fp =
      fp_events > 0 ? static_cast<double>(fp_relay_count_sum) / fp_events
                    : 0.0;
  s.frac_failed_with_aux_cover =
      failed > 0 ? static_cast<double>(failed_with_cover) / failed : 0.0;
  s.false_negative_rate =
      failed_with_cover > 0
          ? static_cast<double>(failed_no_relay) / failed_with_cover
          : 0.0;
  s.frac_relays_reached_dst =
      relays > 0 ? static_cast<double>(relays_ok) / relays : 0.0;
  return s;
}

void VifiStats::publish(obs::MetricsRegistry& registry) const {
  const auto dir_labels = [](Direction dir) {
    return obs::Labels{{"dir", dir == Direction::Upstream ? "up" : "down"}};
  };
  for (const Direction dir : {Direction::Upstream, Direction::Downstream}) {
    const obs::Labels labels = dir_labels(dir);
    registry.counter("core.app_delivered", labels)
        .add(static_cast<double>(app_delivered(dir)));
    registry.counter("core.wireless_data_tx", labels)
        .add(static_cast<double>(wireless_data_tx(dir)));
    registry.counter("core.source_attempts", labels)
        .add(static_cast<double>(source_attempts(dir)));
    const CoordinationSummary c = coordination(dir);
    registry.gauge("core.frac_src_tx_reached_dst", labels)
        .set(c.frac_src_tx_reached_dst);
    registry.gauge("core.false_positive_rate", labels)
        .set(c.false_positive_rate);
    registry.gauge("core.false_negative_rate", labels)
        .set(c.false_negative_rate);
    registry.gauge("core.frac_relays_reached_dst", labels)
        .set(c.frac_relays_reached_dst);
  }
  registry.counter("core.salvaged").add(static_cast<double>(salvaged_));
  const EfficiencySummary e = efficiency();
  registry.gauge("core.efficiency", dir_labels(Direction::Upstream)).set(e.up);
  registry.gauge("core.efficiency", dir_labels(Direction::Downstream))
      .set(e.down);
}

EfficiencySummary VifiStats::efficiency() const {
  EfficiencySummary e;
  if (tx_up_ > 0)
    e.up = static_cast<double>(delivered_up_) / static_cast<double>(tx_up_);
  if (tx_down_ > 0)
    e.down =
        static_cast<double>(delivered_down_) / static_cast<double>(tx_down_);

  // PerfectRelay estimate from the same logs (§5.4): exactly one BS relays,
  // and only when the destination missed the source transmission.
  std::int64_t up_attempts = 0, up_delivered = 0;
  std::int64_t down_attempts = 0, down_delivered = 0, down_relays = 0;
  // detlint: unordered-iter-ok(integer counts only; commutative, order-free)
  for (const auto& [k, r] : attempts_) {
    (void)k;
    if (r.dir == Direction::Upstream) {
      // Upstream relays ride the backplane, so wireless cost is the source
      // transmission alone; delivery succeeds if any BS heard it.
      ++up_attempts;
      if (r.dst_heard || !r.aux_heard.empty()) ++up_delivered;
    } else {
      ++down_attempts;
      bool delivered = r.dst_heard;
      if (!r.dst_heard) {
        if (!r.relays.empty()) {
          // Outcome identical to ViFi's relaying (§5.4 rule i).
          for (const auto& relay : r.relays)
            delivered = delivered || relay.reached_dst;
          ++down_relays;  // PerfectRelay would have sent exactly one
        } else if (!r.aux_heard.empty()) {
          // ViFi did not relay; PerfectRelay would have, successfully
          // (§5.4 rule ii).
          delivered = true;
          ++down_relays;
        }
      }
      if (delivered) ++down_delivered;
    }
  }
  if (up_attempts > 0)
    e.perfect_up = static_cast<double>(up_delivered) /
                   static_cast<double>(up_attempts);
  if (down_attempts + down_relays > 0)
    e.perfect_down = static_cast<double>(down_delivered) /
                     static_cast<double>(down_attempts + down_relays);
  return e;
}

}  // namespace vifi::core
