#pragma once

/// \file system.h
/// Assembles a complete ViFi deployment over a given channel: one medium,
/// one backplane, one radio + basestation agent per BS, the vehicle client,
/// and the wired correspondent host. This is the public entry point for
/// running live protocol experiments; examples and benches build it from a
/// scenario::Testbed plus either a stochastic or a trace-driven channel.

#include <memory>
#include <vector>

#include "channel/loss_model.h"
#include "core/basestation.h"
#include "core/config.h"
#include "core/stats.h"
#include "core/vehicle.h"
#include "core/wired_host.h"
#include "mac/medium.h"
#include "mac/radio.h"
#include "net/backplane.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace vifi::core {

struct SystemConfig {
  VifiConfig vifi;
  /// CoordTier: BS-side predictive handoff coordination (src/coord/).
  /// Plain data — the coord::ConnectivityManager consuming it is attached
  /// by the scenario layer, so core stays coord-free.
  CoordParams coord;
  mac::MediumParams medium;
  net::Backplane::LinkParams wired;
  std::uint64_t seed = 1;
};

class VifiSystem {
 public:
  /// Single-vehicle deployment. \p loss must outlive the system. BS ids
  /// must be distinct from the vehicle and gateway ids.
  VifiSystem(sim::Simulator& sim, channel::LossModel& loss,
             std::vector<NodeId> bs_ids, NodeId vehicle_id, NodeId gateway_id,
             SystemConfig config);

  /// Fleet deployment — VanLAN itself ran two vans (§2.1). Each vehicle
  /// gets its own ViFi client; BSes anchor them independently.
  VifiSystem(sim::Simulator& sim, channel::LossModel& loss,
             std::vector<NodeId> bs_ids, std::vector<NodeId> vehicle_ids,
             NodeId gateway_id, SystemConfig config);

  VifiSystem(const VifiSystem&) = delete;
  VifiSystem& operator=(const VifiSystem&) = delete;

  /// Starts beaconing and protocol timers on every node.
  void start();

  /// The first (or only) vehicle.
  VifiVehicle& vehicle() { return *vehicles_.front(); }
  /// A specific vehicle of a fleet.
  VifiVehicle& vehicle(NodeId id);
  WiredHost& host() { return *host_; }
  VifiBasestation& basestation(NodeId id);
  mac::Medium& medium() { return *medium_; }
  net::Backplane& backplane() { return *backplane_; }
  VifiStats& stats() { return stats_; }
  net::PacketFactory& packets() { return packet_factory_; }
  sim::Simulator& simulator() { return sim_; }

  const std::vector<NodeId>& bs_ids() const { return bs_ids_; }
  const std::vector<NodeId>& vehicle_ids() const { return vehicle_ids_; }
  NodeId vehicle_id() const { return vehicle_ids_.front(); }
  NodeId gateway_id() const { return gateway_id_; }

  /// Convenience: makes and sends one upstream application packet from a
  /// vehicle (default: the first).
  net::PacketRef send_up(int bytes, int flow = 0, std::uint64_t app_seq = 0,
                         net::AppPayload app_data = {}, NodeId from = NodeId{});
  /// Convenience: makes and sends one downstream application packet to a
  /// vehicle (default: the first).
  net::PacketRef send_down(int bytes, int flow = 0, std::uint64_t app_seq = 0,
                           net::AppPayload app_data = {}, NodeId to = NodeId{});

 private:
  sim::Simulator& sim_;
  std::vector<NodeId> bs_ids_;
  std::vector<NodeId> vehicle_ids_;
  NodeId gateway_id_;
  SystemConfig config_;
  VifiStats stats_;
  net::PacketFactory packet_factory_;
  std::unique_ptr<mac::Medium> medium_;
  std::unique_ptr<net::Backplane> backplane_;
  std::vector<std::unique_ptr<mac::Radio>> radios_;
  std::vector<std::unique_ptr<VifiBasestation>> basestations_;
  std::vector<std::unique_ptr<mac::Radio>> vehicle_radios_;
  std::vector<std::unique_ptr<VifiVehicle>> vehicles_;
  std::unique_ptr<WiredHost> host_;
};

}  // namespace vifi::core
