#include "core/sender.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/recorder.h"
#include "util/contracts.h"
#include "util/stats.h"

namespace vifi::core {

namespace {
constexpr std::size_t kDelayWindow = 512;
}

VifiSender::VifiSender(sim::Simulator& sim, mac::Radio& radio,
                       const VifiConfig& config, NodeId self, Direction dir)
    : sim_(sim), radio_(radio), config_(config), self_(self), dir_(dir) {
  VIFI_EXPECTS(self.valid());
  if (obs::MetricsRegistry* metrics = obs::current_metrics())
    retx_interval_hist_ = &metrics->histogram(
        "core.retx_interval_s",
        {0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0},
        {{"node", self.to_string()},
         {"dir", dir == Direction::Upstream ? "up" : "down"}});
}

void VifiSender::set_hop_dst_provider(std::function<NodeId()> provider) {
  hop_dst_ = std::move(provider);
}

void VifiSender::set_piggyback_provider(
    std::function<std::vector<std::uint64_t>()> provider) {
  piggyback_ = std::move(provider);
}

void VifiSender::set_designated_aux_provider(std::function<int()> provider) {
  designated_aux_ = std::move(provider);
}

void VifiSender::set_drop_handler(
    std::function<void(const net::PacketRef&)> handler) {
  on_drop_ = std::move(handler);
}

void VifiSender::enqueue(net::PacketRef packet) {
  VIFI_EXPECTS(packet != nullptr);
  Entry e;
  e.packet = std::move(packet);
  e.next_ready = sim_.now();
  e.order = next_order_++;
  entries_.push_back(std::move(e));
  pump();
}

Time VifiSender::retx_interval() const {
  if (ack_delays_s_.size() < 20) return config_.retx_initial;
  std::vector<double> v(ack_delays_s_.begin(), ack_delays_s_.end());
  const Time p99 = Time::seconds(percentile(std::move(v), 99.0));
  return std::clamp(p99, config_.retx_floor, config_.retx_cap);
}

void VifiSender::acknowledge(std::uint64_t packet_id, Time now,
                             bool explicit_ack) {
  const auto it =
      std::find_if(entries_.begin(), entries_.end(), [packet_id](const Entry& e) {
        return e.packet->id == packet_id;
      });
  if (it == entries_.end()) return;  // late or duplicate ack
  if (explicit_ack && it->attempts > 0) {
    // Delay measured from the latest attempt: unique per-packet ids keep
    // acks from being credited to older *packets*; crediting an older
    // attempt of the same packet only makes the timer more conservative,
    // which is the direction §4.7 prefers.
    ack_delays_s_.push_back((now - it->last_tx).to_seconds());
    if (ack_delays_s_.size() > kDelayWindow) ack_delays_s_.pop_front();
  }
  ++acked_;
  entries_.erase(it);
}

void VifiSender::pump() {
  if (!radio_.idle()) return;  // one frame pending at the interface (§4.8)
  if (!hop_dst_ || !hop_dst_().valid()) return;
  const Time now = sim_.now();

  // Earliest-queued packet that is ready (§4.7).
  Entry* ready = nullptr;
  Time earliest_future = Time::max();
  for (Entry& e : entries_) {
    if (e.next_ready <= now) {
      if (ready == nullptr || e.order < ready->order) ready = &e;
    } else {
      earliest_future = std::min(earliest_future, e.next_ready);
    }
  }
  if (ready == nullptr) {
    if (earliest_future < Time::max()) arm_wake(earliest_future);
    return;
  }
  transmit(*ready);
}

void VifiSender::arm_wake(Time at) {
  if (wake_at_ <= at && wake_at_ > sim_.now()) return;  // already armed
  sim_.cancel(wake_);
  wake_at_ = at;
  wake_ = sim_.schedule_at(at, [this] {
    wake_at_ = Time::max();
    pump();
  });
}

void VifiSender::transmit(Entry& e) {
  const Time now = sim_.now();
  ++e.attempts;
  e.last_tx = now;
  // Stream sequence numbers follow *transmission* order (a later-queued
  // packet sent early, §4.7, gets the earlier sequence number).
  if (e.link_seq == 0) e.link_seq = ++next_link_seq_;

  mac::Frame f;
  f.type = mac::FrameType::Data;
  f.packet = e.packet;
  f.data.packet_id = e.packet->id;
  f.data.link_seq = e.link_seq;
  f.data.attempt = e.attempts;
  f.data.origin = self_;
  f.data.hop_dst = hop_dst_();
  f.data.is_relay = false;
  if (piggyback_) f.data.piggyback_acked = piggyback_();

  if (stats_) {
    stats_->on_source_tx(e.packet->id, e.attempts, dir_, now,
                         designated_aux_ ? designated_aux_() : 0);
    stats_->on_wireless_data_tx(dir_);
  }

  const bool last_attempt = e.attempts >= 1 + config_.max_retx;
  if (last_attempt) {
    // No more attempts: the entry leaves the queue once the frame is out.
    const net::PacketRef packet = e.packet;
    const std::uint64_t order = e.order;
    const int attempts = e.attempts;
    entries_.remove_if([order](const Entry& x) { return x.order == order; });
    ++dropped_;
    radio_.send(std::move(f));
    if (obs::TraceRecorder* rec = obs::current_recorder())
      rec->record(obs::EventKind::FrameDrop, now, self_,
                  hop_dst_ ? hop_dst_() : NodeId{}, packet->id,
                  static_cast<double>(attempts), 0.0,
                  dir_ == Direction::Downstream ? 1 : 0);
    if (on_drop_) on_drop_(packet);
  } else {
    const Time interval = retx_interval();
    if (retx_interval_hist_) retx_interval_hist_->observe(interval.to_seconds());
    e.next_ready = now + interval;
    radio_.send(std::move(f));
  }
}

}  // namespace vifi::core
