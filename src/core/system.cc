#include "core/system.h"

#include <algorithm>
#include <string>

#include "obs/recorder.h"
#include "util/contracts.h"

namespace vifi::core {

VifiSystem::VifiSystem(sim::Simulator& sim, channel::LossModel& loss,
                       std::vector<NodeId> bs_ids, NodeId vehicle_id,
                       NodeId gateway_id, SystemConfig config)
    : VifiSystem(sim, loss, std::move(bs_ids),
                 std::vector<NodeId>{vehicle_id}, gateway_id, config) {}

VifiSystem::VifiSystem(sim::Simulator& sim, channel::LossModel& loss,
                       std::vector<NodeId> bs_ids,
                       std::vector<NodeId> vehicle_ids, NodeId gateway_id,
                       SystemConfig config)
    : sim_(sim),
      bs_ids_(std::move(bs_ids)),
      vehicle_ids_(std::move(vehicle_ids)),
      gateway_id_(gateway_id),
      config_(config) {
  VIFI_EXPECTS(!bs_ids_.empty());
  VIFI_EXPECTS(!vehicle_ids_.empty());
  VIFI_EXPECTS(gateway_id.valid());
  for (NodeId v : vehicle_ids_) {
    VIFI_EXPECTS(v.valid());
    VIFI_EXPECTS(std::find(bs_ids_.begin(), bs_ids_.end(), v) ==
                 bs_ids_.end());
  }

  Rng root(config.seed);
  medium_ = std::make_unique<mac::Medium>(sim_, loss, config.medium);
  backplane_ =
      std::make_unique<net::Backplane>(sim_, root.fork("backplane"));
  backplane_->set_default_link(config.wired);

  for (NodeId bs : bs_ids_) {
    auto radio = std::make_unique<mac::Radio>(
        sim_, *medium_, bs, root.fork("radio" + std::to_string(bs.value())));
    medium_->set_role(bs, mac::NodeRole::Infrastructure);
    auto agent = std::make_unique<VifiBasestation>(
        sim_, *radio, *backplane_, gateway_id_, config_.vifi,
        root.fork("bs" + std::to_string(bs.value())), &stats_);
    radios_.push_back(std::move(radio));
    basestations_.push_back(std::move(agent));
  }

  for (NodeId v : vehicle_ids_) {
    auto radio = std::make_unique<mac::Radio>(
        sim_, *medium_, v,
        root.fork("radio-vehicle" + std::to_string(v.value())));
    medium_->set_role(v, mac::NodeRole::Vehicle);
    auto agent = std::make_unique<VifiVehicle>(
        sim_, *radio, config_.vifi,
        root.fork("vehicle" + std::to_string(v.value())), &stats_);
    vehicle_radios_.push_back(std::move(radio));
    vehicles_.push_back(std::move(agent));
  }
  host_ = std::make_unique<WiredHost>(*backplane_, gateway_id_, &stats_);

  if (obs::TraceRecorder* rec = obs::current_recorder()) {
    for (NodeId bs : bs_ids_) rec->set_node_label(bs, "bs");
    for (NodeId v : vehicle_ids_) rec->set_node_label(v, "vehicle");
    rec->set_node_label(gateway_id_, "host");
  }
}

void VifiSystem::start() {
  for (auto& bs : basestations_) bs->start();
  for (auto& v : vehicles_) v->start();
}

VifiVehicle& VifiSystem::vehicle(NodeId id) {
  for (std::size_t i = 0; i < vehicle_ids_.size(); ++i)
    if (vehicle_ids_[i] == id) return *vehicles_[i];
  throw ContractViolation("unknown vehicle id " + id.to_string());
}

VifiBasestation& VifiSystem::basestation(NodeId id) {
  for (std::size_t i = 0; i < bs_ids_.size(); ++i)
    if (bs_ids_[i] == id) return *basestations_[i];
  throw ContractViolation("unknown basestation id " + id.to_string());
}

net::PacketRef VifiSystem::send_up(int bytes, int flow,
                                   std::uint64_t app_seq,
                                   net::AppPayload app_data, NodeId from) {
  if (!from.valid()) from = vehicle_ids_.front();
  auto p = packet_factory_.make(net::Direction::Upstream, from, gateway_id_,
                                bytes, sim_.now(), flow, app_seq,
                                std::move(app_data));
  vehicle(from).send_up(p);
  return p;
}

net::PacketRef VifiSystem::send_down(int bytes, int flow,
                                     std::uint64_t app_seq,
                                     net::AppPayload app_data, NodeId to) {
  if (!to.valid()) to = vehicle_ids_.front();
  auto p = packet_factory_.make(net::Direction::Downstream, gateway_id_, to,
                                bytes, sim_.now(), flow, app_seq,
                                std::move(app_data));
  host_->send_down(p);
  return p;
}

}  // namespace vifi::core
