#include "core/wired_host.h"

#include "core/id_set.h"
#include "util/contracts.h"

namespace vifi::core {

namespace {
constexpr int kWireHeaderBytes = 28;
}

WiredHost::WiredHost(net::Backplane& backplane, NodeId self, VifiStats* stats)
    : backplane_(backplane), self_(self), stats_(stats) {
  VIFI_EXPECTS(self.valid());
  backplane_.attach(self_,
                    [this](const net::WireMessage& m) { on_wire(m); });
}

void WiredHost::send_down(net::PacketRef packet) {
  VIFI_EXPECTS(packet != nullptr);
  VIFI_EXPECTS(packet->dir == net::Direction::Downstream);
  const NodeId anchor = registered_anchor(packet->dst);
  if (!anchor.valid()) {
    ++undeliverable_;
    return;
  }
  net::WireMessage msg;
  msg.kind = net::WireMessage::Kind::Data;
  msg.from = self_;
  msg.to = anchor;
  msg.bytes = packet->bytes + kWireHeaderBytes;
  msg.packet = std::move(packet);
  backplane_.send(std::move(msg));
}

void WiredHost::set_delivery_handler(
    std::function<void(const net::PacketRef&)> fn) {
  deliver_ = std::move(fn);
}

void WiredHost::set_delivery_handler(
    NodeId vehicle, std::function<void(const net::PacketRef&)> fn) {
  VIFI_EXPECTS(vehicle.valid());
  deliver_per_vehicle_[vehicle] = std::move(fn);
}

NodeId WiredHost::registered_anchor(NodeId vehicle) const {
  const auto it = anchor_of_.find(vehicle);
  return it == anchor_of_.end() ? NodeId{} : it->second;
}

void WiredHost::on_wire(const net::WireMessage& msg) {
  switch (msg.kind) {
    case net::WireMessage::Kind::AnchorRegister:
      anchor_of_[msg.about] = msg.from;
      break;
    case net::WireMessage::Kind::Data: {
      VIFI_EXPECTS(msg.packet != nullptr);
      if (!delivered_.insert(msg.packet->id)) return;  // duplicate
      if (stats_) stats_->on_app_delivered(net::Direction::Upstream);
      const auto it = deliver_per_vehicle_.find(msg.packet->src);
      if (it != deliver_per_vehicle_.end() && it->second) {
        it->second(msg.packet);
      } else if (deliver_) {
        deliver_(msg.packet);
      }
      break;
    }
    default:
      break;  // other kinds are BS-to-BS only
  }
}

}  // namespace vifi::core
