#pragma once

/// \file relay_policy.h
/// The decentralized relay-probability computation (§4.4). A contending
/// auxiliary Bx — one that overheard the packet but no acknowledgment —
/// computes, purely from gossiped reception probabilities:
///
///   c_i = p(s->Bi) * (1 - p(s->d) * p(d->Bi))        (Eq. 3)
///   sum_i c_i * r_i = 1,   r_i = r * p(Bi->d)        (Eq. 1, 2)
///   relay with probability min(r * p(Bx->d), 1)
///
/// plus the three §5.5.1 ablations that each violate one guideline.

#include <vector>

#include "core/config.h"
#include "core/pab.h"
#include "sim/ids.h"

namespace vifi::core {

/// Inputs to one relay decision.
struct RelayContext {
  NodeId self;  ///< The contending auxiliary Bx.
  NodeId src;   ///< Wireless-hop source (vehicle or anchor).
  NodeId dst;   ///< Wireless-hop destination.
  /// The full auxiliary set B1..BK designated by the vehicle (self
  /// included).
  std::vector<NodeId> auxiliaries;
  const PabTable* pab = nullptr;
  Time now;
};

/// p(a->b) with a symmetry fallback: if the directed estimate is unknown,
/// the reverse direction is used (WiFi links are roughly symmetric at
/// beacon granularity — the trace methodology itself assumes this, §5.1).
double pab_or_symmetric(const PabTable& pab, NodeId from, NodeId to,
                        Time now, double fallback);

/// Contention probability c_i of auxiliary \p bi (Eq. 3).
double contention_probability(const RelayContext& ctx, NodeId bi);

/// The probability with which `ctx.self` should relay under \p variant.
/// Returns a value in [0, 1].
double relay_probability(const RelayContext& ctx, RelayVariant variant);

}  // namespace vifi::core
