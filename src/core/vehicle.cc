#include "core/vehicle.h"

#include <algorithm>

#include "obs/recorder.h"
#include "util/contracts.h"

namespace vifi::core {

VifiVehicle::VifiVehicle(sim::Simulator& sim, mac::Radio& radio,
                         const VifiConfig& config, Rng rng, VifiStats* stats)
    : sim_(sim),
      radio_(radio),
      config_(config),
      stats_(stats),
      pab_(radio.self()),
      beaconing_(sim, radio, rng.fork("beacons"), config.beacon_period),
      second_tick_(sim, Time::seconds(1.0), [this] { on_second_tick(); }),
      pump_tick_(sim, Time::millis(50), [this] { sender_.pump(); }),
      sender_(sim, radio, config, radio.self(), Direction::Upstream) {
  radio_.set_receiver([this](const mac::Frame& f) { on_frame(f); });
  radio_.set_idle_callback([this] { sender_.pump(); });
  beaconing_.set_payload_provider([this] { return beacon_payload(); });
  sender_.set_hop_dst_provider([this] { return anchor_; });
  sender_.set_piggyback_provider([this] { return recent_received_ids(); });
  sender_.set_designated_aux_provider(
      [this] { return static_cast<int>(auxiliaries().size()); });
  sender_.set_stats(stats);
}

void VifiVehicle::start() {
  beaconing_.start();
  second_tick_.start();
  pump_tick_.start();
}

void VifiVehicle::send_up(net::PacketRef packet) {
  VIFI_EXPECTS(packet != nullptr);
  VIFI_EXPECTS(packet->dir == Direction::Upstream);
  sender_.enqueue(std::move(packet));
}

void VifiVehicle::set_delivery_handler(
    std::function<void(const net::PacketRef&)> fn) {
  deliver_ = std::move(fn);
}

std::vector<NodeId> VifiVehicle::auxiliaries() const {
  // "We currently pick all BSes that the vehicle hears as auxiliaries"
  // (§4.3), minus the anchor. With max_auxiliaries set, only the k
  // best-heard BSes are designated (§3.4.1 / §5.5.2 extension).
  std::vector<NodeId> aux =
      pab_.recent_neighbors(sim_.now(), config_.neighbor_staleness);
  std::erase(aux, anchor_);
  if (config_.max_auxiliaries >= 0 &&
      aux.size() > static_cast<std::size_t>(config_.max_auxiliaries)) {
    const Time now = sim_.now();
    std::sort(aux.begin(), aux.end(), [&](NodeId a, NodeId b) {
      return pab_.incoming(a, now) > pab_.incoming(b, now);
    });
    aux.resize(static_cast<std::size_t>(config_.max_auxiliaries));
    std::sort(aux.begin(), aux.end());
  }
  return aux;
}

void VifiVehicle::on_second_tick() {
  pab_.tick_second(sim_.now());
  select_anchor();
  if (obs::TraceRecorder* rec = obs::current_recorder()) {
    const int aux_count = static_cast<int>(auxiliaries().size());
    if (aux_count != last_aux_count_) {
      rec->record(obs::EventKind::AuxSetChange, sim_.now(), self(), anchor_, 0,
                  0.0, 0.0, aux_count);
      last_aux_count_ = aux_count;
    }
  }
  sender_.pump();
}

void VifiVehicle::select_anchor() {
  // BRR anchor selection (§4.3) with hysteresis against flapping.
  const Time now = sim_.now();
  const auto candidates =
      pab_.recent_neighbors(now, config_.neighbor_staleness);
  NodeId best{};
  double best_score = 0.0;
  for (NodeId bs : candidates) {
    const double score = pab_.incoming(bs, now);
    if (score > best_score) {
      best_score = score;
      best = bs;
    }
  }
  obs::TraceRecorder* rec = obs::current_recorder();
  if (!best.valid()) {
    if (anchor_.valid()) {
      // Current anchor has gone stale with no replacement in sight.
      const bool anchor_stale =
          std::find(candidates.begin(), candidates.end(), anchor_) ==
          candidates.end();
      if (anchor_stale) {
        prev_anchor_ = anchor_;
        anchor_ = NodeId{};
        if (rec)
          rec->record(obs::EventKind::AnchorChange, now, self(), NodeId{},
                      anchor_switches_);
      }
    }
    return;
  }
  if (!anchor_.valid()) {
    prev_anchor_ = anchor_;
    anchor_ = best;
    ++anchor_switches_;
    if (rec)
      rec->record(obs::EventKind::AnchorChange, now, self(), anchor_,
                  anchor_switches_, best_score);
    return;
  }
  if (best == anchor_) return;
  const double current_score = pab_.incoming(anchor_, now);
  const bool anchor_stale =
      std::find(candidates.begin(), candidates.end(), anchor_) ==
      candidates.end();
  if (anchor_stale ||
      best_score > current_score * (1.0 + config_.anchor_hysteresis)) {
    prev_anchor_ = anchor_;
    anchor_ = best;
    ++anchor_switches_;
    if (rec)
      rec->record(obs::EventKind::AnchorChange, now, self(), anchor_,
                  anchor_switches_, best_score);
  }
}

mac::BeaconPayload VifiVehicle::beacon_payload() {
  mac::BeaconPayload p;
  p.from_vehicle = true;
  p.anchor = anchor_;
  p.prev_anchor = prev_anchor_;
  p.auxiliaries = auxiliaries();
  p.prob_reports = pab_.export_reports(sim_.now());
  return p;
}

std::vector<std::uint64_t> VifiVehicle::recent_received_ids() const {
  return {recent_rx_order_.begin(), recent_rx_order_.end()};
}

void VifiVehicle::send_ack(std::uint64_t packet_id) {
  mac::Frame ack;
  ack.type = mac::FrameType::Ack;
  ack.ack.packet_id = packet_id;
  radio_.send(std::move(ack));
}

void VifiVehicle::on_frame(const mac::Frame& f) {
  const Time now = sim_.now();
  switch (f.type) {
    case mac::FrameType::Beacon:
      // Another vehicle's beacon is not a BS: it must never enter the
      // neighbor set anchor/auxiliary selection draws from (§4.3). With a
      // fleet on one medium a vehicle would otherwise anchor on a passing
      // vehicle and starve. Its gossiped reports still fold.
      if (obs::TraceRecorder* rec = obs::current_recorder())
        rec->record(obs::EventKind::BeaconRx, now, self(), f.tx, 0, 0.0, 0.0,
                    f.beacon.from_vehicle ? 1 : 0);
      if (!f.beacon.from_vehicle) pab_.note_beacon(f.tx, now);
      pab_.fold_reports(f.beacon.prob_reports, now);
      break;
    case mac::FrameType::Ack:
      sender_.acknowledge(f.ack.packet_id, now, /*explicit_ack=*/true);
      break;
    case mac::FrameType::Data:
      on_data(f);
      break;
  }
}

void VifiVehicle::on_data(const mac::Frame& f) {
  if (f.data.hop_dst != self()) return;  // overheard someone else's data

  // Piggybacked reverse-path acknowledgments (§4.8).
  for (std::uint64_t id : f.data.piggyback_acked)
    sender_.acknowledge(id, sim_.now(), /*explicit_ack=*/false);

  const std::uint64_t id = f.data.packet_id;
  const bool is_new = received_.insert(id);

  if (!f.data.is_relay) {
    if (stats_) stats_->on_dst_rx_direct(id, f.data.attempt);
    // Direct reception: always acknowledge (covers lost-ACK retries).
    send_ack(id);
    acked_once_.insert(id);
  } else {
    if (stats_) stats_->on_relay_reached_dst(id, f.data.attempt, f.tx);
    // Relayed reception: acknowledge only if not acked before (§4.3 step 4).
    if (acked_once_.insert(id)) send_ack(id);
  }

  if (is_new) {
    recent_rx_order_.push_back(id);
    while (recent_rx_order_.size() >
           static_cast<std::size_t>(config_.piggyback_depth))
      recent_rx_order_.pop_front();
    if (stats_) stats_->on_app_delivered(Direction::Downstream);
    if (obs::TraceRecorder* rec = obs::current_recorder())
      rec->record(obs::EventKind::AppDeliver, sim_.now(), self(), f.tx, id,
                  0.0, 0.0, 1);
    if (f.packet)
      deliver_up_the_stack(f.data.origin, f.data.link_seq, f.packet);
  }
}

void VifiVehicle::deliver_up_the_stack(NodeId origin, std::uint64_t link_seq,
                                       const net::PacketRef& packet) {
  if (!deliver_) return;
  if (!config_.inorder_delivery || link_seq == 0) {
    deliver_(packet);
    return;
  }
  auto it = sequencers_.find(origin);
  if (it == sequencers_.end()) {
    it = sequencers_
             .emplace(origin, std::make_unique<Sequencer>(
                                  sim_, config_.reorder_hold,
                                  [this](const net::PacketRef& p) {
                                    deliver_(p);
                                  }))
             .first;
  }
  it->second->push(link_seq, packet);
}

}  // namespace vifi::core
