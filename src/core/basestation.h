#pragma once

/// \file basestation.h
/// A ViFi basestation. Its behaviour towards a vehicle depends on the role
/// the *vehicle's* beacons assign to it (§4.3):
///
///   anchor    — terminates the wireless hop: receives upstream data
///               (direct or relayed over the backplane), acknowledges,
///               forwards to the wired gateway; sources downstream data
///               received from the gateway; keeps a salvage buffer and
///               answers salvage pulls (§4.5);
///   auxiliary — opportunistically overhears data frames and, when no ACK
///               follows within a short window, probabilistically relays:
///               upstream over the backplane, downstream over the air
///               (§4.3 step 3, §4.4);
///   neither   — just beacons and maintains pab estimates.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/config.h"
#include "core/id_set.h"
#include "core/pab.h"
#include "core/sender.h"
#include "core/sequencer.h"
#include "core/stats.h"
#include "mac/beaconing.h"
#include "mac/radio.h"
#include "net/backplane.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace vifi::obs {
class Histogram;
}

namespace vifi::core {

class VifiBasestation {
 public:
  VifiBasestation(sim::Simulator& sim, mac::Radio& radio,
                  net::Backplane& backplane, NodeId wired_gateway,
                  const VifiConfig& config, Rng rng, VifiStats* stats);

  VifiBasestation(const VifiBasestation&) = delete;
  VifiBasestation& operator=(const VifiBasestation&) = delete;

  NodeId self() const { return radio_.self(); }

  void start();

  /// True if this BS currently believes it anchors \p vehicle.
  bool is_anchor_for(NodeId vehicle) const;

  const PabTable& pab() const { return pab_; }
  /// The downstream sender serving \p vehicle (single-vehicle callers can
  /// pass the only vehicle id they know).
  VifiSender& sender(NodeId vehicle);

  std::uint64_t relays_sent() const { return relays_sent_; }
  std::uint64_t packets_salvaged_out() const { return salvaged_out_; }

  // --- CoordTier hooks (src/coord/). All optional std::function seams so
  // core carries no dependency on the coordination layer. ------------------

  /// Called after every decoded vehicle beacon with the designation it
  /// carried (anchor/prev_anchor may be invalid).
  void set_beacon_observer(
      std::function<void(NodeId vehicle, NodeId anchor, NodeId prev_anchor)>
          observer) {
    beacon_observer_ = std::move(observer);
  }

  /// Consulted before each auxiliary relay decision; returning true skips
  /// the relay for \p vehicle's packet (the coordination tier suppresses
  /// redundant relaying under a confident prediction).
  void set_relay_filter(std::function<bool(NodeId vehicle)> filter) {
    relay_filter_ = std::move(filter);
  }

  /// Warm state transfer ahead of a predicted handoff: creates the
  /// downstream sender serving \p vehicle now (instead of lazily on the
  /// first post-handoff packet) and — when salvage is on — pulls the
  /// current anchor's unacknowledged packets before the beacon gap.
  void prestage(NodeId vehicle, NodeId current_anchor);

 private:
  /// Vehicle-side state learned from its beacons.
  struct VehicleState {
    NodeId anchor{};
    NodeId prev_anchor{};
    std::vector<NodeId> auxiliaries;
    Time last_beacon;
    bool registered_as_anchor = false;
  };

  /// An overheard, not-yet-decided data frame (auxiliary duty).
  struct OverheardEntry {
    mac::Frame frame;
    Time heard_at;
    NodeId vehicle;  ///< The vehicle this packet concerns.
  };

  /// Downstream packet kept for acknowledgment tracking and salvaging.
  struct SalvageEntry {
    net::PacketRef packet;
    Time arrived;  ///< When it came in from the Internet (or via salvage).
  };

  void on_frame(const mac::Frame& f);
  void on_vehicle_beacon(const mac::Frame& f);
  void on_data(const mac::Frame& f);
  void on_wire(const net::WireMessage& msg);
  void on_second_tick();
  void on_relay_tick();
  void accept_upstream(const net::PacketRef& packet, std::uint64_t id,
                       std::uint64_t link_seq, int attempt, bool relayed,
                       NodeId relayer);
  void forward_to_gateway(const net::PacketRef& packet);
  void enqueue_downstream(const net::PacketRef& packet);
  void become_anchor(NodeId vehicle, NodeId prev_anchor);
  void send_ack(std::uint64_t packet_id);
  std::vector<std::uint64_t> recent_received_ids() const;
  mac::BeaconPayload beacon_payload();
  net::Direction frame_direction(const mac::Frame& f, NodeId vehicle) const;

  /// Lazily creates the downstream sender serving \p vehicle.
  VifiSender& sender_for(NodeId vehicle);
  void pump_all();

  sim::Simulator& sim_;
  mac::Radio& radio_;
  net::Backplane& backplane_;
  NodeId gateway_;
  VifiConfig config_;
  VifiStats* stats_;
  Rng rng_;
  PabTable pab_;
  mac::Beaconing beaconing_;
  sim::PeriodicTimer second_tick_;
  sim::PeriodicTimer relay_tick_;
  sim::PeriodicTimer pump_tick_;
  /// Downstream data paths (anchor duty), one per served vehicle — VanLAN
  /// itself ran two vans (§2.1).
  std::map<NodeId, std::unique_ptr<VifiSender>> senders_;

  std::map<NodeId, VehicleState> vehicles_;

  std::vector<OverheardEntry> overheard_;
  RecentIdSet relay_considered_;
  RecentIdSet acks_overheard_;
  RecentIdSet received_up_;
  RecentIdSet acked_once_;
  std::deque<std::uint64_t> recent_rx_order_;

  std::map<std::uint64_t, SalvageEntry> salvage_buffer_;
  std::uint64_t relays_sent_ = 0;
  std::uint64_t salvaged_out_ = 0;
  /// Live relay-probability histogram, registered at construction when a
  /// MetricsRegistry is installed on this thread (nullptr otherwise).
  obs::Histogram* relay_prob_hist_ = nullptr;
  /// In-order forwarding buffers per vehicle (§4.7 extension).
  std::map<NodeId, std::unique_ptr<Sequencer>> sequencers_;
  /// CoordTier seams (see the setters above); empty when no manager rides.
  std::function<void(NodeId, NodeId, NodeId)> beacon_observer_;
  std::function<bool(NodeId)> relay_filter_;
};

}  // namespace vifi::core
