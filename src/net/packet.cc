#include "net/packet.h"

#include "util/contracts.h"

namespace vifi::net {

PacketRef PacketFactory::make(Direction dir, NodeId src, NodeId dst,
                              int bytes, Time created, int flow,
                              std::uint64_t app_seq, AppPayload app_data) {
  VIFI_EXPECTS(bytes >= 0);
  VIFI_EXPECTS(src.valid() && dst.valid());
  const std::uint32_t slot = pool_.allocate_slot();
  PacketPool::Slot& s = pool_.core_->slot(slot);
  Packet& p = s.packet;
  p.id = next_id_++;
  p.dir = dir;
  p.src = src;
  p.dst = dst;
  p.bytes = bytes;
  p.created = created;
  p.flow = flow;
  p.app_seq = app_seq;
  p.app_data = std::move(app_data);
  return PacketRef(pool_.core_, slot, s.gen);
}

}  // namespace vifi::net
