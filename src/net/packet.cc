#include "net/packet.h"

#include "util/contracts.h"

namespace vifi::net {

PacketPtr PacketFactory::make(Direction dir, NodeId src, NodeId dst,
                              int bytes, Time created, int flow,
                              std::uint64_t app_seq, std::any app_data) {
  VIFI_EXPECTS(bytes >= 0);
  VIFI_EXPECTS(src.valid() && dst.valid());
  auto p = std::make_shared<Packet>();
  p->id = next_id_++;
  p->dir = dir;
  p->src = src;
  p->dst = dst;
  p->bytes = bytes;
  p->created = created;
  p->flow = flow;
  p->app_seq = app_seq;
  p->app_data = std::move(app_data);
  return p;
}

}  // namespace vifi::net
