#include "net/backplane.h"

#include <algorithm>

#include "util/contracts.h"

namespace vifi::net {

void Backplane::attach(NodeId node, Handler handler) {
  VIFI_EXPECTS(node.valid());
  VIFI_EXPECTS(handler != nullptr);
  handlers_[node] = std::move(handler);
}

Backplane::LinkState& Backplane::link(NodeId a, NodeId b) {
  // Links are directional in state (queueing) but share declared params via
  // canonical declaration order; we store per ordered pair and copy params
  // from the canonical pair on first use.
  const sim::LinkKey key{a, b};
  auto it = links_.find(key);
  if (it == links_.end()) {
    LinkState st;
    st.params = default_;
    // Inherit any canonical (unordered) declaration.
    const sim::LinkKey canon = b < a ? sim::LinkKey{b, a} : key;
    if (const auto cit = links_.find(canon); cit != links_.end())
      st = cit->second;
    st.next_free = Time::zero();
    it = links_.emplace(key, st).first;
  }
  return it->second;
}

void Backplane::set_link(NodeId a, NodeId b, LinkParams params) {
  link(a, b).params = params;
  link(b, a).params = params;
}

void Backplane::set_unreachable(NodeId a, NodeId b) {
  link(a, b).unreachable = true;
  link(b, a).unreachable = true;
}

void Backplane::send(WireMessage msg) {
  VIFI_EXPECTS(msg.from.valid() && msg.to.valid());
  VIFI_EXPECTS(msg.bytes > 0);
  ++sent_;
  bytes_sent_ += static_cast<std::uint64_t>(msg.bytes);
  LinkState& l = link(msg.from, msg.to);
  if (l.unreachable) return;
  if (rng_.bernoulli(l.params.loss)) return;

  const Time now = sim_.now();
  const Time start = std::max(now, l.next_free);
  const Time serialization =
      Time::seconds(static_cast<double>(msg.bytes) * 8.0 / l.params.rate_bps);
  l.next_free = start + serialization;
  const Time deliver_at = l.next_free + l.params.latency;

  sim_.schedule_at(deliver_at, [this, msg = std::move(msg)] {
    const auto it = handlers_.find(msg.to);
    if (it == handlers_.end()) return;  // receiver not attached: dropped
    ++delivered_;
    it->second(msg);
  });
}

}  // namespace vifi::net
