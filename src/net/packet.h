#pragma once

/// \file packet.h
/// Application-layer datagrams carried end-to-end between the vehicle and a
/// wired correspondent host, in both directions. ViFi frames wrap these on
/// the wireless hop; the backplane carries them on wires.
///
/// Packets are slab-allocated from a per-run PacketPool and handed around
/// as intrusively refcounted `PacketRef` handles (index + generation into
/// the pool) instead of `std::shared_ptr<const Packet>`: allocation is a
/// free-list pop, release returns the slot for reuse, and a generation
/// counter catches any dangling handle that survives a slot's reuse.

#include <cstdint>
#include <memory>
#include <vector>

#include "net/payload.h"
#include "sim/ids.h"
#include "util/contracts.h"
#include "util/time.h"

namespace vifi::net {

using sim::NodeId;

/// Direction of travel relative to the vehicle (§4.3: the protocol is
/// symmetric, but anchors and vehicles play opposite roles per direction).
enum class Direction { Upstream, Downstream };

inline const char* to_string(Direction d) {
  return d == Direction::Upstream ? "upstream" : "downstream";
}

/// One end-to-end datagram. Identified by a globally unique id — ViFi embeds
/// its own identifiers so retransmissions and late acknowledgments are never
/// confused across packets (§4.7).
struct Packet {
  std::uint64_t id = 0;
  Direction dir = Direction::Upstream;
  NodeId src;  ///< End-to-end source (vehicle or wired host).
  NodeId dst;  ///< End-to-end destination.
  int bytes = 0;
  Time created;      ///< When the application emitted it.
  int flow = 0;      ///< Application flow demultiplexer.
  std::uint64_t app_seq = 0;  ///< Application sequence number within flow.
  AppPayload app_data;        ///< Typed app payload (e.g. a TCP segment).
};

class PacketRef;
class PacketView;

/// A slab allocator of Packet slots with an embedded free list. One pool
/// per simulation run (it is owned by the run's PacketFactory); slots are
/// recycled as handles release them and all slabs are freed together when
/// the pool and the last outstanding handle are gone. Not thread-safe —
/// a run is single-threaded by construction, and sweep shards never share
/// packets.
class PacketPool {
 public:
  PacketPool() : core_(new Core) {}
  ~PacketPool() {
    core_->pool_alive = false;
    Core::maybe_dispose(core_);
  }
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  /// Live (refcounted) packets currently held.
  std::size_t live() const { return core_->live; }
  /// Slots ever allocated (high-water mark; slabs are never returned
  /// individually).
  std::size_t capacity() const { return core_->next_unused; }

 private:
  friend class PacketRef;
  friend class PacketView;
  friend class PacketFactory;

  static constexpr std::uint32_t kSlabBits = 10;
  static constexpr std::uint32_t kSlabSize = 1u << kSlabBits;
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  struct Slot {
    Packet packet;
    std::uint32_t refcount = 0;
    std::uint32_t gen = 1;  ///< Bumped on free; stale handles mismatch.
    std::uint32_t next_free = kNoSlot;
  };

  /// Heap-allocated so outstanding handles (owning refs *and* non-owning
  /// views) keep the slabs alive even if the pool object itself is
  /// destroyed first. Views pin only the Core's memory, never a packet.
  struct Core {
    std::vector<std::unique_ptr<Slot[]>> slabs;
    std::uint32_t next_unused = 0;
    std::uint32_t free_head = kNoSlot;
    std::size_t live = 0;
    std::size_t views = 0;
    bool pool_alive = true;

    Slot& slot(std::uint32_t i) {
      return slabs[i >> kSlabBits][i & (kSlabSize - 1)];
    }
    static void maybe_dispose(Core* core) {
      if (!core->pool_alive && core->live == 0 && core->views == 0)
        delete core;
    }
  };

  /// Pops a slot off the free list (or carves a new one) with refcount 1.
  std::uint32_t allocate_slot() {
    Core& c = *core_;
    std::uint32_t idx;
    if (c.free_head != kNoSlot) {
      idx = c.free_head;
      c.free_head = c.slot(idx).next_free;
    } else {
      if (c.next_unused == c.slabs.size() * kSlabSize)
        c.slabs.push_back(std::make_unique<Slot[]>(kSlabSize));
      idx = c.next_unused++;
    }
    Slot& s = c.slot(idx);
    s.refcount = 1;
    ++c.live;
    return idx;
  }

  Core* core_;
};

/// A refcounted handle to an immutable pooled Packet. Copy = refcount
/// bump; the last release recycles the slot. Dereferencing validates the
/// slot's generation, so a handle that somehow outlives its packet (a
/// reuse-after-free bug) trips a contract violation instead of silently
/// reading another packet's bytes.
class PacketRef {
 public:
  constexpr PacketRef() = default;
  constexpr PacketRef(std::nullptr_t) {}  // NOLINT: mirrors shared_ptr

  PacketRef(const PacketRef& o) noexcept
      : core_(o.core_), slot_(o.slot_), gen_(o.gen_) {
    if (core_ != nullptr) ++core_->slot(slot_).refcount;
  }
  PacketRef(PacketRef&& o) noexcept
      : core_(o.core_), slot_(o.slot_), gen_(o.gen_) {
    o.core_ = nullptr;
  }
  PacketRef& operator=(const PacketRef& o) noexcept {
    PacketRef tmp(o);
    swap(tmp);
    return *this;
  }
  PacketRef& operator=(PacketRef&& o) noexcept {
    if (this != &o) {
      release();
      core_ = o.core_;
      slot_ = o.slot_;
      gen_ = o.gen_;
      o.core_ = nullptr;
    }
    return *this;
  }
  ~PacketRef() { release(); }

  void swap(PacketRef& o) noexcept {
    std::swap(core_, o.core_);
    std::swap(slot_, o.slot_);
    std::swap(gen_, o.gen_);
  }

  const Packet* get() const {
    if (core_ == nullptr) return nullptr;
    return &checked_slot().packet;
  }
  const Packet& operator*() const { return checked_slot().packet; }
  const Packet* operator->() const { return &checked_slot().packet; }
  explicit operator bool() const { return core_ != nullptr; }

  /// Handles compare by identity (same pooled packet), like shared_ptr.
  friend bool operator==(const PacketRef& a, const PacketRef& b) {
    return a.core_ == b.core_ && (a.core_ == nullptr || a.slot_ == b.slot_);
  }
  friend bool operator==(const PacketRef& r, std::nullptr_t) {
    return r.core_ == nullptr;
  }

 private:
  friend class PacketFactory;
  friend class PacketView;

  PacketRef(PacketPool::Core* core, std::uint32_t slot,
            std::uint32_t gen) noexcept
      : core_(core), slot_(slot), gen_(gen) {}

  PacketPool::Slot& checked_slot() const {
    VIFI_EXPECTS(core_ != nullptr);
    PacketPool::Slot& s = core_->slot(slot_);
    // Generation mismatch = this handle outlived its packet and the slot
    // was recycled. Refcounting makes that unreachable through the public
    // API; the check is the pool's reuse-after-free tripwire.
    VIFI_EXPECTS(s.gen == gen_);
    return s;
  }

  void release() noexcept {
    if (core_ == nullptr) return;
    PacketPool::Slot& s = core_->slot(slot_);
    if (--s.refcount == 0) {
      ++s.gen;                // invalidate any PacketView observers
      s.packet.app_data = {};  // payload is dead; keep slots cheap
      s.next_free = core_->free_head;
      core_->free_head = slot_;
      --core_->live;
      PacketPool::Core::maybe_dispose(core_);
    }
    core_ = nullptr;
  }

  PacketPool::Core* core_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

/// Compatibility alias for code written against the shared_ptr era.
using PacketPtr = PacketRef;

/// A non-owning observer of a pooled packet. Does not keep the *packet*
/// alive; `try_get()` returns nullptr once the packet has been released
/// (the slot's generation moved on). It does pin the pool's slab memory
/// (not any packet) so observation stays safe even after the factory and
/// every owning ref are gone. Useful for caches that must never extend
/// packet lifetime, and for testing the pool's reuse protection.
class PacketView {
 public:
  PacketView() = default;
  explicit PacketView(const PacketRef& ref)
      : core_(ref.core_), slot_(ref.slot_), gen_(ref.gen_) {
    if (core_ != nullptr) ++core_->views;
  }
  PacketView(const PacketView& o) noexcept
      : core_(o.core_), slot_(o.slot_), gen_(o.gen_) {
    if (core_ != nullptr) ++core_->views;
  }
  PacketView(PacketView&& o) noexcept
      : core_(o.core_), slot_(o.slot_), gen_(o.gen_) {
    o.core_ = nullptr;
  }
  PacketView& operator=(PacketView o) noexcept {  // unified copy/move
    std::swap(core_, o.core_);
    std::swap(slot_, o.slot_);
    std::swap(gen_, o.gen_);
    return *this;
  }
  ~PacketView() {
    if (core_ != nullptr) {
      --core_->views;
      PacketPool::Core::maybe_dispose(core_);
    }
  }

  /// True while the observed packet is still live.
  bool alive() const {
    return core_ != nullptr && core_->slot(slot_).gen == gen_;
  }
  /// The packet, or nullptr if it has been released (slot reused or free).
  const Packet* try_get() const {
    if (!alive()) return nullptr;
    return &core_->slot(slot_).packet;
  }

 private:
  PacketPool::Core* core_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

/// Allocates packets with unique ids out of its own pool. One factory per
/// simulation run; every packet it made is recycled by the time the run's
/// handles are gone, and the slabs die with the factory.
class PacketFactory {
 public:
  PacketRef make(Direction dir, NodeId src, NodeId dst, int bytes,
                 Time created, int flow = 0, std::uint64_t app_seq = 0,
                 AppPayload app_data = {});

  std::uint64_t packets_created() const { return next_id_ - 1; }
  const PacketPool& pool() const { return pool_; }

 private:
  PacketPool pool_;
  std::uint64_t next_id_ = 1;
};

}  // namespace vifi::net
