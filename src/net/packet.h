#pragma once

/// \file packet.h
/// Application-layer datagrams carried end-to-end between the vehicle and a
/// wired correspondent host, in both directions. ViFi frames wrap these on
/// the wireless hop; the backplane carries them on wires.

#include <any>
#include <cstdint>
#include <memory>

#include "sim/ids.h"
#include "util/time.h"

namespace vifi::net {

using sim::NodeId;

/// Direction of travel relative to the vehicle (§4.3: the protocol is
/// symmetric, but anchors and vehicles play opposite roles per direction).
enum class Direction { Upstream, Downstream };

inline const char* to_string(Direction d) {
  return d == Direction::Upstream ? "upstream" : "downstream";
}

/// One end-to-end datagram. Identified by a globally unique id — ViFi embeds
/// its own identifiers so retransmissions and late acknowledgments are never
/// confused across packets (§4.7).
struct Packet {
  std::uint64_t id = 0;
  Direction dir = Direction::Upstream;
  NodeId src;  ///< End-to-end source (vehicle or wired host).
  NodeId dst;  ///< End-to-end destination.
  int bytes = 0;
  Time created;      ///< When the application emitted it.
  int flow = 0;      ///< Application flow demultiplexer.
  std::uint64_t app_seq = 0;  ///< Application sequence number within flow.
  std::any app_data;          ///< Optional app payload (e.g. a TCP segment).
};

using PacketPtr = std::shared_ptr<const Packet>;

/// Allocates packets with unique ids. One factory per simulation run.
class PacketFactory {
 public:
  PacketPtr make(Direction dir, NodeId src, NodeId dst, int bytes,
                 Time created, int flow = 0, std::uint64_t app_seq = 0,
                 std::any app_data = {});

  std::uint64_t packets_created() const { return next_id_ - 1; }

 private:
  std::uint64_t next_id_ = 1;
};

}  // namespace vifi::net
