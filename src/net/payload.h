#pragma once

/// \file payload.h
/// Typed application payloads carried inside a Packet. Replaces the old
/// `std::any app_data`: a closed variant keeps the payload inline in the
/// packet slot (no per-packet heap allocation) and makes every payload
/// kind visible at the net layer.

#include <cstdint>
#include <variant>

namespace vifi::net {

/// A TCP segment riding through the transport (apps/tcp.h aliases this as
/// `TcpSegment`). Defined at the net layer so the packet pool can store it
/// by value without depending on apps/.
struct TcpSegmentData {
  enum class Kind : std::uint8_t { Syn, SynAck, Data, Ack };
  Kind kind = Kind::Data;
  std::int64_t seq = 0;  ///< First payload byte (Data) — or ISN exchange.
  int len = 0;           ///< Payload bytes (Data only).
  std::int64_t ack = 0;  ///< Cumulative ack (Ack / SynAck).
};

/// The closed set of application payloads. `std::monostate` = no payload
/// (probe/VoIP/CBR packets carry only sizes). Extend the variant when a new
/// workload needs typed data end-to-end.
using AppPayload = std::variant<std::monostate, TcpSegmentData>;

}  // namespace vifi::net
