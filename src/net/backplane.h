#pragma once

/// \file backplane.h
/// The wired inter-BS communication plane. The paper's target environment
/// assumes it is *bandwidth-limited* — thin broadband or a wireless mesh
/// (§4.1) — which is why ViFi's coordination must stay lightweight. We model
/// point-to-point links with fixed latency, serialisation at a configurable
/// rate, FIFO queueing, and optional loss (the DieselNet simulations draw
/// inter-BS loss ratios uniformly at random, §5.1).

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "net/packet.h"
#include "sim/ids.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/time.h"

namespace vifi::net {

/// A message on the wired plane: either a forwarded data packet or a small
/// control message (salvage requests/replies).
struct WireMessage {
  enum class Kind {
    Data,            ///< A forwarded application packet.
    RelayedData,     ///< An upstream packet relayed by an auxiliary (§4.3).
    SalvageRequest,  ///< New anchor asks the old one for stranded packets.
    SalvageReply,    ///< One salvaged packet (§4.5).
    AnchorRegister,  ///< BS tells the wired gateway it now anchors a vehicle.
  };
  Kind kind = Kind::Data;
  NodeId from;
  NodeId to;
  PacketRef packet;  ///< For Data / RelayedData / SalvageReply.
  NodeId about;      ///< Vehicle in question (salvage/register messages).
  int attempt = 1;   ///< RelayedData: the source attempt that was overheard.
  std::uint64_t link_seq = 0;  ///< RelayedData: stream sequence (§4.7).
  int bytes = 0;     ///< On-wire size.
};

/// Point-to-point wired links between BSes and to the wired gateway.
class Backplane {
 public:
  struct LinkParams {
    double rate_bps = 1.5e6;        ///< Thin broadband uplink.
    Time latency = Time::millis(8); ///< One-way propagation + switching.
    double loss = 0.0;              ///< Per-message drop probability.
  };

  using Handler = std::function<void(const WireMessage&)>;

  Backplane(sim::Simulator& sim, Rng rng) : sim_(sim), rng_(rng) {}

  /// Registers the receive callback of a node attached to the plane.
  void attach(NodeId node, Handler handler);

  /// Declares a link with explicit parameters (both directions share them
  /// unless declared separately). Undeclared links use defaults.
  void set_link(NodeId a, NodeId b, LinkParams params);
  void set_default_link(LinkParams params) { default_ = params; }

  /// Marks a pair as having no wired path (DieselNet: BS pairs never
  /// simultaneously in vehicle range are unreachable, §5.1).
  void set_unreachable(NodeId a, NodeId b);

  /// Queues \p msg from msg.from to msg.to. Delivery happens after queueing
  /// + serialisation + latency, or never (loss / unreachable).
  void send(WireMessage msg);

  std::uint64_t messages_sent() const { return sent_; }
  std::uint64_t messages_delivered() const { return delivered_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  struct LinkState {
    LinkParams params;
    Time next_free;  ///< When the serialiser is available again.
    bool unreachable = false;
  };

  LinkState& link(NodeId a, NodeId b);

  sim::Simulator& sim_;
  Rng rng_;
  LinkParams default_{};
  std::unordered_map<sim::LinkKey, LinkState> links_;
  std::unordered_map<NodeId, Handler> handlers_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace vifi::net
