#include "mac/medium.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/metrics.h"
#include "obs/recorder.h"
#include "util/contracts.h"

namespace vifi::mac {

Medium::Medium(sim::Simulator& sim, channel::LossModel& loss,
               MediumParams params)
    : sim_(sim), loss_(loss), params_(std::move(params)) {
  VIFI_EXPECTS(params_.bitrate_bps > 0.0);
  VIFI_EXPECTS(params_.phy_overhead_bytes >= 0);
  if (params_.culling) {
    const SpatialCulling& c = *params_.culling;
    VIFI_EXPECTS(c.position != nullptr);
    VIFI_EXPECTS(c.max_audible_m > 0.0);
    VIFI_EXPECTS(c.margin_m >= 0.0);
    VIFI_EXPECTS(c.cell_m >= 0.0);
    VIFI_EXPECTS(c.refresh > Time::zero());
    const double range = c.max_audible_m + 2.0 * c.margin_m;
    cull_cell_size_ = c.cell_m > 0.0 ? c.cell_m : range / 8.0;
    cull_range_sq_ = range * range;
  }
}

void Medium::attach(NodeId node, FrameSink* sink) {
  VIFI_EXPECTS(node.valid());
  VIFI_EXPECTS(sink != nullptr);
  VIFI_EXPECTS(!sinks_.contains(node));
  sinks_[node] = sink;
  nodes_.push_back(node);
  ledger_[node];  // materialise the row so snapshots list every node
  if (params_.culling) {
    node_index_[node] = nodes_.size() - 1;
    cull_cell_.emplace_back(0, 0);
    cull_channel_.push_back(params_.culling->channel_of
                                ? params_.culling->channel_of(node)
                                : 0);
    cull_fresh_ = false;  // the new node needs a cell before the next frame
  }
}

void Medium::refresh_cells(Time now) {
  const SpatialCulling& c = *params_.culling;
  if (cull_fresh_ && now - cull_refreshed_ < c.refresh) return;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const mobility::Vec2 p = c.position(nodes_[i], now);
    cull_cell_[i] = {static_cast<std::int32_t>(std::floor(p.x / cull_cell_size_)),
                     static_cast<std::int32_t>(std::floor(p.y / cull_cell_size_))};
  }
  cull_refreshed_ = now;
  cull_fresh_ = true;
}

bool Medium::culled(std::size_t tx_idx, std::size_t rx_idx) const {
  if (cull_channel_[tx_idx] != cull_channel_[rx_idx]) return true;
  // Two points in cells (di, dj) apart are at least
  // hypot(max(0,|di|-1), max(0,|dj|-1)) * cell apart. Cull only when that
  // floor exceeds max_audible + 2*margin: the pair was provably out of
  // audible range at refresh time, and the margin absorbs what both
  // endpoints can have moved since.
  const auto [ax, ay] = cull_cell_[tx_idx];
  const auto [bx, by] = cull_cell_[rx_idx];
  const double dx =
      std::max(0, std::abs(ax - bx) - 1) * cull_cell_size_;
  const double dy =
      std::max(0, std::abs(ay - by) - 1) * cull_cell_size_;
  return dx * dx + dy * dy > cull_range_sq_;
}

void Medium::set_role(NodeId node, NodeRole role) {
  const auto it = ledger_.find(node);
  VIFI_EXPECTS(it != ledger_.end());
  it->second.role = role;
}

void Medium::note_deferral(NodeId node, Time wait) {
  VIFI_EXPECTS(!wait.is_negative());
  const auto it = ledger_.find(node);
  VIFI_EXPECTS(it != ledger_.end());
  it->second.deferral_wait += wait;
}

Time Medium::airtime(int mac_bytes) const {
  VIFI_EXPECTS(mac_bytes >= 0);
  const double bits =
      static_cast<double>(mac_bytes + params_.phy_overhead_bytes) * 8.0;
  return Time::seconds(bits / params_.bitrate_bps);
}

Time Medium::transmit(Frame frame) {
  VIFI_EXPECTS(frame.tx.valid());
  VIFI_EXPECTS(sinks_.contains(frame.tx));
  const Time now = sim_.now();
  prune(now);

  ActiveTx tx;
  tx.seq = next_seq_++;
  tx.tx = frame.tx;
  tx.start = now;
  tx.end = now + airtime(frame.bytes_on_air());
  tx.frame = std::move(frame);

  obs::TraceRecorder* rec = obs::current_recorder();
  if (rec)
    rec->record(obs::EventKind::FrameTx, now, tx.tx, tx.frame.data.hop_dst,
                tx.frame.data.packet_id, (tx.end - tx.start).to_seconds(),
                static_cast<double>(tx.frame.data.attempt),
                static_cast<std::int32_t>(tx.frame.type));

  // Sample decode + audibility per receiver at start-of-frame. Channel
  // coherence over one frame (< 5 ms) is reasonable at vehicular speeds.
  // With spatial culling enabled, provably sub-audibility receivers skip
  // the sampling entirely; the survivors keep attach order, so the shared
  // draw sequence stays a deterministic function of positions + schedule.
  const bool cull = params_.culling.has_value();
  std::size_t tx_idx = 0;
  if (cull) {
    refresh_cells(now);
    tx_idx = node_index_.at(tx.tx);
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const NodeId rx = nodes_[i];
    if (rx == tx.tx) continue;
    if (cull && culled(tx_idx, i)) continue;
    const double p = loss_.reception_prob(tx.tx, rx, now);
    if (p >= params_.audibility_threshold) tx.audible_at.push_back(rx);
    NodeAirtime& rx_row = ledger_.at(rx);
    ++rx_row.decode_attempts;
    ++decode_attempts_;
    // Decode sampling also advances burst state for sub-threshold links,
    // keeping the stochastic processes in sync with wall-clock time.
    if (loss_.sample_delivery(tx.tx, rx, now)) {
      tx.decoders.push_back(rx);
      if (rec)
        rec->record(obs::EventKind::FrameDecode, now, rx, tx.tx,
                    tx.frame.data.packet_id, p, 0.0,
                    static_cast<std::int32_t>(tx.frame.type));
    } else {
      ++rx_row.channel_losses;
      ++channel_losses_;
    }
  }

  ++transmissions_;
  const Time held = tx.end - tx.start;
  busy_airtime_ += held;
  NodeAirtime& tx_row = ledger_.at(tx.tx);
  ++tx_row.frames_tx;
  tx_row.tx_airtime += held;
  const std::uint64_t seq = tx.seq;
  const Time end = tx.end;
  active_.push_back(std::move(tx));
  sim_.schedule_at(end, [this, seq] { finish(seq); });
  return end - now;
}

void Medium::finish(std::uint64_t seq) {
  const auto it = std::find_if(active_.begin(), active_.end(),
                               [seq](const ActiveTx& t) { return t.seq == seq; });
  VIFI_EXPECTS(it != active_.end());
  // Frame sinks may synchronously transmit (e.g. an ACK), which appends to
  // active_ — a deque, so this record stays put — and tries to prune, which
  // is deferred while delivering_. The record therefore stays addressable
  // (no defensive deep copy of the frame), and transmissions that start
  // during this one still see it for their own collision checks.
  const ActiveTx& tx = *it;

  // Resolve collisions against the snapshot of overlapping transmissions
  // before dispatching anything.
  obs::TraceRecorder* rec = obs::current_recorder();
  deliver_scratch_.clear();
  for (NodeId rx : tx.decoders) {
    bool collided = false;
    if (params_.model_collisions) {
      for (const ActiveTx& other : active_) {
        if (other.seq == tx.seq) continue;
        const bool overlaps =
            other.start < tx.end && tx.start < other.end;
        if (!overlaps) continue;
        if (std::find(other.audible_at.begin(), other.audible_at.end(), rx) !=
                other.audible_at.end() ||
            other.tx == rx) {
          collided = true;
          break;
        }
      }
    }
    const Time held = tx.end - tx.start;
    if (collided) {
      ++collisions_;
      ++ledger_.at(tx.tx).frames_collided;
      NodeAirtime& rx_row = ledger_.at(rx);
      ++rx_row.collisions_seen;
      rx_row.collided_airtime += held;
      if (rec)
        rec->record(obs::EventKind::FrameCollide, sim_.now(), rx, tx.tx,
                    tx.frame.data.packet_id, 0.0, 0.0,
                    static_cast<std::int32_t>(tx.frame.type));
    } else {
      ++ledger_.at(tx.tx).frames_delivered;
      NodeAirtime& rx_row = ledger_.at(rx);
      ++rx_row.frames_received;
      rx_row.rx_airtime += held;
      deliver_scratch_.push_back(rx);
    }
  }
  delivering_ = true;
  for (NodeId rx : deliver_scratch_) {
    ++deliveries_;
    if (rec)
      rec->record(obs::EventKind::FrameDeliver, sim_.now(), rx, tx.tx,
                  tx.frame.data.packet_id, 0.0, 0.0,
                  static_cast<std::int32_t>(tx.frame.type));
    sinks_.at(rx)->on_frame(tx.frame);
  }
  delivering_ = false;
}

void Medium::prune(Time now) {
  // A finished transmission can only matter to transmissions overlapping
  // it; anything ended more than a max-frame-time ago is irrelevant.
  // Deferred while finish() is dispatching out of active_.
  if (delivering_) return;
  const Time keep_after = now - airtime(2000);
  std::erase_if(active_,
                [keep_after](const ActiveTx& t) { return t.end < keep_after; });
}

bool Medium::busy_for(NodeId listener, Time now) {
  return busy_until(listener, now) > now;
}

Time Medium::busy_until(NodeId listener, Time now) {
  // Prune here too: a node that only listens (never transmits) must not
  // scan — or, worse, depend on — records whose eviction would otherwise
  // wait for someone else's transmit(). The end-time check below keeps
  // the answer right for records inside the keep window regardless.
  // Clamped to the simulation clock: a query about a future instant must
  // not evict a still-in-flight record out from under its finish() event.
  prune(std::min(now, sim_.now()));
  Time until = now;
  for (const ActiveTx& t : active_) {
    if (t.end <= now) continue;
    if (t.tx == listener) {
      until = std::max(until, t.end);
      continue;
    }
    if (std::find(t.audible_at.begin(), t.audible_at.end(), listener) !=
        t.audible_at.end())
      until = std::max(until, t.end);
  }
  return until;
}

std::uint64_t Medium::transmissions_from(NodeId node) const {
  const auto it = ledger_.find(node);
  return it == ledger_.end() ? 0 : it->second.frames_tx;
}

MediumStats Medium::snapshot() const {
  MediumStats s;
  s.busy_airtime = busy_airtime_;
  s.transmissions = transmissions_;
  s.deliveries = deliveries_;
  s.collisions = collisions_;
  s.channel_losses = channel_losses_;
  s.decode_attempts = decode_attempts_;
  s.nodes.insert(ledger_.begin(), ledger_.end());
  return s;
}

void Medium::publish(obs::MetricsRegistry& registry) const {
  registry.counter("mac.transmissions").add(static_cast<double>(transmissions_));
  registry.counter("mac.deliveries").add(static_cast<double>(deliveries_));
  registry.counter("mac.collisions").add(static_cast<double>(collisions_));
  registry.counter("mac.channel_losses")
      .add(static_cast<double>(channel_losses_));
  registry.counter("mac.decode_attempts")
      .add(static_cast<double>(decode_attempts_));
  registry.counter("mac.busy_airtime_s").add(busy_airtime_.to_seconds());

  // Per-node rows through the ordered snapshot so key insertion order (and
  // with it first-registration cost) is deterministic.
  const MediumStats s = snapshot();
  for (const auto& [node, row] : s.nodes) {
    const obs::Labels labels = {{"node", node.to_string()},
                                {"role", to_string(row.role)}};
    const auto add = [&](const char* name, double v) {
      registry.counter(name, labels).add(v);
    };
    add("mac.frames_tx", static_cast<double>(row.frames_tx));
    add("mac.tx_airtime_s", row.tx_airtime.to_seconds());
    add("mac.frames_delivered", static_cast<double>(row.frames_delivered));
    add("mac.frames_collided", static_cast<double>(row.frames_collided));
    add("mac.frames_received", static_cast<double>(row.frames_received));
    add("mac.rx_airtime_s", row.rx_airtime.to_seconds());
    add("mac.collided_airtime_s", row.collided_airtime.to_seconds());
    add("mac.node_decode_attempts", static_cast<double>(row.decode_attempts));
    add("mac.collisions_seen", static_cast<double>(row.collisions_seen));
    add("mac.node_channel_losses", static_cast<double>(row.channel_losses));
    add("mac.deferral_wait_s", row.deferral_wait.to_seconds());
  }
}

}  // namespace vifi::mac
