#include "mac/beaconing.h"

#include "obs/recorder.h"
#include "util/contracts.h"

namespace vifi::mac {

Beaconing::Beaconing(sim::Simulator& sim, Radio& radio, Rng rng, Time period,
                     Time jitter)
    : sim_(sim), radio_(radio), rng_(rng), period_(period), jitter_(jitter) {
  VIFI_EXPECTS(period > Time::zero());
  VIFI_EXPECTS(!jitter.is_negative() && jitter < period);
}

Beaconing::~Beaconing() { stop(); }

void Beaconing::set_payload_provider(PayloadProvider provider) {
  provider_ = std::move(provider);
}

void Beaconing::start() {
  if (running_) return;
  running_ = true;
  arm();
}

void Beaconing::stop() {
  if (!running_) return;
  sim_.cancel(pending_);
  pending_ = sim::EventId{};
  running_ = false;
}

void Beaconing::arm() {
  const Time delay =
      period_ + Time::micros(rng_.uniform_int(-jitter_.to_micros(),
                                              jitter_.to_micros()));
  pending_ = sim_.schedule(delay, [this] { fire(); });
}

void Beaconing::fire() {
  arm();
  Frame f;
  f.type = FrameType::Beacon;
  if (provider_) f.beacon = provider_();
  if (obs::TraceRecorder* rec = obs::current_recorder())
    rec->record(obs::EventKind::BeaconTx, sim_.now(), radio_.self(), {}, sent_,
                0.0, 0.0, f.beacon.from_vehicle ? 1 : 0);
  ++sent_;
  radio_.send(std::move(f));
}

}  // namespace vifi::mac
