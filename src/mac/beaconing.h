#pragma once

/// \file beaconing.h
/// Periodic beacons with jitter. Beacons are the substrate for three
/// different mechanisms in the paper: handoff-policy input (§3.1),
/// anchor/auxiliary designation (§4.3), and the reception-probability
/// gossip (§4.6).

#include <functional>

#include "mac/frame.h"
#include "mac/radio.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace vifi::mac {

/// Emits a beacon every `period` (default 100 ms, ~10 beacons/s as assumed
/// by the per-second beacon-count estimators), with per-beacon jitter to
/// desynchronise nodes.
class Beaconing {
 public:
  using PayloadProvider = std::function<BeaconPayload()>;

  Beaconing(sim::Simulator& sim, Radio& radio, Rng rng,
            Time period = Time::millis(100),
            Time jitter = Time::millis(10));

  ~Beaconing();
  Beaconing(const Beaconing&) = delete;
  Beaconing& operator=(const Beaconing&) = delete;

  /// Sets the payload builder called at each beacon emission.
  void set_payload_provider(PayloadProvider provider);

  void start();
  void stop();
  bool running() const { return running_; }

  Time period() const { return period_; }
  std::uint64_t beacons_sent() const { return sent_; }

 private:
  void fire();
  void arm();

  sim::Simulator& sim_;
  Radio& radio_;
  Rng rng_;
  Time period_;
  Time jitter_;
  PayloadProvider provider_;
  sim::EventId pending_{};
  bool running_ = false;
  std::uint64_t sent_ = 0;
};

}  // namespace vifi::mac
