#pragma once

/// \file frame.h
/// Link-layer frames on the vehicle–BS channel. All ViFi transmissions are
/// MAC broadcasts (§4.8: broadcast disables NIC auto-retransmission and
/// exponential backoff); the intended destination travels in the ViFi
/// header. In the simulator a frame carries typed payload structs instead of
/// serialised TLVs; `bytes_on_air()` accounts for their wire size.

#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "sim/ids.h"

namespace vifi::mac {

using sim::NodeId;

enum class FrameType { Beacon, Data, Ack };

inline const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::Beacon:
      return "beacon";
    case FrameType::Data:
      return "data";
    case FrameType::Ack:
      return "ack";
  }
  return "?";
}

/// One entry of the reception-probability gossip (§4.6): "node `from` is
/// received by node `to` with probability `prob`".
struct ProbReport {
  NodeId from;
  NodeId to;
  double prob = 0.0;
};

/// Beacon contents. BS beacons carry identity and gossip; vehicle beacons
/// additionally designate the anchor, the previous anchor (for salvaging)
/// and the auxiliary set (§4.3).
struct BeaconPayload {
  bool from_vehicle = false;        ///< Distinguishes client beacons.
  NodeId anchor;                    ///< Vehicle beacons only.
  NodeId prev_anchor;               ///< Vehicle beacons only.
  std::vector<NodeId> auxiliaries;  ///< Vehicle beacons only.
  std::vector<ProbReport> prob_reports;

  /// Wire size: fixed header + 4 B per id + 6 B per report.
  int wire_bytes() const {
    return 16 + 4 * static_cast<int>(auxiliaries.size()) +
           6 * static_cast<int>(prob_reports.size());
  }
};

/// ViFi data header riding on every data frame.
struct DataHeader {
  std::uint64_t packet_id = 0;  ///< ViFi's unique per-packet id (§4.7).
  /// Consecutive per-sender stream sequence, assigned at first
  /// transmission; feeds the optional in-order sequencing buffer (§4.7).
  std::uint64_t link_seq = 0;
  int attempt = 1;    ///< Source transmission attempt (1 = first).
  NodeId origin;      ///< Original wireless-hop source (vehicle or anchor).
  NodeId hop_dst;     ///< Intended wireless-hop destination.
  bool is_relay = false;  ///< True when transmitted by an auxiliary (§4.3).
  NodeId relayer;         ///< Valid when is_relay.
  /// Piggybacked reverse-path acknowledgment: ids of the last few packets
  /// received from the peer (the 1-byte bitmap optimisation of §4.8,
  /// modelled as explicit ids, capacity 8).
  std::vector<std::uint64_t> piggyback_acked;
};

/// Acknowledgment payload: ViFi broadcasts an ACK naming the packet id.
struct AckPayload {
  std::uint64_t packet_id = 0;
};

/// A link-layer frame. `tx` is the node actually emitting energy; beacons
/// and ViFi data/acks are all broadcast on air.
struct Frame {
  FrameType type = FrameType::Data;
  NodeId tx;
  BeaconPayload beacon;
  DataHeader data;
  AckPayload ack;
  net::PacketRef packet;  ///< App payload for data frames.

  /// Total bytes serialised on the air (MAC body; PHY overhead is added by
  /// the medium).
  int bytes_on_air() const;
};

/// Receives successfully decoded frames from the medium.
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  virtual void on_frame(const Frame& frame) = 0;
};

}  // namespace vifi::mac
