#include "mac/frame.h"

#include "util/contracts.h"

namespace vifi::mac {

int Frame::bytes_on_air() const {
  switch (type) {
    case FrameType::Beacon:
      return beacon.wire_bytes();
    case FrameType::Ack:
      // id + addressing.
      return 14;
    case FrameType::Data: {
      VIFI_EXPECTS(packet != nullptr);
      // ViFi header: id (8) + origin/dst/relayer (6) + flags (1) +
      // bitmap (1 + 8 for the anchor id of the bitmap window).
      const int vifi_header = 24;
      return vifi_header + packet->bytes;
    }
  }
  return 0;
}

}  // namespace vifi::mac
