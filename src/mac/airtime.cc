#include "mac/airtime.h"

#include "util/contracts.h"

namespace vifi::mac {

const char* to_string(NodeRole role) {
  switch (role) {
    case NodeRole::Unknown: return "unknown";
    case NodeRole::Infrastructure: return "infrastructure";
    case NodeRole::Vehicle: return "vehicle";
  }
  return "unknown";
}

double jain_index(const std::vector<double>& xs) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : xs) {
    VIFI_EXPECTS(x >= 0.0);
    sum += x;
    sum_sq += x * x;
  }
  if (xs.empty() || sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(xs.size()) * sum_sq);
}

const NodeAirtime& MediumStats::node(NodeId id) const {
  static const NodeAirtime kZero{};
  const auto it = nodes.find(id);
  return it == nodes.end() ? kZero : it->second;
}

std::vector<NodeId> MediumStats::nodes_with_role(NodeRole role) const {
  std::vector<NodeId> out;
  for (const auto& [id, row] : nodes)
    if (row.role == role) out.push_back(id);
  return out;
}

Time MediumStats::tx_airtime(NodeRole role) const {
  Time total;
  for (const auto& [id, row] : nodes)
    if (row.role == role) total += row.tx_airtime;
  return total;
}

double MediumStats::jain_tx_airtime(const std::vector<NodeId>& subset) const {
  std::vector<double> xs;
  xs.reserve(subset.size());
  for (const NodeId id : subset) xs.push_back(node(id).tx_airtime.to_seconds());
  return jain_index(xs);
}

double MediumStats::jain_frames_received(
    const std::vector<NodeId>& subset) const {
  std::vector<double> xs;
  xs.reserve(subset.size());
  for (const NodeId id : subset)
    xs.push_back(static_cast<double>(node(id).frames_received));
  return jain_index(xs);
}

}  // namespace vifi::mac
